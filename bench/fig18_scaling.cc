/**
 * @file
 * Figure 18: core-count scaling. SF speedup over SS at 2x2 / 4x4 /
 * 4x8 / 8x8 meshes, with the SS L2/L3 hit rates that explain it
 * (floating helps most when data lives in the L3 but misses the L2).
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"mv", "nn", "hotspot", "pathfinder"};
    }
    std::printf("=== Fig. 18: core scaling, SF vs SS, OOO8 "
                "(scale %.3f) ===\n\n",
                opt.scale);
    printHeader("workload", {"2x2", "4x4", "4x8", "L2hit", "L3hit"});

    const std::pair<int, int> meshes[] = {{2, 2}, {4, 4}, {4, 8}};
    std::vector<std::vector<double>> ratios(3);
    for (const auto &wl : opt.workloads) {
        std::vector<double> row;
        double l2hit = 0, l3hit = 0;
        for (size_t m = 0; m < 3; ++m) {
            BenchOptions o = opt;
            o.nx = meshes[m].first;
            o.ny = meshes[m].second;
            sys::SimResults ss =
                runSim(sys::Machine::SS, cpu::CoreConfig::ooo8(), wl, o);
            sys::SimResults sf =
                runSim(sys::Machine::SF, cpu::CoreConfig::ooo8(), wl, o);
            row.push_back(double(ss.cycles) / double(sf.cycles));
            ratios[m].push_back(row.back());
            if (m == 1) {
                l2hit = ss.l2HitRate;
                l3hit = ss.l3HitRate;
            }
        }
        row.push_back(l2hit);
        row.push_back(l3hit);
        printRow(wl, row);
    }
    std::vector<double> gm;
    for (auto &v : ratios)
        gm.push_back(geomean(v));
    printRow("geomean", gm);
    std::printf("\npaper: SF/SS grows slightly with system size "
                "(1.30x at 4x4 -> 1.32x at 8x8); gains concentrate "
                "where L3 hits and L2 misses\n");
    return 0;
}
