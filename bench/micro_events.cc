/**
 * @file
 * Microbenchmark of the event kernel itself: raw schedule/dispatch
 * throughput for the event patterns that dominate real simulations.
 * Reports events/s so kernel changes are a measured number, not a
 * claim. Patterns:
 *
 *  - short-delay self-rescheduling ticks (cache / NoC / SE pipelines),
 *    the overwhelming majority of events in a run;
 *  - same-tick fan-out bursts (multicast delivery, barrier release);
 *  - mixed-horizon traffic (mostly near-future with a far-future tail:
 *    DRAM latencies, watchdog / checker / sampler periods);
 *  - schedule/deschedule churn (timeout events that almost never fire);
 *  - recurring periodic events (watchdog / checker / sampler ticks).
 *
 * Handlers are small function objects (a context pointer plus an
 * index) so they fit std::function's inline buffer: the numbers
 * measure the kernel, not the allocator behind oversized closures.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/profile.hh"

using namespace sf;

namespace {

/** Deterministic xorshift so every run measures identical schedules. */
struct Rng
{
    uint64_t s = 0x9e3779b97f4a7c15ull;

    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

constexpr uint64_t eventsPerIter = 1'000'000;

struct Noop
{
    void operator()() const {}
};

struct Ctx
{
    EventQueue *eq = nullptr;
    uint64_t budget = 0;
    int fanout = 0;
    Rng rng;
};

/** One self-rescheduling tick chain with a fixed delay of 1..8. */
struct ChainTick
{
    Ctx *ctx;
    uint32_t chain;

    void
    operator()() const
    {
        if (ctx->budget == 0)
            return;
        --ctx->budget;
        ctx->eq->scheduleIn(1 + static_cast<Cycles>(chain % 8), *this,
                            EventPriority::ClockTick);
    }
};

/** Burst of `fanout` same-tick events at mixed priorities. */
struct Burst
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget < static_cast<uint64_t>(ctx->fanout))
            return;
        ctx->budget -= static_cast<uint64_t>(ctx->fanout);
        for (int i = 0; i < ctx->fanout - 1; ++i) {
            ctx->eq->scheduleIn(1, Noop{},
                                i % 2 ? EventPriority::Delivery
                                      : EventPriority::ClockTick);
        }
        ctx->eq->scheduleIn(1, *this, EventPriority::Stat);
    }
};

/** Mostly short delays with an occasional far-future reschedule. */
struct MixedTick
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget == 0)
            return;
        --ctx->budget;
        uint64_t r = ctx->rng.next();
        Cycles delay =
            (r & 7) ? (1 + (r & 31)) : (1000 + (r % 127'000));
        ctx->eq->scheduleIn(delay, *this);
    }
};

/**
 * Tick chain optionally carrying the real --profile lifecycle hooks.
 * One template so the Hooks=false baseline and the Hooks=true variant
 * share layout and codegen treatment; the measured difference is the
 * hook code itself, not functor-size or inlining luck. With a null
 * profiler the hooks cost exactly what every simulation pays when
 * profiling is disabled: one pointer test per hook site. With a live
 * profiler they pay the enabled open/mark/close path.
 */
template <bool Hooks>
struct HookTick
{
    Ctx *ctx;
    prof::Profiler *prof;

    void
    operator()() const
    {
        if (ctx->budget == 0)
            return;
        --ctx->budget;
        if constexpr (Hooks) {
            Tick now = ctx->eq->curTick();
            // The hook pattern components use verbatim (core.cc,
            // caches, se_core.cc): guarded open, mark, close.
            // sflint: allow(T1, profiler record handle, not a tick)
            uint32_t pid =
                prof ? prof->open(0, invalidStream, now) : 0;
            if (prof && pid)
                prof->mark(0, pid, prof::Phase::PrivCache, now);
            if (prof && pid)
                prof->close(0, pid, now);
        }
        ctx->eq->scheduleIn(1 + static_cast<Cycles>(ctx->budget % 8),
                            *this, EventPriority::ClockTick);
    }
};

/**
 * Null laundered through a volatile so the compiler cannot fold the
 * hook branches away. (DoNotOptimize on an lvalue pointer is NOT safe
 * for this: GCC's "+m,r" constraint can clobber the value.)
 */
prof::Profiler *volatile nullProfiler = nullptr;

/** Three descheduled timeouts per real tick. */
struct ChurnTick
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget < 4)
            return;
        ctx->budget -= 4;
        for (int i = 0; i < 3; ++i) {
            auto id = ctx->eq->scheduleIn(
                500 + static_cast<Cycles>(i), Noop{});
            ctx->eq->deschedule(id);
        }
        ctx->eq->scheduleIn(2, *this);
    }
};

} // namespace

/**
 * N independent chains of self-rescheduling ticks with delays 1..8:
 * the calendar-wheel fast path.
 */
static void
BM_ShortDelayTicks(benchmark::State &state)
{
    const int chains = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < chains; ++c) {
            eq.schedule(static_cast<Tick>(c % 4),
                        ChainTick{&ctx, static_cast<uint32_t>(c)},
                        EventPriority::ClockTick);
        }
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShortDelayTicks)->Arg(4)->Arg(64)->Unit(
    benchmark::kMillisecond);

/** Bursts of F same-tick events at mixed priorities, tick by tick. */
static void
BM_SameTickFanout(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, fanout, {}};
        eq.schedule(0, Burst{&ctx}, EventPriority::Stat);
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SameTickFanout)->Arg(8)->Arg(64)->Unit(
    benchmark::kMillisecond);

/**
 * 7/8 short delays (1..32) with a 1/8 far-future tail (up to ~128k
 * cycles): exercises the wheel/heap boundary both ways.
 */
static void
BM_MixedHorizon(benchmark::State &state)
{
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < 16; ++c)
            eq.schedule(static_cast<Tick>(c), MixedTick{&ctx});
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedHorizon)->Unit(benchmark::kMillisecond);

/**
 * Timeout churn: most scheduled events are descheduled before firing
 * (the float-ack / progress-timeout pattern). Counts live + cancelled
 * slots pushed through the queue.
 */
static void
BM_ScheduleDescheduleChurn(benchmark::State &state)
{
    uint64_t slots = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        eq.schedule(0, ChurnTick{&ctx});
        eq.run();
        slots += eventsPerIter;
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScheduleDescheduleChurn)->Unit(benchmark::kMillisecond);

/**
 * The profiling-overhead pair (tentpole budget: ≤2% when disabled).
 * Hook-free baseline chains — compare BM_ProfilerHooksOff against
 * this, NOT across machines.
 */
static void
BM_ProfilerHooksBase(benchmark::State &state)
{
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < 16; ++c)
            eq.schedule(static_cast<Tick>(c % 4),
                        HookTick<false>{&ctx, nullptr},
                        EventPriority::ClockTick);
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfilerHooksBase)->Unit(benchmark::kMillisecond);

/**
 * Same chains with the lifecycle hooks compiled in but the profiler
 * null (--profile absent): the disabled-overhead number the CI gate
 * holds to the budget.
 */
static void
BM_ProfilerHooksOff(benchmark::State &state)
{
    prof::Profiler *prof = nullProfiler;
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < 16; ++c)
            eq.schedule(static_cast<Tick>(c % 4),
                        HookTick<true>{&ctx, prof},
                        EventPriority::ClockTick);
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfilerHooksOff)->Unit(benchmark::kMillisecond);

/**
 * The gated overhead number: alternate hook-free and hooks-off bursts
 * back-to-back and report the median per-pair slowdown. Tight temporal
 * pairing cancels the machine drift that makes comparing two separate
 * benchmark entries flaky, so CI can hold a 2% budget reliably.
 */
static void
BM_ProfilerHookOverheadPaired(benchmark::State &state)
{
    using hclock = std::chrono::steady_clock;
    constexpr uint64_t burstEvents = 200'000;
    prof::Profiler *prof = nullProfiler;

    auto burst = [&](bool hooks) {
        EventQueue eq;
        Ctx ctx{&eq, burstEvents, 0, {}};
        for (int c = 0; c < 16; ++c) {
            if (hooks) {
                eq.schedule(static_cast<Tick>(c % 4),
                            HookTick<true>{&ctx, prof},
                            EventPriority::ClockTick);
            } else {
                eq.schedule(static_cast<Tick>(c % 4),
                            HookTick<false>{&ctx, nullptr},
                            EventPriority::ClockTick);
            }
        }
        auto t0 = hclock::now();
        eq.run();
        auto t1 = hclock::now();
        benchmark::DoNotOptimize(eq.numExecuted());
        return std::chrono::duration<double>(t1 - t0).count();
    };

    std::vector<double> ratios;
    uint64_t executed = 0;
    for (auto _ : state) {
        // ABBA order: warm-up / frequency drift inflates whichever
        // variant runs first, so run each at both positions and ratio
        // the sums — linear drift cancels to first order.
        double base = burst(false);
        double off = burst(true) + burst(true);
        base += burst(false);
        if (base > 0.0)
            ratios.push_back(off / base);
        executed += 4 * burstEvents;
    }
    std::sort(ratios.begin(), ratios.end());
    double med = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
    state.counters["overheadPct"] = (med - 1.0) * 100.0;
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfilerHookOverheadPaired)->Unit(benchmark::kMillisecond);

/** Enabled-path cost for context (not gated: it may be any price). */
static void
BM_ProfilerHooksOn(benchmark::State &state)
{
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        prof::Profiler prof;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < 16; ++c)
            eq.schedule(static_cast<Tick>(c % 4),
                        HookTick<true>{&ctx, &prof},
                        EventPriority::ClockTick);
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfilerHooksOn)->Unit(benchmark::kMillisecond);

#ifdef SF_EVENTQ_HAS_RECURRING
/**
 * Fixed-period recurring events (watchdog / checker / sampler / issue
 * pumps): the intrusive requeue path that re-allocates nothing.
 */
static void
BM_RecurringTicks(benchmark::State &state)
{
    const int timers = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        uint64_t budget = eventsPerIter;
        std::vector<std::unique_ptr<RecurringEvent>> recs;
        for (int t = 0; t < timers; ++t) {
            recs.push_back(std::make_unique<RecurringEvent>(eq));
            auto *rec = recs.back().get();
            rec->start(1 + static_cast<Cycles>(t % 8),
                       [&budget, rec]() {
                           if (budget == 0) {
                               rec->stop();
                               return;
                           }
                           --budget;
                       },
                       EventPriority::ClockTick);
        }
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecurringTicks)->Arg(4)->Arg(64)->Unit(
    benchmark::kMillisecond);
#endif // SF_EVENTQ_HAS_RECURRING

BENCHMARK_MAIN();
