/**
 * @file
 * Microbenchmark of the event kernel itself: raw schedule/dispatch
 * throughput for the event patterns that dominate real simulations.
 * Reports events/s so kernel changes are a measured number, not a
 * claim. Patterns:
 *
 *  - short-delay self-rescheduling ticks (cache / NoC / SE pipelines),
 *    the overwhelming majority of events in a run;
 *  - same-tick fan-out bursts (multicast delivery, barrier release);
 *  - mixed-horizon traffic (mostly near-future with a far-future tail:
 *    DRAM latencies, watchdog / checker / sampler periods);
 *  - schedule/deschedule churn (timeout events that almost never fire);
 *  - recurring periodic events (watchdog / checker / sampler ticks).
 *
 * Handlers are small function objects (a context pointer plus an
 * index) so they fit std::function's inline buffer: the numbers
 * measure the kernel, not the allocator behind oversized closures.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace sf;

namespace {

/** Deterministic xorshift so every run measures identical schedules. */
struct Rng
{
    uint64_t s = 0x9e3779b97f4a7c15ull;

    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

constexpr uint64_t eventsPerIter = 1'000'000;

struct Noop
{
    void operator()() const {}
};

struct Ctx
{
    EventQueue *eq = nullptr;
    uint64_t budget = 0;
    int fanout = 0;
    Rng rng;
};

/** One self-rescheduling tick chain with a fixed delay of 1..8. */
struct ChainTick
{
    Ctx *ctx;
    uint32_t chain;

    void
    operator()() const
    {
        if (ctx->budget == 0)
            return;
        --ctx->budget;
        ctx->eq->scheduleIn(1 + static_cast<Cycles>(chain % 8), *this,
                            EventPriority::ClockTick);
    }
};

/** Burst of `fanout` same-tick events at mixed priorities. */
struct Burst
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget < static_cast<uint64_t>(ctx->fanout))
            return;
        ctx->budget -= static_cast<uint64_t>(ctx->fanout);
        for (int i = 0; i < ctx->fanout - 1; ++i) {
            ctx->eq->scheduleIn(1, Noop{},
                                i % 2 ? EventPriority::Delivery
                                      : EventPriority::ClockTick);
        }
        ctx->eq->scheduleIn(1, *this, EventPriority::Stat);
    }
};

/** Mostly short delays with an occasional far-future reschedule. */
struct MixedTick
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget == 0)
            return;
        --ctx->budget;
        uint64_t r = ctx->rng.next();
        Cycles delay =
            (r & 7) ? (1 + (r & 31)) : (1000 + (r % 127'000));
        ctx->eq->scheduleIn(delay, *this);
    }
};

/** Three descheduled timeouts per real tick. */
struct ChurnTick
{
    Ctx *ctx;

    void
    operator()() const
    {
        if (ctx->budget < 4)
            return;
        ctx->budget -= 4;
        for (int i = 0; i < 3; ++i) {
            auto id = ctx->eq->scheduleIn(
                500 + static_cast<Cycles>(i), Noop{});
            ctx->eq->deschedule(id);
        }
        ctx->eq->scheduleIn(2, *this);
    }
};

} // namespace

/**
 * N independent chains of self-rescheduling ticks with delays 1..8:
 * the calendar-wheel fast path.
 */
static void
BM_ShortDelayTicks(benchmark::State &state)
{
    const int chains = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < chains; ++c) {
            eq.schedule(static_cast<Tick>(c % 4),
                        ChainTick{&ctx, static_cast<uint32_t>(c)},
                        EventPriority::ClockTick);
        }
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShortDelayTicks)->Arg(4)->Arg(64)->Unit(
    benchmark::kMillisecond);

/** Bursts of F same-tick events at mixed priorities, tick by tick. */
static void
BM_SameTickFanout(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, fanout, {}};
        eq.schedule(0, Burst{&ctx}, EventPriority::Stat);
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SameTickFanout)->Arg(8)->Arg(64)->Unit(
    benchmark::kMillisecond);

/**
 * 7/8 short delays (1..32) with a 1/8 far-future tail (up to ~128k
 * cycles): exercises the wheel/heap boundary both ways.
 */
static void
BM_MixedHorizon(benchmark::State &state)
{
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        for (int c = 0; c < 16; ++c)
            eq.schedule(static_cast<Tick>(c), MixedTick{&ctx});
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedHorizon)->Unit(benchmark::kMillisecond);

/**
 * Timeout churn: most scheduled events are descheduled before firing
 * (the float-ack / progress-timeout pattern). Counts live + cancelled
 * slots pushed through the queue.
 */
static void
BM_ScheduleDescheduleChurn(benchmark::State &state)
{
    uint64_t slots = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ctx ctx{&eq, eventsPerIter, 0, {}};
        eq.schedule(0, ChurnTick{&ctx});
        eq.run();
        slots += eventsPerIter;
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScheduleDescheduleChurn)->Unit(benchmark::kMillisecond);

#ifdef SF_EVENTQ_HAS_RECURRING
/**
 * Fixed-period recurring events (watchdog / checker / sampler / issue
 * pumps): the intrusive requeue path that re-allocates nothing.
 */
static void
BM_RecurringTicks(benchmark::State &state)
{
    const int timers = static_cast<int>(state.range(0));
    uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        uint64_t budget = eventsPerIter;
        std::vector<std::unique_ptr<RecurringEvent>> recs;
        for (int t = 0; t < timers; ++t) {
            recs.push_back(std::make_unique<RecurringEvent>(eq));
            auto *rec = recs.back().get();
            rec->start(1 + static_cast<Cycles>(t % 8),
                       [&budget, rec]() {
                           if (budget == 0) {
                               rec->stop();
                               return;
                           }
                           --budget;
                       },
                       EventPriority::ClockTick);
        }
        eq.run();
        executed += eq.numExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecurringTicks)->Arg(4)->Arg(64)->Unit(
    benchmark::kMillisecond);
#endif // SF_EVENTQ_HAS_RECURRING

BENCHMARK_MAIN();
