/**
 * @file
 * Oracle acceptance suite: run every workload under the functional
 * reference executor across the {in-order, out-of-order} x
 * {no-float (SS), float (SF)} config matrix and diff the final
 * architectural state against golden.
 *
 *   ./bench/verify_suite --cores=2x2 --scale=0.01
 *
 * Exits 0 when every point matches the reference; exits 67 with a
 * first-divergence diagnostic on the first mismatch.
 */

#include "bench_util.hh"

using namespace sf;

int
main(int argc, char **argv)
try {
    bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
    opt.verify = true;

    const struct {
        const char *name;
        cpu::CoreConfig core;
    } cpus[] = {
        { "io4", cpu::CoreConfig::io4() },
        { "ooo4", cpu::CoreConfig::ooo4() },
    };
    const sys::Machine machines[] = { sys::Machine::SS, sys::Machine::SF };

    int points = 0;
    for (const auto &wl : opt.workloads) {
        for (const auto &cpu : cpus) {
            for (sys::Machine m : machines) {
                bench::runSim(m, cpu.core, wl, opt);
                std::printf("verify ok: %-12s %-5s %s\n", wl.c_str(),
                            cpu.name, sys::machineName(m));
                std::fflush(stdout);
                ++points;
            }
        }
    }
    std::printf("verify suite passed: %d points matched the "
                "reference executor\n", points);
    return 0;
} catch (const FatalError &e) {
    // The divergence diagnostic already went to stderr via fatal();
    // surface the distinct exit code (verify divergence 67).
    return e.exitStatus();
}
