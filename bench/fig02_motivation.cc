/**
 * @file
 * Figure 2: the motivation measurements on the Base system.
 *
 *  (a) Fraction of L2 evictions that are clean and were never reused,
 *      and the share of those attributable to compiler-recognizable
 *      streams (the paper reports 72% unreused, 63% stream-covered).
 *  (b) Fraction of injected NoC flits attributable to caching that
 *      unreused data, split into data and coherence-control flits
 *      (the paper reports ~50%, 20% of it control).
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt;
    opt.scale = 0.4; // per-core footprints must exceed the private L2
    opt = [&]() {
        BenchOptions o = BenchOptions::parse(argc, argv);
        bool scale_given = false;
        for (int i = 1; i < argc; ++i) {
            if (std::strncmp(argv[i], "--scale=", 8) == 0)
                scale_given = true;
        }
        if (!scale_given)
            o.scale = 0.4;
        return o;
    }();
    std::printf("=== Fig. 2 motivation (Base, OOO8, %dx%d, scale %.3f) "
                "===\n\n",
                opt.nx, opt.ny, opt.scale);
    printHeader("workload", {"unreused", "stream", "flitFrac",
                             "ctrlFrac"});

    std::vector<double> unreused_all, stream_all, flit_all, ctrl_all;
    for (const auto &wl : opt.workloads) {
        sys::SimResults r =
            runSim(sys::Machine::Base, cpu::CoreConfig::ooo8(), wl, opt);
        double evictions = std::max<double>(1.0, double(r.l2Evictions));
        double unreused = double(r.l2EvictionsUnreused) / evictions;
        double stream = double(r.l2EvictionsUnreusedStream) / evictions;
        double total_flits = std::max<double>(
            1.0, double(r.traffic.flitsInjected[0] +
                        r.traffic.flitsInjected[1] +
                        r.traffic.flitsInjected[2]));
        double flit_frac =
            double(r.unreusedDataFlits + r.unreusedCtrlFlits) /
            total_flits;
        double ctrl_frac = double(r.unreusedCtrlFlits) / total_flits;
        printRow(wl, {unreused, stream, flit_frac, ctrl_frac});
        unreused_all.push_back(unreused);
        stream_all.push_back(stream);
        flit_all.push_back(flit_frac);
        ctrl_all.push_back(ctrl_frac);
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / v.size();
    };
    printRow("mean", {mean(unreused_all), mean(stream_all),
                      mean(flit_all), mean(ctrl_all)});
    std::printf("\npaper:      unreused 0.72, stream-covered 0.63, "
                "flit fraction 0.50, control 0.20\n");
    return 0;
}
