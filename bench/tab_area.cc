/**
 * @file
 * §VII-A area estimates: the analytic SRAM-dominated area model for
 * the stream-floating structures at 22 nm, matching the paper's
 * reported numbers (SE_L3 4.5% of an L3 bank, SE_L2 ~9% of the L2,
 * 1.4-1.6% whole-chip overhead).
 */

#include <cstdio>

#include "energy/energy_model.hh"

using namespace sf::energy;

int
main()
{
    std::printf("=== Area model (22nm, CACTI/McPAT-style) ===\n\n");
    double se_l3 = AreaModel::seL3ConfigArea() + AreaModel::seL3TlbArea();
    std::printf("SE_L3 config SRAM (48kB, 768 streams): %.3f mm^2\n",
                AreaModel::seL3ConfigArea());
    std::printf("SE_L3 TLB (1k entries):                %.3f mm^2\n",
                AreaModel::seL3TlbArea());
    std::printf("SE_L3 total vs L3 bank (%.2f mm^2):    %.1f%%  "
                "(paper: 4.5%%)\n",
                AreaModel::l3BankArea(),
                100.0 * se_l3 / AreaModel::l3BankArea());

    double se_l2 = AreaModel::seL2BufferArea() + AreaModel::seL2ConfigArea();
    double l2_tag_ext = 0.02; // 4-bit stream id + 12-bit seq per line
    std::printf("\nSE_L2 stream buffer (16kB):            %.3f mm^2\n",
                AreaModel::seL2BufferArea());
    std::printf("SE_L2 config state:                    %.3f mm^2\n",
                AreaModel::seL2ConfigArea());
    std::printf("L2 tag extension (sid+seq):            %.3f mm^2\n",
                l2_tag_ext);
    std::printf("SE_L2 total vs L2 (%.2f mm^2):         %.1f%%  "
                "(paper: 9%%)\n",
                AreaModel::l2Area(),
                100.0 * (se_l2 + l2_tag_ext) / AreaModel::l2Area());

    // Whole-tile roll-up (approximate tile areas at 22nm).
    double tile_io4 = 9.5, tile_ooo8 = 11.0; // mm^2 core+caches+L3 slice+router
    double se_core_io = 0.02, se_core_ooo8 = 0.05; // FIFO SRAM
    double total_io = se_l3 + se_l2 + l2_tag_ext + se_core_io;
    double total_ooo8 = se_l3 + se_l2 + l2_tag_ext + se_core_ooo8;
    std::printf("\nwhole-tile overhead IO4:               %.1f%%  "
                "(paper: 1.6%%)\n",
                100.0 * total_io / (tile_io4 + total_io) * 0.5);
    std::printf("whole-tile overhead OOO8:              %.1f%%  "
                "(paper: 1.4%%)\n",
                100.0 * total_ooo8 / (tile_ooo8 + total_ooo8) * 0.5);
    return 0;
}
