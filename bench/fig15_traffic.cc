/**
 * @file
 * Figure 15: NoC traffic (flit-hops, normalized to Base) broken into
 * coherence control / data / stream-management classes, plus average
 * network utilization — for the prefetchers (with and without bulk
 * request grouping), SS, and the SF ablation ladder (affine only,
 * +indirect, +confluence).
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

namespace {

const std::vector<std::pair<sys::Machine, const char *>> configs = {
    {sys::Machine::StridePf, "Stride"},
    {sys::Machine::StrideBulk, "Str+Bulk"},
    {sys::Machine::BingoPf, "Bingo"},
    {sys::Machine::BingoBulk, "Bng+Bulk"},
    {sys::Machine::SS, "SS"},
    {sys::Machine::SFAff, "SF-Aff"},
    {sys::Machine::SFInd, "SF-Ind"},
    {sys::Machine::SF, "SF"},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    std::printf("=== Fig. 15: NoC traffic vs Base, OOO8 "
                "(%dx%d, scale %.3f) ===\n",
                opt.nx, opt.ny, opt.scale);
    std::printf("columns: total flit-hops normalized to Base\n\n");

    std::vector<std::string> headers;
    for (auto &[m, n] : configs)
        headers.push_back(n);
    printHeader("workload", headers);

    std::vector<std::vector<double>> ratios(configs.size());
    std::vector<double> base_util, sf_util, bingo_util;
    for (const auto &wl : opt.workloads) {
        sys::SimResults base =
            runSim(sys::Machine::Base, cpu::CoreConfig::ooo8(), wl, opt);
        double base_hops =
            std::max<double>(1.0, double(base.traffic.totalFlitHops()));
        base_util.push_back(base.nocUtilization);
        std::vector<double> row;
        for (size_t c = 0; c < configs.size(); ++c) {
            sys::SimResults r =
                runSim(configs[c].first, cpu::CoreConfig::ooo8(), wl,
                       opt);
            row.push_back(double(r.traffic.totalFlitHops()) / base_hops);
            ratios[c].push_back(row.back());
            if (configs[c].first == sys::Machine::SF)
                sf_util.push_back(r.nocUtilization);
            if (configs[c].first == sys::Machine::BingoPf)
                bingo_util.push_back(r.nocUtilization);
        }
        printRow(wl, row);
    }
    std::vector<double> gm;
    for (auto &v : ratios)
        gm.push_back(geomean(v));
    printRow("geomean", gm);

    // Detailed class breakdown for the full SF configuration.
    std::printf("\n-- SF traffic class shares (of SF total) --\n");
    printHeader("workload", {"ctrl", "data", "streamMgmt"});
    for (const auto &wl : opt.workloads) {
        sys::SimResults r =
            runSim(sys::Machine::SF, cpu::CoreConfig::ooo8(), wl, opt);
        double tot =
            std::max<double>(1.0, double(r.traffic.totalFlitHops()));
        printRow(wl, {double(r.traffic.flitHops[0]) / tot,
                      double(r.traffic.flitHops[1]) / tot,
                      double(r.traffic.flitHops[2]) / tot});
    }

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / v.size();
    };
    std::printf("\navg network utilization: Base %.1f%%, Bingo %.1f%%, "
                "SF %.1f%%\n",
                100 * mean(base_util), 100 * mean(bingo_util),
                100 * mean(sf_util));
    std::printf("paper: Bingo +34%% traffic; SF -36%%; utilization "
                "35%% (Bingo) -> 25%% (SF); stream mgmt ~2%%\n");
    return 0;
}
