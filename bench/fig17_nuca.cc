/**
 * @file
 * Figure 17: NUCA interleaving-granularity sensitivity (64B / 256B /
 * 1kB / 4kB) for Bingo and SF, normalized to Bingo-64B. Finer
 * interleaving costs SF stream migrations; coarser interleaving risks
 * bank hotspots. The paper finds SF best at 1kB.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"conv3d", "mv", "bfs", "nn", "pathfinder", "srad"};
    }
    std::printf("=== Fig. 17: NUCA interleaving, OOO8 "
                "(%dx%d, scale %.3f) ===\n",
                opt.nx, opt.ny, opt.scale);
    std::printf("speedup normalized to Bingo-64B\n\n");
    printHeader("workload",
                {"BG-64", "BG-256", "BG-1k", "BG-4k", "SF-64", "SF-256",
                 "SF-1k", "SF-4k"});

    const uint32_t grans[] = {64, 256, 1024, 4096};
    std::vector<std::vector<double>> all(8);
    std::vector<double> mig_traffic_64, mig_traffic_1k;
    for (const auto &wl : opt.workloads) {
        double bingo64 = 0;
        std::vector<double> row;
        for (uint32_t g : grans) {
            sys::SimResults r =
                runSim(sys::Machine::BingoPf, cpu::CoreConfig::ooo8(),
                       wl, opt, 0, g);
            if (g == 64)
                bingo64 = double(r.cycles);
            row.push_back(bingo64 / double(r.cycles));
        }
        for (uint32_t g : grans) {
            sys::SimResults r = runSim(sys::Machine::SF,
                                       cpu::CoreConfig::ooo8(), wl, opt,
                                       0, g);
            row.push_back(bingo64 / double(r.cycles));
            double mgmt_share =
                double(r.traffic.flitHops[2]) /
                std::max<double>(1.0, double(r.traffic.totalFlitHops()));
            if (g == 64)
                mig_traffic_64.push_back(mgmt_share);
            if (g == 1024)
                mig_traffic_1k.push_back(mgmt_share);
        }
        for (size_t i = 0; i < row.size(); ++i)
            all[i].push_back(row[i]);
        printRow(wl, row);
    }
    std::vector<double> gm;
    for (auto &v : all)
        gm.push_back(geomean(v));
    printRow("geomean", gm);

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / v.size();
    };
    std::printf("\nstream-mgmt traffic share: SF-64B %.1f%%, SF-1kB "
                "%.1f%%\n",
                100 * mean(mig_traffic_64), 100 * mean(mig_traffic_1k));
    std::printf("paper: SF best at 1kB; 64B interleave costs 12%% "
                "stream-control traffic but still cuts total by 22%%\n");
    return 0;
}
