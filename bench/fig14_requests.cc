/**
 * @file
 * Figure 14: breakdown of requests reaching the L3 on SF-OOO8 into
 * normal core requests, SE_core stream requests, and the floated
 * affine / indirect / confluence requests generated at the SE_L3.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    std::printf("=== Fig. 14: L3 request breakdown, SF-OOO8 "
                "(%dx%d, scale %.3f) ===\n\n",
                opt.nx, opt.ny, opt.scale);
    printHeader("workload",
                {"core", "stream", "affine", "indirect", "confl"});

    std::vector<double> sums(5, 0.0);
    for (const auto &wl : opt.workloads) {
        sys::SimResults r =
            runSim(sys::Machine::SF, cpu::CoreConfig::ooo8(), wl, opt);
        double total = 0;
        for (uint64_t c : r.l3RequestsByClass)
            total += double(c);
        total = std::max(total, 1.0);
        std::vector<double> row;
        for (size_t k = 0; k < 5; ++k) {
            row.push_back(double(r.l3RequestsByClass[k]) / total);
            sums[k] += row.back();
        }
        printRow(wl, row);
    }
    for (auto &s : sums)
        s /= std::max<size_t>(1, opt.workloads.size());
    printRow("mean", sums);
    std::printf("\npaper: ~68%% of requests generated at SE_L3 "
                "(50%% affine, 5%% indirect; conv3d 51%% confluence)\n");
    return 0;
}
