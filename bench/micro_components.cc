/**
 * @file
 * Google-benchmark micro benchmarks for the simulator's own hot
 * components: event queue throughput, cache-array lookups, TLB
 * translation, mesh message delivery and whole-system simulation rate.
 * Useful when optimizing the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "system/tiled_system.hh"
#include "workload/workload.hh"

using namespace sf;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    mem::CacheArray array(256 * 1024, 16, mem::ReplPolicy::LRU);
    mem::Eviction ev;
    for (Addr a = 0; a < 256 * 1024; a += 64)
        array.fill(a, ev).state = mem::LineState::Shared;
    Rng rng(7);
    for (auto _ : state) {
        Addr a = (rng.next() % (256 * 1024)) & ~Addr(63);
        benchmark::DoNotOptimize(array.access(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_TlbTranslate(benchmark::State &state)
{
    mem::PhysMem pm;
    mem::AddressSpace as(0, pm);
    mem::TlbHierarchy tlb(64, 8, 2048, 16, 8, 80);
    Addr base = as.alloc(1 << 22);
    Rng rng(3);
    for (auto _ : state) {
        Cycles lat = 0;
        Addr va = base + (rng.next() % (1 << 22));
        benchmark::DoNotOptimize(tlb.translate(as, va, lat));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbTranslate);

void
BM_MeshMessageDelivery(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue eq;
        noc::MeshConfig cfg;
        noc::Mesh mesh(eq, cfg);
        uint64_t delivered = 0;
        for (TileId t = 0; t < mesh.numTiles(); ++t) {
            mesh.bindSink(t, [&](const noc::MsgPtr &) { ++delivered; });
        }
        state.ResumeTiming();
        for (int i = 0; i < 500; ++i) {
            auto m = std::make_shared<noc::Message>();
            m->src = static_cast<TileId>(i % 64);
            m->dests = {static_cast<TileId>((i * 13) % 64)};
            m->payloadBytes = (i % 3) ? 64 : 0;
            m->cls = noc::FlitClass::Data;
            mesh.send(m);
        }
        eq.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_MeshMessageDelivery);

void
BM_WholeSystemSimulation(benchmark::State &state)
{
    // Simulated cycles per wall-second for a small SF system.
    uint64_t sim_cycles = 0;
    for (auto _ : state) {
        sys::SystemConfig cfg = sys::SystemConfig::make(
            sys::Machine::SF, cpu::CoreConfig::ooo4(), 2, 2);
        sys::TiledSystem system(cfg);
        workload::WorkloadParams wp;
        wp.numThreads = 4;
        wp.scale = 0.01;
        wp.useStreams = true;
        auto wl = workload::makeWorkload("pathfinder", wp);
        wl->init(system.addressSpace());
        sys::SimResults r = system.run(wl->makeAllThreads());
        sim_cycles += r.cycles;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["simCycles/s"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WholeSystemSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
