/**
 * @file
 * Figure 19: the energy-vs-speedup scatter across core types and
 * machines (geomean over the workload set, normalized to Base-IO4).
 * The paper's headline point: SF-IO4 outperforms SS-OOO8 at a fraction
 * of the energy.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"conv3d", "mv", "bfs", "nn", "hotspot", "pathfinder"};
    }
    std::printf("=== Fig. 19: energy vs speedup (norm. to Base-IO4, "
                "%dx%d, scale %.3f) ===\n\n",
                opt.nx, opt.ny, opt.scale);
    printHeader("config", {"speedup", "energy"});

    const std::vector<std::pair<sys::Machine, const char *>> machines = {
        {sys::Machine::Base, "Base"},
        {sys::Machine::StridePf, "Stride"},
        {sys::Machine::BingoPf, "Bingo"},
        {sys::Machine::SS, "SS"},
        {sys::Machine::SF, "SF"},
    };

    // Reference: Base-IO4 per workload.
    std::vector<double> base_cycles, base_energy;
    for (const auto &wl : opt.workloads) {
        sys::SimResults r =
            runSim(sys::Machine::Base, cpu::CoreConfig::io4(), wl, opt);
        base_cycles.push_back(double(r.cycles));
        base_energy.push_back(r.energyNj);
    }

    for (const cpu::CoreConfig &core :
         {cpu::CoreConfig::io4(), cpu::CoreConfig::ooo4(),
          cpu::CoreConfig::ooo8()}) {
        for (const auto &[m, mname] : machines) {
            std::vector<double> sp, en;
            for (size_t w = 0; w < opt.workloads.size(); ++w) {
                sys::SimResults r =
                    runSim(m, core, opt.workloads[w], opt);
                sp.push_back(base_cycles[w] / double(r.cycles));
                en.push_back(r.energyNj / base_energy[w]);
            }
            std::string label =
                std::string(mname) + "-" + core.label;
            printRow(label, {geomean(sp), geomean(en)});
        }
    }
    std::printf("\npaper's headline: SF-IO4 beats SS-OOO8 in both "
                "performance and energy\n");
    return 0;
}
