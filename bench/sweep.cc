/**
 * @file
 * Parallel sweep runner: fans the fig13 grid (core config x machine
 * variant x workload) across `-j N` worker processes and merges the
 * per-point stats.json dumps into one sweep report.
 *
 * Determinism contract: every point runs in its own forked child (even
 * at -j 1), each child writes its stats.json under a deterministic
 * per-point filename, and the parent merges the files in fixed grid
 * order. The merged `BENCH_sweep.det.json` is therefore byte-identical
 * no matter how many jobs ran or in what order they finished; host
 * wall-clock numbers only appear in the companion `BENCH_sweep.json`.
 *
 * Extra options on top of the common bench flags:
 *   -j N / --jobs=N      worker processes (default 1)
 *   --out=DIR            output directory (default sweep_out)
 *   --cpus=a,b           core-config subset: io4,ooo4,ooo8 (default all)
 *   --machines=a,b       machine subset: Base,Stride,Bingo,SS,SF
 *                        (default all five)
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

namespace {

struct SweepOptions
{
    BenchOptions bench;
    int jobs = 1;
    std::string outDir = "sweep_out";
    std::vector<std::string> cpus = {"io4", "ooo4", "ooo8"};
    std::vector<std::string> machines = {"Base", "Stride", "Bingo", "SS",
                                         "SF"};
};

SweepOptions
parseSweep(int argc, char **argv)
{
    SweepOptions o;
    o.bench = BenchOptions::parse(argc, argv);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&](const char *key) -> const char * {
            size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        if (arg == "-j" && i + 1 < argc) {
            o.jobs = std::atoi(argv[++i]);
        } else if (const char *v = val("--jobs=")) {
            o.jobs = std::atoi(v);
        } else if (const char *v = val("-j")) {
            if (*v)
                o.jobs = std::atoi(v);
        } else if (const char *v = val("--out=")) {
            o.outDir = v;
        } else if (const char *v = val("--cpus=")) {
            o.cpus = splitList(v);
        } else if (const char *v = val("--machines=")) {
            o.machines = splitList(v);
        }
    }
    if (o.jobs < 1)
        o.jobs = 1;
    return o;
}

cpu::CoreConfig
coreByName(const std::string &name)
{
    if (name == "io4")
        return cpu::CoreConfig::io4();
    if (name == "ooo4")
        return cpu::CoreConfig::ooo4();
    if (name == "ooo8")
        return cpu::CoreConfig::ooo8();
    throw std::runtime_error("unknown core config: " + name);
}

sys::Machine
machineByName(const std::string &name)
{
    if (name == "Base")
        return sys::Machine::Base;
    if (name == "Stride")
        return sys::Machine::StridePf;
    if (name == "Bingo")
        return sys::Machine::BingoPf;
    if (name == "SS")
        return sys::Machine::SS;
    if (name == "SF")
        return sys::Machine::SF;
    throw std::runtime_error("unknown machine: " + name);
}

/** One cell of the sweep grid, in fixed enumeration order. */
struct Point
{
    cpu::CoreConfig core;
    sys::Machine machine;
    std::string workload;
    /** Deterministic file stem, identical to what runSim() derives. */
    std::string stem;
};

std::vector<Point>
enumerateGrid(const SweepOptions &o)
{
    std::vector<Point> points;
    for (const std::string &cpu_name : o.cpus) {
        cpu::CoreConfig core = coreByName(cpu_name);
        for (const std::string &wl : o.bench.workloads) {
            for (const std::string &m : o.machines) {
                Point p;
                p.core = core;
                p.machine = machineByName(m);
                p.workload = wl;
                p.stem = fileToken(core.label) + "_" +
                         fileToken(sys::machineName(p.machine)) + "_" +
                         fileToken(wl);
                points.push_back(p);
            }
        }
    }
    return points;
}

/** Host-side measurements a child reports back through a side file. */
struct HostReport
{
    double seconds = 0.0;
    uint64_t events = 0;
    uint64_t cycles = 0;
};

/** Run one point to completion; only ever called in a forked child. */
int
runPoint(const Point &p, const SweepOptions &o,
         const std::string &points_dir)
{
    try {
        BenchOptions bo = o.bench;
        bo.statsJsonDir = points_dir;
        sys::SimResults r = runSim(p.machine, p.core, p.workload, bo);
        std::ofstream host(points_dir + "/" + p.stem + ".host");
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "seconds=%.6f events=%llu cycles=%llu\n",
                      r.hostSeconds,
                      static_cast<unsigned long long>(r.eventsExecuted),
                      static_cast<unsigned long long>(r.cycles));
        host << buf;
        host.flush();
        return host.good() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep: point %s failed: %s\n",
                     p.stem.c_str(), e.what());
        return 1;
    }
}

bool
readHostReport(const std::string &path, HostReport &h)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    std::getline(in, line);
    unsigned long long ev = 0, cy = 0;
    if (std::sscanf(line.c_str(), "seconds=%lf events=%llu cycles=%llu",
                    &h.seconds, &ev, &cy) != 3)
        return false;
    h.events = ev;
    h.cycles = cy;
    return true;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("missing file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == ' '))
        s.pop_back();
    return s;
}

void
writeStringArray(std::ostream &os, const std::vector<std::string> &v)
{
    os << "[";
    for (size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << "\"" << v[i] << "\"";
    os << "]";
}

/**
 * The deterministic part of the report: grid description plus every
 * point's raw stats.json spliced in fixed grid order. Each per-point
 * dump is itself deterministic (the host stat group is off by
 * default), so these bytes are independent of job count and
 * completion order.
 */
void
writeDetSections(std::ostream &os, const SweepOptions &o,
                 const std::vector<Point> &points,
                 const std::string &points_dir)
{
    char buf[96];
    os << "{\n  \"schema\": \"sf-sweep-1\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"grid\": {\"nx\": %d, \"ny\": %d, \"scale\": %.6f, ",
                  o.bench.nx, o.bench.ny, o.bench.scale);
    os << buf << "\"cpus\": ";
    writeStringArray(os, o.cpus);
    os << ", \"machines\": ";
    writeStringArray(os, o.machines);
    os << ", \"workloads\": ";
    writeStringArray(os, o.bench.workloads);
    os << "},\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << "    {\"id\": \"" << p.stem << "\", \"core\": \""
           << p.core.label << "\", \"machine\": \""
           << sys::machineName(p.machine) << "\", \"workload\": \""
           << p.workload << "\",\n     \"stats\": "
           << slurp(points_dir + "/" + p.stem + ".stats.json") << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]";
}

void
writeHostSection(std::ostream &os, const SweepOptions &o,
                 const std::vector<Point> &points,
                 const std::map<std::string, HostReport> &hosts,
                 double wall_seconds)
{
    char buf[192];
    double total_sec = 0.0;
    uint64_t total_events = 0;
    os << ",\n  \"host\": {\n";
    std::snprintf(buf, sizeof(buf), "    \"jobs\": %d,\n", o.jobs);
    os << buf << "    \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const HostReport &h = hosts.at(points[i].stem);
        total_sec += h.seconds;
        total_events += h.events;
        std::snprintf(buf, sizeof(buf),
                      "      {\"id\": \"%s\", \"seconds\": %.6f, "
                      "\"events\": %llu, \"eventsPerSec\": %.0f}%s\n",
                      points[i].stem.c_str(), h.seconds,
                      static_cast<unsigned long long>(h.events),
                      h.seconds > 0 ? double(h.events) / h.seconds : 0.0,
                      i + 1 < points.size() ? "," : "");
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "    ],\n    \"wallSeconds\": %.6f,\n"
                  "    \"cpuSeconds\": %.6f,\n"
                  "    \"totalEvents\": %llu,\n"
                  "    \"eventsPerWallSec\": %.0f\n  }",
                  wall_seconds, total_sec,
                  static_cast<unsigned long long>(total_events),
                  wall_seconds > 0 ? double(total_events) / wall_seconds
                                   : 0.0);
    os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opt = parseSweep(argc, argv);
    std::vector<Point> points = enumerateGrid(opt);
    std::string points_dir = opt.outDir + "/points";
    std::filesystem::create_directories(points_dir);

    std::printf("sweep: %zu points (%zu cpus x %zu machines x %zu "
                "workloads), %d job(s)\n",
                points.size(), opt.cpus.size(), opt.machines.size(),
                opt.bench.workloads.size(), opt.jobs);

    auto wall_start = std::chrono::steady_clock::now();

    // Fork one child per point; up to `jobs` run concurrently. Every
    // point forks (even -j 1) so serial and parallel runs execute
    // byte-identical code paths.
    std::map<pid_t, size_t> running;
    size_t next = 0;
    int failures = 0;
    while (next < points.size() || !running.empty()) {
        while (running.size() < size_t(opt.jobs) &&
               next < points.size()) {
            std::fflush(stdout);
            std::fflush(stderr);
            pid_t pid = fork();
            if (pid < 0) {
                std::perror("sweep: fork");
                return 1;
            }
            if (pid == 0) {
                // In the child: run the point and leave immediately
                // without flushing inherited stdio buffers twice.
                std::_Exit(runPoint(points[next], opt, points_dir));
            }
            running[pid] = next;
            ++next;
        }
        int status = 0;
        pid_t done = waitpid(-1, &status, 0);
        if (done < 0) {
            std::perror("sweep: waitpid");
            return 1;
        }
        auto it = running.find(done);
        if (it == running.end())
            continue;
        const Point &p = points[it->second];
        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!ok) {
            ++failures;
            std::printf("sweep: FAILED %s (status %d)\n",
                        p.stem.c_str(), status);
        } else {
            std::printf("sweep: done %s\n", p.stem.c_str());
        }
        running.erase(it);
    }
    double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (failures) {
        std::printf("sweep: %d point(s) failed, no merge\n", failures);
        return 1;
    }

    // Collect the host-side reports for the companion file.
    std::map<std::string, HostReport> hosts;
    for (const Point &p : points) {
        HostReport h;
        if (!readHostReport(points_dir + "/" + p.stem + ".host", h)) {
            std::fprintf(stderr, "sweep: missing host report for %s\n",
                         p.stem.c_str());
            return 1;
        }
        hosts[p.stem] = h;
    }

    // Deterministic merge: fixed grid order, deterministic content.
    {
        std::ofstream det(opt.outDir + "/BENCH_sweep.det.json");
        writeDetSections(det, opt, points, points_dir);
        det << "\n}\n";
    }
    {
        std::ofstream full(opt.outDir + "/BENCH_sweep.json");
        writeDetSections(full, opt, points, points_dir);
        writeHostSection(full, opt, points, hosts, wall_seconds);
        full << "\n}\n";
    }

    double cpu_seconds = 0.0;
    uint64_t total_events = 0;
    for (const auto &kv : hosts) {
        cpu_seconds += kv.second.seconds;
        total_events += kv.second.events;
    }
    std::printf("sweep: merged %zu points -> %s/BENCH_sweep{.det,}.json\n",
                points.size(), opt.outDir.c_str());
    std::printf("sweep: wall %.2fs, sim cpu %.2fs, %.1f M events, "
                "%.2f M events/s wall\n",
                wall_seconds, cpu_seconds, double(total_events) / 1e6,
                wall_seconds > 0
                    ? double(total_events) / wall_seconds / 1e6
                    : 0.0);
    return 0;
}
