/**
 * @file
 * Parallel sweep runner: fans the fig13 grid (core config x machine
 * variant x workload) across `-j N` worker processes and merges the
 * per-point stats.json dumps into one sweep report.
 *
 * Determinism contract: every point runs in its own forked child (even
 * at -j 1), each child writes its stats.json under a deterministic
 * per-point filename, and the parent merges the files in fixed grid
 * order. The merged `BENCH_sweep.det.json` is therefore byte-identical
 * no matter how many jobs ran or in what order they finished; host
 * wall-clock numbers only appear in the companion `BENCH_sweep.json`.
 *
 * Crash resilience: every child runs under a wall-clock deadline
 * (`--point-timeout`, SIGKILL on expiry) and gets one bounded retry
 * after a crash or timeout. Points that still fail are recorded as
 * `"status": "failed"` entries in the merged report instead of
 * aborting the whole sweep; when nothing fails the report bytes are
 * unchanged. `--resume` VALIDATES existing point results before
 * skipping them: each completed child drops a `<stem>.ok` sidecar
 * carrying CRC32s of its stats.json and host report (the snapshot
 * library's checksum, DESIGN.md §4j), and a point is only reused when
 * the recomputed CRCs match — a torn or corrupted result re-runs.
 *
 * Checkpointing (`--checkpoint-every=N`, DESIGN.md §4j): each point
 * periodically writes an sf-snap-v1 snapshot to
 * `points/<stem>.sfsnap`. A killed/timed-out/resumed point restarts
 * from its last good snapshot (deterministic replay + byte
 * verification); a corrupt, truncated or version-mismatched snapshot
 * is logged (the validator exits 68 and names the bad section when
 * run standalone), deleted, and the point re-runs from scratch.
 *
 * Extra options on top of the common bench flags:
 *   -j N / --jobs=N      worker processes (default 1)
 *   --out=DIR            output directory (default sweep_out)
 *   --cpus=a,b           core-config subset: io4,ooo4,ooo8 (default all)
 *   --machines=a,b       machine subset:
 *                        Base,Stride,Bingo,SS,SF-Aff,SF-Ind,SF
 *                        (default all five)
 *   --point-timeout=S    per-point wall-clock limit in seconds
 *                        (default 300; SIGKILL + retry on expiry)
 *   --resume             skip points with validated existing results
 *   --checkpoint-every=N periodic per-point snapshots every N ticks
 *                        (paths are derived; --checkpoint/--restore
 *                        themselves are rejected here)
 *
 * Test hooks (used by tests/smoke_sweep.cmake and
 * tests/smoke_checkpoint.cmake): a child whose point stem equals
 * $SF_SWEEP_TEST_CRASH aborts, $SF_SWEEP_TEST_HANG spins forever,
 * $SF_SWEEP_TEST_FLAKY aborts on the first attempt only,
 * $SF_SWEEP_TEST_KILL_AFTER_CKPT (a stem, or `*` for every point)
 * makes first attempts SIGKILL themselves right after their first
 * snapshot, and $SF_SWEEP_TEST_PARENT_KILL_AFTER=<n> SIGKILLs the
 * whole sweep after n completed points (crash-recovery CI).
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bench/bench_util.hh"
#include "sim/snapshot.hh"

using namespace sf;
using namespace sf::bench;

namespace {

struct SweepOptions
{
    BenchOptions bench;
    int jobs = 1;
    std::string outDir = "sweep_out";
    /** Per-point wall-clock limit in seconds; expired children are
     *  SIGKILLed and retried once. */
    double pointTimeout = 300.0;
    /** Skip points whose `.ok` sidecar CRCs still validate. */
    bool resume = false;
    /** Per-point sf-snap-v1 checkpoint interval in ticks; 0 = off.
     *  Snapshot paths are derived (`points/<stem>.sfsnap`). */
    Tick checkpointEvery = 0;
    std::vector<std::string> cpus = {"io4", "ooo4", "ooo8"};
    std::vector<std::string> machines = {"Base", "Stride", "Bingo", "SS",
                                         "SF"};
};

SweepOptions
parseSweep(int argc, char **argv)
{
    SweepOptions o;
    // The sweep derives per-point snapshot paths itself, so the only
    // checkpoint flag it takes is the interval. Strip it (and reject
    // the path-style flags) before handing the rest to the shared
    // BenchOptions parser, whose pairing validation would otherwise
    // demand a --checkpoint=PATH.
    std::vector<char *> bargv;
    bargv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--checkpoint-every=", 0) == 0) {
            o.checkpointEvery = parseTickCount(
                arg.substr(std::strlen("--checkpoint-every=")),
                "--checkpoint-every");
            continue;
        }
        if (arg.rfind("--checkpoint=", 0) == 0 ||
            arg == "--checkpoint-stop" ||
            arg.rfind("--restore=", 0) == 0) {
            fatal("%s: the sweep manages per-point snapshots itself; "
                  "use --checkpoint-every=N (and --resume to reuse "
                  "results)",
                  argv[i]);
        }
        bargv.push_back(argv[i]);
    }
    o.bench =
        BenchOptions::parse(static_cast<int>(bargv.size()), bargv.data());
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&](const char *key) -> const char * {
            size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        if (arg == "-j" && i + 1 < argc) {
            o.jobs = parseThreadCount(argv[++i], "-j");
        } else if (const char *v = val("--jobs=")) {
            o.jobs = parseThreadCount(v, "--jobs");
        } else if (const char *v = val("-j")) {
            if (*v)
                o.jobs = parseThreadCount(v, "-j");
        } else if (const char *v = val("--out=")) {
            o.outDir = v;
        } else if (const char *v = val("--cpus=")) {
            o.cpus = splitList(v);
        } else if (const char *v = val("--machines=")) {
            o.machines = splitList(v);
        } else if (const char *v = val("--point-timeout=")) {
            o.pointTimeout = std::atof(v);
        } else if (arg == "--resume") {
            o.resume = true;
        }
    }
    if (o.jobs < 1)
        o.jobs = 1;
    if (o.pointTimeout <= 0)
        o.pointTimeout = 300.0;
    return o;
}

cpu::CoreConfig
coreByName(const std::string &name)
{
    if (name == "io4")
        return cpu::CoreConfig::io4();
    if (name == "ooo4")
        return cpu::CoreConfig::ooo4();
    if (name == "ooo8")
        return cpu::CoreConfig::ooo8();
    throw std::runtime_error("unknown core config: " + name);
}

sys::Machine
machineByName(const std::string &name)
{
    if (name == "Base")
        return sys::Machine::Base;
    if (name == "Stride")
        return sys::Machine::StridePf;
    if (name == "Bingo")
        return sys::Machine::BingoPf;
    if (name == "SS")
        return sys::Machine::SS;
    if (name == "SF-Aff")
        return sys::Machine::SFAff;
    if (name == "SF-Ind")
        return sys::Machine::SFInd;
    if (name == "SF")
        return sys::Machine::SF;
    throw std::runtime_error("unknown machine: " + name);
}

/** One cell of the sweep grid, in fixed enumeration order. */
struct Point
{
    cpu::CoreConfig core;
    sys::Machine machine;
    std::string workload;
    /** Deterministic file stem, identical to what runSim() derives. */
    std::string stem;
};

std::vector<Point>
enumerateGrid(const SweepOptions &o)
{
    std::vector<Point> points;
    for (const std::string &cpu_name : o.cpus) {
        cpu::CoreConfig core = coreByName(cpu_name);
        for (const std::string &wl : o.bench.workloads) {
            for (const std::string &m : o.machines) {
                Point p;
                p.core = core;
                p.machine = machineByName(m);
                p.workload = wl;
                p.stem = fileToken(core.label) + "_" +
                         fileToken(sys::machineName(p.machine)) + "_" +
                         fileToken(wl);
                points.push_back(p);
            }
        }
    }
    return points;
}

/** Host-side measurements a child reports back through a side file. */
struct HostReport
{
    double seconds = 0.0;
    uint64_t events = 0;
    uint64_t cycles = 0;
};

/** CRC32 (the snapshot library's checksum) of a file's raw bytes. */
bool
fileCrc(const std::string &path, uint32_t &crc)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string &s = ss.str();
    crc = snap::crc32(s.data(), s.size());
    return true;
}

/** Run one point to completion; only ever called in a forked child. */
int
runPoint(const Point &p, const SweepOptions &o,
         const std::string &points_dir, int attempt)
{
    // Deterministic failure hooks so the sweep's own tests can force a
    // crash, a hang, or a first-attempt-only crash on a chosen point.
    if (const char *v = std::getenv("SF_SWEEP_TEST_CRASH"))
        if (p.stem == v)
            std::abort();
    if (const char *v = std::getenv("SF_SWEEP_TEST_HANG"))
        if (p.stem == v)
            for (;;)
                pause();
    if (const char *v = std::getenv("SF_SWEEP_TEST_FLAKY"))
        if (p.stem == v && attempt == 1)
            std::abort();
    try {
        BenchOptions bo = o.bench;
        bo.statsJsonDir = points_dir;
        std::string snap_path = points_dir + "/" + p.stem + ".sfsnap";
        bool kill_after_ckpt = false;
        if (o.checkpointEvery > 0) {
            bo.checkpointPath = snap_path;
            bo.checkpointEvery = o.checkpointEvery;
            if (const char *v =
                    std::getenv("SF_SWEEP_TEST_KILL_AFTER_CKPT"))
                if (attempt == 1 &&
                    (std::string(v) == "*" || p.stem == v)) {
                    bo.checkpointStop = true;
                    kill_after_ckpt = true;
                }
            if (std::ifstream(snap_path).good()) {
                // A previous attempt (or a killed earlier sweep, under
                // --resume) left a snapshot: restart from it when it
                // validates, otherwise log, delete it, and re-run from
                // scratch.
                try {
                    snap::readSnapshot(snap_path);
                    bo.restorePath = snap_path;
                    std::printf("sweep: point %s restarting from %s\n",
                                p.stem.c_str(), snap_path.c_str());
                    // The child leaves via _Exit (no stdio flush).
                    std::fflush(stdout);
                } catch (const FatalError &e) {
                    std::fprintf(stderr,
                                 "sweep: point %s has a bad snapshot "
                                 "(%s), re-running from scratch\n",
                                 p.stem.c_str(), e.what());
                    ::unlink(snap_path.c_str());
                }
            }
        }
        sys::SimResults r = runSim(p.machine, p.core, p.workload, bo);
        if (r.stoppedAtCheckpoint && kill_after_ckpt) {
            // Die exactly as if SIGKILLed the instant the snapshot
            // landed on disk: no outputs, no sidecar.
            raise(SIGKILL);
        }
        std::ofstream host(points_dir + "/" + p.stem + ".host");
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "seconds=%.6f events=%llu cycles=%llu\n",
                      r.hostSeconds,
                      static_cast<unsigned long long>(r.eventsExecuted),
                      static_cast<unsigned long long>(r.cycles));
        host << buf;
        host.flush();
        if (!host.good())
            return 1;
        // Validation sidecar, written last: --resume only reuses this
        // point when the CRCs recorded here still match the recomputed
        // ones, so a SIGKILL at any earlier instant leaves a point
        // that re-runs.
        uint32_t stats_crc = 0, host_crc = 0, prof_crc = 0;
        if (!fileCrc(points_dir + "/" + p.stem + ".stats.json",
                     stats_crc) ||
            !fileCrc(points_dir + "/" + p.stem + ".host", host_crc))
            return 1;
        if (o.bench.profile &&
            !fileCrc(points_dir + "/" + p.stem + ".profsum.json",
                     prof_crc))
            return 1;
        char okbuf[128];
        if (o.bench.profile) {
            std::snprintf(okbuf, sizeof(okbuf),
                          "stats_crc=%08x host_crc=%08x prof_crc=%08x\n",
                          stats_crc, host_crc, prof_crc);
        } else {
            std::snprintf(okbuf, sizeof(okbuf),
                          "stats_crc=%08x host_crc=%08x\n", stats_crc,
                          host_crc);
        }
        std::ofstream okf(points_dir + "/" + p.stem + ".ok");
        okf << okbuf;
        okf.flush();
        return okf.good() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep: point %s failed: %s\n",
                     p.stem.c_str(), e.what());
        return 1;
    }
}

bool
readHostReport(const std::string &path, HostReport &h)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    std::getline(in, line);
    unsigned long long ev = 0, cy = 0;
    if (std::sscanf(line.c_str(), "seconds=%lf events=%llu cycles=%llu",
                    &h.seconds, &ev, &cy) != 3)
        return false;
    h.events = ev;
    h.cycles = cy;
    return true;
}

/**
 * A point's results are reusable under --resume only when its `.ok`
 * sidecar exists and the CRC32s it recorded still match the
 * recomputed checksums of stats.json, the host report, and (for
 * profile sweeps) profsum.json. The sidecar is the last file a child
 * writes, so a SIGKILL at any instant leaves a point that fails this
 * check and re-runs; a torn or bit-flipped result file fails the CRC
 * comparison the same way.
 */
bool
pointComplete(const SweepOptions &o, const std::string &points_dir,
              const std::string &stem)
{
    std::ifstream in(points_dir + "/" + stem + ".ok");
    if (!in)
        return false;
    std::string line;
    std::getline(in, line);
    unsigned stored_stats = 0, stored_host = 0, stored_prof = 0;
    int n = std::sscanf(line.c_str(),
                        "stats_crc=%x host_crc=%x prof_crc=%x",
                        &stored_stats, &stored_host, &stored_prof);
    if (n < 2 || (o.bench.profile && n != 3))
        return false;
    uint32_t crc = 0;
    if (!fileCrc(points_dir + "/" + stem + ".stats.json", crc) ||
        crc != stored_stats)
        return false;
    if (!fileCrc(points_dir + "/" + stem + ".host", crc) ||
        crc != stored_host)
        return false;
    if (o.bench.profile &&
        (!fileCrc(points_dir + "/" + stem + ".profsum.json", crc) ||
         crc != stored_prof))
        return false;
    HostReport h;
    return readHostReport(points_dir + "/" + stem + ".host", h);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("missing file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == ' '))
        s.pop_back();
    return s;
}

void
writeStringArray(std::ostream &os, const std::vector<std::string> &v)
{
    os << "[";
    for (size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << "\"" << v[i] << "\"";
    os << "]";
}

/**
 * The deterministic part of the report: grid description plus every
 * point's raw stats.json spliced in fixed grid order. Each per-point
 * dump is itself deterministic (the host stat group is off by
 * default), so these bytes are independent of job count and
 * completion order.
 */
void
writeDetSections(std::ostream &os, const SweepOptions &o,
                 const std::vector<Point> &points,
                 const std::string &points_dir,
                 const std::vector<char> &failed)
{
    char buf[96];
    os << "{\n  \"schema\": \"sf-sweep-1\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"grid\": {\"nx\": %d, \"ny\": %d, \"scale\": %.6f, ",
                  o.bench.nx, o.bench.ny, o.bench.scale);
    os << buf << "\"cpus\": ";
    writeStringArray(os, o.cpus);
    os << ", \"machines\": ";
    writeStringArray(os, o.machines);
    os << ", \"workloads\": ";
    writeStringArray(os, o.bench.workloads);
    os << "},\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << "    {\"id\": \"" << p.stem << "\", \"core\": \""
           << p.core.label << "\", \"machine\": \""
           << sys::machineName(p.machine) << "\", \"workload\": \""
           << p.workload << "\",\n     ";
        // Failed points carry a status marker instead of stats so the
        // report stays byte-identical whenever nothing failed.
        if (failed[i]) {
            os << "\"status\": \"failed\"}";
        } else {
            os << "\"stats\": "
               << slurp(points_dir + "/" + p.stem + ".stats.json");
            // Profile runs drop a per-point summary next to the stats;
            // splice it so the merged report carries the top-down
            // split and phase p95s per point.
            if (o.bench.profile) {
                os << ",\n     \"profile\": "
                   << slurp(points_dir + "/" + p.stem + ".profsum.json");
            }
            os << "}";
        }
        os << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]";
}

void
writeHostSection(std::ostream &os, const SweepOptions &o,
                 const std::vector<Point> &points,
                 const std::map<std::string, HostReport> &hosts,
                 double wall_seconds)
{
    char buf[192];
    double total_sec = 0.0;
    uint64_t total_events = 0;
    os << ",\n  \"host\": {\n";
    std::snprintf(buf, sizeof(buf), "    \"jobs\": %d,\n", o.jobs);
    os << buf << "    \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        auto it = hosts.find(points[i].stem);
        if (it == hosts.end()) {
            std::snprintf(buf, sizeof(buf),
                          "      {\"id\": \"%s\", \"status\": "
                          "\"failed\"}%s\n",
                          points[i].stem.c_str(),
                          i + 1 < points.size() ? "," : "");
            os << buf;
            continue;
        }
        const HostReport &h = it->second;
        total_sec += h.seconds;
        total_events += h.events;
        std::snprintf(buf, sizeof(buf),
                      "      {\"id\": \"%s\", \"seconds\": %.6f, "
                      "\"events\": %llu, \"eventsPerSec\": %.0f}%s\n",
                      points[i].stem.c_str(), h.seconds,
                      static_cast<unsigned long long>(h.events),
                      h.seconds > 0 ? double(h.events) / h.seconds : 0.0,
                      i + 1 < points.size() ? "," : "");
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "    ],\n    \"wallSeconds\": %.6f,\n"
                  "    \"cpuSeconds\": %.6f,\n"
                  "    \"totalEvents\": %llu,\n"
                  "    \"eventsPerWallSec\": %.0f\n  }",
                  wall_seconds, total_sec,
                  static_cast<unsigned long long>(total_events),
                  wall_seconds > 0 ? double(total_events) / wall_seconds
                                   : 0.0);
    os << buf;
}

/** State of one forked worker, keyed by pid in the scheduler. */
struct Child
{
    size_t idx;
    int attempt;
    // sflint: allow(D2, host-side child-timeout deadline of the sweep scheduler)
    std::chrono::steady_clock::time_point deadline;
    bool killed = false;
};

/** SIGKILL and reap every remaining child before the parent exits. */
void
killAll(std::map<pid_t, Child> &running)
{
    for (const auto &kv : running)
        kill(kv.first, SIGKILL);
    for (const auto &kv : running) {
        int status = 0;
        while (waitpid(kv.first, &status, 0) < 0 && errno == EINTR) {
        }
    }
    running.clear();
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opt = parseSweep(argc, argv);
    std::vector<Point> points = enumerateGrid(opt);
    std::string points_dir = opt.outDir + "/points";
    std::filesystem::create_directories(points_dir);

    std::printf("sweep: %zu points (%zu cpus x %zu machines x %zu "
                "workloads), %d job(s)\n",
                points.size(), opt.cpus.size(), opt.machines.size(),
                opt.bench.workloads.size(), opt.jobs);

    auto wall_start = std::chrono::steady_clock::now();

    // Work queue in fixed grid order; crashed/timed-out points requeue
    // once at the tail. --resume drops points whose results still pass
    // their recorded CRCs, so an interrupted sweep re-runs exactly the
    // missing or damaged points.
    std::deque<size_t> queue;
    std::vector<int> attempts(points.size(), 0);
    std::vector<char> failed(points.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
        if (opt.resume && pointComplete(opt, points_dir, points[i].stem)) {
            std::printf("sweep: resume skip %s\n",
                        points[i].stem.c_str());
            continue;
        }
        queue.push_back(i);
    }

    // Fork one child per point; up to `jobs` run concurrently. Every
    // point forks (even -j 1) so serial and parallel runs execute
    // byte-identical code paths. Reaping polls with WNOHANG so the
    // parent can enforce each child's wall-clock deadline.
    std::map<pid_t, Child> running;
    int failures = 0;
    // Crash-recovery test hook (tests/smoke_checkpoint.cmake): SIGKILL
    // the whole sweep after n completed points, as an OOM-killed or
    // rebooted host would.
    long parent_kill_after = 0;
    if (const char *v = std::getenv("SF_SWEEP_TEST_PARENT_KILL_AFTER"))
        parent_kill_after = std::atol(v);
    long completed = 0;
    const auto timeout = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(opt.pointTimeout));
    while (!queue.empty() || !running.empty()) {
        while (running.size() < size_t(opt.jobs) && !queue.empty()) {
            size_t idx = queue.front();
            queue.pop_front();
            ++attempts[idx];
            std::fflush(stdout);
            std::fflush(stderr);
            pid_t pid = fork();
            if (pid < 0) {
                std::perror("sweep: fork");
                killAll(running);
                return 1;
            }
            if (pid == 0) {
                // In the child: run the point and leave immediately
                // without flushing inherited stdio buffers twice.
                std::_Exit(runPoint(points[idx], opt, points_dir,
                                    attempts[idx]));
            }
            running[pid] = Child{idx, attempts[idx],
                                 std::chrono::steady_clock::now() +
                                     timeout,
                                 false};
        }
        int status = 0;
        pid_t done = waitpid(-1, &status, WNOHANG);
        if (done < 0) {
            if (errno == EINTR)
                continue;
            std::perror("sweep: waitpid");
            killAll(running);
            return 1;
        }
        if (done == 0) {
            // Nothing exited: enforce deadlines, then poll again.
            auto now = std::chrono::steady_clock::now();
            for (auto &kv : running) {
                if (!kv.second.killed && now >= kv.second.deadline) {
                    kv.second.killed = true;
                    kill(kv.first, SIGKILL);
                    std::printf("sweep: timeout %s after %.0fs, "
                                "killing\n",
                                points[kv.second.idx].stem.c_str(),
                                opt.pointTimeout);
                }
            }
            usleep(20'000);
            continue;
        }
        auto it = running.find(done);
        if (it == running.end())
            continue;
        Child c = it->second;
        running.erase(it);
        const Point &p = points[c.idx];
        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (ok) {
            std::printf("sweep: done %s\n", p.stem.c_str());
            ++completed;
            if (parent_kill_after > 0 && completed >= parent_kill_after) {
                std::fflush(stdout);
                killAll(running);
                raise(SIGKILL);
            }
            continue;
        }
        const char *why = c.killed             ? "timed out"
                          : WIFSIGNALED(status) ? "crashed"
                                                : "failed";
        if (c.attempt < 2) {
            std::printf("sweep: %s %s (status %d), retrying\n", why,
                        p.stem.c_str(), status);
            queue.push_back(c.idx);
        } else {
            ++failures;
            failed[c.idx] = 1;
            std::printf("sweep: FAILED %s (%s, status %d, "
                        "%d attempts)\n",
                        p.stem.c_str(), why, status, c.attempt);
        }
    }
    double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (failures)
        std::printf("sweep: %d point(s) failed after retry, recording "
                    "in report\n", failures);

    // Collect the host-side reports for the companion file; failed
    // points have none and get a status marker instead.
    std::map<std::string, HostReport> hosts;
    for (size_t i = 0; i < points.size(); ++i) {
        if (failed[i])
            continue;
        HostReport h;
        if (!readHostReport(points_dir + "/" + points[i].stem + ".host",
                            h)) {
            std::fprintf(stderr, "sweep: missing host report for %s\n",
                         points[i].stem.c_str());
            return 1;
        }
        hosts[points[i].stem] = h;
    }

    // Deterministic merge: fixed grid order, deterministic content.
    {
        std::ofstream det(opt.outDir + "/BENCH_sweep.det.json");
        writeDetSections(det, opt, points, points_dir, failed);
        det << "\n}\n";
    }
    {
        std::ofstream full(opt.outDir + "/BENCH_sweep.json");
        writeDetSections(full, opt, points, points_dir, failed);
        writeHostSection(full, opt, points, hosts, wall_seconds);
        full << "\n}\n";
    }

    double cpu_seconds = 0.0;
    uint64_t total_events = 0;
    for (const auto &kv : hosts) {
        cpu_seconds += kv.second.seconds;
        total_events += kv.second.events;
    }
    std::printf("sweep: merged %zu points -> %s/BENCH_sweep{.det,}.json\n",
                points.size(), opt.outDir.c_str());
    std::printf("sweep: wall %.2fs, sim cpu %.2fs, %.1f M events, "
                "%.2f M events/s wall\n",
                wall_seconds, cpu_seconds, double(total_events) / 1e6,
                wall_seconds > 0
                    ? double(total_events) / wall_seconds / 1e6
                    : 0.0);
    return 0;
}
