/**
 * @file
 * Figure 16: SF vs Bingo under 128 / 256 / 512-bit NoC links, speedup
 * normalized to Bingo with 128-bit links. The paper's observation: SF's
 * advantage grows with link width because control-message latency
 * becomes proportionally more important.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"conv3d", "mv", "bfs", "nn", "pathfinder", "srad"};
    }
    std::printf("=== Fig. 16: link-width sensitivity, OOO8 "
                "(%dx%d, scale %.3f) ===\n",
                opt.nx, opt.ny, opt.scale);
    std::printf("speedup normalized to Bingo-128\n\n");
    printHeader("workload", {"BG-128", "BG-256", "BG-512", "SF-128",
                             "SF-256", "SF-512"});

    const uint32_t widths[] = {128, 256, 512};
    std::vector<std::vector<double>> all(6);
    for (const auto &wl : opt.workloads) {
        double bingo128 = 0;
        std::vector<double> row;
        for (uint32_t w : widths) {
            sys::SimResults r = runSim(sys::Machine::BingoPf,
                                       cpu::CoreConfig::ooo8(), wl, opt,
                                       w);
            if (w == 128)
                bingo128 = double(r.cycles);
            row.push_back(bingo128 / double(r.cycles));
        }
        for (uint32_t w : widths) {
            sys::SimResults r = runSim(sys::Machine::SF,
                                       cpu::CoreConfig::ooo8(), wl, opt,
                                       w);
            row.push_back(bingo128 / double(r.cycles));
        }
        for (size_t i = 0; i < row.size(); ++i)
            all[i].push_back(row[i]);
        printRow(wl, row);
    }
    std::vector<double> gm;
    for (auto &v : all)
        gm.push_back(geomean(v));
    printRow("geomean", gm);
    std::printf("\nSF over Bingo at same width: 128b %.2fx, 256b %.2fx, "
                "512b %.2fx\n",
                gm[3] / gm[0], gm[4] / gm[1], gm[5] / gm[2]);
    std::printf("paper: SF/Bingo grows from 1.34x (128b) to 1.43x "
                "(512b)\n");
    return 0;
}
