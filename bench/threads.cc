/**
 * @file
 * Threaded-engine scaling benchmark (DESIGN.md §4i): run one mesh
 * point at several worker counts and report, per count, the wall
 * clock and the deterministic cycle count. The cycle counts double as
 * a determinism fingerprint: they must be identical across worker
 * counts and must match the checked-in baseline
 * (bench/baselines/BENCH_threads.json); only the wall clock may vary
 * between hosts. tests/threads_gate.cmake consumes the JSON report.
 *
 * Defaults to the paper's 8x8 mesh (the acceptance point for the
 * >=2x-with-4-workers speedup target) rather than bench_util's 4x4.
 *
 * Extra options on top of bench_util.hh:
 *   --counts=1,2,4   worker counts to run (default 1,2,4)
 *   --reps=N         repetitions per count; wall clock is the minimum
 *                    across reps (default 3)
 *   --out=FILE       write the JSON report here (default stdout only)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"

using namespace sf;

namespace {

struct Sample
{
    int threads = 1;
    double wallMs = 0.0;
    unsigned long long cycles = 0;
};

double
runOnceMs(const bench::BenchOptions &opt, const std::string &wl,
          int threads, unsigned long long &cycles_out)
{
    bench::BenchOptions one = opt;
    one.threads = threads;
    auto t0 = std::chrono::steady_clock::now();
    sys::SimResults r =
        bench::runSim(sys::Machine::SF, cpu::CoreConfig::ooo8(), wl, one);
    auto t1 = std::chrono::steady_clock::now();
    cycles_out = r.cycles;
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    // Default to the paper's 8x8 mesh unless --cores was given.
    bool cores_given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--cores=", 8) == 0)
            cores_given = true;
    }
    bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
    if (!cores_given)
        opt.nx = opt.ny = 8;

    std::vector<int> counts = {1, 2, 4};
    int reps = 3;
    std::string out_file;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--counts=", 0) == 0) {
            counts.clear();
            for (const auto &c :
                 bench::splitList(arg.c_str() + std::strlen("--counts=")))
                counts.push_back(parseThreadCount(c, "--counts"));
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = parseThreadCount(arg.c_str() + std::strlen("--reps="),
                                    "--reps");
        } else if (arg.rfind("--out=", 0) == 0) {
            out_file = arg.substr(std::strlen("--out="));
        }
    }

    const std::string wl =
        opt.workloads.empty() ? std::string("pathfinder")
                              : opt.workloads.front();
    const unsigned host_cores = std::thread::hardware_concurrency();

    std::printf("threads scaling: %dx%d SF %s scale=%.3f "
                "(host cores: %u, reps: %d)\n",
                opt.nx, opt.ny, wl.c_str(), opt.scale, host_cores, reps);

    std::vector<Sample> samples;
    for (int n : counts) {
        Sample s;
        s.threads = n;
        s.wallMs = 1e300;
        for (int r = 0; r < reps; ++r) {
            unsigned long long cycles = 0;
            double ms = runOnceMs(opt, wl, n, cycles);
            s.wallMs = std::min(s.wallMs, ms);
            if (r == 0) {
                s.cycles = cycles;
            } else if (cycles != s.cycles) {
                std::fprintf(stderr,
                             "threads=%d rep %d: cycles %llu != %llu — "
                             "the engine is not run-to-run "
                             "deterministic\n",
                             n, r, cycles, s.cycles);
                return 1;
            }
        }
        samples.push_back(s);
        std::printf("  threads=%d  %10.1f ms  cycles=%llu\n", n,
                    s.wallMs, s.cycles);
    }

    // Cross-count determinism: every worker count must simulate the
    // exact same machine, cycle for cycle.
    for (const Sample &s : samples) {
        if (s.cycles != samples.front().cycles) {
            std::fprintf(stderr,
                         "threads=%d: cycles %llu != threads=%d's %llu "
                         "— shard-count variance, engine bug\n",
                         s.threads, s.cycles, samples.front().threads,
                         samples.front().cycles);
            return 1;
        }
    }

    double base_ms = samples.front().wallMs;
    std::string json = "{\n  \"schema\": \"sf.bench.threads.v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"mesh\": \"%dx%d\",\n  \"workload\": \"%s\",\n"
                  "  \"scale\": %.4f,\n  \"hostCores\": %u,\n"
                  "  \"reps\": %d,\n  \"runs\": [\n",
                  opt.nx, opt.ny, wl.c_str(), opt.scale, host_cores,
                  reps);
    json += buf;
    for (size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"threads\": %d, \"wallMs\": %.2f, "
                      "\"cycles\": %llu, \"speedup\": %.3f}%s\n",
                      s.threads, s.wallMs, s.cycles,
                      base_ms / s.wallMs,
                      i + 1 < samples.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    if (!out_file.empty()) {
        std::ofstream os = openOutputFile(out_file, "--out");
        os << json;
        std::printf("wrote %s\n", out_file.c_str());
    }
    return 0;
}
