/**
 * @file
 * Ablation: SE_L2 stream-buffer capacity (Table III uses 16 kB) and
 * the credit refresh fraction. Smaller buffers mean a shorter credit
 * window, more flow-control messages, and less latency hiding.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

namespace {

sys::SimResults
runBuf(const std::string &wl_name, const BenchOptions &opt,
       uint32_t buf_bytes, double refresh)
{
    sys::SystemConfig cfg = sys::SystemConfig::make(
        sys::Machine::SF, cpu::CoreConfig::ooo8(), opt.nx, opt.ny);
    cfg.sel2.bufferBytes = buf_bytes;
    cfg.sel2.creditRefreshFraction = refresh;
    sys::TiledSystem system(cfg);
    workload::WorkloadParams wp;
    wp.numThreads = cfg.numTiles();
    wp.scale = opt.scale;
    wp.useStreams = true;
    auto wl = workload::makeWorkload(wl_name, wp);
    wl->init(system.addressSpace());
    return system.run(wl->makeAllThreads());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"mv", "nn", "pathfinder"};
    }
    std::printf("=== Ablation: SE_L2 buffer size / credit cadence "
                "(%dx%d, scale %.3f) ===\n\n",
                opt.nx, opt.ny, opt.scale);
    std::printf("speedup normalized to 16kB buffer, 0.5 refresh\n\n");
    printHeader("workload", {"2kB", "4kB", "16kB", "64kB", "r=0.25",
                             "r=0.9"});

    for (const auto &wl : opt.workloads) {
        sys::SimResults ref = runBuf(wl, opt, 16 * 1024, 0.5);
        double r = double(ref.cycles);
        std::vector<double> row;
        for (uint32_t kb : {2u, 4u, 16u, 64u})
            row.push_back(r / double(runBuf(wl, opt, kb * 1024,
                                            0.5).cycles));
        for (double fr : {0.25, 0.9})
            row.push_back(r /
                          double(runBuf(wl, opt, 16 * 1024, fr).cycles));
        printRow(wl, row);
        sys::SimResults small = runBuf(wl, opt, 2 * 1024, 0.5);
        std::printf("%-16s credit msgs: 16kB=%llu 2kB=%llu\n", "",
                    (unsigned long long)ref.creditMessages,
                    (unsigned long long)small.creditMessages);
    }
    return 0;
}
