/**
 * @file
 * Shared benchmark-harness utilities: command-line options, simulation
 * runners, and table formatting for the paper-figure reproductions.
 *
 * Every bench binary accepts:
 *   --cores=NxN        mesh size (default 4x4; the paper uses 8x8)
 *   --scale=S          dataset scale vs Table IV (default 0.03)
 *   --workloads=a,b,c  subset of the 12 benchmarks
 *   --full             paper-fidelity mode (8x8, scale 0.25)
 *   --stats-json=DIR   write one schema-versioned stats.json per run
 *   --sample-interval=N  counter snapshot every N cycles (with JSON)
 *   --check=LVL        invariant checker off|basic|full (SF_CHECK env
 *                      overrides)
 *   --faults=SPEC      deterministic fault injection (see sim/fault.hh)
 *   --watchdog-cycles=N  forward-progress watchdog interval (0 = off)
 *   --profile          latency-attribution profiler: stats.json gains
 *                      the profile.* groups and (with --stats-json)
 *                      each run also writes <stem>.profile.json and
 *                      <stem>.profsum.json
 *   --threads=N        worker threads for the tile-parallel engine
 *                      (results byte-identical to one worker;
 *                      DESIGN.md §4i)
 *   --checkpoint=PATH  periodic sf-snap-v1 snapshots to PATH (requires
 *                      --checkpoint-every; DESIGN.md §4j)
 *   --checkpoint-every=N  snapshot every N ticks (window-boundary
 *                      anchored)
 *   --checkpoint-stop  exit right after the first snapshot is written
 *   --restore=PATH     replay-verify the snapshot and run to the end;
 *                      a corrupt/mismatched snapshot exits 68
 */

#ifndef SF_BENCH_BENCH_UTIL_HH
#define SF_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/arg_parse.hh"
#include "sim/output_path.hh"
#include "sim/stream_trace.hh"
#include "system/tiled_system.hh"
#include "verify/oracle.hh"
#include "workload/workload.hh"

namespace sf {
namespace bench {

/** Split a comma-separated flag value into its items. */
inline std::vector<std::string>
splitList(const char *v)
{
    std::vector<std::string> out;
    std::string s = v;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

struct BenchOptions
{
    int nx = 4;
    int ny = 4;
    double scale = 0.06;
    std::vector<std::string> workloads = workload::workloadNames();
    /** When non-empty, every runSim() drops a stats.json here. */
    std::string statsJsonDir;
    /** Sampling interval (cycles) for JSON time series; 0 = off. */
    Cycles sampleInterval = 0;
    /** Invariant checker level for every run. */
    CheckLevel check = CheckLevel::Off;
    /** Fault-injection schedule for every run. */
    FaultConfig faults;
    /** Watchdog interval override; ~0 keeps the config default. */
    Tick watchdogCycles = ~0ULL;
    /**
     * Run the functional reference executor alongside every sim and
     * diff the final memory image + stream trip counts (exit 67 on
     * divergence). SF_VERIFY_BUG selects a protocol-bug injection for
     * the oracle's own negative tests.
     */
    bool verify = false;
    /**
     * Latency-attribution profiler (DESIGN.md §4h). Adds the
     * profile.* stat groups to stats.json and, with --stats-json,
     * writes a standalone profile.json + profsum.json per run.
     */
    bool profile = false;
    /**
     * Worker threads for the tile-parallel engine (DESIGN.md §4i).
     * Byte-identical results for any value; >1 only changes wall
     * clock.
     */
    int threads = 1;
    /**
     * Checkpoint/restore (DESIGN.md §4j): when checkpointPath is set,
     * every run writes an sf-snap-v1 snapshot every checkpointEvery
     * ticks; restorePath replay-verifies a snapshot before finishing
     * the run. Exit 68 on any snapshot defect.
     */
    std::string checkpointPath;
    Tick checkpointEvery = 0;
    bool checkpointStop = false;
    std::string restorePath;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto val = [&](const char *key) -> const char * {
                size_t n = std::strlen(key);
                if (arg.compare(0, n, key) == 0)
                    return arg.c_str() + n;
                return nullptr;
            };
            if (const char *v = val("--cores=")) {
                std::sscanf(v, "%dx%d", &o.nx, &o.ny);
            } else if (const char *v = val("--scale=")) {
                o.scale = std::atof(v);
            } else if (const char *v = val("--workloads=")) {
                o.workloads = splitList(v);
            } else if (const char *v = val("--stats-json=")) {
                o.statsJsonDir = v;
            } else if (arg == "--stats-json" && i + 1 < argc) {
                o.statsJsonDir = argv[++i];
            } else if (const char *v = val("--sample-interval=")) {
                o.sampleInterval = std::strtoull(v, nullptr, 10);
            } else if (const char *v = val("--check=")) {
                o.check = checkLevelFromString(v);
            } else if (const char *v = val("--faults=")) {
                o.faults = FaultConfig::parse(v);
            } else if (const char *v = val("--watchdog-cycles=")) {
                o.watchdogCycles = std::strtoull(v, nullptr, 10);
            } else if (arg == "--full") {
                o.nx = o.ny = 8;
                o.scale = 0.25;
            } else if (arg == "--verify") {
                o.verify = true;
            } else if (arg == "--profile") {
                o.profile = true;
            } else if (const char *v = val("--threads=")) {
                o.threads = parseThreadCount(v, "--threads");
            } else if (const char *v = val("--checkpoint=")) {
                o.checkpointPath = v;
                if (o.checkpointPath.empty())
                    fatal("--checkpoint: empty snapshot path");
            } else if (const char *v = val("--checkpoint-every=")) {
                o.checkpointEvery =
                    parseTickCount(v, "--checkpoint-every");
            } else if (arg == "--checkpoint-stop") {
                o.checkpointStop = true;
            } else if (const char *v = val("--restore=")) {
                o.restorePath = v;
                if (o.restorePath.empty())
                    fatal("--restore: empty snapshot path");
            } else if (arg == "--help") {
                std::printf(
                    "options: --cores=NxN --scale=S "
                    "--workloads=a,b,c --full --stats-json=DIR "
                    "--sample-interval=N --check=off|basic|full "
                    "--faults=SPEC --watchdog-cycles=N --verify "
                    "--profile --threads=N --checkpoint=PATH "
                    "--checkpoint-every=N --checkpoint-stop "
                    "--restore=PATH\n");
                std::exit(0);
            }
        }
        if (!o.checkpointPath.empty() && o.checkpointEvery == 0) {
            fatal("--checkpoint requires --checkpoint-every=N "
                  "(ticks between snapshots)");
        }
        if (o.checkpointPath.empty() && o.checkpointEvery != 0) {
            fatal("--checkpoint-every requires --checkpoint=PATH");
        }
        if (o.checkpointStop && o.checkpointPath.empty()) {
            fatal("--checkpoint-stop requires --checkpoint=PATH");
        }
        return o;
    }
};

/** Lower a free-form label into a filename-safe token. */
inline std::string
fileToken(const std::string &s)
{
    std::string t = s;
    for (char &c : t) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return t;
}

/** Run one (machine, workload) simulation. */
inline sys::SimResults
runSim(sys::Machine machine, const cpu::CoreConfig &core,
       const std::string &wl_name, const BenchOptions &opt,
       uint32_t link_bits = 0, uint32_t interleave = 0)
{
    sys::SystemConfig cfg =
        sys::SystemConfig::make(machine, core, opt.nx, opt.ny);
    if (link_bits)
        cfg.noc.linkBits = link_bits;
    if (interleave)
        cfg.nucaInterleave = interleave;
    if (!opt.statsJsonDir.empty()) {
        // Default to ~100 points over a typical scaled run.
        cfg.samplingInterval =
            opt.sampleInterval ? opt.sampleInterval : 10'000;
    }
    cfg.checkLevel = opt.check;
    cfg.faults = opt.faults;
    if (opt.watchdogCycles != ~0ULL)
        cfg.watchdogCycles = opt.watchdogCycles;
    cfg.verify = opt.verify;
    cfg.profile = opt.profile;
    cfg.threads = opt.threads;
    cfg.checkpointPath = opt.checkpointPath;
    cfg.checkpointEvery = opt.checkpointEvery;
    cfg.checkpointStop = opt.checkpointStop;
    cfg.restorePath = opt.restorePath;
    cfg.workloadTag = wl_name;
    if (const char *bug = std::getenv("SF_VERIFY_BUG"))
        cfg.verifyBug = bug;
    sys::TiledSystem system(cfg);

    auto &tracer = trace::StreamLifecycleTracer::instance();
    tracer.clear();

    workload::WorkloadParams wp;
    wp.numThreads = cfg.numTiles();
    wp.scale = opt.scale;
    wp.useStreams = sys::machineUsesStreams(machine);
    auto wl = workload::makeWorkload(wl_name, wp);
    wl->init(system.addressSpace());
    sys::SimResults r = system.run(wl->makeAllThreads());

    if (r.stoppedAtCheckpoint) {
        // --checkpoint-stop: the run ended right after its first
        // snapshot; counters are partial, so neither verify nor any
        // output file may be produced from them.
        return r;
    }

    if (opt.verify) {
        // Replay the same program functionally on fresh op sources and
        // diff the end-of-run architectural state.
        auto ref_threads = wl->makeAllThreads();
        std::vector<isa::OpSource *> srcs;
        for (auto &t : ref_threads)
            srcs.push_back(t.get());
        verify::RefResult golden =
            verify::runReference(system.addressSpace(), srcs);
        verify::checkOrDie(*system.verifyPlane(), golden,
                           system.addressSpace(), wl->verifyRegions(),
                           wl_name + " on " +
                               sys::machineName(machine));
    }

    if (!opt.statsJsonDir.empty()) {
        ensureOutputDir(opt.statsJsonDir, "--stats-json");
        std::string stem = fileToken(core.label) + "_" +
                           fileToken(sys::machineName(machine)) + "_" +
                           fileToken(wl_name);
        std::ofstream js = openOutputFile(
            opt.statsJsonDir + "/" + stem + ".stats.json",
            "--stats-json");
        system.dumpStatsJson(js, r);
        if (opt.profile) {
            std::ofstream pf = openOutputFile(
                opt.statsJsonDir + "/" + stem + ".profile.json",
                "--profile");
            system.dumpProfileJson(pf, r);
            std::ofstream ps = openOutputFile(
                opt.statsJsonDir + "/" + stem + ".profsum.json",
                "--profile");
            system.dumpProfileSummaryJson(ps);
        }
        if (tracer.enabled() && !tracer.events().empty()) {
            std::ofstream tr = openOutputFile(
                opt.statsJsonDir + "/" + stem + ".trace.json",
                "--stats-json");
            tracer.exportChromeTrace(tr);
        }
    }
    return r;
}

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += std::log(std::max(x, 1e-12));
    return std::exp(s / static_cast<double>(v.size()));
}

/** Print one row: name followed by fixed-width columns. */
inline void
printRow(const std::string &name, const std::vector<double> &cols,
         const char *fmt = "%10.2f")
{
    std::printf("%-16s", name.c_str());
    for (double c : cols)
        std::printf(fmt, c);
    std::printf("\n");
}

inline void
printHeader(const std::string &name, const std::vector<std::string> &cols)
{
    std::printf("%-16s", name.c_str());
    for (const auto &c : cols)
        std::printf("%10s", c.c_str());
    std::printf("\n");
}

} // namespace bench
} // namespace sf

#endif // SF_BENCH_BENCH_UTIL_HH
