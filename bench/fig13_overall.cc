/**
 * @file
 * Figure 13: overall speedup and energy efficiency of
 * L1Stride-L2Stride, L1Bingo-L2Stride, SS, and SF over a no-prefetch
 * Base, for IO4 / OOO4 / OOO8 cores across the 12 workloads.
 *
 * Speedup = cycles(Base) / cycles(config).
 * Energy efficiency = energy(Base) / energy(config).
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

namespace {

const std::vector<std::pair<sys::Machine, const char *>> configs = {
    {sys::Machine::StridePf, "Stride"},
    {sys::Machine::BingoPf, "Bingo"},
    {sys::Machine::SS, "SS"},
    {sys::Machine::SF, "SF"},
};

void
runCore(const cpu::CoreConfig &core, const BenchOptions &opt)
{
    std::printf("\n=== Fig. 13 (%s, %dx%d, scale %.3f) ===\n",
                core.label.c_str(), opt.nx, opt.ny, opt.scale);
    std::vector<std::string> headers = {"Stride", "Bingo", "SS", "SF"};

    std::printf("\n-- speedup over Base-%s --\n", core.label.c_str());
    printHeader("workload", headers);
    std::vector<std::vector<double>> speedups(configs.size());
    std::vector<std::vector<double>> effs(configs.size());

    std::vector<std::vector<double>> eff_rows;
    for (const auto &wl : opt.workloads) {
        sys::SimResults base =
            runSim(sys::Machine::Base, core, wl, opt);
        std::vector<double> row, eff_row;
        for (size_t c = 0; c < configs.size(); ++c) {
            sys::SimResults r = runSim(configs[c].first, core, wl, opt);
            double sp = double(base.cycles) / double(r.cycles);
            double ef = base.energyNj / r.energyNj;
            row.push_back(sp);
            eff_row.push_back(ef);
            speedups[c].push_back(sp);
            effs[c].push_back(ef);
        }
        printRow(wl, row);
        eff_rows.push_back(eff_row);
    }
    std::vector<double> gm;
    for (auto &v : speedups)
        gm.push_back(geomean(v));
    printRow("geomean", gm);

    std::printf("\n-- energy efficiency over Base-%s --\n",
                core.label.c_str());
    printHeader("workload", headers);
    for (size_t w = 0; w < opt.workloads.size(); ++w)
        printRow(opt.workloads[w], eff_rows[w]);
    std::vector<double> gme;
    for (auto &v : effs)
        gme.push_back(geomean(v));
    printRow("geomean", gme);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    for (const cpu::CoreConfig &core :
         {cpu::CoreConfig::io4(), cpu::CoreConfig::ooo4(),
          cpu::CoreConfig::ooo8()}) {
        runCore(core, opt);
    }
    return 0;
}
