/**
 * @file
 * Differential stream-program fuzzer for the --verify oracle.
 *
 * Each seed deterministically generates a random kernel within the
 * stream ISA's limits — affine streams at 1/2/3 loop levels, indirect
 * gathers (with the w loop), reduction chains, and conditional
 * (data-dependent) stepping — partitioned across all tiles with
 * barriers between phases. The kernel then runs on every machine in
 * the differential matrix
 *
 *   {in-order, OOO} x {stride-prefetch, no-float, float,
 *                      float+confluence}
 *
 * with the verify data plane enabled, and each run's end-of-sim
 * memory image and trip counts are diffed against the functional
 * reference executor. Any disagreement dies with exit code 67 and the
 * first-divergence diagnostic.
 *
 * The outcome log (one line per seed x config, with the golden image
 * hash) is byte-identical across invocations with the same seeds, so
 * CI can replay a fixed corpus and assert determinism.
 *
 * Usage: fuzz [--seeds=LO:HI] [--seed-file=FILE] [--log=FILE]
 *   --seeds=LO:HI    fuzz seeds LO..HI-1 (default 0:50)
 *   --seed-file=F    newline-separated explicit seed list ('#' comments)
 *   --log=F          also write the outcome log to F
 *
 * SF_VERIFY_BUG injects a protocol bug (see L3Bank::setVerifyBug) so
 * the fuzzer's own detection path can be exercised negatively.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "system/tiled_system.hh"
#include "verify/oracle.hh"
#include "workload/kernel_util.hh"
#include "workload/workload.hh"

using namespace sf;

namespace {

/** One barrier-delimited phase of a generated kernel. */
struct FuzzPhase
{
    enum class Kind
    {
        Map1D,    //!< out[i] = f(in[i])
        Map2D,    //!< 2-level affine walk with a row pitch
        Map3D,    //!< 3-level affine walk
        Gather,   //!< out[i,w] = f(target[idx[i]*s + w])
        Reduce,   //!< per-thread reduction chain, one store per tile
        CondCopy, //!< compact odd elements (conditional stepping)
    };
    Kind kind = Kind::Map1D;
    uint64_t elems = 0; //!< total elements (thread-partitioned)
    uint64_t inner = 1; //!< innermost dim (2D/3D)
    uint64_t mid = 1;   //!< middle dim (3D)
    int fpOps = 1;      //!< compute chain length per vector
    uint32_t wLen = 1;  //!< consecutive gather items (Eq. 1 w loop)
    /**
     * Source array: -1 reads the init-only input; >= 0 reads that
     * phase's output with a *reversed* thread partition — a cross-tile
     * producer/consumer handoff through the barrier, which is the
     * pattern that makes dirty-owner forwards (FwdGetU, §IV-E)
     * observable to the differential matrix.
     */
    int src = -1;
};

/** Seed-deterministic kernel descriptor, shared by every config. */
struct FuzzProgram
{
    uint64_t seed = 0;
    uint64_t inElems = 64;
    uint64_t idxElems = 0;
    uint64_t targetElems = 256;
    std::vector<FuzzPhase> phases;

    static FuzzProgram
    generate(uint64_t seed)
    {
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234);
        FuzzProgram p;
        p.seed = seed;
        int n_phases = static_cast<int>(rng.rangeInclusive(1, 3));
        for (int i = 0; i < n_phases; ++i) {
            FuzzPhase ph;
            ph.kind = static_cast<FuzzPhase::Kind>(
                rng.rangeInclusive(0, 5));
            ph.fpOps = static_cast<int>(rng.rangeInclusive(1, 3));
            switch (ph.kind) {
              case FuzzPhase::Kind::Map1D:
              case FuzzPhase::Kind::Reduce:
              case FuzzPhase::Kind::CondCopy:
                ph.elems = 256 * rng.rangeInclusive(1, 16);
                if (ph.kind == FuzzPhase::Kind::Map1D && i > 0 &&
                    rng.chance(0.5)) {
                    const FuzzPhase &pp = p.phases[i - 1];
                    if (pp.kind != FuzzPhase::Kind::Gather &&
                        pp.kind != FuzzPhase::Kind::Reduce) {
                        ph.src = i - 1;
                        ph.elems = pp.elems;
                    }
                }
                break;
              case FuzzPhase::Kind::Map2D:
                ph.inner = 8ULL << rng.rangeInclusive(0, 2);
                ph.elems = ph.inner * 8 * rng.rangeInclusive(1, 8);
                break;
              case FuzzPhase::Kind::Map3D:
                ph.inner = 4ULL << rng.rangeInclusive(0, 1);
                ph.mid = static_cast<uint64_t>(rng.rangeInclusive(2, 4));
                ph.elems = ph.inner * ph.mid * 8 *
                           rng.rangeInclusive(1, 4);
                break;
              case FuzzPhase::Kind::Gather:
                ph.elems = 256 * rng.rangeInclusive(1, 8);
                ph.wLen = rng.chance(0.3) ? 2 : 1;
                break;
            }
            if (ph.kind == FuzzPhase::Kind::Gather)
                p.idxElems = std::max(p.idxElems, ph.elems);
            else
                p.inElems = std::max(p.inElems, ph.elems);
            p.phases.push_back(ph);
        }
        p.targetElems = 256 * rng.rangeInclusive(1, 4);
        return p;
    }
};

class FuzzWorkload;

class FuzzThread : public workload::KernelThread
{
  public:
    FuzzThread(FuzzWorkload &w, int tid);

    size_t refill(std::vector<isa::Op> &out) override;

  private:
    void emitPhase(std::vector<isa::Op> &out, const FuzzPhase &ph,
                   size_t pi);

    FuzzWorkload &_w;
    size_t _phase = 0;
};

class FuzzWorkload : public workload::Workload
{
  public:
    FuzzWorkload(const workload::WorkloadParams &p,
                 const FuzzProgram &prog)
        : Workload(p), prog(prog)
    {}

    std::string name() const override { return "fuzz"; }

    void
    init(mem::AddressSpace &as) override
    {
        space = &as;
        Rng rng(prog.seed ^ 0xabcdef0123ULL);
        in = as.alloc(prog.inElems * 4, "in");
        for (uint64_t i = 0; i < prog.inElems; ++i)
            as.writeT<uint32_t>(in + 4 * i,
                                static_cast<uint32_t>(rng.next()));
        target = as.alloc(prog.targetElems * 4, "target");
        for (uint64_t i = 0; i < prog.targetElems; ++i)
            as.writeT<uint32_t>(target + 4 * i,
                                static_cast<uint32_t>(rng.next()));
        uint64_t idx_elems = std::max<uint64_t>(1, prog.idxElems);
        idx = as.alloc(idx_elems * 4, "idx");
        // Keep every gathered address in range even with the w loop.
        uint64_t bound = prog.targetElems > 2 ? prog.targetElems - 2 : 1;
        for (uint64_t i = 0; i < idx_elems; ++i)
            as.writeT<uint32_t>(idx + 4 * i,
                                static_cast<uint32_t>(rng.range(bound)));
        for (size_t pi = 0; pi < prog.phases.size(); ++pi) {
            const FuzzPhase &ph = prog.phases[pi];
            uint64_t bytes;
            if (ph.kind == FuzzPhase::Kind::Reduce)
                bytes = static_cast<uint64_t>(params.numThreads) * 8;
            else if (ph.kind == FuzzPhase::Kind::Gather)
                bytes = ph.elems * ph.wLen * 4;
            else
                bytes = ph.elems * 4;
            outs.push_back(
                as.alloc(bytes, "out" + std::to_string(pi)));
            outBytes.push_back(bytes);
        }
    }

    std::shared_ptr<isa::OpSource>
    makeThread(int tid) override
    {
        return std::make_shared<FuzzThread>(*this, tid);
    }

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        std::vector<verify::MemRegion> r = {
            {"in", in, prog.inElems * 4},
            {"target", target, prog.targetElems * 4},
            {"idx", idx, std::max<uint64_t>(1, prog.idxElems) * 4}};
        for (size_t pi = 0; pi < outs.size(); ++pi)
            r.push_back({"out" + std::to_string(pi), outs[pi],
                         outBytes[pi]});
        return r;
    }

    FuzzProgram prog;
    Addr in = 0, target = 0, idx = 0;
    std::vector<Addr> outs;
    std::vector<uint64_t> outBytes;
    mem::AddressSpace *space = nullptr;
};

FuzzThread::FuzzThread(FuzzWorkload &w, int tid)
    : KernelThread(*w.space, w.params.useStreams, tid, w.params.vecElems),
      _w(w)
{}

size_t
FuzzThread::refill(std::vector<isa::Op> &out)
{
    size_t before = out.size();
    if (_phase >= _w.prog.phases.size())
        return 0;
    size_t pi = _phase++;
    emitPhase(out, _w.prog.phases[pi], pi);
    emitBarrier(out);
    return out.size() - before;
}

void
FuzzThread::emitPhase(std::vector<isa::Op> &out, const FuzzPhase &ph,
                      size_t pi)
{
    Addr out_a = _w.outs[pi];
    constexpr StreamId sIn = 0, sOut = 1, sIdx = 2;
    uint64_t lo = 0, hi = 0;

    switch (ph.kind) {
      case FuzzPhase::Kind::Map1D: {
        _w.chunk(ph.elems, _tid, lo, hi);
        if (lo >= hi)
            return;
        // Cross-phase source: read the previous phase's output with
        // the thread partition reversed, so every read crosses tiles.
        Addr src_a = ph.src < 0 ? _w.in : _w.outs[ph.src];
        uint64_t plo = lo, phi = hi;
        if (ph.src >= 0) {
            _w.chunk(ph.elems, _w.params.numThreads - 1 - _tid, plo,
                     phi);
        }
        uint64_t n = std::min(hi - lo, phi - plo);
        beginStreams(out, {affine1d(sIn, src_a + plo * 4, 4, n, 4),
                           affine1d(sOut, out_a + lo * 4, 4, n, 4,
                                    true)});
        rowPass(out, n, {sIn}, sOut, ph.fpOps);
        endStreams(out, {sIn, sOut});
        break;
      }

      case FuzzPhase::Kind::Map2D:
      case FuzzPhase::Kind::Map3D: {
        // Partition the outermost level; vector chunks never cross
        // the innermost dim (the conv3d idiom), so stream and plain
        // variants observe the same bytes per access.
        uint64_t plane = ph.inner * ph.mid;
        uint64_t outer = ph.elems / plane;
        _w.chunk(outer, _tid, lo, hi);
        if (lo >= hi)
            return;
        isa::StreamConfig cin =
            affine2d(sIn, _w.in + lo * plane * 4, 4, ph.inner, 4,
                     (hi - lo) * ph.mid,
                     static_cast<int64_t>(ph.inner * 4));
        if (ph.kind == FuzzPhase::Kind::Map3D) {
            cin = affine2d(sIn, _w.in + lo * plane * 4, 4, ph.inner, 4,
                           ph.mid, static_cast<int64_t>(ph.inner * 4));
            cin.affine.nDims = 3;
            cin.affine.stride[2] = static_cast<int64_t>(plane * 4);
            cin.affine.len[2] = hi - lo;
        }
        uint64_t n = (hi - lo) * plane;
        beginStreams(out, {cin, affine1d(sOut, out_a + lo * plane * 4,
                                         4, n, 4, true)});
        uint64_t done = 0;
        while (done < n) {
            uint64_t in_row = done % ph.inner;
            auto elems = static_cast<uint16_t>(std::min<uint64_t>(
                static_cast<uint64_t>(_vec), ph.inner - in_row));
            uint64_t v = loadView(out, sIn, elems);
            uint64_t last = v;
            for (int k = 0; k < ph.fpOps; ++k)
                last = emitCompute(out, isa::OpKind::FpAlu, last);
            storeView(out, sOut, last, elems);
            stepView(out, sOut, elems);
            stepView(out, sIn, elems);
            done += elems;
        }
        endStreams(out, {sIn, sOut});
        break;
      }

      case FuzzPhase::Kind::Gather: {
        _w.chunk(ph.elems, _tid, lo, hi);
        if (lo >= hi)
            return;
        uint64_t n = hi - lo;
        beginStreams(
            out,
            {affine1d(sIdx, _w.idx + lo * 4, 4, n, 4),
             indirectOn(sIn, sIdx, _w.target, 4, 4, 4, ph.wLen,
                        n * ph.wLen),
             affine1d(sOut, out_a + lo * ph.wLen * 4, 4, n * ph.wLen,
                      4, true)});
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t e = loadView(out, sIdx, 1);
            for (uint32_t w = 0; w < ph.wLen; ++w) {
                uint64_t v = loadView(out, sIn, 1, e);
                uint64_t c = emitCompute(out, isa::OpKind::FpAlu, v);
                storeView(out, sOut, c, 1);
                stepView(out, sOut, 1);
                stepView(out, sIn, 1);
            }
            stepView(out, sIdx, 1);
        }
        endStreams(out, {sIdx, sIn, sOut});
        break;
      }

      case FuzzPhase::Kind::Reduce: {
        _w.chunk(ph.elems, _tid, lo, hi);
        if (lo >= hi)
            return;
        uint64_t n = hi - lo;
        beginStreams(out, {affine1d(sIn, _w.in + lo * 4, 4, n, 4)});
        uint64_t acc = 0;
        uint64_t done = 0;
        while (done < n) {
            auto elems = static_cast<uint16_t>(
                std::min<uint64_t>(static_cast<uint64_t>(_vec),
                                   n - done));
            uint64_t v = loadView(out, sIn, elems);
            acc = emitCompute(out, isa::OpKind::FpAlu, acc ? acc : v,
                              acc ? v : 0);
            stepView(out, sIn, elems);
            done += elems;
        }
        emitStore(out, out_a + static_cast<uint64_t>(_tid) * 8, 8,
                  pcOf(40), acc);
        endStreams(out, {sIn});
        break;
      }

      case FuzzPhase::Kind::CondCopy: {
        _w.chunk(ph.elems, _tid, lo, hi);
        if (lo >= hi)
            return;
        uint64_t n = hi - lo;
        beginStreams(out, {affine1d(sIn, _w.in + lo * 4, 4, n, 4),
                           affine1d(sOut, out_a + lo * 4, 4, n, 4,
                                    true)});
        for (uint64_t i = lo; i < hi; ++i) {
            uint64_t v = loadView(out, sIn, 1);
            if (_as.readT<uint32_t>(_w.in + 4 * i) & 1) {
                storeView(out, sOut, v, 1);
                stepView(out, sOut, 1);
            }
            stepView(out, sIn, 1);
        }
        endStreams(out, {sIn, sOut});
        break;
      }
    }
}

/** Order-independent hash of a golden result, for the outcome log. */
uint64_t
goldenHash(const verify::RefResult &g)
{
    uint64_t h = verify::mix64(0x5eedULL ^ g.opCount);
    for (const auto &kv : g.image) {
        h = verify::mix64(h ^ kv.first);
        h = verify::mix64(
            h ^ verify::foldBytes(kv.second.data(), lineBytes));
    }
    for (const auto &kv : g.trips) {
        h = verify::mix64(
            h ^ (static_cast<uint64_t>(kv.first.first) << 32) ^
            kv.first.second);
        h = verify::mix64(h ^ kv.second);
    }
    return h;
}

struct ConfigPoint
{
    const char *cpuName;
    cpu::CoreConfig core;
    sys::Machine machine;
};

/** Run one (seed, config) point; dies with exit 67 on divergence. */
uint64_t
runPoint(const FuzzProgram &prog, const ConfigPoint &pt, uint64_t *ops)
{
    sys::SystemConfig cfg =
        sys::SystemConfig::make(pt.machine, pt.core, 2, 2);
    cfg.maxCycles = 50'000'000;
    cfg.verify = true;
    if (const char *bug = std::getenv("SF_VERIFY_BUG"))
        cfg.verifyBug = bug;
    // Tiny floating budget: even the fuzzer's small footprints float.
    cfg.seCore.l2CapacityBytes = 1024;
    sys::TiledSystem system(cfg);

    workload::WorkloadParams wp;
    wp.numThreads = cfg.numTiles();
    wp.useStreams = sys::machineUsesStreams(pt.machine);
    FuzzWorkload wl(wp, prog);
    wl.init(system.addressSpace());
    sys::SimResults r = system.run(wl.makeAllThreads());
    if (r.hitCycleLimit) {
        std::fprintf(stderr, "fuzz: seed=%llu %s/%s hit cycle limit\n",
                     (unsigned long long)prog.seed, pt.cpuName,
                     sys::machineName(pt.machine));
        std::exit(1);
    }

    auto ref_threads = wl.makeAllThreads();
    std::vector<isa::OpSource *> srcs;
    for (auto &t : ref_threads)
        srcs.push_back(t.get());
    verify::RefResult golden =
        verify::runReference(system.addressSpace(), srcs);
    verify::checkOrDie(*system.verifyPlane(), golden,
                       system.addressSpace(), wl.verifyRegions(),
                       "fuzz seed " + std::to_string(prog.seed) + " on " +
                           pt.cpuName + "/" +
                           sys::machineName(pt.machine));
    *ops = r.committedOps;
    return goldenHash(golden);
}

std::vector<uint64_t>
loadSeedFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "fuzz: cannot open seed file %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::vector<uint64_t> seeds;
    std::string line;
    while (std::getline(is, line)) {
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        seeds.push_back(std::strtoull(line.c_str() + start, nullptr, 10));
    }
    return seeds;
}

} // namespace

int
main(int argc, char **argv)
try {
    uint64_t lo = 0, hi = 50;
    std::string seed_file, log_file;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--seeds=", 0) == 0) {
            std::sscanf(arg.c_str() + 8, "%llu:%llu",
                        (unsigned long long *)&lo,
                        (unsigned long long *)&hi);
        } else if (arg.rfind("--seed-file=", 0) == 0) {
            seed_file = arg.substr(std::strlen("--seed-file="));
        } else if (arg.rfind("--log=", 0) == 0) {
            log_file = arg.substr(std::strlen("--log="));
        } else if (arg == "--help") {
            std::printf("usage: fuzz [--seeds=LO:HI] [--seed-file=FILE] "
                        "[--log=FILE]\n");
            return 0;
        }
    }

    std::vector<uint64_t> seeds;
    if (!seed_file.empty()) {
        seeds = loadSeedFile(seed_file);
    } else {
        for (uint64_t s = lo; s < hi; ++s)
            seeds.push_back(s);
    }

    const ConfigPoint points[] = {
        {"io4", cpu::CoreConfig::io4(), sys::Machine::StridePf},
        {"io4", cpu::CoreConfig::io4(), sys::Machine::SS},
        {"io4", cpu::CoreConfig::io4(), sys::Machine::SFInd},
        {"io4", cpu::CoreConfig::io4(), sys::Machine::SF},
        {"ooo4", cpu::CoreConfig::ooo4(), sys::Machine::StridePf},
        {"ooo4", cpu::CoreConfig::ooo4(), sys::Machine::SS},
        {"ooo4", cpu::CoreConfig::ooo4(), sys::Machine::SFInd},
        {"ooo4", cpu::CoreConfig::ooo4(), sys::Machine::SF},
    };

    std::string log;
    for (uint64_t seed : seeds) {
        FuzzProgram prog = FuzzProgram::generate(seed);
        for (const auto &pt : points) {
            uint64_t ops = 0;
            uint64_t h = runPoint(prog, pt, &ops);
            char line[160];
            std::snprintf(line, sizeof(line),
                          "seed=%llu cfg=%s/%s status=ok ops=%llu "
                          "golden=%016llx\n",
                          (unsigned long long)seed, pt.cpuName,
                          sys::machineName(pt.machine),
                          (unsigned long long)ops,
                          (unsigned long long)h);
            log += line;
            std::fputs(line, stdout);
        }
    }

    if (!log_file.empty()) {
        std::ofstream os(log_file, std::ios::binary);
        os << log;
    }
    std::printf("fuzz: %zu seed(s) x %zu config(s), all agree with "
                "reference\n",
                seeds.size(), std::size(points));
    return 0;
} catch (const FatalError &e) {
    return e.exitStatus();
}
