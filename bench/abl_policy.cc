/**
 * @file
 * Ablation: the §IV-D floating-policy knobs. Sweeps the history
 * decision threshold and the miss-ratio requirement, and compares
 * against "float everything" and "float nothing" extremes, showing
 * why the paper gates floating on observed reuse/miss behaviour.
 */

#include "bench/bench_util.hh"

using namespace sf;
using namespace sf::bench;

namespace {

sys::SimResults
runPolicy(const std::string &wl_name, const BenchOptions &opt,
          uint64_t decision_reqs, double miss_ratio, double reuse_ratio)
{
    sys::SystemConfig cfg = sys::SystemConfig::make(
        sys::Machine::SF, cpu::CoreConfig::ooo8(), opt.nx, opt.ny);
    cfg.seCore.floatDecisionRequests = decision_reqs;
    cfg.seCore.floatMissRatio = miss_ratio;
    cfg.seCore.floatReuseRatio = reuse_ratio;
    sys::TiledSystem system(cfg);
    workload::WorkloadParams wp;
    wp.numThreads = cfg.numTiles();
    wp.scale = opt.scale;
    wp.useStreams = true;
    auto wl = workload::makeWorkload(wl_name, wp);
    wl->init(system.addressSpace());
    return system.run(wl->makeAllThreads());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Default to a representative subset; pass --workloads= for all.
    {
        bool given = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--workloads=", 12) == 0)
                given = true;
        if (!given)
            opt.workloads = {"mv", "nn", "pathfinder"};
    }
    std::printf("=== Ablation: floating policy (%dx%d, scale %.3f) "
                "===\n\n",
                opt.nx, opt.ny, opt.scale);
    std::printf("cycles normalized to the default policy "
                "(thresh=64, miss>=0.6, reuse<=0.05)\n\n");
    printHeader("workload", {"default", "eager", "greedy", "late",
                             "strict"});

    for (const auto &wl : opt.workloads) {
        // default
        sys::SimResults def = runPolicy(wl, opt, 64, 0.6, 0.05);
        double d = double(def.cycles);
        // eager: decide after only 8 requests
        sys::SimResults eager = runPolicy(wl, opt, 8, 0.6, 0.05);
        // greedy: float regardless of reuse/miss behaviour
        sys::SimResults greedy = runPolicy(wl, opt, 8, 0.0, 1.0);
        // late: very conservative decision point
        sys::SimResults late = runPolicy(wl, opt, 1024, 0.6, 0.05);
        // strict: nearly impossible to float by history
        sys::SimResults strict = runPolicy(wl, opt, 64, 0.99, 0.0);
        printRow(wl, {1.0, d / double(eager.cycles),
                      d / double(greedy.cycles),
                      d / double(late.cycles),
                      d / double(strict.cycles)});
        std::printf("%-16s floats: def=%llu eager=%llu greedy=%llu "
                    "late=%llu strict=%llu; sinks def=%llu "
                    "greedy=%llu\n",
                    "", (unsigned long long)def.streamsFloated,
                    (unsigned long long)eager.streamsFloated,
                    (unsigned long long)greedy.streamsFloated,
                    (unsigned long long)late.streamsFloated,
                    (unsigned long long)strict.streamsFloated,
                    (unsigned long long)def.streamsSunk,
                    (unsigned long long)greedy.streamsSunk);
    }
    return 0;
}
