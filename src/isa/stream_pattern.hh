/**
 * @file
 * Stream pattern descriptors (Table I of the paper).
 *
 * An affine pattern covers up to three loop levels:
 *   addr(i) = base + i0*strd0 + i1*strd1 + i2*strd2
 * where the linear iteration i decomposes as i0 = i % len0,
 * i1 = (i / len0) % len1, i2 = i / (len0*len1).
 *
 * An indirect pattern chains on a base (index) stream:
 *   addr(i, w) = base + value(A[i]) * scale + offset + w*elemSize
 * covering the paper's B[A[i][j][k] + w] form (Eq. 1).
 */

#ifndef SF_ISA_STREAM_PATTERN_HH
#define SF_ISA_STREAM_PATTERN_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {
namespace isa {

/** Up to 3-level affine access pattern. */
struct AffinePattern
{
    Addr base = 0;
    /** Bytes accessed per element. */
    uint32_t elemSize = 4;
    /** Number of live loop levels, 1..3. */
    int nDims = 1;
    /** Byte strides, innermost first. */
    int64_t stride[3] = {0, 0, 0};
    /** Trip counts, innermost first (len[d]=1 for unused dims). */
    uint64_t len[3] = {1, 1, 1};

    /** Total number of elements across all levels. */
    uint64_t
    totalElems() const
    {
        uint64_t t = 1;
        for (int d = 0; d < nDims; ++d)
            t *= len[d];
        return t;
    }

    /** Address of linear iteration @p iter. */
    Addr
    elemAddr(uint64_t iter) const
    {
        Addr a = base;
        uint64_t rem = iter;
        for (int d = 0; d < nDims; ++d) {
            uint64_t idx = (d == nDims - 1) ? rem : rem % len[d];
            rem = (d == nDims - 1) ? 0 : rem / len[d];
            a += static_cast<Addr>(
                static_cast<int64_t>(idx) * stride[d]);
        }
        return a;
    }

    /**
     * Estimated memory footprint in bytes: the span of distinct lines a
     * full traversal touches, assuming non-overlapping levels.
     */
    uint64_t
    footprintBytes() const
    {
        uint64_t span = elemSize;
        for (int d = 0; d < nDims; ++d) {
            uint64_t sp = static_cast<uint64_t>(
                stride[d] < 0 ? -stride[d] : stride[d]);
            if (sp == 0 || len[d] == 0)
                continue;
            span += sp * (len[d] - 1);
        }
        return span;
    }

    bool
    operator==(const AffinePattern &o) const = default;
};

/** Indirect pattern chained on an index stream (60-bit config). */
struct IndirectPattern
{
    /** Base of the target array B. */
    Addr base = 0;
    /** Bytes accessed per indirect element. */
    uint32_t elemSize = 4;
    /** Bytes of each index value in the base stream (4 or 8). */
    uint32_t idxSize = 4;
    /** addr = base + idx*scale + offset (+ w*elemSize for w-loop). */
    int64_t scale = 4;
    int64_t offset = 0;
    /** Consecutive items per indirect location (the w loop of Eq. 1). */
    uint32_t wLen = 1;

    Addr
    targetAddr(int64_t idx_value, uint32_t w = 0) const
    {
        return static_cast<Addr>(
            static_cast<int64_t>(base) + idx_value * scale + offset +
            static_cast<int64_t>(w) * elemSize);
    }

    bool
    operator==(const IndirectPattern &o) const = default;
};

/**
 * Full configuration of one stream, as carried by a stream_cfg
 * instruction and (when floated) by the stream configuration packet.
 */
struct StreamConfig
{
    StreamId sid = invalidStream;
    bool isStore = false;

    /** Affine pattern; for indirect streams this mirrors the base. */
    AffinePattern affine;

    /** Indirection, dependent on the stream @p baseSid. */
    bool hasIndirect = false;
    IndirectPattern indirect;
    StreamId baseSid = invalidStream;

    /**
     * Whether the total trip count is statically known. Unknown-length
     * streams (data-dependent loop bounds) terminate via stream_end.
     */
    bool lengthKnown = true;

    /** Address space id (process); confluence requires equality. */
    int asid = 0;

    /** Total elements when lengthKnown (including the w loop). */
    uint64_t
    totalElems() const
    {
        uint64_t n = affine.totalElems();
        if (hasIndirect)
            n *= indirect.wLen;
        return n;
    }

    /** Estimated footprint used by the floating policy (§IV-D). */
    uint64_t
    footprintBytes() const
    {
        if (!lengthKnown)
            return 0;
        if (hasIndirect)
            return totalElems() * indirect.elemSize;
        return affine.footprintBytes();
    }

    /**
     * Size in bits of the corresponding configuration packet fields
     * (Table I): used by tests to check the "less than one cache line"
     * claim and by the NoC to size config messages.
     */
    uint32_t
    configBits() const
    {
        // cid(6) + sid(4) + base(48) + strd(3x48=144) + ptaddr(48) +
        // iter(48) + elem size(8) + len(3x48=144) = 450 bits
        uint32_t bits = 6 + 4 + 48 + 3 * 48 + 48 + 48 + 8 + 3 * 48;
        if (hasIndirect) {
            // sid(4) + base(48) + elem size(8) = 60 bits
            bits += 4 + 48 + 8;
        }
        return bits;
    }
};

} // namespace isa
} // namespace sf

#endif // SF_ISA_STREAM_PATTERN_HH
