/**
 * @file
 * The stream-annotated instruction representation executed by cores.
 *
 * This is the repository's stand-in for the paper's stream-specialized
 * X86: workload kernels (playing the role of the LLVM pass) emit a
 * dynamic sequence of Ops with explicit dataflow (relative
 * back-references), memory addresses, and decoupled-stream instructions
 * (stream_cfg / stream_step / stream_end / stream_load / stream_store).
 */

#ifndef SF_ISA_OP_HH
#define SF_ISA_OP_HH

#include <cstdint>

#include "sim/types.hh"

namespace sf {
namespace isa {

/** Dynamic instruction kinds. */
enum class OpKind : uint8_t
{
    IntAlu,      //!< 1-cycle integer / SIMD-int ALU
    IntMult,     //!< 3-cycle integer multiply
    IntDiv,      //!< 12-cycle integer divide
    FpAlu,       //!< 2-cycle FP / SIMD-FP ALU
    FpDiv,       //!< 12-cycle FP divide
    Load,        //!< scalar or vector demand load
    Store,       //!< scalar or vector demand store
    StreamCfg,   //!< configure a group of streams (before a loop)
    StreamStep,  //!< advance a stream by `elems` iterations
    StreamEnd,   //!< deconstruct a stream
    StreamLoad,  //!< consume current element(s) of a load stream
    StreamStore, //!< provide data for current element of a store stream
    Barrier,     //!< OpenMP-style global barrier
    Nop,
};

/** Functional-unit classes (Table III). */
enum class FuClass : uint8_t
{
    IntAlu,
    IntMultDiv,
    FpAlu,
    FpDiv,
    Mem,
    None,
};

/** Map an op kind to the FU class that executes it. */
constexpr FuClass
fuClassOf(OpKind k)
{
    switch (k) {
      case OpKind::IntAlu: return FuClass::IntAlu;
      case OpKind::IntMult:
      case OpKind::IntDiv: return FuClass::IntMultDiv;
      case OpKind::FpAlu: return FuClass::FpAlu;
      case OpKind::FpDiv: return FuClass::FpDiv;
      case OpKind::Load:
      case OpKind::Store:
      case OpKind::StreamLoad:
      case OpKind::StreamStore: return FuClass::Mem;
      default: return FuClass::None;
    }
}

/** Fixed execution latency of compute ops, in cycles (Table III). */
constexpr Cycles
opLatency(OpKind k)
{
    switch (k) {
      case OpKind::IntAlu: return 1;
      case OpKind::IntMult: return 3;
      case OpKind::IntDiv: return 12;
      case OpKind::FpAlu: return 2;
      case OpKind::FpDiv: return 12;
      default: return 1;
    }
}

constexpr bool
isMemOp(OpKind k)
{
    return k == OpKind::Load || k == OpKind::Store ||
           k == OpKind::StreamLoad || k == OpKind::StreamStore;
}

constexpr bool
isStreamOp(OpKind k)
{
    return k == OpKind::StreamCfg || k == OpKind::StreamStep ||
           k == OpKind::StreamEnd || k == OpKind::StreamLoad ||
           k == OpKind::StreamStore;
}

/** Maximum register sources per op. */
constexpr int maxSrcs = 3;

/**
 * One dynamic instruction.
 *
 * Dataflow is encoded as up to three relative back-references: a src of
 * k means "the op k positions earlier in program order". 0 means the
 * slot is unused. This keeps ops POD and lets the OOO core track
 * readiness with a bounded completion window.
 */
struct Op
{
    OpKind kind = OpKind::Nop;
    uint8_t numSrcs = 0;
    uint16_t srcs[maxSrcs] = {0, 0, 0};

    /** Effective virtual address for Load/Store. */
    Addr addr = 0;
    /** Access size in bytes (scalar 4/8; AVX-512 vectors up to 64). */
    uint16_t size = 0;
    /** Stream id for stream ops. */
    StreamId sid = invalidStream;
    /** Elements consumed/advanced by StreamLoad/StreamStep (SIMD). */
    uint16_t elems = 1;
    /** Static program location; keys prefetcher training tables. */
    uint32_t pc = 0;
    /** For StreamCfg: index into the op source's stream-config table. */
    int32_t cfgIdx = -1;
    /**
     * This access belongs to a compiler-recognizable stream pattern.
     * Set by workload generators even in non-stream (baseline) builds,
     * so Fig. 2a can report the stream-covered fraction of unreused
     * cache fills.
     */
    bool streamEligible = false;

    /** Append a dependence on the op @p dist positions back. */
    void
    addSrc(uint16_t dist)
    {
        if (numSrcs < maxSrcs && dist > 0)
            srcs[numSrcs++] = dist;
    }
};

} // namespace isa
} // namespace sf

#endif // SF_ISA_OP_HH
