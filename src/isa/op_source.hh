/**
 * @file
 * The interface between workload kernels and cores.
 *
 * Each hardware thread executes the op sequence produced by one
 * OpSource. Sources generate ops lazily in chunks so multi-million-op
 * kernels never materialize a full trace. A chunk never crosses a
 * Barrier op (the barrier, if any, is the last op of its chunk), which
 * keeps the generation-time functional state consistent with
 * synchronization (streams live in synchronization-free regions, §V-A).
 */

#ifndef SF_ISA_OP_SOURCE_HH
#define SF_ISA_OP_SOURCE_HH

#include <cstdint>
#include <vector>

#include "isa/op.hh"
#include "isa/stream_pattern.hh"

namespace sf {
namespace isa {

/** Lazily generated per-thread dynamic op sequence. */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /**
     * Append the next chunk of ops to @p out.
     * @return number of ops appended; 0 means the thread is done.
     */
    virtual size_t refill(std::vector<Op> &out) = 0;

    /** Configuration referenced by a StreamCfg op's cfgIdx. */
    virtual const std::vector<StreamConfig> &
    streamConfigGroup(int32_t cfg_idx) const = 0;
};

/**
 * Helper base class for op sources: buffers emitted ops, tracks
 * positions for dependence back-references, and owns the stream-config
 * table. Kernel generators call emit*() from their refill().
 */
class OpEmitter : public OpSource
{
  public:
    const std::vector<StreamConfig> &
    streamConfigGroup(int32_t cfg_idx) const override
    {
        return _cfgGroups.at(static_cast<size_t>(cfg_idx));
    }

  protected:
    /** Position (in the whole dynamic sequence) of the next op. */
    uint64_t pos() const { return _pos; }

    /** Emit an op, returning its position for later back-references. */
    uint64_t
    emit(std::vector<Op> &out, Op op)
    {
        out.push_back(op);
        return _pos++;
    }

    /** Compute op depending on earlier positions (0 = no dep). */
    uint64_t
    emitCompute(std::vector<Op> &out, OpKind kind, uint64_t dep_a = 0,
                uint64_t dep_b = 0, uint64_t dep_c = 0, uint32_t pc = 0)
    {
        Op op;
        op.kind = kind;
        op.pc = pc;
        addDep(op, dep_a);
        addDep(op, dep_b);
        addDep(op, dep_c);
        return emit(out, op);
    }

    uint64_t
    emitLoad(std::vector<Op> &out, Addr addr, uint16_t size, uint32_t pc,
             uint64_t addr_dep = 0)
    {
        Op op;
        op.kind = OpKind::Load;
        op.addr = addr;
        op.size = size;
        op.pc = pc;
        addDep(op, addr_dep);
        return emit(out, op);
    }

    uint64_t
    emitStore(std::vector<Op> &out, Addr addr, uint16_t size, uint32_t pc,
              uint64_t data_dep = 0)
    {
        Op op;
        op.kind = OpKind::Store;
        op.addr = addr;
        op.size = size;
        op.pc = pc;
        addDep(op, data_dep);
        return emit(out, op);
    }

    /** Emit stream_cfg for a group of streams configured together. */
    uint64_t
    emitStreamCfg(std::vector<Op> &out, std::vector<StreamConfig> group)
    {
        Op op;
        op.kind = OpKind::StreamCfg;
        op.cfgIdx = static_cast<int32_t>(_cfgGroups.size());
        _cfgGroups.push_back(std::move(group));
        return emit(out, op);
    }

    uint64_t
    emitStreamLoad(std::vector<Op> &out, StreamId sid, uint16_t elems = 1,
                   uint16_t size = 0)
    {
        Op op;
        op.kind = OpKind::StreamLoad;
        op.sid = sid;
        op.elems = elems;
        op.size = size;
        return emit(out, op);
    }

    uint64_t
    emitStreamStore(std::vector<Op> &out, StreamId sid,
                    uint64_t data_dep = 0, uint16_t elems = 1)
    {
        Op op;
        op.kind = OpKind::StreamStore;
        op.sid = sid;
        op.elems = elems;
        addDep(op, data_dep);
        return emit(out, op);
    }

    uint64_t
    emitStreamStep(std::vector<Op> &out, StreamId sid, uint16_t elems = 1)
    {
        Op op;
        op.kind = OpKind::StreamStep;
        op.sid = sid;
        op.elems = elems;
        return emit(out, op);
    }

    uint64_t
    emitStreamEnd(std::vector<Op> &out, StreamId sid)
    {
        Op op;
        op.kind = OpKind::StreamEnd;
        op.sid = sid;
        return emit(out, op);
    }

    uint64_t
    emitBarrier(std::vector<Op> &out)
    {
        Op op;
        op.kind = OpKind::Barrier;
        return emit(out, op);
    }

  private:
    void
    addDep(Op &op, uint64_t producer_pos)
    {
        if (producer_pos == 0)
            return;
        // position of the op being built is _pos
        uint64_t dist = _pos - producer_pos;
        if (dist > 0 && dist <= 0xffff)
            op.addSrc(static_cast<uint16_t>(dist));
    }

    uint64_t _pos = 1; // position 0 is reserved as "no dependence"
    std::vector<std::vector<StreamConfig>> _cfgGroups;
};

} // namespace isa
} // namespace sf

#endif // SF_ISA_OP_SOURCE_HH
