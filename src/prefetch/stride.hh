/**
 * @file
 * Classic PC-indexed stride prefetcher (Table III: 16 streams, degree
 * 8 at L1 / 16 at L2, single-cycle request generation).
 */

#ifndef SF_PREFETCH_STRIDE_HH
#define SF_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "mem/priv_cache.hh"
#include "sim/stats.hh"

namespace sf {
namespace prefetch {

struct StrideConfig
{
    int tableEntries = 16;
    int degree = 8;
    /** Confidence needed before issuing (consecutive same strides). */
    int confidenceThreshold = 2;
    /** Fill target: 1 = L1+L2, 2 = L2 only. */
    int fillLevel = 1;
};

/** Per-PC stride detection with degree-N run-ahead. */
class StridePrefetcher : public mem::PrefetchObserverIf
{
  public:
    StridePrefetcher(mem::PrivCache &cache, const StrideConfig &cfg)
        : _cache(cache), _cfg(cfg),
          _table(static_cast<size_t>(cfg.tableEntries))
    {}

    void
    observe(const DemandInfo &info) override
    {
        Entry &e = _table[static_cast<size_t>(info.pc) %
                          _table.size()];
        if (e.pc != info.pc) {
            e = Entry();
            e.pc = info.pc;
            e.lastAddr = info.paddr;
            return;
        }
        int64_t stride = static_cast<int64_t>(info.paddr) -
                         static_cast<int64_t>(e.lastAddr);
        if (stride == 0)
            return;
        if (stride == e.stride) {
            if (e.confidence < 8)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.lastAddr = info.paddr;

        if (e.confidence < _cfg.confidenceThreshold)
            return;

        // Issue degree prefetches ahead. Sub-line strides advance at
        // line granularity so the run-ahead distance is `degree`
        // LINES, not a fraction of one.
        int64_t eff_stride = stride;
        if (stride > 0 && stride < int64_t(lineBytes))
            eff_stride = lineBytes;
        else if (stride < 0 && -stride < int64_t(lineBytes))
            eff_stride = -int64_t(lineBytes);
        Addr prev_line = invalidAddr;
        for (int k = 1; k <= _cfg.degree; ++k) {
            Addr target = static_cast<Addr>(
                static_cast<int64_t>(info.paddr) + eff_stride * k);
            Addr line = lineAlign(target);
            if (line == prev_line)
                continue;
            prev_line = line;
            ++issued;
            mem::Access a;
            a.kind = mem::AccessKind::Prefetch;
            a.paddr = line;
            a.vaddr = line;
            a.size = 4;
            a.pc = info.pc;
            a.prefetchLevel = _cfg.fillLevel;
            _cache.access(std::move(a));
        }
    }

    stats::Scalar issued;

  private:
    struct Entry
    {
        uint32_t pc = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        int confidence = 0;
    };

    mem::PrivCache &_cache;
    StrideConfig _cfg;
    std::vector<Entry> _table;
};

} // namespace prefetch
} // namespace sf

#endif // SF_PREFETCH_STRIDE_HH
