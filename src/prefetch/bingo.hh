/**
 * @file
 * Bingo-style spatial data prefetcher [Bakhshalipour et al., HPCA'19]
 * (Table III: 8 kB pattern history table, 2 kB regions).
 *
 * Bingo predicts the spatial footprint of a region from history,
 * indexed by a long event (PC+Address) with fallback to a short event
 * (PC+Offset). On the first (trigger) access to a region it replays
 * the predicted footprint; when a region's generation ends, the
 * observed footprint is stored in the PHT under both events.
 */

#ifndef SF_PREFETCH_BINGO_HH
#define SF_PREFETCH_BINGO_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/priv_cache.hh"
#include "sim/stats.hh"

namespace sf {
namespace prefetch {

struct BingoConfig
{
    uint32_t regionBytes = 2048;
    /** PHT capacity in entries (8 kB / ~8 B per entry). */
    size_t phtEntries = 1024;
    /** Max tracked active region generations. */
    size_t activeRegions = 64;
    int fillLevel = 1;
};

/** The spatial footprint of one region generation. */
class BingoPrefetcher : public mem::PrefetchObserverIf
{
  public:
    BingoPrefetcher(mem::PrivCache &cache, const BingoConfig &cfg)
        : _cache(cache), _cfg(cfg),
          _linesPerRegion(cfg.regionBytes / lineBytes)
    {}

    void
    observe(const DemandInfo &info) override
    {
        Addr region = info.paddr & ~static_cast<Addr>(
            _cfg.regionBytes - 1);
        uint32_t offset = static_cast<uint32_t>(
            (info.paddr - region) / lineBytes);

        auto it = _active.find(region);
        if (it != _active.end()) {
            it->second.footprint |= (1ULL << offset);
            return;
        }

        // Trigger access: start a generation and replay a prediction.
        if (_active.size() >= _cfg.activeRegions)
            retireOldest();
        Gen gen;
        gen.triggerPc = info.pc;
        gen.triggerOffset = offset;
        gen.footprint = (1ULL << offset);
        _lru.push_back(region);
        gen.lruIt = std::prev(_lru.end());
        _active.emplace(region, gen);

        uint64_t predicted = 0;
        auto lit = _pht.find(longEvent(info.pc, region, offset));
        if (lit != _pht.end()) {
            predicted = lit->second;
            ++longHits;
        } else {
            auto sit = _pht.find(shortEvent(info.pc, offset));
            if (sit != _pht.end()) {
                predicted = sit->second;
                ++shortHits;
            }
        }

        predicted &= ~(1ULL << offset); // demand covers the trigger
        for (uint32_t b = 0; b < _linesPerRegion; ++b) {
            if (!(predicted & (1ULL << b)))
                continue;
            ++issued;
            mem::Access a;
            a.kind = mem::AccessKind::Prefetch;
            a.paddr = region + static_cast<Addr>(b) * lineBytes;
            a.vaddr = a.paddr;
            a.size = 4;
            a.pc = info.pc;
            a.prefetchLevel = _cfg.fillLevel;
            _cache.access(std::move(a));
        }
    }

    stats::Scalar issued, longHits, shortHits;

  private:
    struct Gen
    {
        uint32_t triggerPc = 0;
        uint32_t triggerOffset = 0;
        uint64_t footprint = 0;
        std::list<Addr>::iterator lruIt;
    };

    uint64_t
    longEvent(uint32_t pc, Addr region, uint32_t offset) const
    {
        // PC+Address: identifies the exact trigger block.
        return (static_cast<uint64_t>(pc) << 32) ^
               (region / _cfg.regionBytes * 64 + offset) ^
               0x8000000000000000ULL;
    }

    uint64_t
    shortEvent(uint32_t pc, uint32_t offset) const
    {
        return (static_cast<uint64_t>(pc) << 8) ^ offset;
    }

    void
    retireOldest()
    {
        Addr region = _lru.front();
        _lru.pop_front();
        auto it = _active.find(region);
        if (it == _active.end())
            return;
        const Gen &gen = it->second;
        // Learn under both events; bound the PHT size crudely (random
        // replacement via clear once over capacity).
        if (_pht.size() > _cfg.phtEntries * 2)
            _pht.clear();
        _pht[longEvent(gen.triggerPc, region, gen.triggerOffset)] =
            gen.footprint;
        _pht[shortEvent(gen.triggerPc, gen.triggerOffset)] =
            gen.footprint;
        _active.erase(it);
    }

    mem::PrivCache &_cache;
    BingoConfig _cfg;
    uint32_t _linesPerRegion;
    std::unordered_map<Addr, Gen> _active;
    std::list<Addr> _lru;
    std::unordered_map<uint64_t, uint64_t> _pht;
};

} // namespace prefetch
} // namespace sf

#endif // SF_PREFETCH_BINGO_HH
