#include "noc/mesh.hh"

#include <algorithm>
#include <map>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace sf {
namespace noc {

Mesh::Mesh(EventQueue &eq, const MeshConfig &config)
    : SimObject("mesh", eq), _cfg(config),
      _sinks(static_cast<size_t>(config.nx * config.ny)),
      _links(static_cast<size_t>(config.nx * config.ny) * 4),
      _routerFlits(static_cast<size_t>(config.nx * config.ny), 0),
      _traffic(static_cast<size_t>(config.nx * config.ny)),
      _packetHops(static_cast<size_t>(config.nx * config.ny),
                  stats::Histogram(1, 16)),
      _startTick(eq.curTick())
{
    sf_assert(config.nx > 0 && config.ny > 0, "empty mesh");
    sf_assert(config.linkBits >= 8, "link too narrow");
}

void
Mesh::scheduleHopEvent(TileId at, TileId target, Tick when,
                       EventQueue::Handler fn)
{
    if (_domains) {
        _domains->scheduleTile(target, when, _domains->nextKey(at),
                               std::move(fn), EventPriority::Delivery);
    } else {
        eventQueue().schedule(when, std::move(fn),
                              EventPriority::Delivery);
    }
}

TrafficStats
Mesh::traffic() const
{
    TrafficStats total;
    for (const TrafficStats &t : _traffic) {
        for (size_t c = 0; c < 3; ++c) {
            total.flitsInjected[c] += t.flitsInjected[c];
            total.flitHops[c] += t.flitHops[c];
            total.packets[c] += t.packets[c];
        }
        total.linkBusyCycles += t.linkBusyCycles;
    }
    return total;
}

const stats::Histogram &
Mesh::packetHops() const
{
    _packetHopsMerged = stats::Histogram(1, 16);
    for (const stats::Histogram &h : _packetHops)
        _packetHopsMerged.merge(h);
    return _packetHopsMerged;
}

void
Mesh::bindSink(TileId tile, Sink sink)
{
    sf_assert(tile >= 0 && tile < numTiles(), "bad tile id %d", tile);
    _sinks[static_cast<size_t>(tile)] = std::move(sink);
}

int
Mesh::hopDistance(TileId a, TileId b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

int
Mesh::liveLinkCount() const
{
    int live = 0;
    for (TileId t = 0; t < numTiles(); ++t)
        for (int d = 0; d < 4; ++d)
            if (neighbor(t, d) != invalidTile)
                ++live;
    return live;
}

double
Mesh::linkUtilization() const
{
    Tick elapsed = curTick() - _startTick;
    if (elapsed == 0)
        return 0.0;
    // Only count interior links that exist (edge routers have fewer).
    uint64_t busy = 0;
    uint64_t live_links = 0;
    for (TileId t = 0; t < numTiles(); ++t) {
        for (int d = 0; d < 4; ++d) {
            if (neighbor(t, d) == invalidTile)
                continue;
            ++live_links;
            busy += _links[static_cast<size_t>(t) * 4 +
                           static_cast<size_t>(d)].busyCycles;
        }
    }
    if (live_links == 0)
        return 0.0;
    return static_cast<double>(busy) /
           (static_cast<double>(live_links) * elapsed);
}

Tick
Mesh::oldestInFlightTick() const
{
    Tick oldest = maxTick;
    for (const auto &[seq, info] : _inFlight)
        oldest = std::min(oldest, info.injectTick);
    return oldest;
}

void
Mesh::forEachInFlight(
    const std::function<void(const MsgPtr &, Tick)> &fn) const
{
    for (const auto &[seq, info] : _inFlight)
        fn(info.msg, info.injectTick);
}

void
Mesh::debugDumpInFlight(std::FILE *out) const
{
    std::fprintf(out, "mesh: %zu packet(s) in flight\n", _inFlight.size());
    for (const auto &[seq, info] : _inFlight) {
        const MsgPtr &msg = info.msg;
        std::fprintf(out,
                     "  %d -> %d (+%zu) cls=%d bytes=%u injected@%llu "
                     "remaining=%d\n",
                     (int)msg->src, (int)msg->dests.front(),
                     msg->dests.size() - 1, (int)msg->cls,
                     msg->payloadBytes, (unsigned long long)info.injectTick,
                     info.remaining);
    }
}

void
Mesh::send(const MsgPtr &msg)
{
    if (_interceptor) {
        Cycles delay = 0;
        switch (_interceptor(msg, delay)) {
          case SendAction::Deliver:
            break;
          case SendAction::Drop:
            SF_DPRINTF(NoC, "fault: dropped %d -> %d cls=%d",
                       (int)msg->src, (int)msg->dests.front(),
                       (int)msg->cls);
            return;
          case SendAction::Delay:
            SF_DPRINTF(NoC, "fault: delaying %d -> %d by %llu",
                       (int)msg->src, (int)msg->dests.front(),
                       (unsigned long long)delay);
            // Re-injection stays in the sender's execution context
            // (same tile, so any delay is shard-safe).
            scheduleHopEvent(msg->src, msg->src, now(msg->src) + delay,
                             [this, msg] { inject(msg); });
            return;
          case SendAction::Duplicate:
            SF_DPRINTF(NoC, "fault: duplicating %d -> %d",
                       (int)msg->src, (int)msg->dests.front());
            inject(msg);
            break;
        }
    }
    inject(msg);
}

void
Mesh::inject(const MsgPtr &msg)
{
    sf_assert(!msg->dests.empty(), "message with no destination");
    uint32_t flits = flitsOf(msg->payloadBytes);
    auto cls = static_cast<size_t>(msg->cls);
    // Injection-side counters belong to the sending tile's account
    // (send() runs in the sender's execution context).
    TrafficStats &ts = _traffic[static_cast<size_t>(msg->src)];
    ts.flitsInjected[cls] += flits;
    ++ts.packets[cls];
    int max_hops = 0;
    for (TileId d : msg->dests)
        max_hops = std::max(max_hops, hopDistance(msg->src, d));
    _packetHops[static_cast<size_t>(msg->src)].sample(
        static_cast<uint64_t>(max_hops));
    SF_DPRINTF(NoC, "inject %d -> %d (+%zu) cls=%d flits=%u hops=%d",
               (int)msg->src, (int)msg->dests.front(),
               msg->dests.size() - 1, (int)msg->cls, flits, max_hops);
    if (_trackInFlight) {
        auto [sit, fresh] =
            _inFlightSeq.try_emplace(msg.get(), _nextInFlightSeq);
        if (fresh)
            ++_nextInFlightSeq;
        InFlightInfo &info = _inFlight[sit->second];
        if (info.remaining == 0) {
            info.msg = msg;
            info.injectTick = now(msg->src);
        }
        info.remaining += static_cast<int>(msg->dests.size());
    }
    // Injection passes through the local router pipeline once.
    hop(msg, msg->src, msg->dests, flits);
}

int
Mesh::routeDir(TileId at, TileId dest) const
{
    int ax = xOf(at), ay = yOf(at);
    int dx = xOf(dest), dy = yOf(dest);
    if (dx > ax)
        return East;
    if (dx < ax)
        return West;
    if (dy > ay)
        return South;
    if (dy < ay)
        return North;
    return -1;
}

TileId
Mesh::neighbor(TileId at, int dir) const
{
    int x = xOf(at), y = yOf(at);
    switch (dir) {
      case East: return x + 1 < _cfg.nx ? tileAt(x + 1, y) : invalidTile;
      case West: return x > 0 ? tileAt(x - 1, y) : invalidTile;
      case South: return y + 1 < _cfg.ny ? tileAt(x, y + 1) : invalidTile;
      case North: return y > 0 ? tileAt(x, y - 1) : invalidTile;
      default: return invalidTile;
    }
}

Mesh::Link &
Mesh::linkFrom(TileId at, int dir)
{
    return _links[static_cast<size_t>(at) * 4 + static_cast<size_t>(dir)];
}

void
Mesh::hop(const MsgPtr &msg, TileId at, std::vector<TileId> dests,
          uint32_t flits)
{
    // Split destinations by output direction (multicast tree branch).
    std::map<int, std::vector<TileId>> by_dir;
    bool local = false;
    for (TileId d : dests) {
        int dir = routeDir(at, d);
        if (dir < 0)
            local = true;
        else
            by_dir[dir].push_back(d);
    }

    _routerFlits[static_cast<size_t>(at)] += flits;

    if (local) {
        // Eject through the local port after the router pipeline
        // (same tile, so the event stays on @p at's shard).
        scheduleHopEvent(
            at, at, now(at) + _cfg.routerLatency, [this, msg, at]() {
                auto &sink = _sinks[static_cast<size_t>(at)];
                sf_assert(static_cast<bool>(sink),
                          "no sink bound on tile %d", at);
                // Settle the conservation account before the
                // sink runs: the receiver may legally re-send
                // the same message object (forwarding).
                if (_trackInFlight) {
                    auto sit = _inFlightSeq.find(msg.get());
                    if (sit != _inFlightSeq.end()) {
                        auto it = _inFlight.find(sit->second);
                        if (it != _inFlight.end() &&
                            --it->second.remaining <= 0) {
                            _inFlight.erase(it);
                            _inFlightSeq.erase(sit);
                        }
                    }
                }
                sink(msg);
            });
    }

    for (auto &[dir, sub_dests] : by_dir) {
        TileId next = neighbor(at, dir);
        sf_assert(next != invalidTile, "X-Y routing fell off the mesh");

        Link &link = linkFrom(at, dir);
        // Router pipeline, then wait for the link, then serialize.
        Tick ready = now(at) + _cfg.routerLatency;
        Tick start = std::max(ready, link.nextFree);
        Tick depart = start + flits; // 1 flit per cycle serialization
        link.nextFree = depart;
        link.busyCycles += flits;
        link.queueCycles += start - ready;
        _traffic[static_cast<size_t>(at)].linkBusyCycles += flits;
        _traffic[static_cast<size_t>(at)]
            .flitHops[static_cast<size_t>(msg->cls)] += flits;

        Tick arrive = depart + _cfg.linkLatency;
        if (_prof && msg->profId) {
            bool rsp = msg->vnet == VNet::Response;
            _prof->add(at, msg->profId,
                       rsp ? prof::Phase::NocRspQueue
                           : prof::Phase::NocReqQueue,
                       start - ready);
            _prof->add(at, msg->profId,
                       rsp ? prof::Phase::NocRspXfer
                           : prof::Phase::NocReqXfer,
                       _cfg.routerLatency + flits + _cfg.linkLatency);
        }
        auto moved = std::move(sub_dests);
        // The only cross-tile event creation in the simulator: the
        // arrival is always >= router + 1 flit + link cycles away,
        // which is exactly the PDES lookahead (DESIGN.md §4i).
        scheduleHopEvent(at, next, arrive,
                         [this, msg, next, moved, flits]() {
                             hop(msg, next, moved, flits);
                         });
    }
}

} // namespace noc
} // namespace sf
