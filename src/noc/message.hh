/**
 * @file
 * Network message base types and flit accounting classes.
 */

#ifndef SF_NOC_MESSAGE_HH
#define SF_NOC_MESSAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace sf {
namespace noc {

/**
 * Virtual networks, used to separate protocol message classes. The
 * simulator models unbounded router buffers (no protocol deadlock by
 * construction) but tracks vnets for accounting and ordering.
 */
enum class VNet : uint8_t
{
    Request = 0,
    Response = 1,
    Control = 2,
};

/**
 * Traffic classes used by the paper's figures: coherence control
 * messages, data transfers, and the extra messages that manage floating
 * streams (configure / migrate / terminate / flow control).
 */
enum class FlitClass : uint8_t
{
    Control = 0,
    Data = 1,
    StreamMgmt = 2,
    NumClasses = 3,
};

/**
 * Base class of anything travelling on the mesh.
 *
 * Delivery ordering contract: every hop/ejection event the mesh
 * schedules for a message carries a canonical (src-tile, sequence) key
 * minted in the scheduling router's execution context, so same-cycle
 * deliveries execute in a shard-count-invariant order under the
 * tile-parallel engine (DESIGN.md §4i). Senders must therefore inject
 * with `src` set to the tile whose execution context calls send().
 */
struct Message
{
    TileId src = invalidTile;
    /** One or more destination tiles (multicast supported). */
    std::vector<TileId> dests;
    /** Payload bytes on top of the header (0 = pure control). */
    uint32_t payloadBytes = 0;
    FlitClass cls = FlitClass::Control;
    VNet vnet = VNet::Request;
    /**
     * Latency-attribution record handle (prof::Profiler); 0 = untracked.
     * Rides the message so per-hop NoC time lands on the request that
     * caused the traffic. Responses inherit the requester's handle.
     */
    uint32_t profId = 0;

    virtual ~Message() = default;
};

using MsgPtr = std::shared_ptr<Message>;

} // namespace noc
} // namespace sf

#endif // SF_NOC_MESSAGE_HH
