/**
 * @file
 * 2D mesh on-chip network with X-Y dimension-ordered routing.
 *
 * Modeling approach: packet-granularity hop events. Each directed link
 * has a serialization horizon (`nextFree`); a packet of F flits holds
 * the link for F cycles, so back-to-back packets queue and contention /
 * utilization emerge naturally. Router pipeline depth and link latency
 * match Table III (5-stage router, 1-cycle link). Multicast packets are
 * replicated only at tree branch points, so flit-hop accounting reflects
 * the multicast savings stream confluence exploits.
 *
 * Relative to a flit-level Garnet this abstracts wormhole flow control
 * (buffers are unbounded), which preserves bandwidth and latency
 * behaviour at our utilization levels while keeping simulation fast;
 * see DESIGN.md.
 */

#ifndef SF_NOC_MESH_HH
#define SF_NOC_MESH_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "noc/message.hh"
#include "sim/profile.hh"
#include "sim/shard.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace sf {
namespace noc {

/** Configuration of the mesh (Table III defaults). */
struct MeshConfig
{
    int nx = 8;
    int ny = 8;
    /** Link width in bits (128 / 256 / 512 evaluated in Fig. 16). */
    uint32_t linkBits = 256;
    /** Router pipeline depth in cycles. */
    Cycles routerLatency = 5;
    /** Link traversal latency in cycles. */
    Cycles linkLatency = 1;
    /** Packet header size in bytes. */
    uint32_t headerBytes = 8;
};

/** Per-class traffic statistics. */
struct TrafficStats
{
    /** Flits injected, by class. */
    std::array<uint64_t, 3> flitsInjected = {0, 0, 0};
    /** Sum over flits of hops traveled, by class (Fig. 15 metric). */
    std::array<uint64_t, 3> flitHops = {0, 0, 0};
    /** Packets injected, by class. */
    std::array<uint64_t, 3> packets = {0, 0, 0};
    /** Total cycles any link was busy (for utilization). */
    uint64_t linkBusyCycles = 0;

    uint64_t
    totalFlitHops() const
    {
        return flitHops[0] + flitHops[1] + flitHops[2];
    }
};

/**
 * The mesh network. Tiles bind a sink callback; senders call send().
 */
class Mesh : public SimObject
{
  public:
    using Sink = std::function<void(const MsgPtr &)>;

    /** What a send interceptor decided to do with one injection. */
    enum class SendAction
    {
        Deliver,
        Drop,
        Delay,
        Duplicate,
    };

    /**
     * Consulted once per send(); may reroute the message's fate (fault
     * injection). Installed by the system layer, which is the only
     * place that can classify protocol message types — the mesh stays
     * protocol-agnostic. On Delay the hook sets @p delay to the added
     * injection latency.
     */
    using SendInterceptor =
        std::function<SendAction(const MsgPtr &, Cycles &delay)>;

    Mesh(EventQueue &eq, const MeshConfig &config);

    /**
     * Route all mesh events through the tile-sharded PDES engine
     * (DESIGN.md §4i): hop/ejection events go to the owning tile's
     * shard queue carrying a canonical (src-tile, seq) key, so the
     * same-tick execution order is shard-count-invariant. Null (the
     * default) keeps the legacy single-queue behaviour for unit tests
     * that drive the mesh standalone.
     */
    void setDomains(sim::TileDomains *d) { _domains = d; }

    /** Register the receiver for tile @p tile. */
    void bindSink(TileId tile, Sink sink);

    /** Inject a message; it is delivered to every tile in msg->dests. */
    void send(const MsgPtr &msg);

    void
    setSendInterceptor(SendInterceptor fn)
    {
        _interceptor = std::move(fn);
    }

    /**
     * Conservation tracking (checker, Full level): account every
     * injected packet until its last destination ejects, so "every
     * message is eventually delivered" becomes checkable. Off by
     * default (zero cost).
     */
    void setTrackInFlight(bool on) { _trackInFlight = on; }
    bool trackInFlight() const { return _trackInFlight; }

    /** Live tracked packets (deliveries still owed). */
    size_t inFlightCount() const { return _inFlight.size(); }

    /** Injection tick of the oldest tracked packet; maxTick if none. */
    Tick oldestInFlightTick() const;

    /** Visit every tracked packet with its injection tick. */
    void forEachInFlight(
        const std::function<void(const MsgPtr &, Tick)> &fn) const;

    void debugDumpInFlight(std::FILE *out) const;

    int numTiles() const { return _cfg.nx * _cfg.ny; }
    const MeshConfig &config() const { return _cfg; }

    /** Number of flits a message of this payload occupies. */
    uint32_t
    flitsOf(uint32_t payload_bytes) const
    {
        uint32_t bits = (_cfg.headerBytes + payload_bytes) * 8;
        uint32_t flit_bits = _cfg.linkBits;
        return (bits + flit_bits - 1) / flit_bits;
    }

    /** Manhattan hop distance between two tiles. */
    int hopDistance(TileId a, TileId b) const;

    /**
     * Aggregate traffic counters, folded over the per-tile accounts in
     * tile order at read time (per-tile storage keeps the hot counters
     * shard-owned under tile-parallel simulation).
     */
    TrafficStats traffic() const;

    /** Distribution of per-packet hop counts (max over multicast dests). */
    const stats::Histogram &packetHops() const;

    /**
     * Average link utilization: busy link-cycles over total
     * link-cycles elapsed since construction.
     */
    double linkUtilization() const;

    /** Number of directed links that exist (edge routers have fewer). */
    int liveLinkCount() const;

    int xOf(TileId t) const { return t % _cfg.nx; }
    int yOf(TileId t) const { return t / _cfg.nx; }
    TileId tileAt(int x, int y) const { return y * _cfg.nx + x; }

    /** Enable per-hop latency attribution (null = off, the default). */
    void setProfiler(prof::Profiler *p) { _prof = p; }

    // --- heatmap counters (cumulative; sampled as interval deltas) ---

    /** Busy cycles of the directed link from @p t toward @p dir. */
    uint64_t
    linkBusyCycles(TileId t, int dir) const
    {
        return _links[size_t(t) * 4 + size_t(dir)].busyCycles;
    }

    /** Cycles packets spent queued behind that link's horizon. */
    uint64_t
    linkQueueCycles(TileId t, int dir) const
    {
        return _links[size_t(t) * 4 + size_t(dir)].queueCycles;
    }

    /** Flits that traversed router @p t (forwarded or ejected). */
    uint64_t routerFlits(TileId t) const { return _routerFlits[t]; }

  private:
    /** Directed link id: from router r in direction d (0..3 = E,W,N,S). */
    struct Link
    {
        Tick nextFree = 0;
        uint64_t busyCycles = 0;
        /** Cumulative cycles packets waited for this link (heatmap). */
        uint64_t queueCycles = 0;
    };

    enum Dir : int { East = 0, West = 1, North = 2, South = 3 };

    /** One tracked packet: injection tick + deliveries still owed. */
    struct InFlightInfo
    {
        MsgPtr msg;
        Tick injectTick = 0;
        int remaining = 0;
    };

    /** Inject bypassing the interceptor (delayed/duplicated copies). */
    void inject(const MsgPtr &msg);

    /** Current tick in tile @p at's execution context. */
    Tick
    now(TileId at)
    {
        return _domains ? _domains->queueOf(at).curTick() : curTick();
    }

    /**
     * Schedule a mesh event in @p at's execution context targeting
     * tile @p target (== @p at except for the next-hop handoff). Under
     * domains the event carries a canonical key minted from @p at's
     * per-tile counter; standalone it lands on the legacy queue.
     */
    void scheduleHopEvent(TileId at, TileId target, Tick when,
                          EventQueue::Handler fn);

    /** Deliver one (possibly multicast) packet one hop further. */
    void hop(const MsgPtr &msg, TileId at, std::vector<TileId> dests,
             uint32_t flits);

    /** Next output direction toward @p dest under X-Y routing; -1 if
     *  local. */
    int routeDir(TileId at, TileId dest) const;

    TileId neighbor(TileId at, int dir) const;

    Link &linkFrom(TileId at, int dir);

    MeshConfig _cfg;
    sim::TileDomains *_domains = nullptr;
    std::vector<Sink> _sinks;
    /** numTiles x 4 directed links. */
    std::vector<Link> _links;
    /** Per-router traversed-flit counters (heatmap). */
    std::vector<uint64_t> _routerFlits;
    prof::Profiler *_prof = nullptr;
    /**
     * Traffic accounts indexed by the tile whose execution context
     * mutates them (injector for injection-side counters, the hopping
     * router otherwise); folded in tile order by traffic().
     */
    std::vector<TrafficStats> _traffic;
    /** Per-injecting-tile hop histograms; folded by packetHops(). */
    std::vector<stats::Histogram> _packetHops;
    /** Fold cache rebuilt by packetHops() (read at dump time only). */
    mutable stats::Histogram _packetHopsMerged{1, 16};
    Tick _startTick;
    SendInterceptor _interceptor;
    bool _trackInFlight = false;
    /**
     * Tracked packets keyed by a monotonically assigned injection
     * sequence id, so iteration (watchdog diagnostics, conservation
     * checks) follows injection order. Keying by MsgPtr would order
     * by allocation address — nondeterministic under ASLR (sflint
     * D1). The side index resolves a message back to its sequence id
     * on delivery and is never iterated.
     */
    std::map<uint64_t, InFlightInfo> _inFlight;
    std::unordered_map<const Message *, uint64_t> _inFlightSeq;
    uint64_t _nextInFlightSeq = 0;
};

} // namespace noc
} // namespace sf

#endif // SF_NOC_MESH_HH
