/**
 * @file
 * Interface from SE_core to the floating machinery (SE_L2, src/flt).
 * stream/ stays independent of flt/; a null controller disables
 * floating entirely (the SS configuration).
 */

#ifndef SF_STREAM_FLOAT_IF_HH
#define SF_STREAM_FLOAT_IF_HH

#include <functional>
#include <vector>

#include "isa/stream_pattern.hh"
#include "sim/types.hh"

namespace sf {
namespace stream {

/** Everything the SE_L2 needs to float one stream group. */
struct FloatRequest
{
    /** The base affine (load) stream. */
    isa::StreamConfig base;
    /** First element the floated engine is responsible for. */
    uint64_t baseStart = 0;

    struct Indirect
    {
        isa::StreamConfig cfg;
        uint64_t start = 0;
    };
    /** Dependent indirect streams, floated together (§IV-B). */
    std::vector<Indirect> indirects;
};

/** The SE_L2-side controller for floated streams. */
class FloatControllerIf
{
  public:
    virtual ~FloatControllerIf() = default;

    /**
     * Float a stream group. @return false if the SE_L2 cannot accept
     * it (buffer exhausted); the stream then stays at the core.
     */
    virtual bool floatStream(const FloatRequest &req) = 0;

    /**
     * Terminate a floated stream (stream_end, early termination, or a
     * sink decision). Pending fetches are redirected through the
     * cache; buffered data is dropped.
     */
    virtual void unfloatStream(StreamId sid) = 0;

    /** True while @p sid is floating from this tile. */
    virtual bool isFloating(StreamId sid) const = 0;

    /**
     * Fetch indirect floated elements by (sid, index): the core cannot
     * compute their addresses, so these bypass the L1/L2 tag check and
     * match directly in the SE_L2 buffer. @p prof_id is the caller's
     * latency-attribution record (0 = untracked); buffer park time is
     * charged to it.
     */
    virtual void fetchFloatedElems(StreamId sid, uint64_t first_idx,
                                   uint16_t count,
                                   std::function<void()> on_ready,
                                   uint32_t prof_id = 0) = 0;
};

} // namespace stream
} // namespace sf

#endif // SF_STREAM_FLOAT_IF_HH
