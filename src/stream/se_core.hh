/**
 * @file
 * SE_core: the in-core stream engine (§III-B) plus the floating /
 * sinking policy of §IV-D.
 *
 * The engine holds up to 12 stream definitions, runs ahead of the core
 * filling per-stream FIFO windows (issuing line-coalesced fetches
 * through the private cache, or tagged floated fetches served by the
 * SE_L2 buffer), tracks the PEB aliasing window against committed
 * stores, maintains the stream history table, and decides when to
 * float a stream into the cache hierarchy and when to sink it back.
 */

#ifndef SF_STREAM_SE_CORE_HH
#define SF_STREAM_SE_CORE_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cpu/stream_engine_if.hh"
#include "mem/phys_mem.hh"
#include "mem/priv_cache.hh"
#include "mem/tlb.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "stream/float_if.hh"
#include "stream/history.hh"

namespace sf {

namespace verify {
class DataPlane;
} // namespace verify

namespace stream {

struct SECoreConfig
{
    /** Total load-FIFO capacity shared by all streams (Table III). */
    uint32_t fifoBytes = 1024;
    int maxStreams = 12;

    // --- floating policy (§IV-D) ---
    bool enableFloating = false;
    /** Float indirect streams along with their base (SF vs SF-Aff). */
    bool floatIndirects = true;
    /** Private L2 capacity; known footprints above this float at once. */
    uint64_t l2CapacityBytes = 256 * 1024;
    /** Requests to accumulate before a history-based float decision. */
    uint64_t floatDecisionRequests = 64;
    /** Float when miss ratio exceeds this... */
    double floatMissRatio = 0.6;
    /** ...and reuse ratio stays below this. */
    double floatReuseRatio = 0.05;
    /** Sink after this many consecutive private-cache hits (§IV-D). */
    int sinkCacheHitThreshold = 8;
};

struct SECoreStats
{
    stats::Scalar configures, ends;
    stats::Scalar fetchesIssued, floatedFetchesIssued;
    stats::Scalar elementsConsumed;
    stats::Scalar streamsFloated, streamsSunk;
    stats::Scalar aliasFlushes;
    stats::Scalar footprintFloats, historyFloats;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("configures", &configures);
        g.regScalar("ends", &ends);
        g.regScalar("fetchesIssued", &fetchesIssued);
        g.regScalar("floatedFetchesIssued", &floatedFetchesIssued);
        g.regScalar("elementsConsumed", &elementsConsumed);
        g.regScalar("streamsFloated", &streamsFloated);
        g.regScalar("streamsSunk", &streamsSunk);
        g.regScalar("aliasFlushes", &aliasFlushes);
        g.regScalar("footprintFloats", &footprintFloats);
        g.regScalar("historyFloats", &historyFloats);
    }
};

/**
 * The core-side stream engine. Implements the pipeline-facing
 * interface (cpu::StreamEngineIf).
 */
class SECore : public SimObject, public cpu::StreamEngineIf
{
  public:
    SECore(const std::string &name, EventQueue &eq, TileId tile,
           const SECoreConfig &cfg, mem::PrivCache &cache,
           mem::TlbHierarchy &tlb, mem::AddressSpace &as);

    /** Attach the floating controller (SE_L2); null disables SF. */
    void setFloatController(FloatControllerIf *fc) { _floatCtrl = fc; }

    /** Invoked to wake the core when FIFO data lands. */
    void setWakeHook(std::function<void()> hook) { _wake = std::move(hook); }

    /**
     * Enable latency attribution: stream fetches get lifecycle records
     * keyed (tile, sid) and the engine's activity lands in its own
     * top-down account (null = off, the default).
     */
    void
    setProfiler(prof::Profiler *p)
    {
        _prof = p;
        _td = p ? &p->topDown(name()) : nullptr;
    }

    /**
     * Attach the --verify data plane. Element byte values are captured
     * when FIFO data lands (onFetchDone) by observing the protocol-
     * routed line image, and folded per stream_load at commit.
     */
    void setVerify(verify::DataPlane *v) { _verify = v; }

    // --- cpu::StreamEngineIf ---
    void noteConfigDispatched(
        const std::vector<isa::StreamConfig> &group) override;
    void configure(const std::vector<isa::StreamConfig> &group) override;
    void end(StreamId sid) override;
    uint64_t requestElems(StreamId sid, uint16_t elems,
                          std::function<void()> on_ready) override;
    void step(StreamId sid, uint16_t elems) override;
    void releaseAtCommit(StreamId sid, uint16_t elems) override;
    Addr storeAddr(StreamId sid) override;
    void storeCommitted(Addr vaddr, uint16_t size) override;
    bool canAcceptUse(StreamId sid) const override;
    uint64_t verifyFoldElems(StreamId sid, uint64_t first,
                             uint16_t elems) override;

    // --- notifications from the memory system / SE_L2 ---
    /** A line this stream filled was reused in the private cache. */
    void notifyStreamReuse(StreamId sid);
    /** A floated fetch hit in the private cache (sink candidate). */
    void notifyFloatedCacheHit(StreamId sid);
    /** A floated fetch was served from the SE_L2 buffer. */
    void notifyFloatedBufferServe(StreamId sid);
    /** SE_L2 asks us to sink (deadlock breaker, §IV-E). */
    void requestSink(StreamId sid);

    /**
     * Context switch (§IV-E "Precise State and Context Switch"):
     * stream floating adds no architectural state, so on a switch all
     * floating streams are discarded; on switching back, streams
     * restart not-floating and may refloat on their own merits.
     */
    void contextSwitchFlush();

    SECoreStats &stats() { return _stats; }
    const StreamHistoryTable &history() const { return _history; }
    bool isFloating(StreamId sid) const;

    /** Dump live stream state (debugging aid). */
    void debugDump(std::FILE *f) const;

  private:
    struct ElemRec
    {
        Addr vaddr = 0;
        bool fetched = false; //!< request issued
        bool ready = false;   //!< data in FIFO
    };

    struct Use
    {
        uint64_t endElem;
        std::function<void()> cb;
    };

    struct StreamState
    {
        bool active = false;
        isa::StreamConfig cfg;
        /** Dependent indirect streams configured with this one. */
        std::vector<StreamId> children;
        StreamId parent = invalidStream;

        uint64_t dispatchIter = 0; //!< iteration map position
        uint64_t commitBase = 0;   //!< first live FIFO element
        std::deque<ElemRec> window;
        uint64_t readyUpTo = 0; //!< contiguous ready prefix (absolute)
        uint64_t nextFetch = 0; //!< first element with no request yet
        std::vector<Use> waiters;

        bool floating = false;
        /** Sunk once: do not refloat this configuration (§IV-D). */
        bool noRefloat = false;
        /** Elements >= this index are fetched via the floated path. */
        uint64_t floatFromElem = ~0ULL;
        bool aliasDisabled = false; //!< prefetch disabled after alias
        /** With prefetch disabled, fetch only up to requested uses. */
        uint64_t demandEnd = 0;
        int consecutiveCacheHits = 0;
        uint64_t quotaElems = 8;
        /** Guards stale fetch callbacks across reconfigurations. */
        uint32_t epoch = 0;
        /** --verify: observed element bytes, keyed by absolute index
         *  (ordered — the commit-time sweep iterates it). */
        std::map<uint64_t, std::vector<uint8_t>> vElems;
    };

    StreamState &state(StreamId sid);
    const StreamState *find(StreamId sid) const;

    /** Run-ahead: allocate + fetch elements for @p sid. */
    void pump(StreamId sid, uint64_t min_end = 0);
    /** Issue one line-coalesced fetch starting at @p first_idx. */
    void issueFetch(StreamId sid, uint64_t first_idx, uint16_t count);
    void onFetchDone(StreamId sid, uint64_t first_idx, uint16_t count,
                     bool missed);
    void advanceReady(StreamState &s);
    void fireWaiters(StreamState &s);

    /** Element virtual address (affine direct; indirect chases). */
    bool elemAddr(StreamState &s, uint64_t idx, Addr &out);

    /** --verify: capture element @p idx's bytes from the data plane. */
    const std::vector<uint8_t> &verifyBindElem(StreamState &s,
                                               uint64_t idx);

    /** Total elements, or a large horizon for unknown lengths. */
    uint64_t horizonOf(const StreamState &s) const;

    void recomputeQuotas();

    /** §IV-D float decision; @return true if the stream floated. */
    bool maybeFloat(StreamId sid, uint64_t start_elem, bool at_config);
    /** Pull a floated stream back to the core; @p reason is trace-only. */
    void sink(StreamId sid, const char *reason);

    SECoreConfig _cfg;
    TileId _tile;
    mem::PrivCache &_cache;
    mem::TlbHierarchy &_tlb;
    mem::AddressSpace &_as;
    FloatControllerIf *_floatCtrl = nullptr;
    std::function<void()> _wake;
    verify::DataPlane *_verify = nullptr;
    prof::Profiler *_prof = nullptr;
    prof::TopDownAccount *_td = nullptr;

    // Ordered by StreamId: quota recomputation, context-switch
    // flushes and debug dumps iterate this table, and their order
    // feeds message emission (sflint D1).
    std::map<StreamId, StreamState> _streams;
    /** Dispatched-but-uncommitted stream_cfg count per stream. */
    std::map<StreamId, int> _pendingCfgs;
    StreamHistoryTable _history;
    SECoreStats _stats;
};

} // namespace stream
} // namespace sf

#endif // SF_STREAM_SE_CORE_HH
