/**
 * @file
 * Stream history table (Table II of the paper).
 *
 * SE_core records each stream's runtime behaviour - requests issued,
 * private-cache misses, reuses of stream-filled lines, and aliasing
 * stores - to decide when to float a stream whose length is unknown
 * (§IV-D). The table is indexed by static stream id, so history
 * persists across reconfigurations of the same loop.
 */

#ifndef SF_STREAM_HISTORY_HH
#define SF_STREAM_HISTORY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace sf {
namespace stream {

/** One row of the stream history table. */
struct StreamHistory
{
    uint64_t requests = 0; //!< stream fetch requests sent
    uint64_t misses = 0;   //!< private cache misses among them
    uint64_t reuses = 0;   //!< reuses of lines this stream brought in
    bool aliased = false;  //!< a store aliased this stream
};

/** The per-core table. */
class StreamHistoryTable
{
  public:
    StreamHistory &row(StreamId sid) { return _rows[sid]; }

    const StreamHistory *
    find(StreamId sid) const
    {
        auto it = _rows.find(sid);
        return it == _rows.end() ? nullptr : &it->second;
    }

    void clear() { _rows.clear(); }

  private:
    std::unordered_map<StreamId, StreamHistory> _rows;
};

} // namespace stream
} // namespace sf

#endif // SF_STREAM_HISTORY_HH
