#include "stream/se_core.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/stream_trace.hh"
#include "verify/data_plane.hh"
#include "verify/value.hh"

namespace sf {
namespace stream {

SECore::SECore(const std::string &name, EventQueue &eq, TileId tile,
               const SECoreConfig &cfg, mem::PrivCache &cache,
               mem::TlbHierarchy &tlb, mem::AddressSpace &as)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _cache(cache),
      _tlb(tlb), _as(as)
{
}

SECore::StreamState &
SECore::state(StreamId sid)
{
    auto it = _streams.find(sid);
    sf_assert(it != _streams.end() && it->second.active,
              "access to inactive stream %d", sid);
    return it->second;
}

const SECore::StreamState *
SECore::find(StreamId sid) const
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return nullptr;
    return &it->second;
}

bool
SECore::isFloating(StreamId sid) const
{
    const StreamState *s = find(sid);
    return s && s->floating;
}

void
SECore::recomputeQuotas()
{
    // The shared FIFO capacity is divided among active load streams.
    int load_streams = 0;
    for (auto &[sid, s] : _streams) {
        if (s.active && !s.cfg.isStore)
            ++load_streams;
    }
    if (load_streams == 0)
        return;
    for (auto &[sid, s] : _streams) {
        if (!s.active || s.cfg.isStore)
            continue;
        uint32_t elem = std::max<uint32_t>(
            1, s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                 : s.cfg.affine.elemSize);
        // Floor of two vector registers' worth so SIMD consumption can
        // double-buffer even on the small IO4 FIFO.
        s.quotaElems = std::max<uint64_t>(
            32, _cfg.fifoBytes /
                    static_cast<uint64_t>(load_streams) / elem);
    }
}

void
SECore::noteConfigDispatched(const std::vector<isa::StreamConfig> &group)
{
    for (const auto &cfg : group)
        ++_pendingCfgs[cfg.sid];
}

void
SECore::configure(const std::vector<isa::StreamConfig> &group)
{
    ++_stats.configures;
    for (const auto &cfg : group) {
        auto it = _pendingCfgs.find(cfg.sid);
        if (it != _pendingCfgs.end() && --it->second <= 0)
            _pendingCfgs.erase(it);
    }
    sf_assert(static_cast<int>(_streams.size() + group.size()) <=
                  _cfg.maxStreams * 2,
              "too many live streams");

    for (const auto &cfg : group) {
        StreamState &s = _streams[cfg.sid];
        uint32_t epoch = s.epoch + 1;
        s = StreamState();
        s.epoch = epoch;
        s.active = true;
        s.cfg = cfg;
        if (cfg.hasIndirect)
            s.parent = cfg.baseSid;
        SF_DPRINTF(StreamFloat,
                   "config sid=%d %s%s elemSize=%u lengthKnown=%d",
                   cfg.sid, cfg.isStore ? "store" : "load",
                   cfg.hasIndirect ? " indirect" : "",
                   cfg.hasIndirect ? cfg.indirect.elemSize
                                   : cfg.affine.elemSize,
                   cfg.lengthKnown);
        trace::recordStream(curTick(), {_tile, cfg.sid},
                            trace::StreamPhase::Config, _tile);
    }
    // Wire children after all group members exist.
    for (const auto &cfg : group) {
        if (cfg.hasIndirect) {
            auto it = _streams.find(cfg.baseSid);
            sf_assert(it != _streams.end() && it->second.active,
                      "indirect stream %d with unknown base %d",
                      cfg.sid, cfg.baseSid);
            it->second.children.push_back(cfg.sid);
        }
    }
    recomputeQuotas();

    // Float decisions for base load streams, then start run-ahead.
    for (const auto &cfg : group) {
        if (!cfg.isStore && !cfg.hasIndirect)
            maybeFloat(cfg.sid, 0, /*at_config=*/true);
    }
    for (const auto &cfg : group) {
        if (!cfg.isStore)
            pump(cfg.sid);
    }
}

void
SECore::end(StreamId sid)
{
    ++_stats.ends;
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return;
    StreamState &s = it->second;
    SF_DPRINTF(StreamFloat, "end sid=%d floating=%d consumed=%llu", sid,
               s.floating, (unsigned long long)s.commitBase);
    trace::recordStream(curTick(), {_tile, sid},
                        trace::StreamPhase::End, _tile);
    if (s.floating && _floatCtrl)
        _floatCtrl->unfloatStream(sid);
    // Children are configured and ended by their own stream_end ops.
    s.active = false;
    ++s.epoch;
    s.window.clear();
    s.waiters.clear();
    recomputeQuotas();
}

uint64_t
SECore::horizonOf(const StreamState &s) const
{
    if (!s.cfg.lengthKnown)
        return ~0ULL;
    return s.cfg.totalElems();
}

bool
SECore::elemAddr(StreamState &s, uint64_t idx, Addr &out)
{
    if (!s.cfg.hasIndirect) {
        out = s.cfg.affine.elemAddr(idx);
        return true;
    }
    // Indirect: B[A[i] * scale + offset (+ w)]; needs A[i]'s value.
    uint32_t w_len = std::max<uint32_t>(1, s.cfg.indirect.wLen);
    uint64_t parent_idx = idx / w_len;
    uint32_t w = static_cast<uint32_t>(idx % w_len);
    auto pit = _streams.find(s.parent);
    if (pit == _streams.end() || !pit->second.active)
        return false;
    StreamState &p = pit->second;
    if (parent_idx >= p.readyUpTo)
        return false; // index data not yet available to the core
    Addr idx_addr = p.cfg.affine.elemAddr(parent_idx);
    int64_t idx_value = _as.readInt(idx_addr, s.cfg.indirect.idxSize);
    out = s.cfg.indirect.targetAddr(idx_value, w);
    return true;
}

void
SECore::pump(StreamId sid, uint64_t min_end)
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return;
    StreamState &s = it->second;
    if (s.cfg.isStore)
        return;

    uint64_t horizon = horizonOf(s);
    uint64_t cap_end =
        std::max(s.commitBase + s.quotaElems, min_end);
    cap_end = std::min(cap_end, horizon);

    // Allocate window entries (addresses) up to the cap. Floated
    // indirect elements are matched at the SE_L2 by (sid, index), so
    // they need no core-side address (the core cannot compute one
    // without the index data anyway).
    while (s.commitBase + s.window.size() < cap_end) {
        uint64_t idx = s.commitBase + s.window.size();
        ElemRec rec;
        bool floated_ind = s.floating && s.cfg.hasIndirect &&
                           idx >= s.floatFromElem;
        if (!floated_ind && !elemAddr(s, idx, rec.vaddr))
            break;
        s.window.push_back(rec);
    }

    // Issue fetches, line-coalesced, in order.
    uint64_t fetch_limit = s.commitBase + s.window.size();
    if (s.aliasDisabled)
        fetch_limit = std::min(fetch_limit, s.demandEnd);

    while (s.nextFetch < fetch_limit) {
        if (s.nextFetch < s.commitBase) {
            s.nextFetch = s.commitBase;
            continue;
        }
        size_t off = static_cast<size_t>(s.nextFetch - s.commitBase);
        if (off >= s.window.size())
            break;
        ElemRec &rec = s.window[off];
        if (rec.fetched) {
            ++s.nextFetch;
            continue;
        }
        // Group consecutive elements on the same line (affine only;
        // indirect targets are scattered).
        uint16_t count = 1;
        if (!s.cfg.hasIndirect) {
            Addr line = lineAlign(rec.vaddr);
            while (s.nextFetch + count < fetch_limit &&
                   off + count < s.window.size() &&
                   lineAlign(s.window[off + count].vaddr) == line &&
                   !s.window[off + count].fetched) {
                ++count;
            }
        }
        for (uint16_t i = 0; i < count; ++i)
            s.window[off + i].fetched = true;
        issueFetch(sid, s.nextFetch, count);
        s.nextFetch += count;
    }
}

void
SECore::issueFetch(StreamId sid, uint64_t first_idx, uint16_t count)
{
    StreamState &s = state(sid);
    uint32_t epoch = s.epoch;
    bool floated = s.floating && first_idx >= s.floatFromElem;

    // Top-down: an issue cycle is engine work; until the data lands
    // the engine is waiting on memory.
    if (_td) {
        _td->tickAt(curTick(), prof::Bucket::Retired);
        _td->setGapReason(prof::Bucket::StalledData);
    }

    if (floated && s.cfg.hasIndirect) {
        ++_stats.floatedFetchesIssued;
        // sflint: allow(T1, profiler record handle, not a tick)
        uint32_t pid =
            _prof ? _prof->open(_tile, sid, curTick()) : 0;
        _floatCtrl->fetchFloatedElems(
            sid, first_idx, count,
            [this, sid, first_idx, count, epoch, pid]() {
                if (pid)
                    _prof->close(_tile, pid, curTick());
                onFetchDone(sid, first_idx, count, false);
                auto it = _streams.find(sid);
                if (it != _streams.end() && it->second.epoch != epoch)
                    return;
            },
            pid);
        return;
    }

    size_t off = static_cast<size_t>(first_idx - s.commitBase);
    Addr vaddr = s.window[off].vaddr;
    Cycles tlb_lat = 0;
    Addr paddr = _tlb.translate(_as, vaddr, tlb_lat);

    mem::Access a;
    a.vaddr = vaddr;
    a.paddr = paddr;
    uint32_t elem_size = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                           : s.cfg.affine.elemSize;
    a.size = static_cast<uint16_t>(
        std::min<uint32_t>(elem_size * count, lineBytes));
    a.pc = static_cast<uint32_t>(1000000 + sid);
    a.streamEligible = true;
    a.stream = {_tile, sid};
    a.elemIdx = first_idx;

    if (floated) {
        ++_stats.floatedFetchesIssued;
        a.kind = mem::AccessKind::FloatedFetch;
        // sflint: allow(T1, profiler record handle, not a tick)
        uint32_t pid =
            _prof ? _prof->open(_tile, sid, curTick()) : 0;
        a.profId = pid;
        a.onDone = [this, sid, first_idx, count, epoch, pid]() {
            if (pid)
                _prof->close(_tile, pid, curTick());
            auto it = _streams.find(sid);
            if (it == _streams.end() || it->second.epoch != epoch)
                return;
            onFetchDone(sid, first_idx, count, false);
        };
        _cache.access(std::move(a));
        return;
    }

    ++_stats.fetchesIssued;
    a.kind = mem::AccessKind::StreamFetch;
    auto miss = std::make_shared<bool>(false);
    a.missOut = miss.get();
    // sflint: allow(T1, profiler record handle, not a tick)
    uint32_t pid = _prof ? _prof->open(_tile, sid, curTick()) : 0;
    a.profId = pid;
    a.onDone = [this, sid, first_idx, count, epoch, miss, pid]() {
        if (pid)
            _prof->close(_tile, pid, curTick());
        auto it = _streams.find(sid);
        if (it == _streams.end() || it->second.epoch != epoch)
            return;
        onFetchDone(sid, first_idx, count, *miss);
    };
    _cache.access(std::move(a));
}

void
SECore::onFetchDone(StreamId sid, uint64_t first_idx, uint16_t count,
                    bool missed)
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return;
    StreamState &s = it->second;

    if (_td) {
        _td->tickAt(curTick(), prof::Bucket::Retired);
        _td->setGapReason(prof::Bucket::Idle);
    }

    for (uint16_t i = 0; i < count; ++i) {
        uint64_t idx = first_idx + i;
        if (idx < s.commitBase)
            continue;
        size_t off = static_cast<size_t>(idx - s.commitBase);
        if (off < s.window.size()) {
            s.window[off].ready = true;
            // --verify: capture the element's bytes at the moment data
            // lands (an alias flush rebinds via a later onFetchDone).
            if (_verify)
                verifyBindElem(s, idx);
        }
    }

    StreamHistory &h = _history.row(sid);
    ++h.requests;
    if (missed)
        ++h.misses;
    // Exponential decay so the table tracks phase changes (e.g. a
    // sibling stream floating away and taking its cache fills along).
    if (h.requests >= 4 * _cfg.floatDecisionRequests) {
        h.requests /= 2;
        h.misses /= 2;
        h.reuses /= 2;
    }

    advanceReady(s);
    fireWaiters(s);

    // Children may now be able to compute indirect addresses.
    for (StreamId child : s.children)
        pump(child);

    // History-based mid-stream float decision (§IV-D).
    if (!s.floating && !s.cfg.isStore && !s.cfg.hasIndirect &&
        h.requests >= _cfg.floatDecisionRequests) {
        maybeFloat(sid, s.nextFetch, /*at_config=*/false);
    }
}

void
SECore::advanceReady(StreamState &s)
{
    uint64_t idx = std::max(s.readyUpTo, s.commitBase);
    while (idx < s.commitBase + s.window.size()) {
        size_t off = static_cast<size_t>(idx - s.commitBase);
        if (!s.window[off].ready)
            break;
        ++idx;
    }
    s.readyUpTo = std::max(s.readyUpTo, idx);
}

void
SECore::fireWaiters(StreamState &s)
{
    if (s.waiters.empty())
        return;
    std::vector<Use> still_waiting;
    std::vector<std::function<void()>> ready;
    for (auto &u : s.waiters) {
        if (u.endElem <= s.readyUpTo)
            ready.push_back(std::move(u.cb));
        else
            still_waiting.push_back(std::move(u));
    }
    s.waiters = std::move(still_waiting);
    for (auto &cb : ready)
        cb();
    if (!ready.empty() && _wake)
        _wake();
}

uint64_t
SECore::requestElems(StreamId sid, uint16_t elems,
                     std::function<void()> on_ready)
{
    StreamState &s = state(sid);
    uint64_t first = s.dispatchIter;
    uint64_t end = first + elems;
    _stats.elementsConsumed += elems;

    s.demandEnd = std::max(s.demandEnd, end);
    if (s.commitBase + s.window.size() < end || s.nextFetch < end)
        pump(sid, end);

    if (s.readyUpTo >= end) {
        on_ready();
    } else {
        s.waiters.push_back({end, std::move(on_ready)});
        if (_td)
            _td->setGapReason(prof::Bucket::StalledData);
    }
    return first;
}

void
SECore::step(StreamId sid, uint16_t elems)
{
    StreamState &s = state(sid);
    s.dispatchIter += elems;
    if (!s.cfg.isStore)
        pump(sid);
}

void
SECore::releaseAtCommit(StreamId sid, uint16_t elems)
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return;
    StreamState &s = it->second;
    // Trip count at stream_step commit; the reference counts at
    // StreamStep on a live stream, so gate on the same condition.
    if (_verify)
        _verify->addTrips(_tile, sid, elems);
    for (uint16_t i = 0; i < elems && !s.window.empty(); ++i)
        s.window.pop_front();
    s.commitBase += elems;
    if (_verify && !s.vElems.empty()) {
        for (auto ve = s.vElems.begin(); ve != s.vElems.end();) {
            if (ve->first < s.commitBase)
                ve = s.vElems.erase(ve);
            else
                ++ve;
        }
    }
    s.readyUpTo = std::max(s.readyUpTo, s.commitBase);
    s.nextFetch = std::max(s.nextFetch, s.commitBase);
    if (!s.cfg.isStore)
        pump(sid);
}

Addr
SECore::storeAddr(StreamId sid)
{
    StreamState &s = state(sid);
    return s.cfg.affine.elemAddr(s.dispatchIter);
}

void
SECore::storeCommitted(Addr vaddr, uint16_t size)
{
    Addr lo = vaddr;
    Addr hi = vaddr + size;
    for (auto &[sid, s] : _streams) {
        if (!s.active || s.cfg.isStore)
            continue;
        bool aliased = false;
        for (const auto &rec : s.window) {
            uint32_t esz = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                             : s.cfg.affine.elemSize;
            if (rec.vaddr < hi && rec.vaddr + esz > lo) {
                aliased = true;
                break;
            }
        }
        if (!aliased)
            continue;

        ++_stats.aliasFlushes;
        _history.row(sid).aliased = true;
        s.aliasDisabled = true;

        if (s.floating) {
            sink(sid, "store-alias");
        }
        // Flush the PEB: prefetched-but-unused elements are refetched.
        uint64_t flush_from = std::max(s.dispatchIter, s.commitBase);
        for (uint64_t idx = flush_from;
             idx < s.commitBase + s.window.size(); ++idx) {
            size_t off = static_cast<size_t>(idx - s.commitBase);
            s.window[off].ready = false;
            s.window[off].fetched = false;
        }
        s.readyUpTo = std::min(s.readyUpTo, flush_from);
        s.nextFetch = std::min(s.nextFetch, flush_from);
        pump(sid, s.demandEnd);
    }
}

const std::vector<uint8_t> &
SECore::verifyBindElem(StreamState &s, uint64_t idx)
{
    auto it = s.vElems.find(idx);
    if (it != s.vElems.end())
        return it->second;
    // The element address is recomputed functionally: the affine map
    // directly, the indirect chase through the parent's config and the
    // raw index array (mirrors elemAddr / SEL2::elemVaddr, but without
    // the readyUpTo gate — by bind time the index data has arrived).
    Addr vaddr;
    if (!s.cfg.hasIndirect) {
        vaddr = s.cfg.affine.elemAddr(idx);
    } else {
        uint32_t w_len = std::max<uint32_t>(1, s.cfg.indirect.wLen);
        uint64_t parent_idx = idx / w_len;
        uint32_t w = static_cast<uint32_t>(idx % w_len);
        auto pit = _streams.find(s.parent);
        sf_assert(pit != _streams.end(),
                  "verify: indirect sid=%d without base sid=%d",
                  s.cfg.sid, s.parent);
        Addr idx_addr = pit->second.cfg.affine.elemAddr(parent_idx);
        int64_t idx_value =
            _as.readInt(idx_addr, s.cfg.indirect.idxSize);
        vaddr = s.cfg.indirect.targetAddr(idx_value, w);
    }
    uint32_t esz = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                     : s.cfg.affine.elemSize;
    std::vector<uint8_t> bytes(esz);
    _verify->readBytes(_tile, vaddr, esz, bytes.data(),
                       /*stream_elem=*/true);
    return s.vElems.emplace(idx, std::move(bytes)).first->second;
}

uint64_t
SECore::verifyFoldElems(StreamId sid, uint64_t first, uint16_t elems)
{
    if (!_verify)
        return 0;
    StreamState &s = state(sid);
    uint32_t esz = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                     : s.cfg.affine.elemSize;
    std::vector<uint8_t> bytes(static_cast<size_t>(elems) * esz);
    for (uint16_t e = 0; e < elems; ++e) {
        const std::vector<uint8_t> &eb = verifyBindElem(s, first + e);
        std::copy(eb.begin(), eb.end(),
                  bytes.begin() + static_cast<size_t>(e) * esz);
    }
    return verify::foldBytes(bytes.data(), bytes.size());
}

bool
SECore::canAcceptUse(StreamId sid) const
{
    // A dispatched-but-uncommitted reconfiguration means this use
    // belongs to the NEW configuration; wait for it to commit.
    auto pit = _pendingCfgs.find(sid);
    if (pit != _pendingCfgs.end() && pit->second > 0)
        return false;
    const StreamState *s = find(sid);
    if (!s)
        return false; // stream_cfg not yet committed
    if (s->cfg.isStore)
        return true;
    uint64_t in_flight = s->dispatchIter - s->commitBase;
    return in_flight < s->quotaElems || s->dispatchIter == s->commitBase;
}

void
SECore::notifyStreamReuse(StreamId sid)
{
    ++_history.row(sid).reuses;
}

void
SECore::notifyFloatedCacheHit(StreamId sid)
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active ||
        !it->second.floating) {
        return;
    }
    if (++it->second.consecutiveCacheHits >=
        _cfg.sinkCacheHitThreshold) {
        sink(sid, "cache-hits");
    }
}

void
SECore::notifyFloatedBufferServe(StreamId sid)
{
    auto it = _streams.find(sid);
    if (it != _streams.end())
        it->second.consecutiveCacheHits = 0;
}

void
SECore::requestSink(StreamId sid)
{
    sink(sid, "se_l2-request");
}

void
SECore::contextSwitchFlush()
{
    std::vector<StreamId> floating;
    for (auto &[sid, s] : _streams) {
        if (s.active && s.floating && !s.cfg.hasIndirect)
            floating.push_back(sid);
    }
    for (StreamId sid : floating) {
        auto it = _streams.find(sid);
        if (it == _streams.end() || !it->second.active ||
            !it->second.floating) {
            continue;
        }
        StreamState &s = it->second;
        if (_floatCtrl)
            _floatCtrl->unfloatStream(sid);
        s.floating = false;
        s.floatFromElem = ~0ULL;
        for (StreamId child : s.children) {
            auto cit = _streams.find(child);
            if (cit != _streams.end() && cit->second.active) {
                cit->second.floating = false;
                cit->second.floatFromElem = ~0ULL;
            }
        }
        // Unlike a sink, a context switch carries no negative signal:
        // the stream may refloat after resumption.
        s.noRefloat = false;
    }
    // History is microarchitectural state tied to the context; a
    // switch discards it.
    _history.clear();
}

bool
SECore::maybeFloat(StreamId sid, uint64_t start_elem, bool at_config)
{
    if (!_cfg.enableFloating || !_floatCtrl)
        return false;
    StreamState &s = state(sid);
    if (s.cfg.isStore || s.cfg.hasIndirect || s.floating)
        return false;

    const StreamHistory &h = _history.row(sid);
    if (h.aliased || s.aliasDisabled || s.noRefloat)
        return false;

    bool decided = false;
    const char *reason = "";
    if (s.cfg.lengthKnown) {
        uint64_t footprint = s.cfg.footprintBytes();
        for (StreamId child : s.children) {
            auto cit = _streams.find(child);
            if (cit != _streams.end() && cit->second.active)
                footprint += cit->second.cfg.footprintBytes();
        }
        if (footprint > _cfg.l2CapacityBytes) {
            decided = true;
            reason = "footprint";
            ++_stats.footprintFloats;
            SF_DPRINTF(StreamFloat,
                       "float decision sid=%d: footprint %llu B > L2 "
                       "%llu B",
                       sid, (unsigned long long)footprint,
                       (unsigned long long)_cfg.l2CapacityBytes);
        }
    }
    if (!decided && h.requests >= _cfg.floatDecisionRequests) {
        double miss_ratio =
            h.requests ? double(h.misses) / double(h.requests) : 0.0;
        double reuse_ratio =
            h.requests ? double(h.reuses) / double(h.requests) : 0.0;
        if (miss_ratio >= _cfg.floatMissRatio &&
            reuse_ratio <= _cfg.floatReuseRatio) {
            decided = true;
            reason = "history";
            ++_stats.historyFloats;
            SF_DPRINTF(StreamFloat,
                       "float decision sid=%d: history miss=%.2f "
                       "reuse=%.2f over %llu reqs",
                       sid, miss_ratio, reuse_ratio,
                       (unsigned long long)h.requests);
        }
    }
    if (!decided)
        return false;

    FloatRequest req;
    req.base = s.cfg;
    req.baseStart = start_elem;
    std::vector<StreamId> float_children =
        _cfg.floatIndirects ? s.children : std::vector<StreamId>();
    for (StreamId child : float_children) {
        auto cit = _streams.find(child);
        if (cit == _streams.end() || !cit->second.active)
            continue;
        FloatRequest::Indirect ind;
        ind.cfg = cit->second.cfg;
        // The remote engine produces indirect elements for base
        // elements >= start_elem; anything earlier stays at the core.
        uint32_t w_len =
            std::max<uint32_t>(1, ind.cfg.indirect.wLen);
        ind.start = start_elem * w_len;
        req.indirects.push_back(ind);
    }

    if (!_floatCtrl->floatStream(req)) {
        SF_DPRINTF(StreamFloat, "float rejected sid=%d (SE_L2 full)",
                   sid);
        return false;
    }

    ++_stats.streamsFloated;
    SF_DPRINTF(StreamFloat,
               "floated sid=%d from elem %llu (%s, %zu indirects)", sid,
               (unsigned long long)start_elem, reason,
               req.indirects.size());
    trace::recordStream(curTick(), {_tile, sid},
                        trace::StreamPhase::Float, _tile, reason);
    s.floating = true;
    s.floatFromElem = start_elem;
    s.consecutiveCacheHits = 0;
    for (auto &ind : req.indirects) {
        StreamState &c = state(ind.cfg.sid);
        c.floating = true;
        c.floatFromElem = ind.start;
    }
    return true;
}

void
SECore::debugDump(std::FILE *f) const
{
    for (const auto &[sid, s] : _streams) {
        if (!s.active)
            continue;
        std::fprintf(f,
                     "  %s sid=%d float=%d dispatch=%llu commit=%llu "
                     "ready=%llu nextFetch=%llu window=%zu waiters=%zu "
                     "quota=%llu aliasDis=%d\n",
                     name().c_str(), sid, s.floating,
                     (unsigned long long)s.dispatchIter,
                     (unsigned long long)s.commitBase,
                     (unsigned long long)s.readyUpTo,
                     (unsigned long long)s.nextFetch, s.window.size(),
                     s.waiters.size(), (unsigned long long)s.quotaElems,
                     s.aliasDisabled);
    }
}

void
SECore::sink(StreamId sid, const char *reason)
{
    auto it = _streams.find(sid);
    if (it == _streams.end() || !it->second.active)
        return;
    StreamState &s = it->second;
    if (!s.floating)
        return;
    SF_DPRINTF(StreamFloat, "sink sid=%d (%s)", sid, reason);
    trace::recordStream(curTick(), {_tile, sid},
                        trace::StreamPhase::Sink, _tile, reason);
    // Sink the whole group: the base and its indirect children.
    StreamId base = s.cfg.hasIndirect ? s.parent : sid;
    auto bit = _streams.find(base);
    if (bit == _streams.end() || !bit->second.active || base == sid) {
        bit = it;
        base = sid;
    }
    StreamState &bs = bit->second;

    ++_stats.streamsSunk;
    if (_floatCtrl)
        _floatCtrl->unfloatStream(base);
    bs.floating = false;
    bs.noRefloat = true;
    bs.floatFromElem = ~0ULL;
    for (StreamId child : bs.children) {
        auto cit = _streams.find(child);
        if (cit != _streams.end() && cit->second.active) {
            cit->second.floating = false;
            cit->second.noRefloat = true;
            cit->second.floatFromElem = ~0ULL;
        }
    }
}

} // namespace stream
} // namespace sf
