/**
 * @file
 * Set-associative TLB model with a two-level lookup helper.
 *
 * Table III: L1 D-TLB 64-entry / 8-way; L2 TLB 2k-entry (1k for the
 * SE_L3 TLB) / 16-way with 8-cycle latency. Misses cost a fixed page
 * walk penalty (the walker itself is not modelled at cache granularity).
 */

#ifndef SF_MEM_TLB_HH
#define SF_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

/** One set-associative TLB level with true-LRU replacement. */
class Tlb
{
  public:
    Tlb(uint32_t entries, uint32_t ways)
        : _ways(ways), _sets(entries / ways),
          _tags(entries, invalidAddr), _lru(entries, 0)
    {
        sf_assert(_sets * ways == entries, "TLB entries not divisible");
    }

    /** Probe and update LRU on hit. */
    bool
    lookup(Addr vaddr)
    {
        Addr vpn = vaddr / pageBytes;
        size_t set = static_cast<size_t>(vpn % _sets);
        for (uint32_t w = 0; w < _ways; ++w) {
            size_t idx = set * _ways + w;
            if (_tags[idx] == vpn) {
                _lru[idx] = ++_clock;
                ++hits;
                return true;
            }
        }
        ++misses;
        return false;
    }

    /** Install a translation, evicting LRU. */
    void
    insert(Addr vaddr)
    {
        Addr vpn = vaddr / pageBytes;
        size_t set = static_cast<size_t>(vpn % _sets);
        size_t victim = set * _ways;
        uint64_t oldest = ~0ULL;
        for (uint32_t w = 0; w < _ways; ++w) {
            size_t idx = set * _ways + w;
            if (_tags[idx] == vpn)
                return; // already present
            if (_lru[idx] < oldest) {
                oldest = _lru[idx];
                victim = idx;
            }
        }
        _tags[victim] = vpn;
        _lru[victim] = ++_clock;
    }

    void
    flush()
    {
        std::fill(_tags.begin(), _tags.end(), invalidAddr);
    }

    stats::Scalar hits;
    stats::Scalar misses;

  private:
    uint32_t _ways;
    uint32_t _sets;
    std::vector<Addr> _tags;
    std::vector<uint64_t> _lru;
    uint64_t _clock = 0;
};

/**
 * Two-level TLB hierarchy front-end: returns the translation latency in
 * cycles and performs the functional translation via an AddressSpace.
 */
class TlbHierarchy
{
  public:
    TlbHierarchy(uint32_t l1_entries, uint32_t l1_ways,
                 uint32_t l2_entries, uint32_t l2_ways,
                 Cycles l2_latency, Cycles walk_latency)
        : _l1(l1_entries, l1_ways), _l2(l2_entries, l2_ways),
          _l2Latency(l2_latency), _walkLatency(walk_latency)
    {}

    /**
     * Translate @p vaddr through @p as, updating TLB state.
     * @param[out] latency extra cycles charged for the translation.
     * @return physical address.
     */
    Addr
    translate(AddressSpace &as, Addr vaddr, Cycles &latency)
    {
        if (_l1.lookup(vaddr)) {
            latency = 0;
        } else if (_l2.lookup(vaddr)) {
            latency = _l2Latency;
            _l1.insert(vaddr);
        } else {
            latency = _l2Latency + _walkLatency;
            _l2.insert(vaddr);
            _l1.insert(vaddr);
        }
        return as.translate(vaddr);
    }

    Tlb &l1() { return _l1; }
    Tlb &l2() { return _l2; }

  private:
    Tlb _l1;
    Tlb _l2;
    Cycles _l2Latency;
    Cycles _walkLatency;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_TLB_HH
