/**
 * @file
 * Static-NUCA address interleaving across L3 banks and the memory
 * controller map (Table III: 64 B default interleave; SF uses 1 kB;
 * Fig. 17 sweeps 64 B..4 kB. Memory controllers sit at the 4 corners).
 */

#ifndef SF_MEM_NUCA_HH
#define SF_MEM_NUCA_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

/** Maps physical addresses to L3 bank tiles and memory controllers. */
class NucaMap
{
  public:
    NucaMap(int nx, int ny, uint32_t interleave_bytes)
        : _numTiles(nx * ny), _interleave(interleave_bytes)
    {
        sf_assert(interleave_bytes >= lineBytes &&
                      (interleave_bytes & (interleave_bytes - 1)) == 0,
                  "interleave must be a power-of-two >= line size");
        // Memory controllers at the four mesh corners.
        _memCtrls = {0, nx - 1, (ny - 1) * nx, ny * nx - 1};
        if (_numTiles == 1)
            _memCtrls = {0};
    }

    /** L3 bank (tile id) holding @p paddr. */
    TileId
    bankOf(Addr paddr) const
    {
        return static_cast<TileId>((paddr / _interleave) %
                                   static_cast<uint64_t>(_numTiles));
    }

    /**
     * First address after @p paddr that maps to a different bank
     * (stream migration boundary).
     */
    Addr
    bankBoundary(Addr paddr) const
    {
        return (paddr / _interleave + 1) * _interleave;
    }

    /** Memory controller tile servicing @p paddr (page interleaved). */
    TileId
    memCtrlOf(Addr paddr) const
    {
        size_t idx = static_cast<size_t>((paddr >> 12) % _memCtrls.size());
        return _memCtrls[idx];
    }

    const std::vector<TileId> &memCtrls() const { return _memCtrls; }
    uint32_t interleaveBytes() const { return _interleave; }
    int numTiles() const { return _numTiles; }

  private:
    int _numTiles;
    uint32_t _interleave;
    std::vector<TileId> _memCtrls;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_NUCA_HH
