/**
 * @file
 * Shared L3 cache bank with an integrated (blocking) MESI directory
 * and the GetU uncached-read extension of Fig. 12.
 *
 * One bank lives on every tile; static NUCA interleaving (NucaMap)
 * decides the home bank of each line. The bank also exposes a local
 * issue path for the colocated SE_L3: floated streams generate
 * requests *at this tile* on behalf of remote cores, which is exactly
 * the request-message elimination stream floating is about.
 */

#ifndef SF_MEM_L3_BANK_HH
#define SF_MEM_L3_BANK_HH

#include <array>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/mem_msg.hh"
#include "mem/nuca.hh"
#include "noc/mesh.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace sf {

namespace verify {
class DataPlane;
} // namespace verify

namespace mem {

struct L3BankConfig
{
    uint64_t sizeBytes = 1024 * 1024;
    uint32_t ways = 16;
    Cycles latency = 20;
    ReplPolicy policy = ReplPolicy::BRRIP;
};

struct L3BankStats
{
    stats::Scalar hits, misses;
    stats::Scalar memReads, memWrites;
    /** Requests by origin (Fig. 14). */
    std::array<stats::Scalar,
               static_cast<size_t>(ReqClass::NumClasses)> requestsByClass;
    stats::Scalar backInvalidations;
    stats::Scalar fwdRequests;
    stats::Scalar fillRetries;
    stats::Scalar recalls;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("hits", &hits);
        g.regScalar("misses", &misses);
        g.regScalar("memReads", &memReads);
        g.regScalar("memWrites", &memWrites);
        g.regScalar("reqCoreNormal", &requestsByClass[0]);
        g.regScalar("reqCoreStream", &requestsByClass[1]);
        g.regScalar("reqFloatAffine", &requestsByClass[2]);
        g.regScalar("reqFloatIndirect", &requestsByClass[3]);
        g.regScalar("reqFloatConfluence", &requestsByClass[4]);
        g.regScalar("backInvalidations", &backInvalidations);
        g.regScalar("fwdRequests", &fwdRequests);
        g.regScalar("recalls", &recalls);
    }
};

/**
 * A request issued locally by the colocated SE_L3 on behalf of a
 * remote core (or a confluence group of cores).
 */
struct StreamReadReq
{
    Addr lineAddr = 0;
    /** Bytes to return (subline transfer for indirect streams). */
    uint16_t dataBytes = lineBytes;
    GlobalStreamId stream;
    uint32_t gen = 0;
    uint64_t elemIdx = 0;
    uint16_t elemCount = 1;
    /** Requesting tiles (more than one under confluence). */
    std::vector<TileId> dests;
    /** All merged streams covered by this request. */
    std::vector<GlobalStreamId> merged;
    ReqClass reqClass = ReqClass::FloatAffine;
    /**
     * Fired when the data is available at this bank; used by the
     * SE_L3 to pick up indirect index values.
     */
    std::function<void()> onLocalData;
};

/** The banked, directory-holding shared L3. */
class L3Bank : public SimObject
{
  public:
    L3Bank(const std::string &name, EventQueue &eq, TileId tile,
           const L3BankConfig &cfg, noc::Mesh &mesh, const NucaMap &nuca);

    /** Protocol messages from the mesh. */
    void recvMsg(const MemMsgPtr &msg);

    /** Local uncached read from the colocated SE_L3. */
    void streamRead(StreamReadReq req);

    /** Attach the --verify data plane (null = verify off). */
    void setVerify(verify::DataPlane *v) { _verify = v; }

    /** Enable latency attribution (null = off, the default). */
    void setProfiler(prof::Profiler *p) { _prof = p; }

    /**
     * Deterministic fault injection for the verify negative tests:
     * "stale-getu" serves GetU from the (possibly stale) L3 copy even
     * when a private cache owns the line; "drop-putm-data" discards
     * PutM byte images. Only meaningful with the data plane attached.
     */
    void setVerifyBug(const std::string &bug) { _verifyBug = bug; }

    L3BankStats &stats() { return _stats; }
    const L3BankStats &stats() const { return _stats; }

    double
    hitRate() const
    {
        uint64_t t = _stats.hits + _stats.misses;
        return t ? double(_stats.hits.value()) / t : 0.0;
    }

    TileId tile() const { return _tile; }

    /** Dump blocked-line transactions (debugging aid). */
    void debugDump(std::FILE *f) const;

    // --- introspection for the invariant checker / drain checks ---
    /** Directory/tag array (read-only MESI walks; do not mutate). */
    CacheArray &array() { return _array; }
    /** Outstanding blocking transactions. */
    size_t numTxns() const { return _txns.size(); }
    /** A transaction currently blocks this line (state in flux). */
    bool isLineBlocked(Addr line_addr) const
    {
        return _txns.count(line_addr) != 0;
    }

  private:
    /** A pending transaction blocks its line. */
    struct Txn
    {
        enum class State
        {
            WaitMem,
            WaitInvAcks,
            WaitFwdAck,
        };
        State state = State::WaitMem;
        /** Original request (null for local stream reads). */
        MemMsgPtr req;
        /** Local stream read being serviced (valid if isStream). */
        bool isStream = false;
        /** Recall of an owned line to free a saturated set. */
        bool isRecall = false;
        StreamReadReq sreq;
        /** Tick the MemRead left for the controller (Mem attribution). */
        Tick memIssueTick = 0;
        int pendingAcks = 0;
        /** Requests that arrived while the line was blocked. */
        std::deque<std::variant<MemMsgPtr, StreamReadReq>> queued;
    };

    /** Entry point after the bank access latency. */
    void process(const MemMsgPtr &msg);
    void processStream(StreamReadReq req);

    void handleGetS(const MemMsgPtr &msg);
    void handleGetM(const MemMsgPtr &msg);
    void handleGetU(const MemMsgPtr &msg);
    void handlePut(const MemMsgPtr &msg);
    void handleInvAck(const MemMsgPtr &msg);
    void handleFwdAck(const MemMsgPtr &msg);
    void handleFwdMiss(const MemMsgPtr &msg);
    void handleMemData(const MemMsgPtr &msg);

    /** Serve a GetU/stream read that hits a directory-clean line. */
    void serveUncached(const Txn *txn, const MemMsgPtr &msg,
                       const StreamReadReq *sreq);

    /** Respond with DataS/DataE and update the directory. */
    void serveShared(const MemMsgPtr &msg, CacheLine &line);

    /** Fetch a missing line from memory, creating a transaction. */
    void startMemFetch(Addr line_addr);

    /** Invalidate one owned line in a saturated set (recall). */
    void recallOwnedLine(Addr fill_addr);

    /**
     * Allocate an L3 way (never evicting owned lines); back-
     * invalidates sharers and writes back dirty victims.
     * @return nullptr if the fill must be retried later.
     */
    CacheLine *allocate(Addr line_addr);

    /** Finish a transaction and process queued requests. */
    void finalize(Addr line_addr);

    bool lineBlocked(Addr a) const { return _txns.count(a) != 0; }

    void sendToTile(const MemMsgPtr &msg) { _mesh.send(msg); }

    L3BankConfig _cfg;
    TileId _tile;
    noc::Mesh &_mesh;
    const NucaMap &_nuca;
    CacheArray _array;
    std::unordered_map<Addr, Txn> _txns;
    verify::DataPlane *_verify = nullptr;
    prof::Profiler *_prof = nullptr;
    std::string _verifyBug;
    L3BankStats _stats;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_L3_BANK_HH
