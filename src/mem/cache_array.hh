/**
 * @file
 * Set-associative tag/state array shared by all cache levels.
 *
 * Lines carry the metadata the paper's mechanisms need beyond plain
 * MESI: which stream (if any) brought the line in (§IV-D reuse
 * tracking), whether it was prefetched, whether it has been reused
 * since fill (Fig. 2 telemetry), and the directory sharer/owner info
 * when used as an L3 bank.
 */

#ifndef SF_MEM_CACHE_ARRAY_HH
#define SF_MEM_CACHE_ARRAY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/replacement.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

/** MESI stable states for private caches; L3 uses Invalid/Valid. */
enum class LineState : uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Per-line metadata. */
struct CacheLine
{
    Addr tag = invalidAddr; //!< line-aligned physical address
    LineState state = LineState::Invalid;
    bool dirty = false;

    // --- Telemetry and stream-floating support ---
    /** True once the line has been accessed after its fill. */
    bool reused = false;
    /** Filled by a prefetcher (accuracy accounting). */
    bool prefetched = false;
    /** Stream that brought the line in (§IV-D); invalid if none. */
    StreamId fillStream = invalidStream;
    /** Fill access came from a compiler-recognized stream (Fig. 2a). */
    bool streamEligible = false;
    /** Extended L2 tag: credit sequence number at last dirty L1 pass. */
    uint16_t seqNum = 0;

    // --- Directory info (used when the array is an L3 bank) ---
    uint64_t sharers = 0; //!< bitmask of L2s with a copy
    TileId owner = invalidTile; //!< L2 holding M/E, if any

    /**
     * --verify data plane: the line's byte image, materialized lazily
     * on the first store (null means "equal to the level below").
     * Shared, never mutated in place once attached to a message; the
     * timing model ignores it entirely.
     */
    std::shared_ptr<std::array<uint8_t, lineBytes>> vdata;

    bool valid() const { return state != LineState::Invalid; }

    void
    reset()
    {
        *this = CacheLine();
    }
};

/** Result of a fill: what was evicted (if anything). */
struct Eviction
{
    bool valid = false;
    CacheLine line;
};

/** A physical-address-indexed set-associative array. */
class CacheArray
{
  public:
    CacheArray(uint64_t size_bytes, uint32_t ways, ReplPolicy policy)
        : _ways(ways), _sets(size_bytes / lineBytes / ways),
          _lines(static_cast<size_t>(size_bytes / lineBytes)),
          _repl(makeReplacement(policy, _sets, ways))
    {
        sf_assert(_sets > 0 && (_sets & (_sets - 1)) == 0,
                  "cache set count must be a power of two (got %zu)",
                  _sets);
    }

    size_t numSets() const { return _sets; }
    uint32_t numWays() const { return _ways; }

    /**
     * Override the line-index function used for set selection. Banked
     * caches (the NUCA L3) must strip the interleaving bits so that a
     * bank's sets cover its whole address slice; the default is the
     * global line number. Tags always use the full line address.
     */
    void
    setIndexFunction(std::function<uint64_t(Addr)> fn)
    {
        _indexFn = std::move(fn);
    }

    /** Find the line holding @p paddr; nullptr on miss. No LRU update. */
    CacheLine *
    probe(Addr paddr)
    {
        Addr tag = lineAlign(paddr);
        size_t set = setOf(paddr);
        for (uint32_t w = 0; w < _ways; ++w) {
            CacheLine &l = _lines[set * _ways + w];
            if (l.valid() && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    /** Probe and update replacement state on hit. */
    CacheLine *
    access(Addr paddr)
    {
        Addr tag = lineAlign(paddr);
        size_t set = setOf(paddr);
        for (uint32_t w = 0; w < _ways; ++w) {
            CacheLine &l = _lines[set * _ways + w];
            if (l.valid() && l.tag == tag) {
                _repl->touch(set, w);
                return &l;
            }
        }
        return nullptr;
    }

    /**
     * Allocate a way for @p paddr (must not be present), evicting if
     * necessary. The new line is returned in Invalid state; the caller
     * sets state/metadata.
     */
    CacheLine &
    fill(Addr paddr, Eviction &evicted)
    {
        sf_assert(probe(paddr) == nullptr, "double fill");
        size_t set = setOf(paddr);
        // Prefer an invalid way.
        for (uint32_t w = 0; w < _ways; ++w) {
            CacheLine &l = _lines[set * _ways + w];
            if (!l.valid()) {
                evicted.valid = false;
                l.reset();
                l.tag = lineAlign(paddr);
                _repl->insert(set, w);
                return l;
            }
        }
        uint32_t w = _repl->victim(set);
        CacheLine &l = _lines[set * _ways + w];
        evicted.valid = true;
        evicted.line = l;
        l.reset();
        l.tag = lineAlign(paddr);
        _repl->insert(set, w);
        return l;
    }

    /**
     * Like fill(), but only evicts victims satisfying @p can_evict
     * (e.g. the L3 never evicts lines owned M by a private cache).
     * @return nullptr when no way can be freed; the caller must retry.
     */
    CacheLine *
    fillIf(Addr paddr, Eviction &evicted,
           const std::function<bool(const CacheLine &)> &can_evict)
    {
        sf_assert(probe(paddr) == nullptr, "double fill");
        size_t set = setOf(paddr);
        for (uint32_t w = 0; w < _ways; ++w) {
            CacheLine &l = _lines[set * _ways + w];
            if (!l.valid()) {
                evicted.valid = false;
                l.reset();
                l.tag = lineAlign(paddr);
                _repl->insert(set, w);
                return &l;
            }
        }
        // Ask the policy first; fall back to scanning.
        uint32_t w = _repl->victim(set);
        if (!can_evict(_lines[set * _ways + w])) {
            bool found = false;
            for (uint32_t i = 0; i < _ways; ++i) {
                if (can_evict(_lines[set * _ways + i])) {
                    w = i;
                    found = true;
                    break;
                }
            }
            if (!found)
                return nullptr;
        }
        CacheLine &l = _lines[set * _ways + w];
        evicted.valid = true;
        evicted.line = l;
        l.reset();
        l.tag = lineAlign(paddr);
        _repl->insert(set, w);
        return &l;
    }

    /** Invalidate the line holding @p paddr if present. */
    bool
    invalidate(Addr paddr)
    {
        CacheLine *l = probe(paddr);
        if (!l)
            return false;
        l->reset();
        return true;
    }

    /** Visit each way of the set @p paddr maps to (debug / directory). */
    void
    forEachInSet(Addr paddr, const std::function<void(CacheLine &)> &fn)
    {
        size_t set = setOf(paddr);
        for (uint32_t w = 0; w < _ways; ++w)
            fn(_lines[set * _ways + w]);
    }

    /** Iterate all valid lines (used for flush / end-of-run stats). */
    void
    forEachValid(const std::function<void(CacheLine &)> &fn)
    {
        for (auto &l : _lines) {
            if (l.valid())
                fn(l);
        }
    }

    /**
     * Iterate all valid lines with their array index (set*ways+way),
     * so snapshot capture (DESIGN.md §4j) records exact positions.
     */
    void
    forEachValidIndexed(
        const std::function<void(size_t, const CacheLine &)> &fn) const
    {
        for (size_t i = 0; i < _lines.size(); ++i) {
            if (_lines[i].valid())
                fn(i, _lines[i]);
        }
    }

  private:
    size_t
    setOf(Addr paddr) const
    {
        uint64_t line_index =
            _indexFn ? _indexFn(paddr) : paddr / lineBytes;
        return static_cast<size_t>(line_index & (_sets - 1));
    }

    std::function<uint64_t(Addr)> _indexFn;
    uint32_t _ways;
    size_t _sets;
    std::vector<CacheLine> _lines;
    std::unique_ptr<Replacement> _repl;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_CACHE_ARRAY_HH
