/**
 * @file
 * Memory controller: the NoC endpoint at a corner tile that services
 * MemRead / MemWrite from L3 banks through a DRAM channel.
 */

#ifndef SF_MEM_MEM_CTRL_HH
#define SF_MEM_MEM_CTRL_HH

#include "mem/dram.hh"
#include "mem/mem_msg.hh"
#include "noc/mesh.hh"
#include "sim/debug.hh"
#include "sim/sim_object.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace mem {

/** One controller + channel pair at a mesh corner. */
class MemCtrl : public SimObject
{
  public:
    MemCtrl(const std::string &name, EventQueue &eq, TileId tile,
            const DramConfig &cfg, noc::Mesh &mesh)
        : SimObject(name, eq), _tile(tile), _mesh(mesh),
          _channel(name + ".dram", eq, cfg)
    {}

    void
    recvMsg(const MemMsgPtr &msg)
    {
        if (msg->type == MemMsgType::MemWrite) {
            SF_DPRINTF(DRAM, "write %llx from tile %d",
                       (unsigned long long)msg->lineAddr, (int)msg->src);
            if (_verify)
                _verify->dramWrite(msg->lineAddr, msg->vdata);
            _channel.access(true, nullptr);
            return;
        }
        sf_assert(msg->type == MemMsgType::MemRead,
                  "MemCtrl got %s", memMsgName(msg->type));
        SF_DPRINTF(DRAM, "read %llx for tile %d (requester %d)",
                   (unsigned long long)msg->lineAddr, (int)msg->src,
                   (int)msg->requester);
        _channel.access(false, [this, msg]() {
            auto data = makeMemMsg(MemMsgType::MemData, msg->lineAddr,
                                   _tile, msg->src, msg->requester);
            _mesh.send(data);
        });
    }

    DramChannel &channel() { return _channel; }

    /** Attach the --verify data plane (null = verify off). */
    void setVerify(verify::DataPlane *v) { _verify = v; }

  private:
    TileId _tile;
    noc::Mesh &_mesh;
    DramChannel _channel;
    verify::DataPlane *_verify = nullptr;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_MEM_CTRL_HH
