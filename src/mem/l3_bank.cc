#include "mem/l3_bank.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace mem {

L3Bank::L3Bank(const std::string &name, EventQueue &eq, TileId tile,
               const L3BankConfig &cfg, noc::Mesh &mesh,
               const NucaMap &nuca)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _mesh(mesh),
      _nuca(nuca), _array(cfg.sizeBytes, cfg.ways, cfg.policy)
{
    // Bank-local set indexing: compact this bank's NUCA slice so its
    // sets cover the whole address space (otherwise only 1/numTiles of
    // the sets would ever be used).
    uint64_t interleave = _nuca.interleaveBytes();
    uint64_t tiles = static_cast<uint64_t>(_nuca.numTiles());
    _array.setIndexFunction([interleave, tiles](Addr pa) {
        uint64_t chunk = pa / interleave / tiles;
        uint64_t line_in_chunk = (pa % interleave) / lineBytes;
        return chunk * (interleave / lineBytes) + line_in_chunk;
    });
}

void
L3Bank::recvMsg(const MemMsgPtr &msg)
{
    switch (msg->type) {
      case MemMsgType::InvAck:
        handleInvAck(msg);
        return;
      case MemMsgType::FwdAck:
        handleFwdAck(msg);
        return;
      case MemMsgType::FwdMiss:
        handleFwdMiss(msg);
        return;
      case MemMsgType::MemData:
        handleMemData(msg);
        return;
      case MemMsgType::GetS:
      case MemMsgType::GetM:
      case MemMsgType::GetU:
      case MemMsgType::PutS:
      case MemMsgType::PutM:
      case MemMsgType::FwdGetS:
      case MemMsgType::FwdGetM:
      case MemMsgType::FwdGetU:
      case MemMsgType::Inv:
      case MemMsgType::PutAck:
      case MemMsgType::DataS:
      case MemMsgType::DataE:
      case MemMsgType::DataM:
      case MemMsgType::DataU:
      case MemMsgType::MemRead:
      case MemMsgType::MemWrite:
        break;
    }

    // Bulk prefetch: one request message carries several consecutive
    // line requests (§VI); expand locally at zero NoC cost.
    if (msg->bulkLines > 1) {
        for (uint16_t i = 0; i < msg->bulkLines; ++i) {
            auto sub = std::make_shared<MemMsg>(*msg);
            sub->lineAddr = msg->lineAddr + uint64_t(i) * lineBytes;
            sub->bulkLines = 1;
            scheduleIn(_cfg.latency, [this, sub]() { process(sub); });
        }
        return;
    }

    // Charge the bank access pipeline up front: the latency is fixed,
    // so attributing it at receipt keeps the hot path branch-free.
    if (_prof && msg->profId)
        _prof->add(_tile, msg->profId, prof::Phase::L3Service, _cfg.latency);
    scheduleIn(_cfg.latency, [this, msg]() { process(msg); });
}

void
L3Bank::process(const MemMsgPtr &msg)
{
    // Writebacks are never blocked: a racing Fwd may be waiting on the
    // PutM data to arrive.
    if (msg->type == MemMsgType::PutS || msg->type == MemMsgType::PutM) {
        handlePut(msg);
        return;
    }

    if (lineBlocked(msg->lineAddr)) {
        if (_prof && msg->profId && !msg->profEnqTick)
            msg->profEnqTick = curTick();
        _txns[msg->lineAddr].queued.push_back(msg);
        return;
    }
    if (_prof && msg->profId && msg->profEnqTick) {
        _prof->add(_tile, msg->profId, prof::Phase::L3Queue,
                   curTick() - msg->profEnqTick);
        msg->profEnqTick = 0;
    }

    SF_DPRINTF(Cache, "%s %llx from tile %d", memMsgName(msg->type),
               (unsigned long long)msg->lineAddr, (int)msg->requester);

    switch (msg->type) {
      case MemMsgType::GetS:
        handleGetS(msg);
        break;
      case MemMsgType::GetM:
        handleGetM(msg);
        break;
      case MemMsgType::GetU:
        handleGetU(msg);
        break;
      case MemMsgType::PutS:
      case MemMsgType::PutM:
      case MemMsgType::FwdGetS:
      case MemMsgType::FwdGetM:
      case MemMsgType::FwdGetU:
      case MemMsgType::Inv:
      case MemMsgType::InvAck:
      case MemMsgType::FwdAck:
      case MemMsgType::FwdMiss:
      case MemMsgType::PutAck:
      case MemMsgType::DataS:
      case MemMsgType::DataE:
      case MemMsgType::DataM:
      case MemMsgType::DataU:
      case MemMsgType::MemRead:
      case MemMsgType::MemWrite:
      case MemMsgType::MemData:
        panic("L3 %s got unexpected %s", name().c_str(),
              memMsgName(msg->type));
    }
}

void
L3Bank::streamRead(StreamReadReq req)
{
    sf_assert(_nuca.bankOf(req.lineAddr) == _tile,
              "stream read for a line homed elsewhere");
    scheduleIn(_cfg.latency,
               [this, req = std::move(req)]() mutable {
                   processStream(std::move(req));
               });
}

void
L3Bank::processStream(StreamReadReq req)
{
    if (lineBlocked(req.lineAddr)) {
        _txns[req.lineAddr].queued.push_back(std::move(req));
        return;
    }

    ++_stats.requestsByClass[static_cast<size_t>(req.reqClass)];

    SF_DPRINTF(SEL3, "streamRead %llx c%d.s%d elem=%llu",
               (unsigned long long)req.lineAddr, (int)req.stream.core,
               (int)req.stream.sid, (unsigned long long)req.elemIdx);

    CacheLine *line = _array.access(req.lineAddr);
    if (line && line->owner == invalidTile) {
        ++_stats.hits;
        serveUncached(nullptr, nullptr, &req);
        return;
    }

    if (line && _verifyBug == "stale-getu") {
        // Injected bug: skip the owner forward and serve the L3's own
        // (stale) copy. The oracle must catch this with exit 67.
        ++_stats.hits;
        serveUncached(nullptr, nullptr, &req);
        return;
    }

    if (line) {
        // Owned by a private cache: forward an uncached read.
        ++_stats.hits;
        ++_stats.fwdRequests;
        Txn txn;
        txn.state = Txn::State::WaitFwdAck;
        txn.isStream = true;
        txn.sreq = std::move(req);
        auto fwd = makeMemMsg(MemMsgType::FwdGetU, txn.sreq.lineAddr,
                              _tile, line->owner, txn.sreq.dests.front());
        fwd->stream = txn.sreq.stream;
        fwd->streamGen = txn.sreq.gen;
        fwd->elemIdx = txn.sreq.elemIdx;
        fwd->elemCount = txn.sreq.elemCount;
        fwd->dataBytes = txn.sreq.dataBytes;
        fwd->mergedStreams = txn.sreq.merged;
        _mesh.send(fwd);
        _txns.emplace(txn.sreq.lineAddr, std::move(txn));
        return;
    }

    ++_stats.misses;
    Txn txn;
    txn.state = Txn::State::WaitMem;
    txn.isStream = true;
    txn.memIssueTick = curTick();
    Addr line_addr = req.lineAddr;
    txn.sreq = std::move(req);
    _txns.emplace(line_addr, std::move(txn));
    startMemFetch(line_addr);
}

void
L3Bank::serveUncached(const Txn *txn, const MemMsgPtr &msg,
                      const StreamReadReq *sreq)
{
    // --verify: DataU carries the serve-time image. Normally that is
    // the system-wide view; under the stale-getu injection only this
    // bank's (possibly stale) copy is consulted.
    verify::LinePtr vp;
    if (_verify) {
        Addr addr = sreq ? sreq->lineAddr : msg->lineAddr;
        if (_verifyBug == "stale-getu") {
            CacheLine *l = _array.probe(addr);
            vp = (l && l->vdata) ? l->vdata : _verify->dramSnapshot(addr);
        } else {
            vp = _verify->snapshot(addr);
        }
    }

    if (sreq) {
        auto data = std::make_shared<MemMsg>();
        data->type = MemMsgType::DataU;
        data->lineAddr = sreq->lineAddr;
        data->src = _tile;
        data->dests = sreq->dests;
        data->requester =
            sreq->dests.empty() ? invalidTile : sreq->dests.front();
        data->payloadBytes = sreq->dataBytes;
        data->dataBytes = sreq->dataBytes;
        data->cls = noc::FlitClass::Data;
        data->vnet = noc::VNet::Response;
        data->stream = sreq->stream;
        data->streamGen = sreq->gen;
        data->elemIdx = sreq->elemIdx;
        data->elemCount = sreq->elemCount;
        data->mergedStreams = sreq->merged;
        data->vdata = vp;
        _mesh.send(data);
        if (sreq->onLocalData)
            sreq->onLocalData();
        return;
    }

    // Core-originated GetU (rare: SE_core requests racing a float).
    auto data = makeMemMsg(MemMsgType::DataU, msg->lineAddr, _tile,
                           msg->requester, msg->requester,
                           msg->dataBytes);
    data->profId = msg->profId;
    data->stream = msg->stream;
    data->streamGen = msg->streamGen;
    data->elemIdx = msg->elemIdx;
    data->elemCount = msg->elemCount;
    data->vdata = vp;
    _mesh.send(data);
    (void)txn;
}

void
L3Bank::serveShared(const MemMsgPtr &msg, CacheLine &line)
{
    if (line.sharers == 0 && line.owner == invalidTile) {
        // Grant Exclusive; the directory remembers the E owner.
        line.owner = msg->requester;
        auto data = makeMemMsg(MemMsgType::DataE, msg->lineAddr, _tile,
                               msg->requester, msg->requester);
        data->profId = msg->profId;
        data->vdata = line.vdata;
        _mesh.send(data);
    } else {
        line.sharers |= (1ULL << msg->requester);
        auto data = makeMemMsg(MemMsgType::DataS, msg->lineAddr, _tile,
                               msg->requester, msg->requester);
        data->profId = msg->profId;
        data->vdata = line.vdata;
        _mesh.send(data);
    }
}

void
L3Bank::handleGetS(const MemMsgPtr &msg)
{
    ++_stats.requestsByClass[static_cast<size_t>(msg->reqClass)];
    CacheLine *line = _array.access(msg->lineAddr);

    if (line && line->owner != invalidTile &&
        line->owner != msg->requester) {
        ++_stats.hits;
        ++_stats.fwdRequests;
        Txn txn;
        txn.state = Txn::State::WaitFwdAck;
        txn.req = msg;
        auto fwd = makeMemMsg(MemMsgType::FwdGetS, msg->lineAddr, _tile,
                              line->owner, msg->requester);
        fwd->profId = msg->profId;
        _mesh.send(fwd);
        _txns.emplace(msg->lineAddr, std::move(txn));
        return;
    }

    if (line) {
        ++_stats.hits;
        if (line->owner == msg->requester) {
            // Degenerate: requester believes it missed (racing evict);
            // clear ownership and re-grant.
            line->owner = invalidTile;
        }
        serveShared(msg, *line);
        return;
    }

    ++_stats.misses;
    Txn txn;
    txn.state = Txn::State::WaitMem;
    txn.req = msg;
    txn.memIssueTick = curTick();
    _txns.emplace(msg->lineAddr, std::move(txn));
    startMemFetch(msg->lineAddr);
}

void
L3Bank::handleGetM(const MemMsgPtr &msg)
{
    ++_stats.requestsByClass[static_cast<size_t>(msg->reqClass)];
    CacheLine *line = _array.access(msg->lineAddr);

    if (line && line->owner != invalidTile &&
        line->owner != msg->requester) {
        ++_stats.hits;
        ++_stats.fwdRequests;
        Txn txn;
        txn.state = Txn::State::WaitFwdAck;
        txn.req = msg;
        auto fwd = makeMemMsg(MemMsgType::FwdGetM, msg->lineAddr, _tile,
                              line->owner, msg->requester);
        fwd->profId = msg->profId;
        _mesh.send(fwd);
        _txns.emplace(msg->lineAddr, std::move(txn));
        return;
    }

    if (line) {
        ++_stats.hits;
        uint64_t others =
            line->sharers & ~(1ULL << msg->requester);
        if (others) {
            Txn txn;
            txn.state = Txn::State::WaitInvAcks;
            txn.req = msg;
            auto inv = std::make_shared<MemMsg>();
            inv->type = MemMsgType::Inv;
            inv->lineAddr = msg->lineAddr;
            inv->src = _tile;
            inv->requester = msg->requester;
            inv->cls = noc::FlitClass::Control;
            inv->vnet = noc::VNet::Control;
            int count = 0;
            for (TileId t = 0; t < _mesh.numTiles(); ++t) {
                if (others & (1ULL << t)) {
                    inv->dests.push_back(t);
                    ++count;
                }
            }
            txn.pendingAcks = count;
            _mesh.send(inv);
            _txns.emplace(msg->lineAddr, std::move(txn));
            return;
        }
        line->sharers = 0;
        line->owner = msg->requester;
        auto data = makeMemMsg(MemMsgType::DataM, msg->lineAddr, _tile,
                               msg->requester, msg->requester);
        data->profId = msg->profId;
        data->vdata = line->vdata;
        _mesh.send(data);
        return;
    }

    ++_stats.misses;
    Txn txn;
    txn.state = Txn::State::WaitMem;
    txn.req = msg;
    txn.memIssueTick = curTick();
    _txns.emplace(msg->lineAddr, std::move(txn));
    startMemFetch(msg->lineAddr);
}

void
L3Bank::handleGetU(const MemMsgPtr &msg)
{
    ++_stats.requestsByClass[static_cast<size_t>(msg->reqClass)];
    CacheLine *line = _array.access(msg->lineAddr);

    if (line && line->owner == invalidTile) {
        ++_stats.hits;
        serveUncached(nullptr, msg, nullptr);
        return;
    }

    if (line && _verifyBug == "stale-getu") {
        // Injected bug: serve the stale local copy instead of
        // forwarding to the owner (caught by the oracle, exit 67).
        ++_stats.hits;
        serveUncached(nullptr, msg, nullptr);
        return;
    }

    if (line) {
        ++_stats.hits;
        ++_stats.fwdRequests;
        Txn txn;
        txn.state = Txn::State::WaitFwdAck;
        txn.req = msg;
        auto fwd = makeMemMsg(MemMsgType::FwdGetU, msg->lineAddr, _tile,
                              line->owner, msg->requester);
        fwd->profId = msg->profId;
        fwd->stream = msg->stream;
        fwd->streamGen = msg->streamGen;
        fwd->elemIdx = msg->elemIdx;
        fwd->elemCount = msg->elemCount;
        fwd->dataBytes = msg->dataBytes;
        _mesh.send(fwd);
        _txns.emplace(msg->lineAddr, std::move(txn));
        return;
    }

    ++_stats.misses;
    Txn txn;
    txn.state = Txn::State::WaitMem;
    txn.req = msg;
    txn.memIssueTick = curTick();
    _txns.emplace(msg->lineAddr, std::move(txn));
    startMemFetch(msg->lineAddr);
}

void
L3Bank::handlePut(const MemMsgPtr &msg)
{
    CacheLine *line = _array.probe(msg->lineAddr);
    if (line) {
        if (msg->type == MemMsgType::PutM) {
            line->dirty = true;
            if (line->owner == msg->src)
                line->owner = invalidTile;
            if (_verify) {
                if (_verifyBug == "drop-putm-data") {
                    // Injected bug: lose the writeback's byte image.
                    _verify->clearInFlight(msg->lineAddr);
                } else {
                    _verify->l3Install(line, msg->lineAddr,
                                       msg->vdata ? msg->vdata
                                                  : line->vdata);
                }
            }
        } else {
            line->sharers &= ~(1ULL << msg->src);
            if (line->owner == msg->src)
                line->owner = invalidTile; // clean E eviction
        }
    } else if (_verify && msg->type == MemMsgType::PutM) {
        // Line no longer resident at the L3 (defensive): the writeback
        // bytes fall straight through to the DRAM shadow.
        if (_verifyBug == "drop-putm-data")
            _verify->clearInFlight(msg->lineAddr);
        else
            _verify->dramWrite(msg->lineAddr, msg->vdata);
    }
    auto ack = makeMemMsg(MemMsgType::PutAck, msg->lineAddr, _tile,
                          msg->src, msg->src);
    _mesh.send(ack);
}

void
L3Bank::recallOwnedLine(Addr fill_addr)
{
    CacheLine *victim = nullptr;
    _array.forEachInSet(fill_addr, [&](CacheLine &l) {
        if (!victim && l.valid() && l.owner != invalidTile &&
            !lineBlocked(l.tag)) {
            victim = &l;
        }
    });
    if (!victim)
        return; // recalls already in flight for every candidate
    ++_stats.recalls;
    Txn txn;
    txn.state = Txn::State::WaitInvAcks;
    txn.isRecall = true;
    txn.pendingAcks = 1;
    auto inv = makeMemMsg(MemMsgType::Inv, victim->tag, _tile,
                          victim->owner, _tile);
    _mesh.send(inv);
    _txns.emplace(victim->tag, std::move(txn));
}

void
L3Bank::handleInvAck(const MemMsgPtr &msg)
{
    auto it = _txns.find(msg->lineAddr);
    if (it == _txns.end())
        return; // ack for an already-satisfied upgrade (racing PutS)
    Txn &txn = it->second;
    if (txn.state != Txn::State::WaitInvAcks)
        return;
    if (--txn.pendingAcks > 0)
        return;

    if (txn.isRecall) {
        CacheLine *line = _array.probe(msg->lineAddr);
        if (line) {
            line->owner = invalidTile;
            line->sharers = 0;
            if (msg->payloadBytes > 0)
                line->dirty = true; // the owner's copy was modified
            if (_verify) {
                _verify->l3Install(line, msg->lineAddr,
                                   msg->vdata ? msg->vdata
                                              : line->vdata);
            }
        }
        finalize(msg->lineAddr);
        return;
    }

    CacheLine *line = _array.probe(msg->lineAddr);
    sf_assert(line, "line vanished during invalidation");
    line->sharers = 0;
    line->owner = txn.req->requester;
    auto data = makeMemMsg(MemMsgType::DataM, msg->lineAddr, _tile,
                           txn.req->requester, txn.req->requester);
    data->profId = txn.req->profId;
    data->vdata = msg->vdata ? msg->vdata : line->vdata;
    _mesh.send(data);
    finalize(msg->lineAddr);
}

void
L3Bank::handleFwdAck(const MemMsgPtr &msg)
{
    auto it = _txns.find(msg->lineAddr);
    if (it == _txns.end() || it->second.state != Txn::State::WaitFwdAck)
        return;
    Txn &txn = it->second;
    CacheLine *line = _array.probe(msg->lineAddr);
    sf_assert(line, "owned line vanished during forward");

    if (txn.isStream || (txn.req && txn.req->type == MemMsgType::GetU)) {
        // Uncached forward: owner state unchanged (Fig. 12c).
        if (txn.isStream && txn.sreq.onLocalData)
            txn.sreq.onLocalData();
    } else if (txn.req->type == MemMsgType::GetS) {
        TileId old_owner = line->owner;
        line->owner = invalidTile;
        line->sharers |= (1ULL << old_owner);
        line->sharers |= (1ULL << txn.req->requester);
        if (msg->payloadBytes > 0)
            line->dirty = true; // owner pushed fresh data to us
        if (_verify && msg->vdata)
            _verify->l3Install(line, msg->lineAddr, msg->vdata);
    } else if (txn.req->type == MemMsgType::GetM) {
        line->owner = txn.req->requester;
        line->sharers = 0;
    }
    finalize(msg->lineAddr);
}

void
L3Bank::handleFwdMiss(const MemMsgPtr &msg)
{
    auto it = _txns.find(msg->lineAddr);
    if (it == _txns.end() || it->second.state != Txn::State::WaitFwdAck)
        return;
    Txn &txn = it->second;
    // The former owner's PutM was processed before this miss notice
    // (in-order delivery on the mesh), so the L3 copy is current.
    CacheLine *line = _array.probe(msg->lineAddr);
    sf_assert(line, "FwdMiss with no resident line");
    line->owner = invalidTile;

    if (txn.isStream) {
        serveUncached(nullptr, nullptr, &txn.sreq);
    } else if (txn.req->type == MemMsgType::GetU) {
        serveUncached(nullptr, txn.req, nullptr);
    } else if (txn.req->type == MemMsgType::GetS) {
        serveShared(txn.req, *line);
    } else {
        line->sharers = 0;
        line->owner = txn.req->requester;
        auto data = makeMemMsg(MemMsgType::DataM, msg->lineAddr, _tile,
                               txn.req->requester, txn.req->requester);
        data->profId = txn.req->profId;
        data->vdata = line->vdata;
        _mesh.send(data);
    }
    finalize(msg->lineAddr);
}

void
L3Bank::startMemFetch(Addr line_addr)
{
    ++_stats.memReads;
    SF_DPRINTF(Cache, "L3 miss %llx -> mem ctrl %d",
               (unsigned long long)line_addr,
               (int)_nuca.memCtrlOf(line_addr));
    TileId ctrl = _nuca.memCtrlOf(line_addr);
    auto rd = makeMemMsg(MemMsgType::MemRead, line_addr, _tile, ctrl,
                         _tile);
    _mesh.send(rd);
}

CacheLine *
L3Bank::allocate(Addr line_addr)
{
    Eviction ev;
    CacheLine *line = _array.fillIf(
        line_addr, ev, [this](const CacheLine &l) {
            // Owned lines need a recall; lines with an in-flight
            // transaction (invalidation, forward) must stay put.
            return l.owner == invalidTile && !lineBlocked(l.tag);
        });
    if (!line)
        return nullptr;

    if (ev.valid) {
        const CacheLine &victim = ev.line;
        if (victim.sharers) {
            // Back-invalidate sharers (fire-and-forget; DataM always
            // carries full data so racing upgrades stay correct).
            ++_stats.backInvalidations;
            auto inv = std::make_shared<MemMsg>();
            inv->type = MemMsgType::Inv;
            inv->lineAddr = victim.tag;
            inv->src = _tile;
            inv->requester = _tile;
            inv->cls = noc::FlitClass::Control;
            inv->vnet = noc::VNet::Control;
            for (TileId t = 0; t < _mesh.numTiles(); ++t) {
                if (victim.sharers & (1ULL << t))
                    inv->dests.push_back(t);
            }
            _mesh.send(inv);
        }
        if (victim.dirty) {
            ++_stats.memWrites;
            TileId ctrl = _nuca.memCtrlOf(victim.tag);
            auto wr = makeMemMsg(MemMsgType::MemWrite, victim.tag, _tile,
                                 ctrl, _tile);
            if (_verify && victim.vdata) {
                wr->vdata = victim.vdata;
                _verify->noteInFlight(victim.tag, victim.vdata);
            }
            _mesh.send(wr);
        }
    }
    line->state = LineState::Shared; // "valid" for the L3 array
    line->dirty = false;
    return line;
}

void
L3Bank::handleMemData(const MemMsgPtr &msg)
{
    auto it = _txns.find(msg->lineAddr);
    if (it == _txns.end() || it->second.state != Txn::State::WaitMem)
        return;
    Txn &txn = it->second;

    CacheLine *line = _array.probe(msg->lineAddr);
    if (!line)
        line = allocate(msg->lineAddr);
    if (!line) {
        // Every way in the set is owned: recall one owner so the fill
        // can proceed (directories must support recalls to stay
        // inclusive), then retry.
        ++_stats.fillRetries;
        recallOwnedLine(msg->lineAddr);
        auto retry = msg;
        scheduleIn(64, [this, retry]() { handleMemData(retry); });
        return;
    }

    // Attribute the DRAM round trip (including any fill-retry wait) to
    // the request that opened the transaction.
    if (_prof && !txn.isStream && txn.req->profId) {
        _prof->add(_tile, txn.req->profId, prof::Phase::Mem,
                   curTick() - txn.memIssueTick);
    }

    if (txn.isStream) {
        serveUncached(nullptr, nullptr, &txn.sreq);
    } else {
        switch (txn.req->type) {
          case MemMsgType::GetS:
            serveShared(txn.req, *line);
            break;
          case MemMsgType::GetM: {
            line->sharers = 0;
            line->owner = txn.req->requester;
            auto data = makeMemMsg(MemMsgType::DataM, msg->lineAddr,
                                   _tile, txn.req->requester,
                                   txn.req->requester);
            data->profId = txn.req->profId;
            data->vdata = line->vdata;
            sendToTile(data);
            break;
          }
          case MemMsgType::GetU:
            serveUncached(nullptr, txn.req, nullptr);
            break;
          case MemMsgType::PutS:
          case MemMsgType::PutM:
          case MemMsgType::FwdGetS:
          case MemMsgType::FwdGetM:
          case MemMsgType::FwdGetU:
          case MemMsgType::Inv:
          case MemMsgType::InvAck:
          case MemMsgType::FwdAck:
          case MemMsgType::FwdMiss:
          case MemMsgType::PutAck:
          case MemMsgType::DataS:
          case MemMsgType::DataE:
          case MemMsgType::DataM:
          case MemMsgType::DataU:
          case MemMsgType::MemRead:
          case MemMsgType::MemWrite:
          case MemMsgType::MemData:
            panic("bad txn request type");
        }
    }
    finalize(msg->lineAddr);
}

void
L3Bank::debugDump(std::FILE *f) const
{
    // Sorted snapshot: _txns is hash-ordered and the dump must be
    // reproducible (sflint D1).
    std::vector<Addr> addrs;
    addrs.reserve(_txns.size());
    // sflint: ordered-ok(key collection only; sorted before printing)
    for (const auto &kv : _txns)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    for (Addr addr : addrs) {
        const Txn &txn = _txns.at(addr);
        std::fprintf(f,
                     "  %s txn line=%llx state=%d isStream=%d "
                     "pendingAcks=%d queued=%zu req=%s\n",
                     name().c_str(), (unsigned long long)addr,
                     (int)txn.state, txn.isStream, txn.pendingAcks,
                     txn.queued.size(),
                     txn.req ? memMsgName(txn.req->type) : "-");
    }
}

void
L3Bank::finalize(Addr line_addr)
{
    auto it = _txns.find(line_addr);
    sf_assert(it != _txns.end(), "finalize without txn");
    auto queued = std::move(it->second.queued);
    _txns.erase(it);
    for (auto &item : queued) {
        if (std::holds_alternative<MemMsgPtr>(item))
            process(std::get<MemMsgPtr>(item));
        else
            processStream(std::move(std::get<StreamReadReq>(item)));
    }
}

} // namespace mem
} // namespace sf
