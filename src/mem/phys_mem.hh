/**
 * @file
 * Sparse functional backing store plus a simple per-address-space
 * virtual memory layout.
 *
 * The simulator is "oracle-functional, timing-directed": workload
 * generators and stream engines read/write values here functionally,
 * while the timing models (caches, NoC, DRAM) decide when those
 * accesses complete. Indirect streams therefore chase real pointer
 * values, exactly as the paper's SE_L3 does.
 */

#ifndef SF_MEM_PHYS_MEM_HH
#define SF_MEM_PHYS_MEM_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/annotations.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

constexpr uint32_t pageBytes = 4096;
constexpr Addr pageMask = ~static_cast<Addr>(pageBytes - 1);

constexpr Addr
pageAlign(Addr a)
{
    return a & pageMask;
}

/**
 * Sparse page-granularity physical memory with typed accessors.
 *
 * Thread safety: with setConcurrent(true) (the tile-parallel engine,
 * DESIGN.md §4i) the page map is guarded by a reader/writer lock, so
 * functional accesses from different shard threads — including lazy
 * first-touch allocation from speculative indirect-stream chasing —
 * are safe. Page *contents* carry no locking: two simulated writers
 * to the same line are a workload race and already nondeterministic
 * at the protocol level. In the default serial mode every lock is
 * skipped, keeping the hot path identical to the pre-parallel kernel.
 */
class PhysMem
{
  public:
    /** Read @p size bytes at @p paddr into @p out (zero-fill fresh). */
    void
    read(Addr paddr, void *out, size_t size) const
    {
        auto l = readLock();
        auto *dst = static_cast<uint8_t *>(out);
        while (size > 0) {
            Addr page = pageAlign(paddr);
            size_t off = static_cast<size_t>(paddr - page);
            size_t chunk = std::min(size, pageBytes - off);
            auto it = _pages.find(page);
            if (it == _pages.end()) {
                std::memset(dst, 0, chunk);
            } else {
                std::memcpy(dst, it->second.data() + off, chunk);
            }
            dst += chunk;
            paddr += chunk;
            size -= chunk;
        }
    }

    /** Write @p size bytes at @p paddr (allocate fresh pages). */
    void
    write(Addr paddr, const void *in, size_t size)
    {
        const auto *src = static_cast<const uint8_t *>(in);
        while (size > 0) {
            Addr page = pageAlign(paddr);
            size_t off = static_cast<size_t>(paddr - page);
            size_t chunk = std::min(size, pageBytes - off);
            uint8_t *data = nullptr;
            {
                auto l = readLock();
                auto it = _pages.find(page);
                if (it != _pages.end())
                    data = it->second.data();
            }
            if (!data) {
                auto l = writeLock();
                auto &storage = _pages[page];
                if (storage.empty())
                    storage.resize(pageBytes, 0);
                data = storage.data();
            }
            std::memcpy(data + off, src, chunk);
            src += chunk;
            paddr += chunk;
            size -= chunk;
        }
    }

    /** Eagerly allocate the zero-filled page backing @p paddr. */
    void
    materialize(Addr paddr)
    {
        Addr page = pageAlign(paddr);
        auto l = writeLock();
        auto &storage = _pages[page];
        if (storage.empty())
            storage.resize(pageBytes, 0);
    }

    /**
     * Guard the page map for concurrent functional access from shard
     * worker threads. Serial runs leave this off and never touch the
     * lock. Flip only while no worker is running.
     */
    void setConcurrent(bool on) { _concurrent = on; }

    template <typename T>
    T
    readT(Addr paddr) const
    {
        T v;
        read(paddr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr paddr, T v)
    {
        write(paddr, &v, sizeof(T));
    }

    /** Read an unsigned integer of 1/2/4/8 bytes. */
    uint64_t
    readUint(Addr paddr, uint32_t size) const
    {
        switch (size) {
          case 1: return readT<uint8_t>(paddr);
          case 2: return readT<uint16_t>(paddr);
          case 4: return readT<uint32_t>(paddr);
          case 8: return readT<uint64_t>(paddr);
          default:
            panic("unsupported integer size %u", size);
        }
    }

    /** Read a signed integer of 4/8 bytes (index values). */
    int64_t
    readInt(Addr paddr, uint32_t size) const
    {
        switch (size) {
          case 4: return readT<int32_t>(paddr);
          case 8: return readT<int64_t>(paddr);
          default:
            panic("unsupported index size %u", size);
        }
    }

    size_t
    numAllocatedPages() const
    {
        auto l = readLock();
        return _pages.size();
    }

    /**
     * Visit every allocated page in ascending physical address order
     * (snapshot capture, DESIGN.md §4j — sorted so the image is
     * byte-stable regardless of hash/allocation order).
     */
    void
    forEachPageSorted(
        const std::function<void(Addr, const uint8_t *)> &fn) const
    {
        auto l = readLock();
        std::vector<Addr> addrs;
        addrs.reserve(_pages.size());
        // sflint: ordered-ok(keys collected then sorted before visiting)
        for (const auto &kv : _pages)
            addrs.push_back(kv.first);
        std::sort(addrs.begin(), addrs.end());
        for (Addr a : addrs)
            fn(a, _pages.at(a).data());
    }

  private:
    std::shared_lock<std::shared_mutex>
    readLock() const
    {
        std::shared_lock<std::shared_mutex> l(_mu, std::defer_lock);
        if (_concurrent)
            l.lock();
        return l;
    }

    std::unique_lock<std::shared_mutex>
    writeLock() const
    {
        std::unique_lock<std::shared_mutex> l(_mu, std::defer_lock);
        if (_concurrent)
            l.lock();
        return l;
    }

    std::unordered_map<Addr, std::vector<uint8_t>> _pages
        SF_GUARDED_BY(_mu);
    mutable std::shared_mutex _mu;
    bool _concurrent = false;
};

/**
 * Per-address-space virtual layout: a bump allocator for arrays and a
 * page table mapping virtual to physical pages.
 *
 * The mapping deliberately scrambles page frames (so NUCA placement of
 * consecutive virtual pages is not trivially identity) while staying
 * deterministic. The frame is a pure hash of the virtual page number,
 * so a lazily first-touched page (speculative indirect-stream chasing
 * can translate any address mid-run) gets the same frame no matter
 * which shard thread touches it first or when — placement, and hence
 * timing, is independent of worker count. The only order-dependent
 * path is the linear probe on a frame-hash collision; with thousands
 * of pages hashed into a 2^28-frame window, the smoke_threads
 * byte-compare would surface one, and none occurs in the shipped
 * workloads.
 *
 * Thread safety mirrors PhysMem: setConcurrent(true) guards the page
 * table with a reader/writer lock; serial mode skips every lock.
 */
class AddressSpace
{
  public:
    AddressSpace(int asid, PhysMem &mem)
        : _asid(asid), _mem(mem),
          _brk(0x10000000ULL + static_cast<Addr>(asid) * 0x100000000ULL)
    {}

    int asid() const { return _asid; }

    /** Allocate @p bytes (page-aligned region), return base vaddr. */
    Addr
    alloc(uint64_t bytes, const std::string &label = "")
    {
        (void)label;
        auto l = writeLock();
        Addr base = _brk;
        uint64_t span = (bytes + pageBytes - 1) & ~uint64_t(pageBytes - 1);
        // Leave a guard page between allocations.
        _brk += span + pageBytes;
        for (Addr va = base; va < base + span; va += pageBytes)
            mapPage(va);
        return base;
    }

    /** Translate; allocates the page on first touch. */
    Addr
    translate(Addr vaddr)
    {
        Addr vpage = pageAlign(vaddr);
        {
            auto l = readLock();
            auto it = _pageTable.find(vpage);
            if (it != _pageTable.end())
                return it->second + (vaddr - vpage);
        }
        auto l = writeLock();
        auto it = _pageTable.find(vpage);
        if (it != _pageTable.end())
            return it->second + (vaddr - vpage);
        return mapPage(vpage) + (vaddr - vpage);
    }

    /** Translate without allocating; invalidAddr when unmapped. */
    Addr
    translateExisting(Addr vaddr) const
    {
        Addr vpage = pageAlign(vaddr);
        auto l = readLock();
        auto it = _pageTable.find(vpage);
        if (it == _pageTable.end())
            return invalidAddr;
        return it->second + (vaddr - vpage);
    }

    /** Current bump-allocator break (snapshot capture, §4j). */
    Addr
    brk() const
    {
        auto l = readLock();
        return _brk;
    }

    /**
     * Visit every vpage->frame mapping in ascending virtual-page
     * order (snapshot capture — sorted for a byte-stable image).
     */
    void
    forEachMappingSorted(const std::function<void(Addr, Addr)> &fn) const
    {
        auto l = readLock();
        std::vector<Addr> vpages;
        vpages.reserve(_pageTable.size());
        // sflint: ordered-ok(keys collected then sorted before visiting)
        for (const auto &kv : _pageTable)
            vpages.push_back(kv.first);
        std::sort(vpages.begin(), vpages.end());
        for (Addr v : vpages)
            fn(v, _pageTable.at(v));
    }

    /**
     * Guard the page table for concurrent translation from shard
     * worker threads (see PhysMem::setConcurrent); propagated to the
     * backing store too. Flip only while no worker is running.
     */
    void
    setConcurrent(bool on)
    {
        _concurrent = on;
        _mem.setConcurrent(on);
    }

    // Typed functional accessors through the translation.
    template <typename T>
    T
    readT(Addr vaddr)
    {
        return _mem.readT<T>(translate(vaddr));
    }

    template <typename T>
    void
    writeT(Addr vaddr, T v)
    {
        _mem.writeT<T>(translate(vaddr), v);
    }

    int64_t
    readInt(Addr vaddr, uint32_t size)
    {
        return _mem.readInt(translate(vaddr), size);
    }

    PhysMem &mem() { return _mem; }

  private:
    /** Map one page; the caller holds the write lock (concurrent mode). */
    Addr
    mapPage(Addr vpage) SF_REQUIRES(_mu)
    {
        // Deterministic frame scramble: hash the virtual page number.
        uint64_t vpn = vpage / pageBytes;
        uint64_t h = vpn * 0x9e3779b97f4a7c15ULL +
                     static_cast<uint64_t>(_asid) * 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 29;
        // Keep physical frames within a 1 TB window, collision-adjusted.
        Addr pframe = (h % (1ULL << 28));
        Addr paddr = pframe * pageBytes;
        while (_usedFrames.count(paddr)) {
            paddr += pageBytes;
        }
        _usedFrames.insert(paddr);
        _pageTable.emplace(vpage, paddr);
        // Materialize eagerly so the first functional access to a
        // fresh mapping finds backing storage already in place.
        _mem.materialize(paddr);
        return paddr;
    }

    std::shared_lock<std::shared_mutex>
    readLock() const
    {
        std::shared_lock<std::shared_mutex> l(_mu, std::defer_lock);
        if (_concurrent)
            l.lock();
        return l;
    }

    std::unique_lock<std::shared_mutex>
    writeLock()
    {
        std::unique_lock<std::shared_mutex> l(_mu, std::defer_lock);
        if (_concurrent)
            l.lock();
        return l;
    }

    int _asid;
    PhysMem &_mem;
    Addr _brk SF_GUARDED_BY(_mu);
    std::unordered_map<Addr, Addr> _pageTable SF_GUARDED_BY(_mu);
    std::unordered_set<Addr> _usedFrames SF_GUARDED_BY(_mu);
    mutable std::shared_mutex _mu;
    bool _concurrent = false;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_PHYS_MEM_HH
