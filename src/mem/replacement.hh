/**
 * @file
 * Cache replacement policies: true LRU and Bimodal RRIP (Table III:
 * BRRIP with bimodal throttle p = 0.03 [Jaleel et al., ISCA'10]).
 */

#ifndef SF_MEM_REPLACEMENT_HH
#define SF_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

enum class ReplPolicy : uint8_t
{
    LRU,
    BRRIP,
};

/**
 * Per-set replacement state interface. The cache array calls touch()
 * on hits, insert() on fills, and victim() to choose an eviction way.
 */
class Replacement
{
  public:
    virtual ~Replacement() = default;
    virtual void touch(size_t set, uint32_t way) = 0;
    virtual void insert(size_t set, uint32_t way) = 0;
    /** Pick a victim among valid ways (caller checks invalid first). */
    virtual uint32_t victim(size_t set) = 0;
};

/** True LRU. */
class LruReplacement : public Replacement
{
  public:
    LruReplacement(size_t sets, uint32_t ways)
        : _ways(ways), _stamp(sets * ways, 0)
    {}

    void
    touch(size_t set, uint32_t way) override
    {
        _stamp[set * _ways + way] = ++_clock;
    }

    void
    insert(size_t set, uint32_t way) override
    {
        touch(set, way);
    }

    uint32_t
    victim(size_t set) override
    {
        uint32_t v = 0;
        uint64_t oldest = ~0ULL;
        for (uint32_t w = 0; w < _ways; ++w) {
            uint64_t s = _stamp[set * _ways + w];
            if (s < oldest) {
                oldest = s;
                v = w;
            }
        }
        return v;
    }

  private:
    uint32_t _ways;
    std::vector<uint64_t> _stamp;
    uint64_t _clock = 0;
};

/**
 * Bimodal RRIP with 2-bit re-reference prediction values.
 *
 * Inserts at distant RRPV (3) most of the time and at long (2) with
 * probability p, which protects the cache against streaming thrash -
 * exactly the reactive mitigation the paper compares stream floating
 * against.
 */
class BrripReplacement : public Replacement
{
  public:
    BrripReplacement(size_t sets, uint32_t ways, double p = 0.03,
                     uint64_t seed = 0xbadcafe)
        : _ways(ways), _rrpv(sets * ways, 3), _p(p), _rng(seed)
    {}

    void
    touch(size_t set, uint32_t way) override
    {
        _rrpv[set * _ways + way] = 0; // hit promotion (HP policy)
    }

    void
    insert(size_t set, uint32_t way) override
    {
        _rrpv[set * _ways + way] = _rng.chance(_p) ? 2 : 3;
    }

    uint32_t
    victim(size_t set) override
    {
        // Find an RRPV==3 way, aging the whole set until one appears.
        while (true) {
            for (uint32_t w = 0; w < _ways; ++w) {
                if (_rrpv[set * _ways + w] == 3)
                    return w;
            }
            for (uint32_t w = 0; w < _ways; ++w)
                ++_rrpv[set * _ways + w];
        }
    }

  private:
    uint32_t _ways;
    std::vector<uint8_t> _rrpv;
    double _p;
    Rng _rng;
};

inline std::unique_ptr<Replacement>
makeReplacement(ReplPolicy policy, size_t sets, uint32_t ways)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return std::make_unique<LruReplacement>(sets, ways);
      case ReplPolicy::BRRIP:
      default:
        return std::make_unique<BrripReplacement>(sets, ways);
    }
}

} // namespace mem
} // namespace sf

#endif // SF_MEM_REPLACEMENT_HH
