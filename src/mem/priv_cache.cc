#include "mem/priv_cache.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace mem {

PrivCache::PrivCache(const std::string &name, EventQueue &eq, TileId tile,
                     const PrivCacheConfig &cfg, noc::Mesh &mesh,
                     const NucaMap &nuca)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _mesh(mesh),
      _nuca(nuca),
      _l1(cfg.l1Size, cfg.l1Ways, cfg.l1Policy),
      _l2(cfg.l2Size, cfg.l2Ways, cfg.l2Policy)
{
}

void
PrivCache::access(Access a)
{
    // Clamp accesses that straddle a line boundary to the first line.
    // Demand accesses are already split on virtual line boundaries by
    // the core (physical frames are scrambled, so paddr+64 is NOT the
    // next virtual line); the only callers that can still straddle are
    // SE fetches of odd-sized elements, where charging the first line
    // is an acceptable approximation.
    Addr first_line = lineAlign(a.paddr);
    Addr last_line = lineAlign(a.paddr + a.size - 1);
    if (first_line != last_line) {
        a.size = static_cast<uint16_t>(first_line + lineBytes - a.paddr);
    }

    // The L1 lookup result is available after the L1 latency.
    scheduleIn(_cfg.l1Latency,
               [this, a = std::move(a)]() mutable { accessL1(std::move(a)); });
}

void
PrivCache::recordReuse(CacheLine &line, bool is_demand)
{
    // Table II "reuse" counts demand touches of stream-filled lines.
    // SE fetches hitting a sibling stream's lines are stream-internal
    // locality (handled by §IV-B constant-offset reuse after floating)
    // and must not disqualify the stream from floating.
    if (is_demand && line.fillStream != invalidStream && _reuseHook)
        _reuseHook(line.fillStream);
}

void
PrivCache::accessL1(Access a)
{
    CacheLine *l1_line = _l1.access(a.paddr);

    if (a.kind == AccessKind::FloatedFetch) {
        if (l1_line) {
            ++_stats.floatedHitsInCache;
            if (_streamBuf)
                _streamBuf->onFloatedHitInCache(a.stream, a.elemIdx);
            if (_prof && a.profId)
                _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
            if (a.onDone)
                a.onDone();
            return;
        }
        // Check L2 tags after the L2 latency.
        scheduleIn(_cfg.l2Latency, [this, a = std::move(a)]() mutable {
            handleFloatedAccess(std::move(a));
        });
        return;
    }

    if (a.kind == AccessKind::Prefetch) {
        // Prefetches skip the L1 lookup path; go straight to L2 state.
        accessL2(std::move(a), /*l1_was_miss=*/true);
        return;
    }

    bool is_demand = a.kind == AccessKind::Demand;

    if (l1_line) {
        // L1 hit. Writes need write permission at the L2 (E/M).
        ++_stats.l1Hits;
        recordReuse(*l1_line, is_demand);
        if (is_demand) {
            // First demand touch of a prefetched line counts as a
            // useful prefetch even when it is already resident in L1.
            CacheLine *l2_pf = _l2.probe(a.paddr);
            if (l2_pf && l2_pf->prefetched) {
                l2_pf->prefetched = false;
                ++_stats.prefetchesUseful;
            }
        }
        if (!a.isWrite) {
            if (is_demand && _l1Prefetcher) {
                _l1Prefetcher->observe({a.paddr, a.vaddr, a.pc,
                                        a.isWrite, false, false});
            }
            if (_prof && a.profId)
                _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
            if (a.onDone)
                a.onDone();
            return;
        }
        CacheLine *l2_line = _l2.probe(a.paddr);
        sf_assert(l2_line, "L1 not inclusive in L2 for %llx",
                  (unsigned long long)a.paddr);
        if (l2_line->state == LineState::Modified ||
            l2_line->state == LineState::Exclusive) {
            l2_line->state = LineState::Modified;
            l1_line->dirty = true;
            if (_verify && a.vstore) {
                _verify->applyStorePiece(l2_line, a.paddr, a.vaddr,
                                         a.size, a.vstore);
            }
            if (is_demand && _l1Prefetcher) {
                _l1Prefetcher->observe({a.paddr, a.vaddr, a.pc,
                                        a.isWrite, false, false});
            }
            if (_prof && a.profId)
                _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
            if (a.onDone)
                a.onDone();
            return;
        }
        // Shared: upgrade through the directory.
        accessL2(std::move(a), /*l1_was_miss=*/false);
        return;
    }

    ++_stats.l1Misses;
    if (is_demand) {
        // L1 MSHR bound: only l1Mshrs demand misses may be in flight.
        if (_l1MissInFlight >= _cfg.l1Mshrs) {
            _l1MissWaiters.push_back(std::move(a));
            return;
        }
        ++_l1MissInFlight;
        auto user_done = std::make_shared<std::function<void()>>(
            std::move(a.onDone));
        a.onDone = [this, user_done]() {
            --_l1MissInFlight;
            schedulePumpL1Waiters();
            if (*user_done)
                (*user_done)();
        };
    }
    scheduleIn(_cfg.l2Latency, [this, a = std::move(a)]() mutable {
        accessL2(std::move(a), true);
    });
}

void
PrivCache::handleFloatedAccess(const Access &a)
{
    CacheLine *l2_line = _l2.access(a.paddr);
    if (l2_line) {
        ++_stats.floatedHitsInCache;
        l2_line->reused = true;
        recordReuse(*l2_line, false);
        if (_streamBuf)
            _streamBuf->onFloatedHitInCache(a.stream, a.elemIdx);
        if (_prof && a.profId)
            _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
        if (a.onDone)
            a.onDone();
        return;
    }
    if (_streamBuf && _streamBuf->handleFloatedFetch(a))
        return;
    // Stream unknown at the SE_L2 (e.g. just sunk): fall back to a
    // normal stream fetch through the cache.
    Access fallback = a;
    fallback.kind = AccessKind::StreamFetch;
    accessL2(std::move(fallback), true);
}

void
PrivCache::accessL2(Access a, bool l1_was_miss)
{
    bool is_demand = a.kind == AccessKind::Demand;
    if (!_delayedEvictions.empty() && !_l2.probe(a.paddr))
        resurrectParkedLine(lineAlign(a.paddr));
    CacheLine *l2_line = _l2.access(a.paddr);

    bool can_complete = false;
    if (l2_line) {
        bool write_ok = !a.isWrite ||
                        l2_line->state == LineState::Modified ||
                        l2_line->state == LineState::Exclusive;
        can_complete = write_ok;
    }

    if (can_complete) {
        if (a.kind == AccessKind::Prefetch) {
            // Already present; nothing to do.
            return;
        }
        ++_stats.l2Hits;
        if (_prof && a.profId)
            _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
        SF_DPRINTF(Cache, "L2 hit %s %llx kind=%d",
                   a.isWrite ? "st" : "ld", (unsigned long long)a.paddr,
                   (int)a.kind);
        if (l1_was_miss)
            l2_line->reused = true;
        recordReuse(*l2_line, is_demand);
        if (l2_line->prefetched) {
            l2_line->prefetched = false;
            ++_stats.prefetchesUseful;
        }
        if (a.isWrite) {
            l2_line->state = LineState::Modified;
            l2_line->dirty = true;
            if (_verify && a.vstore) {
                _verify->applyStorePiece(l2_line, a.paddr, a.vaddr,
                                         a.size, a.vstore);
            }
        }
        if (is_demand) {
            if (_l1Prefetcher) {
                _l1Prefetcher->observe({a.paddr, a.vaddr, a.pc,
                                        a.isWrite, true, false});
            }
        }
        if (is_demand || a.kind == AccessKind::StreamFetch)
            fillL1(a.paddr, a.isWrite);
        if (a.onDone)
            a.onDone();
        return;
    }

    // L2 miss (or upgrade). Coalesce into an existing MSHR if any.
    if (a.missOut)
        *a.missOut = true;
    Addr line_addr = lineAlign(a.paddr);
    auto it = _mshrs.find(line_addr);
    if (it != _mshrs.end()) {
        Mshr &m = it->second;
        if (a.kind == AccessKind::Prefetch)
            return; // demand/earlier request already in flight
        if (_prof && a.profId)
            _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
        m.waiters.push_back(std::move(a));
        Access &queued = m.waiters.back();
        if (queued.isWrite && !m.pendingM)
            m.needsM = true;
        if (queued.kind == AccessKind::Demand)
            m.demandSeen = true;
        if (queued.kind == AccessKind::StreamFetch)
            m.streamFetchSeen = true;
        m.prefetched = false;
        return;
    }

    if (!mshrAvailable()) {
        _mshrWaiters.push_back(std::move(a));
        return;
    }

    if (is_demand) {
        ++_stats.l2Misses;
        SF_DPRINTF(Cache, "L2 miss %s %llx%s",
                   a.isWrite ? "st" : "ld", (unsigned long long)line_addr,
                   l2_line ? " (upgrade)" : "");
        if (_l1Prefetcher) {
            _l1Prefetcher->observe({a.paddr, a.vaddr, a.pc,
                                    a.isWrite, true, true});
        }
        if (_l2Prefetcher) {
            _l2Prefetcher->observe({a.paddr, a.vaddr, a.pc,
                                    a.isWrite, true, true});
        }
    } else if (a.kind == AccessKind::StreamFetch) {
        ++_stats.l2Misses;
        SF_DPRINTF(Cache, "L2 miss stream-fetch %llx sid=%d",
                   (unsigned long long)line_addr, (int)a.stream.sid);
    }

    Mshr m;
    m.lineAddr = line_addr;
    bool upgrade = l2_line != nullptr; // present but needs ownership
    m.pendingM = a.isWrite;
    m.demandSeen = is_demand;
    m.streamFetchSeen = a.kind == AccessKind::StreamFetch;
    m.fillLevel = (a.kind == AccessKind::Prefetch) ? a.prefetchLevel : 1;
    m.prefetched = a.kind == AccessKind::Prefetch;
    if (a.kind == AccessKind::StreamFetch)
        m.fillStream = a.stream.sid;
    m.streamEligible = a.streamEligible ||
                       a.kind == AccessKind::StreamFetch;
    uint16_t bulk = 1;
    if (a.kind == AccessKind::Prefetch) {
        ++_stats.prefetchesIssued;
    }
    if (_prof && a.profId)
        _prof->mark(_tile, a.profId, prof::Phase::PrivCache, curTick());
    m.waiters.push_back(std::move(a));
    _mshrs.emplace(line_addr, std::move(m));

    MemMsgType req_type = _mshrs[line_addr].pendingM
                              ? MemMsgType::GetM
                              : MemMsgType::GetS;
    (void)upgrade;

    // Bulk prefetch grouping (only meaningful with >64B interleaving).
    if (_bulkPrefetch && req_type == MemMsgType::GetS &&
        _mshrs[line_addr].prefetched &&
        _nuca.interleaveBytes() > lineBytes) {
        if (!_bulkPending.empty() &&
            (homeBank(_bulkPending.back()) != homeBank(line_addr) ||
             _bulkPending.back() + lineBytes != line_addr ||
             _bulkPending.size() >= 4)) {
            // Flush the previous group as one request message.
            sendRequest(MemMsgType::GetS, _bulkPending.front(),
                        static_cast<uint16_t>(_bulkPending.size()));
            _bulkPending.clear();
        }
        _bulkPending.push_back(line_addr);
        if (_bulkPending.size() >= 4) {
            sendRequest(MemMsgType::GetS, _bulkPending.front(), 4);
            _bulkPending.clear();
        } else {
            // Drain stragglers shortly after.
            scheduleIn(8, [this]() {
                if (!_bulkPending.empty()) {
                    sendRequest(MemMsgType::GetS, _bulkPending.front(),
                                static_cast<uint16_t>(_bulkPending.size()));
                    _bulkPending.clear();
                }
            });
        }
        return;
    }

    sendRequest(req_type, line_addr, bulk);
}

void
PrivCache::sendRequest(MemMsgType type, Addr line_addr, uint16_t bulk_lines,
                       std::shared_ptr<std::array<uint8_t, lineBytes>> vdata)
{
    TileId bank = homeBank(line_addr);
    auto msg = makeMemMsg(type, line_addr, _tile, bank, _tile);
    msg->bulkLines = bulk_lines;
    msg->vdata = std::move(vdata);
    auto it = _mshrs.find(line_addr);
    if (it != _mshrs.end()) {
        msg->prefetch = it->second.prefetched;
        if (it->second.streamFetchSeen)
            msg->reqClass = ReqClass::CoreStream;
        // Attribute remote latency to the request that opened the MSHR.
        if (_prof && !it->second.waiters.empty())
            msg->profId = it->second.waiters.front().profId;
    }
    SF_DPRINTF(Cache, "send %s %llx -> bank %d bulk=%u",
               memMsgName(type), (unsigned long long)line_addr, (int)bank,
               (unsigned)bulk_lines);
    _mesh.send(msg);
}

void
PrivCache::fillL1(Addr line_addr, bool dirty)
{
    line_addr = lineAlign(line_addr);
    CacheLine *existing = _l1.access(line_addr);
    if (existing) {
        existing->dirty = existing->dirty || dirty;
        return;
    }
    Eviction ev;
    CacheLine &nl = _l1.fill(line_addr, ev);
    if (ev.valid)
        evictL1Line(ev.line);
    nl.state = LineState::Shared; // permission checks consult the L2
    nl.dirty = dirty;
    CacheLine *l2_line = _l2.probe(line_addr);
    if (l2_line)
        nl.fillStream = l2_line->fillStream;
}

void
PrivCache::evictL1Line(const CacheLine &victim)
{
    if (!victim.dirty)
        return;
    CacheLine *l2_line = _l2.probe(victim.tag);
    sf_assert(l2_line, "L1 dirty victim not in L2");
    l2_line->dirty = true;
    l2_line->state = LineState::Modified;
    // §IV-E: tag the L2 line with the current credit head so racing
    // floating-stream loads are detected at L2 eviction time.
    if (_streamBuf)
        l2_line->seqNum = _streamBuf->currentCreditHead();
}

void
PrivCache::evictL2Line(const CacheLine &victim)
{
    ++_stats.l2Evictions;

    // Maintain inclusion: drop the L1 copy, folding dirty data.
    CacheLine *l1_copy = _l1.probe(victim.tag);
    bool dirty = victim.dirty;
    uint16_t seq = victim.seqNum;
    if (l1_copy) {
        if (l1_copy->dirty) {
            dirty = true;
            if (_streamBuf)
                seq = _streamBuf->currentCreditHead();
        }
        _l1.invalidate(victim.tag);
    }

    SF_DPRINTF(Cache, "L2 evict %llx%s%s",
               (unsigned long long)victim.tag, dirty ? " dirty" : "",
               victim.reused ? "" : " unreused");

    if (!victim.reused && !dirty) {
        ++_stats.l2EvictionsUnreused;
        if (victim.streamEligible)
            ++_stats.l2EvictionsUnreusedStream;
        // Fig. 2b attribution: fill request (1 ctrl) + fill data
        // response + eviction notice + ack.
        _stats.unreusedCtrlFlits += 3;
        _stats.unreusedDataFlits += _mesh.flitsOf(lineBytes);
    }

    if (dirty) {
        ++_stats.writebacks;
        // The directory considers us owner until the PutM is
        // processed; remember the outstanding put so racing forwards
        // are answered FwdMiss rather than deferred (see handleFwd).
        ++_pendingPuts[victim.tag];
        if (_streamBuf)
            _streamBuf->onDirtyEviction(victim.tag);
        if (_streamBuf && _streamBuf->mustDelayEviction(seq)) {
            CacheLine held = victim;
            held.dirty = true;
            held.seqNum = seq;
            _delayedEvictions.push_back(held);
            if (_delayedEvictions.size() > _cfg.maxDelayedEvictions)
                _streamBuf->onEvictionPressure();
            return;
        }
        // --verify: the dirty image now lives only inside the PutM.
        if (_verify && victim.vdata)
            _verify->noteInFlight(victim.tag, victim.vdata);
        sendRequest(MemMsgType::PutM, victim.tag, 1, victim.vdata);
    } else {
        ++_pendingPuts[victim.tag];
        sendRequest(MemMsgType::PutS, victim.tag);
    }
}

bool
PrivCache::resurrectParkedLine(Addr line_addr)
{
    for (auto it = _delayedEvictions.begin();
         it != _delayedEvictions.end(); ++it) {
        if (it->tag != line_addr)
            continue;
        CacheLine held = *it;
        _delayedEvictions.erase(it);
        auto put = _pendingPuts.find(line_addr);
        sf_assert(put != _pendingPuts.end(),
                  "parked line %llx without pending put",
                  (unsigned long long)line_addr);
        if (--put->second == 0)
            _pendingPuts.erase(put);
        Eviction ev;
        CacheLine &nl = _l2.fill(line_addr, ev);
        if (ev.valid)
            evictL2Line(ev.line);
        nl.state = LineState::Modified;
        nl.dirty = true;
        nl.seqNum = held.seqNum;
        nl.fillStream = held.fillStream;
        nl.streamEligible = held.streamEligible;
        nl.prefetched = false;
        nl.reused = true;
        nl.vdata = held.vdata;
        ++_stats.writebacksResurrected;
        SF_DPRINTF(Cache, "resurrect parked dirty line %llx",
                   (unsigned long long)line_addr);
        return true;
    }
    return false;
}

void
PrivCache::schedulePumpL1Waiters()
{
    if (_l1PumpScheduled || _l1MissWaiters.empty())
        return;
    _l1PumpScheduled = true;
    scheduleIn(1, [this]() {
        _l1PumpScheduled = false;
        // Drain while capacity remains: retried waiters either hit
        // (complete immediately) or take an in-flight token, so no
        // pump token can be lost.
        while (!_l1MissWaiters.empty() &&
               _l1MissInFlight < _cfg.l1Mshrs) {
            Access next = std::move(_l1MissWaiters.front());
            _l1MissWaiters.pop_front();
            accessL1(std::move(next));
        }
    });
}

void
PrivCache::drainDelayedEvictions()
{
    while (!_delayedEvictions.empty()) {
        const CacheLine &held = _delayedEvictions.front();
        if (_streamBuf && _streamBuf->mustDelayEviction(held.seqNum))
            break;
        if (_l2.probe(held.tag)) {
            // The line was re-installed while parked (defense in
            // depth; misses resurrect parked lines before this can
            // happen). Sending the stale PutM now would clear the
            // directory's owner field for our live copy.
            auto put = _pendingPuts.find(held.tag);
            if (put != _pendingPuts.end() && --put->second == 0)
                _pendingPuts.erase(put);
            _delayedEvictions.pop_front();
            continue;
        }
        verify::LinePtr vp = held.vdata;
        if (_verify && vp)
            _verify->noteInFlight(held.tag, vp);
        sendRequest(MemMsgType::PutM, held.tag, 1, std::move(vp));
        _delayedEvictions.pop_front();
    }
}

CacheLine &
PrivCache::fillL2(const Mshr &m, LineState state)
{
    Eviction ev;
    CacheLine &nl = _l2.fill(m.lineAddr, ev);
    if (ev.valid)
        evictL2Line(ev.line);
    nl.state = state;
    nl.dirty = state == LineState::Modified;
    nl.prefetched = m.prefetched;
    nl.fillStream = m.fillStream;
    nl.streamEligible = m.streamEligible;
    return nl;
}

void
PrivCache::handleData(const MemMsgPtr &msg)
{
    auto it = _mshrs.find(msg->lineAddr);
    if (it == _mshrs.end()) {
        // Response for a line we gave up on (should not happen with a
        // blocking directory). Ignore defensively.
        warn("%s: orphan data response %llx", name().c_str(),
             (unsigned long long)msg->lineAddr);
        return;
    }
    Mshr &m = it->second;

    LineState state = LineState::Shared;
    bool grants_write = false;
    switch (msg->type) {
      case MemMsgType::DataS:
        state = LineState::Shared;
        break;
      case MemMsgType::DataE:
        state = LineState::Exclusive;
        grants_write = true; // silent E->M upgrade
        break;
      case MemMsgType::DataM:
        state = LineState::Modified;
        grants_write = true;
        break;
      case MemMsgType::GetS:
      case MemMsgType::GetM:
      case MemMsgType::GetU:
      case MemMsgType::PutS:
      case MemMsgType::PutM:
      case MemMsgType::FwdGetS:
      case MemMsgType::FwdGetM:
      case MemMsgType::FwdGetU:
      case MemMsgType::Inv:
      case MemMsgType::InvAck:
      case MemMsgType::FwdAck:
      case MemMsgType::FwdMiss:
      case MemMsgType::PutAck:
      case MemMsgType::DataU:
      case MemMsgType::MemRead:
      case MemMsgType::MemWrite:
      case MemMsgType::MemData:
        panic("unexpected data type %s", memMsgName(msg->type));
    }

    bool any_write =
        m.pendingM || m.needsM ||
        std::any_of(m.waiters.begin(), m.waiters.end(),
                    [](const Access &a) { return a.isWrite; });

    if (any_write && !grants_write) {
        // Escalate: got shared data but a write is waiting.
        CacheLine *line = _l2.probe(m.lineAddr);
        if (!line)
            line = &fillL2(m, LineState::Shared);
        if (_verify) {
            _verify->privInstall(_tile, line, m.lineAddr,
                                 msg->vdata ? msg->vdata : line->vdata);
        }
        // Complete read-only waiters now.
        std::vector<Access> keep;
        for (auto &w : m.waiters) {
            if (w.isWrite) {
                keep.push_back(std::move(w));
                continue;
            }
            if (_prof && w.profId)
                _prof->mark(_tile, w.profId, prof::Phase::Remote, curTick());
            finishWaiter(w);
        }
        m.waiters = std::move(keep);
        m.pendingM = true;
        m.needsM = false;
        sendRequest(MemMsgType::GetM, m.lineAddr);
        // Deferred invalidations must not wait for the DataM: the
        // directory may be holding a txn open for our InvAck, with our
        // GetM queued behind it. The line is filled Shared now, so
        // answer them (the MSHR survives; DataM carries a full line).
        if (!m.deferredFwds.empty()) {
            std::vector<MemMsgPtr> deferred = std::move(m.deferredFwds);
            m.deferredFwds.clear();
            for (const auto &f : deferred) {
                if (f->type == MemMsgType::Inv)
                    handleInv(f);
                else
                    handleFwd(f);
            }
        }
        return;
    }

    CacheLine *line = _l2.probe(m.lineAddr);
    if (!line) {
        line = &fillL2(m, state);
    } else {
        // Upgrade response on a line still resident (or refetched
        // after a racing Inv cleared it).
        line->state = state;
    }
    if (_verify) {
        _verify->privInstall(_tile, line, m.lineAddr,
                             msg->vdata ? msg->vdata : line->vdata);
    }
    if (any_write) {
        line->state = LineState::Modified;
        line->dirty = true;
    }

    bool fill_l1 = m.fillLevel == 1 || m.demandSeen || m.streamFetchSeen;
    if (fill_l1)
        fillL1(m.lineAddr, false);

    for (auto &w : m.waiters) {
        if (w.isWrite) {
            CacheLine *l1c = _l1.probe(m.lineAddr);
            if (l1c)
                l1c->dirty = true;
            line->dirty = true;
            if (_verify && w.vstore) {
                _verify->applyStorePiece(line, w.paddr, w.vaddr, w.size,
                                         w.vstore);
            }
        }
        if (_prof && w.profId)
            _prof->mark(_tile, w.profId, prof::Phase::Remote, curTick());
        finishWaiter(w);
    }

    // Replay forwards that raced the fill, now that the line (and our
    // waiters' writes) are in place: the handover proceeds as if the
    // forward had arrived just after the data.
    std::vector<MemMsgPtr> deferred = std::move(m.deferredFwds);
    _mshrs.erase(it);
    for (const auto &f : deferred) {
        if (f->type == MemMsgType::Inv)
            handleInv(f);
        else
            handleFwd(f);
    }
    retryMshrWaiters();
}

void
PrivCache::handleInv(const MemMsgPtr &msg)
{
    // Invalidation from the directory: either a sharer invalidation
    // (fire-and-forget; an in-flight GetM for the same line keeps its
    // MSHR because DataM always carries the full line) or a recall of
    // an owned line, whose ack must carry data if our copy is dirty.
    bool dirty = false;
    CacheLine *l2_line = _l2.probe(msg->lineAddr);
    if (!l2_line) {
        // Same early-forward race as handleFwd: an open MSHR with no
        // put outstanding means a grant to us is in flight (we are the
        // sharer/owner the directory is invalidating). Acking now
        // would let the directory move on while our data lands later,
        // leaving a stale copy. Hold the Inv until the fill.
        auto it = _mshrs.find(msg->lineAddr);
        if (it != _mshrs.end() && !_pendingPuts.count(msg->lineAddr)) {
            it->second.deferredFwds.push_back(msg);
            ++_stats.fwdsDeferred;
            SF_DPRINTF(Cache, "defer Inv %llx (fill in flight)",
                       (unsigned long long)msg->lineAddr);
            return;
        }
    } else {
        dirty = l2_line->dirty;
    }
    if (CacheLine *l1_line = _l1.probe(msg->lineAddr))
        dirty = dirty || l1_line->dirty;
    verify::LinePtr vp = l2_line ? l2_line->vdata : nullptr;
    _l1.invalidate(msg->lineAddr);
    _l2.invalidate(msg->lineAddr);
    auto ack = makeMemMsg(MemMsgType::InvAck, msg->lineAddr, _tile,
                          msg->src, msg->requester);
    if (dirty) {
        ack->payloadBytes = lineBytes;
        ack->dataBytes = lineBytes;
        ack->cls = noc::FlitClass::Data;
        ack->vnet = noc::VNet::Response;
        if (_verify && vp) {
            ack->vdata = vp;
            _verify->noteInFlight(msg->lineAddr, vp);
        }
    }
    _mesh.send(ack);
}

void
PrivCache::handleFwd(const MemMsgPtr &msg)
{
    CacheLine *line = _l2.probe(msg->lineAddr);
    TileId bank = msg->src;

    if (!line) {
        // Two distinct races land here. With a put outstanding for the
        // line, the directory forwarded to us off a stale owner field
        // (our PutS/PutM is still in flight or parked): answer FwdMiss
        // so the directory re-serves once the put is ordered. With an
        // open MSHR and NO put outstanding, the directory granted US
        // the line and forwarded a later request before our data
        // arrived (early forward): answering FwdMiss would let the
        // directory hand ownership elsewhere while our DataM/DataE is
        // in flight, creating two owners. Defer until the fill.
        auto it = _mshrs.find(msg->lineAddr);
        if (it != _mshrs.end() && !_pendingPuts.count(msg->lineAddr)) {
            it->second.deferredFwds.push_back(msg);
            ++_stats.fwdsDeferred;
            SF_DPRINTF(Cache, "defer %s %llx (fill in flight)",
                       memMsgName(msg->type),
                       (unsigned long long)msg->lineAddr);
            return;
        }
        auto miss = makeMemMsg(MemMsgType::FwdMiss, msg->lineAddr, _tile,
                               bank, msg->requester);
        _mesh.send(miss);
        return;
    }

    if (msg->type == MemMsgType::FwdGetU) {
        // Uncached read: forward data, state unchanged (Fig. 12c).
        auto data = makeMemMsg(MemMsgType::DataU, msg->lineAddr, _tile,
                               msg->requester, msg->requester,
                               msg->dataBytes);
        data->stream = msg->stream;
        data->streamGen = msg->streamGen;
        data->elemIdx = msg->elemIdx;
        data->elemCount = msg->elemCount;
        data->mergedStreams = msg->mergedStreams;
        data->profId = msg->profId;
        if (!msg->mergedStreams.empty()) {
            data->dests.clear();
            for (const auto &gs : msg->mergedStreams)
                data->dests.push_back(gs.core);
        }
        // --verify: DataU captures the serve-time image (uncached reads
        // are not kept coherent afterwards).
        if (_verify)
            data->vdata = _verify->snapshot(msg->lineAddr);
        _mesh.send(data);
        auto ack = makeMemMsg(MemMsgType::FwdAck, msg->lineAddr, _tile,
                              bank, msg->requester);
        _mesh.send(ack);
        return;
    }

    if (msg->type == MemMsgType::FwdGetM) {
        // Hand the line (and ownership) to the requester; drop ours.
        verify::LinePtr vp = line->vdata;
        _l1.invalidate(msg->lineAddr);
        _l2.invalidate(msg->lineAddr);
        auto data = makeMemMsg(MemMsgType::DataM, msg->lineAddr, _tile,
                               msg->requester, msg->requester);
        data->profId = msg->profId;
        if (_verify && vp) {
            data->vdata = vp;
            _verify->noteInFlight(msg->lineAddr, vp);
        }
        _mesh.send(data);
        auto ack = makeMemMsg(MemMsgType::FwdAck, msg->lineAddr, _tile,
                              bank, msg->requester);
        _mesh.send(ack);
        return;
    }

    sf_assert(msg->type == MemMsgType::FwdGetS, "bad fwd type");
    // Downgrade M/E -> S, send data to the requester, and ack the
    // directory (with data if we were dirty, so the L3 copy is fresh).
    bool was_dirty = line->dirty;
    CacheLine *l1c = _l1.probe(msg->lineAddr);
    if (l1c && l1c->dirty) {
        was_dirty = true;
        l1c->dirty = false;
    }
    line->state = LineState::Shared;
    line->dirty = false;

    auto data = makeMemMsg(MemMsgType::DataS, msg->lineAddr, _tile,
                           msg->requester, msg->requester);
    data->profId = msg->profId;
    data->vdata = line->vdata;
    _mesh.send(data);
    auto ack = makeMemMsg(MemMsgType::FwdAck, msg->lineAddr, _tile, bank,
                          msg->requester);
    if (was_dirty) {
        ack->payloadBytes = lineBytes;
        ack->dataBytes = lineBytes;
        ack->cls = noc::FlitClass::Data;
        ack->vnet = noc::VNet::Response;
        // We keep a Shared copy, so the image stays observable here;
        // the ack lets the L3 refresh its own copy.
        ack->vdata = line->vdata;
    }
    _mesh.send(ack);
}

void
PrivCache::recvMsg(const MemMsgPtr &msg)
{
    switch (msg->type) {
      case MemMsgType::DataS:
      case MemMsgType::DataE:
      case MemMsgType::DataM:
        handleData(msg);
        break;
      case MemMsgType::DataU:
        if (_streamBuf)
            _streamBuf->recvDataU(msg);
        drainDelayedEvictions();
        break;
      case MemMsgType::Inv:
        handleInv(msg);
        break;
      case MemMsgType::FwdGetS:
      case MemMsgType::FwdGetM:
      case MemMsgType::FwdGetU:
        handleFwd(msg);
        break;
      case MemMsgType::PutAck: {
        auto put = _pendingPuts.find(msg->lineAddr);
        if (put != _pendingPuts.end() && --put->second == 0)
            _pendingPuts.erase(put);
        break;
      }
      case MemMsgType::GetS:
      case MemMsgType::GetM:
      case MemMsgType::GetU:
      case MemMsgType::PutS:
      case MemMsgType::PutM:
      case MemMsgType::InvAck:
      case MemMsgType::FwdAck:
      case MemMsgType::FwdMiss:
      case MemMsgType::MemRead:
      case MemMsgType::MemWrite:
      case MemMsgType::MemData:
        panic("PrivCache %s got unexpected %s", name().c_str(),
              memMsgName(msg->type));
    }
}

void
PrivCache::debugDump(std::FILE *f) const
{
    // Sorted snapshot: _mshrs is hash-ordered and the dump must be
    // reproducible (sflint D1).
    std::vector<Addr> addrs;
    addrs.reserve(_mshrs.size());
    // sflint: ordered-ok(key collection only; sorted before printing)
    for (const auto &kv : _mshrs)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    for (Addr addr : addrs) {
        const Mshr &m = _mshrs.at(addr);
        std::fprintf(f,
                     "  %s mshr line=%llx pendingM=%d needsM=%d "
                     "waiters=%zu demand=%d stream=%d pf=%d "
                     "deferredFwds=%zu\n",
                     name().c_str(), (unsigned long long)addr,
                     m.pendingM, m.needsM, m.waiters.size(),
                     m.demandSeen, m.streamFetchSeen, m.prefetched,
                     m.deferredFwds.size());
    }
    if (!_mshrWaiters.empty())
        std::fprintf(f, "  %s mshrWaiters=%zu\n", name().c_str(),
                     _mshrWaiters.size());
    if (_l1MissInFlight > 0 || !_l1MissWaiters.empty()) {
        std::fprintf(f, "  %s l1MissInFlight=%u l1MissWaiters=%zu\n",
                     name().c_str(), _l1MissInFlight,
                     _l1MissWaiters.size());
    }
    if (!_delayedEvictions.empty())
        std::fprintf(f, "  %s delayedEvictions=%zu\n", name().c_str(),
                     _delayedEvictions.size());
}

void
PrivCache::finishWaiter(const Access &w)
{
    // Data is at the L2; charge the L1 fill latency to the consumer.
    if (w.onDone)
        scheduleIn(_cfg.l1Latency, w.onDone);
}

void
PrivCache::retryMshrWaiters()
{
    while (!_mshrWaiters.empty() && mshrAvailable()) {
        Access a = std::move(_mshrWaiters.front());
        _mshrWaiters.pop_front();
        accessL2(std::move(a), true);
    }
}

} // namespace mem
} // namespace sf
