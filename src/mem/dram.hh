/**
 * @file
 * Memory controller / DRAM channel model.
 *
 * Table III: DDR3-1600, 12.8 GB/s per controller. We model each
 * controller as a fixed access latency plus a line-granularity
 * bandwidth horizon: at 2 GHz a 64 B line takes 10 cycles of channel
 * time at 12.8 GB/s, so queued requests serialize at that rate.
 */

#ifndef SF_MEM_DRAM_HH
#define SF_MEM_DRAM_HH

#include <functional>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sf {
namespace mem {

struct DramConfig
{
    /** Closed-page access latency in cycles (~50ns end-to-end for
     *  DDR3-1600 at 2 GHz, including controller queueing). */
    Cycles accessLatency = 100;
    /** Channel occupancy per 64B line in cycles (12.8 GB/s @ 2 GHz). */
    Cycles cyclesPerLine = 10;
};

/** One memory channel attached to a corner tile. */
class DramChannel : public SimObject
{
  public:
    DramChannel(const std::string &name, EventQueue &eq,
                const DramConfig &cfg)
        : SimObject(name, eq), _cfg(cfg)
    {}

    /**
     * Issue a read/write of one line; @p on_done fires when the data
     * is available at the controller.
     */
    void
    access(bool is_write, std::function<void()> on_done)
    {
        Tick start = std::max(curTick(), _nextFree);
        _nextFree = start + _cfg.cyclesPerLine;
        _busyCycles += _cfg.cyclesPerLine;
        Tick done = start + _cfg.accessLatency;
        if (is_write) {
            ++writes;
            // Writes complete at the controller; no response needed
            // beyond bookkeeping, but honor the callback if given.
            if (on_done)
                eventQueue().schedule(done, std::move(on_done));
        } else {
            ++reads;
            eventQueue().schedule(done, std::move(on_done));
        }
    }

    stats::Scalar reads;
    stats::Scalar writes;
    uint64_t busyCycles() const { return _busyCycles; }

  private:
    DramConfig _cfg;
    Tick _nextFree = 0;
    uint64_t _busyCycles = 0;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_DRAM_HH
