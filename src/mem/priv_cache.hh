/**
 * @file
 * Per-tile private cache hierarchy: L1D + L2 with a single MESI
 * protocol endpoint at the L2.
 *
 * The L1 and L2 arrays are modelled with their own sizes, latencies and
 * evictions (L2 inclusive of L1); the coherence protocol (GetS / GetM /
 * GetU / PutS / PutM and the forward/invalidate handshakes) terminates
 * at the L2, as in the paper's tiled CMP. The controller exposes the
 * hooks stream floating needs: a stream-buffer interface (SE_L2) that
 * intercepts floated-stream fetches and DataU responses, per-line
 * fill-stream tags for the reuse history table (§IV-D), and the Fig. 2
 * telemetry for lines evicted clean without reuse.
 */

#ifndef SF_MEM_PRIV_CACHE_HH
#define SF_MEM_PRIV_CACHE_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/mem_msg.hh"
#include "mem/nuca.hh"
#include "noc/mesh.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace sf {

namespace verify {
class DataPlane;
struct StoreRec;
} // namespace verify

namespace mem {

/** Kind of access arriving at the private hierarchy. */
enum class AccessKind : uint8_t
{
    Demand,       //!< core load/store
    StreamFetch,  //!< SE_core fetch for a non-floated stream (allocates)
    FloatedFetch, //!< SE_core fetch for a floated stream (tag check
                  //!< only; served by the SE_L2 stream buffer on miss)
    Prefetch,     //!< hardware prefetcher fill request
};

/** One request into the private hierarchy. */
struct Access
{
    AccessKind kind = AccessKind::Demand;
    Addr vaddr = 0;
    Addr paddr = 0;
    uint16_t size = 4;
    bool isWrite = false;
    uint32_t pc = 0;
    /** Op came from a compiler-recognized stream (Fig. 2a telemetry). */
    bool streamEligible = false;
    /** Stream tagging for Stream/Floated fetches. */
    GlobalStreamId stream;
    uint64_t elemIdx = 0;
    /** Prefetch target level: 1 fills L1+L2, 2 fills L2 only. */
    int prefetchLevel = 1;
    /** Completion callback (may be empty for prefetches). */
    std::function<void()> onDone;
    /** --verify: store record applied when the write performs. */
    std::shared_ptr<verify::StoreRec> vstore;
    /**
     * If set, written before onDone: true when the access missed the
     * private hierarchy (stream history "miss" column, Table II).
     */
    bool *missOut = nullptr;
    /** Latency-attribution record handle; 0 = untracked. */
    uint32_t profId = 0;
};

/**
 * Interface to the colocated SE_L2 stream buffer (implemented in
 * src/flt). Keeps mem/ free of a dependency on flt/.
 */
class StreamBufferIf
{
  public:
    virtual ~StreamBufferIf() = default;

    /**
     * A floated-stream fetch missed in L1/L2 tags; the stream buffer
     * takes ownership and will invoke the access's callback when the
     * element arrives. @return false if the stream is unknown (e.g.
     * just sunk) and the cache should fall back to a demand fetch.
     */
    virtual bool handleFloatedFetch(const Access &access) = 0;

    /** A floated-stream fetch hit in the private cache (§IV-A). */
    virtual void onFloatedHitInCache(const GlobalStreamId &stream,
                                     uint64_t elem_idx) = 0;

    /** Uncached stream data arrived from a remote SE_L3. */
    virtual void recvDataU(const MemMsgPtr &msg) = 0;

    /**
     * The L2 is evicting a dirty line; search the stream buffer for an
     * aliasing floated load (§IV-E second window).
     */
    virtual void onDirtyEviction(Addr line_addr) = 0;

    /**
     * An L1 dirty line passed down to the L2; returns the current
     * credit head sequence number to tag the line with (§IV-E third
     * window), and whether eviction of this line must be delayed.
     */
    virtual uint16_t currentCreditHead() = 0;

    /** True if a line tagged @p seq_num must still be held back. */
    virtual bool mustDelayEviction(uint16_t seq_num) = 0;

    /**
     * Too many dirty evictions are being delayed; the SE should sink a
     * stream to break the potential deadlock cycle (§IV-E).
     */
    virtual void onEvictionPressure() {}
};

/** Observation interface for hardware prefetchers (src/prefetch). */
class PrefetchObserverIf
{
  public:
    struct DemandInfo
    {
        Addr paddr;
        Addr vaddr;
        uint32_t pc;
        bool isWrite;
        bool l1Miss;
        bool l2Miss;
    };

    virtual ~PrefetchObserverIf() = default;
    virtual void observe(const DemandInfo &info) = 0;
};

/** Callback used to notify SE_core of private-cache stream reuse. */
using StreamReuseHook = std::function<void(StreamId)>;

struct PrivCacheConfig
{
    uint64_t l1Size = 32 * 1024;
    uint32_t l1Ways = 8;
    Cycles l1Latency = 2;
    uint64_t l2Size = 256 * 1024;
    uint32_t l2Ways = 16;
    Cycles l2Latency = 16;
    ReplPolicy l1Policy = ReplPolicy::LRU;
    ReplPolicy l2Policy = ReplPolicy::LRU;
    uint32_t numMshrs = 32;
    /**
     * L1 MSHRs: outstanding demand misses. This is the classic MLP
     * bottleneck that makes prefetching pay off on wide OOO cores;
     * SE / prefetcher fills have their own request budgets and are
     * not charged against it.
     */
    uint32_t l1Mshrs = 12;
    /** Max retained delayed dirty evictions before forcing a sink. */
    uint32_t maxDelayedEvictions = 8;
};

/** Statistics exported for the paper's figures. */
struct PrivCacheStats
{
    stats::Scalar l1Hits, l1Misses;
    stats::Scalar l2Hits, l2Misses;
    stats::Scalar l2Evictions;
    /** Clean + never reused (Fig. 2a numerator). */
    stats::Scalar l2EvictionsUnreused;
    /** ... of which the fill came from a stream-eligible access. */
    stats::Scalar l2EvictionsUnreusedStream;
    /** Flits attributable to caching unreused lines (Fig. 2b). */
    stats::Scalar unreusedDataFlits, unreusedCtrlFlits;
    stats::Scalar prefetchesIssued, prefetchesUseful;
    stats::Scalar floatedHitsInCache;
    stats::Scalar writebacks;
    /** Forwards held until an in-flight fill arrived (early-fwd race). */
    stats::Scalar fwdsDeferred;
    /** Parked dirty evictions re-installed by a subsequent miss. */
    stats::Scalar writebacksResurrected;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("l1Hits", &l1Hits);
        g.regScalar("l1Misses", &l1Misses);
        g.regScalar("l2Hits", &l2Hits);
        g.regScalar("l2Misses", &l2Misses);
        g.regScalar("l2Evictions", &l2Evictions);
        g.regScalar("l2EvictionsUnreused", &l2EvictionsUnreused);
        g.regScalar("l2EvictionsUnreusedStream",
                    &l2EvictionsUnreusedStream);
        g.regScalar("prefetchesIssued", &prefetchesIssued);
        g.regScalar("prefetchesUseful", &prefetchesUseful);
        g.regScalar("floatedHitsInCache", &floatedHitsInCache);
        g.regScalar("writebacks", &writebacks);
        g.regScalar("fwdsDeferred", &fwdsDeferred);
        g.regScalar("writebacksResurrected", &writebacksResurrected);
    }
};

/**
 * The per-tile L1+L2 controller and MESI endpoint.
 */
class PrivCache : public SimObject
{
  public:
    PrivCache(const std::string &name, EventQueue &eq, TileId tile,
              const PrivCacheConfig &cfg, noc::Mesh &mesh,
              const NucaMap &nuca);

    /** Issue an access from the core / SE_core / prefetcher side. */
    void access(Access a);

    /** Handle a protocol message delivered by the mesh. */
    void recvMsg(const MemMsgPtr &msg);

    /** Attach the colocated SE_L2 stream buffer. */
    void setStreamBuffer(StreamBufferIf *sb) { _streamBuf = sb; }

    /** Attach L1/L2 prefetchers (observers). */
    void
    setPrefetchers(PrefetchObserverIf *l1, PrefetchObserverIf *l2)
    {
        _l1Prefetcher = l1;
        _l2Prefetcher = l2;
    }

    /** Hook invoked when a line filled by a stream is reused. */
    void setStreamReuseHook(StreamReuseHook h) { _reuseHook = std::move(h); }

    /** Group up to 4 consecutive L2 prefetch requests (bulk, §VI). */
    void setBulkPrefetch(bool enable) { _bulkPrefetch = enable; }

    /** Attach the --verify data plane (null = verify off). */
    void setVerify(verify::DataPlane *v) { _verify = v; }

    /** Attach the latency profiler (null = profiling off). */
    void setProfiler(prof::Profiler *p) { _prof = p; }

    /** Visit parked delayed dirty evictions (verify dirty scan). */
    void
    forEachDelayedEviction(
        const std::function<void(const CacheLine &)> &fn) const
    {
        for (const auto &l : _delayedEvictions)
            fn(l);
    }

    TileId tile() const { return _tile; }
    const PrivCacheConfig &config() const { return _cfg; }
    PrivCacheStats &stats() { return _stats; }
    const PrivCacheStats &stats() const { return _stats; }

    /** L2 demand hit rate (Fig. 18 dots). */
    double
    l2HitRate() const
    {
        uint64_t total = _stats.l2Hits + _stats.l2Misses;
        return total ? double(_stats.l2Hits.value()) / total : 0.0;
    }

    /** Number of in-use MSHRs (for backpressure in the core). */
    size_t mshrsInUse() const { return _mshrs.size(); }
    bool mshrAvailable() const { return _mshrs.size() < _cfg.numMshrs; }

    // --- introspection for the invariant checker / drain checks ---
    /** Tag arrays (read-only MESI walks; do not mutate lines). */
    CacheArray &l1Array() { return _l1; }
    CacheArray &l2Array() { return _l2; }
    /** Residual work that must be empty once the system drains. */
    size_t delayedEvictions() const { return _delayedEvictions.size(); }
    size_t mshrWaiters() const
    {
        return _mshrWaiters.size() + _l1MissWaiters.size();
    }

    /** Dump outstanding transactions (debugging aid). */
    void debugDump(std::FILE *f) const;

  private:
    struct Mshr
    {
        Addr lineAddr = 0;
        bool pendingM = false; //!< GetM outstanding
        bool needsM = false;   //!< escalate to GetM after DataS
        bool demandSeen = false;
        bool streamFetchSeen = false;
        int fillLevel = 2; //!< 1 fills L1 too
        bool prefetched = true;
        StreamId fillStream = invalidStream;
        bool streamEligible = false;
        std::vector<Access> waiters;
        /**
         * Forwards that arrived while the fill was still in flight
         * (the directory granted us ownership and then forwarded a
         * later request before our data landed). Replayed on fill.
         */
        std::vector<MemMsgPtr> deferredFwds;
    };

    /** Second phase of access() after the L1 lookup latency. */
    void accessL1(Access a);
    /** L2 phase. */
    void accessL2(Access a, bool l1_was_miss);

    void handleFloatedAccess(const Access &a);

    /** Send a request to the home L3 bank. */
    void sendRequest(MemMsgType type, Addr line_addr,
                     uint16_t bulk_lines = 1,
                     std::shared_ptr<std::array<uint8_t, lineBytes>>
                         vdata = nullptr);

    void handleData(const MemMsgPtr &msg);
    void handleInv(const MemMsgPtr &msg);
    void handleFwd(const MemMsgPtr &msg);

    /** Fill the L2 (and optionally L1); emits eviction messages. */
    CacheLine &fillL2(const Mshr &m, LineState state);
    void fillL1(Addr line_addr, bool dirty);

    /** Evict an L2 victim: telemetry + PutS/PutM. */
    void evictL2Line(const CacheLine &victim);
    /**
     * Re-install a parked dirty eviction on a miss to the same line.
     * The directory still records this tile as owner, so re-requesting
     * would race the stale parked PutM; the parked copy IS the line.
     * @return true when the line was resurrected (the miss now hits).
     */
    bool resurrectParkedLine(Addr line_addr);
    /** Evict an L1 victim: fold dirty data into the L2 line. */
    void evictL1Line(const CacheLine &victim);

    void recordReuse(CacheLine &line, bool is_demand);

    /** Complete one waiting access (adds the L1 fill latency). */
    void finishWaiter(const Access &w);

    /** Re-issue accesses that were blocked on a full MSHR file. */
    void retryMshrWaiters();

    /** Drain queued demand misses while L1 MSHRs are available. */
    void schedulePumpL1Waiters();

  public:
    /** Try to drain delayed dirty evictions (§IV-E third window).
     *  Called by the SE_L2 when its credit tail advances. */
    void drainDelayedEvictions();

  private:

    TileId homeBank(Addr paddr) const { return _nuca.bankOf(paddr); }

    PrivCacheConfig _cfg;
    TileId _tile;
    noc::Mesh &_mesh;
    const NucaMap &_nuca;

    CacheArray _l1;
    CacheArray _l2;
    std::unordered_map<Addr, Mshr> _mshrs;
    /** Accesses waiting for a free MSHR. */
    std::deque<Access> _mshrWaiters;
    /** Demand misses in flight below the L1 (bounded by l1Mshrs). */
    uint32_t _l1MissInFlight = 0;
    /** Demand accesses waiting for a free L1 MSHR. */
    std::deque<Access> _l1MissWaiters;
    bool _l1PumpScheduled = false;
    /** Dirty evictions held back by in-flight credit windows. */
    std::deque<CacheLine> _delayedEvictions;
    /**
     * Lines with a PutS/PutM sent (or parked) but not yet PutAck'd.
     * While a put is outstanding the directory's owner field may be
     * stale, so a Fwd for a missing line must answer FwdMiss; with no
     * put outstanding, an open MSHR means a grant is in flight and the
     * Fwd is deferred until the data arrives.
     */
    std::unordered_map<Addr, uint32_t> _pendingPuts;

    StreamBufferIf *_streamBuf = nullptr;
    verify::DataPlane *_verify = nullptr;
    prof::Profiler *_prof = nullptr;
    PrefetchObserverIf *_l1Prefetcher = nullptr;
    PrefetchObserverIf *_l2Prefetcher = nullptr;
    StreamReuseHook _reuseHook;
    bool _bulkPrefetch = false;

    /** Pending L2-prefetch lines buffered for bulk grouping. */
    std::vector<Addr> _bulkPending;

    PrivCacheStats _stats;
};

} // namespace mem
} // namespace sf

#endif // SF_MEM_PRIV_CACHE_HH
