/**
 * @file
 * Human-readable report formatting for simulation results: the
 * gem5-stats-file equivalent for this simulator. Used by the examples
 * and handy when exploring configurations interactively.
 */

#ifndef SF_SYSTEM_REPORT_HH
#define SF_SYSTEM_REPORT_HH

#include <ostream>

#include "system/results.hh"

namespace sf {
namespace sys {

/** Write a full breakdown of @p r to @p os. */
inline void
writeReport(std::ostream &os, const SimResults &r,
            const std::string &title = "simulation")
{
    auto pct = [](uint64_t part, uint64_t whole) {
        return whole ? 100.0 * double(part) / double(whole) : 0.0;
    };

    os << "=== " << title << " ===\n";
    os << "cycles:               " << r.cycles
       << (r.hitCycleLimit ? "  (HIT CYCLE LIMIT)" : "") << "\n";
    os << "committed ops:        " << r.committedOps << "  (IPC/core "
       << r.ipc() << ")\n";

    os << "\n-- private caches --\n";
    os << "L1 hits/misses:       " << r.l1Hits << " / " << r.l1Misses
       << "  (" << pct(r.l1Hits, r.l1Hits + r.l1Misses) << "% hit)\n";
    os << "L2 hits/misses:       " << r.l2Hits << " / " << r.l2Misses
       << "  (" << pct(r.l2Hits, r.l2Hits + r.l2Misses) << "% hit)\n";
    os << "L2 evictions:         " << r.l2Evictions << "  unreused "
       << r.l2EvictionsUnreused << " ("
       << pct(r.l2EvictionsUnreused, r.l2Evictions)
       << "%), stream-covered "
       << pct(r.l2EvictionsUnreusedStream, r.l2Evictions) << "%\n";
    if (r.prefetchesIssued) {
        os << "prefetches:           " << r.prefetchesIssued
           << "  useful " << r.prefetchesUseful << " ("
           << pct(r.prefetchesUseful, r.prefetchesIssued) << "%)\n";
    }

    os << "\n-- shared L3 --\n";
    os << "hits/misses:          " << r.l3Hits << " / " << r.l3Misses
       << "  (" << pct(r.l3Hits, r.l3Hits + r.l3Misses) << "% hit)\n";
    uint64_t l3_reqs = 0;
    for (uint64_t c : r.l3RequestsByClass)
        l3_reqs += c;
    os << "requests:             core " << r.l3RequestsByClass[0]
       << ", core-stream " << r.l3RequestsByClass[1] << ", affine "
       << r.l3RequestsByClass[2] << ", indirect "
       << r.l3RequestsByClass[3] << ", confluence "
       << r.l3RequestsByClass[4] << "\n";
    os << "floated fraction:     "
       << pct(r.l3RequestsByClass[2] + r.l3RequestsByClass[3] +
                  r.l3RequestsByClass[4],
              l3_reqs)
       << "%\n";
    os << "DRAM lines:           " << r.dramReads << " read, "
       << r.dramWrites << " written\n";

    os << "\n-- NoC --\n";
    uint64_t hops = r.traffic.totalFlitHops();
    os << "flit-hops:            " << hops << "  (control "
       << pct(r.traffic.flitHops[0], hops) << "%, data "
       << pct(r.traffic.flitHops[1], hops) << "%, stream-mgmt "
       << pct(r.traffic.flitHops[2], hops) << "%)\n";
    os << "link utilization:     " << 100.0 * r.nocUtilization << "%\n";

    if (r.streamsFloated) {
        os << "\n-- stream floating --\n";
        os << "floated / sunk:       " << r.streamsFloated << " / "
           << r.streamsSunk << "\n";
        os << "migrations:           " << r.migrations << "\n";
        os << "confluence merges:    " << r.confluenceMerges
           << "  multicast requests " << r.confluenceRequests << "\n";
        os << "credit messages:      " << r.creditMessages << "\n";
        os << "SE_L3 line requests:  " << r.seL3LineRequests
           << "  indirect " << r.seL3IndirectRequests << "\n";
    }

    os << "\n-- energy --\n";
    os << "total:                " << r.energyNj / 1000.0 << " uJ\n";
    os << "  core " << r.energy.core / 1000.0 << ", caches "
       << r.energy.caches / 1000.0 << ", noc "
       << r.energy.noc / 1000.0 << ", dram " << r.energy.dram / 1000.0
       << ", SEs " << r.energy.streamEngines / 1000.0 << ", static "
       << r.energy.staticLeakage / 1000.0 << " uJ\n";
}

} // namespace sys
} // namespace sf

#endif // SF_SYSTEM_REPORT_HH
