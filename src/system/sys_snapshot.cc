/**
 * @file
 * TiledSystem checkpoint capture and restore verification
 * (DESIGN.md §4j).
 *
 * A snapshot is captured at a quantum-window boundary — the one point
 * where no event is mid-flight inside a component call chain — and
 * records every piece of data-centric architectural state the
 * simulation carries forward: memory images, page tables, cache tag
 * arrays + directories, stream-engine tables (including the SE_L3
 * replay-filter frontiers), NoC counters, the full stats registry,
 * and RNG state. Event closures and MSHR callbacks are transient
 * control state and are NOT serialized; restore instead replays
 * deterministically from tick 0 to the anchor and byte-verifies every
 * recomputed section against the snapshot, which proves the captured
 * state is exact before the run continues.
 *
 * Everything is encoded field-by-field through snap::Encoder — never
 * a raw memcpy/fwrite of a struct object (sflint rule S2), so padding
 * bytes can't make two equal states compare unequal.
 */

#include "system/tiled_system.hh"

#include <string>
#include <vector>

#include "sim/logging.hh"

namespace sf {
namespace sys {

namespace {

/** Section names, in capture order. */
constexpr const char *kMeta = "META";
constexpr const char *kProgress = "PROGRESS";
constexpr const char *kPhysMem = "PHYSMEM";
constexpr const char *kAddrSpace = "ADDRSPACE";
constexpr const char *kCaches = "CACHES";
constexpr const char *kL3Dir = "L3DIR";
constexpr const char *kStreams = "STREAMS";
constexpr const char *kNoc = "NOC";
constexpr const char *kStats = "STATS";
constexpr const char *kRng = "RNG";

void
encodeArray(snap::Encoder &e, const mem::CacheArray &arr)
{
    // Count first (two passes keeps the encoding self-describing).
    uint64_t n = 0;
    arr.forEachValidIndexed([&](size_t, const mem::CacheLine &) { ++n; });
    e.u64(n);
    arr.forEachValidIndexed([&](size_t idx, const mem::CacheLine &l) {
        e.u64(idx);
        e.u64(l.tag);
        e.u8(static_cast<uint8_t>(l.state));
        e.b(l.dirty);
        e.b(l.reused);
        e.b(l.prefetched);
        e.i32(l.fillStream);
        e.b(l.streamEligible);
        e.u16(l.seqNum);
        e.u64(l.sharers);
        e.i32(l.owner);
    });
}

[[noreturn]] void
metaMismatch(const char *field, const std::string &snapVal,
             const std::string &runVal)
{
    fatalCode(ExitCode::SnapshotError,
              "snapshot META mismatch: field '%s' is '%s' in the "
              "snapshot but '%s' in this run", field, snapVal.c_str(),
              runVal.c_str());
}

void
checkStr(const char *field, const std::string &snapVal,
         const std::string &runVal)
{
    if (snapVal != runVal)
        metaMismatch(field, snapVal, runVal);
}

void
checkU64(const char *field, uint64_t snapVal, uint64_t runVal)
{
    if (snapVal != runVal)
        metaMismatch(field, std::to_string(snapVal),
                     std::to_string(runVal));
}

} // namespace

snap::Snapshot
TiledSystem::captureSnapshot(Tick now)
{
    snap::Snapshot s;
    const int tiles = _cfg.numTiles();

    // META — everything restore needs to prove "same simulation".
    {
        snap::Encoder e;
        e.u64(now);
        e.str(machineName(_cfg.machine));
        e.str(_cfg.core.label);
        e.i32(_cfg.nx);
        e.i32(_cfg.ny);
        e.u64(_cfg.seed);
        e.u64(_cfg.maxCycles);
        e.u64(_cfg.samplingInterval);
        e.i32(static_cast<int32_t>(_checkLevel));
        e.u64(_cfg.watchdogCycles);
        e.str(_cfg.faults.describe());
        e.b(_cfg.verify);
        e.b(_cfg.profile);
        e.str(_cfg.workloadTag);
        s.add(kMeta, e.take());
    }

    // PROGRESS — coarse counters a diverged replay trips over fast.
    {
        snap::Encoder e;
        e.u64(static_cast<uint64_t>(_coresDone.load()));
        e.u64(_domains->shardEventsExecuted());
        e.u64(_eq.numExecuted());
        s.add(kProgress, e.take());
    }

    // PHYSMEM — every allocated page image, ascending address order.
    {
        snap::Encoder e;
        e.u64(_physMem.numAllocatedPages());
        _physMem.forEachPageSorted([&](Addr a, const uint8_t *data) {
            e.u64(a);
            e.raw(data, mem::pageBytes);
        });
        s.add(kPhysMem, e.take());
    }

    // ADDRSPACE — bump-allocator break + sorted page table.
    {
        snap::Encoder e;
        e.u64(_as->brk());
        std::vector<std::pair<Addr, Addr>> maps;
        _as->forEachMappingSorted(
            [&](Addr v, Addr p) { maps.emplace_back(v, p); });
        e.u64(maps.size());
        for (const auto &m : maps) {
            e.u64(m.first);
            e.u64(m.second);
        }
        s.add(kAddrSpace, e.take());
    }

    // CACHES — private L1+L2 tag/state arrays per tile.
    {
        snap::Encoder e;
        for (TileId t = 0; t < tiles; ++t) {
            encodeArray(e, _priv[t]->l1Array());
            encodeArray(e, _priv[t]->l2Array());
        }
        s.add(kCaches, e.take());
    }

    // L3DIR — shared-bank arrays including directory sharers/owner.
    {
        snap::Encoder e;
        for (TileId t = 0; t < tiles; ++t)
            encodeArray(e, _l3[t]->array());
        s.add(kL3Dir, e.take());
    }

    // STREAMS — SE_L2 floated views + generation counters, SE_L3
    // resident streams + replay-filter departure frontiers.
    {
        snap::Encoder e;
        for (TileId t = 0; t < tiles; ++t) {
            const flt::SEL2 *l2 = _seL2[t].get();
            e.b(l2 != nullptr);
            if (l2) {
                std::vector<flt::SEL2::FloatedView> views;
                l2->forEachFloated([&](const flt::SEL2::FloatedView &v) {
                    views.push_back(v);
                });
                e.u32(static_cast<uint32_t>(views.size()));
                for (const auto &v : views) {
                    e.i32(v.sid);
                    e.u32(v.gen);
                    e.b(v.isChild);
                    e.b(v.aliased);
                    e.u64(v.grantedUpTo);
                    e.u64(v.consumedUpTo);
                    e.u64(v.capacityElems);
                    e.u64(v.waiters);
                }
                std::vector<std::pair<StreamId, uint32_t>> gens;
                l2->forEachGen([&](StreamId sid, uint32_t gen) {
                    gens.emplace_back(sid, gen);
                });
                e.u32(static_cast<uint32_t>(gens.size()));
                for (const auto &g : gens) {
                    e.i32(g.first);
                    e.u32(g.second);
                }
            }
            const flt::SEL3 *l3 = _seL3[t].get();
            e.b(l3 != nullptr);
            if (l3) {
                struct Resident
                {
                    GlobalStreamId gsid;
                    uint32_t gen;
                    uint64_t issuePos;
                    uint64_t creditLimit;
                };
                std::vector<Resident> res;
                l3->forEachResident([&](const GlobalStreamId &gsid,
                                        uint32_t gen, uint64_t issue_pos,
                                        uint64_t credit_limit) {
                    res.push_back({gsid, gen, issue_pos, credit_limit});
                });
                e.u32(static_cast<uint32_t>(res.size()));
                for (const auto &r : res) {
                    e.i32(r.gsid.core);
                    e.i32(r.gsid.sid);
                    e.u32(r.gen);
                    e.u64(r.issuePos);
                    e.u64(r.creditLimit);
                }
                std::vector<std::pair<GlobalStreamId,
                                      std::pair<uint32_t, uint64_t>>>
                    dep;
                l3->forEachDeparted([&](const GlobalStreamId &gsid,
                                        uint32_t gen, uint64_t frontier) {
                    dep.push_back({gsid, {gen, frontier}});
                });
                e.u32(static_cast<uint32_t>(dep.size()));
                for (const auto &d : dep) {
                    e.i32(d.first.core);
                    e.i32(d.first.sid);
                    e.u32(d.second.first);
                    e.u64(d.second.second);
                }
            }
        }
        s.add(kStreams, e.take());
    }

    // NOC — traffic counters, per-link busy/queue cycles, per-router
    // flit counts, and the tracked in-flight packet count. Packet
    // *contents* are transient control state reproduced by replay.
    {
        snap::Encoder e;
        noc::TrafficStats tr = _mesh->traffic();
        for (int c = 0; c < 3; ++c)
            e.u64(tr.flitsInjected[c]);
        for (int c = 0; c < 3; ++c)
            e.u64(tr.flitHops[c]);
        for (int c = 0; c < 3; ++c)
            e.u64(tr.packets[c]);
        e.u64(tr.linkBusyCycles);
        for (TileId t = 0; t < tiles; ++t) {
            for (int dir = 0; dir < 4; ++dir) {
                e.u64(_mesh->linkBusyCycles(t, dir));
                e.u64(_mesh->linkQueueCycles(t, dir));
            }
            e.u64(_mesh->routerFlits(t));
        }
        e.u64(_mesh->inFlightCount());
        s.add(kNoc, e.take());
    }

    // STATS — the full registry except the nondeterministic host
    // group. Doubles travel as IEEE-754 bit patterns (bit-exact).
    {
        snap::Encoder e;
        stats::StatRegistry reg;
        buildStatRegistry(reg);
        uint32_t groups = 0;
        reg.forEachGroup([&](const stats::StatGroup &g) {
            if (g.name() != "host")
                ++groups;
        });
        e.u32(groups);
        reg.forEachGroup([&](const stats::StatGroup &g) {
            if (g.name() == "host")
                return;
            e.str(g.name());
            e.u32(static_cast<uint32_t>(g.scalars().size()));
            for (const auto &[n, sc] : g.scalars()) {
                e.str(n);
                e.u64(sc->value());
            }
            e.u32(static_cast<uint32_t>(g.averages().size()));
            for (const auto &[n, a] : g.averages()) {
                e.str(n);
                e.f64(a->mean());
                e.u64(a->count());
            }
            e.u32(static_cast<uint32_t>(g.histograms().size()));
            for (const auto &[n, h] : g.histograms()) {
                e.str(n);
                e.u64(h->count());
                e.f64(h->mean());
                e.u64(h->bucketWidth());
                e.u32(static_cast<uint32_t>(h->buckets().size()));
                for (uint64_t b : h->buckets())
                    e.u64(b);
            }
            e.u32(static_cast<uint32_t>(g.formulas().size()));
            for (const auto &[n, f] : g.formulas()) {
                e.str(n);
                e.f64(f());
            }
        });
        s.add(kStats, e.take());
    }

    // RNG — config seed plus the fault injector's live stream state.
    {
        snap::Encoder e;
        e.u64(_cfg.seed);
        e.b(_faults != nullptr);
        if (_faults) {
            for (uint64_t w : _faults->rngState())
                e.u64(w);
        }
        s.add(kRng, e.take());
    }

    return s;
}

void
TiledSystem::writeCheckpoint(const std::string &path, Tick now)
{
    snap::Snapshot s = captureSnapshot(now);
    snap::writeSnapshotAtomic(s, path);
    inform("checkpoint: wrote '%s' at tick %llu", path.c_str(),
           static_cast<unsigned long long>(now));
}

Tick
TiledSystem::restoreAnchor(const snap::Snapshot &s)
{
    const snap::Section &meta = s.require(kMeta);
    snap::Decoder d(meta.payload, kMeta);
    Tick anchor = d.u64();
    checkStr("machine", d.str(), machineName(_cfg.machine));
    checkStr("core", d.str(), _cfg.core.label);
    checkU64("nx", static_cast<uint64_t>(d.i32()),
             static_cast<uint64_t>(_cfg.nx));
    checkU64("ny", static_cast<uint64_t>(d.i32()),
             static_cast<uint64_t>(_cfg.ny));
    checkU64("seed", d.u64(), _cfg.seed);
    checkU64("maxCycles", d.u64(), _cfg.maxCycles);
    checkU64("samplingInterval", d.u64(), _cfg.samplingInterval);
    checkU64("checkLevel", static_cast<uint64_t>(d.i32()),
             static_cast<uint64_t>(_checkLevel));
    checkU64("watchdogCycles", d.u64(), _cfg.watchdogCycles);
    checkStr("faults", d.str(), _cfg.faults.describe());
    checkU64("verify", d.b() ? 1 : 0, _cfg.verify ? 1 : 0);
    checkU64("profile", d.b() ? 1 : 0, _cfg.profile ? 1 : 0);
    checkStr("workload", d.str(), _cfg.workloadTag);
    d.done();
    if (anchor == 0) {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot META has anchor tick 0 (never a valid "
                  "checkpoint boundary)");
    }
    return anchor;
}

void
TiledSystem::verifyRestore(const snap::Snapshot &s, Tick now)
{
    snap::Snapshot replayed = captureSnapshot(now);
    for (const snap::Section &want : s.sections) {
        const snap::Section *got = replayed.find(want.name);
        if (!got) {
            fatalCode(ExitCode::SnapshotError,
                      "restore verification failed: section '%s' "
                      "missing from the replayed state",
                      want.name.c_str());
        }
        if (got->payload != want.payload) {
            fatalCode(ExitCode::SnapshotError,
                      "restore verification failed: section '%s' "
                      "differs between the snapshot and the replayed "
                      "state at anchor tick %llu",
                      want.name.c_str(),
                      static_cast<unsigned long long>(now));
        }
    }
    if (replayed.sections.size() != s.sections.size()) {
        fatalCode(ExitCode::SnapshotError,
                  "restore verification failed: replayed state has %zu "
                  "sections, snapshot has %zu",
                  replayed.sections.size(), s.sections.size());
    }
    inform("restore: replay verified against snapshot at tick %llu "
           "(%zu sections byte-identical)",
           static_cast<unsigned long long>(now), s.sections.size());
}

} // namespace sys
} // namespace sf
