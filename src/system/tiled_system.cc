#include "system/tiled_system.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "flt/stream_msg.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/stream_trace.hh"

namespace sf {
namespace sys {

namespace {

/**
 * Worker count actually used: cfg.threads clamped to the tile count,
 * forced down to 1 by every mode that needs a single execution
 * context. The engine itself is identical either way (S==1 runs the
 * same window loop inline), so the fallback changes wall-clock only,
 * never results.
 */
int
effectiveThreadCount(const SystemConfig &cfg, CheckLevel check)
{
    int threads = std::max(1, cfg.threads);
    threads = std::min(threads, cfg.numTiles());
    auto force_serial = [&threads](const char *why) {
        if (threads > 1) {
            warn("--threads=%d ignored: %s needs a single execution "
                 "context; running with one worker",
                 threads, why);
            threads = 1;
        }
    };
    if (cfg.verify)
        force_serial("--verify");
    if (cfg.faults.enabled())
        force_serial("fault injection");
    if (check >= CheckLevel::Full)
        force_serial("full invariant checking");
    if (trace::StreamLifecycleTracer::instance().enabled())
        force_serial("stream lifecycle tracing");
    if (debug::flagMask != 0)
        force_serial("debug output (SF_DEBUG_FLAGS)");
    return threads;
}

} // namespace

TiledSystem::TiledSystem(const SystemConfig &cfg) : _cfg(cfg)
{
    _checkLevel = checkLevelFromEnv(_cfg.checkLevel);

    // Structural faults reshape the machine itself, so they apply
    // before any tile is built.
    if (_cfg.faults.overflowEntries > 0) {
        _cfg.sel3.maxStreams =
            std::min(_cfg.sel3.maxStreams, _cfg.faults.overflowEntries);
    }
    if (_cfg.faults.noRetry)
        _cfg.sel2.retryEnabled = false;

    // The PDES lookahead: a router pass, at least one flit of link
    // serialization, and the link latency separate any event from the
    // earliest cross-tile event it can create (noc/mesh.cc::hop).
    Cycles lookahead = _cfg.noc.routerLatency + _cfg.noc.linkLatency + 1;
    _domains = std::make_unique<sim::TileDomains>(
        _eq, _cfg.numTiles(),
        effectiveThreadCount(_cfg, _checkLevel), lookahead);

    _as = std::make_unique<mem::AddressSpace>(0, _physMem);
    // Lazy first-touch (speculative indirect chasing) can translate
    // from any shard thread; arm the page-table/page-map locks when
    // more than one worker will run.
    _as->setConcurrent(_domains->shards() > 1);
    if (_cfg.verify) {
        _verify = std::make_unique<verify::DataPlane>(*_as,
                                                      _cfg.numTiles());
    }
    if (_cfg.profile) {
        _prof = std::make_unique<prof::Profiler>();
        _prof->configureTiles(_cfg.numTiles());
        // Cross-tile record touches are deferred and applied at the
        // window barrier in canonical order regardless of the worker
        // count, so profile.json stays shard-count-invariant.
        _prof->setDeferCrossTile(true);
        _domains->setBarrierHook([this]() { _prof->flushDeferred(); });
    }

    noc::MeshConfig ncfg = _cfg.noc;
    ncfg.nx = _cfg.nx;
    ncfg.ny = _cfg.ny;
    _mesh = std::make_unique<noc::Mesh>(_eq, ncfg);
    _mesh->setDomains(_domains.get());
    if (_prof)
        _mesh->setProfiler(_prof.get());
    _nuca = std::make_unique<mem::NucaMap>(_cfg.nx, _cfg.ny,
                                           _cfg.nucaInterleave);
    _barrier = std::make_unique<cpu::BarrierController>(
        _eq, _cfg.numTiles());
    _barrier->setDomains(_domains.get());
    buildTiles();
    setupRobustness();
}

TiledSystem::~TiledSystem()
{
    for (int id : _diagHooks)
        removeDiagnosticHook(id);
}

void
TiledSystem::buildTiles()
{
    int n = _cfg.numTiles();
    bool streams = machineUsesStreams(_cfg.machine);
    bool floats = machineFloats(_cfg.machine);

    _tlbs.resize(n);
    _priv.resize(n);
    _l3.resize(n);
    _memCtrls.resize(n);
    _seCores.resize(n);
    _seL2.resize(n);
    _seL3.resize(n);
    _l1Pf.resize(n);
    _l2Pf.resize(n);
    _cores.resize(n);

    auto as_resolver = [this](int asid) -> mem::AddressSpace * {
        return asid == 0 ? _as.get() : nullptr;
    };

    for (TileId t = 0; t < n; ++t) {
        std::string tn = "tile" + std::to_string(t);
        // L1 TLB 64/8w; L2 TLB 2k/16w, 8-cycle; ~80-cycle walk.
        _tlbs[t] = std::make_unique<mem::TlbHierarchy>(64, 8, 2048, 16,
                                                       8, 80);
        EventQueue &teq = _domains->queueOf(t);
        _priv[t] = std::make_unique<mem::PrivCache>(
            tn + ".priv", teq, t, _cfg.priv, *_mesh, *_nuca);
        _l3[t] = std::make_unique<mem::L3Bank>(tn + ".l3", teq, t,
                                               _cfg.l3, *_mesh, *_nuca);
        if (_prof) {
            _priv[t]->setProfiler(_prof.get());
            _l3[t]->setProfiler(_prof.get());
        }

        if (_verify) {
            _priv[t]->setVerify(_verify.get());
            _l3[t]->setVerify(_verify.get());
            if (!_cfg.verifyBug.empty())
                _l3[t]->setVerifyBug(_cfg.verifyBug);
            _verify->addL2(t, &_priv[t]->l2Array());
            _verify->addL3(&_l3[t]->array());
            // Parked delayed dirty evictions hold the only current
            // image of their line while parked.
            _verify->addDirtyScan([p = _priv[t].get()](Addr line) {
                verify::LinePtr found;
                p->forEachDelayedEviction([&](const mem::CacheLine &l) {
                    if (l.tag == line && l.vdata)
                        found = l.vdata;
                });
                return found;
            });
        }

        if (streams) {
            stream::SECoreConfig sc = _cfg.seCore;
            _seCores[t] = std::make_unique<stream::SECore>(
                tn + ".se", teq, t, sc, *_priv[t], *_tlbs[t], *_as);
            _priv[t]->setStreamReuseHook(
                [se = _seCores[t].get()](StreamId sid) {
                    se->notifyStreamReuse(sid);
                });
            if (_verify)
                _seCores[t]->setVerify(_verify.get());
            if (_prof)
                _seCores[t]->setProfiler(_prof.get());
        }
        if (floats) {
            _seL2[t] = std::make_unique<flt::SEL2>(
                tn + ".sel2", teq, t, _cfg.sel2, *_mesh, *_nuca,
                *_priv[t], *_tlbs[t], *_as, *_seCores[t]);
            _seCores[t]->setFloatController(_seL2[t].get());
            if (_verify)
                _seL2[t]->setVerify(_verify.get());
            if (_prof)
                _seL2[t]->setProfiler(_prof.get());
            _seL3[t] = std::make_unique<flt::SEL3>(
                tn + ".sel3", teq, t, _cfg.sel3, *_mesh, *_nuca,
                *_l3[t], as_resolver);
        }

        switch (_cfg.machine) {
          case Machine::StridePf:
          case Machine::StrideBulk: {
            prefetch::StrideConfig l1c;
            l1c.degree = 8;
            l1c.fillLevel = 1;
            prefetch::StrideConfig l2c;
            l2c.degree = 16;
            l2c.fillLevel = 2;
            _l1Pf[t] = std::make_unique<prefetch::StridePrefetcher>(
                *_priv[t], l1c);
            _l2Pf[t] = std::make_unique<prefetch::StridePrefetcher>(
                *_priv[t], l2c);
            break;
          }
          case Machine::BingoPf:
          case Machine::BingoBulk: {
            prefetch::BingoConfig bc;
            _l1Pf[t] = std::make_unique<prefetch::BingoPrefetcher>(
                *_priv[t], bc);
            prefetch::StrideConfig l2c;
            l2c.degree = 16;
            l2c.fillLevel = 2;
            _l2Pf[t] = std::make_unique<prefetch::StridePrefetcher>(
                *_priv[t], l2c);
            break;
          }
          default:
            break;
        }
        _priv[t]->setPrefetchers(_l1Pf[t].get(), _l2Pf[t].get());
        if (_cfg.machine == Machine::StrideBulk ||
            _cfg.machine == Machine::BingoBulk) {
            _priv[t]->setBulkPrefetch(true);
        }

        // Memory controllers live at the mesh corners.
        const auto &ctrls = _nuca->memCtrls();
        if (std::find(ctrls.begin(), ctrls.end(), t) != ctrls.end()) {
            _memCtrls[t] = std::make_unique<mem::MemCtrl>(
                tn + ".mc", teq, t, _cfg.dram, *_mesh);
            if (_verify)
                _memCtrls[t]->setVerify(_verify.get());
        }

        _mesh->bindSink(t, [this, t](const noc::MsgPtr &msg) {
            dispatch(t, msg);
        });
    }
}

void
TiledSystem::dispatch(TileId tile, const noc::MsgPtr &msg)
{
    if (auto mm = std::dynamic_pointer_cast<mem::MemMsg>(msg)) {
        using mem::MemMsgType;
        switch (mm->type) {
          case MemMsgType::GetS:
          case MemMsgType::GetM:
          case MemMsgType::GetU:
          case MemMsgType::PutS:
          case MemMsgType::PutM:
          case MemMsgType::InvAck:
          case MemMsgType::FwdAck:
          case MemMsgType::FwdMiss:
          case MemMsgType::MemData:
            _l3[tile]->recvMsg(mm);
            return;
          case MemMsgType::MemRead:
          case MemMsgType::MemWrite:
            sf_assert(_memCtrls[tile], "memory message at non-corner");
            _memCtrls[tile]->recvMsg(mm);
            return;
          case MemMsgType::FwdGetS:
          case MemMsgType::FwdGetM:
          case MemMsgType::FwdGetU:
          case MemMsgType::Inv:
          case MemMsgType::PutAck:
          case MemMsgType::DataS:
          case MemMsgType::DataE:
          case MemMsgType::DataM:
          case MemMsgType::DataU:
            _priv[tile]->recvMsg(mm);
            return;
        }
        panic("unroutable MemMsgType %d on tile %d", (int)mm->type,
              tile);
    }
    if (auto cfg = std::dynamic_pointer_cast<flt::StreamFloatMsg>(msg)) {
        sf_assert(_seL3[tile], "stream config at non-SF tile");
        _seL3[tile]->recvConfig(cfg);
        return;
    }
    if (auto cr = std::dynamic_pointer_cast<flt::StreamCreditMsg>(msg)) {
        _seL3[tile]->recvCredit(cr);
        return;
    }
    if (auto end = std::dynamic_pointer_cast<flt::StreamEndMsg>(msg)) {
        _seL3[tile]->recvEnd(end);
        return;
    }
    if (auto ack = std::dynamic_pointer_cast<flt::StreamAckMsg>(msg)) {
        sf_assert(_seL2[tile], "stream ack at non-SF tile");
        _seL2[tile]->recvFloatAck(ack);
        return;
    }
    panic("unroutable message on tile %d", tile);
}

SimResults
TiledSystem::run(const std::vector<std::shared_ptr<isa::OpSource>> &threads)
{
    sf_assert(static_cast<int>(threads.size()) == _cfg.numTiles(),
              "need one op source per tile (%zu vs %d)", threads.size(),
              _cfg.numTiles());
    _threads = threads;
    _coresDone = 0;

    for (TileId t = 0; t < _cfg.numTiles(); ++t) {
        std::string cn = "tile" + std::to_string(t) + ".core";
        _cores[t] = std::make_unique<cpu::Core>(
            cn, _domains->queueOf(t), t, _cfg.core, *_priv[t],
            *_tlbs[t], *_as, _barrier.get(), _threads[t].get());
        if (_seCores[t]) {
            _cores[t]->setStreamEngine(_seCores[t].get());
            _seCores[t]->setWakeHook(
                [c = _cores[t].get()]() { c->wake(); });
        }
        if (_verify)
            _cores[t]->setVerify(_verify.get());
        if (_prof)
            _cores[t]->setProfiler(_prof.get());
        _cores[t]->onDone = [this]() { ++_coresDone; };
    }
    for (auto &c : _cores)
        c->start();

    if (_cfg.samplingInterval > 0)
        startSampler();
    if (_checker)
        _checker->start();
    if (_watchdog)
        _watchdog->start();

    // Checkpoint/restore (DESIGN.md §4j): snapshots anchor at quantum
    // window boundaries. A restore run replays deterministically from
    // tick 0; at the first boundary whose tick equals the snapshot's
    // anchor, the recomputed state is byte-verified against the file.
    // The hook only observes state (and, when checkpointing, writes a
    // file), so hooked runs stay byte-identical to plain ones.
    bool restoring = !_cfg.restorePath.empty();
    Tick anchor = 0;
    std::unique_ptr<snap::Snapshot> restoreSnap;
    if (restoring) {
        restoreSnap = std::make_unique<snap::Snapshot>(
            snap::readSnapshot(_cfg.restorePath));
        anchor = restoreAnchor(*restoreSnap);
        inform("restore: replaying '%s' to anchor tick %llu",
               _cfg.restorePath.c_str(),
               static_cast<unsigned long long>(anchor));
    }
    const bool checkpointing =
        !_cfg.checkpointPath.empty() && _cfg.checkpointEvery > 0;
    Tick nextCkpt = _cfg.checkpointEvery;
    if (restoring && checkpointing) {
        // The original run already wrote the snapshot at the anchor;
        // resume its checkpoint schedule strictly past it.
        while (nextCkpt <= anchor)
            nextCkpt += _cfg.checkpointEvery;
    }
    bool ckptStopRequested = false;
    if (restoring || checkpointing) {
        _domains->setBoundaryHook([&, this](Tick now) {
            if (restoring) {
                if (now == anchor) {
                    verifyRestore(*restoreSnap, now);
                    restoring = false;
                    restoreSnap.reset();
                } else if (now > anchor) {
                    fatalCode(ExitCode::SnapshotError,
                              "restore replay diverged: window "
                              "boundary %llu skipped the snapshot "
                              "anchor %llu",
                              static_cast<unsigned long long>(now),
                              static_cast<unsigned long long>(anchor));
                }
                return;
            }
            if (checkpointing && now >= nextCkpt) {
                writeCheckpoint(_cfg.checkpointPath, now);
                while (nextCkpt <= now)
                    nextCkpt += _cfg.checkpointEvery;
                if (_cfg.checkpointStop)
                    ckptStopRequested = true;
            }
        });
    }

    bool hit_limit = false;
    // sflint: allow(D2, host-seconds stat only; excluded from det.json)
    auto host_start = std::chrono::steady_clock::now();
    auto exit = _domains->runWindows(
        [this, &ckptStopRequested]() {
            return ckptStopRequested ||
                   _coresDone.load(std::memory_order_acquire) >=
                       _cfg.numTiles();
        },
        _cfg.maxCycles);
    // The hook captures locals by reference — clear it before return.
    _domains->setBoundaryHook(nullptr);
    if (restoring) {
        fatalCode(ExitCode::SnapshotError,
                  "restore failed: run ended before reaching the "
                  "snapshot anchor tick %llu",
                  static_cast<unsigned long long>(anchor));
    }
    switch (exit) {
      case sim::TileDomains::Exit::Stopped:
        break;
      case sim::TileDomains::Exit::Empty:
        panic("deadlock: %d/%d cores done, no pending events",
              _coresDone.load(), _cfg.numTiles());
      case sim::TileDomains::Exit::Limit:
        hit_limit = true;
        warn("cycle limit reached (%llu)",
             (unsigned long long)_cfg.maxCycles);
        break;
    }
    _hostSeconds = std::chrono::duration<double>(
                       // sflint: allow(D2, host-seconds stat only)
                       std::chrono::steady_clock::now() - host_start)
                       .count();

    if (_watchdog)
        _watchdog->stop();
    if (_checker)
        _checker->stop();
    if (_sampler)
        _sampler->stop();

    if (ckptStopRequested) {
        // --checkpoint-stop: the run ends mid-simulation by design;
        // skip drain/verify/profile finalization, the counters are
        // partial and the driver must not emit outputs.
        SimResults r = collect(hit_limit);
        r.stoppedAtCheckpoint = true;
        return r;
    }

    if (!hit_limit && _checkLevel > CheckLevel::Off)
        drainAndCheck();

    if (_prof) {
        // Close the top-down accounts over exactly [0, now) and check
        // the exact-sum invariant: every simulated cycle of every
        // accounted component is in exactly one bucket.
        auto violations = _prof->finalizeTopDown(_eq.curTick());
        if (!violations.empty()) {
            for (const auto &v : violations)
                std::fprintf(stderr, "profile: %s\n", v.c_str());
            fatalCode(ExitCode::InvariantViolation,
                      "top-down cycle accounting inconsistent for %zu "
                      "component(s), first: %s",
                      violations.size(), violations.front().c_str());
        }
    }

    return collect(hit_limit);
}

void
TiledSystem::setupRobustness()
{
    // Message-level fault injection: classify stream control messages
    // at the mesh injection point. The mesh itself stays protocol-
    // agnostic; only this layer knows the message types.
    if (_cfg.faults.messageFaults()) {
        _faults = std::make_unique<FaultInjector>(_cfg.faults);
        _mesh->setSendInterceptor(
            [this](const noc::MsgPtr &msg, Cycles &delay) {
                using noc::Mesh;
                FaultClass cls;
                if (std::dynamic_pointer_cast<flt::StreamFloatMsg>(msg))
                    cls = FaultClass::FloatRequest;
                else if (std::dynamic_pointer_cast<flt::StreamCreditMsg>(
                             msg))
                    cls = FaultClass::CreditGrant;
                else if (std::dynamic_pointer_cast<flt::StreamEndMsg>(
                             msg))
                    cls = FaultClass::StreamEnd;
                else if (std::dynamic_pointer_cast<flt::StreamAckMsg>(
                             msg))
                    cls = FaultClass::StreamAck;
                else
                    return Mesh::SendAction::Deliver;
                switch (_faults->decide(cls)) {
                  case FaultAction::Drop:
                    return Mesh::SendAction::Drop;
                  case FaultAction::Delay:
                    delay = _faults->delayCycles();
                    return Mesh::SendAction::Delay;
                  case FaultAction::Duplicate:
                    return Mesh::SendAction::Duplicate;
                  case FaultAction::None:
                    break;
                }
                return Mesh::SendAction::Deliver;
            });
        warn("fault injection active: %s", _cfg.faults.describe().c_str());
    }

    if (_checkLevel > CheckLevel::Off) {
        _checker = std::make_unique<Checker>(_eq, _checkLevel,
                                             _cfg.checkInterval);
        if (_checkLevel >= CheckLevel::Full)
            _mesh->setTrackInFlight(true);
        registerInvariantChecks();
    }

    if (_cfg.watchdogCycles > 0) {
        _watchdog = std::make_unique<Watchdog>(_eq, _cfg.watchdogCycles);
        _watchdog->addProbe("committedOps", [this] {
            uint64_t s = 0;
            for (auto &c : _cores) {
                if (c)
                    s += c->stats().committedOps.value();
            }
            return s;
        });
        _watchdog->addProbe("nocFlitsInjected", [this] {
            const auto &t = _mesh->traffic();
            return t.flitsInjected[0] + t.flitsInjected[1] +
                   t.flitsInjected[2];
        });
        _watchdog->addProbe("streamElements", [this] {
            uint64_t s = 0;
            for (auto &se : _seCores) {
                if (se)
                    s += se->stats().elementsConsumed.value();
            }
            for (auto &s2 : _seL2) {
                if (s2)
                    s += s2->stats().dataArrived.value();
            }
            for (auto &s3 : _seL3) {
                if (s3) {
                    s += s3->stats().lineRequestsIssued.value() +
                         s3->stats().indirectRequestsIssued.value();
                }
            }
            return s;
        });
    }

    registerDiagnostics();
}

void
TiledSystem::registerInvariantChecks()
{
    bool floats = machineFloats(_cfg.machine);

    // A floated stream generation lives at exactly one L3 bank (it is
    // either resident or in a migration message, never in two tables).
    // This holds even under message-level fault injection: the SE_L3
    // replay filter (_departed) refuses configs/migrations at or
    // behind the stream's departure frontier, so a duplicated or
    // retried config can be absorbed or dropped but never plant a
    // second residence.
    if (floats) {
        _checker->addCheck(
            "stream-residence", CheckLevel::Basic,
            [this](std::vector<std::string> &out) {
                std::unordered_map<GlobalStreamId,
                                   std::pair<uint32_t, int>> seen;
                for (auto &s3 : _seL3) {
                    if (!s3)
                        continue;
                    TileId bank = s3->tile();
                    s3->forEachResident(
                        [&](const GlobalStreamId &gsid, uint32_t gen,
                            uint64_t, uint64_t) {
                            auto it = seen.find(gsid);
                            if (it != seen.end() &&
                                it->second.first == gen) {
                                out.push_back(
                                    "stream (core " +
                                    std::to_string(gsid.core) + ", sid " +
                                    std::to_string(gsid.sid) + ") gen " +
                                    std::to_string(gen) +
                                    " resident at banks " +
                                    std::to_string(it->second.second) +
                                    " and " + std::to_string(bank));
                            }
                            seen[gsid] = {gen, bank};
                        });
                }
            });
    }

    // SE_L2 credit window: the granted horizon never runs more than
    // one buffer capacity ahead of consumption. Children share the
    // base's credits and aliased streams ride a leader's window, so
    // only independent base streams are bounded this way.
    if (floats) {
        _checker->addCheck(
            "sel2-credit-window", CheckLevel::Basic,
            [this](std::vector<std::string> &out) {
                for (auto &s2 : _seL2) {
                    if (!s2)
                        continue;
                    s2->forEachFloated([&](const flt::SEL2::FloatedView
                                               &v) {
                        if (v.isChild || v.aliased)
                            return;
                        if (v.grantedUpTo >
                            v.consumedUpTo + v.capacityElems) {
                            out.push_back(
                                "sid " + std::to_string(v.sid) +
                                " gen " + std::to_string(v.gen) +
                                ": grantedUpTo " +
                                std::to_string(v.grantedUpTo) +
                                " > consumedUpTo " +
                                std::to_string(v.consumedUpTo) +
                                " + capacity " +
                                std::to_string(v.capacityElems));
                        }
                    });
                }
            });

        // SE_L3 never issues past a member's credit horizon.
        _checker->addCheck(
            "sel3-issue-credit", CheckLevel::Basic,
            [this](std::vector<std::string> &out) {
                for (auto &s3 : _seL3) {
                    if (!s3)
                        continue;
                    s3->forEachResident(
                        [&](const GlobalStreamId &gsid, uint32_t gen,
                            uint64_t issue_pos, uint64_t credit_limit) {
                            if (issue_pos > credit_limit) {
                                out.push_back(
                                    "bank " + std::to_string(s3->tile()) +
                                    " stream (core " +
                                    std::to_string(gsid.core) + ", sid " +
                                    std::to_string(gsid.sid) + ") gen " +
                                    std::to_string(gen) + ": issuePos " +
                                    std::to_string(issue_pos) +
                                    " > creditLimit " +
                                    std::to_string(credit_limit));
                            }
                        });
                }
            });
    }

    // MESI: at most one private cache holds a line M/E, and any M/E
    // holder is the registered directory owner (unless a transaction
    // currently blocks the line, i.e. ownership is mid-transfer).
    _checker->addCheck(
        "mesi-single-owner", CheckLevel::Full,
        [this](std::vector<std::string> &out) {
            std::unordered_map<Addr, TileId> owners;
            for (TileId t = 0; t < _cfg.numTiles(); ++t) {
                _priv[t]->l2Array().forEachValid([&](mem::CacheLine &l) {
                    if (l.state != mem::LineState::Exclusive &&
                        l.state != mem::LineState::Modified)
                        return;
                    auto it = owners.find(l.tag);
                    if (it != owners.end()) {
                        char buf[96];
                        std::snprintf(buf, sizeof(buf),
                                      "line %llx owned M/E by tiles "
                                      "%d and %d",
                                      (unsigned long long)l.tag,
                                      it->second, t);
                        out.push_back(buf);
                    }
                    owners[l.tag] = t;
                    TileId home = _nuca->bankOf(l.tag);
                    if (_l3[home]->isLineBlocked(l.tag))
                        return;
                    mem::CacheLine *dir =
                        _l3[home]->array().probe(l.tag);
                    if (!dir || dir->owner != t) {
                        char buf[112];
                        std::snprintf(
                            buf, sizeof(buf),
                            "line %llx M/E at tile %d but directory "
                            "owner is %d",
                            (unsigned long long)l.tag, t,
                            dir ? dir->owner : invalidTile);
                        out.push_back(buf);
                    }
                });
            }
        });

    // NoC conservation: every injected packet is ejected at all its
    // destinations in bounded time. A packet older than this bound
    // means a sink lost it or a router wedged.
    _checker->addCheck(
        "noc-packet-age", CheckLevel::Full,
        [this](std::vector<std::string> &out) {
            if (!_mesh->trackInFlight())
                return;
            Tick oldest = _mesh->oldestInFlightTick();
            Tick now = _eq.curTick();
            const Tick maxAge = 500'000;
            if (oldest < now && now - oldest > maxAge) {
                char buf[96];
                std::snprintf(buf, sizeof(buf),
                              "packet in flight for %llu cycles "
                              "(injected at %llu)",
                              (unsigned long long)(now - oldest),
                              (unsigned long long)oldest);
                out.push_back(buf);
            }
        });
}

void
TiledSystem::registerDiagnostics()
{
    _diagHooks.push_back(addDiagnosticHook(
        "event-queue", [this](std::FILE *f) {
            std::fprintf(f,
                         "tick=%llu pending=%llu executed=%llu "
                         "coresDone=%d/%d shards=%d\n",
                         (unsigned long long)_eq.curTick(),
                         (unsigned long long)(
                             _eq.numPending() +
                             _domains->shardEventsPending()),
                         (unsigned long long)(
                             _eq.numExecuted() +
                             _domains->shardEventsExecuted()),
                         _coresDone.load(), _cfg.numTiles(),
                         _domains->shards());
            for (int sh = 0; sh < _domains->shards(); ++sh) {
                const EventQueue &q = _domains->shardQueue(sh);
                std::fprintf(f,
                             "  shard %d: tick=%llu pending=%llu "
                             "executed=%llu\n",
                             sh, (unsigned long long)q.curTick(),
                             (unsigned long long)q.numPending(),
                             (unsigned long long)q.numExecuted());
            }
        }));
    if (_watchdog) {
        _diagHooks.push_back(addDiagnosticHook(
            "watchdog",
            [this](std::FILE *f) { _watchdog->debugDump(f); }));
    }
    if (_checker) {
        _diagHooks.push_back(addDiagnosticHook(
            "checker",
            [this](std::FILE *f) { _checker->debugDump(f); }));
    }
    if (_faults) {
        _diagHooks.push_back(addDiagnosticHook(
            "fault-injector",
            [this](std::FILE *f) { _faults->debugDump(f); }));
    }
    _diagHooks.push_back(addDiagnosticHook(
        "noc-in-flight", [this](std::FILE *f) {
            if (_mesh->trackInFlight())
                _mesh->debugDumpInFlight(f);
            else
                std::fprintf(f, "(tracking off)\n");
        }));
    _diagHooks.push_back(addDiagnosticHook(
        "tiles", [this](std::FILE *f) {
            for (TileId t = 0; t < _cfg.numTiles(); ++t) {
                std::fprintf(f, "[tile %d]\n", t);
                _priv[t]->debugDump(f);
                _l3[t]->debugDump(f);
                if (_seCores[t])
                    _seCores[t]->debugDump(f);
                if (_seL2[t])
                    _seL2[t]->debugDump(f);
                if (_seL3[t])
                    _seL3[t]->debugDump(f);
            }
        }));
}

void
TiledSystem::drainAndCheck()
{
    // Let in-flight evictions and stream ends complete. Residual
    // streams re-arm their own scans, so bound the drain instead of
    // insisting on an empty queue.
    Tick limit = _eq.curTick() + 1'000'000 + _cfg.samplingInterval;
    _domains->runWindows([]() { return false; }, limit);

    std::vector<std::string> residue;
    uint64_t pending = _eq.numPending() + _domains->shardEventsPending();
    if (pending > 0) {
        residue.push_back("event queue not empty after drain (" +
                          std::to_string(pending) + " pending)");
    }
    for (TileId t = 0; t < _cfg.numTiles(); ++t) {
        std::string tn = "tile" + std::to_string(t);
        if (_priv[t]->mshrsInUse() > 0) {
            residue.push_back(tn + ": " +
                              std::to_string(_priv[t]->mshrsInUse()) +
                              " MSHR(s) still in use");
        }
        if (_priv[t]->mshrWaiters() > 0) {
            residue.push_back(tn + ": " +
                              std::to_string(_priv[t]->mshrWaiters()) +
                              " access(es) waiting on MSHRs");
        }
        if (_priv[t]->delayedEvictions() > 0) {
            residue.push_back(
                tn + ": " + std::to_string(_priv[t]->delayedEvictions()) +
                " delayed eviction(s) never released");
        }
        if (_l3[t]->numTxns() > 0) {
            residue.push_back(tn + ": " +
                              std::to_string(_l3[t]->numTxns()) +
                              " open directory transaction(s)");
        }
        if (_seL2[t] && _seL2[t]->numFloated() > 0) {
            residue.push_back(tn + ": " +
                              std::to_string(_seL2[t]->numFloated()) +
                              " stream(s) still floated at SE_L2");
        }
        if (_seL3[t] && _seL3[t]->numStreams() > 0) {
            residue.push_back(tn + ": " +
                              std::to_string(_seL3[t]->numStreams()) +
                              " stream context(s) resident at SE_L3");
        }
    }
    if (_mesh->trackInFlight() && _mesh->inFlightCount() > 0) {
        residue.push_back(std::to_string(_mesh->inFlightCount()) +
                          " packet(s) still in flight on the NoC");
    }
    if (!residue.empty()) {
        for (const auto &r : residue)
            std::fprintf(stderr, "drain residue: %s\n", r.c_str());
        fatalCode(ExitCode::DrainFailure,
                  "simulation finished but %zu component(s) failed to "
                  "drain, first: %s",
                  residue.size(), residue.front().c_str());
    }

    // With the system quiesced the invariants must hold exactly.
    _checker->runAll("drain", ExitCode::DrainFailure);
}

void
TiledSystem::startSampler()
{
    _sampler = std::make_unique<stats::IntervalSampler>(
        "sampler", _eq, _cfg.samplingInterval);

    auto sum_ops = [this]() {
        double s = 0;
        for (auto &c : _cores)
            s += double(c->stats().committedOps.value());
        return s;
    };
    auto ticks = [this]() { return double(_eq.curTick()); };
    _sampler->addRatio("ipc", sum_ops, ticks);

    _sampler->addRatio(
        "l2HitRate",
        [this]() {
            double s = 0;
            for (auto &p : _priv)
                s += double(p->stats().l2Hits.value());
            return s;
        },
        [this]() {
            double s = 0;
            for (auto &p : _priv) {
                s += double(p->stats().l2Hits.value()) +
                     double(p->stats().l2Misses.value());
            }
            return s;
        });

    _sampler->addRatio(
        "l3HitRate",
        [this]() {
            double s = 0;
            for (auto &b : _l3)
                s += double(b->stats().hits.value());
            return s;
        },
        [this]() {
            double s = 0;
            for (auto &b : _l3) {
                s += double(b->stats().hits.value()) +
                     double(b->stats().misses.value());
            }
            return s;
        });

    double live_links = double(_mesh->liveLinkCount());
    _sampler->addRatio(
        "nocLinkUtilization",
        [this]() { return double(_mesh->traffic().linkBusyCycles); },
        [this, live_links]() {
            return double(_eq.curTick()) * live_links;
        });

    if (machineFloats(_cfg.machine)) {
        _sampler->addRatio(
            "floatedFetchFraction",
            [this]() {
                double s = 0;
                for (auto &se : _seCores) {
                    if (se) {
                        s += double(
                            se->stats().floatedFetchesIssued.value());
                    }
                }
                return s;
            },
            [this]() {
                double s = 0;
                for (auto &se : _seCores) {
                    if (se)
                        s += double(se->stats().fetchesIssued.value());
                }
                return s;
            });
    }

    // NoC heatmap matrices, profile runs only: the plain stats.json
    // "series" section never includes matrices, so registering them
    // here cannot perturb non-profiled dumps.
    if (_prof) {
        int n = _cfg.numTiles();
        _sampler->addMatrix(
            "nocLinkBusy", n, 4, [this](std::vector<uint64_t> &out) {
                for (TileId t = 0; t < _cfg.numTiles(); ++t)
                    for (int d = 0; d < 4; ++d)
                        out[size_t(t) * 4 + d] =
                            _mesh->linkBusyCycles(t, d);
            });
        _sampler->addMatrix(
            "nocLinkQueue", n, 4, [this](std::vector<uint64_t> &out) {
                for (TileId t = 0; t < _cfg.numTiles(); ++t)
                    for (int d = 0; d < 4; ++d)
                        out[size_t(t) * 4 + d] =
                            _mesh->linkQueueCycles(t, d);
            });
        _sampler->addMatrix(
            "nocRouterFlits", _cfg.ny, _cfg.nx,
            [this](std::vector<uint64_t> &out) {
                for (TileId t = 0; t < _cfg.numTiles(); ++t)
                    out[t] = _mesh->routerFlits(t);
            });
    }

    _sampler->start();
}

void
TiledSystem::buildStatRegistry(stats::StatRegistry &reg) const
{
    for (TileId t = 0; t < _cfg.numTiles(); ++t) {
        std::string tn = "tile" + std::to_string(t);
        if (_cores[t])
            _cores[t]->stats().regStats(reg.group(tn + ".core"));
        _priv[t]->stats().regStats(reg.group(tn + ".priv"));
        _l3[t]->stats().regStats(reg.group(tn + ".l3"));
        if (_seCores[t])
            _seCores[t]->stats().regStats(reg.group(tn + ".seCore"));
        if (_seL2[t])
            _seL2[t]->stats().regStats(reg.group(tn + ".seL2"));
        if (_seL3[t])
            _seL3[t]->stats().regStats(reg.group(tn + ".seL3"));
    }

    if (_faults)
        _faults->regStats(reg.group("faults"));
    if (_checker)
        _checker->regStats(reg.group("checker"));
    if (_prof)
        _prof->registerStats(reg);

    stats::StatGroup &eg = reg.group("sim.eventq");
    const EventQueue *eq = &_eq;
    eg.regFormula("executed", [this]() {
        return double(_eq.numExecuted() +
                      _domains->shardEventsExecuted());
    });
    eg.regFormula("pending", [this]() {
        return double(_eq.numPending() +
                      _domains->shardEventsPending());
    });
    // Wheel-internals are per-queue quantities: how events spread over
    // the shard queues (and hence tombstone/compaction dynamics)
    // depends on the worker count, so they live with the other
    // host-variant stats and stay out of the determinism contract.
    if (_hostStatsInJson) {
        eg.regFormula("tombstones", [this]() {
            double n = double(_eq.tombstones());
            for (int sh = 0; sh < _domains->shards(); ++sh)
                n += double(_domains->shardQueue(sh).tombstones());
            return n;
        });
        eg.regFormula("compactions", [this]() {
            double n = double(_eq.compactions());
            for (int sh = 0; sh < _domains->shards(); ++sh)
                n += double(_domains->shardQueue(sh).compactions());
            return n;
        });
        eg.regFormula("arenaCapacity", [this]() {
            double n = double(_eq.arenaCapacity());
            for (int sh = 0; sh < _domains->shards(); ++sh)
                n += double(_domains->shardQueue(sh).arenaCapacity());
            return n;
        });
    }

    // Host throughput is wall-clock, hence nondeterministic; off by
    // default so stat dumps stay byte-comparable (opt in via
    // includeHostStats).
    if (_hostStatsInJson) {
        stats::StatGroup &hg = reg.group("host");
        hg.regFormula("seconds", [this]() { return _hostSeconds; });
        hg.regFormula("eventsPerSec", [this, eq]() {
            return _hostSeconds > 0.0
                       ? double(eq->numExecuted()) / _hostSeconds
                       : 0.0;
        });
    }

    stats::StatGroup &mg = reg.group("mesh");
    const noc::Mesh *mesh = _mesh.get();
    mg.regFormula("flitHops.control", [mesh]() {
        return double(mesh->traffic().flitHops[0]);
    });
    mg.regFormula("flitHops.data", [mesh]() {
        return double(mesh->traffic().flitHops[1]);
    });
    mg.regFormula("flitHops.streamMgmt", [mesh]() {
        return double(mesh->traffic().flitHops[2]);
    });
    mg.regFormula("utilization",
                  [mesh]() { return mesh->linkUtilization(); });
    mg.regHistogram("packetHops", &mesh->packetHops());
}

void
TiledSystem::dumpStats(std::ostream &os) const
{
    stats::StatRegistry reg;
    buildStatRegistry(reg);
    reg.dump(os);
}

void
TiledSystem::dumpStatsJson(std::ostream &os, const SimResults &r) const
{
    stats::StatRegistry reg;
    buildStatRegistry(reg);

    json::Writer w(os);
    w.beginObject();
    w.kv("schema", stats::jsonSchemaName);
    w.kv("schemaVersion", stats::jsonSchemaVersion);

    w.beginObject("config");
    w.kv("machine", machineName(_cfg.machine));
    w.kv("core", _cfg.core.label);
    w.kv("nx", _cfg.nx);
    w.kv("ny", _cfg.ny);
    w.kv("samplingInterval", uint64_t(_cfg.samplingInterval));
    w.kv("maxCycles", uint64_t(_cfg.maxCycles));
    w.kv("checkLevel", checkLevelName(_checkLevel));
    w.kv("watchdogCycles", uint64_t(_cfg.watchdogCycles));
    w.kv("faults", _cfg.faults.enabled() ? _cfg.faults.describe()
                                         : std::string("none"));
    w.endObject();

    w.beginObject("results");
    w.kv("cycles", uint64_t(r.cycles));
    w.kv("hitCycleLimit", r.hitCycleLimit);
    w.kv("committedOps", r.committedOps);
    w.kv("ipc", r.ipc());
    w.kv("l1Hits", r.l1Hits);
    w.kv("l1Misses", r.l1Misses);
    w.kv("l2Hits", r.l2Hits);
    w.kv("l2Misses", r.l2Misses);
    w.kv("l2HitRate", r.l2HitRate);
    w.kv("l2Evictions", r.l2Evictions);
    w.kv("l2EvictionsUnreused", r.l2EvictionsUnreused);
    w.kv("l3Hits", r.l3Hits);
    w.kv("l3Misses", r.l3Misses);
    w.kv("l3HitRate", r.l3HitRate);
    w.beginArray("l3RequestsByClass");
    for (uint64_t v : r.l3RequestsByClass)
        w.value(v);
    w.endArray();
    w.kv("dramReads", r.dramReads);
    w.kv("dramWrites", r.dramWrites);
    w.kv("streamsFloated", r.streamsFloated);
    w.kv("streamsSunk", r.streamsSunk);
    w.kv("migrations", r.migrations);
    w.kv("confluenceMerges", r.confluenceMerges);
    w.kv("confluenceRequests", r.confluenceRequests);
    w.kv("creditMessages", r.creditMessages);
    w.kv("seL3LineRequests", r.seL3LineRequests);
    w.kv("seL3IndirectRequests", r.seL3IndirectRequests);
    w.kv("prefetchesIssued", r.prefetchesIssued);
    w.kv("prefetchesUseful", r.prefetchesUseful);
    w.beginObject("traffic");
    w.kv("flitsInjected", r.traffic.flitsInjected[0] +
                              r.traffic.flitsInjected[1] +
                              r.traffic.flitsInjected[2]);
    w.kv("flitHops", r.traffic.totalFlitHops());
    w.kv("linkBusyCycles", r.traffic.linkBusyCycles);
    w.endObject();
    w.kv("nocUtilization", r.nocUtilization);
    w.kv("energyNj", r.energyNj);
    w.endObject();

    reg.dumpJson(w);

    w.beginObject("series");
    if (_sampler) {
        w.kv("interval", uint64_t(_sampler->interval()));
        w.beginArray("ticks");
        for (Tick t : _sampler->ticks())
            w.value(uint64_t(t));
        w.endArray();
        w.beginObject("values");
        for (const auto &s : _sampler->series()) {
            w.beginArray(s.name);
            for (double v : s.values)
                w.value(v);
            w.endArray();
        }
        w.endObject();
    } else {
        w.kv("interval", uint64_t(0));
    }
    w.endObject();

    w.endObject();
    os << "\n";
}

void
TiledSystem::dumpProfileJson(std::ostream &os, const SimResults &r) const
{
    sf_assert(_prof, "dumpProfileJson requires cfg.profile");

    json::Writer w(os);
    w.beginObject();
    w.kv("schema", "sf-profile");
    w.kv("schemaVersion", 1);

    w.beginObject("config");
    w.kv("machine", machineName(_cfg.machine));
    w.kv("core", _cfg.core.label);
    w.kv("nx", _cfg.nx);
    w.kv("ny", _cfg.ny);
    w.kv("samplingInterval", uint64_t(_cfg.samplingInterval));
    w.endObject();

    w.kv("cycles", uint64_t(r.cycles));

    _prof->dumpJson(w);

    // NoC heatmaps: end-of-run totals always, per-interval delta
    // frames when the sampler ran (it registers the matrices only on
    // profile runs).
    w.beginObject("heatmaps");
    int n = _cfg.numTiles();
    auto totals = [&](const std::string &name, int rows, int cols,
                      const std::function<uint64_t(size_t)> &cell) {
        w.beginObject(name);
        w.kv("rows", rows);
        w.kv("cols", cols);
        w.beginArray("total");
        for (size_t c = 0; c < size_t(rows) * size_t(cols); ++c)
            w.value(cell(c));
        w.endArray();
        w.endObject();
    };
    totals("nocLinkBusy", n, 4, [this](size_t c) {
        return _mesh->linkBusyCycles(TileId(c / 4), int(c % 4));
    });
    totals("nocLinkQueue", n, 4, [this](size_t c) {
        return _mesh->linkQueueCycles(TileId(c / 4), int(c % 4));
    });
    totals("nocRouterFlits", _cfg.ny, _cfg.nx, [this](size_t c) {
        return _mesh->routerFlits(TileId(c));
    });
    w.beginObject("frames");
    if (_sampler) {
        w.kv("interval", uint64_t(_sampler->interval()));
        w.beginArray("ticks");
        for (Tick t : _sampler->ticks())
            w.value(uint64_t(t));
        w.endArray();
        w.beginObject("series");
        for (const auto &m : _sampler->matrices()) {
            w.beginArray(m.name);
            for (const auto &f : m.frames) {
                w.beginArray();
                for (uint64_t v : f)
                    w.value(v);
                w.endArray();
            }
            w.endArray();
        }
        w.endObject();
    } else {
        w.kv("interval", uint64_t(0));
    }
    w.endObject();
    w.endObject();

    w.endObject();
    os << "\n";
}

void
TiledSystem::dumpProfileSummaryJson(std::ostream &os) const
{
    sf_assert(_prof, "dumpProfileSummaryJson requires cfg.profile");
    json::Writer w(os);
    _prof->dumpSummaryJson(w);
    os << "\n";
}

SimResults
TiledSystem::collect(bool hit_limit)
{
    SimResults r;
    r.hitCycleLimit = hit_limit;
    for (auto &c : _cores) {
        r.cycles = std::max(r.cycles, c->stats().doneTick);
        r.committedOps += c->stats().committedOps;
    }
    if (hit_limit)
        r.cycles = _eq.curTick();

    r.traffic = _mesh->traffic();
    r.nocUtilization = _mesh->linkUtilization();

    uint64_t se_core_events = 0, se_l2_events = 0, se_l3_events = 0;
    uint64_t tlb_accesses = 0;

    for (TileId t = 0; t < _cfg.numTiles(); ++t) {
        const auto &ps = _priv[t]->stats();
        r.l1Hits += ps.l1Hits;
        r.l1Misses += ps.l1Misses;
        r.l2Hits += ps.l2Hits;
        r.l2Misses += ps.l2Misses;
        r.l2Evictions += ps.l2Evictions;
        r.l2EvictionsUnreused += ps.l2EvictionsUnreused;
        r.l2EvictionsUnreusedStream += ps.l2EvictionsUnreusedStream;
        r.unreusedDataFlits += ps.unreusedDataFlits;
        r.unreusedCtrlFlits += ps.unreusedCtrlFlits;
        r.prefetchesIssued += ps.prefetchesIssued;
        r.prefetchesUseful += ps.prefetchesUseful;

        const auto &ls = _l3[t]->stats();
        r.l3Hits += ls.hits;
        r.l3Misses += ls.misses;
        for (size_t k = 0; k < r.l3RequestsByClass.size(); ++k)
            r.l3RequestsByClass[k] += ls.requestsByClass[k];

        if (_memCtrls[t]) {
            r.dramReads += _memCtrls[t]->channel().reads;
            r.dramWrites += _memCtrls[t]->channel().writes;
        }
        if (_seCores[t]) {
            const auto &ss = _seCores[t]->stats();
            r.streamsFloated += ss.streamsFloated;
            r.streamsSunk += ss.streamsSunk;
            se_core_events += ss.elementsConsumed;
        }
        if (_seL2[t]) {
            const auto &s2 = _seL2[t]->stats();
            r.creditMessages += s2.creditsSent;
            se_l2_events += s2.dataArrived;
        }
        if (_seL3[t]) {
            const auto &s3 = _seL3[t]->stats();
            r.migrations += s3.migrationsOut;
            r.confluenceMerges += s3.confluenceMerges;
            r.confluenceRequests += s3.confluenceRequests;
            r.seL3LineRequests += s3.lineRequestsIssued;
            r.seL3IndirectRequests += s3.indirectRequestsIssued;
            se_l3_events += s3.lineRequestsIssued +
                            s3.indirectRequestsIssued;
        }
        tlb_accesses += _tlbs[t]->l1().hits + _tlbs[t]->l1().misses;
    }

    uint64_t total_l2 = r.l2Hits + r.l2Misses;
    r.l2HitRate = total_l2 ? double(r.l2Hits) / total_l2 : 0.0;
    uint64_t total_l3 = r.l3Hits + r.l3Misses;
    r.l3HitRate = total_l3 ? double(r.l3Hits) / total_l3 : 0.0;

    // Energy.
    energy::EnergyEvents ev;
    for (auto &c : _cores) {
        ev.intOps += c->stats().intOps;
        ev.fpOps += c->stats().fpOps;
        ev.memOps += c->stats().committedLoads +
                     c->stats().committedStores +
                     c->stats().committedStreamLoads +
                     c->stats().committedStreamStores;
    }
    ev.l1Accesses = r.l1Hits + r.l1Misses;
    ev.l2Accesses = r.l2Hits + r.l2Misses;
    ev.l3Accesses = r.l3Hits + r.l3Misses;
    ev.tlbAccesses = tlb_accesses;
    ev.dramLines = r.dramReads + r.dramWrites;
    ev.flitHops = r.traffic.totalFlitHops();
    ev.seCoreEvents = se_core_events;
    ev.seL2Events = se_l2_events;
    ev.seL3Events = se_l3_events;
    ev.cycles = r.cycles;
    ev.numTiles = _cfg.numTiles();
    ev.coreLabel = _cfg.core.label;
    ev.streamHardware = machineUsesStreams(_cfg.machine);
    r.energy = energy::computeEnergy(ev);
    r.energyNj = r.energy.total();

    r.hostSeconds = _hostSeconds;
    r.eventsExecuted = _eq.numExecuted() +
                       _domains->shardEventsExecuted();
    return r;
}

} // namespace sys
} // namespace sf
