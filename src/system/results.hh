/**
 * @file
 * Aggregated results of one simulation run: everything the paper's
 * figures plot.
 */

#ifndef SF_SYSTEM_RESULTS_HH
#define SF_SYSTEM_RESULTS_HH

#include <array>
#include <cstdint>

#include "energy/energy_model.hh"
#include "noc/mesh.hh"

namespace sf {
namespace sys {

struct SimResults
{
    /** Parallel-region completion time in cycles. */
    Tick cycles = 0;
    bool hitCycleLimit = false;
    uint64_t committedOps = 0;

    // NoC (Fig. 15 / 16 / 2b).
    noc::TrafficStats traffic;
    double nocUtilization = 0.0;

    // Private caches (Fig. 2 telemetry, Fig. 18 dots).
    uint64_t l1Hits = 0, l1Misses = 0;
    uint64_t l2Hits = 0, l2Misses = 0;
    uint64_t l2Evictions = 0;
    uint64_t l2EvictionsUnreused = 0;
    uint64_t l2EvictionsUnreusedStream = 0;
    uint64_t unreusedDataFlits = 0, unreusedCtrlFlits = 0;
    double l2HitRate = 0.0;

    // L3 (Fig. 14, Fig. 18 dots).
    uint64_t l3Hits = 0, l3Misses = 0;
    std::array<uint64_t, 5> l3RequestsByClass = {0, 0, 0, 0, 0};
    double l3HitRate = 0.0;

    // Memory.
    uint64_t dramReads = 0, dramWrites = 0;

    // Stream machinery.
    uint64_t streamsFloated = 0, streamsSunk = 0;
    uint64_t migrations = 0;
    uint64_t confluenceMerges = 0, confluenceRequests = 0;
    uint64_t creditMessages = 0;
    uint64_t seL3LineRequests = 0, seL3IndirectRequests = 0;

    // Prefetchers.
    uint64_t prefetchesIssued = 0, prefetchesUseful = 0;

    // Energy (Fig. 13 / 19).
    energy::EnergyBreakdown energy;
    double energyNj = 0.0;

    // Host-side throughput (simulator speed, not simulated speed;
    // nondeterministic — never part of byte-compared outputs).
    double hostSeconds = 0.0;
    uint64_t eventsExecuted = 0;

    /**
     * --checkpoint-stop: the run ended right after writing its first
     * checkpoint; counters above are partial and drivers must not
     * emit stats/verify output for this run (DESIGN.md §4j).
     */
    bool stoppedAtCheckpoint = false;

    double
    ipc() const
    {
        return cycles ? double(committedOps) / double(cycles) : 0.0;
    }

    double
    eventsPerHostSec() const
    {
        return hostSeconds > 0.0 ? double(eventsExecuted) / hostSeconds
                                 : 0.0;
    }
};

} // namespace sys
} // namespace sf

#endif // SF_SYSTEM_RESULTS_HH
