/**
 * @file
 * Whole-system configuration (Table III) and the evaluated machine
 * variants (§VI: Base, L1Stride-L2Stride, L1Bingo-L2Stride, SS, SF and
 * the SF-Aff / SF-Ind ablations plus bulk prefetching).
 */

#ifndef SF_SYSTEM_CONFIG_HH
#define SF_SYSTEM_CONFIG_HH

#include <string>

#include "cpu/core_config.hh"
#include "sim/checker.hh"
#include "sim/fault.hh"
#include "flt/se_l2.hh"
#include "flt/se_l3.hh"
#include "mem/dram.hh"
#include "mem/l3_bank.hh"
#include "mem/priv_cache.hh"
#include "noc/mesh.hh"
#include "stream/se_core.hh"

namespace sf {
namespace sys {

/** The machine variants compared throughout the evaluation. */
enum class Machine
{
    Base,        //!< no prefetching
    StridePf,    //!< L1 stride + L2 stride
    BingoPf,     //!< L1 Bingo + L2 stride
    StrideBulk,  //!< stride prefetchers + bulk request grouping
    BingoBulk,   //!< Bingo + L2 stride + bulk request grouping
    SS,          //!< stream-specialized core, no floating
    SFAff,       //!< stream floating, affine only
    SFInd,       //!< + indirect floating, no confluence
    SF,          //!< full stream floating
};

inline const char *
machineName(Machine m)
{
    switch (m) {
      case Machine::Base: return "Base";
      case Machine::StridePf: return "L1Stride-L2Stride";
      case Machine::BingoPf: return "L1Bingo-L2Stride";
      case Machine::StrideBulk: return "Stride+Bulk";
      case Machine::BingoBulk: return "Bingo+Bulk";
      case Machine::SS: return "SS";
      case Machine::SFAff: return "SF-Aff";
      case Machine::SFInd: return "SF-Ind";
      case Machine::SF: return "SF";
    }
    return "?";
}

inline bool
machineUsesStreams(Machine m)
{
    return m == Machine::SS || m == Machine::SFAff ||
           m == Machine::SFInd || m == Machine::SF;
}

inline bool
machineFloats(Machine m)
{
    return m == Machine::SFAff || m == Machine::SFInd ||
           m == Machine::SF;
}

/**
 * Full system configuration.
 *
 * Threading (sim/annotations.hh): deliberately un-annotated. The
 * config is built by the driver, copied into TiledSystem, and never
 * mutated once workers exist — immutable-after-construction state
 * needs no SF_GUARDED_BY. Anything added here that a shard thread
 * writes mid-run must move behind a lock and carry an annotation.
 */
struct SystemConfig
{
    int nx = 4;
    int ny = 4;
    cpu::CoreConfig core = cpu::CoreConfig::ooo8();
    Machine machine = Machine::Base;

    noc::MeshConfig noc;
    /** Static-NUCA interleaving granularity in bytes. */
    uint32_t nucaInterleave = 64;
    mem::PrivCacheConfig priv;
    mem::L3BankConfig l3;
    mem::DramConfig dram;
    flt::SEL2Config sel2;
    flt::SEL3Config sel3;
    stream::SECoreConfig seCore;

    /** Deterministic seed for replacement policies / datasets. */
    uint64_t seed = 1;
    /** Safety bound on simulated cycles. */
    Tick maxCycles = 500'000'000;
    /**
     * Interval (cycles) between counter snapshots for the time-series
     * section of the JSON stat dump; 0 disables sampling.
     */
    Cycles samplingInterval = 0;

    /**
     * Worker threads for the tile-parallel engine (--threads). Tiles
     * are sharded tile%threads across workers; results are
     * byte-identical to threads=1 by construction (DESIGN.md §4i).
     * Clamped to numTiles(); modes that need a single execution
     * context (verify, fault injection, stream tracing, full checks)
     * fall back to one worker with a warning.
     */
    int threads = 1;

    /**
     * Latency-attribution profiler (--profile): per-request lifecycle
     * records, top-down cycle accounting per core/SE, and NoC heatmap
     * sampling. Off by default; when off, no Profiler object exists
     * and every hook is a null-pointer check.
     */
    bool profile = false;

    // --- robustness layer ---
    /**
     * Invariant-checker level (off/basic/full); the SF_CHECK env var
     * overrides whatever the driver configured.
     */
    CheckLevel checkLevel = CheckLevel::Off;
    /** Cycles between periodic invariant sweeps. */
    Cycles checkInterval = 50'000;
    /**
     * Forward-progress watchdog: fatal(WatchdogTimeout) when no core
     * retires, no stream element is served, and no NoC flit moves for
     * this many cycles. 0 disables the watchdog.
     */
    Cycles watchdogCycles = 2'000'000;
    /** Deterministic fault-injection schedule (off by default). */
    FaultConfig faults;

    // --- verify (architectural correctness oracle) ---
    /**
     * Attach the verify data plane: byte images ride the protocol's
     * own data movements and the driver diffs the final architectural
     * state against the functional reference executor. Off by default
     * (plain timing runs carry no data bytes).
     */
    bool verify = false;
    /**
     * Deterministic protocol-bug injection for the verify negative
     * tests ("stale-getu", "drop-putm-data"); see L3Bank::setVerifyBug.
     */
    std::string verifyBug;

    /**
     * Checkpoint/restore (DESIGN.md §4j). checkpointPath + a nonzero
     * checkpointEvery enable periodic sf-snap-v1 snapshots at window
     * boundaries; checkpointStop ends the run right after the first
     * snapshot is written (sweep kill/restore testing); restorePath
     * replays to the snapshot's anchor tick, byte-verifies every
     * captured section, and continues to completion.
     */
    std::string checkpointPath;
    Tick checkpointEvery = 0;
    bool checkpointStop = false;
    std::string restorePath;
    /** Workload label stamped into snapshot META for compat checks. */
    std::string workloadTag;

    int numTiles() const { return nx * ny; }

    /**
     * Build the default configuration for one machine variant: wires
     * Table III parameters and the variant-specific settings (SF uses
     * 1 kB NUCA interleaving, bulk variants need >64 B interleaving).
     */
    static SystemConfig
    make(Machine m, const cpu::CoreConfig &core, int nx = 4, int ny = 4)
    {
        SystemConfig c;
        c.nx = nx;
        c.ny = ny;
        c.noc.nx = nx;
        c.noc.ny = ny;
        c.core = core;
        c.machine = m;

        c.seCore.fifoBytes = core.seFifoBytes;
        c.seCore.maxStreams = core.seMaxStreams;
        c.seCore.l2CapacityBytes = c.priv.l2Size;
        c.seCore.enableFloating = machineFloats(m);

        switch (m) {
          case Machine::SF:
          case Machine::SFInd:
          case Machine::SFAff:
            c.nucaInterleave = 1024;
            c.sel3.enableConfluence = m == Machine::SF;
            c.seCore.floatIndirects = m != Machine::SFAff;
            break;
          case Machine::StrideBulk:
          case Machine::BingoBulk:
            c.nucaInterleave = 1024;
            break;
          default:
            c.nucaInterleave = 64;
            break;
        }
        return c;
    }
};

} // namespace sys
} // namespace sf

#endif // SF_SYSTEM_CONFIG_HH
