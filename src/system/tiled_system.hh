/**
 * @file
 * TiledSystem: assembles the full CMP from a SystemConfig - mesh,
 * per-tile core + SE_core + L1/L2 + SE_L2 + L3 bank + SE_L3, corner
 * memory controllers, prefetchers per machine variant - runs a
 * workload to completion, and aggregates SimResults.
 */

#ifndef SF_SYSTEM_TILED_SYSTEM_HH
#define SF_SYSTEM_TILED_SYSTEM_HH

#include <atomic>
#include <functional>
#include <ostream>
#include <memory>
#include <vector>

#include "cpu/barrier.hh"
#include "cpu/core.hh"
#include "flt/se_l2.hh"
#include "flt/se_l3.hh"
#include "isa/op_source.hh"
#include "mem/l3_bank.hh"
#include "mem/mem_ctrl.hh"
#include "mem/phys_mem.hh"
#include "mem/priv_cache.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "prefetch/bingo.hh"
#include "prefetch/stride.hh"
#include "sim/annotations.hh"
#include "sim/checker.hh"
#include "sim/fault.hh"
#include "sim/interval_sampler.hh"
#include "sim/profile.hh"
#include "sim/shard.hh"
#include "sim/snapshot.hh"
#include "sim/stat_registry.hh"
#include "sim/watchdog.hh"
#include "system/config.hh"
#include "system/results.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace sys {

/** One fully assembled simulated machine. */
class TiledSystem
{
  public:
    explicit TiledSystem(const SystemConfig &cfg);
    ~TiledSystem();

    /** The shared address space all workload threads run in. */
    mem::AddressSpace &addressSpace() { return *_as; }
    /** Global-service queue (also the simulation clock at barriers). */
    EventQueue &eventQueue() { return _eq; }
    /** Tile-parallel engine: shard queues + the window loop. */
    sim::TileDomains &domains() { return *_domains; }
    /**
     * Worker threads actually used (cfg.threads clamped to the tile
     * count, forced to 1 by modes that need one execution context).
     */
    int effectiveThreads() const { return _domains->shards(); }
    const SystemConfig &config() const { return _cfg; }
    noc::Mesh &mesh() { return *_mesh; }

    /**
     * Attach one op source per tile (workload threads) and run to
     * completion (or the cycle limit).
     */
    SimResults run(
        const std::vector<std::shared_ptr<isa::OpSource>> &threads);

    /**
     * Write the full per-component statistics dump (the gem5
     * stats-file equivalent) to @p os.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Register every component's statistics with @p reg, one group per
     * component (tileN.core, tileN.priv, ..., mesh). Rebuilt on demand
     * because cores only exist once run() has been called.
     */
    void buildStatRegistry(stats::StatRegistry &reg) const;

    /**
     * Schema-versioned JSON stat dump: run config, SimResults
     * aggregates, every registered stat group, and the interval
     * sampler's time series (when sampling was enabled).
     */
    void dumpStatsJson(std::ostream &os, const SimResults &r) const;

    /** Interval sampler of the last run(); null when sampling is off. */
    const stats::IntervalSampler *sampler() const { return _sampler.get(); }

    /** The --profile latency profiler; null unless cfg.profile. */
    prof::Profiler *profiler() { return _prof.get(); }

    /**
     * Standalone profile report (requires cfg.profile): per-(tile,
     * stream, phase) latency histograms, per-component top-down cycle
     * accounts, and the NoC heatmaps (interval frames when sampling
     * was on, end-of-run totals always). Deterministic: repeated runs
     * byte-compare.
     */
    void dumpProfileJson(std::ostream &os, const SimResults &r) const;

    /**
     * Compact profile summary for the sweep merge: aggregate top-down
     * split plus per-phase p95 across all tiles and streams.
     */
    void dumpProfileSummaryJson(std::ostream &os) const;

    /** Component access for tests. */
    mem::PrivCache &privCache(TileId t) { return *_priv[t]; }
    mem::L3Bank &l3Bank(TileId t) { return *_l3[t]; }
    cpu::Core &core(TileId t) { return *_cores[t]; }
    stream::SECore *seCore(TileId t) { return _seCores[t].get(); }
    flt::SEL2 *seL2(TileId t) { return _seL2[t].get(); }
    flt::SEL3 *seL3(TileId t) { return _seL3[t].get(); }

    /** Effective check level (SF_CHECK overrides the config). */
    CheckLevel checkLevel() const { return _checkLevel; }
    Checker *checker() { return _checker.get(); }
    Watchdog *watchdog() { return _watchdog.get(); }
    /** Null unless message-level fault injection is configured. */
    FaultInjector *faultInjector() { return _faults.get(); }

    /** The --verify data plane; null unless cfg.verify is set. */
    verify::DataPlane *verifyPlane() { return _verify.get(); }

    /** Host wall-clock seconds spent in the last run()'s event loop. */
    double hostSeconds() const { return _hostSeconds; }

    /**
     * Include the nondeterministic `host` stat group (wall-clock and
     * events/sec) in dumps. Off by default: stats.json is part of the
     * determinism contract (repeated runs byte-compare, the sweep
     * merges per-point dumps), so wall-clock numbers only appear when
     * a consumer opts in (SimResults always carries them regardless).
     */
    void includeHostStats(bool on) { _hostStatsInJson = on; }

    // --- checkpoint/restore (DESIGN.md §4j, sys_snapshot.cc) ---
    /**
     * Serialize all data-centric architectural state at window
     * boundary @p now into an sf-snap-v1 snapshot: META (config
     * compatibility fields + anchor tick), PROGRESS, PHYSMEM,
     * ADDRSPACE, CACHES, L3DIR, STREAMS (SE_L2 floated views + gen
     * counters, SE_L3 residents + replay-filter frontiers), NOC,
     * STATS, RNG. Field-wise encoding only (sflint S2).
     */
    snap::Snapshot captureSnapshot(Tick now);

    /** captureSnapshot() + atomic write to @p path. */
    void writeCheckpoint(const std::string &path, Tick now);

    /**
     * Validate the snapshot's META section against this config
     * (fatal exit 68 naming the first mismatched field) and return
     * the anchor tick the snapshot was captured at.
     */
    Tick restoreAnchor(const snap::Snapshot &s);

    /**
     * Re-capture at @p now (the anchor, reached by deterministic
     * replay) and byte-compare every section against @p s; any
     * difference is a fatal exit 68 naming the diverging section.
     */
    void verifyRestore(const snap::Snapshot &s, Tick now);

  private:
    void buildTiles();
    /** Mesh sink: runs in @p tile's shard execution context. */
    void dispatch(TileId tile, const noc::MsgPtr &msg) SF_SHARD_LOCAL;
    /** Create the interval sampler and register its standard probes. */
    void startSampler();
    SimResults collect(bool hit_limit);

    /**
     * Assemble the robustness layer: fault-injecting mesh send
     * interceptor, invariant checker with the protocol checks,
     * forward-progress watchdog, and the diagnostic hooks fatal()
     * replays.
     */
    void setupRobustness();
    void registerInvariantChecks();
    void registerDiagnostics();
    /**
     * After the cores finish, pump the remaining events so in-flight
     * writebacks / stream ends complete, then verify nothing is stuck:
     * MSHRs, delayed evictions, directory transactions, resident
     * stream contexts and tracked NoC packets must all be gone, and
     * every registered invariant must still hold. Only runs when
     * checking is enabled, so default runs stay cycle-identical.
     */
    void drainAndCheck();

    SystemConfig _cfg;
    /** Global-service queue (watchdog / checker / sampler / barrier). */
    EventQueue _eq;
    /**
     * Shard partition and window loop; every per-tile component is
     * wired to _domains->queueOf(tile). Destroyed after the
     * components (declared before them), created first in the ctor.
     */
    std::unique_ptr<sim::TileDomains> _domains;
    mem::PhysMem _physMem;
    std::unique_ptr<mem::AddressSpace> _as;
    std::unique_ptr<noc::Mesh> _mesh;
    std::unique_ptr<mem::NucaMap> _nuca;
    std::unique_ptr<cpu::BarrierController> _barrier;

    std::vector<std::unique_ptr<mem::TlbHierarchy>> _tlbs;
    std::vector<std::unique_ptr<mem::PrivCache>> _priv;
    std::vector<std::unique_ptr<mem::L3Bank>> _l3;
    std::vector<std::unique_ptr<mem::MemCtrl>> _memCtrls; // by tile
    std::vector<std::unique_ptr<stream::SECore>> _seCores;
    std::vector<std::unique_ptr<flt::SEL2>> _seL2;
    std::vector<std::unique_ptr<flt::SEL3>> _seL3;
    std::vector<std::unique_ptr<mem::PrefetchObserverIf>> _l1Pf;
    std::vector<std::unique_ptr<mem::PrefetchObserverIf>> _l2Pf;
    std::vector<std::unique_ptr<cpu::Core>> _cores;
    std::vector<std::shared_ptr<isa::OpSource>> _threads;
    std::unique_ptr<stats::IntervalSampler> _sampler;
    /** Latency-attribution profiler; null unless cfg.profile. */
    std::unique_ptr<prof::Profiler> _prof;

    CheckLevel _checkLevel = CheckLevel::Off;
    std::unique_ptr<verify::DataPlane> _verify;
    std::unique_ptr<FaultInjector> _faults;
    std::unique_ptr<Checker> _checker;
    std::unique_ptr<Watchdog> _watchdog;
    /** Diagnostic-hook ids to unregister on destruction. */
    std::vector<int> _diagHooks;

    /** Incremented from shard threads as cores drain; read at window
     *  boundaries (a partition-invariant point), so the stop decision
     *  is identical for every worker count. */
    std::atomic<int> _coresDone{0};
    double _hostSeconds = 0.0;
    bool _hostStatsInJson = false;
};

} // namespace sys
} // namespace sf

#endif // SF_SYSTEM_TILED_SYSTEM_HH
