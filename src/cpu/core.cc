#include "cpu/core.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace cpu {

namespace {

/** Refill the fetch buffer when it drops below this many ops. */
constexpr size_t fetchLowWater = 512;

} // namespace

Core::Core(const std::string &name, EventQueue &eq, TileId tile,
           const CoreConfig &cfg, mem::PrivCache &cache,
           mem::TlbHierarchy &tlb, mem::AddressSpace &as,
           BarrierController *barrier, isa::OpSource *source)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _cache(cache),
      _tlb(tlb), _as(as), _barrier(barrier), _source(source),
      _completedRing(1 << 16, 1)
{
    _fu.intDivBusy.assign(static_cast<size_t>(cfg.numIntMultDiv), 0);
    _fu.fpDivBusy.assign(static_cast<size_t>(cfg.numFpDiv), 0);
}

void
Core::setVerify(verify::DataPlane *v)
{
    _verify = v;
    if (_verify && _valueRing.empty())
        _valueRing.assign(1 << 16, 0);
}

/**
 * Commit-order shadow interpretation: values are computed when an op
 * commits, in program order, so older same-address stores are always
 * either still in the tile's overlay or already performed — no
 * issue-time memory-order hazards to reason about.
 */
uint64_t
Core::verifyValueFor(const RobEntry &e)
{
    using isa::OpKind;
    uint64_t srcs[isa::maxSrcs] = {0, 0, 0};
    for (int i = 0; i < e.op.numSrcs; ++i)
        srcs[i] = e.op.srcs[i]
                      ? _valueRing[(e.seq - e.op.srcs[i]) & 0xffff]
                      : 0;
    switch (e.op.kind) {
      case OpKind::IntAlu:
      case OpKind::IntMult:
      case OpKind::IntDiv:
      case OpKind::FpAlu:
      case OpKind::FpDiv:
      case OpKind::Nop:
        return verify::computeValue(e.op.kind, e.op.pc, srcs,
                                    e.op.numSrcs);
      case OpKind::Load: {
        uint16_t size = e.op.size ? e.op.size : 4;
        return _verify->loadValue(_tile, e.op.addr, size);
      }
      case OpKind::Store:
      case OpKind::StreamStore:
        return verify::storeValue(e.op.kind, e.op.pc, srcs,
                                  e.op.numSrcs);
      case OpKind::StreamLoad:
        return _se ? _se->verifyFoldElems(e.op.sid, e.streamFirstElem,
                                          e.op.elems)
                   : 0;
      default:
        return 0;
    }
}

void
Core::start()
{
    SF_DPRINTF(Core, "start");
    refillFetchBuffer();
    wake();
}

void
Core::wake()
{
    if (_done || _ticking)
        return;
    _ticking = true;
    _sleeping = false;
    // Completion events (Delivery priority) run before pipeline ticks
    // (ClockTick priority) within a cycle, so a core woken by a
    // completion may still tick in the SAME cycle - as long as it has
    // not ticked this cycle already.
    Cycles delay = (_lastTickAt == curTick()) ? 1 : 0;
    scheduleIn(delay, [this]() { tick(); }, EventPriority::ClockTick);
}

void
Core::tick()
{
    _ticking = false;
    _lastTickAt = curTick();
    if (_done)
        return;

    // Per-cycle FU counters reset; dividers keep their busy horizon.
    _fu.intAluUsed = 0;
    _fu.multDivUsed = 0;
    _fu.fpAluUsed = 0;
    _fu.fpDivUsed = 0;
    _fu.memPortsUsed = 0;

    _dispatchCreditStall = false;
    bool committed = commitStage();
    bool progress = committed;
    progress |= drainStoreBuffer();
    progress |= issueStage();
    progress |= dispatchStage();

    finishIfDrained();
    if (_done) {
        if (_td) {
            _td->tickAt(curTick(), committed ? prof::Bucket::Retired
                                             : prof::Bucket::Idle);
            _td->setGapReason(prof::Bucket::Idle);
        }
        return;
    }

    if (_td)
        _td->tickAt(curTick(), classifyCycle(committed));

    if (progress || _sbInUse > 0) {
        wake();
    } else {
        // Quiesce: every later state change arrives via a completion
        // callback (memory, SE FIFO, barrier, FU horizon), and each of
        // those calls wake(). The slept-through cycles are charged to
        // whatever we are waiting on right now.
        if (_td)
            _td->setGapReason(classifyCycle(false));
        _sleeping = true;
    }
}

prof::Bucket
Core::classifyCycle(bool committed) const
{
    if (committed)
        return prof::Bucket::Retired;
    if (!_rob.empty()) {
        const RobEntry &h = _rob.front();
        if (h.op.kind == isa::OpKind::StreamLoad && !h.completed &&
            !h.dataReady) {
            return prof::Bucket::StalledSebuf;
        }
    }
    if (_dispatchCreditStall)
        return prof::Bucket::StalledCredit;
    if (!_rob.empty() || _sbInUse > 0 || !_pendingStores.empty())
        return prof::Bucket::StalledData;
    return prof::Bucket::Idle;
}

bool
Core::depsCompleted(const RobEntry &e) const
{
    for (int i = 0; i < e.op.numSrcs; ++i) {
        uint64_t dep_seq = e.seq - e.op.srcs[i];
        if (!_completedRing[dep_seq & 0xffff])
            return false;
    }
    return true;
}

void
Core::markCompleted(uint64_t seq)
{
    _completedRing[seq & 0xffff] = 1;
}

void
Core::complete(RobEntry &e, Cycles extra_latency)
{
    uint64_t seq = e.seq;
    if (extra_latency == 0) {
        e.completed = true;
        markCompleted(seq);
        return;
    }
    scheduleIn(extra_latency, [this, seq]() {
        // The entry may have moved in the deque; find it by seq.
        for (auto &re : _rob) {
            if (re.seq == seq) {
                re.completed = true;
                break;
            }
        }
        markCompleted(seq);
        wake();
    });
}

bool
Core::fuAvailable(isa::OpKind kind, Tick now, Tick &earliest)
{
    using isa::OpKind;
    switch (fuClassOf(kind)) {
      case isa::FuClass::IntAlu:
        return _fu.intAluUsed < _cfg.numIntAlu;
      case isa::FuClass::FpAlu:
        return _fu.fpAluUsed < _cfg.numFpAlu;
      case isa::FuClass::IntMultDiv: {
        if (_fu.multDivUsed >= _cfg.numIntMultDiv)
            return false;
        if (kind == OpKind::IntMult)
            return true;
        for (Tick t : _fu.intDivBusy) {
            if (t <= now)
                return true;
            earliest = earliest ? std::min(earliest, t) : t;
        }
        return false;
      }
      case isa::FuClass::FpDiv: {
        if (_fu.fpDivUsed >= _cfg.numFpDiv)
            return false;
        for (Tick t : _fu.fpDivBusy) {
            if (t <= now)
                return true;
            earliest = earliest ? std::min(earliest, t) : t;
        }
        return false;
      }
      case isa::FuClass::Mem:
        return _fu.memPortsUsed < _cfg.memPorts;
      case isa::FuClass::None:
        return true;
    }
    return true;
}

void
Core::fuOccupy(isa::OpKind kind, Tick now)
{
    using isa::OpKind;
    switch (fuClassOf(kind)) {
      case isa::FuClass::IntAlu:
        ++_fu.intAluUsed;
        break;
      case isa::FuClass::FpAlu:
        ++_fu.fpAluUsed;
        break;
      case isa::FuClass::IntMultDiv:
        ++_fu.multDivUsed;
        if (kind == OpKind::IntDiv) {
            for (auto &t : _fu.intDivBusy) {
                if (t <= now) {
                    t = now + opLatency(kind);
                    break;
                }
            }
        }
        break;
      case isa::FuClass::FpDiv:
        ++_fu.fpDivUsed;
        for (auto &t : _fu.fpDivBusy) {
            if (t <= now) {
                t = now + opLatency(kind);
                break;
            }
        }
        break;
      case isa::FuClass::Mem:
        ++_fu.memPortsUsed;
        break;
      case isa::FuClass::None:
        break;
    }
}

bool
Core::tryIssue(RobEntry &e)
{
    using isa::OpKind;
    if (!depsCompleted(e))
        return false;

    Tick now = curTick();
    Tick earliest = 0;
    if (!fuAvailable(e.op.kind, now, earliest)) {
        if (earliest > now) {
            scheduleIn(earliest - now, [this]() { wake(); });
        }
        return false;
    }

    switch (e.op.kind) {
      case OpKind::IntAlu:
      case OpKind::IntMult:
      case OpKind::IntDiv:
      case OpKind::FpAlu:
      case OpKind::FpDiv:
        fuOccupy(e.op.kind, now);
        e.issued = true;
        complete(e, opLatency(e.op.kind));
        return true;

      case OpKind::Load: {
        fuOccupy(e.op.kind, now);
        e.issued = true;
        uint64_t seq = e.seq;
        issueMemAccess(e.op.addr, e.op.size, false, e.op.pc,
                       e.op.streamEligible, [this, seq]() {
                           for (auto &re : _rob) {
                               if (re.seq == seq) {
                                   re.completed = true;
                                   break;
                               }
                           }
                           markCompleted(seq);
                           wake();
                       });
        return true;
      }

      case OpKind::Store: {
        fuOccupy(e.op.kind, now);
        e.issued = true;
        e.storeVaddr = e.op.addr;
        // Address generation + data ready; the write happens at commit
        // through the store buffer.
        complete(e, 1);
        return true;
      }

      case OpKind::StreamLoad: {
        if (!e.dataReady)
            return false;
        fuOccupy(e.op.kind, now);
        e.issued = true;
        complete(e, 1); // FIFO read
        return true;
      }

      case OpKind::StreamStore: {
        fuOccupy(e.op.kind, now);
        e.issued = true;
        complete(e, 1);
        return true;
      }

      case OpKind::StreamCfg:
      case OpKind::StreamStep:
      case OpKind::StreamEnd:
      case OpKind::Nop:
        e.issued = true;
        complete(e, 1);
        return true;

      case OpKind::Barrier: {
        // Execute only at the ROB head with the store buffer drained.
        // (Younger stores may hold SQ entries speculatively; only the
        // older, committed stores in the store buffer must drain.)
        if (&e != &_rob.front() || _sbInUse > 0)
            return false;
        if (!e.barrierSignalled) {
            e.barrierSignalled = true;
            e.issued = true;
            uint64_t seq = e.seq;
            if (_barrier) {
                _barrier->arrive(_tile, [this, seq]() {
                    for (auto &re : _rob) {
                        if (re.seq == seq) {
                            re.completed = true;
                            break;
                        }
                    }
                    markCompleted(seq);
                    wake();
                });
            } else {
                complete(e, 1);
            }
            return true;
        }
        return false;
      }
    }
    return false;
}

bool
Core::issueStage()
{
    int issued = 0;
    int scanned_unissued = 0;
    bool in_order = _cfg.kind == CoreConfig::Kind::InOrder;

    for (auto &e : _rob) {
        if (issued >= _cfg.width)
            break;
        if (e.issued)
            continue;
        ++scanned_unissued;
        if (scanned_unissued > _cfg.iqSize)
            break;
        bool ok = tryIssue(e);
        if (ok) {
            ++issued;
        } else if (in_order) {
            break; // strict program-order issue
        }
    }
    return issued > 0;
}

bool
Core::commitStage()
{
    using isa::OpKind;
    int committed = 0;
    while (committed < _cfg.width && !_rob.empty()) {
        RobEntry &e = _rob.front();
        if (!e.completed)
            break;

        // Shadow value at commit (idempotent: a store stalled on a
        // full SB recomputes the same value next cycle).
        uint64_t vval = 0;
        if (_verify) {
            vval = verifyValueFor(e);
            _valueRing[e.seq & 0xffff] = vval;
        }

        switch (e.op.kind) {
          case OpKind::Store:
          case OpKind::StreamStore: {
            if (_sbInUse >= _cfg.sbSize) {
                ++_stats.sbFullStalls;
                goto done_commit;
            }
            ++_sbInUse;
            Addr vaddr = e.storeVaddr;
            uint16_t size = e.op.size ? e.op.size : 4;
            if (_se)
                _se->storeCommitted(vaddr, size);
            std::shared_ptr<verify::StoreRec> vrec;
            if (_verify) {
                vrec = _verify->storeCommitted(
                    _tile, vaddr, size, vval, e.op.pc, e.op.sid,
                    e.op.kind == OpKind::StreamStore);
            }
            // The SB entry drains via drainStoreBuffer(); we record the
            // pending write and issue it from there.
            _pendingStores.push_back({vaddr, size, std::move(vrec)});
            --_sqInUse;
            if (e.op.kind == OpKind::Store)
                ++_stats.committedStores;
            else
                ++_stats.committedStreamStores;
            break;
          }
          case OpKind::Load:
            --_lqInUse;
            ++_stats.committedLoads;
            break;
          case OpKind::StreamLoad:
            --_lqInUse;
            ++_stats.committedStreamLoads;
            break;
          case OpKind::StreamCfg:
            if (_se) {
                _se->configure(
                    _source->streamConfigGroup(e.op.cfgIdx));
            }
            break;
          case OpKind::StreamStep:
            if (_se)
                _se->releaseAtCommit(e.op.sid, e.op.elems);
            break;
          case OpKind::StreamEnd:
            if (_se)
                _se->end(e.op.sid);
            break;
          case OpKind::Barrier:
            ++_stats.barriers;
            SF_DPRINTF(Core, "barrier %llu committed",
                       (unsigned long long)_stats.barriers.value());
            break;
          case OpKind::IntAlu:
          case OpKind::IntMult:
          case OpKind::IntDiv:
            ++_stats.intOps;
            break;
          case OpKind::FpAlu:
          case OpKind::FpDiv:
            ++_stats.fpOps;
            break;
          default:
            break;
        }

        ++_stats.committedOps;
        _rob.pop_front();
        ++committed;
    }
  done_commit:
    return committed > 0;
}

bool
Core::drainStoreBuffer()
{
    if (_pendingStores.empty())
        return false;
    PendingStore ps = _pendingStores.front();
    _pendingStores.pop_front();

    issueMemAccess(
        ps.vaddr, ps.size, true, 0, false,
        [this]() {
            --_sbInUse;
            wake();
        },
        std::move(ps.vrec));
    return true;
}

void
Core::issueMemAccess(Addr vaddr, uint16_t size, bool is_write,
                     uint32_t pc, bool stream_eligible,
                     std::function<void()> on_done,
                     std::shared_ptr<verify::StoreRec> vrec)
{
    // Split on virtual line boundaries: pages are scrambled in the
    // physical space, so each piece must be translated separately.
    int pieces = 1 +
                 (lineAlign(vaddr) != lineAlign(vaddr + size - 1) ? 1
                                                                  : 0);
    std::shared_ptr<int> remaining;
    std::shared_ptr<std::function<void()>> joined;
    if (pieces > 1) {
        remaining = std::make_shared<int>(pieces);
        joined = std::make_shared<std::function<void()>>(
            std::move(on_done));
    }

    Addr piece_addr = vaddr;
    uint16_t left = size;
    for (int i = 0; i < pieces; ++i) {
        uint16_t piece_size = static_cast<uint16_t>(std::min<uint64_t>(
            left, lineAlign(piece_addr) + lineBytes - piece_addr));
        Cycles tlb_lat = 0;
        Addr paddr = _tlb.translate(_as, piece_addr, tlb_lat);

        mem::Access a;
        a.kind = mem::AccessKind::Demand;
        a.vaddr = piece_addr;
        a.paddr = paddr;
        a.size = piece_size;
        a.isWrite = is_write;
        a.pc = pc;
        a.streamEligible = stream_eligible;
        a.vstore = vrec;
        if (pieces > 1) {
            a.onDone = [remaining, joined]() {
                if (--*remaining == 0 && *joined)
                    (*joined)();
            };
        } else {
            a.onDone = std::move(on_done);
        }
        if (_prof) {
            // sflint: allow(T1, profiler record handle, not a tick)
            uint32_t pid = _prof->open(_tile, invalidStream, curTick());
            if (pid) {
                a.profId = pid;
                a.onDone = [this, pid,
                            inner = std::move(a.onDone)]() {
                    _prof->close(_tile, pid, curTick());
                    if (inner)
                        inner();
                };
            }
        }
        if (tlb_lat == 0) {
            _cache.access(std::move(a));
        } else {
            scheduleIn(tlb_lat, [this, a = std::move(a)]() mutable {
                _cache.access(std::move(a));
            });
        }
        piece_addr += piece_size;
        left = static_cast<uint16_t>(left - piece_size);
    }
}

bool
Core::dispatchStage()
{
    using isa::OpKind;
    int dispatched = 0;
    while (dispatched < _cfg.width) {
        if (static_cast<int>(_rob.size()) >= _cfg.robSize) {
            ++_stats.robFullStalls;
            break;
        }
        if (_fetchBuf.empty()) {
            refillFetchBuffer();
            if (_fetchBuf.empty())
                break;
        }

        isa::Op &head = _fetchBuf.front();

        // Stream use dispatch needs SE acceptance: FIFO space, and no
        // in-flight (dispatched, uncommitted) reconfiguration.
        if (_se &&
            (head.kind == OpKind::StreamLoad ||
             head.kind == OpKind::StreamStep ||
             head.kind == OpKind::StreamStore) &&
            !_se->canAcceptUse(head.sid)) {
            _dispatchCreditStall = true;
            break;
        }

        // LQ/SQ entries are reserved in program order at dispatch
        // (rename), exactly so younger independent loads cannot
        // starve an older one.
        bool is_load = head.kind == OpKind::Load ||
                       head.kind == OpKind::StreamLoad;
        bool is_store = head.kind == OpKind::Store ||
                        head.kind == OpKind::StreamStore;
        if (is_load && _lqInUse >= _cfg.lqSize)
            break;
        if (is_store && _sqInUse >= _cfg.sqSize)
            break;
        if (is_load)
            ++_lqInUse;
        if (is_store)
            ++_sqInUse;

        RobEntry e;
        e.op = head;
        e.seq = _nextSeq++;
        _completedRing[e.seq & 0xffff] = 0;
        _fetchBuf.pop_front();

        // Push first: SE callbacks may fire synchronously (data
        // already in the FIFO) and must find the ROB entry.
        _rob.push_back(std::move(e));
        RobEntry &re_new = _rob.back();

        // Dispatch-time decoupled-stream actions (iteration map).
        if (_se) {
            switch (re_new.op.kind) {
              case OpKind::StreamLoad: {
                uint64_t seq = re_new.seq;
                re_new.streamFirstElem =
                    _se->requestElems(re_new.op.sid, re_new.op.elems,
                                  [this, seq]() {
                                      for (auto &re : _rob) {
                                          if (re.seq == seq) {
                                              re.dataReady = true;
                                              break;
                                          }
                                      }
                                      wake();
                                  });
                break;
              }
              case OpKind::StreamStep:
                _se->step(re_new.op.sid, re_new.op.elems);
                break;
              case OpKind::StreamStore:
                re_new.storeVaddr = _se->storeAddr(re_new.op.sid);
                break;
              case OpKind::StreamCfg:
                _se->noteConfigDispatched(
                    _source->streamConfigGroup(re_new.op.cfgIdx));
                break;
              default:
                break;
            }
        } else {
            sf_assert(!isStreamOp(re_new.op.kind) ||
                          re_new.op.kind == OpKind::StreamCfg,
                      "stream op with no stream engine");
        }
        ++dispatched;
    }
    return dispatched > 0;
}

void
Core::debugDump(std::FILE *f) const
{
    std::fprintf(f,
                 "  %s rob=%zu fetchBuf=%zu lq=%d sq=%d sb=%d "
                 "pendStores=%zu sleeping=%d ticking=%d\n",
                 name().c_str(), _rob.size(), _fetchBuf.size(),
                 _lqInUse, _sqInUse, _sbInUse, _pendingStores.size(),
                 _sleeping, _ticking);
    size_t shown = 0;
    for (const auto &e : _rob) {
        if (shown++ >= 4)
            break;
        std::fprintf(f,
                     "    head op kind=%d sid=%d seq=%llu issued=%d "
                     "completed=%d dataReady=%d elems=%u srcs=[%u %u "
                     "%u] deps=%d\n",
                     (int)e.op.kind, e.op.sid,
                     (unsigned long long)e.seq, e.issued, e.completed,
                     e.dataReady, e.op.elems, e.op.srcs[0],
                     e.op.srcs[1], e.op.srcs[2], depsCompleted(e));
    }
}

void
Core::refillFetchBuffer()
{
    if (_sourceExhausted)
        return;
    std::vector<isa::Op> chunk;
    while (_fetchBuf.size() + chunk.size() < fetchLowWater) {
        size_t n = _source->refill(chunk);
        if (n == 0) {
            _sourceExhausted = true;
            break;
        }
    }
    for (auto &op : chunk)
        _fetchBuf.push_back(op);
}

void
Core::finishIfDrained()
{
    if (_done || !_sourceExhausted || !_fetchBuf.empty() ||
        !_rob.empty() || _sbInUse > 0 || !_pendingStores.empty()) {
        return;
    }
    _done = true;
    _stats.doneTick = curTick();
    SF_DPRINTF(Core, "done: %llu ops committed",
               (unsigned long long)_stats.committedOps.value());
    if (_barrier)
        _barrier->retire(_tile);
    if (onDone)
        onDone();
}

} // namespace cpu
} // namespace sf
