/**
 * @file
 * Execution-driven core models: a scoreboarded in-order core (IO4) and
 * a dataflow-scheduled out-of-order core (OOO4 / OOO8).
 *
 * The core consumes the stream-annotated op sequence of one OpSource.
 * Dependences are explicit (relative back-references), so the OOO model
 * issues any ready op inside its ROB window subject to IQ/LQ/SQ/FU and
 * width limits, while the in-order model issues strictly in program
 * order with overlapping completion (loads stall at first use).
 *
 * Decoupled-stream semantics follow §III: the iteration map advances at
 * dispatch (program order), stream FIFO data is consumed by
 * stream_load, and architectural effects (configure, end, FIFO
 * release, store alias checks) happen at commit.
 */

#ifndef SF_CPU_CORE_HH
#define SF_CPU_CORE_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/barrier.hh"
#include "cpu/core_config.hh"
#include "cpu/stream_engine_if.hh"
#include "isa/op_source.hh"
#include "mem/priv_cache.hh"
#include "mem/tlb.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace sf {

namespace verify {
class DataPlane;
struct StoreRec;
} // namespace verify

namespace cpu {

struct CoreStats
{
    stats::Scalar committedOps;
    stats::Scalar committedLoads, committedStores;
    stats::Scalar committedStreamLoads, committedStreamStores;
    stats::Scalar intOps, fpOps;
    stats::Scalar barriers;
    /** Cycle the core finished its op stream. */
    Tick doneTick = 0;
    stats::Scalar robFullStalls, sbFullStalls;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("committedOps", &committedOps);
        g.regScalar("committedLoads", &committedLoads);
        g.regScalar("committedStores", &committedStores);
        g.regScalar("committedStreamLoads", &committedStreamLoads);
        g.regScalar("committedStreamStores", &committedStreamStores);
        g.regScalar("intOps", &intOps);
        g.regScalar("fpOps", &fpOps);
        g.regScalar("barriers", &barriers);
        g.regScalar("robFullStalls", &robFullStalls);
        g.regScalar("sbFullStalls", &sbFullStalls);
    }
};

/** One hardware thread's pipeline. */
class Core : public SimObject
{
  public:
    Core(const std::string &name, EventQueue &eq, TileId tile,
         const CoreConfig &cfg, mem::PrivCache &cache,
         mem::TlbHierarchy &tlb, mem::AddressSpace &as,
         BarrierController *barrier, isa::OpSource *source);

    /** Attach the SE_core (required when the source emits stream ops). */
    void setStreamEngine(StreamEngineIf *se) { _se = se; }

    /**
     * Enable latency attribution: demand accesses get lifecycle
     * records and every pipeline cycle lands in this core's top-down
     * account (null = off, the default).
     */
    void
    setProfiler(prof::Profiler *p)
    {
        _prof = p;
        _td = p ? &p->topDown(name()) : nullptr;
    }

    /**
     * Attach the --verify data plane. Commit then runs an in-order
     * shadow interpreter: every op's value is computed at commit in
     * program order (verify/value.hh semantics), stores enter the
     * plane's overlay, and loads observe protocol-routed bytes.
     */
    void setVerify(verify::DataPlane *v);

    /** Begin execution (schedules the first pipeline tick). */
    void start();

    bool done() const { return _done; }
    CoreStats &stats() { return _stats; }
    const CoreStats &stats() const { return _stats; }
    TileId tile() const { return _tile; }
    const CoreConfig &config() const { return _cfg; }

    /** Invoked once when the op stream fully commits. */
    std::function<void()> onDone;

    /** Dump pipeline state (debugging aid). */
    void debugDump(std::FILE *f) const;

    /**
     * Wake the pipeline from quiescence (called by completion paths;
     * public so the stream engine can wake the core on FIFO refills).
     */
    void wake();

  private:
    struct RobEntry
    {
        isa::Op op;
        uint64_t seq = 0;
        bool issued = false;
        bool completed = false;
        /** StreamLoad: FIFO data available. */
        bool dataReady = false;
        /** Barrier: arrival signalled. */
        bool barrierSignalled = false;
        /** StreamStore/Store resolved virtual address. */
        Addr storeVaddr = 0;
        /** StreamLoad: first element index consumed (--verify). */
        uint64_t streamFirstElem = 0;
    };

    void tick();

    /** Returns true if any op was committed. */
    bool commitStage();
    /** Returns true if any op issued. */
    bool issueStage();
    /** Returns true if any op dispatched. */
    bool dispatchStage();
    /** Drain one store-buffer entry to the L1; true if one issued. */
    bool drainStoreBuffer();

    bool depsCompleted(const RobEntry &e) const;
    bool tryIssue(RobEntry &e);

    /** Top-down bucket for the cycle that just executed. */
    prof::Bucket classifyCycle(bool committed) const;

    /**
     * Issue a demand access, splitting on virtual line boundaries
     * (physical frames are scrambled, so each virtual line translates
     * independently).
     */
    void issueMemAccess(Addr vaddr, uint16_t size, bool is_write,
                        uint32_t pc, bool stream_eligible,
                        std::function<void()> on_done,
                        std::shared_ptr<verify::StoreRec> vrec = nullptr);

    /** --verify: value of @p e under the shared value semantics. */
    uint64_t verifyValueFor(const RobEntry &e);
    void complete(RobEntry &e, Cycles extra_latency);
    void markCompleted(uint64_t seq);

    void refillFetchBuffer();
    void finishIfDrained();

    /** FU availability this cycle. */
    struct FuState
    {
        int intAluUsed = 0;
        int multDivUsed = 0;
        int fpAluUsed = 0;
        int fpDivUsed = 0;
        int memPortsUsed = 0;
        /** Non-pipelined divider busy-until horizons. */
        std::vector<Tick> intDivBusy;
        std::vector<Tick> fpDivBusy;
    };

    bool fuAvailable(isa::OpKind kind, Tick now, Tick &earliest);
    void fuOccupy(isa::OpKind kind, Tick now);

    CoreConfig _cfg;
    TileId _tile;
    mem::PrivCache &_cache;
    mem::TlbHierarchy &_tlb;
    mem::AddressSpace &_as;
    BarrierController *_barrier;
    isa::OpSource *_source;
    StreamEngineIf *_se = nullptr;

    std::deque<RobEntry> _rob;
    std::deque<isa::Op> _fetchBuf;
    bool _sourceExhausted = false;

    /** Committed stores waiting to drain from the store buffer. */
    struct PendingStore
    {
        Addr vaddr;
        uint16_t size;
        /** --verify: overlay record to apply at the write point. */
        std::shared_ptr<verify::StoreRec> vrec;
    };
    std::deque<PendingStore> _pendingStores;

    /**
     * Completion ring indexed by seq % 2^16. Slots start "completed";
     * dispatch clears the slot, completion sets it. Works because the
     * in-flight window is far smaller than the 2^16 max back-reference.
     */
    std::vector<uint8_t> _completedRing;
    uint64_t _nextSeq = 1;

    /** --verify: committed value per seq (same indexing as above). */
    verify::DataPlane *_verify = nullptr;
    std::vector<uint64_t> _valueRing;

    /** In-flight load/store queue occupancy (freed at commit). */
    int _lqInUse = 0;
    int _sqInUse = 0;
    /** Store buffer entries draining to L1. */
    int _sbInUse = 0;

    FuState _fu;
    /** Cycle of the most recent pipeline tick (one tick per cycle). */
    Tick _lastTickAt = maxTick;
    bool _ticking = false;
    bool _sleeping = false;
    bool _done = false;

    prof::Profiler *_prof = nullptr;
    prof::TopDownAccount *_td = nullptr;
    /** Dispatch broke on SE flow-control credits this cycle. */
    bool _dispatchCreditStall = false;

    CoreStats _stats;
};

} // namespace cpu
} // namespace sf

#endif // SF_CPU_CORE_HH
