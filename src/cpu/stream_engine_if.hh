/**
 * @file
 * Interface between the core pipeline and the SE_core stream engine
 * (implemented in src/stream). Keeps cpu/ decoupled from stream/.
 */

#ifndef SF_CPU_STREAM_ENGINE_IF_HH
#define SF_CPU_STREAM_ENGINE_IF_HH

#include <functional>
#include <vector>

#include "isa/stream_pattern.hh"
#include "sim/types.hh"

namespace sf {
namespace cpu {

/**
 * What the core pipeline needs from SE_core.
 *
 * Dispatch-time calls implement the iteration map (decoder renaming):
 * they happen in program order. Commit-time calls make architectural
 * effects (configuration offload, FIFO release, alias checks) precise.
 */
class StreamEngineIf
{
  public:
    virtual ~StreamEngineIf() = default;

    /**
     * stream_cfg dispatched (program order): uses of these streams
     * must stall until the configuration commits, mirroring the
     * decoder's iteration-map update.
     */
    virtual void
    noteConfigDispatched(const std::vector<isa::StreamConfig> &group) = 0;

    /** stream_cfg committed: define this group of streams. */
    virtual void configure(const std::vector<isa::StreamConfig> &group) = 0;

    /** stream_end committed. */
    virtual void end(StreamId sid) = 0;

    /**
     * Dispatch of a stream_load consuming @p elems elements at the
     * current iteration of @p sid. @p on_ready fires when the data is
     * available in the FIFO (possibly immediately).
     * @return the first element index consumed (for bookkeeping).
     */
    virtual uint64_t requestElems(StreamId sid, uint16_t elems,
                                  std::function<void()> on_ready) = 0;

    /** Dispatch of a stream_step: advance the iteration map. */
    virtual void step(StreamId sid, uint16_t elems) = 0;

    /** Commit of a stream_step: elements can be freed from the FIFO. */
    virtual void releaseAtCommit(StreamId sid, uint16_t elems) = 0;

    /**
     * Dispatch of a stream_store at the current iteration: returns the
     * store's target address (SE-generated address).
     */
    virtual Addr storeAddr(StreamId sid) = 0;

    /**
     * A store is being committed: check the PEB / stream buffer for
     * aliasing prefetched elements (§III-B, §IV-E).
     */
    virtual void storeCommitted(Addr vaddr, uint16_t size) = 0;

    /** True if the SE can accept another in-flight element use. */
    virtual bool canAcceptUse(StreamId sid) const = 0;

    /**
     * --verify: fold the observed byte values of elements
     * [first, first+elems) of @p sid into one value (verify::foldBytes
     * over the concatenated element bytes). Non-pure so SE mocks and
     * non-verify builds need not implement it.
     */
    virtual uint64_t
    verifyFoldElems(StreamId sid, uint64_t first, uint16_t elems)
    {
        (void)sid;
        (void)first;
        (void)elems;
        return 0;
    }
};

} // namespace cpu
} // namespace sf

#endif // SF_CPU_STREAM_ENGINE_IF_HH
