/**
 * @file
 * Centralized barrier used by the OpenMP-style workloads.
 */

#ifndef SF_CPU_BARRIER_HH
#define SF_CPU_BARRIER_HH

#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/sim_object.hh"

namespace sf {
namespace cpu {

/**
 * All participating cores must arrive before any is released. Arrival
 * and release are modelled with a small fixed signalling latency.
 *
 * Under tile-parallel simulation the controller is a global service
 * (DESIGN.md §4i): arrivals and retirements are deferred to the window
 * barrier and applied in canonical (tick, tile) order — the order a
 * serial run would observe them in — because which arrival completes
 * an episode determines the release tick. The release itself executes
 * on the global queue; waiter wake-ups are re-injected into each
 * waiter's tile queue at exactly the release tick via deferWake().
 */
class BarrierController : public SimObject
{
  public:
    BarrierController(EventQueue &eq, int num_threads,
                      Cycles signal_latency = 32)
        : SimObject("barrier", eq), _numThreads(num_threads),
          _signalLatency(signal_latency)
    {}

    /** Route arrive/retire through the PDES engine (null = legacy). */
    void setDomains(sim::TileDomains *d) { _domains = d; }

    /**
     * Thread on @p tile arrives; @p on_release fires in @p tile's
     * execution context (after the signalling latency) once every
     * thread has arrived.
     */
    void
    arrive(TileId tile, std::function<void()> on_release)
    {
        if (_domains) {
            Tick when = _domains->queueOf(tile).curTick();
            _domains->postGlobal(
                when, tile,
                [this, tile, when, cb = std::move(on_release)]() mutable {
                    arriveNow(tile, when, std::move(cb));
                });
        } else {
            arriveNow(tile, curTick(), std::move(on_release));
        }
    }

    /** A thread that finished all its work stops participating. */
    void
    retire(TileId tile)
    {
        if (_domains) {
            Tick when = _domains->queueOf(tile).curTick();
            _domains->postGlobal(when, tile,
                                 [this, when]() { retireNow(when); });
        } else {
            retireNow(curTick());
        }
    }

    uint64_t episodes() const { return _episodes; }

  private:
    using Waiter = std::pair<TileId, std::function<void()>>;

    void
    arriveNow(TileId tile, Tick when, std::function<void()> on_release)
    {
        _waiters.emplace_back(tile, std::move(on_release));
        if (static_cast<int>(_waiters.size()) >= _numThreads)
            releaseEpisode(when);
    }

    void
    retireNow(Tick when)
    {
        --_numThreads;
        sf_assert(_numThreads >= 0, "barrier underflow");
        if (_numThreads > 0 &&
            static_cast<int>(_waiters.size()) == _numThreads) {
            // The retirement may complete a pending episode.
            releaseEpisode(when);
        }
    }

    void
    releaseEpisode(Tick when)
    {
        ++_episodes;
        auto waiters = std::move(_waiters);
        _waiters.clear();
        // Always a future tick relative to the current window
        // boundary: the boundary trails the completing event by less
        // than the PDES lookahead, which is < the signal latency.
        eventQueue().schedule(
            when + _signalLatency,
            [this, waiters = std::move(waiters)]() {
                for (const Waiter &w : waiters) {
                    if (_domains)
                        _domains->deferWake(w.first, w.second);
                    else
                        w.second();
                }
            });
    }

    int _numThreads;
    Cycles _signalLatency;
    sim::TileDomains *_domains = nullptr;
    std::vector<Waiter> _waiters;
    uint64_t _episodes = 0;
};

} // namespace cpu
} // namespace sf

#endif // SF_CPU_BARRIER_HH
