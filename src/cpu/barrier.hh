/**
 * @file
 * Centralized barrier used by the OpenMP-style workloads.
 */

#ifndef SF_CPU_BARRIER_HH
#define SF_CPU_BARRIER_HH

#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace sf {
namespace cpu {

/**
 * All participating cores must arrive before any is released. Arrival
 * and release are modelled with a small fixed signalling latency.
 */
class BarrierController : public SimObject
{
  public:
    BarrierController(EventQueue &eq, int num_threads,
                      Cycles signal_latency = 32)
        : SimObject("barrier", eq), _numThreads(num_threads),
          _signalLatency(signal_latency)
    {}

    /**
     * Thread arrives; @p on_release fires (after the signalling
     * latency) once every thread has arrived.
     */
    void
    arrive(std::function<void()> on_release)
    {
        _waiters.push_back(std::move(on_release));
        if (static_cast<int>(_waiters.size()) < _numThreads)
            return;
        ++_episodes;
        auto waiters = std::move(_waiters);
        _waiters.clear();
        scheduleIn(_signalLatency, [waiters = std::move(waiters)]() {
            for (const auto &w : waiters)
                w();
        });
    }

    /** A thread that finished all its work stops participating. */
    void
    retire()
    {
        --_numThreads;
        sf_assert(_numThreads >= 0, "barrier underflow");
        if (_numThreads > 0 &&
            static_cast<int>(_waiters.size()) == _numThreads) {
            // The retirement may complete a pending episode.
            ++_episodes;
            auto waiters = std::move(_waiters);
            _waiters.clear();
            scheduleIn(_signalLatency, [waiters = std::move(waiters)]() {
                for (const auto &w : waiters)
                    w();
            });
        }
    }

    uint64_t episodes() const { return _episodes; }

  private:
    int _numThreads;
    Cycles _signalLatency;
    std::vector<std::function<void()>> _waiters;
    uint64_t _episodes = 0;
};

} // namespace cpu
} // namespace sf

#endif // SF_CPU_BARRIER_HH
