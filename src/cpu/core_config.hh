/**
 * @file
 * Core model configurations matching Table III.
 */

#ifndef SF_CPU_CORE_CONFIG_HH
#define SF_CPU_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace sf {
namespace cpu {

struct CoreConfig
{
    enum class Kind
    {
        InOrder,
        OutOfOrder,
    };

    Kind kind = Kind::OutOfOrder;
    /** Fetch/issue/commit width. */
    int width = 4;
    /** Instruction queue: max in-flight not-yet-issued ops. */
    int iqSize = 24;
    /** Reorder-buffer (instruction window) size. */
    int robSize = 96;
    int lqSize = 24;
    int sqSize = 24;
    /** Store buffer entries draining to the L1. */
    int sbSize = 24;

    // Functional units (Table III; x2 for OOO8).
    int numIntAlu = 4;
    int numIntMultDiv = 2;
    int numFpAlu = 2;
    int numFpDiv = 2;
    /** L1 cache ports (accesses issued per cycle). */
    int memPorts = 2;

    /** SE_core load FIFO capacity in bytes (256B/1kB/2kB). */
    uint32_t seFifoBytes = 1024;
    /** Max simultaneously configured streams. */
    int seMaxStreams = 12;

    std::string label = "OOO4";

    /** 4-wide in-order core (IO4). */
    static CoreConfig
    io4()
    {
        CoreConfig c;
        c.kind = Kind::InOrder;
        c.width = 4;
        c.iqSize = 10;
        c.robSize = 16; // completion window for the scoreboard
        c.lqSize = 4;
        c.sqSize = 4;
        c.sbSize = 10;
        c.seFifoBytes = 256;
        c.label = "IO4";
        return c;
    }

    /** 4-issue out-of-order core (OOO4). */
    static CoreConfig
    ooo4()
    {
        CoreConfig c;
        c.kind = Kind::OutOfOrder;
        c.width = 4;
        c.iqSize = 24;
        c.robSize = 96;
        c.lqSize = 24;
        c.sqSize = 24;
        c.sbSize = 24;
        c.seFifoBytes = 1024;
        c.label = "OOO4";
        return c;
    }

    /** 8-issue out-of-order core (OOO8). */
    static CoreConfig
    ooo8()
    {
        CoreConfig c;
        c.kind = Kind::OutOfOrder;
        c.width = 8;
        c.iqSize = 64;
        c.robSize = 224;
        c.lqSize = 72;
        c.sqSize = 56;
        c.sbSize = 56;
        c.numIntAlu = 8;
        c.numIntMultDiv = 4;
        c.numFpAlu = 4;
        c.numFpDiv = 4;
        c.memPorts = 4;
        c.seFifoBytes = 2048;
        c.label = "OOO8";
        return c;
    }
};

} // namespace cpu
} // namespace sf

#endif // SF_CPU_CORE_CONFIG_HH
