/**
 * @file
 * Functional reference executor for the --verify oracle.
 *
 * Runs the same stream-annotated kernel IR (sf::isa ops) the timing
 * simulator executes, directly over flat memory: no caches, no NoC,
 * no stream engines, no reordering. Threads execute program-order,
 * synchronized only at Barrier ops (streams live in
 * synchronization-free regions, §V-A, so phase-sequential execution
 * is a legal interleaving of any data-race-free kernel).
 *
 * Produces the golden final-memory image (as a copy-on-write line
 * overlay over the immutable initial PhysMem contents) and golden
 * per-stream trip counts, using the exact value semantics of
 * verify/value.hh — the same functions the core's commit-time shadow
 * interpreter uses, so any end-state disagreement is a data-movement
 * bug in the simulated protocol.
 */

#ifndef SF_VERIFY_REF_EXECUTOR_HH
#define SF_VERIFY_REF_EXECUTOR_HH

#include <map>
#include <memory>
#include <vector>

#include "isa/op_source.hh"
#include "mem/phys_mem.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace verify {

/** Golden result of one reference execution. */
struct RefResult
{
    /** Written virtual lines and their final bytes. */
    std::map<Addr, LineData> image;
    /** Golden trip counts: (thread, sid) -> stream_step elements. */
    std::map<std::pair<TileId, StreamId>, uint64_t> trips;
    /** Dynamic ops executed (sanity / reporting). */
    uint64_t opCount = 0;
    /** Barrier rounds executed. */
    uint64_t rounds = 0;
};

class RefExecutor
{
  public:
    explicit RefExecutor(mem::AddressSpace &as) : _as(as) {}

    /**
     * Execute @p sources (one per hardware thread, thread index ==
     * tile id) to completion and return the golden result. The
     * sources must be fresh (not the ones a TiledSystem consumed).
     */
    RefResult run(const std::vector<isa::OpSource *> &sources);

  private:
    struct RefStream
    {
        isa::StreamConfig cfg;
        uint64_t iter = 0; //!< elements stepped so far
    };

    struct Thread
    {
        isa::OpSource *src = nullptr;
        std::vector<isa::Op> buf;
        size_t bufPos = 0;
        uint64_t pos = 1; //!< dataflow position; mirrors OpEmitter
        std::vector<uint64_t> ring;
        std::map<StreamId, RefStream> streams;
        bool done = false;
    };

    /** Run @p t until it executes a Barrier or exhausts its source. */
    void runRound(TileId tid, Thread &t, RefResult &res);

    void execOp(TileId tid, Thread &t, const isa::Op &op, RefResult &res);

    Addr elemVaddr(Thread &t, const RefStream &s, uint64_t idx);

    void readBytes(Addr vaddr, uint8_t *out, size_t size);
    void writeBytes(Addr vaddr, const uint8_t *in, size_t size,
                    RefResult &res);

    mem::AddressSpace &_as;
    std::map<Addr, LineData> _image;
};

} // namespace verify
} // namespace sf

#endif // SF_VERIFY_REF_EXECUTOR_HH
