#include "verify/oracle.hh"

#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace sf {
namespace verify {

namespace {

std::string
hexBytes(const std::vector<uint8_t> &v)
{
    std::string s;
    char buf[4];
    for (size_t i = 0; i < v.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%02x", v[i]);
        if (i)
            s += ' ';
        s += buf;
    }
    return s;
}

} // namespace

std::string
Divergence::describe() const
{
    char buf[512];
    if (kind == Kind::TripCount) {
        std::snprintf(buf, sizeof(buf),
                      "stream trip-count mismatch: tile=%d sid=%d "
                      "golden=%llu observed=%llu",
                      tile, sid, (unsigned long long)goldenTrips,
                      (unsigned long long)observedTrips);
        return buf;
    }
    std::string s;
    std::snprintf(buf, sizeof(buf),
                  "memory divergence at vaddr=0x%llx%s%s "
                  "(%llu line(s) differ)\n",
                  (unsigned long long)vaddr, region.empty() ? "" : " in ",
                  region.c_str(), (unsigned long long)divergentLines);
    s += buf;
    std::snprintf(buf, sizeof(buf), "  golden:   %s\n",
                  hexBytes(golden).c_str());
    s += buf;
    std::snprintf(buf, sizeof(buf), "  observed: %s\n",
                  hexBytes(observed).c_str());
    s += buf;
    if (hasWriter) {
        std::snprintf(buf, sizeof(buf),
                      "  last writer: tile=%d pc=0x%x %s sid=%d "
                      "(commit token %llu)",
                      writer.tile, writer.pc,
                      writer.isStream ? "stream_store" : "store",
                      writer.sid, (unsigned long long)writer.token);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "  last writer: none (no simulated store ever "
                      "touched this line)");
    }
    s += buf;
    return s;
}

RefResult
runReference(mem::AddressSpace &as,
             const std::vector<isa::OpSource *> &sources)
{
    RefExecutor ref(as);
    return ref.run(sources);
}

std::optional<Divergence>
compareWithGolden(DataPlane &plane, const RefResult &golden,
                  mem::AddressSpace &as,
                  const std::vector<MemRegion> &regions)
{
    plane.finalize();

    // Diff every line either side ever wrote, in ascending vaddr order
    // so "first divergence" is deterministic.
    std::set<Addr> lines = plane.writtenVlines();
    for (const auto &kv : golden.image)
        lines.insert(kv.first);

    std::optional<Divergence> first;
    uint64_t bad_lines = 0;
    for (Addr vline : lines) {
        LineData want;
        auto git = golden.image.find(vline);
        if (git != golden.image.end()) {
            want = git->second;
        } else {
            Addr pline = as.translateExisting(vline);
            if (pline == invalidAddr)
                want.fill(0);
            else
                as.mem().read(pline, want.data(), lineBytes);
        }
        LineData got;
        plane.finalLine(vline, got.data());
        if (std::memcmp(want.data(), got.data(), lineBytes) == 0)
            continue;
        ++bad_lines;
        if (first)
            continue;
        size_t off = 0;
        while (want[off] == got[off])
            ++off;
        Divergence d;
        d.kind = Divergence::Kind::Memory;
        d.vaddr = vline + off;
        size_t wlen = std::min<size_t>(8, lineBytes - off);
        d.golden.assign(want.begin() + off, want.begin() + off + wlen);
        d.observed.assign(got.begin() + off, got.begin() + off + wlen);
        if (const MemRegion *r = findRegion(regions, d.vaddr))
            d.region = r->name;
        if (const WriterInfo *w = plane.lastWriter(vline)) {
            d.writer = *w;
            d.hasWriter = true;
        }
        first = d;
    }
    if (first) {
        first->divergentLines = bad_lines;
        return first;
    }

    // Memory agrees; cross-check stream trip counts.
    std::set<std::pair<TileId, StreamId>> keys;
    for (const auto &kv : golden.trips)
        keys.insert(kv.first);
    for (const auto &kv : plane.trips())
        keys.insert(kv.first);
    for (const auto &k : keys) {
        auto g = golden.trips.find(k);
        auto o = plane.trips().find(k);
        uint64_t gv = g == golden.trips.end() ? 0 : g->second;
        uint64_t ov = o == plane.trips().end() ? 0 : o->second;
        if (gv == ov)
            continue;
        Divergence d;
        d.kind = Divergence::Kind::TripCount;
        d.tile = k.first;
        d.sid = k.second;
        d.goldenTrips = gv;
        d.observedTrips = ov;
        return d;
    }
    return std::nullopt;
}

void
checkOrDie(DataPlane &plane, const RefResult &golden,
           mem::AddressSpace &as, const std::vector<MemRegion> &regions,
           const std::string &what)
{
    auto d = compareWithGolden(plane, golden, as, regions);
    if (!d)
        return;
    fatalCode(ExitCode::VerifyDivergence, "verify divergence in %s: %s",
              what.c_str(), d->describe().c_str());
}

} // namespace verify
} // namespace sf
