#include "verify/ref_executor.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "verify/value.hh"

namespace sf {
namespace verify {

namespace {
constexpr uint64_t kRingSize = 1ULL << 16;
constexpr uint64_t kRingMask = kRingSize - 1;
} // namespace

RefResult
RefExecutor::run(const std::vector<isa::OpSource *> &sources)
{
    RefResult res;
    std::vector<Thread> threads(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
        threads[i].src = sources[i];
        threads[i].ring.assign(kRingSize, 0);
    }

    // Phase-sequential schedule: each round runs every live thread up
    // to (and including) its next Barrier. Kernels emit matching
    // barriers, so this is a legal interleaving of any DRF program.
    bool any = true;
    while (any) {
        any = false;
        for (size_t i = 0; i < threads.size(); ++i) {
            if (threads[i].done)
                continue;
            runRound(static_cast<TileId>(i), threads[i], res);
            any = true;
        }
        if (any)
            ++res.rounds;
    }

    res.image = std::move(_image);
    _image.clear();
    return res;
}

void
RefExecutor::runRound(TileId tid, Thread &t, RefResult &res)
{
    while (true) {
        if (t.bufPos == t.buf.size()) {
            t.buf.clear();
            t.bufPos = 0;
            if (t.src->refill(t.buf) == 0) {
                t.done = true;
                return;
            }
        }
        const isa::Op &op = t.buf[t.bufPos++];
        execOp(tid, t, op, res);
        if (op.kind == isa::OpKind::Barrier)
            return;
    }
}

void
RefExecutor::execOp(TileId tid, Thread &t, const isa::Op &op,
                    RefResult &res)
{
    ++res.opCount;
    uint64_t srcs[isa::maxSrcs] = {0, 0, 0};
    for (int i = 0; i < op.numSrcs; ++i)
        srcs[i] = op.srcs[i]
                      ? t.ring[(t.pos - op.srcs[i]) & kRingMask]
                      : 0;

    uint64_t value = 0;
    switch (op.kind) {
      case isa::OpKind::IntAlu:
      case isa::OpKind::IntMult:
      case isa::OpKind::IntDiv:
      case isa::OpKind::FpAlu:
      case isa::OpKind::FpDiv:
      case isa::OpKind::Nop:
        value = computeValue(op.kind, op.pc, srcs, op.numSrcs);
        break;

      case isa::OpKind::Load: {
        uint16_t size = op.size ? op.size : 4;
        LineData buf;
        readBytes(op.addr, buf.data(), size);
        value = foldBytes(buf.data(), size);
        break;
      }

      case isa::OpKind::Store: {
        uint16_t size = op.size ? op.size : 4;
        value = storeValue(op.kind, op.pc, srcs, op.numSrcs);
        LineData buf;
        storeBytes(value, buf.data(), size);
        writeBytes(op.addr, buf.data(), size, res);
        break;
      }

      case isa::OpKind::StreamCfg: {
        for (const auto &cfg : t.src->streamConfigGroup(op.cfgIdx))
            t.streams[cfg.sid] = RefStream{cfg, 0};
        break;
      }

      case isa::OpKind::StreamLoad: {
        auto it = t.streams.find(op.sid);
        sf_assert(it != t.streams.end(),
                  "ref: stream_load on unconfigured sid=%d", op.sid);
        RefStream &s = it->second;
        uint32_t esz = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                         : s.cfg.affine.elemSize;
        std::vector<uint8_t> bytes(
            static_cast<size_t>(op.elems) * esz);
        for (uint16_t e = 0; e < op.elems; ++e) {
            Addr va = elemVaddr(t, s, s.iter + e);
            readBytes(va, bytes.data() + static_cast<size_t>(e) * esz,
                      esz);
        }
        value = foldBytes(bytes.data(), bytes.size());
        break;
      }

      case isa::OpKind::StreamStore: {
        auto it = t.streams.find(op.sid);
        sf_assert(it != t.streams.end(),
                  "ref: stream_store on unconfigured sid=%d", op.sid);
        RefStream &s = it->second;
        uint16_t size = op.size ? op.size : 4;
        value = storeValue(op.kind, op.pc, srcs, op.numSrcs);
        LineData buf;
        storeBytes(value, buf.data(), size);
        writeBytes(s.cfg.affine.elemAddr(s.iter), buf.data(), size, res);
        break;
      }

      case isa::OpKind::StreamStep: {
        auto it = t.streams.find(op.sid);
        if (it != t.streams.end()) {
            it->second.iter += op.elems;
            res.trips[{tid, op.sid}] += op.elems;
        }
        break;
      }

      case isa::OpKind::StreamEnd:
        t.streams.erase(op.sid);
        break;

      case isa::OpKind::Barrier:
        break;
    }

    t.ring[t.pos & kRingMask] = value;
    ++t.pos;
}

Addr
RefExecutor::elemVaddr(Thread &t, const RefStream &s, uint64_t idx)
{
    if (!s.cfg.hasIndirect)
        return s.cfg.affine.elemAddr(idx);
    // Indirect chase mirrors SECore::elemAddr / SEL2::elemVaddr: the
    // index array is read from the *raw* PhysMem, never from computed
    // state — the simulator itself chases indices functionally, so
    // index arrays are init-only by construction.
    uint32_t w_len = std::max<uint32_t>(1, s.cfg.indirect.wLen);
    uint64_t parent_idx = idx / w_len;
    uint32_t w = static_cast<uint32_t>(idx % w_len);
    auto pit = t.streams.find(s.cfg.baseSid);
    sf_assert(pit != t.streams.end(),
              "ref: indirect sid=%d without base sid=%d", s.cfg.sid,
              s.cfg.baseSid);
    Addr idx_addr = pit->second.cfg.affine.elemAddr(parent_idx);
    int64_t idx_value = _as.readInt(idx_addr, s.cfg.indirect.idxSize);
    return s.cfg.indirect.targetAddr(idx_value, w);
}

void
RefExecutor::readBytes(Addr vaddr, uint8_t *out, size_t size)
{
    size_t done = 0;
    while (done < size) {
        Addr va = vaddr + done;
        Addr vline = lineAlign(va);
        size_t off = static_cast<size_t>(va - vline);
        size_t chunk =
            std::min(size - done, static_cast<size_t>(lineBytes) - off);
        auto it = _image.find(vline);
        if (it != _image.end()) {
            std::memcpy(out + done, it->second.data() + off, chunk);
        } else {
            Addr pline = _as.translateExisting(vline);
            if (pline == invalidAddr)
                std::memset(out + done, 0, chunk);
            else
                _as.mem().read(pline + off, out + done, chunk);
        }
        done += chunk;
    }
}

void
RefExecutor::writeBytes(Addr vaddr, const uint8_t *in, size_t size,
                        RefResult &res)
{
    (void)res;
    size_t done = 0;
    while (done < size) {
        Addr va = vaddr + done;
        Addr vline = lineAlign(va);
        size_t off = static_cast<size_t>(va - vline);
        size_t chunk =
            std::min(size - done, static_cast<size_t>(lineBytes) - off);
        auto it = _image.find(vline);
        if (it == _image.end()) {
            LineData init;
            Addr pline = _as.translateExisting(vline);
            if (pline == invalidAddr)
                init.fill(0);
            else
                _as.mem().read(pline, init.data(), lineBytes);
            it = _image.emplace(vline, init).first;
        }
        std::memcpy(it->second.data() + off, in + done, chunk);
        done += chunk;
    }
}

} // namespace verify
} // namespace sf
