/**
 * @file
 * Shared value semantics for the --verify correctness oracle.
 *
 * The simulator is oracle-functional and timing-directed: the timing
 * model moves no data bytes. To prove the protocol would have moved
 * the *right* bytes, verify mode runs a deterministic shadow
 * computation on both sides:
 *
 *  - the core commits every op through a small in-order interpreter
 *    whose load values come from the protocol-routed data plane
 *    (verify::DataPlane), and
 *  - the reference executor (verify::RefExecutor) runs the same ops
 *    over flat memory.
 *
 * Both sides use exactly the functions below, so any disagreement in
 * the final memory image is a data-movement bug, not an artifact of
 * the value encoding. Values are 64-bit hashes, not IEEE arithmetic:
 * they are cheap, byte-exact, and sensitive to any single stale byte.
 */

#ifndef SF_VERIFY_VALUE_HH
#define SF_VERIFY_VALUE_HH

#include <cstdint>
#include <cstring>

#include "isa/op.hh"
#include "sim/types.hh"

namespace sf {
namespace verify {

constexpr uint64_t kFoldSeed = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kFoldPrime = 0x100000001b3ULL;

/** splitmix64 finalizer: the core of every value hash below. */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Value of a compute op: a hash of its kind, its static pc, and its
 * source values in order. Ops with no sources still get a nonzero,
 * pc-distinct value.
 */
inline uint64_t
computeValue(isa::OpKind kind, uint32_t pc, const uint64_t *srcs,
             int num_srcs)
{
    uint64_t v = mix64((static_cast<uint64_t>(kind) << 32) | pc);
    for (int i = 0; i < num_srcs; ++i)
        v = mix64(v * kFoldPrime + srcs[i]);
    return v;
}

/**
 * Fold an observed byte string into a value: little-endian 8-byte
 * chunks (final chunk zero-padded) accumulated multiplicatively, so
 * any flipped byte at any offset changes the result.
 */
inline uint64_t
foldBytes(const uint8_t *bytes, size_t size)
{
    uint64_t v = kFoldSeed;
    size_t off = 0;
    while (off < size) {
        uint64_t chunk = 0;
        size_t n = size - off < 8 ? size - off : 8;
        std::memcpy(&chunk, bytes + off, n);
        v = (v * kFoldPrime) ^ chunk;
        off += n;
    }
    return v;
}

/**
 * The byte pattern a store with value @p v writes: the 8-byte
 * little-endian encoding of v repeated/truncated to @p size bytes.
 */
inline void
storeBytes(uint64_t v, uint8_t *out, size_t size)
{
    for (size_t i = 0; i < size; ++i)
        out[i] = static_cast<uint8_t>(v >> ((i % 8) * 8));
}

/** Store value: the data dependence if present, else a pc hash. */
inline uint64_t
storeValue(isa::OpKind kind, uint32_t pc, const uint64_t *srcs,
           int num_srcs)
{
    if (num_srcs > 0)
        return srcs[0];
    return computeValue(kind, pc, nullptr, 0);
}

} // namespace verify
} // namespace sf

#endif // SF_VERIFY_VALUE_HH
