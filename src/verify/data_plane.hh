/**
 * @file
 * --verify data plane: byte images routed along the coherence
 * protocol's own data movements.
 *
 * The timing model carries no data. In verify mode every component
 * that *would* move bytes (store performs, dirty writebacks, owner
 * forwards, DataU serves, DRAM writes) instead moves a shared 64-byte
 * image through this plane, and every component that *would* read
 * bytes (committing loads, stream-element binds) observes them through
 * it. A null image at any level means "identical to the level below",
 * so clean lines cost nothing and the fall-through chain bottoms out
 * at the immutable PhysMem initial image.
 *
 * Invariants this relies on (MESI, checked by the PR-2 checker):
 *  - writes require M ownership, which invalidates all other private
 *    copies — so any live private-cache image is current;
 *  - at most one dirty image is ever in flight per line (tracked in
 *    _inFlightLines across the eviction/forward/recall windows where the
 *    bytes exist only inside a message).
 *
 * Everything here is header-only so that sf_mem, sf_cpu, sf_stream and
 * sf_flt can hook into it without a link-time cycle.
 */

#ifndef SF_VERIFY_DATA_PLANE_HH
#define SF_VERIFY_DATA_PLANE_HH

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/phys_mem.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "verify/value.hh"

namespace sf {
namespace verify {

using LineData = std::array<uint8_t, lineBytes>;
using LinePtr = std::shared_ptr<LineData>;

/**
 * One committed store whose bytes have not yet been performed by the
 * protocol. Lives in the owning tile's program-order overlay until the
 * private cache applies every piece.
 */
struct StoreRec
{
    uint64_t token = 0; //!< global commit order
    Addr vaddr = 0;
    uint16_t size = 0;
    LineData bytes{}; //!< pattern bytes, [0, size)
    TileId tile = invalidTile;
    uint32_t pc = 0;
    StreamId sid = invalidStream;
    bool isStream = false;
    uint16_t applied = 0; //!< bytes performed so far
};

using StoreRecPtr = std::shared_ptr<StoreRec>;

/** Provenance of the most recent committed store to a line. */
struct WriterInfo
{
    TileId tile = invalidTile;
    uint32_t pc = 0;
    StreamId sid = invalidStream;
    bool isStream = false;
    uint64_t token = 0;
};

class DataPlane
{
  public:
    DataPlane(mem::AddressSpace &as, int num_tiles)
        : _as(as), _pending(num_tiles), _uncached(num_tiles)
    {}

    // ----- wiring (TiledSystem::buildTiles) -----

    void
    addL2(TileId t, mem::CacheArray *arr)
    {
        if (static_cast<size_t>(t) >= _l2.size())
            _l2.resize(t + 1, nullptr);
        _l2[t] = arr;
    }

    void addL3(mem::CacheArray *arr) { _l3.push_back(arr); }

    /** Extra dirty-image source (parked delayed evictions, etc.). */
    void
    addDirtyScan(std::function<LinePtr(Addr)> fn)
    {
        _dirtyScans.push_back(std::move(fn));
    }

    // ----- core side: commit-order store lifecycle -----

    /**
     * A store just committed with value @p value. Enters the tile's
     * program-order overlay; the returned record rides the eventual
     * memory access down to the private cache's write-perform point.
     */
    StoreRecPtr
    storeCommitted(TileId tile, Addr vaddr, uint16_t size, uint64_t value,
                   uint32_t pc, StreamId sid, bool is_stream)
    {
        sf_assert(size > 0 && size <= lineBytes,
                  "verify store of %u bytes", size);
        auto rec = std::make_shared<StoreRec>();
        rec->token = ++_nextToken;
        rec->vaddr = vaddr;
        rec->size = size;
        storeBytes(value, rec->bytes.data(), size);
        rec->tile = tile;
        rec->pc = pc;
        rec->sid = sid;
        rec->isStream = is_stream;
        _pending[tile].push_back(rec);
        for (Addr vl = lineAlign(vaddr); vl < vaddr + size;
             vl += lineBytes) {
            _writtenVlines.insert(vl);
            _lastWriter[vl] = {tile, pc, sid, is_stream, rec->token};
        }
        return rec;
    }

    /**
     * The protocol performed @p piece_size bytes of @p rec at the L2
     * write point (@p line is the owning L2 line, already M). Called
     * once per line-split piece; a fully-performed store leaves the
     * overlay so it can never shadow a younger applied store.
     */
    void
    applyStorePiece(mem::CacheLine *line, Addr piece_paddr,
                    Addr piece_vaddr, uint16_t piece_size,
                    const StoreRecPtr &rec)
    {
        if (!rec)
            return;
        materialize(line, lineAlign(piece_paddr));
        size_t src_off = static_cast<size_t>(piece_vaddr - rec->vaddr);
        size_t dst_off = static_cast<size_t>(piece_paddr & (lineBytes - 1));
        std::memcpy(line->vdata->data() + dst_off,
                    rec->bytes.data() + src_off, piece_size);
        rec->applied += piece_size;
        if (rec->applied >= rec->size)
            retire(rec);
    }

    // ----- protocol side: byte-image movement hooks -----

    /** Dirty handoff: the bytes now exist only inside a message. */
    void
    noteInFlight(Addr line_paddr, const LinePtr &p)
    {
        if (p)
            _inFlightLines[line_paddr] = p;
        else
            _inFlightLines.erase(line_paddr);
    }

    void clearInFlight(Addr line_paddr) { _inFlightLines.erase(line_paddr); }

    /** Private-cache fill: adopt the message image (may be null). */
    void
    privInstall(TileId t, mem::CacheLine *line, Addr line_paddr,
                const LinePtr &p)
    {
        line->vdata = p;
        _uncached[t].erase(line_paddr);
        _inFlightLines.erase(line_paddr);
    }

    /** L3 install (PutM, FwdAck, InvAck recall, MemData). */
    void
    l3Install(mem::CacheLine *line, Addr line_paddr, const LinePtr &p)
    {
        line->vdata = p;
        _inFlightLines.erase(line_paddr);
    }

    /** Memory-controller write: the image reaches the DRAM shadow. */
    void
    dramWrite(Addr line_paddr, const LinePtr &p)
    {
        if (p)
            _shadow[line_paddr] = p;
        _inFlightLines.erase(line_paddr);
    }

    /** SE_L2 observed a DataU for @p line_paddr (null erases). */
    void
    noteUncached(TileId t, Addr line_paddr, const LinePtr &p)
    {
        if (p)
            _uncached[t][line_paddr] = p;
        else
            _uncached[t].erase(line_paddr);
    }

    /** DRAM-level view of a line: shadow image or the initial bytes. */
    LinePtr
    dramSnapshot(Addr line_paddr)
    {
        auto it = _shadow.find(line_paddr);
        if (it != _shadow.end())
            return it->second;
        auto p = std::make_shared<LineData>();
        if (line_paddr != invalidAddr)
            _as.mem().read(line_paddr, p->data(), lineBytes);
        else
            p->fill(0);
        return p;
    }

    /** Materialized copy of the line's current system-wide bytes. */
    LinePtr
    snapshot(Addr line_paddr)
    {
        auto p = std::make_shared<LineData>();
        lineBytesNow(line_paddr, p->data(), nullptr);
        return p;
    }

    // ----- core / SE side: observing bytes -----

    /**
     * Read @p size bytes at virtual @p vaddr as tile @p t observes
     * them at commit: the system-wide image, overridden by the tile's
     * own not-yet-performed stores (store-to-load forwarding).
     * @p stream_elem additionally consults the tile's DataU
     * observations when its private cache does not hold the line.
     */
    void
    readBytes(TileId t, Addr vaddr, uint16_t size, uint8_t *out,
              bool stream_elem)
    {
        size_t done = 0;
        while (done < size) {
            Addr va = vaddr + done;
            Addr vline = lineAlign(va);
            size_t off = static_cast<size_t>(va - vline);
            size_t chunk =
                std::min(static_cast<size_t>(size) - done,
                         static_cast<size_t>(lineBytes) - off);
            LineData img;
            observeLine(t, vline, img.data(), stream_elem);
            std::memcpy(out + done, img.data() + off, chunk);
            done += chunk;
        }
        // The tile's own committed-but-unperformed stores win.
        for (const auto &rec : _pending[t])
            overlayRec(*rec, vaddr, size, out);
    }

    uint64_t
    loadValue(TileId t, Addr vaddr, uint16_t size)
    {
        LineData buf;
        sf_assert(size <= lineBytes, "oversized verify load");
        readBytes(t, vaddr, size, buf.data(), false);
        return foldBytes(buf.data(), size);
    }

    // ----- stream trip counts -----

    void
    addTrips(TileId t, StreamId sid, uint64_t n)
    {
        _trips[{t, sid}] += n;
    }

    const std::map<std::pair<TileId, StreamId>, uint64_t> &
    trips() const
    {
        return _trips;
    }

    // ----- final image (oracle diff) -----

    /**
     * Drain every tile's leftover overlay (normally empty: the final
     * barrier waits for store-buffer drain) into the final image, in
     * global commit order.
     */
    void
    finalize()
    {
        if (_finalized)
            return;
        _finalized = true;
        std::vector<StoreRecPtr> left;
        for (auto &dq : _pending)
            for (auto &r : dq)
                left.push_back(r);
        std::sort(left.begin(), left.end(),
                  [](const StoreRecPtr &a, const StoreRecPtr &b) {
                      return a->token < b->token;
                  });
        for (auto &r : left) {
            size_t done = 0;
            while (done < r->size) {
                Addr va = r->vaddr + done;
                Addr vline = lineAlign(va);
                size_t off = static_cast<size_t>(va - vline);
                size_t chunk = std::min(
                    static_cast<size_t>(r->size) - done,
                    static_cast<size_t>(lineBytes) - off);
                auto it = _finalOverlay.find(vline);
                if (it == _finalOverlay.end()) {
                    LineData img;
                    observeLine(invalidTile, vline, img.data(), false);
                    it = _finalOverlay.emplace(vline, img).first;
                }
                std::memcpy(it->second.data() + off,
                            r->bytes.data() + done, chunk);
                done += chunk;
            }
        }
        for (auto &dq : _pending)
            dq.clear();
    }

    /** Final observed bytes of a virtual line (call finalize() first). */
    void
    finalLine(Addr vline, uint8_t *out)
    {
        auto it = _finalOverlay.find(vline);
        if (it != _finalOverlay.end()) {
            std::memcpy(out, it->second.data(), lineBytes);
            return;
        }
        observeLine(invalidTile, vline, out, false);
    }

    /** Sorted set of virtual lines any committed store touched. */
    const std::set<Addr> &writtenVlines() const { return _writtenVlines; }

    const WriterInfo *
    lastWriter(Addr vline) const
    {
        auto it = _lastWriter.find(vline);
        return it == _lastWriter.end() ? nullptr : &it->second;
    }

    size_t
    pendingStores() const
    {
        size_t n = 0;
        for (const auto &dq : _pending)
            n += dq.size();
        return n;
    }

  private:
    /**
     * Current system-wide bytes of physical line @p line_paddr:
     * private images (any live one is current under MESI), parked
     * evictions, in-flight dirty images, L3 images, the DRAM shadow,
     * then the immutable initial memory.
     */
    void
    lineBytesNow(Addr line_paddr, uint8_t *out,
                 const mem::CacheLine *exclude)
    {
        if (line_paddr == invalidAddr) {
            std::memset(out, 0, lineBytes);
            return;
        }
        for (auto *arr : _l2) {
            if (!arr)
                continue;
            mem::CacheLine *l = arr->probe(line_paddr);
            if (l && l != exclude && l->vdata) {
                std::memcpy(out, l->vdata->data(), lineBytes);
                return;
            }
        }
        for (auto &scan : _dirtyScans) {
            if (LinePtr p = scan(line_paddr)) {
                std::memcpy(out, p->data(), lineBytes);
                return;
            }
        }
        auto inf = _inFlightLines.find(line_paddr);
        if (inf != _inFlightLines.end()) {
            std::memcpy(out, inf->second->data(), lineBytes);
            return;
        }
        for (auto *arr : _l3) {
            mem::CacheLine *l = arr->probe(line_paddr);
            if (l && l->vdata) {
                std::memcpy(out, l->vdata->data(), lineBytes);
                return;
            }
        }
        auto sh = _shadow.find(line_paddr);
        if (sh != _shadow.end()) {
            std::memcpy(out, sh->second->data(), lineBytes);
            return;
        }
        _as.mem().read(line_paddr, out, lineBytes);
    }

    /** Tile-local view of a virtual line (no own-store overlay). */
    void
    observeLine(TileId t, Addr vline, uint8_t *out, bool stream_elem)
    {
        Addr pline = _as.translateExisting(vline);
        if (pline == invalidAddr) {
            std::memset(out, 0, lineBytes);
            return;
        }
        if (stream_elem && t != invalidTile) {
            // DataU bytes only stand in when the private cache does
            // not hold the line (the cache path supersedes them).
            bool cached =
                static_cast<size_t>(t) < _l2.size() && _l2[t] &&
                _l2[t]->probe(pline) != nullptr;
            if (!cached) {
                auto it = _uncached[t].find(pline);
                if (it != _uncached[t].end()) {
                    std::memcpy(out, it->second->data(), lineBytes);
                    return;
                }
            }
        }
        lineBytesNow(pline, out, nullptr);
    }

    /** Lazily give @p line a private, mutable image. */
    void
    materialize(mem::CacheLine *line, Addr line_paddr)
    {
        if (!line->vdata) {
            auto p = std::make_shared<LineData>();
            lineBytesNow(line_paddr, p->data(), line);
            line->vdata = p;
        } else if (line->vdata.use_count() > 1) {
            // Copy-on-write: snapshots attached to in-flight messages
            // or other levels must not see future stores.
            line->vdata = std::make_shared<LineData>(*line->vdata);
        }
    }

    void
    retire(const StoreRecPtr &rec)
    {
        auto &dq = _pending[rec->tile];
        for (auto it = dq.begin(); it != dq.end(); ++it) {
            if ((*it)->token == rec->token) {
                dq.erase(it);
                return;
            }
        }
    }

    /** Copy the overlap of @p rec onto [vaddr, vaddr+size). */
    static void
    overlayRec(const StoreRec &rec, Addr vaddr, uint16_t size,
               uint8_t *out)
    {
        Addr lo = std::max(rec.vaddr, vaddr);
        Addr hi = std::min(rec.vaddr + rec.size,
                           vaddr + static_cast<Addr>(size));
        if (lo >= hi)
            return;
        std::memcpy(out + (lo - vaddr), rec.bytes.data() + (lo - rec.vaddr),
                    hi - lo);
    }

    mem::AddressSpace &_as;
    std::vector<mem::CacheArray *> _l2;
    std::vector<mem::CacheArray *> _l3;
    std::vector<std::function<LinePtr(Addr)>> _dirtyScans;

    uint64_t _nextToken = 0;
    /** Per-tile program-order overlay of unperformed stores. */
    std::vector<std::deque<StoreRecPtr>> _pending;
    /** Per-tile DataU observations, by physical line. */
    std::vector<std::unordered_map<Addr, LinePtr>> _uncached;
    /** Dirty images living only inside a message, by physical line. */
    std::unordered_map<Addr, LinePtr> _inFlightLines;
    /** Lines written back to DRAM, by physical line. */
    std::unordered_map<Addr, LinePtr> _shadow;

    std::set<Addr> _writtenVlines;
    std::unordered_map<Addr, WriterInfo> _lastWriter;
    std::map<std::pair<TileId, StreamId>, uint64_t> _trips;

    bool _finalized = false;
    std::map<Addr, LineData> _finalOverlay;
};

} // namespace verify
} // namespace sf

#endif // SF_VERIFY_DATA_PLANE_HH
