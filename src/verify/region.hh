/**
 * @file
 * Named memory regions workloads expose to the --verify oracle so a
 * divergence diagnostic can say *which array* went bad, not just the
 * raw virtual address. Kept in its own tiny header so workload code
 * can describe regions without pulling in the oracle.
 */

#ifndef SF_VERIFY_REGION_HH
#define SF_VERIFY_REGION_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace sf {
namespace verify {

struct MemRegion
{
    std::string name;
    Addr base = 0;
    uint64_t bytes = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + bytes;
    }
};

/** Region containing @p a, or nullptr. */
inline const MemRegion *
findRegion(const std::vector<MemRegion> &regions, Addr a)
{
    for (const auto &r : regions) {
        if (r.contains(a))
            return &r;
    }
    return nullptr;
}

} // namespace verify
} // namespace sf

#endif // SF_VERIFY_REGION_HH
