/**
 * @file
 * The --verify oracle: run the reference executor, diff the simulated
 * end-of-run memory image (DRAM + dirty cache state, reconstructed by
 * verify::DataPlane) and stream trip counts against the golden result,
 * and on divergence die with exit code 67 through the fatal() path.
 */

#ifndef SF_VERIFY_ORACLE_HH
#define SF_VERIFY_ORACLE_HH

#include <optional>
#include <string>
#include <vector>

#include "isa/op_source.hh"
#include "verify/data_plane.hh"
#include "verify/ref_executor.hh"
#include "verify/region.hh"

namespace sf {
namespace verify {

/** First point where simulation and reference disagree. */
struct Divergence
{
    enum class Kind
    {
        Memory,
        TripCount,
    };
    Kind kind = Kind::Memory;

    // --- Kind::Memory ---
    Addr vaddr = 0; //!< first divergent byte
    std::vector<uint8_t> golden;   //!< 8-byte window at vaddr
    std::vector<uint8_t> observed; //!< 8-byte window at vaddr
    std::string region;            //!< owning named region, if any
    WriterInfo writer;             //!< last committed writer of the line
    bool hasWriter = false;
    uint64_t divergentLines = 0; //!< total lines that differ

    // --- Kind::TripCount ---
    TileId tile = invalidTile;
    StreamId sid = invalidStream;
    uint64_t goldenTrips = 0;
    uint64_t observedTrips = 0;

    /** Human-readable one-paragraph diagnostic. */
    std::string describe() const;
};

/** Run the reference executor over fresh per-thread op sources. */
RefResult runReference(mem::AddressSpace &as,
                       const std::vector<isa::OpSource *> &sources);

/**
 * Diff the simulated end state held by @p plane against @p golden.
 * Finalizes the plane (flushes leftover store overlays). Returns the
 * first divergence, or nullopt when the images and trip counts agree.
 */
std::optional<Divergence>
compareWithGolden(DataPlane &plane, const RefResult &golden,
                  mem::AddressSpace &as,
                  const std::vector<MemRegion> &regions);

/**
 * compareWithGolden(), then fatalCode(ExitCode::VerifyDivergence)
 * with the first-divergence diagnostic on mismatch. @p what names the
 * run (workload/config) in the failure message.
 */
void checkOrDie(DataPlane &plane, const RefResult &golden,
                mem::AddressSpace &as,
                const std::vector<MemRegion> &regions,
                const std::string &what);

} // namespace verify
} // namespace sf

#endif // SF_VERIFY_ORACLE_HH
