#include "flt/se_l3.hh"

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/stream_trace.hh"

namespace sf {
namespace flt {

SEL3::SEL3(const std::string &name, EventQueue &eq, TileId tile,
           const SEL3Config &cfg, noc::Mesh &mesh,
           const mem::NucaMap &nuca, mem::L3Bank &bank,
           AsResolver resolve_as)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _mesh(mesh),
      _nuca(nuca), _bank(bank), _resolveAs(std::move(resolve_as)),
      _tlb(cfg.tlbEntries, cfg.tlbWays), _pump(eq)
{
}

mem::AddressSpace &
SEL3::spaceOf(const Entry &e)
{
    mem::AddressSpace *as = _resolveAs(e.asid);
    sf_assert(as, "unknown address space %d", e.asid);
    return *as;
}

int
SEL3::blockOf(TileId t) const
{
    int bx = _mesh.xOf(t) / _cfg.blockSize;
    int by = _mesh.yOf(t) / _cfg.blockSize;
    return by * ((_mesh.config().nx + _cfg.blockSize - 1) /
                 _cfg.blockSize) +
           bx;
}

Addr
SEL3::translate(mem::AddressSpace &as, Addr vaddr, Cycles &penalty)
{
    if (_tlb.lookup(vaddr)) {
        ++_stats.tlbHits;
        penalty = 0;
    } else {
        ++_stats.tlbMisses;
        _tlb.insert(vaddr);
        penalty = _cfg.tlbLatency + _cfg.tlbWalkLatency;
    }
    return as.translate(vaddr);
}

SEL3::EntryList::iterator
SEL3::findEntry(const GlobalStreamId &gsid)
{
    for (auto it = _entries.begin(); it != _entries.end(); ++it) {
        for (const auto &m : it->members) {
            if (m.gsid == gsid)
                return it;
        }
    }
    return _entries.end();
}

void
SEL3::recvConfig(const std::shared_ptr<StreamFloatMsg> &msg)
{
    if (msg->isMigration)
        ++_stats.migrationsIn;
    else
        ++_stats.configsReceived;
    SF_DPRINTF(SEL3, "%s c%d.s%d gen=%u nextElem=%llu credit=%llu",
               msg->isMigration ? "migration in" : "config",
               msg->gsid.core, msg->gsid.sid, msg->gen,
               (unsigned long long)msg->nextElem,
               (unsigned long long)msg->creditLimit);
    trace::recordStream(curTick(), msg->gsid,
                        trace::StreamPhase::Arrive, _tile,
                        msg->isMigration ? "migration" : "config");

    // Stale replay? A duplicated or long-delayed config/migration
    // that arrives at or behind the point where this stream already
    // left this bank would install a ghost copy chasing the live one;
    // drop it silently (see _departed).
    auto dep = _departed.find(msg->gsid);
    if (dep != _departed.end() &&
        (msg->gen < dep->second.first ||
         (msg->gen == dep->second.first &&
          msg->nextElem < dep->second.second))) {
        ++_stats.staleConfigsDropped;
        SF_DPRINTF(SEL3,
                   "drop stale %s c%d.s%d gen=%u elem=%llu "
                   "(departed gen=%u elem=%llu)",
                   msg->isMigration ? "migration" : "config",
                   msg->gsid.core, msg->gsid.sid, msg->gen,
                   (unsigned long long)msg->nextElem,
                   dep->second.first,
                   (unsigned long long)dep->second.second);
        return;
    }

    // An end packet may have raced ahead of this (re)configuration.
    // Still ack: the config was received, the stream just no longer
    // exists — the SE_L2 side ignores acks for unknown streams.
    auto pend = _pendingEnds.find(msg->gsid);
    if (pend != _pendingEnds.end() && pend->second >= msg->gen) {
        recordDeparture(msg->gsid, pend->second, ~0ULL);
        _pendingEnds.erase(pend);
        sendAck(msg->gsid, msg->gen, false);
        return;
    }

    // Already resident at the same gen? A duplicate (or a retry that
    // raced with the live stream migrating back here). Replacing the
    // entry would roll issuePos and creditLimit backwards — absorb it
    // instead: widen the credit window if the replay carries more,
    // re-ack (the original ack may be the thing that was lost), done.
    auto old = findEntry(msg->gsid);
    if (old != _entries.end()) {
        for (auto &m : old->members) {
            if (m.gsid == msg->gsid && m.gen == msg->gen) {
                m.creditLimit =
                    std::max(m.creditLimit, msg->creditLimit);
                ++_stats.staleConfigsDropped;
                sendAck(msg->gsid, msg->gen, false);
                kick();
                return;
            }
        }
    }

    // Replace a stale same-stream entry (refloat with a newer gen).
    if (old != _entries.end()) {
        auto &members = old->members;
        members.erase(std::remove_if(members.begin(), members.end(),
                                     [&](const Member &m) {
                                         return m.gsid == msg->gsid &&
                                                m.gen <= msg->gen;
                                     }),
                      members.end());
        if (members.empty())
            _entries.erase(old);
    }

    Entry e;
    e.base = msg->base;
    e.indirects = msg->indirects;
    e.asid = msg->asid;
    e.issuePos = msg->nextElem;
    Member m;
    m.gsid = msg->gsid;
    m.gen = msg->gen;
    m.creditLimit = msg->creditLimit;
    m.joinedAt = msg->nextElem;

    auto pcred = _pendingCredits.find(msg->gsid);
    if (pcred != _pendingCredits.end()) {
        if (pcred->second.first == msg->gen) {
            m.creditLimit =
                std::max(m.creditLimit, pcred->second.second);
        }
        _pendingCredits.erase(pcred);
    }
    e.members.push_back(m);

    bool accepted = addStream(std::move(e));
    sendAck(msg->gsid, msg->gen, !accepted);
}

bool
SEL3::addStream(Entry &&e)
{
    if (tryMerge(e)) {
        kick();
        return true;
    }
    if (static_cast<int>(_entries.size()) >= _cfg.maxStreams) {
        warn_once("%s: stream table full, NACKing stream back to core",
                  name().c_str());
        return false;
    }
    _entries.push_back(std::move(e));
    kick();
    return true;
}

void
SEL3::sendAck(const GlobalStreamId &gsid, uint32_t gen, bool nack)
{
    auto msg = StreamAckMsg::make(_tile, gsid.core);
    msg->gsid = gsid;
    msg->gen = gen;
    msg->nack = nack;
    _mesh.send(msg);
    if (nack) {
        ++_stats.floatNacksSent;
        SF_DPRINTF(SEL3, "NACK c%d.s%d gen=%u (table full)", gsid.core,
                   gsid.sid, gen);
        trace::recordStream(curTick(), gsid, trace::StreamPhase::Arrive,
                            _tile, "nack");
    } else {
        ++_stats.acksSent;
    }
}

bool
SEL3::tryMerge(const Entry &incoming)
{
    if (!_cfg.enableConfluence)
        return false;
    if (!incoming.indirects.empty() || incoming.base.hasIndirect)
        return false;
    const Member &im = incoming.members.front();

    for (auto &e : _entries) {
        if (!e.indirects.empty() || e.base.hasIndirect)
            continue;
        if (e.asid != incoming.asid)
            continue;
        if (!(e.base.affine == incoming.base.affine))
            continue;
        if (static_cast<int>(e.members.size()) >= _cfg.maxGroupSize)
            continue;
        if (blockOf(e.members.front().gsid.core) !=
            blockOf(im.gsid.core)) {
            continue;
        }
        uint64_t diff = e.issuePos > incoming.issuePos
                            ? e.issuePos - incoming.issuePos
                            : incoming.issuePos - e.issuePos;
        if (diff > _cfg.mergeSlackElems)
            continue;

        Member joined = im;
        joined.joinedAt = incoming.issuePos;
        e.members.push_back(joined);
        // Rewind the shared cursor so the laggard catches up; members
        // already past these elements drop the duplicates at their
        // SE_L2 (arrival frontier check).
        e.issuePos = std::min(e.issuePos, incoming.issuePos);
        e.stalledOnCredit = false;
        ++_stats.confluenceMerges;
        return true;
    }
    return false;
}

void
SEL3::recvCredit(const std::shared_ptr<StreamCreditMsg> &msg)
{
    ++_stats.creditsReceived;
    auto it = findEntry(msg->gsid);
    if (it == _entries.end()) {
        auto &slot = _pendingCredits[msg->gsid];
        if (msg->gen > slot.first)
            slot = {msg->gen, msg->creditLimit};
        else if (msg->gen == slot.first)
            slot.second = std::max(slot.second, msg->creditLimit);
        return;
    }
    for (auto &m : it->members) {
        if (m.gsid == msg->gsid && m.gen == msg->gen)
            m.creditLimit = std::max(m.creditLimit, msg->creditLimit);
    }
    if (it->stalledOnCredit) {
        SF_DPRINTF(SEL3, "credit resume c%d.s%d limit=%llu",
                   msg->gsid.core, msg->gsid.sid,
                   (unsigned long long)msg->creditLimit);
        trace::recordStream(curTick(), it->members.front().gsid,
                            trace::StreamPhase::Resume, _tile);
    }
    it->stalledOnCredit = false;
    kick();
}

void
SEL3::recvEnd(const std::shared_ptr<StreamEndMsg> &msg)
{
    ++_stats.endsReceived;
    // Ended for good at this gen: no config/migration at gen or older
    // may re-install the stream here (a duplicated migration could
    // otherwise arrive after this end and leave a ghost behind).
    recordDeparture(msg->gsid, msg->gen, ~0ULL);
    auto it = findEntry(msg->gsid);
    if (it == _entries.end()) {
        uint32_t &g = _pendingEnds[msg->gsid];
        g = std::max(g, msg->gen);
        return;
    }
    auto &members = it->members;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const Member &m) {
                                     return m.gsid == msg->gsid &&
                                            m.gen <= msg->gen;
                                 }),
                  members.end());
    if (members.empty())
        _entries.erase(it);
}

void
SEL3::recordDeparture(const GlobalStreamId &gsid, uint32_t gen,
                      uint64_t frontier)
{
    auto [it, fresh] =
        _departed.try_emplace(gsid, std::make_pair(gen, frontier));
    if (fresh)
        return;
    auto &[dgen, dpos] = it->second;
    if (gen > dgen) {
        dgen = gen;
        dpos = frontier;
    } else if (gen == dgen) {
        dpos = std::max(dpos, frontier);
    }
}

void
SEL3::kick()
{
    if (_pump.running() || _entries.empty())
        return;
    _pump.start(_cfg.issueInterval, [this]() { issueTick(); },
                EventPriority::ClockTick);
}

void
SEL3::issueTick()
{
    size_t attempts = _entries.size();
    bool issued = false;
    for (size_t i = 0; i < attempts && !_entries.empty(); ++i) {
        // Round-robin by rotation: service the front, move it back.
        if (issueOne(_entries.front())) {
            issued = true;
            if (!_entries.empty()) {
                _entries.splice(_entries.end(), _entries,
                                _entries.begin());
            }
            break;
        }
        if (!_entries.empty()) {
            _entries.splice(_entries.end(), _entries, _entries.begin());
        }
    }
    // The recurring pump keeps ticking while it makes progress; stop
    // when idle (no issue, or table drained) until the next kick().
    if (!issued || _entries.empty())
        _pump.stop();
}

bool
SEL3::issueOne(Entry &e)
{
    if (e.members.empty()) {
        _entries.remove_if(
            [&](const Entry &x) { return &x == &e; });
        return true;
    }

    // Completed known-length streams terminate silently (§IV-A).
    uint64_t horizon =
        e.base.lengthKnown ? e.base.totalElems() : ~0ULL;
    if (e.issuePos >= horizon) {
        ++_stats.streamsCompleted;
        const GlobalStreamId &gsid = e.members.front().gsid;
        SF_DPRINTF(SEL3, "stream complete c%d.s%d at elem %llu",
                   gsid.core, gsid.sid, (unsigned long long)horizon);
        // A trailing duplicated migration must not re-install the
        // finished stream: mark every member as departed for good.
        for (const auto &m : e.members)
            recordDeparture(m.gsid, m.gen, ~0ULL);
        _entries.remove_if(
            [&](const Entry &x) { return &x == &e; });
        return true;
    }

    // Migrate BEFORE the credit check: a stalled stream must wait at
    // the bank of its next element, because that is where the SE_L2
    // routes credit refreshes (§IV-A).
    mem::AddressSpace &as = spaceOf(e);
    Addr va = e.base.affine.elemAddr(e.issuePos);
    Cycles penalty = 0;
    Addr pa = translate(as, va, penalty);

    TileId home = _nuca.bankOf(pa);
    if (home != _tile) {
        migrate(e, home);
        return true;
    }

    // Flow control: the group can issue only below every member's
    // credit horizon (laggards' credits gate the leader).
    uint64_t limit = ~0ULL;
    for (const auto &m : e.members)
        limit = std::min(limit, m.creditLimit);
    if (e.issuePos >= limit) {
        if (!e.stalledOnCredit) {
            e.stalledOnCredit = true;
            ++_stats.creditStalls;
            const GlobalStreamId &gsid = e.members.front().gsid;
            SF_DPRINTF(SEL3, "credit stall c%d.s%d at elem %llu",
                       gsid.core, gsid.sid,
                       (unsigned long long)e.issuePos);
            trace::recordStream(curTick(), gsid,
                                trace::StreamPhase::CreditStall, _tile);
        }
        return false;
    }

    // Coalesce elements that fall on the same line.
    Addr line = lineAlign(pa);
    uint16_t count = 1;
    uint64_t max_elems = std::min(limit, horizon) - e.issuePos;
    while (count < max_elems && count < 64) {
        Addr nva = e.base.affine.elemAddr(e.issuePos + count);
        Addr npa = as.translateExisting(nva);
        if (npa == invalidAddr || lineAlign(npa) != line)
            break;
        ++count;
    }

    mem::StreamReadReq req;
    req.lineAddr = line;
    req.dataBytes = lineBytes;
    req.stream = e.members.front().gsid;
    req.gen = e.members.front().gen;
    req.elemIdx = e.issuePos;
    req.elemCount = count;
    for (const auto &m : e.members)
        req.dests.push_back(m.gsid.core);
    if (e.members.size() > 1) {
        for (const auto &m : e.members)
            req.merged.push_back(m.gsid);
        req.reqClass = mem::ReqClass::FloatConfluence;
        ++_stats.confluenceRequests;
    } else {
        req.reqClass = mem::ReqClass::FloatAffine;
    }

    if (!e.indirects.empty()) {
        // Capture what indirect issue needs; the entry may migrate or
        // retire before the bank produces the index data.
        struct Ctx
        {
            isa::AffinePattern basePattern;
            std::vector<FloatedIndirect> indirects;
            int asid;
            GlobalStreamId gsid;
            uint32_t gen;
        };
        auto ctx = std::make_shared<Ctx>();
        ctx->basePattern = e.base.affine;
        ctx->indirects = e.indirects;
        ctx->asid = e.asid;
        ctx->gsid = e.members.front().gsid;
        ctx->gen = e.members.front().gen;
        uint64_t first = e.issuePos;
        req.onLocalData = [this, ctx, first, count]() {
            Entry tmp;
            tmp.base.affine = ctx->basePattern;
            tmp.indirects = ctx->indirects;
            tmp.asid = ctx->asid;
            Member m;
            m.gsid = ctx->gsid;
            m.gen = ctx->gen;
            tmp.members.push_back(m);
            issueIndirects(tmp, first, count);
        };
    }

    ++_stats.lineRequestsIssued;
    if (penalty == 0) {
        _bank.streamRead(std::move(req));
    } else {
        scheduleIn(penalty, [this, req = std::move(req)]() mutable {
            _bank.streamRead(std::move(req));
        });
    }
    e.issuePos += count;
    return true;
}

void
SEL3::issueIndirects(const Entry &e, uint64_t first, uint16_t count)
{
    mem::AddressSpace &as = spaceOf(e);
    const Member &owner = e.members.front();

    for (uint16_t i = 0; i < count; ++i) {
        uint64_t base_elem = first + i;
        Addr idx_addr = e.base.affine.elemAddr(base_elem);

        for (const auto &ind : e.indirects) {
            uint32_t w_len = std::max<uint32_t>(1, ind.cfg.indirect.wLen);
            uint64_t child_elem = base_elem * w_len;
            if (child_elem + w_len <= ind.start)
                continue; // the core already fetched these
            int64_t idx_value =
                as.readInt(idx_addr, ind.cfg.indirect.idxSize);
            Addr target_va = ind.cfg.indirect.targetAddr(idx_value, 0);
            Cycles penalty = 0;
            Addr target_pa = translate(as, target_va, penalty);
            uint16_t bytes = static_cast<uint16_t>(std::min<uint32_t>(
                ind.cfg.indirect.elemSize * w_len, lineBytes));
            TileId target_bank = _nuca.bankOf(target_pa);
            ++_stats.indirectRequestsIssued;

            if (target_bank == _tile) {
                mem::StreamReadReq req;
                req.lineAddr = lineAlign(target_pa);
                req.dataBytes = bytes;
                req.stream = {owner.gsid.core, ind.cfg.sid};
                req.gen = owner.gen;
                req.elemIdx = child_elem;
                req.elemCount = static_cast<uint16_t>(w_len);
                req.dests = {owner.gsid.core};
                req.reqClass = mem::ReqClass::FloatIndirect;
                if (penalty == 0) {
                    _bank.streamRead(std::move(req));
                } else {
                    scheduleIn(penalty,
                               [this, req = std::move(req)]() mutable {
                                   _bank.streamRead(std::move(req));
                               });
                }
            } else {
                // Remote target bank: a small uncached read request
                // travels bank-to-bank; the data goes straight to the
                // requesting core (subline transfer, §IV-B).
                auto msg = mem::makeMemMsg(mem::MemMsgType::GetU,
                                           lineAlign(target_pa), _tile,
                                           target_bank, owner.gsid.core);
                msg->stream = {owner.gsid.core, ind.cfg.sid};
                msg->streamGen = owner.gen;
                msg->elemIdx = child_elem;
                msg->elemCount = static_cast<uint16_t>(w_len);
                msg->dataBytes = bytes;
                msg->reqClass = mem::ReqClass::FloatIndirect;
                _mesh.send(msg);
            }
        }
    }
}

void
SEL3::debugDump(std::FILE *f) const
{
    for (const auto &e : _entries) {
        std::fprintf(f, "  %s issuePos=%llu stalled=%d members=[",
                     name().c_str(), (unsigned long long)e.issuePos,
                     e.stalledOnCredit);
        for (const auto &m : e.members) {
            std::fprintf(f, "(c%d s%d g%u credit=%llu)", m.gsid.core,
                         m.gsid.sid, m.gen,
                         (unsigned long long)m.creditLimit);
        }
        std::fprintf(f, "] pump=%d\n", _pump.running());
    }
    // Sorted snapshot: _pendingCredits is hash-ordered and the dump
    // must be reproducible (sflint D1).
    std::vector<GlobalStreamId> pend;
    pend.reserve(_pendingCredits.size());
    // sflint: ordered-ok(key collection only; sorted before printing)
    for (const auto &kv : _pendingCredits)
        pend.push_back(kv.first);
    std::sort(pend.begin(), pend.end(),
              [](const GlobalStreamId &a, const GlobalStreamId &b) {
                  return std::tie(a.core, a.sid) <
                         std::tie(b.core, b.sid);
              });
    for (const GlobalStreamId &gsid : pend) {
        const auto &pc = _pendingCredits.at(gsid);
        std::fprintf(f, "  %s pendingCredit c%d s%d gen=%u lim=%llu\n",
                     name().c_str(), gsid.core, gsid.sid, pc.first,
                     (unsigned long long)pc.second);
    }
}

void
SEL3::forEachResident(
    const std::function<void(const GlobalStreamId &gsid, uint32_t gen,
                             uint64_t issue_pos,
                             uint64_t credit_limit)> &fn) const
{
    for (const auto &e : _entries) {
        for (const auto &m : e.members)
            fn(m.gsid, m.gen, e.issuePos, m.creditLimit);
    }
}

void
SEL3::forEachDeparted(
    const std::function<void(const GlobalStreamId &gsid, uint32_t gen,
                             uint64_t frontier)> &fn) const
{
    std::vector<std::pair<GlobalStreamId, std::pair<uint32_t, uint64_t>>>
        entries;
    entries.reserve(_departed.size());
    // sflint: ordered-ok(entries collected then sorted before visiting)
    for (const auto &kv : _departed)
        entries.push_back(kv);
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.first.core != b.first.core)
                      return a.first.core < b.first.core;
                  return a.first.sid < b.first.sid;
              });
    for (const auto &kv : entries)
        fn(kv.first, kv.second.first, kv.second.second);
}

void
SEL3::migrate(Entry &e, TileId next_bank)
{
    for (const auto &m : e.members) {
        auto msg = StreamFloatMsg::make(_tile, next_bank);
        msg->isMigration = true;
        msg->gsid = m.gsid;
        msg->gen = m.gen;
        msg->asid = e.asid;
        msg->base = e.base;
        for (auto ind : e.indirects) {
            uint32_t w_len = std::max<uint32_t>(1, ind.cfg.indirect.wLen);
            ind.start = std::max(ind.start, e.issuePos * w_len);
            msg->indirects.push_back(ind);
        }
        msg->nextElem = e.issuePos;
        msg->creditLimit = m.creditLimit;
        msg->finalizeSize();
        recordDeparture(m.gsid, m.gen, e.issuePos);
        _mesh.send(msg);
        ++_stats.migrationsOut;
        SF_DPRINTF(SEL3, "migrate c%d.s%d -> bank %d at elem %llu",
                   m.gsid.core, m.gsid.sid, next_bank,
                   (unsigned long long)e.issuePos);
        trace::recordStream(curTick(), m.gsid,
                            trace::StreamPhase::Migrate, _tile,
                            "to bank " + std::to_string(next_bank));
    }
    _entries.remove_if([&](const Entry &x) { return &x == &e; });
}

} // namespace flt
} // namespace sf
