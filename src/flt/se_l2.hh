/**
 * @file
 * SE_L2: the requesting-tile stream engine (Fig. 9).
 *
 * Buffers uncached floated-stream data arriving as DataU, matches it
 * against the SE_core's tagged fetch requests, runs the coarse-grained
 * credit-based flow control toward remote SE_L3s, and implements the
 * §IV-E memory-disambiguation machinery (dirty-eviction search and the
 * head/tail credit sequence window).
 */

#ifndef SF_FLT_SE_L2_HH
#define SF_FLT_SE_L2_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "flt/stream_msg.hh"
#include "mem/nuca.hh"
#include "mem/phys_mem.hh"
#include "mem/priv_cache.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "stream/float_if.hh"
#include "stream/se_core.hh"

namespace sf {

namespace verify {
class DataPlane;
} // namespace verify

namespace flt {

struct SEL2Config
{
    /** Stream buffer capacity (Table III: 16 kB). */
    uint32_t bufferBytes = 16 * 1024;
    int maxStreams = 12;
    /** Send a credit refresh when at least this fraction is free. */
    double creditRefreshFraction = 0.5;
    /**
     * §IV-B constant-offset reuse: when streams A[i] and A[i+K] float
     * together and K fits in the buffer, the remote engine sends the
     * overlap once and the SE_L2 serves the lagging stream from the
     * leading stream's data.
     */
    bool enableStencilReuse = true;

    // --- robustness: graceful degradation under lost control msgs ---
    /**
     * Master switch for the retry/fallback machinery below. Off, a
     * lost float request or credit grant wedges the stream (the
     * forward-progress watchdog then catches the hang) — used by the
     * `noretry` fault spec to prove the watchdog works.
     */
    bool retryEnabled = true;
    /** Resend an unacked float config after this many cycles. */
    Cycles floatAckTimeout = 8192;
    /** Config resends (ack timeouts + stall recoveries) before the
     *  stream is sunk back to core-fetch for good. */
    int maxFloatRetries = 3;
    /** A floated stream with waiters and no arrivals/acks for this
     *  long is considered stuck and enters recovery. */
    Cycles progressTimeout = 100'000;
};

struct SEL2Stats
{
    stats::Scalar floats, unfloats;
    stats::Scalar configsSent, endsSent, creditsSent;
    stats::Scalar dataArrived, dataDropped;
    stats::Scalar servedFetches;
    stats::Scalar dirtyEvictionSearches, dirtyEvictionAliases;
    stats::Scalar evictionPressureSinks;
    /** §IV-B constant-offset merges and element serves. */
    stats::Scalar stencilMerges, stencilServes;
    /** Robustness: acks/NACKs received and the recovery paths taken. */
    stats::Scalar acksReceived, floatNacks;
    stats::Scalar floatRetries, floatFallbacks;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("floats", &floats);
        g.regScalar("unfloats", &unfloats);
        g.regScalar("configsSent", &configsSent);
        g.regScalar("endsSent", &endsSent);
        g.regScalar("creditsSent", &creditsSent);
        g.regScalar("dataArrived", &dataArrived);
        g.regScalar("dataDropped", &dataDropped);
        g.regScalar("servedFetches", &servedFetches);
        g.regScalar("dirtyEvictionSearches", &dirtyEvictionSearches);
        g.regScalar("dirtyEvictionAliases", &dirtyEvictionAliases);
        g.regScalar("evictionPressureSinks", &evictionPressureSinks);
        g.regScalar("stencilMerges", &stencilMerges);
        g.regScalar("stencilServes", &stencilServes);
        g.regScalar("acksReceived", &acksReceived);
        g.regScalar("floatNacks", &floatNacks);
        g.regScalar("floatRetries", &floatRetries);
        g.regScalar("floatFallbacks", &floatFallbacks);
    }
};

/** The per-tile L2 stream engine. */
class SEL2 : public SimObject,
             public mem::StreamBufferIf,
             public stream::FloatControllerIf
{
  public:
    SEL2(const std::string &name, EventQueue &eq, TileId tile,
         const SEL2Config &cfg, noc::Mesh &mesh,
         const mem::NucaMap &nuca, mem::PrivCache &cache,
         mem::TlbHierarchy &tlb, mem::AddressSpace &as,
         stream::SECore &se_core);

    // --- stream::FloatControllerIf (calls from SE_core) ---
    bool floatStream(const stream::FloatRequest &req) override;
    void unfloatStream(StreamId sid) override;
    bool isFloating(StreamId sid) const override;
    void fetchFloatedElems(StreamId sid, uint64_t first_idx,
                           uint16_t count,
                           std::function<void()> on_ready,
                           uint32_t prof_id = 0) override;

    // --- mem::StreamBufferIf (calls from the private cache) ---
    bool handleFloatedFetch(const mem::Access &access) override;
    void onFloatedHitInCache(const GlobalStreamId &stream,
                             uint64_t elem_idx) override;
    void recvDataU(const mem::MemMsgPtr &msg) override;
    void onDirtyEviction(Addr line_paddr) override;

    /** Float ack / NACK from an SE_L3 bank (via the mesh). */
    void recvFloatAck(const std::shared_ptr<StreamAckMsg> &msg);
    uint16_t currentCreditHead() override;
    bool mustDelayEviction(uint16_t seq_num) override;
    void onEvictionPressure() override;

    SEL2Stats &stats() { return _stats; }

    /** Attach the --verify data plane (null = verify off). */
    void setVerify(verify::DataPlane *v) { _verify = v; }

    /** Enable latency attribution (null = off, the default). */
    void setProfiler(prof::Profiler *p) { _prof = p; }

    /** Dump buffered stream state (debugging aid). */
    void debugDump(std::FILE *f) const;

    // --- introspection for the invariant checker / drain checks ---
    /** A read-only view of one floated stream's protocol state. */
    struct FloatedView
    {
        StreamId sid;
        uint32_t gen;
        bool isChild;  //!< indirect child (shares the base's credits)
        bool aliased;  //!< served from a leading stream (§IV-B)
        uint64_t grantedUpTo;
        uint64_t consumedUpTo;
        uint64_t capacityElems;
        size_t waiters;
    };

    size_t numFloated() const { return _floated.size(); }
    void forEachFloated(
        const std::function<void(const FloatedView &)> &fn) const;
    /** Latest generation ever issued for @p sid (0 = never floated). */
    uint32_t
    latestGen(StreamId sid) const
    {
        auto it = _genCounter.find(sid);
        return it == _genCounter.end() ? 0 : it->second;
    }

    /**
     * Visit every (sid, latest generation) pair in StreamId order
     * (snapshot capture, DESIGN.md §4j).
     */
    void
    forEachGen(const std::function<void(StreamId, uint32_t)> &fn) const
    {
        for (const auto &kv : _genCounter)
            fn(kv.first, kv.second);
    }

  private:
    struct Waiter
    {
        uint64_t endElem;
        std::function<void()> cb;
        /** Latency-attribution record (0 = untracked) + park tick. */
        uint32_t profId = 0;
        Tick parkTick = 0;
    };

    struct FloatedStream
    {
        isa::StreamConfig cfg;
        uint32_t gen = 0;
        StreamId baseSid = invalidStream; //!< valid for indirect children
        std::vector<StreamId> children;

        uint64_t startElem = 0;
        /** Arrival frontier: contiguous data received below this. */
        uint64_t nextExpected = 0;
        /** Elements arrived beyond the contiguous frontier. */
        std::vector<uint64_t> outOfOrder;
        /** Consumption frontier (served to SE_core / cache hits). */
        uint64_t consumedUpTo = 0;
        /** Credit horizon granted to the SE_L3. */
        uint64_t grantedUpTo = 0;
        uint64_t capacityElems = 0;

        // --- §IV-B constant-offset reuse ---
        /** Leading stream whose data covers ours (invalid if none). */
        StreamId aliasRoot = invalidStream;
        /** Our element i equals root element i + aliasOffset. */
        uint64_t aliasOffset = 0;
        /** Our elements >= tailStart come from our own remote tail. */
        uint64_t tailStart = 0;
        /** Lagging streams served from our buffer. */
        std::vector<StreamId> aliasedBy;

        std::vector<Waiter> waiters;

        // --- robustness bookkeeping ---
        /** Some bank acknowledged our config/migration. */
        bool acked = false;
        /** Config resends so far (ack timeout + stall recovery). */
        int retries = 0;
        /** Last arrival/ack/serve for this stream. */
        Tick lastProgress = 0;
    };

    /** Outstanding credit grant for the §IV-E seq window. */
    struct Grant
    {
        uint16_t seq;
        StreamId sid;
        uint32_t gen;
        uint64_t endElem;
    };

    FloatedStream *find(StreamId sid);
    const FloatedStream *findConst(StreamId sid) const;

    /**
     * §IV-B: try to alias the incoming stream onto an already-floated
     * leading stream with the same pattern at a constant element
     * offset. @return the element index the remote engine must still
     * produce from (the uncovered tail), or @p start when no match.
     */
    uint64_t tryStencilAlias(FloatedStream &s, uint64_t start);

    /** Contiguous element availability, including via the alias root. */
    uint64_t availableUpTo(const FloatedStream &s);

    void advanceArrival(FloatedStream &s, uint64_t first, uint16_t count);
    void serveWaiters(StreamId sid, FloatedStream &s);
    void maybeGrantCredits(StreamId sid, FloatedStream &s);
    void advanceTail();

    /** Virtual address of one element (functional indirect chase). */
    Addr elemVaddr(const FloatedStream &s, uint64_t idx);

    /** Re-issue an unserved fetch through the cache (after a sink). */
    void reissueThroughCache(StreamId sid, const FloatedStream &s,
                             uint64_t first, uint16_t count,
                             std::function<void()> cb);

    TileId bankOfElem(const FloatedStream &s, uint64_t idx);

    // --- robustness: ack timeout, stall recovery, fallback ---
    /** Resend the config for @p sid from its arrival frontier. */
    void resendConfig(StreamId sid, FloatedStream &base);
    /** Ack-timeout check for (sid, gen); retries or falls back. */
    void checkAck(StreamId sid, uint32_t gen);
    void armAckCheck(StreamId sid, uint32_t gen);
    /** Periodic stuck-stream scan; self-stops when nothing floats. */
    void scheduleProgressScan();
    void progressScan();
    /** True when the stream group is blocking the core right now. */
    bool groupHasWaiters(const FloatedStream &base) const;

    SEL2Config _cfg;
    TileId _tile;
    noc::Mesh &_mesh;
    const mem::NucaMap &_nuca;
    mem::PrivCache &_cache;
    mem::TlbHierarchy &_tlb;
    mem::AddressSpace &_as;
    stream::SECore &_seCore;
    verify::DataPlane *_verify = nullptr;
    prof::Profiler *_prof = nullptr;

    // Ordered by StreamId: these tables are iterated on paths that
    // emit messages and pick alias leaders, where hash order would
    // break the determinism contract (sflint D1).
    std::map<StreamId, FloatedStream> _floated;
    std::map<StreamId, uint32_t> _genCounter;

    std::deque<Grant> _grants;
    uint16_t _headSeq = 0;
    uint16_t _tailSeq = 0;
    /** Progress scan: recurring while streams are floated. */
    RecurringEvent _scan;

    SEL2Stats _stats;
};

} // namespace flt
} // namespace sf

#endif // SF_FLT_SE_L2_HH
