#include "flt/se_l2.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "verify/data_plane.hh"

namespace sf {
namespace flt {

SEL2::SEL2(const std::string &name, EventQueue &eq, TileId tile,
           const SEL2Config &cfg, noc::Mesh &mesh,
           const mem::NucaMap &nuca, mem::PrivCache &cache,
           mem::TlbHierarchy &tlb, mem::AddressSpace &as,
           stream::SECore &se_core)
    : SimObject(name, eq), _cfg(cfg), _tile(tile), _mesh(mesh),
      _nuca(nuca), _cache(cache), _tlb(tlb), _as(as), _seCore(se_core),
      _scan(eq)
{
    _cache.setStreamBuffer(this);
}

SEL2::FloatedStream *
SEL2::find(StreamId sid)
{
    auto it = _floated.find(sid);
    return it == _floated.end() ? nullptr : &it->second;
}

const SEL2::FloatedStream *
SEL2::findConst(StreamId sid) const
{
    auto it = _floated.find(sid);
    return it == _floated.end() ? nullptr : &it->second;
}

bool
SEL2::isFloating(StreamId sid) const
{
    return findConst(sid) != nullptr;
}

uint64_t
SEL2::tryStencilAlias(FloatedStream &s, uint64_t start)
{
    const isa::AffinePattern &p = s.cfg.affine;
    if (p.stride[0] == 0)
        return start;
    for (auto &[other_sid, other] : _floated) {
        if (other_sid == s.cfg.sid || other.cfg.hasIndirect ||
            other.cfg.isStore || other.aliasRoot != invalidStream) {
            continue;
        }
        const isa::AffinePattern &q = other.cfg.affine;
        if (q.elemSize != p.elemSize || q.nDims != p.nDims)
            continue;
        bool same_shape = true;
        for (int d = 0; d < p.nDims; ++d) {
            if (q.stride[d] != p.stride[d] || q.len[d] != p.len[d])
                same_shape = false;
        }
        if (!same_shape || other.startElem != start)
            continue;
        // Our element i sits at base + i*stride; the leader's element
        // i + K does when our base leads by K strides.
        int64_t diff = static_cast<int64_t>(p.base) -
                       static_cast<int64_t>(q.base);
        if (diff <= 0 || diff % p.stride[0] != 0)
            continue;
        uint64_t k = static_cast<uint64_t>(diff / p.stride[0]);
        if (k == 0 || k > other.capacityElems)
            continue;

        uint64_t horizon =
            s.cfg.lengthKnown ? s.cfg.totalElems() : ~0ULL;
        // The leader must actually cover a useful part of our range:
        // our element i equals its element i+K, which only exists for
        // i < horizon - K. Demand a majority overlap.
        if (horizon != ~0ULL && k * 2 > horizon)
            continue;
        s.aliasRoot = other_sid;
        s.aliasOffset = k;
        s.tailStart = horizon == ~0ULL ? ~0ULL
                                       : (horizon > k ? horizon - k
                                                      : start);
        s.tailStart = std::max(s.tailStart, start);
        s.nextExpected = s.tailStart;
        other.aliasedBy.push_back(s.cfg.sid);
        ++_stats.stencilMerges;
        return s.tailStart;
    }
    return start;
}

uint64_t
SEL2::availableUpTo(const FloatedStream &s)
{
    if (s.aliasRoot == invalidStream)
        return s.nextExpected;
    auto it = _floated.find(s.aliasRoot);
    if (it == _floated.end())
        return s.nextExpected; // leader gone; only the tail remains
    uint64_t via_root = it->second.nextExpected > s.aliasOffset
                            ? it->second.nextExpected - s.aliasOffset
                            : 0;
    if (via_root < s.tailStart)
        return via_root;
    return std::max(s.tailStart, s.nextExpected);
}

Addr
SEL2::elemVaddr(const FloatedStream &s, uint64_t idx)
{
    if (!s.cfg.hasIndirect)
        return s.cfg.affine.elemAddr(idx);
    uint32_t w_len = std::max<uint32_t>(1, s.cfg.indirect.wLen);
    uint64_t parent_idx = idx / w_len;
    uint32_t w = static_cast<uint32_t>(idx % w_len);
    // The index array value is functionally stable within the stream's
    // synchronization-free region.
    auto bit = _floated.find(s.baseSid);
    const isa::AffinePattern &base_pat =
        bit != _floated.end() ? bit->second.cfg.affine : s.cfg.affine;
    Addr idx_addr = base_pat.elemAddr(parent_idx);
    int64_t idx_value = _as.readInt(idx_addr, s.cfg.indirect.idxSize);
    return s.cfg.indirect.targetAddr(idx_value, w);
}

TileId
SEL2::bankOfElem(const FloatedStream &s, uint64_t idx)
{
    Cycles lat = 0;
    Addr paddr = _tlb.translate(_as, elemVaddr(s, idx), lat);
    return _nuca.bankOf(paddr);
}

bool
SEL2::floatStream(const stream::FloatRequest &req)
{
    int needed = 1 + static_cast<int>(req.indirects.size());
    if (static_cast<int>(_floated.size()) + needed > _cfg.maxStreams)
        return false;

    // Split the buffer among live streams; an affine element reserves
    // space for itself plus its dependent indirect elements.
    int live = static_cast<int>(_floated.size()) + needed;
    uint64_t bytes_per_stream = _cfg.bufferBytes / live;

    auto setup = [&](const isa::StreamConfig &cfg, uint64_t start,
                     StreamId base_sid) -> FloatedStream & {
        FloatedStream &s = _floated[cfg.sid];
        s = FloatedStream();
        s.cfg = cfg;
        s.gen = ++_genCounter[cfg.sid];
        s.baseSid = base_sid;
        s.startElem = start;
        s.nextExpected = start;
        s.consumedUpTo = start;
        uint32_t esz = cfg.hasIndirect ? cfg.indirect.elemSize
                                       : cfg.affine.elemSize;
        s.capacityElems =
            std::max<uint64_t>(8, bytes_per_stream / std::max(1u, esz));
        s.grantedUpTo = start + s.capacityElems;
        if (s.cfg.lengthKnown)
            s.grantedUpTo = std::min(s.grantedUpTo, s.cfg.totalElems());
        return s;
    };

    FloatedStream &base = setup(req.base, req.baseStart, invalidStream);
    base.lastProgress = curTick();
    for (const auto &ind : req.indirects) {
        setup(ind.cfg, ind.start, req.base.sid);
        base.children.push_back(ind.cfg.sid);
    }

    // §IV-B constant-offset reuse: if a leading same-pattern stream
    // is already floating, the remote engine only produces our
    // uncovered tail; the rest is served from the leader's buffer.
    uint64_t remote_start = req.baseStart;
    if (_cfg.enableStencilReuse && req.indirects.empty() &&
        !req.base.hasIndirect) {
        remote_start = tryStencilAlias(base, req.baseStart);
    }

    _grants.push_back(
        {++_headSeq, req.base.sid, base.gen, base.grantedUpTo});

    // Send the configuration packet to the home bank of the first
    // element the engine must produce (translated through the core's
    // L2 TLB, §IV-E).
    uint64_t horizon =
        base.cfg.lengthKnown ? base.cfg.totalElems() : ~0ULL;
    uint64_t bank_elem = remote_start;
    if (horizon != ~0ULL && bank_elem >= horizon)
        bank_elem = horizon ? horizon - 1 : 0;
    TileId bank = bankOfElem(base, bank_elem);
    auto msg = StreamFloatMsg::make(_tile, bank);
    msg->gsid = {_tile, req.base.sid};
    msg->gen = base.gen;
    msg->asid = _as.asid();
    msg->base = req.base;
    for (const auto &ind : req.indirects)
        msg->indirects.push_back({ind.cfg, ind.start});
    msg->nextElem = remote_start;
    uint64_t tail_credit = remote_start + base.capacityElems;
    if (horizon != ~0ULL)
        tail_credit = std::min(tail_credit, horizon);
    msg->creditLimit = std::max(base.grantedUpTo, tail_credit);
    base.grantedUpTo = msg->creditLimit;
    msg->finalizeSize();
    _mesh.send(msg);

    ++_stats.floats;
    ++_stats.configsSent;
    SF_DPRINTF(StreamFloat,
               "float config sid=%d -> bank %d nextElem=%llu "
               "credit=%llu",
               req.base.sid, bank, (unsigned long long)remote_start,
               (unsigned long long)msg->creditLimit);
    if (_cfg.retryEnabled) {
        armAckCheck(req.base.sid, base.gen);
        scheduleProgressScan();
    }
    return true;
}

void
SEL2::resendConfig(StreamId sid, FloatedStream &base)
{
    // Rebuild the config from the live stream state and re-send it to
    // the home bank of the arrival frontier: idempotent on the SE_L3
    // side (same-gen configs replace the entry; already-delivered
    // elements that get re-produced are dropped by the frontier check
    // here), so it recovers from a lost config, migration, or credit
    // without needing to know which one was lost.
    uint64_t next_elem = std::max(base.nextExpected, base.startElem);
    uint64_t horizon =
        base.cfg.lengthKnown ? base.cfg.totalElems() : ~0ULL;
    uint64_t bank_elem = next_elem;
    if (horizon != ~0ULL && bank_elem >= horizon)
        bank_elem = horizon ? horizon - 1 : 0;
    TileId bank = bankOfElem(base, bank_elem);
    auto msg = StreamFloatMsg::make(_tile, bank);
    msg->gsid = {_tile, sid};
    msg->gen = base.gen;
    msg->asid = _as.asid();
    msg->base = base.cfg;
    for (StreamId child_sid : base.children) {
        if (FloatedStream *child = find(child_sid)) {
            uint32_t w_len =
                std::max<uint32_t>(1, child->cfg.indirect.wLen);
            FloatedIndirect ind;
            ind.cfg = child->cfg;
            ind.start = std::max(child->startElem, next_elem * w_len);
            msg->indirects.push_back(ind);
        }
    }
    msg->nextElem = next_elem;
    msg->creditLimit = std::max(base.grantedUpTo, next_elem);
    msg->finalizeSize();
    _mesh.send(msg);
    ++_stats.configsSent;
    ++_stats.floatRetries;
    SF_DPRINTF(StreamFloat,
               "retry %d/%d: resend config sid=%d -> bank %d "
               "nextElem=%llu",
               base.retries, _cfg.maxFloatRetries, sid, bank,
               (unsigned long long)next_elem);
}

void
SEL2::armAckCheck(StreamId sid, uint32_t gen)
{
    scheduleIn(_cfg.floatAckTimeout,
               [this, sid, gen] { checkAck(sid, gen); });
}

void
SEL2::checkAck(StreamId sid, uint32_t gen)
{
    FloatedStream *s = find(sid);
    if (!s || s->gen != gen || s->acked)
        return;
    if (s->retries >= _cfg.maxFloatRetries) {
        // The hierarchy never confirmed the float: revert this stream
        // to core-fetch for good (SE_core marks it noRefloat).
        ++_stats.floatFallbacks;
        warn_once("%s: float config unacked after %d retries, sinking",
                  name().c_str(), _cfg.maxFloatRetries);
        _seCore.requestSink(sid);
        return;
    }
    ++s->retries;
    resendConfig(sid, *s);
    armAckCheck(sid, gen);
}

bool
SEL2::groupHasWaiters(const FloatedStream &base) const
{
    if (!base.waiters.empty())
        return true;
    for (StreamId child : base.children) {
        if (const FloatedStream *c = findConst(child)) {
            if (!c->waiters.empty())
                return true;
        }
    }
    // A lagging constant-offset stream blocked below its tail is
    // waiting on OUR data.
    for (StreamId lag_sid : base.aliasedBy) {
        if (const FloatedStream *lag = findConst(lag_sid)) {
            if (!lag->waiters.empty())
                return true;
        }
    }
    return false;
}

void
SEL2::scheduleProgressScan()
{
    if (_scan.running() || !_cfg.retryEnabled)
        return;
    _scan.start(std::max<Cycles>(1, _cfg.progressTimeout / 2),
                [this] { progressScan(); }, EventPriority::Stat);
}

void
SEL2::progressScan()
{
    if (_floated.empty()) {
        _scan.stop(); // self-stop; floatStream() restarts the scan
        return;
    }
    Tick now = curTick();
    std::vector<StreamId> to_recover;
    std::vector<StreamId> to_sink;
    for (auto &[sid, s] : _floated) {
        if (s.baseSid != invalidStream)
            continue; // children recover through their base
        if (!s.acked)
            continue; // the ack-timeout path owns unacked streams
        if (!groupHasWaiters(s))
            continue; // not blocking the core: nothing to recover
        if (now - s.lastProgress < _cfg.progressTimeout)
            continue;
        if (s.retries >= _cfg.maxFloatRetries)
            to_sink.push_back(sid);
        else
            to_recover.push_back(sid);
    }
    for (StreamId sid : to_recover) {
        FloatedStream &s = _floated.at(sid);
        ++s.retries;
        s.lastProgress = now;
        resendConfig(sid, s);
    }
    for (StreamId sid : to_sink) {
        ++_stats.floatFallbacks;
        warn_once("%s: floated stream stuck after %d recoveries, "
                  "sinking",
                  name().c_str(), _cfg.maxFloatRetries);
        _seCore.requestSink(sid);
    }
    // The recurring event re-queues itself for the next scan.
}

void
SEL2::recvFloatAck(const std::shared_ptr<StreamAckMsg> &msg)
{
    StreamId sid = msg->gsid.sid;
    FloatedStream *s = find(sid);
    if (!s || s->gen != msg->gen)
        return; // stale (stream sunk or refloated since)
    if (msg->nack) {
        ++_stats.floatNacks;
        SF_DPRINTF(StreamFloat,
                   "NACK sid=%d gen=%u: falling back to core-fetch",
                   sid, msg->gen);
        _seCore.requestSink(sid);
        return;
    }
    ++_stats.acksReceived;
    s->acked = true;
    s->lastProgress = curTick();
}

void
SEL2::unfloatStream(StreamId sid)
{
    auto it = _floated.find(sid);
    if (it == _floated.end())
        return;
    // Resolve to the base stream; terminate the whole group.
    if (it->second.baseSid != invalidStream) {
        unfloatStream(it->second.baseSid);
        return;
    }
    FloatedStream &base = it->second;
    ++_stats.unfloats;
    SF_DPRINTF(StreamFloat, "unfloat sid=%d nextExpected=%llu", sid,
               (unsigned long long)base.nextExpected);

    bool finished = base.cfg.lengthKnown &&
                    base.nextExpected >= base.cfg.totalElems();
    if (!finished) {
        // Early termination / sink: chase the engine with an end
        // packet (known-length streams that completed end silently).
        // The engine keeps issuing and migrating until it reaches its
        // credit horizon, so the horizon's home bank is guaranteed to
        // see the stream: send the end there (it waits as a pending
        // end if the stream has not arrived yet).
        uint64_t horizon =
            base.cfg.lengthKnown ? base.cfg.totalElems() : ~0ULL;
        uint64_t target = base.grantedUpTo;
        if (horizon != ~0ULL)
            target = std::min(target, horizon - 1);
        target = std::max(target, base.startElem);
        TileId bank = bankOfElem(base, target);
        auto msg = StreamEndMsg::make(_tile, bank);
        msg->gsid = {_tile, sid};
        msg->gen = base.gen;
        _mesh.send(msg);
        ++_stats.endsSent;
    }

    // Lagging constant-offset streams lose their data source: sink
    // them back to the core (their SE_core refetches via the cache).
    for (StreamId lag_sid : base.aliasedBy) {
        if (FloatedStream *lag = find(lag_sid)) {
            lag->aliasRoot = invalidStream;
            _seCore.requestSink(lag_sid);
        }
    }
    // And detach from our own leader, if any.
    if (base.aliasRoot != invalidStream) {
        if (FloatedStream *root = find(base.aliasRoot)) {
            auto &v = root->aliasedBy;
            v.erase(std::remove(v.begin(), v.end(), sid), v.end());
        }
    }

    std::vector<StreamId> to_erase = {sid};
    for (StreamId child : base.children)
        to_erase.push_back(child);

    for (StreamId victim : to_erase) {
        auto vit = _floated.find(victim);
        if (vit == _floated.end())
            continue;
        // Unserved waiters fall back to fetching through the cache.
        FloatedStream s = std::move(vit->second);
        _floated.erase(vit);
        for (auto &w : s.waiters) {
            uint64_t first = s.consumedUpTo;
            uint64_t span = w.endElem > first ? w.endElem - first : 1;
            auto count = static_cast<uint16_t>(
                std::min<uint64_t>(span, 16));
            reissueThroughCache(victim, s, first, count, std::move(w.cb));
        }
    }
    advanceTail();
}

void
SEL2::reissueThroughCache(StreamId sid, const FloatedStream &s,
                          uint64_t first, uint16_t count,
                          std::function<void()> cb)
{
    Addr vaddr = elemVaddr(s, first);
    Cycles tlb_lat = 0;
    Addr paddr = _tlb.translate(_as, vaddr, tlb_lat);
    mem::Access a;
    a.kind = mem::AccessKind::StreamFetch;
    a.vaddr = vaddr;
    a.paddr = paddr;
    uint32_t esz = s.cfg.hasIndirect ? s.cfg.indirect.elemSize
                                     : s.cfg.affine.elemSize;
    a.size = static_cast<uint16_t>(
        std::min<uint32_t>(esz * count, lineBytes));
    a.stream = {_tile, sid};
    a.elemIdx = first;
    a.streamEligible = true;
    a.onDone = std::move(cb);
    _cache.access(std::move(a));
}

void
SEL2::fetchFloatedElems(StreamId sid, uint64_t first_idx, uint16_t count,
                        std::function<void()> on_ready, uint32_t prof_id)
{
    FloatedStream *s = find(sid);
    if (!s) {
        // Sunk in the meantime: fall back through the cache. We need a
        // config to compute addresses, which is gone; complete after a
        // nominal L2 round trip instead (rare transient).
        scheduleIn(20, std::move(on_ready));
        return;
    }
    uint64_t end = first_idx + count;
    s->consumedUpTo = std::max(s->consumedUpTo, end);
    if (end <= availableUpTo(*s)) {
        ++_stats.servedFetches;
        if (s->aliasRoot != invalidStream && end <= s->tailStart)
            ++_stats.stencilServes;
        _seCore.notifyFloatedBufferServe(sid);
        maybeGrantCredits(sid, *s);
        if (_prof && prof_id)
            _prof->add(_tile, prof_id, prof::Phase::SEBuffer, 0);
        scheduleIn(1, std::move(on_ready));
        return;
    }
    s->waiters.push_back({end, std::move(on_ready), prof_id, curTick()});
}

bool
SEL2::handleFloatedFetch(const mem::Access &access)
{
    StreamId sid = access.stream.sid;
    FloatedStream *s = find(sid);
    if (!s)
        return false;
    uint32_t esz = s->cfg.hasIndirect ? s->cfg.indirect.elemSize
                                      : s->cfg.affine.elemSize;
    uint16_t count = static_cast<uint16_t>(
        std::max<uint32_t>(1, access.size / std::max(1u, esz)));
    fetchFloatedElems(sid, access.elemIdx, count, access.onDone,
                      access.profId);
    return true;
}

void
SEL2::onFloatedHitInCache(const GlobalStreamId &stream, uint64_t elem_idx)
{
    FloatedStream *s = find(stream.sid);
    if (s)
        s->consumedUpTo = std::max(s->consumedUpTo, elem_idx + 1);
    _seCore.notifyFloatedCacheHit(stream.sid);
}

void
SEL2::advanceArrival(FloatedStream &s, uint64_t first, uint16_t count)
{
    for (uint16_t i = 0; i < count; ++i) {
        uint64_t idx = first + i;
        if (idx < s.nextExpected)
            continue;
        if (idx == s.nextExpected) {
            ++s.nextExpected;
            // Absorb any buffered out-of-order arrivals.
            bool advanced = true;
            while (advanced) {
                advanced = false;
                for (size_t k = 0; k < s.outOfOrder.size(); ++k) {
                    if (s.outOfOrder[k] == s.nextExpected) {
                        ++s.nextExpected;
                        s.outOfOrder[k] = s.outOfOrder.back();
                        s.outOfOrder.pop_back();
                        advanced = true;
                        break;
                    }
                }
            }
        } else {
            if (std::find(s.outOfOrder.begin(), s.outOfOrder.end(),
                          idx) == s.outOfOrder.end()) {
                s.outOfOrder.push_back(idx);
            }
        }
    }
}

void
SEL2::recvDataU(const mem::MemMsgPtr &msg)
{
    // --verify: remember the serve-time image of every arriving DataU
    // line, even for responses dropped below (uncached data is
    // consumed by index, not kept coherent).
    if (_verify)
        _verify->noteUncached(_tile, msg->lineAddr, msg->vdata);

    // Resolve which of our streams this response belongs to: direct
    // responses carry our (core, sid); confluence multicasts carry the
    // group in mergedStreams.
    StreamId sid = invalidStream;
    if (msg->stream.core == _tile) {
        sid = msg->stream.sid;
    } else {
        for (const auto &gs : msg->mergedStreams) {
            if (gs.core == _tile) {
                sid = gs.sid;
                break;
            }
        }
    }
    FloatedStream *s = sid != invalidStream ? find(sid) : nullptr;
    if (!s || (msg->stream.core == _tile && msg->streamGen != s->gen)) {
        ++_stats.dataDropped;
        return;
    }

    ++_stats.dataArrived;
    s->lastProgress = curTick();
    s->acked = true; // data proves the engine is alive
    s->retries = 0;  // fresh recovery budget after real progress
    advanceArrival(*s, msg->elemIdx, msg->elemCount);
    serveWaiters(sid, *s);
    // New leader data may unblock lagging constant-offset streams.
    // Work from a copy: serving can mutate the stream table.
    std::vector<StreamId> lag_copy = s->aliasedBy;
    for (StreamId lag_sid : lag_copy) {
        if (FloatedStream *lag = find(lag_sid))
            serveWaiters(lag_sid, *lag);
    }
    if ((s = find(sid)) != nullptr)
        maybeGrantCredits(sid, *s);
    advanceTail();
}

void
SEL2::serveWaiters(StreamId sid, FloatedStream &s)
{
    if (s.waiters.empty())
        return;
    std::vector<Waiter> keep;
    std::vector<std::function<void()>> fire;
    uint64_t avail = availableUpTo(s);
    for (auto &w : s.waiters) {
        if (w.endElem <= avail) {
            if (_prof && w.profId) {
                _prof->add(_tile, w.profId, prof::Phase::SEBuffer,
                           curTick() - w.parkTick);
            }
            fire.push_back(std::move(w.cb));
            s.consumedUpTo = std::max(s.consumedUpTo, w.endElem);
            if (s.aliasRoot != invalidStream && w.endElem <= s.tailStart)
                ++_stats.stencilServes;
        } else {
            keep.push_back(std::move(w));
        }
    }
    s.waiters = std::move(keep);
    if (!fire.empty()) {
        s.lastProgress = curTick();
        _stats.servedFetches += fire.size();
        _seCore.notifyFloatedBufferServe(sid);
        // Defer: callbacks can re-enter the SE (refetch, refloat) and
        // must not run while we hold references into _floated.
        scheduleIn(1, [fire = std::move(fire)]() {
            for (auto &cb : fire)
                cb();
        });
    }
}

void
SEL2::maybeGrantCredits(StreamId sid, FloatedStream &s)
{
    // Indirect children share the base stream's credits (§IV-B).
    if (s.baseSid != invalidStream)
        return;
    uint64_t horizon = s.cfg.lengthKnown ? s.cfg.totalElems() : ~0ULL;
    if (s.grantedUpTo >= horizon)
        return;
    // A leader's elements stay buffered until every lagging constant-
    // offset stream has consumed them too.
    uint64_t effective_consumed = s.consumedUpTo;
    for (StreamId lag_sid : s.aliasedBy) {
        if (const FloatedStream *lag = find(lag_sid)) {
            effective_consumed = std::min(
                effective_consumed,
                lag->consumedUpTo + lag->aliasOffset);
        }
    }
    // consumedUpTo can run ahead of the grant horizon (the core
    // registers waiters for elements it has not been granted yet), so
    // clamp instead of letting the subtraction wrap.
    uint64_t outstanding = s.grantedUpTo > effective_consumed
                               ? s.grantedUpTo - effective_consumed
                               : 0;
    uint64_t free_elems =
        s.capacityElems > outstanding ? s.capacityElems - outstanding : 0;
    if (outstanding > s.capacityElems)
        return; // laggards still need the buffered window
    if (free_elems <
        static_cast<uint64_t>(s.capacityElems * _cfg.creditRefreshFraction))
        return;

    // The engine stalls at the first non-credited element; route the
    // refresh to that element's home bank (§IV-A).
    uint64_t stall_elem = s.grantedUpTo;
    s.grantedUpTo = std::min(horizon, s.grantedUpTo + free_elems);
    _grants.push_back({++_headSeq, sid, s.gen, s.grantedUpTo});

    TileId bank = bankOfElem(s, std::min(stall_elem, horizon - 1));
    auto msg = StreamCreditMsg::make(_tile, bank);
    msg->gsid = {_tile, sid};
    msg->gen = s.gen;
    msg->creditLimit = s.grantedUpTo;
    msg->seq = _headSeq;
    _mesh.send(msg);
    ++_stats.creditsSent;
    SF_DPRINTF(StreamFloat, "credit sid=%d -> bank %d limit=%llu seq=%u",
               sid, bank, (unsigned long long)s.grantedUpTo,
               unsigned(_headSeq));
}

void
SEL2::advanceTail()
{
    while (!_grants.empty()) {
        const Grant &g = _grants.front();
        auto it = _floated.find(g.sid);
        bool satisfied = it == _floated.end() ||
                         it->second.gen != g.gen ||
                         it->second.nextExpected >= g.endElem;
        if (!satisfied)
            break;
        _tailSeq = g.seq;
        _grants.pop_front();
    }
    _cache.drainDelayedEvictions();
}

void
SEL2::onDirtyEviction(Addr line_paddr)
{
    ++_stats.dirtyEvictionSearches;
    std::vector<StreamId> aliased;
    for (auto &[sid, s] : _floated) {
        uint64_t horizon =
            s.cfg.lengthKnown ? s.cfg.totalElems() : s.grantedUpTo;
        uint64_t end = std::min(s.grantedUpTo, horizon);
        end = std::min(end, s.consumedUpTo + s.capacityElems +
                                s.aliasOffset);
        for (uint64_t idx = s.consumedUpTo; idx < end; ++idx) {
            Addr va = elemVaddr(s, idx);
            Addr pa = _as.translateExisting(va);
            if (pa != invalidAddr && lineAlign(pa) == line_paddr) {
                aliased.push_back(sid);
                break;
            }
        }
    }
    for (StreamId sid : aliased) {
        ++_stats.dirtyEvictionAliases;
        _seCore.requestSink(sid);
    }
}

uint16_t
SEL2::currentCreditHead()
{
    return _headSeq;
}

bool
SEL2::mustDelayEviction(uint16_t seq_num)
{
    if (_floated.empty())
        return false;
    // Wrap-aware: the line was tagged at head == seq_num; hold it back
    // while any credit grant at or before that head is unsatisfied.
    return static_cast<int16_t>(seq_num - _tailSeq) > 0;
}

void
SEL2::debugDump(std::FILE *f) const
{
    for (const auto &[sid, s] : _floated) {
        std::fprintf(f,
                     "  %s sid=%d gen=%u start=%llu nextExp=%llu "
                     "consumed=%llu granted=%llu cap=%llu ooo=%zu "
                     "waiters=%zu acked=%d retries=%d "
                     "lastProgress=%llu\n",
                     name().c_str(), sid, s.gen,
                     (unsigned long long)s.startElem,
                     (unsigned long long)s.nextExpected,
                     (unsigned long long)s.consumedUpTo,
                     (unsigned long long)s.grantedUpTo,
                     (unsigned long long)s.capacityElems,
                     s.outOfOrder.size(), s.waiters.size(), s.acked,
                     s.retries, (unsigned long long)s.lastProgress);
    }
    std::fprintf(f, "  %s head=%u tail=%u grants=%zu\n", name().c_str(),
                 _headSeq, _tailSeq, _grants.size());
}

void
SEL2::forEachFloated(
    const std::function<void(const FloatedView &)> &fn) const
{
    for (const auto &[sid, s] : _floated) {
        FloatedView v;
        v.sid = sid;
        v.gen = s.gen;
        v.isChild = s.baseSid != invalidStream;
        v.aliased = s.aliasRoot != invalidStream;
        v.grantedUpTo = s.grantedUpTo;
        v.consumedUpTo = s.consumedUpTo;
        v.capacityElems = s.capacityElems;
        v.waiters = s.waiters.size();
        fn(v);
    }
}

void
SEL2::onEvictionPressure()
{
    if (_grants.empty())
        return;
    ++_stats.evictionPressureSinks;
    _seCore.requestSink(_grants.front().sid);
}

} // namespace flt
} // namespace sf
