/**
 * @file
 * SE_L3: the L3-bank stream engine (Fig. 10).
 *
 * Holds floated stream contexts, issues line-coalesced uncached read
 * requests to the colocated L3 bank on behalf of remote cores (round-
 * robin across ready streams, one per cycle), migrates streams to the
 * next bank at interleaving boundaries, enforces credit-based flow
 * control, chases indirection (reading index values and dispatching
 * subline requests to target banks), and merges same-pattern streams
 * from a 2x2 tile block into multicast confluence groups (§IV-C).
 */

#ifndef SF_FLT_SE_L3_HH
#define SF_FLT_SE_L3_HH

#include <cstdio>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "flt/stream_msg.hh"
#include "mem/l3_bank.hh"
#include "mem/nuca.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace sf {
namespace flt {

struct SEL3Config
{
    /** Streams this bank can hold (12 per core x 64 cores, Table III). */
    int maxStreams = 768;
    /** SE_L3 TLB (Table III: 1k entries, 16-way, 8-cycle). */
    uint32_t tlbEntries = 1024;
    uint32_t tlbWays = 16;
    Cycles tlbLatency = 8;
    Cycles tlbWalkLatency = 80;
    /** Issue at most one line request per cycle per bank. */
    Cycles issueInterval = 1;
    /** Enable stream confluence (§IV-C). */
    bool enableConfluence = true;
    /** Confluence block edge (2 => 2x2 tile blocks). */
    int blockSize = 2;
    /** Max progress difference (elements) for a merge. */
    uint64_t mergeSlackElems = 256;
    /** Max streams per confluence group. */
    int maxGroupSize = 4;
};

struct SEL3Stats
{
    stats::Scalar configsReceived, migrationsIn, migrationsOut;
    stats::Scalar endsReceived, creditsReceived;
    stats::Scalar acksSent, floatNacksSent;
    stats::Scalar lineRequestsIssued, indirectRequestsIssued;
    stats::Scalar confluenceMerges, confluenceRequests;
    stats::Scalar streamsCompleted;
    stats::Scalar tlbHits, tlbMisses;
    stats::Scalar creditStalls;
    stats::Scalar staleConfigsDropped;

    /** Register every counter with @p g for report dumping. */
    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("configsReceived", &configsReceived);
        g.regScalar("migrationsIn", &migrationsIn);
        g.regScalar("migrationsOut", &migrationsOut);
        g.regScalar("endsReceived", &endsReceived);
        g.regScalar("creditsReceived", &creditsReceived);
        g.regScalar("acksSent", &acksSent);
        g.regScalar("floatNacksSent", &floatNacksSent);
        g.regScalar("lineRequestsIssued", &lineRequestsIssued);
        g.regScalar("indirectRequestsIssued", &indirectRequestsIssued);
        g.regScalar("confluenceMerges", &confluenceMerges);
        g.regScalar("confluenceRequests", &confluenceRequests);
        g.regScalar("streamsCompleted", &streamsCompleted);
        g.regScalar("tlbHits", &tlbHits);
        g.regScalar("tlbMisses", &tlbMisses);
        g.regScalar("creditStalls", &creditStalls);
        g.regScalar("staleConfigsDropped", &staleConfigsDropped);
    }
};

/** The per-bank L3 stream engine. */
class SEL3 : public SimObject
{
  public:
    /** Resolves an address-space id to the process address space. */
    using AsResolver = std::function<mem::AddressSpace *(int)>;

    SEL3(const std::string &name, EventQueue &eq, TileId tile,
         const SEL3Config &cfg, noc::Mesh &mesh,
         const mem::NucaMap &nuca, mem::L3Bank &bank,
         AsResolver resolve_as);

    /** Stream-management messages from the mesh. */
    void recvConfig(const std::shared_ptr<StreamFloatMsg> &msg);
    void recvCredit(const std::shared_ptr<StreamCreditMsg> &msg);
    void recvEnd(const std::shared_ptr<StreamEndMsg> &msg);

    SEL3Stats &stats() { return _stats; }
    size_t numStreams() const { return _entries.size(); }
    TileId tile() const { return _tile; }

    /** Dump resident stream contexts (debugging aid). */
    void debugDump(std::FILE *f) const;

    /**
     * Introspection for the invariant checker: visit every resident
     * confluence-group member with its group's shared issue cursor.
     */
    void forEachResident(
        const std::function<void(const GlobalStreamId &gsid,
                                 uint32_t gen, uint64_t issue_pos,
                                 uint64_t credit_limit)> &fn) const;

    /**
     * Visit every replay-filter entry (departure frontier) sorted by
     * (core, sid) — snapshot capture, DESIGN.md §4j.
     */
    void forEachDeparted(
        const std::function<void(const GlobalStreamId &gsid,
                                 uint32_t gen, uint64_t frontier)> &fn)
        const;

  private:
    /** One confluence-group member (the leader is members[0]). */
    struct Member
    {
        GlobalStreamId gsid;
        uint32_t gen = 0;
        /** Absolute credit horizon for this member. */
        uint64_t creditLimit = 0;
        /** Elements below this were already delivered pre-merge. */
        uint64_t joinedAt = 0;
    };

    /** A floated stream context resident at this bank. */
    struct Entry
    {
        isa::StreamConfig base;
        std::vector<FloatedIndirect> indirects;
        int asid = 0;
        /** Next base element to issue. */
        uint64_t issuePos = 0;
        /** Members: [0] is the owning stream; >1 means confluence. */
        std::vector<Member> members;
        /** Round-robin bookkeeping. */
        bool stalledOnCredit = false;
    };

    using EntryList = std::list<Entry>;

    EntryList::iterator findEntry(const GlobalStreamId &gsid);

    /**
     * Add a stream (config or migration); tries confluence merge.
     * @return false when the stream table is full (caller NACKs).
     */
    bool addStream(Entry &&e);
    bool tryMerge(const Entry &incoming);

    /** Ack (or NACK on overflow) a config back to the owning core. */
    void sendAck(const GlobalStreamId &gsid, uint32_t gen, bool nack);

    /** Schedule the issue pump if idle. */
    void kick();
    void issueTick();
    /** Try to issue one line request for @p e; true on progress. */
    bool issueOne(Entry &e);

    /** Hand the stream group over to @p next_bank (§IV-A migrate). */
    void migrate(Entry &e, TileId next_bank);

    /** Dispatch indirect requests for base elements [first, first+n). */
    void issueIndirects(const Entry &e, uint64_t first, uint16_t count);

    /** Translate with SE_L3 TLB accounting; returns extra latency. */
    Addr translate(mem::AddressSpace &as, Addr vaddr, Cycles &penalty);

    mem::AddressSpace &spaceOf(const Entry &e);

    /** 2x2 block id of a tile (confluence locality constraint). */
    int blockOf(TileId t) const;

    SEL3Config _cfg;
    TileId _tile;
    noc::Mesh &_mesh;
    const mem::NucaMap &_nuca;
    mem::L3Bank &_bank;
    AsResolver _resolveAs;
    mem::Tlb _tlb;

    /** Round-robin via rotation: the front entry is serviced next. */
    EntryList _entries;
    /** Issue pump: recurring while busy, stopped when idle. */
    RecurringEvent _pump;

    /** Credits/ends that arrived before their stream (migration race). */
    std::unordered_map<GlobalStreamId, std::pair<uint32_t, uint64_t>>
        _pendingCredits;
    std::unordered_map<GlobalStreamId, uint32_t> _pendingEnds;

    /**
     * Replay filter: the (gen, frontier) at which each stream last
     * left this bank, recorded on migration-out and on end. A config
     * or migration that arrives at or behind this point is a stale
     * replay (duplicated/delayed in the network) and must be dropped,
     * or it would resurrect a ghost copy of the stream that the end
     * packet can never catch. Dropped replays are NOT acked: a
     * genuinely lost config that lands here retries later with an
     * advanced frontier and reaches the right bank. Bounded by
     * cores x stream ids.
     */
    std::unordered_map<GlobalStreamId, std::pair<uint32_t, uint64_t>>
        _departed;
    void recordDeparture(const GlobalStreamId &gsid, uint32_t gen,
                         uint64_t frontier);

    SEL3Stats _stats;
};

} // namespace flt
} // namespace sf

#endif // SF_FLT_SE_L3_HH
