/**
 * @file
 * NoC messages that manage floating streams: configuration, migration,
 * flow-control credits, and termination (§IV-A). These are the "extra
 * messages" accounted as stream-management traffic in Fig. 15.
 */

#ifndef SF_FLT_STREAM_MSG_HH
#define SF_FLT_STREAM_MSG_HH

#include <cstdint>
#include <vector>

#include "isa/stream_pattern.hh"
#include "noc/message.hh"
#include "sim/types.hh"

namespace sf {
namespace flt {

/** One indirect stream floated along with its base (§IV-B). */
struct FloatedIndirect
{
    isa::StreamConfig cfg;
    /** First indirect element the floated engine must produce. */
    uint64_t start = 0;
};

/**
 * Stream configuration / migration packet (Table I). The payload size
 * is the paper's 450 bits (+60 per indirect stream), under one cache
 * line.
 */
struct StreamFloatMsg : noc::Message
{
    bool isMigration = false;
    GlobalStreamId gsid;
    /** Generation: guards stale engines after sink + refloat. */
    uint32_t gen = 0;
    int asid = 0;

    isa::StreamConfig base;
    std::vector<FloatedIndirect> indirects;

    /** Next base element to issue. */
    uint64_t nextElem = 0;
    /** Absolute credit horizon: elements < this may be issued. */
    uint64_t creditLimit = 0;

    static std::shared_ptr<StreamFloatMsg>
    make(TileId src, TileId dest)
    {
        auto m = std::make_shared<StreamFloatMsg>();
        m->src = src;
        m->dests = {dest};
        m->cls = noc::FlitClass::StreamMgmt;
        m->vnet = noc::VNet::Control;
        return m;
    }

    /** Size the packet per Table I once fields are filled in. */
    void
    finalizeSize()
    {
        uint32_t bits = base.configBits();
        for (size_t i = 1; i < indirects.size(); ++i)
            bits += 60;
        payloadBytes = (bits + 7) / 8;
    }
};

/** Coarse-grained flow-control credit (§IV-A). */
struct StreamCreditMsg : noc::Message
{
    GlobalStreamId gsid;
    uint32_t gen = 0;
    /** New absolute credit horizon (idempotent). */
    uint64_t creditLimit = 0;
    /** Sequence number for the §IV-E eviction-delay window. */
    uint16_t seq = 0;

    static std::shared_ptr<StreamCreditMsg>
    make(TileId src, TileId dest)
    {
        auto m = std::make_shared<StreamCreditMsg>();
        m->src = src;
        m->dests = {dest};
        m->payloadBytes = 8;
        m->cls = noc::FlitClass::StreamMgmt;
        m->vnet = noc::VNet::Control;
        return m;
    }
};

/** Terminate a floated stream (stream_end / early sink). */
struct StreamEndMsg : noc::Message
{
    GlobalStreamId gsid;
    uint32_t gen = 0;

    static std::shared_ptr<StreamEndMsg>
    make(TileId src, TileId dest)
    {
        auto m = std::make_shared<StreamEndMsg>();
        m->src = src;
        m->dests = {dest};
        m->payloadBytes = 4;
        m->cls = noc::FlitClass::StreamMgmt;
        m->vnet = noc::VNet::Control;
        return m;
    }
};

/**
 * Acknowledgement for a StreamFloatMsg: sent by the SE_L3 bank that
 * received the configuration / migration, back to the requesting
 * core's SE_L2. `nack` means the bank rejected the stream (table
 * overflow) and the core side must fall back to core-fetch.
 */
struct StreamAckMsg : noc::Message
{
    GlobalStreamId gsid;
    uint32_t gen = 0;
    bool nack = false;

    static std::shared_ptr<StreamAckMsg>
    make(TileId src, TileId dest)
    {
        auto m = std::make_shared<StreamAckMsg>();
        m->src = src;
        m->dests = {dest};
        m->payloadBytes = 4;
        m->cls = noc::FlitClass::StreamMgmt;
        m->vnet = noc::VNet::Control;
        return m;
    }
};

} // namespace flt
} // namespace sf

#endif // SF_FLT_STREAM_MSG_HH
