/**
 * @file
 * Needleman-Wunsch sequence alignment (Rodinia; Table IV: 2048x2048).
 *
 * The score matrix is processed in BxB blocks along anti-diagonals
 * with a barrier per diagonal. Within a block, each row reads the
 * reference matrix row and the previous score row and produces the
 * next score row with a serial dependence chain. The key property the
 * paper calls out: the *blocked 2D array accessed in diagonal order*
 * defeats simple stride prefetchers, while the per-block rows are
 * clean 2-level affine streams.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

constexpr uint64_t blockDim = 32;

class NwWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "nw"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _dim = scaled(2048, 256);
        _blocks = _dim / blockDim;
        _ref = as.alloc(_dim * _dim * 4, "ref");
        _mat = as.alloc(_dim * _dim * 4, "matrix");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"ref", _ref, _dim * _dim * 4},
                {"matrix", _mat, _dim * _dim * 4}};
    }

    uint64_t _dim = 0, _blocks = 0;
    Addr _ref = 0, _mat = 0;
    mem::AddressSpace *_space = nullptr;
};

class NwThread : public KernelThread
{
  public:
    NwThread(NwWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w), _tidx(tid)
    {}

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        uint64_t num_diagonals = 2 * _w._blocks - 1;
        if (_diag >= num_diagonals)
            return 0;

        // Blocks on this anti-diagonal, statically partitioned.
        uint64_t d = _diag;
        uint64_t first_by = d < _w._blocks ? 0 : d - (_w._blocks - 1);
        uint64_t last_by = std::min(d, _w._blocks - 1);
        uint64_t count = last_by - first_by + 1;
        uint64_t lo, hi;
        uint64_t t = static_cast<uint64_t>(_w.params.numThreads);
        lo = count * static_cast<uint64_t>(_tidx) / t;
        hi = count * static_cast<uint64_t>(_tidx + 1) / t;

        uint64_t pitch = _w._dim * 4;
        constexpr StreamId sRef = 0, sUp = 1, sOut = 2;

        for (uint64_t k = lo; k < hi; ++k) {
            uint64_t by = first_by + k;
            uint64_t bx = d - by;
            Addr blk_ref = _w._ref +
                           (by * blockDim * _w._dim + bx * blockDim) * 4;
            Addr blk_mat = _w._mat +
                           (by * blockDim * _w._dim + bx * blockDim) * 4;

            // 2-level affine streams over the block's rows: this is
            // the diagonal-order pattern that breaks stride PF. The
            // block's top boundary row is read once; the remaining
            // rows carry their dependence in registers and are only
            // written (no read-after-write aliasing inside a block).
            beginStreams(
                out,
                {affine2d(sRef, blk_ref, 4, blockDim, 4, blockDim - 1,
                          static_cast<int64_t>(pitch)),
                 affine1d(sUp, blk_mat, 4, blockDim, 4),
                 affine2d(sOut, blk_mat + pitch, 4, blockDim, 4,
                          blockDim - 1, static_cast<int64_t>(pitch),
                          true)});
            rowPass(out, blockDim, {sUp}, invalidStream, /*fp=*/0,
                    /*int=*/1, /*vec=*/8);
            for (uint64_t row = 0; row + 1 < blockDim; ++row) {
                // Serial max-chain across the row (int compares).
                rowPass(out, blockDim, {sRef}, sOut, /*fp=*/0,
                        /*int=*/3, /*vec=*/8);
            }
            endStreams(out, {sRef, sUp, sOut});
        }

        emitBarrier(out);
        ++_diag;
        return out.size() - before;
    }

  private:
    NwWorkload &_w;
    int _tidx;
    uint64_t _diag = 0;
};

std::shared_ptr<isa::OpSource>
NwWorkload::makeThread(int tid)
{
    return std::make_shared<NwThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeNw(const WorkloadParams &p)
{
    return std::make_unique<NwWorkload>(p);
}

} // namespace workload
} // namespace sf
