/**
 * @file
 * Internal factory declarations for the 12 evaluated benchmarks
 * (Table IV). Use workload::makeWorkload() from outside.
 */

#ifndef SF_WORKLOAD_KERNELS_HH
#define SF_WORKLOAD_KERNELS_HH

#include <memory>

#include "workload/workload.hh"

namespace sf {
namespace workload {

std::unique_ptr<Workload> makeConv3d(const WorkloadParams &p);
std::unique_ptr<Workload> makeMv(const WorkloadParams &p);
std::unique_ptr<Workload> makeBtree(const WorkloadParams &p);
std::unique_ptr<Workload> makeBfs(const WorkloadParams &p);
std::unique_ptr<Workload> makeCfd(const WorkloadParams &p);
std::unique_ptr<Workload> makeHotspot(const WorkloadParams &p);
std::unique_ptr<Workload> makeHotspot3D(const WorkloadParams &p);
std::unique_ptr<Workload> makeNn(const WorkloadParams &p);
std::unique_ptr<Workload> makeNw(const WorkloadParams &p);
std::unique_ptr<Workload> makeParticlefilter(const WorkloadParams &p);
std::unique_ptr<Workload> makePathfinder(const WorkloadParams &p);
std::unique_ptr<Workload> makeSrad(const WorkloadParams &p);

} // namespace workload
} // namespace sf

#endif // SF_WORKLOAD_KERNELS_HH
