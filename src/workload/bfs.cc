/**
 * @file
 * Breadth-first search (Rodinia-style level-synchronous BFS;
 * Table IV: 1M nodes, ~600k edges).
 *
 * Each level iterates the edge list: the edge targets are an affine
 * stream A = edges[], and the per-target visited reads are the
 * indirect stream B[A[i]] - the paper's indirect-floating showcase
 * (subline transfer matters because visited[] reads have no spatial
 * locality). Updates go to a separate "updating" mask, so reads in a
 * level never alias the level's writes (double buffering, as in
 * Rodinia).
 */

#include "workload/kernels.hh"

#include "sim/rng.hh"
#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class BfsWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "bfs"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _nodes = scaled(1000000, 4096);
        _edges = scaled(599970, 4096);
        _levels = 2;
        _edgeArr = as.alloc(_edges * 4, "edges");
        _visited = as.alloc(_nodes * 4, "visited");
        _updating = as.alloc(_nodes * 4, "updating");

        Rng rng(params.seed);
        for (uint64_t e = 0; e < _edges; ++e) {
            as.writeT<int32_t>(_edgeArr + e * 4,
                               static_cast<int32_t>(rng.range(_nodes)));
        }
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"edges", _edgeArr, _edges * 4},
                {"visited", _visited, _nodes * 4},
                {"updating", _updating, _nodes * 4}};
    }

    uint64_t _nodes = 0, _edges = 0;
    int _levels = 0;
    Addr _edgeArr = 0, _visited = 0, _updating = 0;
    mem::AddressSpace *_space = nullptr;
};

class BfsThread : public KernelThread
{
  public:
    BfsThread(BfsWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w), _rng(w.params.seed ^ (0x9e37u + tid))
    {
        _w.chunk(_w._edges, tid, _lo, _hi);
        _pos = _lo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_level >= _w._levels)
            return 0;

        constexpr StreamId sE = 0, sV = 1;
        uint64_t n = _hi - _lo;

        if (_pos == _lo) {
            beginStreams(
                out,
                {affine1d(sE, _w._edgeArr + _lo * 4, 4, n, 4),
                 indirectOn(sV, sE, _w._visited, 4, 4, 4, 1, n)});
        }

        uint64_t chunk_end = std::min(_hi, _pos + 2048);
        for (; _pos < chunk_end; ++_pos) {
            uint64_t e = loadView(out, sE, 1);
            // The visited read depends on the edge value (indirect).
            uint64_t v = loadView(out, sV, 1, e);
            uint64_t c = emitCompute(out, isa::OpKind::IntAlu, v);
            // A fraction of targets is newly discovered and queued.
            int32_t tgt = _as.readT<int32_t>(viewAddr(sE));
            if (_rng.chance(0.2)) {
                emitStore(out,
                          _w._updating + static_cast<uint64_t>(tgt) * 4,
                          4, pcOf(77), c);
            }
            stepView(out, sE, 1);
            stepView(out, sV, 1);
        }

        if (_pos >= _hi) {
            endStreams(out, {sE, sV});
            emitBarrier(out);
            _pos = _lo;
            ++_level;
        }
        return out.size() - before;
    }

  private:
    BfsWorkload &_w;
    Rng _rng;
    uint64_t _lo = 0, _hi = 0, _pos = 0;
    int _level = 0;
};

std::shared_ptr<isa::OpSource>
BfsWorkload::makeThread(int tid)
{
    return std::make_shared<BfsThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeBfs(const WorkloadParams &p)
{
    return std::make_unique<BfsWorkload>(p);
}

} // namespace workload
} // namespace sf
