/**
 * @file
 * Workload interface: each benchmark allocates and initializes its
 * dataset in the shared address space, then produces one OpSource per
 * hardware thread (OpenMP-style static partitioning with barriers).
 *
 * Datasets follow Table IV structurally; the `scale` parameter shrinks
 * them uniformly so full sweeps finish in reasonable wall-clock time
 * (see DESIGN.md substitutions). `useStreams` selects between the
 * stream-specialized binary (SS/SF machines) and the plain binary
 * (Base and prefetcher machines) - the same role the paper's compiler
 * flag plays.
 */

#ifndef SF_WORKLOAD_WORKLOAD_HH
#define SF_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/op_source.hh"
#include "mem/phys_mem.hh"
#include "verify/region.hh"

namespace sf {
namespace workload {

struct WorkloadParams
{
    int numThreads = 16;
    /** Uniform dataset scale: 1.0 = paper-size (Table IV). */
    double scale = 0.1;
    /** Emit decoupled-stream ops (SS/SF) vs plain loads (baselines). */
    bool useStreams = false;
    /** SIMD width in 4-byte elements (AVX-512 = 16). */
    int vecElems = 16;
    uint64_t seed = 12345;
};

/** One benchmark. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &p) : params(p) {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate and initialize the dataset. Called exactly once. */
    virtual void init(mem::AddressSpace &as) = 0;

    /** Create the op source for thread @p tid. */
    virtual std::shared_ptr<isa::OpSource> makeThread(int tid) = 0;

    /**
     * Named dataset arrays, for --verify divergence diagnostics
     * ("which array went bad"). Valid after init().
     */
    virtual std::vector<verify::MemRegion> verifyRegions() const
    {
        return {};
    }

    std::vector<std::shared_ptr<isa::OpSource>>
    makeAllThreads()
    {
        std::vector<std::shared_ptr<isa::OpSource>> v;
        for (int t = 0; t < params.numThreads; ++t)
            v.push_back(makeThread(t));
        return v;
    }

    WorkloadParams params;

    /** Contiguous static partition [lo, hi) of @p n items for @p tid. */
    void
    chunk(uint64_t n, int tid, uint64_t &lo, uint64_t &hi) const
    {
        uint64_t t = static_cast<uint64_t>(params.numThreads);
        lo = n * static_cast<uint64_t>(tid) / t;
        hi = n * static_cast<uint64_t>(tid + 1) / t;
    }

    /** Scale a paper-size dimension, keeping a sane floor. */
    uint64_t
    scaled(uint64_t paper_size, uint64_t floor_size = 64) const
    {
        auto v = static_cast<uint64_t>(
            static_cast<double>(paper_size) * params.scale);
        return std::max(v, floor_size);
    }
};

/** Factory over the 12 evaluated benchmarks (Table IV). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** Names of all 12 benchmarks, in the paper's figure order. */
const std::vector<std::string> &workloadNames();

} // namespace workload
} // namespace sf

#endif // SF_WORKLOAD_WORKLOAD_HH
