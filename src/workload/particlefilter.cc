/**
 * @file
 * Particle filter (Rodinia; Table IV: 48k particles, 1000x1000 frame).
 *
 * Per frame: (1) weight update - affine streams over the particle
 * arrays; (2) serial CDF accumulation on thread 0; (3) resampling -
 * every thread scans the *shared* CDF array from the beginning until
 * it passes its u value. All threads stream the same CDF with the same
 * pattern at the same time: the paper's second confluence showcase.
 * The scan length is data dependent, so the CDF stream has unknown
 * length and is terminated early with stream_end.
 */

#include "workload/kernels.hh"

#include "sim/rng.hh"
#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class ParticlefilterWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "particlefilter"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _particles = scaled(48128, 4096);
        _frames = 2;
        _weights = as.alloc(_particles * 4, "weights");
        _cdf = as.alloc(_particles * 4, "cdf");
        _arrayX = as.alloc(_particles * 4, "arrayX");
        _arrayY = as.alloc(_particles * 4, "arrayY");
        _outX = as.alloc(_particles * 4, "outX");

        // Materialize a plausible CDF so resampling scan lengths are
        // data dependent but deterministic.
        Rng rng(params.seed);
        double acc = 0;
        for (uint64_t i = 0; i < _particles; ++i) {
            acc += rng.uniform() + 0.1;
            as.writeT<float>(_cdf + i * 4, static_cast<float>(acc));
        }
        _total = acc;
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        uint64_t bytes = _particles * 4;
        return {{"weights", _weights, bytes},
                {"cdf", _cdf, bytes},
                {"arrayX", _arrayX, bytes},
                {"arrayY", _arrayY, bytes},
                {"outX", _outX, bytes}};
    }

    uint64_t _particles = 0;
    int _frames = 0;
    Addr _weights = 0, _cdf = 0, _arrayX = 0, _arrayY = 0, _outX = 0;
    double _total = 0;
    mem::AddressSpace *_space = nullptr;
};

class ParticlefilterThread : public KernelThread
{
  public:
    ParticlefilterThread(ParticlefilterWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w), _tidx(tid), _rng(w.params.seed ^ (71u * tid + 3u))
    {
        _w.chunk(_w._particles, tid, _lo, _hi);
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_frame >= _w._frames)
            return 0;

        constexpr StreamId sW = 0, sX = 1, sY = 2, sC = 3, sO = 4;

        switch (_phase) {
          case 0: {
            // Weight update over this thread's particles.
            uint64_t n = _hi - _lo;
            beginStreams(
                out,
                {affine1d(sX, _w._arrayX + _lo * 4, 4, n, 4),
                 affine1d(sY, _w._arrayY + _lo * 4, 4, n, 4),
                 affine1d(sW, _w._weights + _lo * 4, 4, n, 4, true)});
            rowPass(out, n, {sX, sY}, sW, /*fp=*/5);
            endStreams(out, {sX, sY, sW});
            emitBarrier(out);
            _phase = 1;
            break;
          }
          case 1: {
            // Serial CDF accumulation on thread 0 (everyone barriers).
            if (_tidx == 0) {
                uint64_t chain = 0;
                for (uint64_t i = 0; i < _w._particles;
                     i += uint64_t(_vec)) {
                    uint64_t l = emitLoad(
                        out, _w._weights + i * 4,
                        uint16_t(std::min<uint64_t>(_vec,
                                                    _w._particles - i) *
                                 4),
                        pcOf(50));
                    chain = emitCompute(out, isa::OpKind::FpAlu, l,
                                        chain);
                }
            }
            emitBarrier(out);
            _phase = 2;
            break;
          }
          case 2: {
            // Resampling: scan the shared CDF from 0 until u is
            // passed. Unknown-length stream + early stream_end.
            double u = _w._total *
                       (static_cast<double>(_lo) + 0.5) /
                       static_cast<double>(_w._particles);
            // Functional scan to find the stop point.
            uint64_t stop = 0;
            while (stop < _w._particles &&
                   _w._space->readT<float>(_w._cdf + stop * 4) <
                       static_cast<float>(u)) {
                ++stop;
            }

            isa::StreamConfig cdf_cfg =
                affine1d(sC, _w._cdf, 4, _w._particles, 4);
            cdf_cfg.lengthKnown = false;
            beginStreams(out, {cdf_cfg});
            uint64_t scanned = 0;
            while (scanned <= stop) {
                auto elems = static_cast<uint16_t>(std::min<uint64_t>(
                    static_cast<uint64_t>(_vec), stop + 1 - scanned));
                uint64_t l = loadView(out, sC, elems);
                emitCompute(out, isa::OpKind::FpAlu, l);
                stepView(out, sC, elems);
                scanned += elems;
            }
            endStreams(out, {sC});

            // Gather the selected particle and write the new state.
            uint64_t g = emitLoad(out, _w._arrayX + stop * 4, 4,
                                  pcOf(51));
            beginStreams(out, {affine1d(sO, _w._outX + _lo * 4, 4,
                                        _hi - _lo, 4, true)});
            storeView(out, sO, g, 1);
            stepView(out, sO, 1);
            endStreams(out, {sO});
            emitBarrier(out);
            _phase = 0;
            ++_frame;
            break;
          }
        }
        return out.size() - before;
    }

  private:
    ParticlefilterWorkload &_w;
    int _tidx;
    Rng _rng;
    uint64_t _lo = 0, _hi = 0;
    int _phase = 0;
    int _frame = 0;
};

std::shared_ptr<isa::OpSource>
ParticlefilterWorkload::makeThread(int tid)
{
    return std::make_shared<ParticlefilterThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeParticlefilter(const WorkloadParams &p)
{
    return std::make_unique<ParticlefilterWorkload>(p);
}

} // namespace workload
} // namespace sf
