/**
 * @file
 * Hotspot thermal simulation (Rodinia; Table IV: 1024x1024, 8 iters).
 *
 * 2D 5-point stencil with a power term, ping-pong buffers and a global
 * barrier per iteration. Rows are partitioned across threads; each row
 * pass streams the three source rows plus the power row and stores the
 * destination row. Streams end before every barrier (synchronization-
 * free regions, §V-A).
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class HotspotWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "hotspot"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _dim = scaled(1024, 128);
        _iters = 4;
        _temp[0] = as.alloc(_dim * _dim * 4, "temp0");
        _temp[1] = as.alloc(_dim * _dim * 4, "temp1");
        _power = as.alloc(_dim * _dim * 4, "power");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        uint64_t bytes = _dim * _dim * 4;
        return {{"temp0", _temp[0], bytes},
                {"temp1", _temp[1], bytes},
                {"power", _power, bytes}};
    }

    uint64_t _dim = 0;
    int _iters = 0;
    Addr _temp[2] = {0, 0};
    Addr _power = 0;
    mem::AddressSpace *_space = nullptr;
};

class HotspotThread : public KernelThread
{
  public:
    HotspotThread(HotspotWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._dim - 2, tid, _rowLo, _rowHi);
        _rowLo += 1; // interior rows only
        _rowHi += 1;
        _row = _rowLo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_iter >= _w._iters)
            return 0;

        Addr src = _w._temp[_iter & 1];
        Addr dst = _w._temp[(_iter + 1) & 1];
        uint64_t pitch = _w._dim * 4;

        // One source-row block per refill call.
        constexpr StreamId sN = 0, sC = 1, sS = 2, sP = 3, sD = 4;
        uint64_t r = _row;
        beginStreams(
            out,
            {affine1d(sN, src + (r - 1) * pitch, 4, _w._dim, 4),
             affine1d(sC, src + r * pitch, 4, _w._dim, 4),
             affine1d(sS, src + (r + 1) * pitch, 4, _w._dim, 4),
             affine1d(sP, _w._power + r * pitch, 4, _w._dim, 4),
             affine1d(sD, dst + r * pitch, 4, _w._dim, 4, true)});
        rowPass(out, _w._dim, {sN, sC, sS, sP}, sD, /*fp=*/6);
        endStreams(out, {sN, sC, sS, sP, sD});

        ++_row;
        if (_row >= _rowHi) {
            emitBarrier(out);
            _row = _rowLo;
            ++_iter;
        }
        return out.size() - before;
    }

  private:
    HotspotWorkload &_w;
    uint64_t _rowLo = 0, _rowHi = 0, _row = 0;
    int _iter = 0;
};

std::shared_ptr<isa::OpSource>
HotspotWorkload::makeThread(int tid)
{
    return std::make_shared<HotspotThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeHotspot(const WorkloadParams &p)
{
    return std::make_unique<HotspotWorkload>(p);
}

} // namespace workload
} // namespace sf
