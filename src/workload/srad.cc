/**
 * @file
 * SRAD speckle-reducing anisotropic diffusion (Rodinia; Table IV:
 * 512x2048, 8 iterations).
 *
 * Two row-wise stencil passes per iteration (gradient/coefficient then
 * divergence/update) separated by barriers.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class SradWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "srad"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _rows = scaled(512, 64);
        _cols = scaled(2048, 128);
        _iters = 2;
        uint64_t cells = _rows * _cols;
        _j = as.alloc(cells * 4, "J");
        _c = as.alloc(cells * 4, "c");
        _dn = as.alloc(cells * 4, "dN");
        _ds = as.alloc(cells * 4, "dS");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        uint64_t bytes = _rows * _cols * 4;
        return {{"J", _j, bytes},
                {"c", _c, bytes},
                {"dN", _dn, bytes},
                {"dS", _ds, bytes}};
    }

    uint64_t _rows = 0, _cols = 0;
    int _iters = 0;
    Addr _j = 0, _c = 0, _dn = 0, _ds = 0;
    mem::AddressSpace *_space = nullptr;
};

class SradThread : public KernelThread
{
  public:
    SradThread(SradWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._rows - 2, tid, _rowLo, _rowHi);
        _rowLo += 1;
        _rowHi += 1;
        _row = _rowLo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_iter >= _w._iters)
            return 0;

        uint64_t pitch = _w._cols * 4;
        uint64_t r = _row;
        constexpr StreamId s0 = 0, s1 = 1, s2 = 2, s3 = 3, s4 = 4,
                           s5 = 5;

        if (_pass == 0) {
            // Gradient + diffusion coefficient: read 3 J rows, store
            // c and the directional derivatives.
            beginStreams(
                out,
                {affine1d(s0, _w._j + (r - 1) * pitch, 4, _w._cols, 4),
                 affine1d(s1, _w._j + r * pitch, 4, _w._cols, 4),
                 affine1d(s2, _w._j + (r + 1) * pitch, 4, _w._cols, 4),
                 affine1d(s3, _w._c + r * pitch, 4, _w._cols, 4, true),
                 affine1d(s4, _w._dn + r * pitch, 4, _w._cols, 4, true),
                 affine1d(s5, _w._ds + r * pitch, 4, _w._cols, 4,
                          true)});
            // Two stores per element: c and dN (dS folded as extra fp).
            uint64_t n = _w._cols;
            uint64_t done = 0;
            while (done < n) {
                auto elems = static_cast<uint16_t>(std::min<uint64_t>(
                    static_cast<uint64_t>(_vec), n - done));
                uint64_t a = loadView(out, s0, elems);
                uint64_t b = loadView(out, s1, elems);
                loadView(out, s2, elems);
                uint64_t g = emitCompute(out, isa::OpKind::FpAlu, a, b);
                g = emitCompute(out, isa::OpKind::FpAlu, g);
                g = emitCompute(out, isa::OpKind::FpDiv, g);
                storeView(out, s3, g, elems);
                storeView(out, s4, g, elems);
                storeView(out, s5, g, elems);
                for (StreamId s : {s0, s1, s2, s3, s4, s5})
                    stepView(out, s, elems);
                done += elems;
            }
            endStreams(out, {s0, s1, s2, s3, s4, s5});
        } else {
            // Divergence + update: read c rows and derivatives,
            // update J in place.
            beginStreams(
                out,
                {affine1d(s0, _w._c + r * pitch, 4, _w._cols, 4),
                 affine1d(s1, _w._c + (r + 1) * pitch, 4, _w._cols, 4),
                 affine1d(s2, _w._dn + r * pitch, 4, _w._cols, 4),
                 affine1d(s3, _w._ds + r * pitch, 4, _w._cols, 4),
                 affine1d(s4, _w._j + r * pitch, 4, _w._cols, 4, true)});
            rowPass(out, _w._cols, {s0, s1, s2, s3}, s4, /*fp=*/5);
            endStreams(out, {s0, s1, s2, s3, s4});
        }

        ++_row;
        if (_row >= _rowHi) {
            emitBarrier(out);
            _row = _rowLo;
            if (++_pass == 2) {
                _pass = 0;
                ++_iter;
            }
        }
        return out.size() - before;
    }

  private:
    SradWorkload &_w;
    uint64_t _rowLo = 0, _rowHi = 0, _row = 0;
    int _pass = 0;
    int _iter = 0;
};

std::shared_ptr<isa::OpSource>
SradWorkload::makeThread(int tid)
{
    return std::make_shared<SradThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeSrad(const WorkloadParams &p)
{
    return std::make_unique<SradWorkload>(p);
}

} // namespace workload
} // namespace sf
