/**
 * @file
 * Benchmark factory (Table IV).
 */

#include "workload/workload.hh"

#include "sim/logging.hh"
#include "workload/kernels.hh"

namespace sf {
namespace workload {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "conv3d", "mv",      "b+tree",         "bfs",
        "cfd",    "hotspot", "hotspot3D",      "nn",
        "nw",     "particlefilter", "pathfinder", "srad",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "conv3d")
        return makeConv3d(params);
    if (name == "mv")
        return makeMv(params);
    if (name == "b+tree" || name == "btree")
        return makeBtree(params);
    if (name == "bfs")
        return makeBfs(params);
    if (name == "cfd")
        return makeCfd(params);
    if (name == "hotspot")
        return makeHotspot(params);
    if (name == "hotspot3D" || name == "hotspot3d")
        return makeHotspot3D(params);
    if (name == "nn")
        return makeNn(params);
    if (name == "nw")
        return makeNw(params);
    if (name == "particlefilter")
        return makeParticlefilter(params);
    if (name == "pathfinder")
        return makePathfinder(params);
    if (name == "srad")
        return makeSrad(params);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace workload
} // namespace sf
