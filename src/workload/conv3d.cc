/**
 * @file
 * Tiled 3D convolution (Table IV: H/W 256x256, I/O channels 16x64,
 * kernel 3x3).
 *
 * Threads partition output channels; every thread streams the *same*
 * input feature-map planes — the paper's flagship stream-confluence
 * workload (51% of conv3d's L3 requests are multicast, Fig. 14).
 *
 * Each (co, ci) pass streams the whole input plane with three
 * row-shifted 2-level affine streams (the §IV-B constant-offset form,
 * so the SE_L2 can alias the shifted copies), accumulates partial sums
 * in a private scratch plane, and streams the finished plane out on
 * the last input channel.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class Conv3dWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "conv3d"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        // Floors keep the shared input larger than a private L2, so
        // the floating policy sees the paper's no-local-reuse pattern.
        _h = scaled(256, 128);
        _w = scaled(256, 128);
        _ci = std::max<uint64_t>(2, scaled(16, 4));
        // At least one output channel per thread, to keep every core
        // busy on the same shared input.
        _co = std::max<uint64_t>(
            static_cast<uint64_t>(params.numThreads), scaled(64, 4));
        _in = as.alloc(_ci * _h * _w * 4, "ifmap");
        _out = as.alloc(_co * _h * _w * 4, "ofmap");
        _kern = as.alloc(_co * _ci * 9 * 4, "weights");
        // Per-thread scratch is allocated here (not in the thread
        // constructor) so makeThread(tid) is idempotent: the --verify
        // reference replay must touch the same addresses as the sim.
        for (int t = 0; t < params.numThreads; ++t)
            _scratch.push_back(as.alloc(_h * _w * 4, "scratch"));
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        std::vector<verify::MemRegion> r = {
            {"ifmap", _in, _ci * _h * _w * 4},
            {"ofmap", _out, _co * _h * _w * 4},
            {"weights", _kern, _co * _ci * 9 * 4}};
        for (size_t t = 0; t < _scratch.size(); ++t) {
            r.push_back({"scratch" + std::to_string(t), _scratch[t],
                         _h * _w * 4});
        }
        return r;
    }

    uint64_t _h = 0, _w = 0, _ci = 0, _co = 0;
    Addr _in = 0, _out = 0, _kern = 0;
    std::vector<Addr> _scratch;
    mem::AddressSpace *_space = nullptr;
};

class Conv3dThread : public KernelThread
{
  public:
    Conv3dThread(Conv3dWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._co, tid, _coLo, _coHi);
        _co = _coLo;
        _scratch = w._scratch[tid];
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_co >= _coHi) {
            if (!_finished) {
                emitBarrier(out);
                _finished = true;
            }
            return out.size() - before;
        }

        uint64_t pitch = _w._w * 4;
        uint64_t plane = _w._h * _w._w * 4;
        uint64_t rows = _w._h - 2; // interior output rows
        Addr in_plane = _w._in + _ci * plane;
        Addr out_plane = _w._out + _co * plane;
        bool last_ci = _ci == _w._ci - 1;

        // Weights for this (co, ci) pair: tiny, stays in the L1.
        emitLoad(out, _w._kern + (_co * _w._ci + _ci) * 36, 36,
                 pcOf(90));

        // Three row-shifted 2-level streams over the whole plane:
        // the long-lived pattern the floating policy wants to see.
        constexpr StreamId sN = 0, sC = 1, sS = 2, sO = 3;
        std::vector<isa::StreamConfig> group = {
            affine2d(sN, in_plane, 4, _w._w, 4, rows,
                     static_cast<int64_t>(pitch)),
            affine2d(sC, in_plane + pitch, 4, _w._w, 4, rows,
                     static_cast<int64_t>(pitch)),
            affine2d(sS, in_plane + 2 * pitch, 4, _w._w, 4, rows,
                     static_cast<int64_t>(pitch)),
        };
        if (last_ci) {
            group.push_back(affine2d(sO, out_plane + pitch, 4, _w._w, 4,
                                     rows, static_cast<int64_t>(pitch),
                                     true));
        }
        beginStreams(out, std::move(group));

        // One refill per (co, ci): generate the whole plane pass.
        uint64_t total = rows * _w._w;
        uint64_t done = 0;
        Addr scr_row = _scratch + pitch;
        while (done < total) {
            uint64_t in_row = done % _w._w;
            auto elems = static_cast<uint16_t>(std::min<uint64_t>(
                static_cast<uint64_t>(_vec), _w._w - in_row));
            uint64_t a = loadView(out, sN, elems);
            uint64_t b = loadView(out, sC, elems);
            loadView(out, sS, elems);
            // Partial sums live in the private scratch plane (register
            // tiles in a real compiler); only the last input channel
            // streams the result out, so no stream aliases a store.
            Addr scr = scr_row + (done / _w._w) * pitch + in_row * 4;
            uint64_t acc =
                emitLoad(out, scr, uint16_t(elems * 4), pcOf(91));
            uint64_t last = emitCompute(out, isa::OpKind::FpAlu, a, b);
            for (int k = 1; k < 9; ++k)
                last = emitCompute(out, isa::OpKind::FpAlu, last, acc);
            if (last_ci) {
                storeView(out, sO, last, elems);
                stepView(out, sO, elems);
            } else {
                emitStore(out, scr, uint16_t(elems * 4), pcOf(91),
                          last);
            }
            for (StreamId s : {sN, sC, sS})
                stepView(out, s, elems);
            done += elems;
        }
        if (last_ci)
            endStreams(out, {sN, sC, sS, sO});
        else
            endStreams(out, {sN, sC, sS});

        // Advance (co, ci).
        if (++_ci >= _w._ci) {
            _ci = 0;
            ++_co;
        }
        return out.size() - before;
    }

  private:
    Conv3dWorkload &_w;
    uint64_t _coLo = 0, _coHi = 0;
    uint64_t _co = 0, _ci = 0;
    Addr _scratch = 0;
    bool _finished = false;
};

std::shared_ptr<isa::OpSource>
Conv3dWorkload::makeThread(int tid)
{
    return std::make_shared<Conv3dThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeConv3d(const WorkloadParams &p)
{
    return std::make_unique<Conv3dWorkload>(p);
}

} // namespace workload
} // namespace sf
