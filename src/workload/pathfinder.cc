/**
 * @file
 * Pathfinder dynamic programming (Rodinia; Table IV: 1.5M entries, 8
 * iterations).
 *
 * Each iteration computes dst[c] = wall[r][c] + min(src[c-1], src[c],
 * src[c+1]) over a very wide row, with a barrier between iterations.
 * Columns are partitioned across threads. The three shifted source
 * windows are modelled as three affine streams with offset bases.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class PathfinderWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "pathfinder"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _cols = scaled(1500000, 8192);
        _rows = 8;
        _wall = as.alloc(_rows * _cols * 4, "wall");
        _buf[0] = as.alloc(_cols * 4, "res0");
        _buf[1] = as.alloc(_cols * 4, "res1");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"wall", _wall,
                 static_cast<uint64_t>(_rows) * _cols * 4},
                {"res0", _buf[0], _cols * 4},
                {"res1", _buf[1], _cols * 4}};
    }

    uint64_t _cols = 0;
    int _rows = 0;
    Addr _wall = 0;
    Addr _buf[2] = {0, 0};
    mem::AddressSpace *_space = nullptr;
};

class PathfinderThread : public KernelThread
{
  public:
    PathfinderThread(PathfinderWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._cols - 2, tid, _lo, _hi);
        _lo += 1;
        _hi += 1;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_iter >= _w._rows)
            return 0;

        Addr src = _w._buf[_iter & 1];
        Addr dst = _w._buf[(_iter + 1) & 1];
        uint64_t n = _hi - _lo;

        constexpr StreamId sL = 0, sC = 1, sR = 2, sW = 3, sD = 4;
        beginStreams(
            out,
            {affine1d(sL, src + (_lo - 1) * 4, 4, n, 4),
             affine1d(sC, src + _lo * 4, 4, n, 4),
             affine1d(sR, src + (_lo + 1) * 4, 4, n, 4),
             affine1d(sW, _w._wall +
                              (static_cast<uint64_t>(_iter) * _w._cols +
                               _lo) * 4,
                      4, n, 4),
             affine1d(sD, dst + _lo * 4, 4, n, 4, true)});
        rowPass(out, n, {sL, sC, sR, sW}, sD, /*fp=*/0, /*int=*/4);
        endStreams(out, {sL, sC, sR, sW, sD});
        emitBarrier(out);
        ++_iter;
        return out.size() - before;
    }

  private:
    PathfinderWorkload &_w;
    uint64_t _lo = 0, _hi = 0;
    int _iter = 0;
};

std::shared_ptr<isa::OpSource>
PathfinderWorkload::makeThread(int tid)
{
    return std::make_shared<PathfinderThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makePathfinder(const WorkloadParams &p)
{
    return std::make_unique<PathfinderWorkload>(p);
}

} // namespace workload
} // namespace sf
