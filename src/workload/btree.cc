/**
 * @file
 * B+ tree lookups and range queries (Rodinia b+tree; Table IV: 1M
 * leaves, 10k lookups, 6k range queries).
 *
 * The tree is materialized as per-level node arrays. Queries stream
 * affinely; each lookup walks the levels with genuinely data-dependent
 * loads (the child index is read from the node), which streams cannot
 * cover - so b+tree exercises the demand path and shows only modest
 * floating benefit, as in the paper. Range queries additionally scan
 * consecutive leaves (short affine bursts).
 */

#include "workload/kernels.hh"

#include "sim/rng.hh"
#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

constexpr uint32_t fanout = 16;
constexpr uint32_t nodeBytes = fanout * 8; // keys + child refs

class BtreeWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "b+tree"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _leaves = scaled(1000000, 16384);
        _lookups = scaled(10000, 512);
        _ranges = scaled(6000, 256);
        _rangeLen = 64;

        // Build level sizes from the leaves up.
        uint64_t n = _leaves;
        while (true) {
            _levels.push_back(n);
            if (n <= 1)
                break;
            n = (n + fanout - 1) / fanout;
        }
        std::reverse(_levels.begin(), _levels.end()); // root first
        for (uint64_t level_nodes : _levels)
            _levelArr.push_back(as.alloc(level_nodes * nodeBytes));

        _queries = as.alloc((_lookups + _ranges) * 4, "queries");
        Rng rng(params.seed);
        for (uint64_t q = 0; q < _lookups + _ranges; ++q) {
            as.writeT<int32_t>(_queries + q * 4,
                               static_cast<int32_t>(rng.range(_leaves)));
        }
        // Fill nodes with child offsets so walks read real data.
        for (size_t l = 0; l + 1 < _levels.size(); ++l) {
            for (uint64_t node = 0; node < _levels[l]; ++node) {
                as.writeT<int32_t>(_levelArr[l] + node * nodeBytes,
                                   static_cast<int32_t>(
                                       std::min(node * fanout,
                                                _levels[l + 1] - 1)));
            }
        }
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        std::vector<verify::MemRegion> r;
        for (size_t l = 0; l < _levels.size(); ++l) {
            r.push_back({"level" + std::to_string(l), _levelArr[l],
                         _levels[l] * nodeBytes});
        }
        r.push_back({"queries", _queries, (_lookups + _ranges) * 4});
        return r;
    }

    uint64_t _leaves = 0, _lookups = 0, _ranges = 0, _rangeLen = 0;
    std::vector<uint64_t> _levels;
    std::vector<Addr> _levelArr;
    Addr _queries = 0;
    mem::AddressSpace *_space = nullptr;
};

class BtreeThread : public KernelThread
{
  public:
    BtreeThread(BtreeWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._lookups + _w._ranges, tid, _lo, _hi);
        _pos = _lo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_done)
            return 0;

        constexpr StreamId sQ = 0;
        if (_lo >= _hi) {
            emitBarrier(out);
            _done = true;
            return out.size() - before;
        }
        if (_pos == _lo) {
            beginStreams(out, {affine1d(sQ, _w._queries + _lo * 4, 4,
                                        _hi - _lo, 4)});
        }

        uint64_t chunk_end = std::min(_hi, _pos + 256);
        for (; _pos < chunk_end; ++_pos) {
            uint64_t q = loadView(out, sQ, 1);
            int32_t key = _w._space->readT<int32_t>(viewAddr(sQ));
            stepView(out, sQ, 1);

            // Walk root -> leaf: each level's load depends on the
            // previous node's contents (pointer chase).
            uint64_t prev = q;
            uint64_t node = 0;
            for (size_t l = 0; l < _w._levels.size(); ++l) {
                Addr node_addr = _w._levelArr[l] + node * nodeBytes;
                uint64_t ld = emitLoad(out, node_addr, 64,
                                       pcOf(10 + int(l)), prev);
                prev = emitCompute(out, isa::OpKind::IntAlu, ld);
                if (l + 1 < _w._levels.size()) {
                    auto child = static_cast<uint64_t>(
                        _w._space->readT<int32_t>(node_addr));
                    uint64_t within = static_cast<uint64_t>(key) %
                                      fanout;
                    node = std::min(child + within,
                                    _w._levels[l + 1] - 1);
                }
            }

            // Range queries scan consecutive leaves from the hit.
            bool is_range = _pos >= _lo + (_hi - _lo) *
                                 _w._lookups /
                                 (_w._lookups + _w._ranges);
            if (is_range) {
                Addr leaf_base = _w._levelArr.back() +
                                 node * nodeBytes;
                uint64_t span = std::min<uint64_t>(
                    _w._rangeLen, _w._levels.back() - node);
                constexpr StreamId sR = 1;
                beginStreams(out,
                             {affine1d(sR, leaf_base, 8,
                                       span * (nodeBytes / 8), 8)});
                rowPass(out, span * (nodeBytes / 8), {sR},
                        invalidStream, /*fp=*/0, /*int=*/1, /*vec=*/8);
                endStreams(out, {sR});
            }
        }

        if (_pos >= _hi) {
            endStreams(out, {sQ});
            emitBarrier(out);
            _done = true;
        }
        return out.size() - before;
    }

  private:
    BtreeWorkload &_w;
    uint64_t _lo = 0, _hi = 0, _pos = 0;
    bool _done = false;
};

std::shared_ptr<isa::OpSource>
BtreeWorkload::makeThread(int tid)
{
    return std::make_shared<BtreeThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeBtree(const WorkloadParams &p)
{
    return std::make_unique<BtreeWorkload>(p);
}

} // namespace workload
} // namespace sf
