/**
 * @file
 * CFD Euler solver (Rodinia cfd; Table IV: fvcorr.domn.193K).
 *
 * Unstructured-mesh flux computation: per element, load the four
 * neighbour indices (affine), gather each neighbour's five
 * conservative variables (indirect with a w-loop of 5 - the subline
 * transfer case of §IV-B), combine with face normals (affine), and
 * store fluxes (affine store stream).
 */

#include "workload/kernels.hh"

#include "sim/rng.hh"
#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

constexpr uint32_t nVar = 5;
constexpr uint32_t nNeighbors = 4;

class CfdWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "cfd"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _elems = scaled(193536, 4096);
        _iters = 2;
        _esel = as.alloc(_elems * nNeighbors * 4, "neighbors");
        _variables = as.alloc(_elems * nVar * 4, "variables");
        _normals = as.alloc(_elems * nNeighbors * 3 * 4, "normals");
        _fluxes = as.alloc(_elems * nVar * 4, "fluxes");

        Rng rng(params.seed);
        for (uint64_t i = 0; i < _elems * nNeighbors; ++i) {
            as.writeT<int32_t>(_esel + i * 4,
                               static_cast<int32_t>(rng.range(_elems)));
        }
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"neighbors", _esel, _elems * nNeighbors * 4},
                {"variables", _variables, _elems * nVar * 4},
                {"normals", _normals, _elems * nNeighbors * 3 * 4},
                {"fluxes", _fluxes, _elems * nVar * 4}};
    }

    uint64_t _elems = 0;
    int _iters = 0;
    Addr _esel = 0, _variables = 0, _normals = 0, _fluxes = 0;
    mem::AddressSpace *_space = nullptr;
};

class CfdThread : public KernelThread
{
  public:
    CfdThread(CfdWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._elems, tid, _lo, _hi);
        _pos = _lo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_iter >= _w._iters)
            return 0;

        constexpr StreamId sNb = 0, sVar = 1, sNorm = 2, sOwn = 3,
                           sFlux = 4;
        uint64_t n = _hi - _lo;

        if (_pos == _lo) {
            beginStreams(
                out,
                {// Neighbour indices: 4 per element, affine.
                 affine1d(sNb, _w._esel + _lo * nNeighbors * 4, 4,
                          n * nNeighbors, 4),
                 // Gather neighbour variables: 5 consecutive floats at
                 // each indirect location (w-loop, subline transfer).
                 indirectOn(sVar, sNb, _w._variables, 4, 4, nVar * 4,
                            nVar, n * nNeighbors * nVar),
                 affine1d(sNorm, _w._normals + _lo * nNeighbors * 12, 4,
                          n * nNeighbors * 3, 4),
                 affine1d(sOwn, _w._variables + _lo * nVar * 4, 4,
                          n * nVar, 4),
                 affine1d(sFlux, _w._fluxes + _lo * nVar * 4, 4,
                          n * nVar, 4, true)});
        }

        uint64_t chunk_end = std::min(_hi, _pos + 512);
        for (; _pos < chunk_end; ++_pos) {
            // Own variables once per element.
            uint64_t own = loadView(out, sOwn, nVar);
            uint64_t acc = 0;
            for (uint32_t nb = 0; nb < nNeighbors; ++nb) {
                uint64_t e = loadView(out, sNb, 1);
                uint64_t v = loadView(out, sVar, nVar, e);
                uint64_t nm = loadView(out, sNorm, 3);
                uint64_t f =
                    emitCompute(out, isa::OpKind::FpAlu, v, nm);
                f = emitCompute(out, isa::OpKind::FpAlu, f, own);
                f = emitCompute(out, isa::OpKind::FpAlu, f);
                acc = emitCompute(out, isa::OpKind::FpAlu, f, acc);
                stepView(out, sNb, 1);
                stepView(out, sVar, nVar);
                stepView(out, sNorm, 3);
            }
            storeView(out, sFlux, acc, nVar);
            stepView(out, sFlux, nVar);
            stepView(out, sOwn, nVar);
        }

        if (_pos >= _hi) {
            endStreams(out, {sNb, sVar, sNorm, sOwn, sFlux});
            emitBarrier(out);
            _pos = _lo;
            ++_iter;
        }
        return out.size() - before;
    }

  private:
    CfdWorkload &_w;
    uint64_t _lo = 0, _hi = 0, _pos = 0;
    int _iter = 0;
};

std::shared_ptr<isa::OpSource>
CfdWorkload::makeThread(int tid)
{
    return std::make_shared<CfdThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeCfd(const WorkloadParams &p)
{
    return std::make_unique<CfdWorkload>(p);
}

} // namespace workload
} // namespace sf
