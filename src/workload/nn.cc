/**
 * @file
 * Nearest neighbor (Rodinia nn; Table IV: 768k entries).
 *
 * Each record holds (lat, lng); every thread streams its slice of the
 * record array once, computes the Euclidean distance to the query
 * point and keeps a running minimum. Pure streaming with zero reuse:
 * the workload floats almost entirely and is memory-bandwidth bound.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class NnWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "nn"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _records = scaled(768 * 1024, 4096);
        _recs = as.alloc(_records * 8, "records");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"records", _recs, _records * 8}};
    }

    uint64_t _records = 0;
    Addr _recs = 0;
    mem::AddressSpace *_space = nullptr;
};

class NnThread : public KernelThread
{
  public:
    NnThread(NnWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._records, tid, _lo, _hi);
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_done)
            return 0;

        constexpr StreamId sidR = 0;
        // 8-byte records: stream them as 8B elements.
        beginStreams(out, {affine1d(sidR, _w._recs + _lo * 8, 8,
                                    _hi - _lo, 8)});
        uint64_t iters = _hi - _lo;
        uint64_t done = 0;
        int vec = std::max(1, _vec / 2); // 8 records per 64B vector
        while (done < iters) {
            auto elems = static_cast<uint16_t>(
                std::min<uint64_t>(vec, iters - done));
            uint64_t l = loadView(out, sidR, elems);
            // dx*dx + dy*dy, sqrt-free compare, running min.
            uint64_t d = emitCompute(out, isa::OpKind::FpAlu, l);
            d = emitCompute(out, isa::OpKind::FpAlu, d);
            emitCompute(out, isa::OpKind::IntAlu, d); // min update
            stepView(out, sidR, elems);
            done += elems;
        }
        endStreams(out, {sidR});
        emitBarrier(out);
        _done = true;
        return out.size() - before;
    }

  private:
    NnWorkload &_w;
    uint64_t _lo = 0, _hi = 0;
    bool _done = false;
};

std::shared_ptr<isa::OpSource>
NnWorkload::makeThread(int tid)
{
    return std::make_shared<NnThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeNn(const WorkloadParams &p)
{
    return std::make_unique<NnWorkload>(p);
}

} // namespace workload
} // namespace sf
