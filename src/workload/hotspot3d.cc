/**
 * @file
 * Hotspot3D (Rodinia; Table IV: 512x512x8, 8 iterations).
 *
 * 3D 7-point stencil over a thin z-stack with ping-pong buffers and a
 * barrier per iteration. (z, y) row passes stream five neighbour rows
 * plus power and store the destination row.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class Hotspot3DWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "hotspot3D"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _dim = scaled(512, 64);
        _layers = 8;
        _iters = 2;
        uint64_t cells = _dim * _dim * _layers;
        _temp[0] = as.alloc(cells * 4, "temp0");
        _temp[1] = as.alloc(cells * 4, "temp1");
        _power = as.alloc(cells * 4, "power");
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        uint64_t bytes = _dim * _dim * _layers * 4;
        return {{"temp0", _temp[0], bytes},
                {"temp1", _temp[1], bytes},
                {"power", _power, bytes}};
    }

    uint64_t _dim = 0;
    uint64_t _layers = 0;
    int _iters = 0;
    Addr _temp[2] = {0, 0};
    Addr _power = 0;
    mem::AddressSpace *_space = nullptr;
};

class Hotspot3DThread : public KernelThread
{
  public:
    Hotspot3DThread(Hotspot3DWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        // Partition (z, y) interior rows across threads.
        _rowsPerLayer = _w._dim - 2;
        uint64_t total = _rowsPerLayer * (_w._layers - 2);
        _w.chunk(total, tid, _lo, _hi);
        _pos = _lo;
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_iter >= _w._iters)
            return 0;

        Addr src = _w._temp[_iter & 1];
        Addr dst = _w._temp[(_iter + 1) & 1];
        uint64_t z = 1 + _pos / _rowsPerLayer;
        uint64_t y = 1 + _pos % _rowsPerLayer;
        uint64_t pitch = _w._dim * 4;
        uint64_t zpitch = _w._dim * _w._dim * 4;
        Addr c = src + z * zpitch + y * pitch;

        constexpr StreamId sC = 0, sN = 1, sS = 2, sU = 3, sD = 4,
                           sP = 5, sO = 6;
        beginStreams(
            out,
            {affine1d(sC, c, 4, _w._dim, 4),
             affine1d(sN, c - pitch, 4, _w._dim, 4),
             affine1d(sS, c + pitch, 4, _w._dim, 4),
             affine1d(sU, c - zpitch, 4, _w._dim, 4),
             affine1d(sD, c + zpitch, 4, _w._dim, 4),
             affine1d(sP, _w._power + z * zpitch + y * pitch, 4,
                      _w._dim, 4),
             affine1d(sO, dst + z * zpitch + y * pitch, 4, _w._dim, 4,
                      true)});
        rowPass(out, _w._dim, {sC, sN, sS, sU, sD, sP}, sO, /*fp=*/8);
        endStreams(out, {sC, sN, sS, sU, sD, sP, sO});

        ++_pos;
        if (_pos >= _hi) {
            emitBarrier(out);
            _pos = _lo;
            ++_iter;
        }
        return out.size() - before;
    }

  private:
    Hotspot3DWorkload &_w;
    uint64_t _rowsPerLayer = 0;
    uint64_t _lo = 0, _hi = 0, _pos = 0;
    int _iter = 0;
};

std::shared_ptr<isa::OpSource>
Hotspot3DWorkload::makeThread(int tid)
{
    return std::make_shared<Hotspot3DThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeHotspot3D(const WorkloadParams &p)
{
    return std::make_unique<Hotspot3DWorkload>(p);
}

} // namespace workload
} // namespace sf
