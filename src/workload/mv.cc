/**
 * @file
 * Tiled matrix-vector multiplication (Table IV: matrix 256 x 65536).
 *
 * y[r] = sum_c A[r][c] * x[c]. Rows are partitioned across threads;
 * each row streams the (huge, reuse-free) matrix row A[r][:] and the
 * (shared) vector x[:]. The matrix stream is the archetypal affine-
 * floating candidate; the x stream is shared by all threads and can
 * form confluence groups.
 */

#include "workload/kernels.hh"

#include "workload/kernel_util.hh"

namespace sf {
namespace workload {

namespace {

class MvWorkload : public Workload
{
  public:
    using Workload::Workload;

    std::string name() const override { return "mv"; }

    void
    init(mem::AddressSpace &as) override
    {
        _space = &as;
        _cols = scaled(65536, 2048);
        _rows = std::max<uint64_t>(
            static_cast<uint64_t>(params.numThreads),
            scaled(256, 16));
        _a = as.alloc(_rows * _cols * 4, "A");
        _x = as.alloc(_cols * 4, "x");
        _y = as.alloc(_rows * 4, "y");
        for (uint64_t c = 0; c < _cols; ++c)
            as.writeT<float>(_x + c * 4, static_cast<float>(c % 97));
    }

    std::shared_ptr<isa::OpSource> makeThread(int tid) override;

    std::vector<verify::MemRegion>
    verifyRegions() const override
    {
        return {{"A", _a, _rows * _cols * 4},
                {"x", _x, _cols * 4},
                {"y", _y, _rows * 4}};
    }

    uint64_t _rows = 0, _cols = 0;
    Addr _a = 0, _x = 0, _y = 0;
    mem::AddressSpace *_space = nullptr;
};

class MvThread : public KernelThread
{
  public:
    MvThread(MvWorkload &w, int tid)
        : KernelThread(*w._space, w.params.useStreams, tid,
                       w.params.vecElems),
          _w(w)
    {
        _w.chunk(_w._rows, tid, _row, _rowEnd);
    }

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        size_t before = out.size();
        if (_row >= _rowEnd) {
            if (!_finished) {
                emitBarrier(out);
                _finished = true;
            }
            return out.size() - before;
        }

        constexpr StreamId sidA = 0, sidX = 1;
        beginStreams(out,
                     {affine1d(sidA, _w._a + _row * _w._cols * 4, 4,
                               _w._cols, 4),
                      affine1d(sidX, _w._x, 4, _w._cols, 4)});
        rowPass(out, _w._cols, {sidA, sidX}, invalidStream,
                /*fp=*/2);
        // Horizontal reduction and the y[r] store.
        uint64_t red = emitCompute(out, isa::OpKind::FpAlu);
        emitStore(out, _w._y + _row * 4, 4, pcOf(100), red);
        endStreams(out, {sidA, sidX});
        ++_row;
        return out.size() - before;
    }

  private:
    MvWorkload &_w;
    uint64_t _row = 0, _rowEnd = 0;
    bool _finished = false;
};

std::shared_ptr<isa::OpSource>
MvWorkload::makeThread(int tid)
{
    return std::make_shared<MvThread>(*this, tid);
}

} // namespace

std::unique_ptr<Workload>
makeMv(const WorkloadParams &p)
{
    return std::make_unique<MvWorkload>(p);
}

} // namespace workload
} // namespace sf
