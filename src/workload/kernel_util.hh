/**
 * @file
 * Shared machinery for kernel op generation.
 *
 * KernelThread unifies the stream-specialized and plain binaries: a
 * kernel describes its accesses as stream views (affine / indirect
 * descriptors); in stream mode the helpers emit stream_cfg /
 * stream_load / stream_step / stream_end, in plain mode they emit
 * ordinary loads at the addresses the view tracks. Either way the
 * dynamic access sequence is identical, which is what makes the
 * baseline comparison fair.
 */

#ifndef SF_WORKLOAD_KERNEL_UTIL_HH
#define SF_WORKLOAD_KERNEL_UTIL_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "isa/op_source.hh"
#include "mem/phys_mem.hh"
#include "sim/logging.hh"

namespace sf {
namespace workload {

/** Base class for per-thread kernel op generators. */
class KernelThread : public isa::OpEmitter
{
  public:
    KernelThread(mem::AddressSpace &as, bool use_streams, int tid,
                 int vec_elems)
        : _as(as), _useStreams(use_streams), _tid(tid), _vec(vec_elems)
    {}

  protected:
    struct View
    {
        isa::StreamConfig cfg;
        uint64_t iter = 0;
    };

    mem::AddressSpace &_as;
    bool _useStreams;
    int _tid;
    int _vec;

    /** Shorthand for building an affine 1D stream config. */
    static isa::StreamConfig
    affine1d(StreamId sid, Addr base, uint32_t elem_size, uint64_t len,
             int64_t stride_bytes, bool is_store = false)
    {
        isa::StreamConfig c;
        c.sid = sid;
        c.isStore = is_store;
        c.affine.base = base;
        c.affine.elemSize = elem_size;
        c.affine.nDims = 1;
        c.affine.stride[0] = stride_bytes;
        c.affine.len[0] = len;
        return c;
    }

    /** 2-level affine stream (rows of a matrix, blocked patterns). */
    static isa::StreamConfig
    affine2d(StreamId sid, Addr base, uint32_t elem_size,
             uint64_t len_inner, int64_t stride_inner,
             uint64_t len_outer, int64_t stride_outer,
             bool is_store = false)
    {
        isa::StreamConfig c = affine1d(sid, base, elem_size, len_inner,
                                       stride_inner, is_store);
        c.affine.nDims = 2;
        c.affine.stride[1] = stride_outer;
        c.affine.len[1] = len_outer;
        return c;
    }

    /** Indirect stream B[A[i]*scale + offset], w consecutive items. */
    static isa::StreamConfig
    indirectOn(StreamId sid, StreamId base_sid, Addr target_base,
               uint32_t elem_size, uint32_t idx_size, int64_t scale,
               uint32_t w_len = 1, uint64_t total_elems = 0)
    {
        isa::StreamConfig c;
        c.sid = sid;
        c.hasIndirect = true;
        c.baseSid = base_sid;
        c.indirect.base = target_base;
        c.indirect.elemSize = elem_size;
        c.indirect.idxSize = idx_size;
        c.indirect.scale = scale;
        c.indirect.wLen = w_len;
        // The affine part mirrors the base pattern for bookkeeping.
        c.affine.elemSize = elem_size;
        c.affine.len[0] = total_elems;
        return c;
    }

    /**
     * Configure a group of streams. In plain mode only the views are
     * registered (no ops emitted).
     */
    void
    beginStreams(std::vector<isa::Op> &out,
                 std::vector<isa::StreamConfig> group)
    {
        for (const auto &cfg : group)
            _views[cfg.sid] = View{cfg, 0};
        if (_useStreams)
            emitStreamCfg(out, std::move(group));
    }

    /**
     * Consume @p elems elements of stream @p sid at its current
     * iteration. @return the op position (for dependences).
     * @p addr_dep adds a dependence (plain-mode indirect loads depend
     * on the index load).
     */
    uint64_t
    loadView(std::vector<isa::Op> &out, StreamId sid,
             uint16_t elems = 1, uint64_t addr_dep = 0)
    {
        View &v = view(sid);
        uint32_t esz = elemSizeOf(v);
        auto size = static_cast<uint16_t>(
            std::min<uint32_t>(esz * elems, lineBytes));
        if (_useStreams) {
            uint64_t pos = emitStreamLoad(out, sid, elems, size);
            return pos;
        }
        Addr addr = addrOf(v, v.iter);
        uint64_t pos = emitLoad(out, addr, size, pcOf(sid), addr_dep);
        out.back().streamEligible = true;
        return pos;
    }

    /** Advance stream @p sid by @p elems. */
    void
    stepView(std::vector<isa::Op> &out, StreamId sid, uint16_t elems = 1)
    {
        View &v = view(sid);
        if (_useStreams)
            emitStreamStep(out, sid, elems);
        v.iter += elems;
    }

    /**
     * Store @p elems elements through stream @p sid at its current
     * iteration (caller steps separately).
     */
    uint64_t
    storeView(std::vector<isa::Op> &out, StreamId sid,
              uint64_t data_dep = 0, uint16_t elems = 1)
    {
        View &v = view(sid);
        uint32_t esz = elemSizeOf(v);
        auto size = static_cast<uint16_t>(
            std::min<uint32_t>(esz * elems, lineBytes));
        if (_useStreams) {
            uint64_t pos = emitStreamStore(out, sid, data_dep, elems);
            out.back().size = size;
            return pos;
        }
        Addr addr = addrOf(v, v.iter);
        return emitStore(out, addr, size, pcOf(sid), data_dep);
    }

    /** Deconstruct streams (stream_end in stream mode). */
    void
    endStreams(std::vector<isa::Op> &out,
               std::initializer_list<StreamId> sids)
    {
        for (StreamId sid : sids) {
            if (_useStreams)
                emitStreamEnd(out, sid);
            _views.erase(sid);
        }
    }

    /** Current iteration of a view (plain-mode address bookkeeping). */
    uint64_t iterOf(StreamId sid) { return view(sid).iter; }

    /** Address of a view's current element (functional, any mode). */
    Addr viewAddr(StreamId sid)
    {
        View &v = view(sid);
        return addrOf(v, v.iter);
    }

    /** The address a view's element @p idx refers to. */
    Addr
    addrOf(View &v, uint64_t idx)
    {
        if (!v.cfg.hasIndirect)
            return v.cfg.affine.elemAddr(idx);
        const View &b = view(v.cfg.baseSid);
        uint32_t w_len = std::max<uint32_t>(1, v.cfg.indirect.wLen);
        uint64_t bidx = idx / w_len;
        uint32_t w = static_cast<uint32_t>(idx % w_len);
        Addr idx_addr = b.cfg.affine.elemAddr(bidx);
        int64_t value = _as.readInt(idx_addr, v.cfg.indirect.idxSize);
        return v.cfg.indirect.targetAddr(value, w);
    }

    /**
     * Emit one vectorized pass over @p iters elements: each vector
     * iteration loads every stream in @p loads, performs @p fp_per_vec
     * FP ops and @p int_per_vec integer ops (chained on the loads),
     * optionally stores to @p store_sid, and steps all streams.
     */
    void
    rowPass(std::vector<isa::Op> &out, uint64_t iters,
            const std::vector<StreamId> &loads, StreamId store_sid,
            int fp_per_vec, int int_per_vec = 0, int vec_override = 0)
    {
        uint64_t done = 0;
        int vec = vec_override > 0 ? vec_override : _vec;
        while (done < iters) {
            auto elems = static_cast<uint16_t>(
                std::min<uint64_t>(vec, iters - done));
            uint64_t dep_a = 0, dep_b = 0;
            for (StreamId sid : loads) {
                uint64_t p = loadView(out, sid, elems);
                dep_b = dep_a;
                dep_a = p;
            }
            uint64_t last = 0;
            for (int k = 0; k < fp_per_vec; ++k) {
                last = emitCompute(out, isa::OpKind::FpAlu,
                                   k == 0 ? dep_a : last,
                                   k == 0 ? dep_b : 0);
            }
            for (int k = 0; k < int_per_vec; ++k) {
                last = emitCompute(out, isa::OpKind::IntAlu,
                                   last ? last : dep_a);
            }
            if (store_sid != invalidStream) {
                storeView(out, store_sid, last ? last : dep_a, elems);
                stepView(out, store_sid, elems);
            }
            for (StreamId sid : loads)
                stepView(out, sid, elems);
            done += elems;
        }
    }

    /** Distinct fake PC per static access site (prefetcher training). */
    static uint32_t pcOf(StreamId sid)
    {
        return 0x4000 + static_cast<uint32_t>(sid);
    }

  private:
    View &
    view(StreamId sid)
    {
        auto it = _views.find(sid);
        sf_assert(it != _views.end(), "unknown view %d", sid);
        return it->second;
    }

    uint32_t
    elemSizeOf(const View &v) const
    {
        return v.cfg.hasIndirect ? v.cfg.indirect.elemSize
                                 : v.cfg.affine.elemSize;
    }

    std::unordered_map<StreamId, View> _views;
};

} // namespace workload
} // namespace sf

#endif // SF_WORKLOAD_KERNEL_UTIL_HH
