/**
 * @file
 * sf-snap-v1 — versioned, checksummed simulator snapshots
 * (DESIGN.md §4j).
 *
 * A snapshot is an ordered list of named sections, each an opaque
 * byte payload produced by the field-wise Encoder below. On disk:
 *
 *   "SFSNAPv1"                        8-byte magic
 *   u32 version (= 1)
 *   u32 sectionCount
 *   per section:
 *     u32  nameLen, name bytes
 *     u64  payloadLen, payload bytes
 *     u32  crc32(payload)
 *   u32 fileCrc                       crc32 over ALL preceding bytes
 *   "SFSNAPend"[0..7]                 8-byte end magic ("SFSNPEND")
 *
 * All integers are little-endian, written byte-by-byte — never a raw
 * memcpy/fwrite of a struct, so padding bytes can't leak host
 * nondeterminism into the image (sflint rule S2).
 *
 * writeSnapshotAtomic() writes to a temp file in the destination
 * directory, fsync()s it, rename()s over the target, then fsync()s
 * the directory: a kill at any instant leaves either the old or the
 * new snapshot, never a torn one.
 *
 * readSnapshot() validates in a fixed order — magic, version, footer
 * presence, per-section bounds + CRC (diagnostics name the bad
 * section), whole-file CRC — and reports every failure as
 * fatalCode(ExitCode::SnapshotError) (exit 68).
 *
 * Versioning policy: the on-disk version is bumped whenever a
 * section's encoding changes incompatibly; readers accept exactly one
 * version and reject everything else with exit 68 (no silent
 * migration — a sweep treats the point as "re-run from scratch").
 */

#ifndef SF_SIM_SNAPSHOT_HH
#define SF_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sf {
namespace snap {

/** Magic strings and the single accepted on-disk version. */
constexpr char kMagic[8] = {'S', 'F', 'S', 'N', 'A', 'P', 'v', '1'};
constexpr char kEndMagic[8] = {'S', 'F', 'S', 'N', 'P', 'E', 'N', 'D'};
constexpr uint32_t kVersion = 1;

/** CRC-32 (IEEE 802.3, reflected) of @p n bytes at @p data. */
uint32_t crc32(const void *data, size_t n, uint32_t seed = 0);

/**
 * Field-wise little-endian encoder. Every integer is decomposed into
 * bytes explicitly; doubles travel as their IEEE-754 bit pattern.
 */
class Encoder
{
  public:
    void u8(uint8_t v) { _buf.push_back(v); }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** IEEE-754 bit pattern; bit-exact round trip. */
    void f64(double v);

    void b(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed UTF-8/byte string. */
    void str(const std::string &s);

    /** Raw byte run (page images, line data). Length NOT prefixed. */
    void raw(const void *data, size_t n);

    const std::vector<uint8_t> &bytes() const { return _buf; }
    std::vector<uint8_t> take() { return std::move(_buf); }

  private:
    std::vector<uint8_t> _buf;
};

/**
 * Field-wise decoder over one section payload. Any underflow is a
 * corruption of that section and fatals with exit 68 naming it; call
 * done() after the last field to reject trailing garbage.
 */
class Decoder
{
  public:
    Decoder(const std::vector<uint8_t> &buf, std::string section)
        : _buf(buf.data()), _len(buf.size()), _section(std::move(section))
    {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64();
    bool b() { return u8() != 0; }
    std::string str();
    void raw(void *out, size_t n);

    size_t remaining() const { return _len - _pos; }

    /** Fatal (68) if any bytes remain unconsumed. */
    void done() const;

  private:
    const uint8_t *_buf;
    size_t _len;
    size_t _pos = 0;
    std::string _section;
};

struct Section
{
    std::string name;
    std::vector<uint8_t> payload;
};

/** An in-memory snapshot: ordered named sections. */
struct Snapshot
{
    std::vector<Section> sections;

    void
    add(std::string name, std::vector<uint8_t> payload)
    {
        sections.push_back({std::move(name), std::move(payload)});
    }

    /** nullptr when absent. */
    const Section *find(const std::string &name) const;

    /** Fatal (68) when absent. */
    const Section &require(const std::string &name) const;
};

/** Serialize to the on-disk byte layout (header..end magic). */
std::vector<uint8_t> renderSnapshot(const Snapshot &s);

/**
 * Parse + validate a byte image. Every defect — bad magic, wrong
 * version, truncation, malformed section table, section CRC mismatch,
 * file CRC mismatch — is a fatalCode(SnapshotError) whose message
 * names the failing piece. @p origin labels diagnostics (a path).
 */
Snapshot parseSnapshot(const std::vector<uint8_t> &bytes,
                       const std::string &origin);

/**
 * Atomically write @p s to @p path: temp file in the same directory,
 * fsync, rename, directory fsync. I/O failures are fatal (68).
 */
void writeSnapshotAtomic(const Snapshot &s, const std::string &path);

/** Read + validate @p path; missing/unreadable file is fatal (68). */
Snapshot readSnapshot(const std::string &path);

} // namespace snap
} // namespace sf

#endif // SF_SIM_SNAPSHOT_HH
