#include "sim/stream_trace.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "sim/json.hh"

namespace sf {
namespace trace {

const char *
phaseName(StreamPhase p)
{
    switch (p) {
      case StreamPhase::Config: return "config";
      case StreamPhase::Float: return "float";
      case StreamPhase::Arrive: return "arrive";
      case StreamPhase::Migrate: return "migrate";
      case StreamPhase::CreditStall: return "credit-stall";
      case StreamPhase::Resume: return "resume";
      case StreamPhase::Sink: return "sink";
      case StreamPhase::End: return "end";
    }
    return "?";
}

StreamLifecycleTracer::StreamLifecycleTracer()
{
    const char *env = std::getenv("SF_STREAM_TRACE");
    _enabled = env && *env && std::string(env) != "0";
}

StreamLifecycleTracer &
StreamLifecycleTracer::instance()
{
    // Tracing forces the engine down to a single worker thread.
    // sflint: allow(S1, process-wide singleton behind serial fallback)
    static StreamLifecycleTracer tracer;
    return tracer;
}

namespace {

/** Chrome trace timestamps are microseconds; the chip runs at 2 GHz. */
double
tickToUs(Tick t)
{
    return static_cast<double>(t) / 2000.0;
}

void
writeEvent(json::Writer &w, const StreamEvent &e, const char *ph,
           Tick dur_ticks)
{
    w.beginObject();
    w.kv("name", phaseName(e.phase));
    w.kv("cat", "stream");
    w.kv("ph", ph);
    w.kv("ts", tickToUs(e.tick));
    if (ph[0] == 'X')
        w.kv("dur", tickToUs(dur_ticks));
    if (ph[0] == 'i')
        w.kv("s", "t");
    w.kv("pid", static_cast<int>(e.gsid.core));
    w.kv("tid", static_cast<int>(e.gsid.sid));
    w.beginObject("args");
    w.kv("tick", e.tick);
    w.kv("tile", static_cast<int>(e.tile));
    if (!e.detail.empty())
        w.kv("detail", e.detail);
    w.endObject();
    w.endObject();
}

} // namespace

void
StreamLifecycleTracer::exportChromeTrace(std::ostream &os) const
{
    // Bucket the interleaved log per stream, preserving time order.
    std::map<std::pair<TileId, StreamId>, std::vector<const StreamEvent *>>
        perStream;
    for (const auto &e : _events)
        perStream[{e.gsid.core, e.gsid.sid}].push_back(&e);

    json::Writer w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.beginArray("traceEvents");

    // Name each per-core process track once.
    std::set<TileId> cores;
    for (const auto &[key, evs] : perStream)
        cores.insert(key.first);
    for (TileId core : cores) {
        w.beginObject();
        w.kv("name", "process_name");
        w.kv("ph", "M");
        w.kv("pid", static_cast<int>(core));
        w.beginObject("args");
        w.kv("name", "core" + std::to_string(core) + " streams");
        w.endObject();
        w.endObject();
    }

    for (const auto &[key, evs] : perStream) {
        for (size_t i = 0; i < evs.size(); ++i) {
            const StreamEvent &e = *evs[i];
            if (i + 1 < evs.size()) {
                Tick dur = evs[i + 1]->tick >= e.tick
                               ? evs[i + 1]->tick - e.tick
                               : 0;
                writeEvent(w, e, "X", dur);
            } else {
                // Final transition: an instant marker.
                writeEvent(w, e, "i", 0);
            }
        }
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace trace
} // namespace sf
