#include "sim/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace sf {
namespace snap {

// ------------------------------------------------------------------ crc32

namespace {

struct CrcTable
{
    uint32_t t[256];

    constexpr CrcTable() : t()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

constexpr CrcTable kCrc;

} // namespace

uint32_t
crc32(const void *data, size_t n, uint32_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < n; ++i)
        c = kCrc.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- Encoder

void
Encoder::f64(double v)
{
    // Bit-exact: copy the IEEE-754 pattern byte-wise, not the object.
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(uint64_t));
    u64(bits);
}

void
Encoder::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void
Encoder::raw(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    _buf.insert(_buf.end(), p, p + n);
}

// ---------------------------------------------------------------- Decoder

namespace {

[[noreturn]] void
underflow(const std::string &section)
{
    fatalCode(ExitCode::SnapshotError,
              "snapshot section '%s' truncated (decode underflow)",
              section.c_str());
}

} // namespace

uint8_t
Decoder::u8()
{
    if (_pos + 1 > _len)
        underflow(_section);
    return _buf[_pos++];
}

uint16_t
Decoder::u16()
{
    uint16_t lo = u8();
    uint16_t hi = u8();
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
Decoder::u32()
{
    uint32_t lo = u16();
    uint32_t hi = u16();
    return lo | (hi << 16);
}

uint64_t
Decoder::u64()
{
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | (hi << 32);
}

double
Decoder::f64()
{
    uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(double));
    return v;
}

std::string
Decoder::str()
{
    uint32_t n = u32();
    if (_pos + n > _len)
        underflow(_section);
    std::string s(reinterpret_cast<const char *>(_buf + _pos), n);
    _pos += n;
    return s;
}

void
Decoder::raw(void *out, size_t n)
{
    if (_pos + n > _len)
        underflow(_section);
    std::memcpy(out, _buf + _pos, n);
    _pos += n;
}

void
Decoder::done() const
{
    if (_pos != _len) {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot section '%s' has %zu trailing bytes",
                  _section.c_str(), _len - _pos);
    }
}

// --------------------------------------------------------------- Snapshot

const Section *
Snapshot::find(const std::string &name) const
{
    for (const Section &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const Section &
Snapshot::require(const std::string &name) const
{
    const Section *s = find(name);
    if (!s) {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot is missing required section '%s'",
                  name.c_str());
    }
    return *s;
}

// ------------------------------------------------------- render and parse

std::vector<uint8_t>
renderSnapshot(const Snapshot &s)
{
    Encoder e;
    e.raw(kMagic, sizeof(kMagic));
    e.u32(kVersion);
    e.u32(static_cast<uint32_t>(s.sections.size()));
    for (const Section &sec : s.sections) {
        e.str(sec.name);
        e.u64(sec.payload.size());
        e.raw(sec.payload.data(), sec.payload.size());
        e.u32(crc32(sec.payload.data(), sec.payload.size()));
    }
    // Footer: whole-file CRC over everything so far, then end magic.
    const std::vector<uint8_t> &body = e.bytes();
    uint32_t fileCrc = crc32(body.data(), body.size());
    e.u32(fileCrc);
    e.raw(kEndMagic, sizeof(kEndMagic));
    return e.take();
}

namespace {

/** Bounded big-file reader: a section table must fit what's on disk. */
class Walker
{
  public:
    Walker(const std::vector<uint8_t> &bytes, const std::string &origin)
        : _b(bytes.data()), _len(bytes.size()), _origin(origin)
    {}

    [[noreturn]] void
    malformed(const char *what) const
    {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot '%s': section table malformed/truncated (%s)",
                  _origin.c_str(), what);
    }

    uint8_t
    u8()
    {
        if (_pos + 1 > _len)
            malformed("unexpected end of data");
        return _b[_pos++];
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::string
    bytes(size_t n, const char *what)
    {
        if (n > _len - _pos)
            malformed(what);
        std::string s(reinterpret_cast<const char *>(_b + _pos), n);
        _pos += n;
        return s;
    }

    size_t pos() const { return _pos; }
    size_t len() const { return _len; }

  private:
    const uint8_t *_b;
    size_t _len;
    size_t _pos = 0;
    const std::string &_origin;
};

} // namespace

Snapshot
parseSnapshot(const std::vector<uint8_t> &bytes, const std::string &origin)
{
    constexpr size_t kHeader = sizeof(kMagic) + 4 + 4;
    constexpr size_t kFooter = 4 + sizeof(kEndMagic);

    // 1. Magic.
    if (bytes.size() < sizeof(kMagic) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        fatalCode(ExitCode::SnapshotError,
                  "'%s' is not an sf-snap file (bad magic)",
                  origin.c_str());
    }

    // 2. Version (validated before anything layout-dependent).
    if (bytes.size() < kHeader) {
        fatalCode(ExitCode::SnapshotError, "truncated snapshot '%s'",
                  origin.c_str());
    }
    uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<uint32_t>(bytes[sizeof(kMagic) + i])
                   << (8 * i);
    if (version != kVersion) {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot '%s': unsupported snapshot version %u "
                  "(expected %u)",
                  origin.c_str(), version, kVersion);
    }

    // 3. Footer presence: end magic must close the file.
    if (bytes.size() < kHeader + kFooter ||
        std::memcmp(bytes.data() + bytes.size() - sizeof(kEndMagic),
                    kEndMagic, sizeof(kEndMagic)) != 0) {
        fatalCode(ExitCode::SnapshotError,
                  "truncated snapshot '%s' (missing footer)",
                  origin.c_str());
    }

    // 4. Section walk with bounds checks + per-section CRC.
    Walker w(bytes, origin);
    w.bytes(sizeof(kMagic), "magic");
    w.u32(); // version, already validated
    uint32_t count = w.u32();

    Snapshot snap;
    size_t bodyEnd = bytes.size() - kFooter;
    for (uint32_t i = 0; i < count; ++i) {
        if (w.pos() >= bodyEnd)
            w.malformed("section count exceeds data");
        uint32_t nameLen = w.u32();
        std::string name = w.bytes(nameLen, "section name");
        uint64_t payloadLen = w.u64();
        if (payloadLen > bodyEnd - w.pos())
            w.malformed("section payload exceeds data");
        std::string payload = w.bytes(payloadLen, "section payload");
        uint32_t storedCrc = w.u32();
        uint32_t actualCrc = crc32(payload.data(), payload.size());
        if (storedCrc != actualCrc) {
            fatalCode(ExitCode::SnapshotError,
                      "snapshot '%s': section '%s' checksum mismatch "
                      "(stored %08x, computed %08x)",
                      origin.c_str(), name.c_str(), storedCrc, actualCrc);
        }
        std::vector<uint8_t> pv(payload.begin(), payload.end());
        snap.add(std::move(name), std::move(pv));
    }
    if (w.pos() != bodyEnd)
        w.malformed("trailing bytes after last section");

    // 5. Whole-file CRC over everything before the footer.
    uint32_t storedFileCrc = 0;
    for (int i = 0; i < 4; ++i)
        storedFileCrc |= static_cast<uint32_t>(bytes[bodyEnd + i])
                         << (8 * i);
    uint32_t actualFileCrc = crc32(bytes.data(), bodyEnd);
    if (storedFileCrc != actualFileCrc) {
        fatalCode(ExitCode::SnapshotError,
                  "snapshot '%s': whole-file checksum mismatch "
                  "(stored %08x, computed %08x)",
                  origin.c_str(), storedFileCrc, actualFileCrc);
    }

    return snap;
}

// ------------------------------------------------------------------- I/O

void
writeSnapshotAtomic(const Snapshot &s, const std::string &path)
{
    std::vector<uint8_t> bytes = renderSnapshot(s);

    // Temp file in the same directory so rename() stays atomic.
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash);
    std::string tmp = path + ".tmp";

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        fatalCode(ExitCode::SnapshotError,
                  "cannot create snapshot temp file '%s': %s",
                  tmp.c_str(), std::strerror(errno));
    }
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            fatalCode(ExitCode::SnapshotError,
                      "write to snapshot temp file '%s' failed: %s",
                      tmp.c_str(), std::strerror(err));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        fatalCode(ExitCode::SnapshotError,
                  "fsync of snapshot temp file '%s' failed: %s",
                  tmp.c_str(), std::strerror(err));
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        fatalCode(ExitCode::SnapshotError,
                  "rename '%s' -> '%s' failed: %s", tmp.c_str(),
                  path.c_str(), std::strerror(err));
    }

    // Persist the rename itself.
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

Snapshot
readSnapshot(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        fatalCode(ExitCode::SnapshotError,
                  "cannot open snapshot '%s': %s", path.c_str(),
                  std::strerror(errno));
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    bool readErr = std::ferror(f) != 0;
    std::fclose(f);
    if (readErr) {
        fatalCode(ExitCode::SnapshotError,
                  "read error on snapshot '%s'", path.c_str());
    }
    return parseSnapshot(bytes, path);
}

} // namespace snap
} // namespace sf
