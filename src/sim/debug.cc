#include "sim/debug.hh"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace sf {
namespace debug {

uint64_t flagMask = 0;

namespace {

std::FILE *outStream = nullptr;

const char *const flagNames[numFlags] = {
    "Cache", "NoC", "StreamFloat", "SEL3", "DRAM", "Core", "Prefetch",
    "Sampler",
};

/** Applies SF_DEBUG_FLAGS before main() runs. */
const bool envInitialized = (initFromEnv(), true);

} // namespace

const char *
flagName(Flag f)
{
    auto idx = static_cast<size_t>(f);
    return idx < numFlags ? flagNames[idx] : "?";
}

std::vector<std::string>
allFlagNames()
{
    return std::vector<std::string>(flagNames, flagNames + numFlags);
}

bool
parseFlag(const std::string &name, Flag &out)
{
    for (size_t i = 0; i < numFlags; ++i) {
        if (name == flagNames[i]) {
            out = static_cast<Flag>(i);
            return true;
        }
    }
    return false;
}

void
enable(Flag f)
{
    flagMask |= uint64_t(1) << static_cast<uint32_t>(f);
}

void
disable(Flag f)
{
    flagMask &= ~(uint64_t(1) << static_cast<uint32_t>(f));
}

bool
enable(const std::string &name)
{
    Flag f;
    if (!parseFlag(name, f))
        return false;
    enable(f);
    return true;
}

bool
disable(const std::string &name)
{
    Flag f;
    if (!parseFlag(name, f))
        return false;
    disable(f);
    return true;
}

void
enableAll()
{
    flagMask = (uint64_t(1) << numFlags) - 1;
}

void
disableAll()
{
    flagMask = 0;
}

size_t
setFlagsFromString(const std::string &spec)
{
    size_t applied = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        bool negate = tok[0] == '-';
        if (negate)
            tok.erase(0, 1);
        if (tok == "All") {
            negate ? disableAll() : enableAll();
            ++applied;
        } else if (negate ? disable(tok) : enable(tok)) {
            ++applied;
        } else {
            std::fprintf(stderr,
                         "warn: unknown debug flag '%s' (known:",
                         tok.c_str());
            for (size_t i = 0; i < numFlags; ++i)
                std::fprintf(stderr, " %s", flagNames[i]);
            std::fprintf(stderr, ")\n");
        }
    }
    return applied;
}

void
initFromEnv()
{
    const char *env = std::getenv("SF_DEBUG_FLAGS");
    if (env && *env)
        setFlagsFromString(env);
}

void
setOutput(std::FILE *f)
{
    outStream = f;
}

std::FILE *
output()
{
    return outStream ? outStream : stderr;
}

void
print(Flag f, Tick tick, const char *who, const char *fmt, ...)
{
    std::FILE *out = output();
    std::fprintf(out, "%10llu: %s: [%s] ", (unsigned long long)tick,
                 who, flagName(f));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fputc('\n', out);
}

} // namespace debug
} // namespace sf
