/**
 * @file
 * Base class for named, clocked simulation components.
 */

#ifndef SF_SIM_SIM_OBJECT_HH
#define SF_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sf {

/**
 * A named component bound to the global event queue. All timed
 * components in the simulator (caches, routers, cores, stream engines)
 * derive from SimObject and express their behaviour as scheduled
 * callbacks.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick curTick() const { return _eq.curTick(); }
    EventQueue &eventQueue() { return _eq; }

  protected:
    /** Schedule a member callback @p delay cycles from now. */
    EventQueue::EventId
    scheduleIn(Cycles delay, EventQueue::Handler fn,
               EventPriority prio = EventPriority::Default)
    {
        return _eq.scheduleIn(delay, std::move(fn), prio);
    }

  private:
    std::string _name;
    EventQueue &_eq;
};

} // namespace sf

#endif // SF_SIM_SIM_OBJECT_HH
