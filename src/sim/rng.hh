/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every randomized decision in the simulator and every synthetic
 * dataset draws from an explicitly seeded Rng so runs are reproducible
 * bit-for-bit across machines and standard-library versions (std::
 * distributions are not portable, so we implement our own draws).
 */

#ifndef SF_SIM_RNG_HH
#define SF_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace sf {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5f3759df)
    {
        // splitmix64 to spread the seed across the state.
        uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    range(uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant at our bounds << 2^64).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    int64_t
    rangeInclusive(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            range(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state (snapshot capture/verify, DESIGN.md §4j). */
    std::array<uint64_t, 4>
    state() const
    {
        return {_s[0], _s[1], _s[2], _s[3]};
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t _s[4];
};

} // namespace sf

#endif // SF_SIM_RNG_HH
