/**
 * @file
 * TileDomains: shard worker pool and the quantum-barrier window loop
 * (see shard.hh and DESIGN.md §4i for the scheme and the determinism
 * argument).
 */

#include "sim/shard.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sf {
namespace sim {

namespace {

/**
 * Shard index of the executing host thread: 0 for the main thread
 * (which always runs shard 0 and the barrier phase), 1..S-1 for the
 * workers. Used to pick the right outbox without locks.
 */
// sflint: allow(S1, thread_local is per-thread state, not shared)
thread_local int tlsShard = 0;

} // namespace

TileDomains::TileDomains(EventQueue &global, int numTiles, int shards,
                         Cycles lookahead)
    : _global(global), _numTiles(numTiles),
      _lookahead(lookahead ? lookahead : 1)
{
    sf_assert(shards >= 1, "need at least one shard");
    sf_assert(numTiles >= 1, "need at least one tile");
    if (shards > numTiles)
        shards = numTiles;
    for (int s = 0; s < shards; ++s)
        _shardQ.push_back(std::make_unique<EventQueue>());
    _keyCnt.assign(size_t(numTiles), 0);
    _outbox.resize(size_t(shards));
    _postGlobal.resize(size_t(shards));
    _errors.assign(size_t(shards), nullptr);
}

TileDomains::~TileDomains()
{
    stopWorkers();
}

void
TileDomains::scheduleTile(TileId target, Tick when, uint64_t key,
                          Handler fn, EventPriority prio)
{
    int s = shardOf(target);
    if (_inWindow && s != tlsShard) {
        _outbox[size_t(tlsShard)].push_back(
            {target, when, key, prio, std::move(fn)});
        return;
    }
    EventQueue &q = *_shardQ[size_t(s)];
    if (key)
        q.scheduleKeyed(when, key, std::move(fn), prio);
    else
        q.schedule(when, std::move(fn), prio);
}

void
TileDomains::postGlobal(Tick when, TileId srcTile,
                        std::function<void()> op)
{
    _postGlobal[size_t(tlsShard)].push_back(
        {when, srcTile, std::move(op)});
}

void
TileDomains::deferWake(TileId tile, Handler fn)
{
    _wakes.emplace_back(tile, std::move(fn));
}

Tick
TileDomains::earliestShardTick()
{
    Tick t = maxTick;
    for (auto &q : _shardQ)
        t = std::min(t, q->nextTick());
    return t;
}

void
TileDomains::runShardSlice(int shard)
{
    try {
        _shardQ[size_t(shard)]->run(_windowEnd - 1);
    } catch (...) {
        _errors[size_t(shard)] = std::current_exception();
    }
}

void
TileDomains::workerLoop(int shard)
{
    tlsShard = shard;
    for (;;) {
        _startBarrier->arrive_and_wait();
        if (_shutdown)
            return;
        runShardSlice(shard);
        _endBarrier->arrive_and_wait();
    }
}

void
TileDomains::startWorkers()
{
    if (_workersStarted)
        return;
    _workersStarted = true;
    _shutdown = false;
    ptrdiff_t n = ptrdiff_t(shards());
    _startBarrier = std::make_unique<std::barrier<>>(n);
    _endBarrier = std::make_unique<std::barrier<>>(n);
    for (int s = 1; s < shards(); ++s)
        _workers.emplace_back([this, s] { workerLoop(s); });
}

void
TileDomains::stopWorkers()
{
    if (!_workersStarted)
        return;
    _shutdown = true;
    _startBarrier->arrive_and_wait();
    for (auto &t : _workers)
        t.join();
    _workers.clear();
    _workersStarted = false;
}

void
TileDomains::rethrowWorkerError()
{
    for (auto &err : _errors) {
        if (!err)
            continue;
        std::exception_ptr e = err;
        for (auto &x : _errors)
            x = nullptr;
        // Park the pool before unwinding: the error path (fatal
        // diagnostics, drain checks) must not race live workers.
        stopWorkers();
        std::rethrow_exception(e);
    }
}

void
TileDomains::windowBarrier(Tick windowEnd)
{
    Tick boundary = windowEnd - 1;

    // 1. Merge cross-shard messages. Insertion order (shard-major
    //    FIFO) is irrelevant: every entry carries a canonical key, so
    //    execution order at equal (when, prio) is (src tile, seq) by
    //    construction — the same order a direct insert would yield.
    for (auto &box : _outbox) {
        for (OutboxEntry &e : box) {
            EventQueue &q = *_shardQ[size_t(shardOf(e.target))];
            if (e.key)
                q.scheduleKeyed(e.when, e.key, std::move(e.fn), e.prio);
            else
                q.schedule(e.when, std::move(e.fn), e.prio);
        }
        box.clear();
    }

    // 2. Main-thread hook (profiler cross-tile op flush).
    if (_barrierHook)
        _barrierHook();

    // 3. Deferred global-service ops in canonical (when, srcTile)
    //    order. Ops sharing both fields come from one tile and thus
    //    one shard, where stable_sort preserves their (deterministic)
    //    FIFO order.
    size_t nOps = 0;
    for (auto &v : _postGlobal)
        nOps += v.size();
    if (nOps) {
        std::vector<GlobalOp> ops;
        ops.reserve(nOps);
        for (auto &v : _postGlobal) {
            for (GlobalOp &op : v)
                ops.push_back(std::move(op));
            v.clear();
        }
        std::stable_sort(ops.begin(), ops.end(),
                         [](const GlobalOp &a, const GlobalOp &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             return a.srcTile < b.srcTile;
                         });
        for (GlobalOp &op : ops)
            op.op();
    }

    // 4. Global services up to the boundary. A global event at tick g
    //    only ever executes in the window with boundary == g (the
    //    g + 1 term in the window computation), so anything it defers
    //    for tiles via deferWake lands exactly at its own tick.
    _global.run(boundary);

    // 5. Insert deferred wakes at the boundary tick. Unkeyed events
    //    order before keyed ones, and the wake list order is the
    //    (deterministic) global-slice execution order.
    for (auto &w : _wakes) {
        _shardQ[size_t(shardOf(w.first))]->schedule(
            boundary, std::move(w.second), EventPriority::Default);
    }
    _wakes.clear();

    // 6. Park the global clock on the boundary so end-of-run reads
    //    (sampler stop, utilization denominators, stats formulas) are
    //    partition-independent.
    _global.advanceTo(boundary);
}

TileDomains::Exit
TileDomains::runWindows(const std::function<bool()> &stop, Tick limit)
{
    for (;;) {
        if (_boundaryHook)
            _boundaryHook(_global.curTick());
        if (stop && stop())
            return Exit::Stopped;
        Tick smin = earliestShardTick();
        Tick g = _global.nextTick();
        Tick first = std::min(smin, g);
        if (first == maxTick)
            return Exit::Empty;
        if (first > limit)
            return Exit::Limit;
        Tick eShard =
            smin > maxTick - _lookahead ? maxTick : smin + _lookahead;
        Tick eGlob = g == maxTick ? maxTick : g + 1;
        Tick end = std::min(eShard, eGlob);
        if (limit != maxTick && end > limit + 1)
            end = limit + 1;

        if (shards() == 1) {
            // Same engine, no synchronization: exceptions propagate
            // directly, matching the pre-parallel serial behavior.
            _windowEnd = end;
            _shardQ[0]->run(end - 1);
        } else {
            startWorkers();
            _windowEnd = end;
            _inWindow = true;
            _startBarrier->arrive_and_wait();
            runShardSlice(0);
            _endBarrier->arrive_and_wait();
            _inWindow = false;
            rethrowWorkerError();
        }
        windowBarrier(end);
    }
}

} // namespace sim
} // namespace sf
