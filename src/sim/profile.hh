/**
 * @file
 * Latency-attribution profiler (DESIGN.md §4h).
 *
 * Three cooperating pieces, all strictly opt-in (`--profile`):
 *
 *  - lifecycle records: every demand miss and stream element gets a
 *    compact record at issue time; components mark phase transitions
 *    (priv-cache lookup, NoC queue/transfer per hop, L3 bank queue and
 *    service, DRAM, SE-buffer park) and the deltas fold into
 *    per-(tile, stream, phase) log2-bucketed latency histograms;
 *
 *  - top-down cycle accounting: one TopDownAccount per core and per
 *    SE splits every simulated cycle into
 *    retired / stalled-on-data / stalled-on-sebuf / stalled-on-credit /
 *    idle. The split is exact by construction (gaps between ticks are
 *    charged to the reason recorded when the component quiesced) and
 *    verified by an invariant check at end of sim;
 *
 *  - report rendering: the aggregates serialize deterministically
 *    (ordered maps, integer state, fixed bucket boundaries) into the
 *    `profile.*` stat groups and the standalone profile.json.
 *
 * When profiling is off no Profiler exists: components hold a null
 * pointer and every hook is a single branch on the hot path.
 */

#ifndef SF_SIM_PROFILE_HH
#define SF_SIM_PROFILE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/annotations.hh"
#include "sim/json.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace sf {
namespace prof {

/**
 * Lifecycle phases of a tracked request/element. Mark-phases
 * (PrivCache, Remote, Fill, SEBuffer) partition a record's life;
 * add-phases (the NoC/L3/Mem set) are measured sub-intervals of
 * Remote attributed by the components the request passes through, so
 * per-phase histograms are attribution detail, not a second partition.
 */
enum class Phase : uint8_t
{
    /** Core/SE issue to the point the private caches resolve or
     *  escalate the access (hit serve, MSHR park, or GetS/GetM send). */
    PrivCache = 0,
    /** Waiting on the remote side: request sent until data returned. */
    Remote,
    /** Data arrival to requester completion (fill + L1 latency). */
    Fill,
    /** Floated element parked at the SE buffer until data arrival. */
    SEBuffer,
    /** Request-path NoC: cycles queued behind busy links. */
    NocReqQueue,
    /** Request-path NoC: router + serialization + link traversal. */
    NocReqXfer,
    /** L3 bank: parked behind a blocked line (directory txn). */
    L3Queue,
    /** L3 bank: fixed lookup/service latency. */
    L3Service,
    /** Directory memory fetch: MemRead issue to MemData return. */
    Mem,
    /** Response-path NoC: cycles queued behind busy links. */
    NocRspQueue,
    /** Response-path NoC: router + serialization + link traversal. */
    NocRspXfer,
    /** End-to-end: open() to close(). */
    Total,
    NumPhases,
};

constexpr size_t numPhases = static_cast<size_t>(Phase::NumPhases);

const char *phaseName(Phase p);

/**
 * Log2-bucketed latency histogram: bucket 0 holds zero-cycle samples,
 * bucket i >= 1 holds [2^(i-1), 2^i). Integer state only; the p50/p95
 * accessors interpolate inside the hit bucket, so repeated runs render
 * identical bytes.
 */
class LatHist
{
  public:
    static constexpr int numBuckets = 33;

    void
    sample(uint64_t v)
    {
        ++_count;
        _sum += v;
        if (v > _max)
            _max = v;
        ++_buckets[bucketOf(v)];
    }

    uint64_t count() const { return _count; }
    uint64_t sum() const { return _sum; }
    uint64_t max() const { return _max; }
    double mean() const { return _count ? double(_sum) / _count : 0.0; }
    const std::array<uint64_t, numBuckets> &buckets() const
    {
        return _buckets;
    }

    /** Interpolated percentile, q in [0, 1]; 0 when empty. */
    double percentile(double q) const;
    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }

    void
    merge(const LatHist &o)
    {
        _count += o._count;
        _sum += o._sum;
        if (o._max > _max)
            _max = o._max;
        for (int i = 0; i < numBuckets; ++i)
            _buckets[i] += o._buckets[i];
    }

    static int
    bucketOf(uint64_t v)
    {
        return v ? 64 - __builtin_clzll(v) : 0;
    }

    /** Inclusive [lo, hi] value range of one bucket. */
    static uint64_t bucketLo(int b) { return b ? 1ull << (b - 1) : 0; }
    static uint64_t
    bucketHi(int b)
    {
        return b ? (1ull << b) - 1 : 0;
    }

  private:
    uint64_t _count = 0;
    uint64_t _sum = 0;
    uint64_t _max = 0;
    std::array<uint64_t, numBuckets> _buckets{};
};

/** Top-down stall taxonomy (Fig. 2 of the paper). */
enum class Bucket : uint8_t
{
    /** At least one op/element retired this cycle. */
    Retired = 0,
    /** Head of window waits on memory data (demand or stream fetch). */
    StalledData,
    /** Head stream use waits on an element the SE buffer lacks. */
    StalledSebuf,
    /** Dispatch/issue blocked by SE flow-control credits. */
    StalledCredit,
    /** Nothing to do (drained, source exhausted, or between phases). */
    Idle,
    NumBuckets,
};

constexpr size_t numBuckets = static_cast<size_t>(Bucket::NumBuckets);

const char *bucketName(Bucket b);

/**
 * Exact-sum cycle accounting for one core or SE. Active components
 * call tickAt(now, bucket) on every executed cycle; quiesced spans
 * between ticks are charged to the reason recorded when the component
 * went to sleep. By construction the buckets always sum to the number
 * of accounted cycles, which finalize() extends to end-of-sim; the
 * verify() recomputation exists to catch accounting bugs (and powers
 * the negative test that skews a bucket on purpose).
 */
class TopDownAccount
{
  public:
    /** Charge cycle @p now to @p b and the gap since the previous
     *  accounted cycle to the current gap reason. */
    void
    tickAt(Tick now, Bucket b)
    {
        if (now < _upTo)
            return;
        _cycles[size_t(_gap)] += now - _upTo;
        _cycles[size_t(b)] += 1;
        _upTo = now + 1;
    }

    /** Record why upcoming un-ticked cycles should be charged. */
    void setGapReason(Bucket b) { _gap = b; }
    Bucket gapReason() const { return _gap; }

    /** Charge the tail gap so the account covers exactly [0, end). */
    void
    finalize(Tick end)
    {
        if (end > _upTo) {
            _cycles[size_t(_gap)] += end - _upTo;
            _upTo = end;
        }
    }

    uint64_t
    cycles(Bucket b) const
    {
        return _cycles[size_t(b)];
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : _cycles)
            t += c;
        return t;
    }

    /** First cycle not yet accounted ( == total cycles covered). */
    Tick accountedUpTo() const { return _upTo; }

    /** Empty string when consistent, else a violation description. */
    std::string verify(const std::string &name) const;

    /** Direct bucket access for the negative invariant test. */
    std::array<uint64_t, numBuckets> &rawCyclesForTest()
    {
        return _cycles;
    }

  private:
    std::array<uint64_t, numBuckets> _cycles{};
    Tick _upTo = 0;
    Bucket _gap = Bucket::Idle;
};

/**
 * The profiler: per-tile record arenas for in-flight lifecycle
 * tracking plus the per-(tile, stream, phase) aggregates and top-down
 * accounts. Components receive a `Profiler *` (null when profiling is
 * off) and guard every hook with a single null check.
 *
 * Record handles are 32-bit: 8-bit owner tile, 16-bit arena slot, and
 * an 8-bit generation, so a stale mark on a recycled slot is detected
 * and counted instead of corrupting another record. Handle 0 is "no
 * record" and is ignored by every entry point.
 *
 * Threading (DESIGN.md §4i): every mutable structure is owned by the
 * tile encoded in the handle. mark/add/close take the tile whose
 * execution context makes the call; with setDeferCrossTile(true) (the
 * PDES engine, any shard count) an op touching another tile's record
 * is queued on the calling tile and applied at the window barrier in
 * (tile, FIFO) order. Two tiles never touch one record in the same
 * window — consecutive touches are separated by at least the NoC
 * lookahead — so the applied per-record op sequence, including stale
 * classification, is shard-count-invariant.
 */
class Profiler
{
  public:
    Profiler() = default;

    /**
     * Pre-size the per-tile arenas (at most 256 tiles). Required
     * before deferred (engine) operation so no structure reallocates
     * mid-run; optional for serial standalone use, where tiles grow on
     * first open().
     */
    void configureTiles(int numTiles);

    /**
     * Defer cross-tile mark/add/close ops to flushDeferred() instead
     * of applying them inline. The PDES engine turns this on for every
     * shard count (including 1) so the op application order is
     * engine-invariant; standalone serial users leave it off.
     */
    void setDeferCrossTile(bool on) { _deferCrossTile = on; }

    /** Apply queued cross-tile ops in (tile, FIFO) order. Call at the
     *  window barrier (never concurrently with shard execution). */
    void flushDeferred() SF_BARRIER_ONLY;

    /** Begin tracking one request/element on @p tile (the calling
     *  execution context). sid == invalidStream means a plain demand
     *  access. Returns 0 when the tile's arena is full. */
    uint32_t open(TileId tile, StreamId sid, Tick now) SF_SHARD_LOCAL;

    /** Fold [lastMark, now) into @p p and advance the mark. @p exec
     *  is the tile whose execution context calls. */
    void
    mark(TileId exec, uint32_t id, Phase p, Tick now) SF_SHARD_LOCAL
    {
        if (!id)
            return;
        if (_deferCrossTile && tileOf(id) != exec) {
            _tiles[size_t(exec)].deferred.push_back(
                {id, OpKind::Mark, p, Phase::Fill, now});
            return;
        }
        markNow(id, p, now);
    }

    /** Attribute @p cycles to @p p without moving the phase mark
     *  (overlapping sub-interval, e.g. one NoC hop). */
    void
    add(TileId exec, uint32_t id, Phase p, uint64_t cycles) SF_SHARD_LOCAL
    {
        if (!id)
            return;
        if (_deferCrossTile && tileOf(id) != exec) {
            _tiles[size_t(exec)].deferred.push_back(
                {id, OpKind::Add, p, Phase::Fill, cycles});
            return;
        }
        addNow(id, p, cycles);
    }

    /** Finish a record: residual time becomes @p residual, the
     *  end-to-end latency lands in Phase::Total, the slot recycles. */
    void
    close(TileId exec, uint32_t id, Tick now,
          Phase residual = Phase::Fill) SF_SHARD_LOCAL
    {
        if (!id)
            return;
        if (_deferCrossTile && tileOf(id) != exec) {
            _tiles[size_t(exec)].deferred.push_back(
                {id, OpKind::Close, Phase::Total, residual, now});
            return;
        }
        closeNow(id, now, residual);
    }

    /** Live records over all tiles (folded in tile order). */
    size_t
    openRecords() const
    {
        size_t n = 0;
        for (const TileState &t : _tiles)
            n += t.open;
        return n;
    }

    /** Stale-handle touches over all tiles (folded in tile order). */
    uint64_t
    staleMarks() const
    {
        uint64_t n = 0;
        for (const TileState &t : _tiles)
            n += t.stale;
        return n;
    }

    /** Get-or-create the named top-down account (ordered by name). */
    TopDownAccount &topDown(const std::string &name);

    /** finalize() every account to @p end, then verify. */
    std::vector<std::string> finalizeTopDown(Tick end);

    /** Re-check every account without mutating (negative tests). */
    std::vector<std::string> verifyTopDown() const;

    const std::map<std::string, TopDownAccount> &topDownAccounts() const
    {
        return _topDown;
    }

    using PhaseHists = std::array<LatHist, numPhases>;
    /** Aggregates keyed (tile, sid), assembled from the per-tile maps
     *  in tile order; ordered for deterministic dumps. */
    std::map<std::pair<TileId, StreamId>, PhaseHists> aggregates() const;

    /** Register `profile.tile{N}` stat groups with p50/p95/max/mean
     *  formulas per (stream, phase); the profiler must outlive @p reg. */
    void registerStats(stats::StatRegistry &reg) const;

    /** Emit the "latency" / "topdown" / diagnostic members into an
     *  open JSON object. */
    void dumpJson(json::Writer &w) const;

    /** One-line summary object for the sweep merge: aggregate
     *  top-down split plus per-phase p95 across all tiles/streams. */
    void dumpSummaryJson(json::Writer &w) const;

  private:
    struct Rec
    {
        Tick openTick = 0;
        Tick lastMark = 0;
        PhaseHists *agg = nullptr;
        uint8_t gen = 0;
        bool live = false;
    };

    enum class OpKind : uint8_t { Mark, Add, Close };

    /** A cross-tile op captured at issue, applied at the barrier. */
    struct DeferredOp
    {
        uint32_t id;
        OpKind kind;
        Phase phase;    //!< mark/add target (unused for close)
        Phase residual; //!< close residual phase
        uint64_t value; //!< mark/close: now; add: cycles
    };

    /** All state owned by one tile's execution context. */
    struct TileState
    {
        std::vector<Rec> recs;
        std::vector<uint32_t> freeSlots;
        size_t open = 0;
        uint64_t stale = 0;
        std::map<StreamId, PhaseHists> agg;
        /** Ops this tile issued against other tiles' records. */
        std::vector<DeferredOp> deferred;
    };

    // Handle layout: [31:24] owner tile, [23:8] slot+1, [7:0] gen.
    static constexpr uint32_t tileShift = 24;
    static constexpr uint32_t slotShift = 8;
    static constexpr uint32_t slotMask = 0xffff;
    static constexpr uint32_t genMask = 0xff;
    static constexpr uint32_t maxTiles = 256;

    static TileId
    tileOf(uint32_t id)
    {
        return TileId(id >> tileShift);
    }

    Rec *
    resolve(uint32_t id)
    {
        if (!id)
            return nullptr;
        TileState &t = _tiles[size_t(tileOf(id))];
        uint32_t slot = ((id >> slotShift) & slotMask) - 1;
        if (slot >= t.recs.size() || !t.recs[slot].live ||
            t.recs[slot].gen != (id & genMask)) {
            ++t.stale;
            return nullptr;
        }
        return &t.recs[slot];
    }

    void markNow(uint32_t id, Phase p, Tick now);
    void addNow(uint32_t id, Phase p, uint64_t cycles);
    void closeNow(uint32_t id, Tick now, Phase residual);

    std::vector<TileState> _tiles;
    bool _deferCrossTile = false;
    std::map<std::string, TopDownAccount> _topDown;
};

/** Stable stream label used in stat groups and profile.json:
 *  "demand" for invalidStream, else "s<id>". */
std::string streamLabel(StreamId sid);

} // namespace prof
} // namespace sf

#endif // SF_SIM_PROFILE_HH
