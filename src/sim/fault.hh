/**
 * @file
 * Deterministic seeded fault injection for the stream-floating
 * control protocol.
 *
 * A FaultConfig is parsed from a `--faults=` spec and describes which
 * stream control messages (float/config requests, credit grants, end
 * notifications, acks) to drop, delay, or duplicate, plus two
 * structural faults: forcing SE_L3 stream-table overflows and
 * disabling the SE_L2 retry/fallback machinery (so hangs that the
 * graceful-degradation path would mask become watchdog-visible).
 *
 * The FaultInjector draws every decision from its own xoshiro256**
 * stream seeded from the config, so the same spec on the same workload
 * produces the same fault schedule on every run.
 */

#ifndef SF_SIM_FAULT_HH
#define SF_SIM_FAULT_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sf {

/** Classification of a stream control message crossing the mesh. */
enum class FaultClass
{
    FloatRequest = 0, ///< StreamFloatMsg (config or migration)
    CreditGrant = 1,  ///< StreamCreditMsg
    StreamEnd = 2,    ///< StreamEndMsg
    StreamAck = 3,    ///< StreamAckMsg (ack / NACK)
};

constexpr int numFaultClasses = 4;

const char *faultClassName(FaultClass cls);

/** What the injector decided to do with one message. */
enum class FaultAction
{
    None,
    Drop,
    Delay,
    Duplicate,
};

/**
 * Parsed `--faults=` spec. Grammar: comma-separated tokens
 *
 *   seed:N          RNG seed for the fault schedule (default 1)
 *   dropfloat:P     drop each float/migration request with prob P
 *   dropcredit:P    drop each credit grant with prob P
 *   dropend:P       drop each stream-end notification with prob P
 *   dropack:P       drop each float ack/NACK with prob P
 *   dupfloat:P dupcredit:P dupend:P dupack:P   duplicate instead
 *   delay:P         delay any stream control message with prob P
 *   delaycycles:N   added latency for delayed messages (default 200)
 *   overflow[:N]    clamp every SE_L3 stream table to N entries (1)
 *   noretry         disable SE_L2 ack-timeout retry and fallback
 *   none            explicit no-op spec
 *
 * Probabilities are in [0,1]. Unknown tokens are a fatal() config
 * error.
 */
struct FaultConfig
{
    uint64_t seed = 1;
    double drop[numFaultClasses] = {0, 0, 0, 0};
    double dup[numFaultClasses] = {0, 0, 0, 0};
    double delayProb = 0.0;
    Cycles delayCycles = 200;
    /** When > 0, clamp SEL3Config::maxStreams to this many entries. */
    int overflowEntries = 0;
    /** Disable the SE_L2 retry/sink fallback (hangs become visible). */
    bool noRetry = false;

    /** Any message-level fault (drop/dup/delay) configured? */
    bool
    messageFaults() const
    {
        if (delayProb > 0)
            return true;
        for (int i = 0; i < numFaultClasses; ++i) {
            if (drop[i] > 0 || dup[i] > 0)
                return true;
        }
        return false;
    }

    bool
    enabled() const
    {
        return messageFaults() || overflowEntries > 0 || noRetry;
    }

    static FaultConfig parse(const std::string &spec);

    /** Human-readable one-line summary (for logs and stats dumps). */
    std::string describe() const;
};

/**
 * Draws per-message fault decisions from a private seeded RNG and
 * counts what it did. Install at the mesh injection point via
 * Mesh::setSendInterceptor from the system layer (the NoC itself must
 * not know about stream message types).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : _cfg(cfg), _rng(cfg.seed)
    {}

    const FaultConfig &config() const { return _cfg; }

    /** Decide the fate of one control message of class @p cls. */
    FaultAction
    decide(FaultClass cls)
    {
        int i = static_cast<int>(cls);
        // Fixed draw order keeps the schedule deterministic even when
        // several fault kinds are configured at once.
        if (_cfg.drop[i] > 0 && _rng.chance(_cfg.drop[i])) {
            ++_dropped[i];
            return FaultAction::Drop;
        }
        if (_cfg.dup[i] > 0 && _rng.chance(_cfg.dup[i])) {
            ++_duplicated[i];
            return FaultAction::Duplicate;
        }
        if (_cfg.delayProb > 0 && _rng.chance(_cfg.delayProb)) {
            ++_delayed;
            return FaultAction::Delay;
        }
        return FaultAction::None;
    }

    Cycles delayCycles() const { return _cfg.delayCycles; }

    uint64_t
    totalInjected() const
    {
        uint64_t n = _delayed.value();
        for (int i = 0; i < numFaultClasses; ++i)
            n += _dropped[i].value() + _duplicated[i].value();
        return n;
    }

    void
    regStats(stats::StatGroup &g) const
    {
        for (int i = 0; i < numFaultClasses; ++i) {
            std::string cls = faultClassName(static_cast<FaultClass>(i));
            g.regScalar("dropped_" + cls, &_dropped[i]);
            g.regScalar("duplicated_" + cls, &_duplicated[i]);
        }
        g.regScalar("delayed", &_delayed);
    }

    void debugDump(std::FILE *out) const;

    /** Current RNG state (snapshot capture/verify, DESIGN.md §4j). */
    std::array<uint64_t, 4> rngState() const { return _rng.state(); }

  private:
    FaultConfig _cfg;
    Rng _rng;
    stats::Scalar _dropped[numFaultClasses];
    stats::Scalar _duplicated[numFaultClasses];
    stats::Scalar _delayed;
};

} // namespace sf

#endif // SF_SIM_FAULT_HH
