#include "sim/logging.hh"

#include <cstdarg>
#include <utility>
#include <vector>

namespace sf {

namespace {

struct HookEntry
{
    int id;
    std::string name;
    DiagnosticHook fn;
};

std::vector<HookEntry> &
hookRegistry()
{
    // Workers never add or fire diagnostic hooks.
    // sflint: allow(S1, registry touched by the main thread only)
    static std::vector<HookEntry> hooks;
    return hooks;
}

int nextHookId = 1;

} // namespace

int
addDiagnosticHook(const std::string &name, DiagnosticHook fn)
{
    int id = nextHookId++;
    hookRegistry().push_back({id, name, std::move(fn)});
    return id;
}

void
removeDiagnosticHook(int id)
{
    auto &hooks = hookRegistry();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

void
emitDiagnostics(std::FILE *out)
{
    // A hook that itself fatal()s/panic()s must not recurse into a
    // second dump; the guard also keeps a hook exception from masking
    // the error that triggered the snapshot.
    static std::atomic<bool> emitting{false};
    if (hookRegistry().empty() || emitting.exchange(true))
        return;
    std::fprintf(out, "=== diagnostic snapshot ===\n");
    for (const auto &h : hookRegistry()) {
        std::fprintf(out, "--- %s ---\n", h.name.c_str());
        try {
            h.fn(out);
        } catch (const std::exception &e) {
            std::fprintf(out, "(diagnostic hook '%s' failed: %s)\n",
                         h.name.c_str(), e.what());
        }
    }
    std::fprintf(out, "=== end diagnostic snapshot ===\n");
    std::fflush(out);
    emitting = false;
}

namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail
} // namespace sf
