/**
 * @file
 * Output-path validation shared by every artifact-writing flag
 * (--stats-json, --trace, --profile). A missing or unwritable target
 * used to surface as a silent empty file or a cryptic errno much
 * later; these helpers turn it into an immediate fatal() that names
 * the flag and the path.
 */

#ifndef SF_SIM_OUTPUT_PATH_HH
#define SF_SIM_OUTPUT_PATH_HH

#include <fstream>
#include <string>

namespace sf {

/**
 * Make sure @p dir exists (creating it if needed) and is a writable
 * directory. fatal() with a message naming @p flag otherwise.
 */
void ensureOutputDir(const std::string &dir, const char *flag);

/**
 * Open @p path for writing. The parent directory must already exist
 * and be writable; fatal() naming @p flag otherwise.
 */
std::ofstream openOutputFile(const std::string &path, const char *flag);

} // namespace sf

#endif // SF_SIM_OUTPUT_PATH_HH
