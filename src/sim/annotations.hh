/**
 * @file
 * Zero-cost concurrency-contract annotations (DESIGN.md §4g).
 *
 * Every macro expands to nothing: the compiler never sees them, the
 * generated code is identical with or without them. They exist for
 * `tools/sflint`, which parses the annotation tokens out of the
 * source and enforces the contracts statically (rules C1 and C2),
 * the same contracts TSan can only check on paths that happen to
 * execute.
 *
 * Placement grammar (mirrors the clang thread-safety attributes):
 *
 *   - `SF_GUARDED_BY(m)` follows a *data member's name*:
 *
 *         std::unordered_map<Addr, Page> _pages SF_GUARDED_BY(_mu);
 *
 *     sflint C1 then requires every member-function access to
 *     `_pages` to happen while `_mu` is held — via a
 *     `lock_guard`/`unique_lock`/`shared_lock`/`scoped_lock`
 *     constructed on `_mu`, via a member lock-helper that returns
 *     such a lock (`auto l = readLock();` — sflint discovers helper
 *     functions interprocedurally), or inside a function annotated
 *     `SF_REQUIRES(_mu)`. Constructors and destructors are exempt
 *     (the object is not shared yet / any longer).
 *
 *   - `SF_REQUIRES(m)` follows a *function's parameter list* (before
 *     the body or `;`), declaring that the caller must already hold
 *     `m`:
 *
 *         Addr mapPage(Addr vpage) SF_REQUIRES(_mu);
 *
 *     C1 checks both sides: the annotated body may touch
 *     `SF_GUARDED_BY(m)` state freely, and every call site must
 *     itself hold `m`.
 *
 *   - `SF_SHARD_LOCAL` follows a data member's name or a function's
 *     parameter list. On a member it marks state owned by one
 *     shard's execution context (DESIGN.md §4i); on a function it
 *     marks code that runs on a shard worker thread inside a
 *     parallel window (an event handler or its helpers).
 *
 *   - `SF_BARRIER_ONLY` follows a function's parameter list and
 *     marks code that runs only inside the quantum-barrier merge —
 *     single-threaded, canonically ordered, between windows.
 *
 *     sflint C2 then enforces shard affinity over the cross-TU call
 *     graph: no function reachable from `SF_BARRIER_ONLY` code may
 *     touch `SF_SHARD_LOCAL` state, and no `SF_BARRIER_ONLY`
 *     function may be reachable from `SF_SHARD_LOCAL` (shard-
 *     context) code.
 */

#ifndef SF_SIM_ANNOTATIONS_HH
#define SF_SIM_ANNOTATIONS_HH

/** Member may only be accessed while mutex @p m is held (sflint C1). */
#define SF_GUARDED_BY(m)

/** Function requires the caller to hold mutex @p m (sflint C1). */
#define SF_REQUIRES(m)

/** State / code owned by one shard's execution context (sflint C2). */
#define SF_SHARD_LOCAL

/** Code that runs only inside the quantum-barrier merge (sflint C2). */
#define SF_BARRIER_ONLY

#endif // SF_SIM_ANNOTATIONS_HH
