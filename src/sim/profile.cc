/**
 * @file
 * Latency-attribution profiler implementation (see profile.hh).
 */

#include "sim/profile.hh"

#include <algorithm>

namespace sf {
namespace prof {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::PrivCache: return "privCache";
      case Phase::Remote: return "remote";
      case Phase::Fill: return "fill";
      case Phase::SEBuffer: return "seBuffer";
      case Phase::NocReqQueue: return "nocReqQueue";
      case Phase::NocReqXfer: return "nocReqXfer";
      case Phase::L3Queue: return "l3Queue";
      case Phase::L3Service: return "l3Service";
      case Phase::Mem: return "mem";
      case Phase::NocRspQueue: return "nocRspQueue";
      case Phase::NocRspXfer: return "nocRspXfer";
      case Phase::Total: return "total";
      default: return "?";
    }
}

const char *
bucketName(Bucket b)
{
    switch (b) {
      case Bucket::Retired: return "retired";
      case Bucket::StalledData: return "stalledData";
      case Bucket::StalledSebuf: return "stalledSebuf";
      case Bucket::StalledCredit: return "stalledCredit";
      case Bucket::Idle: return "idle";
      default: return "?";
    }
}

std::string
streamLabel(StreamId sid)
{
    if (sid == invalidStream)
        return "demand";
    return "s" + std::to_string(sid);
}

double
LatHist::percentile(double q) const
{
    if (!_count)
        return 0.0;
    // Rank of the q-th sample (1-based, ceil), then interpolate
    // linearly inside the bucket that holds it. Integer state in,
    // fixed arithmetic out: byte-stable across runs.
    uint64_t rank = static_cast<uint64_t>(q * double(_count));
    if (rank < 1)
        rank = 1;
    if (rank > _count)
        rank = _count;
    uint64_t cum = 0;
    for (int b = 0; b < numBuckets; ++b) {
        if (!_buckets[b])
            continue;
        if (cum + _buckets[b] >= rank) {
            double lo = double(bucketLo(b));
            double hi = double(std::min(bucketHi(b), _max));
            double within = double(rank - cum) / double(_buckets[b]);
            return lo + (hi - lo) * within;
        }
        cum += _buckets[b];
    }
    return double(_max);
}

std::string
TopDownAccount::verify(const std::string &name) const
{
    uint64_t sum = total();
    if (sum != _upTo) {
        return "topdown[" + name + "]: buckets sum to " +
               std::to_string(sum) + " but " + std::to_string(_upTo) +
               " cycles were accounted";
    }
    return "";
}

void
Profiler::configureTiles(int numTiles)
{
    if (numTiles > int(maxTiles))
        numTiles = int(maxTiles);
    if (size_t(numTiles) > _tiles.size())
        _tiles.resize(size_t(numTiles));
}

uint32_t
Profiler::open(TileId tile, StreamId sid, Tick now)
{
    if (tile < 0 || uint32_t(tile) >= maxTiles)
        return 0;
    if (size_t(tile) >= _tiles.size()) {
        // Lazy growth is only safe serially; the engine pre-sizes via
        // configureTiles() before any worker exists.
        _tiles.resize(size_t(tile) + 1);
    }
    TileState &t = _tiles[size_t(tile)];
    uint32_t slot;
    if (!t.freeSlots.empty()) {
        slot = t.freeSlots.back();
        t.freeSlots.pop_back();
    } else {
        if (t.recs.size() >= slotMask - 1)
            return 0;
        t.recs.push_back(Rec{});
        slot = static_cast<uint32_t>(t.recs.size() - 1);
    }
    Rec &r = t.recs[slot];
    r.openTick = now;
    r.lastMark = now;
    r.agg = &t.agg[sid];
    r.live = true;
    ++t.open;
    return (uint32_t(tile) << tileShift) | ((slot + 1) << slotShift) |
           r.gen;
}

void
Profiler::markNow(uint32_t id, Phase p, Tick now)
{
    Rec *r = resolve(id);
    if (!r)
        return;
    (*r->agg)[size_t(p)].sample(now - r->lastMark);
    r->lastMark = now;
}

void
Profiler::addNow(uint32_t id, Phase p, uint64_t cycles)
{
    Rec *r = resolve(id);
    if (!r)
        return;
    (*r->agg)[size_t(p)].sample(cycles);
}

void
Profiler::closeNow(uint32_t id, Tick now, Phase residual)
{
    Rec *r = resolve(id);
    if (!r)
        return;
    (*r->agg)[size_t(residual)].sample(now - r->lastMark);
    (*r->agg)[size_t(Phase::Total)].sample(now - r->openTick);
    r->live = false;
    r->gen = (r->gen + 1) & genMask;
    r->agg = nullptr;
    TileState &t = _tiles[size_t(tileOf(id))];
    --t.open;
    t.freeSlots.push_back(static_cast<uint32_t>(r - t.recs.data()));
}

void
Profiler::flushDeferred()
{
    for (TileState &t : _tiles) {
        for (const DeferredOp &op : t.deferred) {
            switch (op.kind) {
              case OpKind::Mark:
                markNow(op.id, op.phase, Tick(op.value));
                break;
              case OpKind::Add:
                addNow(op.id, op.phase, op.value);
                break;
              case OpKind::Close:
                closeNow(op.id, Tick(op.value), op.residual);
                break;
            }
        }
        t.deferred.clear();
    }
}

std::map<std::pair<TileId, StreamId>, Profiler::PhaseHists>
Profiler::aggregates() const
{
    std::map<std::pair<TileId, StreamId>, PhaseHists> out;
    for (size_t t = 0; t < _tiles.size(); ++t) {
        for (const auto &kv : _tiles[t].agg)
            out.emplace(std::make_pair(TileId(t), kv.first), kv.second);
    }
    return out;
}

TopDownAccount &
Profiler::topDown(const std::string &name)
{
    return _topDown[name];
}

std::vector<std::string>
Profiler::finalizeTopDown(Tick end)
{
    for (auto &kv : _topDown)
        kv.second.finalize(end);
    return verifyTopDown();
}

std::vector<std::string>
Profiler::verifyTopDown() const
{
    std::vector<std::string> violations;
    for (const auto &kv : _topDown) {
        std::string v = kv.second.verify(kv.first);
        if (!v.empty())
            violations.push_back(std::move(v));
    }
    return violations;
}

void
Profiler::registerStats(stats::StatRegistry &reg) const
{
    for (size_t tile = 0; tile < _tiles.size(); ++tile) {
        for (const auto &kv : _tiles[tile].agg) {
            StreamId sid = kv.first;
            const PhaseHists &hists = kv.second;
            stats::StatGroup &g =
                reg.group("profile.tile" + std::to_string(tile));
            std::string stem = streamLabel(sid) + ".";
            for (size_t p = 0; p < numPhases; ++p) {
                const LatHist &h = hists[p];
                if (!h.count())
                    continue;
                std::string pn = stem + phaseName(Phase(p));
                g.regFormula(pn + ".count",
                             [&h]() { return double(h.count()); });
                g.regFormula(pn + ".mean", [&h]() { return h.mean(); });
                g.regFormula(pn + ".p50", [&h]() { return h.p50(); });
                g.regFormula(pn + ".p95", [&h]() { return h.p95(); });
                g.regFormula(pn + ".max",
                             [&h]() { return double(h.max()); });
            }
        }
    }
    stats::StatGroup &g = reg.group("profile.topdown");
    for (const auto &kv : _topDown) {
        const TopDownAccount &acct = kv.second;
        for (size_t b = 0; b < numBuckets; ++b) {
            g.regFormula(kv.first + "." + bucketName(Bucket(b)),
                         [&acct, b]() {
                             return double(acct.cycles(Bucket(b)));
                         });
        }
    }
}

void
Profiler::dumpJson(json::Writer &w) const
{
    w.beginArray("phases");
    for (size_t p = 0; p < numPhases; ++p)
        w.value(std::string(phaseName(Phase(p))));
    w.endArray();

    w.beginObject("latency");
    for (size_t tile = 0; tile < _tiles.size(); ++tile) {
        if (_tiles[tile].agg.empty())
            continue;
        w.beginObject("tile" + std::to_string(tile));
        for (const auto &kv : _tiles[tile].agg) {
            w.beginObject(streamLabel(kv.first));
            for (size_t p = 0; p < numPhases; ++p) {
                const LatHist &h = kv.second[p];
                if (!h.count())
                    continue;
                w.beginObject(phaseName(Phase(p)));
                w.kv("count", h.count());
                w.kv("sum", h.sum());
                w.kv("max", h.max());
                w.kv("mean", h.mean());
                w.kv("p50", h.p50());
                w.kv("p95", h.p95());
                // Trim trailing zero buckets: the boundary scheme is
                // fixed, so the prefix alone is unambiguous.
                int last = -1;
                for (int b = 0; b < LatHist::numBuckets; ++b) {
                    if (h.buckets()[b])
                        last = b;
                }
                w.beginArray("buckets");
                for (int b = 0; b <= last; ++b)
                    w.value(h.buckets()[b]);
                w.endArray();
                w.endObject();
            }
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();

    w.beginObject("topdown");
    for (const auto &kv : _topDown) {
        const TopDownAccount &acct = kv.second;
        w.beginObject(kv.first);
        for (size_t b = 0; b < numBuckets; ++b)
            w.kv(bucketName(Bucket(b)), acct.cycles(Bucket(b)));
        w.kv("total", acct.total());
        w.endObject();
    }
    w.endObject();

    w.kv("openRecords", static_cast<uint64_t>(openRecords()));
    w.kv("staleMarks", staleMarks());
}

void
Profiler::dumpSummaryJson(json::Writer &w) const
{
    w.beginObject();
    // Aggregate top-down split across every account.
    std::array<uint64_t, numBuckets> td{};
    for (const auto &kv : _topDown)
        for (size_t b = 0; b < numBuckets; ++b)
            td[b] += kv.second.cycles(Bucket(b));
    w.beginObject("topdown");
    for (size_t b = 0; b < numBuckets; ++b)
        w.kv(bucketName(Bucket(b)), td[b]);
    w.endObject();
    // Per-phase p95 over the merge of all (tile, stream) aggregates.
    PhaseHists merged{};
    for (const TileState &t : _tiles)
        for (const auto &kv : t.agg)
            for (size_t p = 0; p < numPhases; ++p)
                merged[p].merge(kv.second[p]);
    w.beginObject("p95");
    for (size_t p = 0; p < numPhases; ++p) {
        if (merged[p].count())
            w.kv(phaseName(Phase(p)), merged[p].p95());
    }
    w.endObject();
    w.endObject();
}

} // namespace prof
} // namespace sf
