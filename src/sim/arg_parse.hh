/**
 * @file
 * Driver-flag value validation shared by every binary that accepts
 * --threads/-j (quickstart, the bench suite, the sweep). A zero,
 * negative or non-numeric worker count used to reach the engine as a
 * silently clamped value; this helper turns it into an immediate
 * fatal() that names the flag, mirroring sim/output_path.hh.
 */

#ifndef SF_SIM_ARG_PARSE_HH
#define SF_SIM_ARG_PARSE_HH

#include <string>

#include "sim/types.hh"

namespace sf {

/**
 * Parse a worker-thread count from a flag value. Accepts a positive
 * decimal integer; fatal() naming @p flag on anything else (empty,
 * non-numeric, trailing garbage, zero, negative, or absurdly large).
 */
int parseThreadCount(const std::string &value, const char *flag);

/**
 * Parse a tick/cycle count from a flag value (--checkpoint-every).
 * Accepts a positive decimal integer up to the Tick range; fatal()
 * naming @p flag on anything else.
 */
Tick parseTickCount(const std::string &value, const char *flag);

} // namespace sf

#endif // SF_SIM_ARG_PARSE_HH
