/**
 * @file
 * Output-path validation (see output_path.hh).
 */

#include "sim/output_path.hh"

#include <filesystem>
#include <system_error>

#include "sim/logging.hh"

namespace sf {

namespace fs = std::filesystem;

void
ensureOutputDir(const std::string &dir, const char *flag)
{
    if (dir.empty())
        fatal("%s: empty output directory", flag);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        fatal("%s: cannot create output directory '%s': %s", flag,
              dir.c_str(), ec.message().c_str());
    }
    if (!fs::is_directory(dir, ec)) {
        fatal("%s: output path '%s' exists but is not a directory",
              flag, dir.c_str());
    }
    // Probe writability directly: permission bits alone miss
    // read-only mounts and are meaningless for privileged users.
    fs::path probe = fs::path(dir) / ".sf_write_probe";
    std::ofstream f(probe);
    bool ok = f.good();
    f.close();
    fs::remove(probe, ec);
    if (!ok) {
        fatal("%s: output directory '%s' is not writable", flag,
              dir.c_str());
    }
}

std::ofstream
openOutputFile(const std::string &path, const char *flag)
{
    if (path.empty())
        fatal("%s: empty output path", flag);
    fs::path p(path);
    fs::path parent = p.parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        if (!fs::exists(parent, ec)) {
            fatal("%s: output directory '%s' does not exist "
                  "(create it first or pass an existing directory)",
                  flag, parent.string().c_str());
        }
        if (!fs::is_directory(parent, ec)) {
            fatal("%s: output path parent '%s' is not a directory",
                  flag, parent.string().c_str());
        }
    }
    std::ofstream out(path);
    if (!out.good()) {
        fatal("%s: cannot open '%s' for writing", flag, path.c_str());
    }
    return out;
}

} // namespace sf
