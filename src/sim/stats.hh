/**
 * @file
 * Lightweight statistics package.
 *
 * Components own Scalar / Formula-style statistics registered with a
 * StatGroup; a SimResults-style consumer can walk the registry or read
 * individual counters directly. This is a deliberately small subset of
 * gem5's stats package: scalars, averages, and histograms.
 */

#ifndef SF_SIM_STATS_HH
#define SF_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sf {
namespace stats {

/** A monotonically increasing 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(uint64_t v) { _value += v; return *this; }
    void reset() { _value = 0; }

    uint64_t value() const { return _value; }
    operator uint64_t() const { return _value; }

  private:
    uint64_t _value = 0;
};

/** Running average of submitted samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    void reset() { _sum = 0; _count = 0; }

    double mean() const { return _count ? _sum / _count : 0.0; }
    uint64_t count() const { return _count; }
    double sum() const { return _sum; }

  private:
    double _sum = 0;
    uint64_t _count = 0;
};

/** Fixed-bucket histogram over [0, max) plus an overflow bucket. */
class Histogram
{
  public:
    Histogram(uint64_t bucket_width = 1, size_t num_buckets = 16)
        : _width(bucket_width ? bucket_width : 1),
          _buckets(num_buckets + 1, 0)
    {}

    void
    sample(uint64_t v)
    {
        size_t idx = v / _width;
        if (idx >= _buckets.size() - 1)
            idx = _buckets.size() - 1;
        ++_buckets[idx];
        ++_count;
        _sum += v;
    }

    /** Fold another histogram of identical geometry into this one. */
    void
    merge(const Histogram &o)
    {
        if (_buckets.size() != o._buckets.size() || _width != o._width)
            return; // incompatible geometry: drop rather than corrupt
        for (size_t i = 0; i < _buckets.size(); ++i)
            _buckets[i] += o._buckets[i];
        _count += o._count;
        _sum += o._sum;
    }

    uint64_t count() const { return _count; }
    double mean() const { return _count ? double(_sum) / _count : 0.0; }
    const std::vector<uint64_t> &buckets() const { return _buckets; }
    uint64_t bucketWidth() const { return _width; }

  private:
    uint64_t _width;
    std::vector<uint64_t> _buckets;
    uint64_t _count = 0;
    uint64_t _sum = 0;
};

/**
 * A named collection of statistics. Components register their counters
 * so a report can be emitted without each experiment hand-walking
 * component internals.
 */
class StatGroup
{
  public:
    /** A derived statistic evaluated lazily at dump time. */
    using Formula = std::function<double()>;

    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    void
    regScalar(const std::string &stat_name, const Scalar *stat)
    {
        _scalars.emplace(stat_name, stat);
    }

    void
    regAverage(const std::string &stat_name, const Average *stat)
    {
        _averages.emplace(stat_name, stat);
    }

    void
    regHistogram(const std::string &stat_name, const Histogram *stat)
    {
        _histograms.emplace(stat_name, stat);
    }

    void
    regFormula(const std::string &stat_name, Formula f)
    {
        _formulas.emplace(stat_name, std::move(f));
    }

    const std::string &name() const { return _name; }

    /** Look up a scalar by name; nullptr when missing. */
    const Scalar *
    findScalar(const std::string &stat_name) const
    {
        auto it = _scalars.find(stat_name);
        return it == _scalars.end() ? nullptr : it->second;
    }

    /** Look up an average by name; nullptr when missing. */
    const Average *
    findAverage(const std::string &stat_name) const
    {
        auto it = _averages.find(stat_name);
        return it == _averages.end() ? nullptr : it->second;
    }

    /** Look up a histogram by name; nullptr when missing. */
    const Histogram *
    findHistogram(const std::string &stat_name) const
    {
        auto it = _histograms.find(stat_name);
        return it == _histograms.end() ? nullptr : it->second;
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[n, s] : _scalars)
            os << _name << "." << n << " " << s->value() << "\n";
        for (const auto &[n, a] : _averages)
            os << _name << "." << n << " " << a->mean()
               << " (n=" << a->count() << ")\n";
        for (const auto &[n, h] : _histograms) {
            os << _name << "." << n << ".count " << h->count() << "\n";
            os << _name << "." << n << ".mean " << h->mean() << "\n";
            os << _name << "." << n << ".buckets";
            for (uint64_t b : h->buckets())
                os << " " << b;
            os << "\n";
        }
        for (const auto &[n, f] : _formulas)
            os << _name << "." << n << " " << f() << "\n";
    }

    // --- iteration for registry walkers (JSON export etc.) ---
    const std::map<std::string, const Scalar *> &
    scalars() const { return _scalars; }
    const std::map<std::string, const Average *> &
    averages() const { return _averages; }
    const std::map<std::string, const Histogram *> &
    histograms() const { return _histograms; }
    const std::map<std::string, Formula> &
    formulas() const { return _formulas; }

  private:
    std::string _name;
    std::map<std::string, const Scalar *> _scalars;
    std::map<std::string, const Average *> _averages;
    std::map<std::string, const Histogram *> _histograms;
    std::map<std::string, Formula> _formulas;
};

} // namespace stats
} // namespace sf

#endif // SF_SIM_STATS_HH
