#include "sim/fault.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace sf {

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::FloatRequest: return "float";
      case FaultClass::CreditGrant: return "credit";
      case FaultClass::StreamEnd: return "end";
      case FaultClass::StreamAck: return "ack";
    }
    return "?";
}

namespace {

double
parseProb(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        fatal("faults: '%s' needs a probability in [0,1], got '%s'",
              token.c_str(), value.c_str());
    }
    return p;
}

uint64_t
parseCount(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        fatal("faults: '%s' needs an integer, got '%s'", token.c_str(),
              value.c_str());
    }
    return n;
}

} // namespace

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig cfg;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;

        std::string key = token;
        std::string value;
        size_t colon = token.find(':');
        if (colon != std::string::npos) {
            key = token.substr(0, colon);
            value = token.substr(colon + 1);
        }

        auto dropKey = [&](FaultClass cls) {
            cfg.drop[static_cast<int>(cls)] = parseProb(key, value);
        };
        auto dupKey = [&](FaultClass cls) {
            cfg.dup[static_cast<int>(cls)] = parseProb(key, value);
        };

        if (key == "none") {
            // explicit no-op
        } else if (key == "seed") {
            cfg.seed = parseCount(key, value);
        } else if (key == "dropfloat") {
            dropKey(FaultClass::FloatRequest);
        } else if (key == "dropcredit") {
            dropKey(FaultClass::CreditGrant);
        } else if (key == "dropend") {
            dropKey(FaultClass::StreamEnd);
        } else if (key == "dropack") {
            dropKey(FaultClass::StreamAck);
        } else if (key == "dupfloat") {
            dupKey(FaultClass::FloatRequest);
        } else if (key == "dupcredit") {
            dupKey(FaultClass::CreditGrant);
        } else if (key == "dupend") {
            dupKey(FaultClass::StreamEnd);
        } else if (key == "dupack") {
            dupKey(FaultClass::StreamAck);
        } else if (key == "delay") {
            cfg.delayProb = parseProb(key, value);
        } else if (key == "delaycycles") {
            cfg.delayCycles = parseCount(key, value);
        } else if (key == "overflow") {
            cfg.overflowEntries =
                value.empty() ? 1 : static_cast<int>(parseCount(key, value));
            if (cfg.overflowEntries < 1)
                fatal("faults: overflow needs at least 1 entry");
        } else if (key == "noretry") {
            cfg.noRetry = true;
        } else {
            fatal("faults: unknown token '%s' (see --help)", key.c_str());
        }
    }
    return cfg;
}

std::string
FaultConfig::describe() const
{
    if (!enabled())
        return "none";
    std::string s = detail::formatMessage("seed:%llu",
                                          (unsigned long long)seed);
    for (int i = 0; i < numFaultClasses; ++i) {
        const char *cls = faultClassName(static_cast<FaultClass>(i));
        if (drop[i] > 0)
            s += detail::formatMessage(",drop%s:%g", cls, drop[i]);
        if (dup[i] > 0)
            s += detail::formatMessage(",dup%s:%g", cls, dup[i]);
    }
    if (delayProb > 0) {
        s += detail::formatMessage(",delay:%g,delaycycles:%llu", delayProb,
                                   (unsigned long long)delayCycles);
    }
    if (overflowEntries > 0)
        s += detail::formatMessage(",overflow:%d", overflowEntries);
    if (noRetry)
        s += ",noretry";
    return s;
}

void
FaultInjector::debugDump(std::FILE *out) const
{
    std::fprintf(out, "fault injector: spec=%s\n", _cfg.describe().c_str());
    for (int i = 0; i < numFaultClasses; ++i) {
        std::fprintf(out, "  %-6s dropped=%llu duplicated=%llu\n",
                     faultClassName(static_cast<FaultClass>(i)),
                     (unsigned long long)_dropped[i].value(),
                     (unsigned long long)_duplicated[i].value());
    }
    std::fprintf(out, "  delayed=%llu total=%llu\n",
                 (unsigned long long)_delayed.value(),
                 (unsigned long long)totalInjected());
}

} // namespace sf
