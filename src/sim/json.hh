/**
 * @file
 * Minimal streaming JSON writer for stat / trace export.
 *
 * Emits syntactically valid JSON with automatic comma handling and
 * string escaping; containers are closed in LIFO order. No external
 * dependency, no intermediate DOM: values are written straight to the
 * output stream, which keeps large stat dumps cheap.
 */

#ifndef SF_SIM_JSON_HH
#define SF_SIM_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace sf {
namespace json {

/** Escape a string for embedding in a JSON document (no quotes). */
inline std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Streaming writer with automatic comma / indentation management. */
class Writer
{
  public:
    explicit Writer(std::ostream &os, bool pretty = true)
        : _os(os), _pretty(pretty)
    {}

    // --- containers ---
    void beginObject() { open('{'); }
    void beginObject(const std::string &key) { openKeyed(key, '{'); }
    void endObject() { close('}'); }
    void beginArray() { open('['); }
    void beginArray(const std::string &key) { openKeyed(key, '['); }
    void endArray() { close(']'); }

    // --- key/value pairs inside objects ---
    void
    kv(const std::string &key, const std::string &v)
    {
        item(key);
        _os << '"' << escape(v) << '"';
    }

    void
    kv(const std::string &key, const char *v)
    {
        kv(key, std::string(v));
    }

    void
    kv(const std::string &key, uint64_t v)
    {
        item(key);
        _os << v;
    }

    void
    kv(const std::string &key, int v)
    {
        item(key);
        _os << v;
    }

    void
    kv(const std::string &key, double v)
    {
        item(key);
        writeDouble(v);
    }

    void
    kv(const std::string &key, bool v)
    {
        item(key);
        _os << (v ? "true" : "false");
    }

    // --- bare values inside arrays ---
    void
    value(double v)
    {
        item();
        writeDouble(v);
    }

    void
    value(uint64_t v)
    {
        item();
        _os << v;
    }

    void
    value(const std::string &v)
    {
        item();
        _os << '"' << escape(v) << '"';
    }

    /** Open containers remaining (0 when the document is complete). */
    size_t depth() const { return _needComma.size(); }

  private:
    void
    open(char c)
    {
        item();
        _os << c;
        _needComma.push_back(false);
    }

    void
    openKeyed(const std::string &key, char c)
    {
        item(key);
        _os << c;
        _needComma.push_back(false);
    }

    void
    close(char c)
    {
        _needComma.pop_back();
        newlineIndent();
        _os << c;
    }

    /** Comma/indent bookkeeping before a bare array element. */
    void
    item()
    {
        if (_needComma.empty())
            return;
        if (_needComma.back())
            _os << ',';
        _needComma.back() = true;
        newlineIndent();
    }

    /** Comma/indent bookkeeping plus the key of an object member. */
    void
    item(const std::string &key)
    {
        item();
        _os << '"' << escape(key) << "\":";
        if (_pretty)
            _os << ' ';
    }

    void
    newlineIndent()
    {
        if (!_pretty)
            return;
        _os << '\n';
        for (size_t i = 0; i < _needComma.size(); ++i)
            _os << "  ";
    }

    void
    writeDouble(double v)
    {
        // JSON has no NaN / Inf; clamp to null.
        if (std::isnan(v) || std::isinf(v)) {
            _os << "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        _os << buf;
    }

    std::ostream &_os;
    bool _pretty;
    /** One entry per open container: "next item needs a comma". */
    std::vector<bool> _needComma;
};

} // namespace json
} // namespace sf

#endif // SF_SIM_JSON_HH
