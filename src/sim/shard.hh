/**
 * @file
 * Tile-parallel conservative-lookahead PDES on top of the calendar-
 * wheel kernel (DESIGN.md §4i).
 *
 * The mesh's minimum cross-tile latency (router + link + 1 head flit)
 * defines a safe synchronization quantum: an event executing at tick
 * t on one tile can only create events on *other* tiles at t +
 * lookahead or later. Tiles are therefore partitioned into shards,
 * each with its own EventQueue, and all shards run independently
 * inside a window [start, E) with
 *
 *     E = min(earliest shard event + lookahead, earliest global
 *             service event + 1)
 *
 * computed from the union of all queues — a partition-independent
 * quantity, so window boundaries are identical for any shard count,
 * including 1. At the window barrier the main thread merges cross-
 * shard NoC messages (each carrying a canonical (src-tile, seq) key,
 * see EventQueue::scheduleKeyed), applies deferred global-service
 * operations in (when, src-tile) order, runs the global service
 * queue (watchdog / checker / sampler / barrier controller), and
 * releases the next window.
 *
 * Determinism argument (short form; full version in DESIGN.md §4i):
 * per-tile event sequences are shard-count-invariant by induction —
 * a tile's next event depends only on its own state and on messages
 * whose arrival keys are canonical — and every mutable structure is
 * either tile-owned, folded over tiles in fixed order at read time,
 * or deferred to the barrier and applied in a canonical order.
 * `--threads=N` is therefore byte-identical to `--threads=1`, which
 * the smoke_threads ctest enforces end to end.
 */

#ifndef SF_SIM_SHARD_HH
#define SF_SIM_SHARD_HH

#include <barrier>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/annotations.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sf {
namespace sim {

/**
 * Shard partition, per-shard event queues, and the quantum-barrier
 * window loop. One instance per TiledSystem; components are wired to
 * queueOf(tile) at construction and the window loop replaces the
 * serial step loop in TiledSystem::run().
 *
 * With shards == 1 the same engine runs single-threaded (no worker
 * threads, no synchronization), so the serial and threaded paths are
 * literally the same code — identity by construction, not by luck.
 */
class TileDomains
{
  public:
    using Handler = EventQueue::Handler;

    /**
     * @param global  queue for tile-agnostic services (watchdog,
     *                checker, sampler, barrier controller, drivers)
     * @param numTiles  tiles in the system; tile t lives on shard
     *                t % shards
     * @param shards  worker count (>= 1)
     * @param lookahead  minimum cross-tile event-creation distance in
     *                cycles (router + link + 1); must be >= 1
     */
    TileDomains(EventQueue &global, int numTiles, int shards,
                Cycles lookahead);
    ~TileDomains();

    TileDomains(const TileDomains &) = delete;
    TileDomains &operator=(const TileDomains &) = delete;

    int shards() const { return int(_shardQ.size()); }
    int numTiles() const { return _numTiles; }
    Cycles lookahead() const { return _lookahead; }

    int shardOf(TileId t) const { return int(t) % shards(); }
    EventQueue &queueOf(TileId t) { return *_shardQ[shardOf(t)]; }
    EventQueue &shardQueue(int s) { return *_shardQ[s]; }
    EventQueue &globalQueue() { return _global; }

    /**
     * Canonical same-tick ordering key for an event scheduled by
     * @p tile: (tile, per-tile counter). Call only from @p tile's own
     * execution context (its shard thread).
     */
    uint64_t
    nextKey(TileId tile) SF_SHARD_LOCAL
    {
        return (uint64_t(tile) + 1) << 40 | _keyCnt[tile]++;
    }

    /**
     * Schedule onto @p target tile's queue from any execution
     * context. Same-shard (or outside a parallel window) the event is
     * inserted directly; cross-shard it is appended to the calling
     * shard's outbox and merged at the window barrier. Either way the
     * canonical @p key makes the resulting execution order identical.
     */
    void scheduleTile(TileId target, Tick when, uint64_t key,
                      Handler fn,
                      EventPriority prio = EventPriority::Delivery);

    /**
     * Defer a global-service operation (e.g. a BarrierController
     * arrive/retire) to the window barrier, where all deferred ops are
     * applied in ascending (when, srcTile) order — a canonical order
     * no shard interleaving can perturb. @p when must be the acting
     * tile's current tick.
     */
    void postGlobal(Tick when, TileId srcTile, std::function<void()> op);

    /**
     * Defer a callback into @p tile's queue at the current window
     * boundary (global services only; used by the barrier controller
     * to wake waiters at the release tick).
     */
    void deferWake(TileId tile, Handler fn);

    /**
     * Hook run on the main thread at every window barrier, before the
     * global queue's slice (the profiler's cross-tile op flush).
     */
    void setBarrierHook(std::function<void()> fn) { _barrierHook = std::move(fn); }

    /**
     * Hook run on the main thread at the top of every quantum window,
     * before the stop() check, with the current global-clock tick
     * (the previous window's boundary; 0 on the first iteration).
     * Checkpoint/restore (DESIGN.md §4j) anchors snapshots here: the
     * hook runs at a deterministic point in the tick sequence and
     * must not schedule events, so hooked runs stay byte-identical
     * to plain ones.
     */
    void setBoundaryHook(std::function<void(Tick)> fn) { _boundaryHook = std::move(fn); }

    /** True while shards are executing a window concurrently. */
    bool inParallelWindow() const { return _inWindow; }

    /** Earliest live event over all shard queues (maxTick if none). */
    Tick earliestShardTick();

    /** Why runWindows() returned. */
    enum class Exit
    {
        Stopped, //!< stop() returned true at a window boundary
        Empty,   //!< every queue (shards + global) drained
        Limit,   //!< the next event anywhere lies beyond the limit
    };

    /**
     * Run quantum windows until @p stop returns true (checked at
     * window boundaries), every queue drains, or the earliest pending
     * event exceeds @p limit. On return all queues have executed
     * everything up to the final window boundary and the global queue
     * clock is advanced to that boundary (deterministically).
     */
    Exit runWindows(const std::function<bool()> &stop, Tick limit);

    /** Events executed across all shard queues. */
    uint64_t
    shardEventsExecuted() const
    {
        uint64_t n = 0;
        for (const auto &q : _shardQ)
            n += q->numExecuted();
        return n;
    }

    /** Live pending events across all shard queues. */
    uint64_t
    shardEventsPending() const
    {
        uint64_t n = 0;
        for (const auto &q : _shardQ)
            n += q->numPending();
        return n;
    }

  private:
    struct OutboxEntry
    {
        TileId target;
        Tick when;
        uint64_t key;
        EventPriority prio;
        Handler fn;
    };

    struct GlobalOp
    {
        Tick when;
        TileId srcTile;
        std::function<void()> op;
    };

    /** Run one shard's queue up to the window end, capturing errors. */
    void runShardSlice(int shard) SF_SHARD_LOCAL;
    void workerLoop(int shard) SF_SHARD_LOCAL;
    void startWorkers();
    void stopWorkers();
    /** Merge outboxes / global ops / wakes; run the global slice. */
    void windowBarrier(Tick windowEnd) SF_BARRIER_ONLY;
    void rethrowWorkerError();

    EventQueue &_global;
    int _numTiles;
    Cycles _lookahead;
    std::vector<std::unique_ptr<EventQueue>> _shardQ;
    /** Per-tile canonical key counters (owned by the tile's shard). */
    std::vector<uint64_t> _keyCnt SF_SHARD_LOCAL;

    /** Per-shard cross-shard outboxes (owner-append, barrier-drain). */
    std::vector<std::vector<OutboxEntry>> _outbox;
    /** Per-shard deferred global-service ops. */
    std::vector<std::vector<GlobalOp>> _postGlobal;
    /** Barrier-phase wakes to insert at the window boundary. */
    std::vector<std::pair<TileId, Handler>> _wakes;
    std::function<void()> _barrierHook;
    std::function<void(Tick)> _boundaryHook;

    // --- worker pool (only with shards > 1) ---
    std::vector<std::thread> _workers;
    std::unique_ptr<std::barrier<>> _startBarrier;
    std::unique_ptr<std::barrier<>> _endBarrier;
    std::vector<std::exception_ptr> _errors;
    Tick _windowEnd = 0;
    bool _inWindow = false;
    bool _shutdown = false;
    bool _workersStarted = false;
};

} // namespace sim
} // namespace sf

#endif // SF_SIM_SHARD_HH
