/**
 * @file
 * Stream-lifecycle tracing: config → float → migrate → credit-stall →
 * sink → end transitions per stream, with ticks and tile coordinates.
 *
 * The tracer is a process-wide singleton so every component (SE_core,
 * SE_L2, SE_L3) can record without plumbing; recording is a no-op
 * unless enabled via the SF_STREAM_TRACE environment variable or the
 * API. Events export as Chrome trace-event JSON (load in
 * chrome://tracing or https://ui.perfetto.dev): one track per stream
 * (pid = owning core, tid = stream id), with each lifecycle state
 * rendered as a duration slice up to the next transition.
 */

#ifndef SF_SIM_STREAM_TRACE_HH
#define SF_SIM_STREAM_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sf {
namespace trace {

/** Lifecycle states/transitions of a (possibly floated) stream. */
enum class StreamPhase : uint8_t
{
    Config,      //!< stream_cfg committed at the core
    Float,       //!< SE_core floated the stream into the hierarchy
    Arrive,      //!< config/migration landed at an SE_L3 bank
    Migrate,     //!< SE_L3 handed the stream to the next bank
    CreditStall, //!< SE_L3 issue blocked on the credit horizon
    Resume,      //!< issue resumed after a credit refresh
    Sink,        //!< SE_core pulled the stream back to the core
    End,         //!< stream_end committed / remote completion
};

const char *phaseName(StreamPhase p);

struct StreamEvent
{
    Tick tick = 0;
    GlobalStreamId gsid;
    StreamPhase phase = StreamPhase::Config;
    /** Tile where the transition happened (bank for SE_L3 events). */
    TileId tile = invalidTile;
    std::string detail;
};

class StreamLifecycleTracer
{
  public:
    static StreamLifecycleTracer &instance();

    void setEnabled(bool e) { _enabled = e; }
    bool enabled() const { return _enabled; }

    void clear() { _events.clear(); }

    void
    record(Tick tick, GlobalStreamId gsid, StreamPhase phase,
           TileId tile, std::string detail = std::string())
    {
        _events.push_back(
            {tick, gsid, phase, tile, std::move(detail)});
    }

    const std::vector<StreamEvent> &events() const { return _events; }

    /**
     * Write the event log as Chrome trace-event JSON. Ticks map to
     * trace microseconds at the 2 GHz clock of Table III.
     */
    void exportChromeTrace(std::ostream &os) const;

  private:
    StreamLifecycleTracer();

    bool _enabled = false;
    std::vector<StreamEvent> _events;
};

/** Single-branch recording helper for instrumentation sites. */
inline void
recordStream(Tick tick, GlobalStreamId gsid, StreamPhase phase,
             TileId tile, std::string detail = std::string())
{
    auto &t = StreamLifecycleTracer::instance();
    if (__builtin_expect(t.enabled(), 0))
        t.record(tick, gsid, phase, tile, std::move(detail));
}

} // namespace trace
} // namespace sf

#endif // SF_SIM_STREAM_TRACE_HH
