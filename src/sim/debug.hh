/**
 * @file
 * Runtime debug-flag tracing, in the spirit of gem5's DPRINTF.
 *
 * A fixed registry of named flags gates per-component trace output.
 * Flags are enabled at runtime through the SF_DEBUG_FLAGS environment
 * variable (comma-separated names, "All" for everything) or through the
 * sf::debug API. The SF_DPRINTF macro stamps every line with the
 * current tick and the emitting SimObject's name, and compiles down to
 * a single well-predicted branch when its flag is disabled.
 */

#ifndef SF_SIM_DEBUG_HH
#define SF_SIM_DEBUG_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sf {
namespace debug {

/** The debug-flag universe. One bit of the global mask per flag. */
enum class Flag : uint32_t
{
    Cache,       //!< private L1/L2 hierarchy and shared L3 banks
    NoC,         //!< mesh packet injection and routing
    StreamFloat, //!< SE_core / SE_L2 float, sink and credit decisions
    SEL3,        //!< L3-bank stream engines (issue, migrate, confluence)
    DRAM,        //!< memory controllers
    Core,        //!< core pipeline milestones (start, done, barriers)
    Prefetch,    //!< hardware prefetchers
    Sampler,     //!< interval sampler activity
    NumFlags,
};

constexpr size_t numFlags = static_cast<size_t>(Flag::NumFlags);

/** Bitmask of enabled flags; read via enabled() on every SF_DPRINTF. */
extern uint64_t flagMask;

/** Single-branch fast path: is this flag enabled? */
inline bool
enabled(Flag f)
{
    return flagMask & (uint64_t(1) << static_cast<uint32_t>(f));
}

/** Canonical name of a flag. */
const char *flagName(Flag f);

/** All registered flag names (help text, tests). */
std::vector<std::string> allFlagNames();

/** Resolve a flag by name; false when unknown. */
bool parseFlag(const std::string &name, Flag &out);

/** Enable / disable one flag by name; false when unknown. */
bool enable(const std::string &name);
bool disable(const std::string &name);

void enable(Flag f);
void disable(Flag f);
void enableAll();
void disableAll();

/**
 * Apply a comma-separated spec ("Cache,StreamFloat", "All",
 * "All,-NoC"). Unknown names are reported on stderr and skipped.
 * @return the number of names applied.
 */
size_t setFlagsFromString(const std::string &spec);

/** Read SF_DEBUG_FLAGS from the environment (applied at startup). */
void initFromEnv();

/** Redirect trace output (default stderr); nullptr resets to stderr. */
void setOutput(std::FILE *f);
std::FILE *output();

/** Emit one tick-stamped, flag-tagged trace line. */
void print(Flag f, Tick tick, const char *who, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace debug
} // namespace sf

/**
 * Trace from inside a SimObject member (uses curTick() / name()).
 * Disabled flags cost one expected-false branch.
 */
#define SF_DPRINTF(flag, ...)                                              \
    do {                                                                   \
        if (__builtin_expect(                                              \
                ::sf::debug::enabled(::sf::debug::Flag::flag), 0)) {       \
            ::sf::debug::print(::sf::debug::Flag::flag, curTick(),         \
                               name().c_str(), __VA_ARGS__);               \
        }                                                                  \
    } while (0)

/** Trace with an explicit tick and component name. */
#define SF_DPRINTF_AT(flag, tick, who, ...)                                \
    do {                                                                   \
        if (__builtin_expect(                                              \
                ::sf::debug::enabled(::sf::debug::Flag::flag), 0)) {       \
            ::sf::debug::print(::sf::debug::Flag::flag, (tick), (who),     \
                               __VA_ARGS__);                               \
        }                                                                  \
    } while (0)

#endif // SF_SIM_DEBUG_HH
