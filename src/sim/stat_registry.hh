/**
 * @file
 * Global statistics registry: a named collection of StatGroups that can
 * be walked as a whole, the equivalent of gem5's flat stats file.
 *
 * Components keep owning their counters; a registry is (re)built by
 * whoever assembles the system (TiledSystem) and rendered either as the
 * classic text dump or as schema-versioned JSON for machine-readable
 * figure pipelines.
 */

#ifndef SF_SIM_STAT_REGISTRY_HH
#define SF_SIM_STAT_REGISTRY_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace sf {
namespace stats {

/** Schema identifier stamped into every JSON stat dump. */
constexpr const char *jsonSchemaName = "sf-stats";
constexpr int jsonSchemaVersion = 1;

class StatRegistry
{
  public:
    /** Create (or fetch) the group with this name; address is stable. */
    StatGroup &
    group(const std::string &name)
    {
        for (auto &g : _groups) {
            if (g->name() == name)
                return *g;
        }
        _groups.push_back(std::make_unique<StatGroup>(name));
        return *_groups.back();
    }

    const StatGroup *
    find(const std::string &name) const
    {
        for (auto &g : _groups) {
            if (g->name() == name)
                return g.get();
        }
        return nullptr;
    }

    size_t size() const { return _groups.size(); }

    /** Visit every group in registration order (snapshot capture). */
    void
    forEachGroup(const std::function<void(const StatGroup &)> &fn) const
    {
        for (const auto &g : _groups)
            fn(*g);
    }

    /** Classic flat text dump of every registered group. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &g : _groups)
            g->dump(os);
    }

    /**
     * Emit every group as one JSON object keyed by group name. The
     * writer must be positioned inside an open object; this adds one
     * "groups" member.
     */
    void
    dumpJson(json::Writer &w) const
    {
        w.beginObject("groups");
        for (const auto &g : _groups) {
            w.beginObject(g->name());
            for (const auto &[n, s] : g->scalars())
                w.kv(n, s->value());
            for (const auto &[n, a] : g->averages()) {
                w.beginObject(n);
                w.kv("mean", a->mean());
                w.kv("count", a->count());
                w.endObject();
            }
            for (const auto &[n, h] : g->histograms()) {
                w.beginObject(n);
                w.kv("count", h->count());
                w.kv("mean", h->mean());
                w.kv("bucketWidth", h->bucketWidth());
                w.beginArray("buckets");
                for (uint64_t b : h->buckets())
                    w.value(b);
                w.endArray();
                w.endObject();
            }
            for (const auto &[n, f] : g->formulas())
                w.kv(n, f());
            w.endObject();
        }
        w.endObject();
    }

  private:
    std::vector<std::unique_ptr<StatGroup>> _groups;
};

} // namespace stats
} // namespace sf

#endif // SF_SIM_STAT_REGISTRY_HH
