/**
 * @file
 * Forward-progress watchdog for the event-driven kernel.
 *
 * The owner registers named monotonic progress probes (committed ops,
 * stream elements served, NoC flits moved) and the watchdog samples
 * them every `interval` cycles. If one full interval passes in which
 * no probe advanced, the simulation is wedged — a protocol message was
 * lost, a credit deadlock formed, or an engine is waiting on an event
 * that will never fire — so the watchdog emits the global diagnostic
 * snapshot (logging.hh hooks) and fatal()s with ExitCode::
 * WatchdogTimeout. Complementary end-of-sim drain checks live in the
 * invariant checker (checker.hh).
 *
 * The watchdog's own event keeps the queue non-empty, so owners must
 * stop() it once the run completes (TiledSystem does) to let the
 * post-run drain see an empty queue.
 */

#ifndef SF_SIM_WATCHDOG_HH
#define SF_SIM_WATCHDOG_HH

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {

class Watchdog
{
  public:
    /** Reads one monotonic progress counter. */
    using Probe = std::function<uint64_t()>;

    Watchdog(EventQueue &eq, Cycles interval)
        : _eq(eq), _interval(interval ? interval : 1), _tick(eq)
    {}

    ~Watchdog() { stop(); }

    void
    addProbe(const std::string &name, Probe fn)
    {
        _probes.push_back({name, std::move(fn), 0});
    }

    /** Take the initial snapshot and schedule the first check. */
    void
    start()
    {
        if (_running)
            return;
        _running = true;
        _lastProgress = _eq.curTick();
        for (auto &p : _probes)
            p.last = p.fn();
        // Low priority (Stat) so a check at tick T observes everything
        // that happened at T first.
        _tick.start(_interval, [this] { check(); }, EventPriority::Stat);
    }

    /** Cancel the pending check; safe to call repeatedly. */
    void
    stop()
    {
        _running = false;
        _tick.stop();
    }

    bool running() const { return _running; }
    Tick lastProgressTick() const { return _lastProgress; }
    Cycles interval() const { return _interval; }

    void
    debugDump(std::FILE *out) const
    {
        std::fprintf(out,
                     "watchdog: interval=%llu last_progress_tick=%llu "
                     "now=%llu\n",
                     (unsigned long long)_interval,
                     (unsigned long long)_lastProgress,
                     (unsigned long long)_eq.curTick());
        for (const auto &p : _probes) {
            std::fprintf(out, "  probe %-24s last=%llu now=%llu\n",
                         p.name.c_str(), (unsigned long long)p.last,
                         (unsigned long long)p.fn());
        }
    }

  private:
    struct ProbeEntry
    {
        std::string name;
        Probe fn;
        uint64_t last;
    };

    void
    check()
    {
        if (!_running)
            return;
        bool progressed = false;
        for (auto &p : _probes) {
            uint64_t v = p.fn();
            if (v != p.last) {
                p.last = v;
                progressed = true;
            }
        }
        if (progressed) {
            // The recurring event re-queues itself for the next check.
            _lastProgress = _eq.curTick();
            return;
        }
        fatalCode(ExitCode::WatchdogTimeout,
                  "watchdog: no forward progress for %llu cycles "
                  "(last progress at tick %llu, now %llu); the "
                  "simulation is wedged",
                  (unsigned long long)_interval,
                  (unsigned long long)_lastProgress,
                  (unsigned long long)_eq.curTick());
    }

    EventQueue &_eq;
    Cycles _interval;
    std::vector<ProbeEntry> _probes;
    bool _running = false;
    Tick _lastProgress = 0;
    /** Fixed-period check; requeues its own node, no closure rebuild. */
    RecurringEvent _tick;
};

} // namespace sf

#endif // SF_SIM_WATCHDOG_HH
