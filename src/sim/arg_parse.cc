/**
 * @file
 * Driver-flag value validation (see arg_parse.hh).
 */

#include "sim/arg_parse.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "sim/logging.hh"

namespace sf {

int
parseThreadCount(const std::string &value, const char *flag)
{
    if (value.empty())
        fatal("%s: empty worker count (expected a positive integer)",
              flag);
    errno = 0;
    char *end = nullptr;
    long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        fatal("%s: '%s' is not a number (expected a positive integer)",
              flag, value.c_str());
    }
    if (errno == ERANGE || n > 4096) {
        fatal("%s: %s worker threads is out of range (max 4096)", flag,
              value.c_str());
    }
    if (n <= 0) {
        fatal("%s: worker count must be at least 1, got %s", flag,
              value.c_str());
    }
    return static_cast<int>(n);
}

Tick
parseTickCount(const std::string &value, const char *flag)
{
    if (value.empty())
        fatal("%s: empty tick count (expected a positive integer)",
              flag);
    if (value[0] == '-') {
        fatal("%s: tick count must be at least 1, got %s", flag,
              value.c_str());
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        fatal("%s: '%s' is not a number (expected a positive integer)",
              flag, value.c_str());
    }
    if (errno == ERANGE) {
        fatal("%s: %s ticks is out of range", flag, value.c_str());
    }
    if (n == 0) {
        fatal("%s: tick count must be at least 1, got %s", flag,
              value.c_str());
    }
    return static_cast<Tick>(n);
}

} // namespace sf
