/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()     - the simulator itself is broken; aborts.
 * fatal()     - the user configuration is invalid; exits cleanly.
 * warn()      - something works well enough but deserves attention.
 * warn_once() - warn(), suppressed after the first hit per call site.
 * inform()    - status message.
 */

#ifndef SF_SIM_LOGGING_HH
#define SF_SIM_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

namespace sf {

/**
 * Process exit codes carried by FatalError so drivers (quickstart,
 * benches) can translate distinct failure classes into distinct shell
 * exit statuses. Values below 64 are left to conventional use.
 */
enum class ExitCode : int
{
    Success = 0,
    /** Generic fatal(): bad configuration or invalid arguments. */
    ConfigError = 1,
    /** Forward-progress watchdog fired: no component made progress. */
    WatchdogTimeout = 64,
    /** Invariant checker found a protocol violation. */
    InvariantViolation = 65,
    /** End-of-sim drain left residual state (MSHRs, packets, streams). */
    DrainFailure = 66,
    /** --verify: simulated memory diverged from the reference image. */
    VerifyDivergence = 67,
    /** sf-snap-v1 snapshot corrupt/truncated/mismatched (DESIGN.md §4j). */
    SnapshotError = 68,
};

/** Thrown by fatal() so tests can assert on bad-config handling. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what,
                        ExitCode code = ExitCode::ConfigError)
        : std::runtime_error(what), _code(code)
    {}

    ExitCode code() const { return _code; }
    int exitStatus() const { return static_cast<int>(_code); }

  private:
    ExitCode _code;
};

/** Thrown by panic() so tests can assert on invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Diagnostic-snapshot hooks: components (TiledSystem, watchdog,
 * checker, test fabrics) register callbacks that dump their state —
 * stat registries, stream tables, MSHR maps, event-queue heads — and
 * every fatal()/panic() replays them to stderr before throwing, so a
 * watchdog or invariant trip always leaves a usable post-mortem.
 */
using DiagnosticHook = std::function<void(std::FILE *)>;

/** Register a named hook; returns an id for removeDiagnosticHook(). */
int addDiagnosticHook(const std::string &name, DiagnosticHook fn);

/** Unregister a hook (no-op for unknown ids). */
void removeDiagnosticHook(int id);

/**
 * Replay all registered hooks to @p out. Re-entrancy safe: a hook that
 * itself panics cannot recurse into another diagnostic dump, and
 * hook exceptions are swallowed so the original error still reaches
 * the caller.
 */
void emitDiagnostics(std::FILE *out);

/**
 * Report an internal simulator bug and abort via exception.
 * Use for conditions that must never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    emitDiagnostics(stderr);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and terminate via exception.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    emitDiagnostics(stderr);
    throw FatalError(msg);
}

/**
 * fatal() with an explicit exit code, for failure classes a driver
 * needs to distinguish (watchdog timeout, invariant violation, drain
 * failure). Emits the diagnostic snapshot like fatal().
 */
template <typename... Args>
[[noreturn]] void
fatalCode(ExitCode code, const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "fatal[%d]: %s\n", static_cast<int>(code),
                 msg.c_str());
    emitDiagnostics(stderr);
    throw FatalError(msg, code);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::string msg = detail::formatMessage(fmt, args...);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/**
 * warn(), but at most once per call site: the first occurrence prints
 * (tagged so readers know repeats are suppressed), later ones are
 * dropped. Use for conditions that can fire thousands of times in a
 * long run (credit stalls, capacity drops) without drowning stderr.
 */
#define warn_once(...)                                                     \
    do {                                                                   \
        static std::atomic<bool> _sf_warned_once{false};                   \
        if (!_sf_warned_once.exchange(true,                                \
                                      std::memory_order_relaxed)) {        \
            ::sf::warn("(repeats suppressed) " __VA_ARGS__);               \
        }                                                                  \
    } while (0)

/** panic() when a condition does not hold. */
#define sf_assert(cond, fmt, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::sf::panic("assertion '" #cond "' failed: " fmt,              \
                        ##__VA_ARGS__);                                    \
        }                                                                  \
    } while (0)

} // namespace sf

#endif // SF_SIM_LOGGING_HH
