/**
 * @file
 * Fundamental simulator-wide type definitions.
 *
 * The whole chip runs in a single 2.0 GHz clock domain (Table III of the
 * paper), so one simulation tick equals one core/cache/NoC cycle.
 */

#ifndef SF_SIM_TYPES_HH
#define SF_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sf {

/** Simulation time, in cycles of the global 2.0 GHz clock domain. */
using Tick = uint64_t;

/** A duration measured in cycles. */
using Cycles = uint64_t;

/** Virtual or physical memory address. Virtual addresses are 48-bit. */
using Addr = uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for invalid addresses. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Cache line size in bytes (fixed across the hierarchy, Table III). */
constexpr uint32_t lineBytes = 64;

/** Mask an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Offset of an address within its cache line. */
constexpr uint32_t
lineOffset(Addr a)
{
    return static_cast<uint32_t>(a & (lineBytes - 1));
}

/** Identifier of a tile (core + private caches + L3 bank + router). */
using TileId = int32_t;

constexpr TileId invalidTile = -1;

/** Hardware stream identifier, unique within one core's SE. */
using StreamId = int32_t;

constexpr StreamId invalidStream = -1;

/** Global identifier of a floated stream: (core id, stream id). */
struct GlobalStreamId
{
    TileId core = invalidTile;
    StreamId sid = invalidStream;

    bool operator==(const GlobalStreamId &o) const = default;
    bool valid() const { return core != invalidTile; }
};

} // namespace sf

namespace std {

template <>
struct hash<sf::GlobalStreamId>
{
    size_t
    operator()(const sf::GlobalStreamId &id) const
    {
        return std::hash<uint64_t>()(
            (static_cast<uint64_t>(id.core) << 32) ^
            static_cast<uint32_t>(id.sid));
    }
};

} // namespace std

#endif // SF_SIM_TYPES_HH
