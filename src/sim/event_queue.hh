/**
 * @file
 * Deterministic global event queue.
 *
 * All timing in the simulator is expressed as callbacks scheduled at a
 * future tick. Events scheduled at the same tick execute in ascending
 * (priority, insertion-sequence) order, which makes every simulation
 * fully deterministic and reproducible.
 */

#ifndef SF_SIM_EVENT_QUEUE_HH
#define SF_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sf {

/** Priorities for same-tick ordering. Lower runs first. */
enum class EventPriority : int32_t
{
    /** Message delivery into component queues. */
    Delivery = 0,
    /** Default component work. */
    Default = 10,
    /** Per-cycle component ticks (CPU, SE, router pipelines). */
    ClockTick = 20,
    /** End-of-cycle bookkeeping / statistics. */
    Stat = 30,
};

/**
 * The global event queue. One instance drives an entire simulated system.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;
    using EventId = uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated tick (cycle). */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @return an id usable with deschedule().
     */
    EventId
    schedule(Tick when, Handler fn,
             EventPriority prio = EventPriority::Default)
    {
        sf_assert(when >= _curTick,
                  "scheduling in the past: %llu < %llu",
                  (unsigned long long)when, (unsigned long long)_curTick);
        EventId id = _nextSeq++;
        _heap.push(Entry{when, static_cast<int32_t>(prio), id,
                         std::move(fn)});
        ++_numPending;
        return id;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId
    scheduleIn(Cycles delay, Handler fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_curTick + delay, std::move(fn), prio);
    }

    /**
     * Cancel a previously scheduled event. Lazy: the entry stays in the
     * heap but is skipped when popped.
     */
    void
    deschedule(EventId id)
    {
        _cancelled.insert(id);
        sf_assert(_numPending > 0, "descheduling with no pending events");
        --_numPending;
    }

    /** True when no live events remain. */
    bool empty() const { return _numPending == 0; }

    /** Number of live (non-cancelled) pending events. */
    uint64_t numPending() const { return _numPending; }

    /**
     * Execute events until the queue is empty or @p limit is reached.
     * @return the tick after the last executed event.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (isCancelled(top.id)) {
                popCancelled(top.id);
                _heap.pop();
                continue;
            }
            if (top.when > limit) {
                break;
            }
            sf_assert(top.when >= _curTick, "event queue went backwards");
            _curTick = top.when;
            Handler fn = std::move(_heap.top().fn);
            _heap.pop();
            --_numPending;
            ++_numExecuted;
            fn();
        }
        return _curTick;
    }

    /** Execute exactly one event; @return false if the queue is empty. */
    bool
    step()
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (isCancelled(top.id)) {
                popCancelled(top.id);
                _heap.pop();
                continue;
            }
            _curTick = top.when;
            Handler fn = std::move(_heap.top().fn);
            _heap.pop();
            --_numPending;
            ++_numExecuted;
            fn();
            return true;
        }
        return false;
    }

    /** Total events executed so far (for reporting / debugging). */
    uint64_t numExecuted() const { return _numExecuted; }

  private:
    struct Entry
    {
        Tick when;
        int32_t prio;
        EventId id;
        mutable Handler fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    bool
    isCancelled(EventId id) const
    {
        return _cancelled.find(id) != _cancelled.end();
    }

    void popCancelled(EventId id) { _cancelled.erase(id); }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        _heap;
    /** Ids of descheduled events, skipped when they reach the top. */
    std::unordered_set<EventId> _cancelled;
    Tick _curTick = 0;
    EventId _nextSeq = 0;
    uint64_t _numPending = 0;
    uint64_t _numExecuted = 0;
};

} // namespace sf

#endif // SF_SIM_EVENT_QUEUE_HH
