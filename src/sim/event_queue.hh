/**
 * @file
 * Deterministic global event queue.
 *
 * All timing in the simulator is expressed as callbacks scheduled at a
 * future tick. Events scheduled at the same tick execute in ascending
 * (priority, insertion-sequence) order, which makes every simulation
 * fully deterministic and reproducible.
 *
 * The kernel is a two-level scheme tuned for the simulator's event
 * mix, where almost every event is a short-delay tick:
 *
 *  - a calendar wheel of `wheelBuckets` single-tick buckets covering
 *    (curTick, curTick + wheelBuckets): O(1) insert, O(1) amortized
 *    advance via an occupancy bitmap;
 *  - a far-future binary heap for everything beyond the wheel horizon
 *    (DRAM round trips never reach it; watchdog / checker / sampler
 *    periods do);
 *  - a small "now" heap holding the events of the tick being drained,
 *    ordered by (when, priority, key, sequence) so same-tick
 *    scheduling during execution stays exact.
 *
 * The optional per-event `key` (scheduleKeyed) exists for the
 * tile-parallel engine (sim/shard.hh): events that may be inserted
 * from different host threads or at different wall-clock moments
 * (directly mid-window vs. merged at a quantum barrier) carry a
 * canonical key derived from (scheduling tile, per-tile counter), so
 * their same-tick order is a pure function of simulated history and
 * never of insertion sequence. Unkeyed events (key 0) order before
 * all keyed events at the same (when, priority) and retain exact
 * insertion-sequence order among themselves.
 *
 * Event nodes come from a slab arena with an intrusive free list, so
 * steady-state scheduling performs zero allocations. Fixed-period
 * work (watchdog, checker, sampler, issue pumps) uses RecurringEvent,
 * which re-queues its own node each period instead of re-building a
 * closure.
 *
 * deschedule() stays lazy (cancelled ids are skipped when popped),
 * but the tombstone set is compacted once it passes
 * `tombstoneCompactionThreshold`, so long runs that deschedule ids
 * which already fired can no longer grow it without bound.
 */

#ifndef SF_SIM_EVENT_QUEUE_HH
#define SF_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

/** The kernel supports intrusive fixed-period events (RecurringEvent). */
#define SF_EVENTQ_HAS_RECURRING 1

namespace sf {

/** Priorities for same-tick ordering. Lower runs first. */
enum class EventPriority : int32_t
{
    /** Message delivery into component queues. */
    Delivery = 0,
    /** Default component work. */
    Default = 10,
    /** Per-cycle component ticks (CPU, SE, router pipelines). */
    ClockTick = 20,
    /** End-of-cycle bookkeeping / statistics. */
    Stat = 30,
};

class RecurringEvent;

/**
 * The global event queue. One instance drives an entire simulated system.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;
    using EventId = uint64_t;

    /** Buckets in the near-future calendar wheel (power of two). */
    static constexpr size_t wheelBuckets = 8192;
    /** Cancelled-id set size that triggers a physical compaction. */
    static constexpr size_t tombstoneCompactionThreshold = 1024;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated tick (cycle). */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @return an id usable with deschedule().
     */
    EventId
    schedule(Tick when, Handler fn,
             EventPriority prio = EventPriority::Default)
    {
        sf_assert(when >= _curTick,
                  "scheduling in the past: %llu < %llu",
                  (unsigned long long)when, (unsigned long long)_curTick);
        Event *e = allocEvent();
        e->when = when;
        e->prio = static_cast<int32_t>(prio);
        e->seq = _nextSeq++;
        e->fn = std::move(fn);
        enqueue(e);
        ++_numPending;
        return e->seq;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId
    scheduleIn(Cycles delay, Handler fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_curTick + delay, std::move(fn), prio);
    }

    /**
     * Schedule with an explicit same-tick ordering key (see the file
     * header): at equal (when, priority), events execute in ascending
     * key order regardless of which host thread inserted them or
     * whether they arrived directly or via a quantum-barrier merge.
     * @p key must be nonzero (zero marks unkeyed events).
     */
    EventId
    scheduleKeyed(Tick when, uint64_t key, Handler fn,
                  EventPriority prio = EventPriority::Default)
    {
        sf_assert(key != 0, "scheduleKeyed needs a nonzero key");
        sf_assert(when >= _curTick,
                  "scheduling in the past: %llu < %llu",
                  (unsigned long long)when, (unsigned long long)_curTick);
        Event *e = allocEvent();
        e->when = when;
        e->prio = static_cast<int32_t>(prio);
        e->key = key;
        e->seq = _nextSeq++;
        e->fn = std::move(fn);
        enqueue(e);
        ++_numPending;
        return e->seq;
    }

    /**
     * Cancel a previously scheduled event. Lazy: the node stays queued
     * but is skipped (and recycled) when popped; once the tombstone
     * set passes the compaction threshold, cancelled nodes are removed
     * physically and stale ids dropped.
     */
    void
    deschedule(EventId id)
    {
        _cancelled.insert(id);
        sf_assert(_numPending > 0, "descheduling with no pending events");
        --_numPending;
        if (_cancelled.size() >= tombstoneCompactionThreshold)
            compact();
    }

    /** True when no live events remain. */
    bool empty() const { return _numPending == 0; }

    /** Number of live (non-cancelled) pending events. */
    uint64_t numPending() const { return _numPending; }

    /**
     * Execute events until the queue is empty or @p limit is reached.
     * @return the tick after the last executed event.
     */
    Tick
    run(Tick limit = maxTick)
    {
        for (;;) {
            Event *e = next();
            if (!e)
                break;
            if (isDead(e)) {
                popNow();
                discard(e);
                continue;
            }
            if (e->when > limit)
                break;
            popNow();
            sf_assert(e->when >= _curTick,
                      "event queue went backwards: event at %llu "
                      "(prio %d key %llx seq %llu) behind tick %llu",
                      (unsigned long long)e->when, (int)e->prio,
                      (unsigned long long)e->key,
                      (unsigned long long)e->seq,
                      (unsigned long long)_curTick);
            _curTick = e->when;
            --_numPending;
            ++_numExecuted;
            execute(e);
        }
        return _curTick;
    }

    /**
     * Tick of the earliest live pending event, or maxTick when the
     * queue is empty. Lazily discards tombstones it encounters, so the
     * answer is exact (never a cancelled event's tick).
     */
    Tick
    nextTick()
    {
        for (;;) {
            Event *e = next();
            if (!e)
                return maxTick;
            if (isDead(e)) {
                popNow();
                discard(e);
                continue;
            }
            return e->when;
        }
    }

    /**
     * Advance the clock to @p t without executing anything. Only legal
     * when no live event is pending before @p t; events at exactly
     * @p t stay runnable. The parallel engine uses this to park every
     * queue on the same (partition-independent) window boundary so
     * end-of-run clock reads are deterministic.
     */
    void
    advanceTo(Tick t)
    {
        if (t <= _curTick)
            return;
        sf_assert(nextTick() >= t,
                  "advanceTo(%llu) would skip a pending event at %llu",
                  (unsigned long long)t,
                  (unsigned long long)nextTick());
        // Pull events at exactly t into the now-heap first: the wheel
        // front scan starts at curTick + 1 and would miss them after
        // the jump.
        collectTick(t);
        _curTick = t;
    }

    /** Execute exactly one event; @return false if the queue is empty. */
    bool
    step()
    {
        for (;;) {
            Event *e = next();
            if (!e)
                return false;
            popNow();
            if (isDead(e)) {
                discard(e);
                continue;
            }
            _curTick = e->when;
            --_numPending;
            ++_numExecuted;
            execute(e);
            return true;
        }
    }

    /** Total events executed so far (for reporting / debugging). */
    uint64_t numExecuted() const { return _numExecuted; }

    /** Cancelled ids awaiting skip-on-pop or compaction. */
    uint64_t tombstones() const { return _cancelled.size(); }

    /** Physical tombstone compactions performed so far. */
    uint64_t compactions() const { return _compactions; }

    /** Event nodes the slab arena has ever carved out. */
    uint64_t arenaCapacity() const { return _arenaCapacity; }

    /** Nodes currently queued (live + tombstoned). */
    uint64_t arenaInUse() const { return _numNodes; }

  private:
    friend class RecurringEvent;

    struct Event
    {
        Tick when = 0;
        int32_t prio = 0;
        /** Canonical same-tick order (scheduleKeyed); 0 = unkeyed. */
        uint64_t key = 0;
        EventId seq = 0;
        /** Intrusive link: wheel bucket chain or arena free list. */
        Event *next = nullptr;
        /** Non-null for fixed-period events; re-queued, not re-built. */
        RecurringEvent *rec = nullptr;
        /** Direct tombstone (O(1) RecurringEvent::stop()). */
        bool cancelled = false;
        /** One-shot payload; unused when rec is set. */
        Handler fn;
    };

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** Min-first comparison by (when, priority, key, sequence). */
    static bool
    later(const Event *a, const Event *b)
    {
        if (a->when != b->when)
            return a->when > b->when;
        if (a->prio != b->prio)
            return a->prio > b->prio;
        if (a->key != b->key)
            return a->key > b->key;
        return a->seq > b->seq;
    }

    // --- slab arena ---

    Event *
    allocEvent()
    {
        if (!_freeList)
            growArena();
        Event *e = _freeList;
        _freeList = e->next;
        e->next = nullptr;
        e->rec = nullptr;
        e->cancelled = false;
        e->key = 0;
        return e;
    }

    void
    freeEvent(Event *e)
    {
        e->fn = nullptr; // release captured state eagerly
        e->rec = nullptr;
        e->next = _freeList;
        _freeList = e;
    }

    void
    growArena()
    {
        constexpr size_t slabEvents = 512;
        _slabs.push_back(std::make_unique<Event[]>(slabEvents));
        Event *slab = _slabs.back().get();
        for (size_t i = slabEvents; i-- > 0;) {
            slab[i].next = _freeList;
            _freeList = &slab[i];
        }
        _arenaCapacity += slabEvents;
    }

    // --- structure maintenance ---

    void
    enqueue(Event *e)
    {
        ++_numNodes;
        if (e->when == _curTick)
            pushNow(e);
        else if (e->when - _curTick < wheelBuckets)
            pushWheel(e);
        else
            pushFar(e);
    }

    void
    pushNow(Event *e)
    {
        _now.push_back(e);
        std::push_heap(_now.begin(), _now.end(), later);
    }

    void
    popNow()
    {
        std::pop_heap(_now.begin(), _now.end(), later);
        _now.pop_back();
        --_numNodes;
    }

    void
    pushWheel(Event *e)
    {
        size_t idx = static_cast<size_t>(e->when) & (wheelBuckets - 1);
        Bucket &b = _wheel[idx];
        sf_assert(!b.head || b.head->when == e->when,
                  "calendar bucket tick clash");
        if (!b.head) {
            b.head = b.tail = e;
            _occupied[idx >> 6] |= 1ull << (idx & 63);
        } else {
            b.tail->next = e;
            b.tail = e;
        }
        ++_wheelCount;
    }

    void
    pushFar(Event *e)
    {
        _far.push_back(e);
        std::push_heap(_far.begin(), _far.end(), later);
    }

    /** Earliest tick queued outside the now-heap; maxTick when none. */
    Tick
    peekOutsideTick() const
    {
        Tick t = _far.empty() ? maxTick : _far.front()->when;
        if (_wheelCount > 0)
            t = std::min(t, wheelFrontTick());
        return t;
    }

    /**
     * Earliest occupied wheel tick. All wheel events lie in
     * (curTick, curTick + wheelBuckets), so circular bucket order
     * starting after curTick IS tick order; the occupancy bitmap
     * skips 64 empty buckets per word.
     */
    Tick
    wheelFrontTick() const
    {
        constexpr size_t words = wheelBuckets >> 6;
        size_t start =
            (static_cast<size_t>(_curTick) + 1) & (wheelBuckets - 1);
        size_t w = start >> 6;
        uint64_t word = _occupied[w] & (~0ull << (start & 63));
        for (size_t i = 0; i <= words; ++i) {
            if (word) {
                size_t idx = (w << 6) +
                             static_cast<size_t>(__builtin_ctzll(word));
                return _wheel[idx].head->when;
            }
            w = (w + 1) & (words - 1);
            word = _occupied[w];
        }
        sf_assert(false, "wheel count nonzero but no occupied bucket");
        return maxTick;
    }

    /** Move every event queued for tick @p t into the now-heap. */
    void
    collectTick(Tick t)
    {
        if (_wheelCount > 0) {
            size_t idx = static_cast<size_t>(t) & (wheelBuckets - 1);
            Bucket &b = _wheel[idx];
            if (b.head && b.head->when == t) {
                Event *e = b.head;
                b.head = b.tail = nullptr;
                _occupied[idx >> 6] &= ~(1ull << (idx & 63));
                while (e) {
                    Event *nxt = e->next;
                    e->next = nullptr;
                    --_wheelCount;
                    _now.push_back(e);
                    std::push_heap(_now.begin(), _now.end(), later);
                    e = nxt;
                }
            }
        }
        while (!_far.empty() && _far.front()->when == t) {
            Event *e = _far.front();
            std::pop_heap(_far.begin(), _far.end(), later);
            _far.pop_back();
            pushNow(e);
        }
    }

    /**
     * The globally next event (still queued in the now-heap), or null.
     * Hot path: while draining the current tick this is one compare;
     * the bitmap scan only runs on tick advancement.
     */
    Event *
    next()
    {
        Tick now_tick = _now.empty() ? maxTick : _now.front()->when;
        if (now_tick == _curTick)
            return _now.front();
        Tick out_tick = peekOutsideTick();
        if (now_tick < out_tick)
            return _now.front();
        if (out_tick == maxTick)
            return nullptr;
        // out_tick is minimal, so after collecting it the now-heap
        // front is the global minimum: no rescan needed. On a tick tie
        // the bucket must be collected too: an event scheduled for a
        // tick whose bucket was already drained (run(limit) stops with
        // that tick's events parked in the now-heap, then an insert
        // for the same tick lands in the wheel) would otherwise sit in
        // a bucket the front scan can no longer see once _curTick
        // reaches it — and same-tick (prio, key, seq) ordering demands
        // the merge regardless.
        collectTick(out_tick);
        return _now.front();
    }

    bool
    isDead(const Event *e) const
    {
        return e->cancelled ||
               (!_cancelled.empty() &&
                _cancelled.find(e->seq) != _cancelled.end());
    }

    /** Recycle a popped tombstone (accounting already settled). */
    void
    discard(Event *e)
    {
        if (!e->cancelled)
            _cancelled.erase(e->seq);
        freeEvent(e);
    }

    /** Run a popped live event. */
    void
    execute(Event *e)
    {
        if (e->rec) {
            runRecurring(e);
        } else {
            // Free the node before the callback so the handler's own
            // schedules can reuse it, and so a throwing handler (fatal
            // paths) leaves the queue consistent.
            Handler fn = std::move(e->fn);
            freeEvent(e);
            fn();
        }
    }

    void runRecurring(Event *e); // defined after RecurringEvent

    /**
     * Physically remove every cancelled node and drop the whole
     * tombstone set — including ids that matched no queued node
     * (descheduled after their event already fired), which previously
     * accumulated forever in long runs.
     */
    void
    compact()
    {
        ++_compactions;
        auto dead = [this](Event *e) {
            return e->cancelled ||
                   _cancelled.find(e->seq) != _cancelled.end();
        };
        for (auto *vp : {&_now, &_far}) {
            auto &v = *vp;
            size_t kept = 0;
            for (Event *e : v) {
                if (dead(e)) {
                    freeEvent(e);
                    --_numNodes;
                } else {
                    v[kept++] = e;
                }
            }
            v.resize(kept);
            std::make_heap(v.begin(), v.end(), later);
        }
        if (_wheelCount > 0) {
            for (size_t idx = 0; idx < wheelBuckets; ++idx) {
                Bucket &b = _wheel[idx];
                if (!b.head)
                    continue;
                Event *e = b.head;
                b.head = b.tail = nullptr;
                _occupied[idx >> 6] &= ~(1ull << (idx & 63));
                while (e) {
                    Event *nxt = e->next;
                    e->next = nullptr;
                    --_wheelCount;
                    --_numNodes;
                    if (dead(e)) {
                        freeEvent(e);
                    } else {
                        ++_numNodes;
                        pushWheel(e);
                    }
                    e = nxt;
                }
            }
        }
        _cancelled.clear();
    }

    std::array<Bucket, wheelBuckets> _wheel;
    std::array<uint64_t, wheelBuckets / 64> _occupied{};
    uint64_t _wheelCount = 0;
    /** Far-future events, min-heap by (when, prio, seq). */
    std::vector<Event *> _far;
    /** Events of the tick being drained, same ordering. */
    std::vector<Event *> _now;
    /** Ids of descheduled one-shot events, skipped when popped. */
    std::unordered_set<EventId> _cancelled;

    std::vector<std::unique_ptr<Event[]>> _slabs;
    Event *_freeList = nullptr;
    uint64_t _arenaCapacity = 0;

    Tick _curTick = 0;
    EventId _nextSeq = 0;
    uint64_t _numPending = 0;
    /** Queued nodes including tombstones (arena accounting). */
    uint64_t _numNodes = 0;
    uint64_t _numExecuted = 0;
    uint64_t _compactions = 0;
};

/**
 * A fixed-period event that owns its callback once and re-queues its
 * arena node every period — the watchdog / checker / sampler / issue-
 * pump pattern, with no per-period closure rebuild and an O(1) stop().
 *
 * start()/stop() may be called freely, including from inside the
 * callback itself; stop() tombstones the queued node in place.
 */
class RecurringEvent
{
  public:
    explicit RecurringEvent(EventQueue &eq) : _eq(eq) {}

    ~RecurringEvent() { stop(); }

    RecurringEvent(const RecurringEvent &) = delete;
    RecurringEvent &operator=(const RecurringEvent &) = delete;

    /**
     * Arm with @p period; the first firing happens @p firstDelay
     * ticks from now (one period when 0).
     */
    void
    start(Cycles period, EventQueue::Handler fn,
          EventPriority prio = EventPriority::Default,
          Cycles firstDelay = 0)
    {
        sf_assert(!_running, "recurring event started twice");
        sf_assert(period > 0, "recurring event needs a nonzero period");
        _period = period;
        _prio = static_cast<int32_t>(prio);
        _fn = std::move(fn);
        _running = true;
        EventQueue::Event *e = _eq.allocEvent();
        e->when = _eq._curTick + (firstDelay ? firstDelay : period);
        e->prio = _prio;
        e->seq = _eq._nextSeq++;
        e->rec = this;
        _eq.enqueue(e);
        ++_eq._numPending;
        _node = e;
    }

    /** Cancel the queued firing; safe to call repeatedly. */
    void
    stop()
    {
        if (!_running)
            return;
        _running = false;
        if (_node) {
            _node->cancelled = true;
            _node->rec = nullptr;
            _node = nullptr;
            sf_assert(_eq._numPending > 0,
                      "stopping recurring event with no pending events");
            --_eq._numPending;
        }
        // else: stopped from inside the callback; the queue frees the
        // node when the callback returns.
    }

    bool running() const { return _running; }
    Cycles period() const { return _period; }

  private:
    friend class EventQueue;

    EventQueue &_eq;
    EventQueue::Handler _fn;
    Cycles _period = 0;
    int32_t _prio = 0;
    /** Owned by the queue while scheduled; null while executing. */
    EventQueue::Event *_node = nullptr;
    bool _running = false;
};

inline void
EventQueue::runRecurring(Event *e)
{
    RecurringEvent *rec = e->rec;
    rec->_node = nullptr; // in flight: stop() must not touch the node
    rec->_fn();
    if (rec->_running) {
        e->when = _curTick + rec->_period;
        e->seq = _nextSeq++;
        e->next = nullptr;
        enqueue(e);
        ++_numPending;
        rec->_node = e;
    } else {
        freeEvent(e);
    }
}

} // namespace sf

#endif // SF_SIM_EVENT_QUEUE_HH
