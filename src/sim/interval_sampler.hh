/**
 * @file
 * IntervalSampler: periodic snapshots of selected counters.
 *
 * End-of-run totals hide phase behaviour; the sampler wakes every N
 * cycles and appends one point per registered probe to an in-memory
 * time series, which the JSON stat dump embeds. Two probe kinds:
 *
 *  - value:  an instantaneous quantity sampled as-is (queue depth).
 *  - ratio:  delta(numerator) / delta(denominator) over the interval —
 *            the natural shape for IPC (ops/cycles), hit rates
 *            (hits/accesses) and utilizations (busy/available).
 */

#ifndef SF_SIM_INTERVAL_SAMPLER_HH
#define SF_SIM_INTERVAL_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_object.hh"

namespace sf {
namespace stats {

class IntervalSampler : public SimObject
{
  public:
    using Source = std::function<double()>;

    struct Series
    {
        std::string name;
        std::vector<double> values;
    };

    IntervalSampler(const std::string &name, EventQueue &eq,
                    Cycles interval)
        : SimObject(name, eq),
          _interval(interval ? interval : 1),
          _tick(eq)
    {}

    /** Sample fn() directly every interval. */
    void
    addValue(const std::string &series_name, Source fn)
    {
        _probes.push_back({std::move(fn), nullptr, 0.0, 0.0, false});
        _series.push_back({series_name, {}});
    }

    /**
     * Sample delta(numer)/delta(denom) over each interval; empty
     * intervals (delta denom == 0) record 0.
     */
    void
    addRatio(const std::string &series_name, Source numer, Source denom)
    {
        _probes.push_back(
            {std::move(numer), std::move(denom), 0.0, 0.0, true});
        _series.push_back({series_name, {}});
    }

    /** Fills the current cumulative totals, one entry per cell. */
    using MatrixSource = std::function<void(std::vector<uint64_t> &)>;

    struct MatrixSeries
    {
        std::string name;
        int rows;
        int cols;
        MatrixSource fn;
        std::vector<uint64_t> prev;
        /** One delta matrix (row-major) per sampled interval. */
        std::vector<std::vector<uint64_t>> frames;
    };

    /**
     * Sample a rows x cols matrix of cumulative counters every
     * interval, recording per-interval deltas (NoC heatmaps).
     */
    void
    addMatrix(const std::string &series_name, int rows, int cols,
              MatrixSource fn)
    {
        _matrices.push_back({series_name, rows, cols, std::move(fn),
                             std::vector<uint64_t>(
                                 size_t(rows) * size_t(cols), 0),
                             {}});
    }

    /** Begin sampling (first snapshot one interval from now). */
    void
    start()
    {
        if (_running)
            return;
        _running = true;
        for (auto &p : _probes) {
            p.prevNumer = p.numer();
            p.prevDenom = p.denom ? p.denom() : 0.0;
        }
        for (auto &m : _matrices)
            m.fn(m.prev);
        _tick.start(_interval, [this]() { sampleOnce(); });
    }

    /**
     * Stop sampling. When the sim length is not a multiple of the
     * interval, the tail cycles since the last snapshot are emitted
     * as one final partial sample instead of being dropped.
     */
    void
    stop()
    {
        if (_running && (_ticks.empty() || _ticks.back() != curTick()))
            sampleOnce();
        _running = false;
        _tick.stop();
    }

    Cycles interval() const { return _interval; }
    const std::vector<Tick> &ticks() const { return _ticks; }
    const std::vector<Series> &series() const { return _series; }
    const std::vector<MatrixSeries> &matrices() const
    {
        return _matrices;
    }

  private:
    struct Probe
    {
        Source numer;
        Source denom; //!< null for value probes
        double prevNumer;
        double prevDenom;
        bool isRatio;
    };

    void
    sampleOnce()
    {
        if (!_running)
            return;
        _ticks.push_back(curTick());
        for (size_t i = 0; i < _probes.size(); ++i) {
            Probe &p = _probes[i];
            double v;
            if (p.isRatio) {
                double n = p.numer();
                double d = p.denom();
                double dn = n - p.prevNumer;
                double dd = d - p.prevDenom;
                v = dd != 0.0 ? dn / dd : 0.0;
                p.prevNumer = n;
                p.prevDenom = d;
            } else {
                v = p.numer();
            }
            _series[i].values.push_back(v);
        }
        for (auto &m : _matrices) {
            std::vector<uint64_t> cur(m.prev.size(), 0);
            m.fn(cur);
            std::vector<uint64_t> delta(cur.size());
            for (size_t c = 0; c < cur.size(); ++c)
                delta[c] = cur[c] - m.prev[c];
            m.frames.push_back(std::move(delta));
            m.prev = std::move(cur);
        }
        // The recurring event re-queues itself for the next snapshot.
    }

    Cycles _interval;
    bool _running = false;
    std::vector<Probe> _probes;
    std::vector<Tick> _ticks;
    std::vector<Series> _series;
    std::vector<MatrixSeries> _matrices;
    /** Fixed-period snapshot; requeues its own node each interval. */
    RecurringEvent _tick;
};

} // namespace stats
} // namespace sf

#endif // SF_SIM_INTERVAL_SAMPLER_HH
