/**
 * @file
 * Runtime invariant checker for the simulated protocol state.
 *
 * Components (via the system layer) register named invariant checks —
 * MESI directory consistency, NoC message conservation, stream
 * residence/credit-window rules — and the checker sweeps them
 * periodically and at end-of-sim drain. Any violation emits the
 * global diagnostic snapshot and fatal()s with ExitCode::
 * InvariantViolation (or DrainFailure for the drain sweep), so a
 * corrupted run can never silently produce numbers.
 *
 * Levels: Off (no checks, zero overhead), Basic (cheap structural
 * scans: stream tables, credit windows, drain residue), Full (adds
 * the expensive sweeps: full cache-array MESI walks and per-packet
 * NoC conservation tracking). Selected via SystemConfig::checkLevel,
 * overridable with the SF_CHECK environment variable
 * (off|basic|full).
 */

#ifndef SF_SIM_CHECKER_HH
#define SF_SIM_CHECKER_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sf {

enum class CheckLevel : int
{
    Off = 0,
    Basic = 1,
    Full = 2,
};

inline const char *
checkLevelName(CheckLevel lvl)
{
    switch (lvl) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Basic: return "basic";
      case CheckLevel::Full: return "full";
    }
    return "?";
}

inline CheckLevel
checkLevelFromString(const std::string &s)
{
    if (s == "off" || s == "0" || s == "none")
        return CheckLevel::Off;
    if (s == "basic" || s == "1")
        return CheckLevel::Basic;
    if (s == "full" || s == "2" || s == "strict")
        return CheckLevel::Full;
    fatal("unknown check level '%s' (off|basic|full)", s.c_str());
}

/** SF_CHECK environment override; @p dflt when unset. */
inline CheckLevel
checkLevelFromEnv(CheckLevel dflt)
{
    const char *env = std::getenv("SF_CHECK");
    return env && *env ? checkLevelFromString(env) : dflt;
}

class Checker
{
  public:
    /** An invariant sweep; appends one message per violation found. */
    using CheckFn = std::function<void(std::vector<std::string> &)>;

    Checker(EventQueue &eq, CheckLevel level, Cycles interval = 50'000)
        : _eq(eq), _level(level), _interval(interval ? interval : 1),
          _tick(eq)
    {}

    ~Checker() { stop(); }

    CheckLevel level() const { return _level; }
    bool enabled() const { return _level > CheckLevel::Off; }

    /** Register a check that runs at @p minLevel and above. */
    void
    addCheck(const std::string &name, CheckLevel minLevel, CheckFn fn)
    {
        _checks.push_back({name, minLevel, std::move(fn)});
    }

    /** Begin periodic sweeps (no-op when the level is Off). */
    void
    start()
    {
        if (!enabled() || _running)
            return;
        _running = true;
        _tick.start(_interval, [this] { periodic(); },
                    EventPriority::Stat);
    }

    void
    stop()
    {
        _running = false;
        _tick.stop();
    }

    /**
     * Run every registered check at the current level right now;
     * fatal(@p code) listing all violations if any check fails.
     * @p phase labels the sweep in the error ("periodic", "drain").
     */
    void
    runAll(const char *phase,
           ExitCode code = ExitCode::InvariantViolation)
    {
        if (!enabled())
            return;
        std::vector<std::string> violations;
        for (const auto &c : _checks) {
            if (c.minLevel > _level)
                continue;
            size_t before = violations.size();
            c.fn(violations);
            ++_checksRun;
            for (size_t i = before; i < violations.size(); ++i)
                violations[i] = c.name + ": " + violations[i];
        }
        if (violations.empty())
            return;
        _violations += violations.size();
        for (const auto &v : violations)
            std::fprintf(stderr, "invariant violation: %s\n", v.c_str());
        fatalCode(code,
                  "%s invariant sweep at tick %llu found %zu "
                  "violation(s), first: %s",
                  phase, (unsigned long long)_eq.curTick(),
                  violations.size(), violations.front().c_str());
    }

    uint64_t checksRun() const { return _checksRun.value(); }

    void
    regStats(stats::StatGroup &g) const
    {
        g.regScalar("checks_run", &_checksRun);
        g.regScalar("violations", &_violations);
    }

    void
    debugDump(std::FILE *out) const
    {
        std::fprintf(out,
                     "checker: level=%s interval=%llu checks=%zu "
                     "sweeps_run=%llu\n",
                     checkLevelName(_level),
                     (unsigned long long)_interval, _checks.size(),
                     (unsigned long long)_checksRun.value());
    }

  private:
    struct CheckEntry
    {
        std::string name;
        CheckLevel minLevel;
        CheckFn fn;
    };

    void
    periodic()
    {
        if (!_running)
            return;
        // The recurring event re-queues itself for the next sweep.
        runAll("periodic");
    }

    EventQueue &_eq;
    CheckLevel _level;
    Cycles _interval;
    std::vector<CheckEntry> _checks;
    bool _running = false;
    /** Fixed-period sweep; requeues its own node, no closure rebuild. */
    RecurringEvent _tick;
    stats::Scalar _checksRun;
    stats::Scalar _violations;
};

} // namespace sf

#endif // SF_SIM_CHECKER_HH
