/**
 * @file
 * Event-proportional energy and area model (McPAT/CACTI stand-in).
 *
 * The paper evaluates *relative* energy efficiency at 22 nm using
 * McPAT extended with the SE structures. We reproduce that with
 * per-event energies plus per-component static power. The absolute
 * values are representative 22 nm numbers (pJ); what the figures rely
 * on is the ratio structure: DRAM >> NoC/L3 >> L2 >> L1 >> core op,
 * and OOO8 static/dynamic >> IO4.
 */

#ifndef SF_ENERGY_ENERGY_MODEL_HH
#define SF_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

namespace sf {
namespace energy {

/** Per-event energies in picojoules; static power in pJ/cycle. */
struct EnergyParams
{
    // Core dynamic energy per committed op.
    double opIntIO = 8.0;
    double opFpIO = 15.0;
    double opMemIO = 12.0;
    /** OOO overhead multiplier (rename/IQ/ROB/LSQ CAM activity). */
    double oooOpFactor4 = 2.2;
    double oooOpFactor8 = 3.0;

    // Memory hierarchy per access (tag+data).
    double l1Access = 15.0;
    double l2Access = 45.0;
    double l3Access = 110.0;
    double tlbAccess = 2.0;
    double dramLine = 1300.0; //!< per 64B line

    // Interconnect.
    double flitHop = 6.0; //!< per flit per hop (router + link)

    // Stream engines.
    double seCoreEvent = 3.0; //!< per element processed at SE_core
    double seL2Event = 4.0;   //!< per buffered element at SE_L2
    double seL3Event = 5.0;   //!< per request generated at SE_L3

    // Static power per tile component (pJ per cycle at 2 GHz).
    double staticCoreIO = 12.0;
    double staticCoreOOO4 = 35.0;
    double staticCoreOOO8 = 70.0;
    double staticCaches = 20.0; //!< L1+L2+L3 bank leakage per tile
    double staticSE = 1.5;      //!< all three SEs per tile
};

/** Raw event counts gathered from a finished simulation. */
struct EnergyEvents
{
    uint64_t intOps = 0;
    uint64_t fpOps = 0;
    uint64_t memOps = 0;
    uint64_t l1Accesses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l3Accesses = 0;
    uint64_t tlbAccesses = 0;
    uint64_t dramLines = 0;
    uint64_t flitHops = 0;
    uint64_t seCoreEvents = 0;
    uint64_t seL2Events = 0;
    uint64_t seL3Events = 0;
    uint64_t cycles = 0;
    int numTiles = 0;
    /** "IO4", "OOO4" or "OOO8". */
    std::string coreLabel = "OOO4";
    bool streamHardware = false;
};

/** Energy breakdown in nanojoules. */
struct EnergyBreakdown
{
    double core = 0;
    double caches = 0;
    double noc = 0;
    double dram = 0;
    double streamEngines = 0;
    double staticLeakage = 0;

    double
    total() const
    {
        return core + caches + noc + dram + streamEngines +
               staticLeakage;
    }
};

/** Compute the energy breakdown for one run. */
inline EnergyBreakdown
computeEnergy(const EnergyEvents &ev, const EnergyParams &p = {})
{
    EnergyBreakdown b;
    double op_factor = 1.0;
    double static_core = p.staticCoreIO;
    if (ev.coreLabel == "OOO4") {
        op_factor = p.oooOpFactor4;
        static_core = p.staticCoreOOO4;
    } else if (ev.coreLabel == "OOO8") {
        op_factor = p.oooOpFactor8;
        static_core = p.staticCoreOOO8;
    }

    b.core = 1e-3 * op_factor *
             (ev.intOps * p.opIntIO + ev.fpOps * p.opFpIO +
              ev.memOps * p.opMemIO);
    b.caches = 1e-3 * (ev.l1Accesses * p.l1Access +
                       ev.l2Accesses * p.l2Access +
                       ev.l3Accesses * p.l3Access +
                       ev.tlbAccesses * p.tlbAccess);
    b.noc = 1e-3 * ev.flitHops * p.flitHop;
    b.dram = 1e-3 * ev.dramLines * p.dramLine;
    b.streamEngines = 1e-3 * (ev.seCoreEvents * p.seCoreEvent +
                              ev.seL2Events * p.seL2Event +
                              ev.seL3Events * p.seL3Event);
    double static_per_cycle =
        static_core + p.staticCaches +
        (ev.streamHardware ? p.staticSE : 0.0);
    b.staticLeakage = 1e-3 * static_per_cycle *
                      static_cast<double>(ev.cycles) * ev.numTiles;
    return b;
}

/**
 * Analytic area model for §VII-A: SRAM-dominated SE structures at
 * 22 nm (mm^2), matching the paper's reported numbers.
 */
struct AreaModel
{
    /** mm^2 per KB of SRAM at 22nm (CACTI-like). */
    static constexpr double mm2PerKb = 0.11 / 48.0;

    static double
    seL3ConfigArea()
    {
        return 48.0 * mm2PerKb; // 768 streams x 64B config = 48kB
    }
    static double seL3TlbArea() { return 0.04; }
    static double seL2BufferArea() { return 0.09; }
    static double seL2ConfigArea() { return 0.05; }
    static double l3BankArea() { return (0.11 + 0.04) / 0.045; }
    static double l2Area() { return 1.85; }
};

} // namespace energy
} // namespace sf

#endif // SF_ENERGY_ENERGY_MODEL_HH
