/**
 * @file
 * SE_core tests: FIFO management, run-ahead fetching, the iteration
 * map, history tracking (Table II), alias detection/flush, and the
 * indirect-on-base dependence — all without floating (SS mode).
 */

#include <gtest/gtest.h>

#include "common/test_fabric.hh"

using namespace sf;
using namespace sf::test;
using isa::StreamConfig;

namespace {

StreamConfig
affine(StreamId sid, Addr base, uint64_t len, int64_t stride = 4,
       uint32_t esz = 4)
{
    StreamConfig c;
    c.sid = sid;
    c.affine.base = base;
    c.affine.elemSize = esz;
    c.affine.nDims = 1;
    c.affine.stride[0] = stride;
    c.affine.len[0] = len;
    return c;
}

struct SeHarness
{
    SeHarness() : fabric(makeOpts()) {}

    static TestFabric::Options
    makeOpts()
    {
        TestFabric::Options o;
        o.withStreamEngines = true;
        o.seCore.enableFloating = false;
        return o;
    }

    stream::SECore &se() { return fabric.seCore(0); }
    TestFabric fabric;
};

/** SS-mode harness with floating force-disabled via no controller. */
struct SsHarness : SeHarness
{
    SsHarness()
    {
        se().setFloatController(nullptr);
    }
};

} // namespace

TEST(SECore, ConfigureAndConsumeInOrder)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(4096);
    h.se().configure({affine(0, buf, 64)});

    int ready = 0;
    for (int i = 0; i < 8; ++i) {
        h.se().requestElems(0, 1, [&]() { ++ready; });
        h.se().step(0, 1);
    }
    h.fabric.drain();
    EXPECT_EQ(ready, 8);
    for (int i = 0; i < 8; ++i)
        h.se().releaseAtCommit(0, 1);
    h.se().end(0);
}

TEST(SECore, VectorConsumption)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(4096);
    h.se().configure({affine(0, buf, 64)});
    int ready = 0;
    h.se().requestElems(0, 16, [&]() { ++ready; });
    h.se().step(0, 16);
    h.fabric.drain();
    EXPECT_EQ(ready, 1);
    h.se().releaseAtCommit(0, 16);
}

TEST(SECore, RunAheadFetchesLineGranular)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(64 * 1024);
    h.se().configure({affine(0, buf, 256)});
    h.fabric.drain();
    // 1kB FIFO quota => up to 256 x 4B elements => 16 line fetches,
    // issued without any core request.
    EXPECT_GT(h.se().stats().fetchesIssued.value(), 4u);
    EXPECT_LE(h.se().stats().fetchesIssued.value(), 20u);
}

TEST(SECore, QuotaBoundsRunAhead)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(1 << 20);
    // Two load streams share the FIFO: each gets half the quota.
    h.se().configure({affine(0, buf, 100000),
                      affine(1, buf + 500000, 100000)});
    h.fabric.drain();
    uint64_t fetched = h.se().stats().fetchesIssued.value();
    // 1kB FIFO / 2 streams / 4B = 128 elems each = 8 lines each.
    EXPECT_LE(fetched, 24u);
}

TEST(SECore, CanAcceptUseBacksPressure)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(1 << 20);
    h.se().configure({affine(0, buf, 100000)});
    h.fabric.drain();
    // Walk the dispatch iterator to the quota without committing.
    int accepted = 0;
    while (h.se().canAcceptUse(0) && accepted < 10000) {
        h.se().requestElems(0, 16, []() {});
        h.se().step(0, 16);
        ++accepted;
    }
    EXPECT_LT(accepted, 10000);
    // Releasing (commit) frees FIFO space again.
    h.se().releaseAtCommit(0, 16);
    EXPECT_TRUE(h.se().canAcceptUse(0));
}

TEST(SECore, UnknownStreamRejectsUse)
{
    SsHarness h;
    EXPECT_FALSE(h.se().canAcceptUse(5));
}

TEST(SECore, PendingReconfigurationStallsUses)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(4096);
    h.se().configure({affine(0, buf, 16)});
    EXPECT_TRUE(h.se().canAcceptUse(0));
    // A new stream_cfg for sid 0 is dispatched but not yet committed:
    // uses must stall so they bind to the new configuration.
    h.se().noteConfigDispatched({affine(0, buf, 16)});
    EXPECT_FALSE(h.se().canAcceptUse(0));
    h.se().configure({affine(0, buf, 16)});
    EXPECT_TRUE(h.se().canAcceptUse(0));
}

TEST(SECore, HistoryCountsRequestsAndMisses)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(64 * 1024);
    h.se().configure({affine(0, buf, 256)});
    h.fabric.drain();
    const stream::StreamHistory *row = h.se().history().find(0);
    ASSERT_NE(row, nullptr);
    EXPECT_GT(row->requests, 0u);
    EXPECT_EQ(row->misses, row->requests); // cold: everything missed
}

TEST(SECore, ReuseNotificationFeedsHistory)
{
    SsHarness h;
    h.se().notifyStreamReuse(3);
    h.se().notifyStreamReuse(3);
    const stream::StreamHistory *row = h.se().history().find(3);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->reuses, 2u);
}

TEST(SECore, StoreAliasFlushesAndDisablesPrefetch)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(64 * 1024);
    h.se().configure({affine(0, buf, 256)});
    h.fabric.drain();
    uint64_t fetched_before = h.se().stats().fetchesIssued.value();
    EXPECT_GT(fetched_before, 0u);

    // A store right into the prefetched window.
    h.se().storeCommitted(buf + 64, 4);
    EXPECT_EQ(h.se().stats().aliasFlushes.value(), 1u);
    const stream::StreamHistory *row = h.se().history().find(0);
    ASSERT_NE(row, nullptr);
    EXPECT_TRUE(row->aliased);
}

TEST(SECore, NonAliasingStoreIsIgnored)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(64 * 1024);
    Addr other = h.fabric.as().alloc(4096);
    h.se().configure({affine(0, buf, 64)});
    h.fabric.drain();
    h.se().storeCommitted(other, 4);
    EXPECT_EQ(h.se().stats().aliasFlushes.value(), 0u);
}

TEST(SECore, StoreStreamGeneratesAddresses)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(4096);
    StreamConfig st = affine(2, buf, 64);
    st.isStore = true;
    h.se().configure({st});
    EXPECT_EQ(h.se().storeAddr(2), buf);
    h.se().step(2, 16);
    EXPECT_EQ(h.se().storeAddr(2), buf + 64);
}

TEST(SECore, IndirectWaitsForParentData)
{
    SsHarness h;
    // A[i] holds indices into B.
    Addr a = h.fabric.as().alloc(4096);
    Addr b = h.fabric.as().alloc(1 << 16);
    for (int i = 0; i < 64; ++i)
        h.fabric.as().writeT<int32_t>(a + i * 4, (i * 7) % 1000);

    StreamConfig base = affine(0, a, 64);
    StreamConfig ind;
    ind.sid = 1;
    ind.hasIndirect = true;
    ind.baseSid = 0;
    ind.indirect.base = b;
    ind.indirect.elemSize = 4;
    ind.indirect.idxSize = 4;
    ind.indirect.scale = 4;
    ind.affine.elemSize = 4;
    ind.affine.len[0] = 64;
    h.se().configure({base, ind});

    int ready = 0;
    h.se().requestElems(1, 1, [&]() { ++ready; });
    h.fabric.drain();
    EXPECT_EQ(ready, 1);
}

TEST(SECore, EndDeactivatesAndReconfigureRestarts)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(4096);
    h.se().configure({affine(0, buf, 16)});
    h.fabric.drain();
    h.se().end(0);
    EXPECT_FALSE(h.se().canAcceptUse(0));
    h.se().configure({affine(0, buf, 16)});
    EXPECT_TRUE(h.se().canAcceptUse(0));
    int ready = 0;
    h.se().requestElems(0, 1, [&]() { ++ready; });
    h.fabric.drain();
    EXPECT_EQ(ready, 1);
}

TEST(SECore, ManyStreamsWithinLimit)
{
    SsHarness h;
    Addr buf = h.fabric.as().alloc(1 << 20);
    std::vector<StreamConfig> group;
    for (int s = 0; s < 6; ++s)
        group.push_back(affine(s, buf + s * 65536, 64));
    h.se().configure(group);
    int ready = 0;
    for (int s = 0; s < 6; ++s)
        h.se().requestElems(s, 1, [&]() { ++ready; });
    h.fabric.drain();
    EXPECT_EQ(ready, 6);
}
