/** @file Unit tests for stream pattern descriptors (Table I). */

#include <gtest/gtest.h>

#include "isa/stream_pattern.hh"

using namespace sf;
using namespace sf::isa;

TEST(AffinePattern, Linear1D)
{
    AffinePattern p;
    p.base = 0x1000;
    p.elemSize = 4;
    p.nDims = 1;
    p.stride[0] = 4;
    p.len[0] = 100;
    EXPECT_EQ(p.totalElems(), 100u);
    EXPECT_EQ(p.elemAddr(0), 0x1000u);
    EXPECT_EQ(p.elemAddr(1), 0x1004u);
    EXPECT_EQ(p.elemAddr(99), 0x1000u + 99 * 4);
}

TEST(AffinePattern, Strided1D)
{
    AffinePattern p;
    p.base = 0x2000;
    p.elemSize = 4;
    p.nDims = 1;
    p.stride[0] = 64; // one element per cache line
    p.len[0] = 10;
    EXPECT_EQ(p.elemAddr(3), 0x2000u + 3 * 64);
}

TEST(AffinePattern, RowMajor2D)
{
    // A[i][j] with row pitch 1024B, 16 elements per row of 4B.
    AffinePattern p;
    p.base = 0;
    p.elemSize = 4;
    p.nDims = 2;
    p.stride[0] = 4;
    p.len[0] = 16;
    p.stride[1] = 1024;
    p.len[1] = 8;
    EXPECT_EQ(p.totalElems(), 128u);
    EXPECT_EQ(p.elemAddr(0), 0u);
    EXPECT_EQ(p.elemAddr(15), 60u);
    EXPECT_EQ(p.elemAddr(16), 1024u); // next row
    EXPECT_EQ(p.elemAddr(17), 1028u);
    EXPECT_EQ(p.elemAddr(127), 7 * 1024u + 60u);
}

TEST(AffinePattern, ThreeLevel)
{
    AffinePattern p;
    p.base = 0;
    p.elemSize = 4;
    p.nDims = 3;
    p.stride[0] = 4;
    p.len[0] = 4;
    p.stride[1] = 100;
    p.len[1] = 3;
    p.stride[2] = 10000;
    p.len[2] = 2;
    EXPECT_EQ(p.totalElems(), 24u);
    // iter 13 = i0=1, i1=0, i2=1
    EXPECT_EQ(p.elemAddr(13), 4u + 0u + 10000u);
}

TEST(AffinePattern, NegativeStride)
{
    AffinePattern p;
    p.base = 0x1000;
    p.elemSize = 4;
    p.nDims = 1;
    p.stride[0] = -4;
    p.len[0] = 4;
    EXPECT_EQ(p.elemAddr(3), 0x1000u - 12);
    EXPECT_EQ(p.footprintBytes(), 3u * 4 + 4);
}

TEST(AffinePattern, FootprintSpansAllLevels)
{
    AffinePattern p;
    p.base = 0;
    p.elemSize = 4;
    p.nDims = 2;
    p.stride[0] = 4;
    p.len[0] = 16;
    p.stride[1] = 1024;
    p.len[1] = 8;
    EXPECT_EQ(p.footprintBytes(), 15u * 4 + 7u * 1024 + 4);
}

TEST(IndirectPattern, TargetAddress)
{
    IndirectPattern p;
    p.base = 0x100000;
    p.elemSize = 4;
    p.idxSize = 4;
    p.scale = 4;
    p.offset = 0;
    EXPECT_EQ(p.targetAddr(10), 0x100000u + 40);
    EXPECT_EQ(p.targetAddr(-2), 0x100000u - 8);
}

TEST(IndirectPattern, WLoopAndScale)
{
    // B[A[i]*5 + w] over 4-byte fields: struct gather (Eq. 1).
    IndirectPattern p;
    p.base = 0x100000;
    p.elemSize = 4;
    p.idxSize = 4;
    p.scale = 20; // 5 fields x 4 bytes
    p.wLen = 5;
    EXPECT_EQ(p.targetAddr(3, 0), 0x100000u + 60);
    EXPECT_EQ(p.targetAddr(3, 4), 0x100000u + 60 + 16);
}

TEST(StreamConfig, TotalElemsIncludesWLoop)
{
    StreamConfig c;
    c.affine.len[0] = 100;
    c.hasIndirect = true;
    c.indirect.wLen = 5;
    EXPECT_EQ(c.totalElems(), 500u);
}

/**
 * Table I claim: the affine configuration packet is 450 bits, and an
 * indirect stream adds 60 bits; both fit well under one cache line.
 */
TEST(StreamConfig, ConfigPacketSizesMatchTableI)
{
    StreamConfig affine;
    EXPECT_EQ(affine.configBits(), 450u);

    StreamConfig ind;
    ind.hasIndirect = true;
    EXPECT_EQ(ind.configBits(), 510u);
    EXPECT_LT(ind.configBits(), 64u * 8); // less than one cache line
}

class AffineSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t, uint64_t>>
{
};

TEST_P(AffineSweep, AddressesAreStrideSeparatedWithinInnerLevel)
{
    auto [dims, stride, len] = GetParam();
    AffinePattern p;
    p.base = 0x4000;
    p.elemSize = 4;
    p.nDims = dims;
    p.stride[0] = stride;
    p.len[0] = len;
    for (int d = 1; d < dims; ++d) {
        p.stride[d] = stride * 1000;
        p.len[d] = 3;
    }
    for (uint64_t i = 1; i < len; ++i) {
        EXPECT_EQ(static_cast<int64_t>(p.elemAddr(i)) -
                      static_cast<int64_t>(p.elemAddr(i - 1)),
                  stride);
    }
    // Crossing into the next level jumps by the outer stride.
    if (dims > 1) {
        EXPECT_EQ(static_cast<int64_t>(p.elemAddr(len)) -
                      static_cast<int64_t>(p.elemAddr(0)),
                  stride * 1000);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AffineSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(int64_t(4), int64_t(64),
                                         int64_t(-8), int64_t(256)),
                       ::testing::Values(uint64_t(2), uint64_t(16),
                                         uint64_t(333))));
