/** @file Unit tests for the op emitter / OpSource plumbing. */

#include <gtest/gtest.h>

#include "isa/op_source.hh"

using namespace sf;
using namespace sf::isa;

namespace {

/** Minimal emitter exposing the protected helpers. */
class Probe : public OpEmitter
{
  public:
    size_t
    refill(std::vector<Op> &out) override
    {
        return 0;
    }

    using OpEmitter::emitBarrier;
    using OpEmitter::emitCompute;
    using OpEmitter::emitLoad;
    using OpEmitter::emitStore;
    using OpEmitter::emitStreamCfg;
    using OpEmitter::emitStreamEnd;
    using OpEmitter::emitStreamLoad;
    using OpEmitter::emitStreamStep;
    using OpEmitter::pos;
};

} // namespace

TEST(OpEmitter, PositionsStartAtOneAndIncrement)
{
    Probe p;
    std::vector<Op> out;
    EXPECT_EQ(p.pos(), 1u);
    uint64_t a = p.emitCompute(out, OpKind::IntAlu);
    uint64_t b = p.emitCompute(out, OpKind::IntAlu);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(out.size(), 2u);
}

TEST(OpEmitter, DependencesAreRelativeBackReferences)
{
    Probe p;
    std::vector<Op> out;
    uint64_t a = p.emitLoad(out, 0x100, 4, 1);
    uint64_t b = p.emitLoad(out, 0x200, 4, 2);
    p.emitCompute(out, OpKind::FpAlu, a, b);
    const Op &add = out.back();
    EXPECT_EQ(add.numSrcs, 2);
    EXPECT_EQ(add.srcs[0], 2); // a is 2 back
    EXPECT_EQ(add.srcs[1], 1); // b is 1 back
}

TEST(OpEmitter, ZeroDependenceIsIgnored)
{
    Probe p;
    std::vector<Op> out;
    p.emitCompute(out, OpKind::IntAlu, 0, 0, 0);
    EXPECT_EQ(out.back().numSrcs, 0);
}

TEST(OpEmitter, FarDependencesAreDropped)
{
    Probe p;
    std::vector<Op> out;
    uint64_t first = p.emitCompute(out, OpKind::IntAlu);
    for (int i = 0; i < 70000; ++i)
        p.emitCompute(out, OpKind::IntAlu);
    p.emitCompute(out, OpKind::IntAlu, first);
    // Beyond the 16-bit window the dependence is dropped, not wrapped.
    EXPECT_EQ(out.back().numSrcs, 0);
}

TEST(OpEmitter, StreamCfgRegistersGroups)
{
    Probe p;
    std::vector<Op> out;
    StreamConfig a;
    a.sid = 0;
    StreamConfig b;
    b.sid = 1;
    p.emitStreamCfg(out, {a, b});
    p.emitStreamCfg(out, {a});
    EXPECT_EQ(out[0].kind, OpKind::StreamCfg);
    EXPECT_EQ(out[0].cfgIdx, 0);
    EXPECT_EQ(out[1].cfgIdx, 1);
    EXPECT_EQ(p.streamConfigGroup(0).size(), 2u);
    EXPECT_EQ(p.streamConfigGroup(1).size(), 1u);
}

TEST(OpEmitter, StreamOpsCarrySidAndElems)
{
    Probe p;
    std::vector<Op> out;
    p.emitStreamLoad(out, 3, 16, 64);
    p.emitStreamStep(out, 3, 16);
    p.emitStreamEnd(out, 3);
    EXPECT_EQ(out[0].kind, OpKind::StreamLoad);
    EXPECT_EQ(out[0].sid, 3);
    EXPECT_EQ(out[0].elems, 16);
    EXPECT_EQ(out[0].size, 64);
    EXPECT_EQ(out[1].kind, OpKind::StreamStep);
    EXPECT_EQ(out[2].kind, OpKind::StreamEnd);
}

TEST(OpKindHelpers, Classification)
{
    EXPECT_TRUE(isMemOp(OpKind::Load));
    EXPECT_TRUE(isMemOp(OpKind::StreamStore));
    EXPECT_FALSE(isMemOp(OpKind::IntAlu));
    EXPECT_TRUE(isStreamOp(OpKind::StreamCfg));
    EXPECT_FALSE(isStreamOp(OpKind::Barrier));
    EXPECT_EQ(fuClassOf(OpKind::IntDiv), FuClass::IntMultDiv);
    EXPECT_EQ(fuClassOf(OpKind::Load), FuClass::Mem);
    EXPECT_EQ(opLatency(OpKind::FpDiv), 12u);
    EXPECT_EQ(opLatency(OpKind::IntAlu), 1u);
}
