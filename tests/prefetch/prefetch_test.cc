/**
 * @file
 * Prefetcher tests: stride detection/degree, Bingo footprint learning
 * and replay, and bulk request grouping.
 */

#include <gtest/gtest.h>

#include "common/test_fabric.hh"
#include "prefetch/bingo.hh"
#include "prefetch/stride.hh"

using namespace sf;
using namespace sf::test;

namespace {

mem::PrefetchObserverIf::DemandInfo
info(Addr pa, uint32_t pc)
{
    return {pa, pa, pc, false, true, true};
}

} // namespace

TEST(Stride, DetectsUnitLineStrideAndIssuesDegree)
{
    TestFabric f;
    prefetch::StrideConfig cfg;
    cfg.degree = 8;
    prefetch::StridePrefetcher pf(f.priv(0), cfg);
    Addr base = 0x10000;
    for (int i = 0; i < 4; ++i)
        pf.observe(info(base + static_cast<Addr>(i) * 64, 42));
    f.drain();
    EXPECT_GT(pf.issued.value(), 0u);
    // Degree-8 line-stride: 8 distinct lines per trained access.
    EXPECT_LE(pf.issued.value(), 8u * 2);
    EXPECT_GT(f.priv(0).stats().prefetchesIssued.value(), 0u);
}

TEST(Stride, IgnoresRandomAddresses)
{
    TestFabric f;
    prefetch::StridePrefetcher pf(f.priv(0), prefetch::StrideConfig{});
    Rng rng(1);
    for (int i = 0; i < 50; ++i)
        pf.observe(info(rng.next() & 0xfffffc0, 42));
    f.drain();
    EXPECT_EQ(pf.issued.value(), 0u);
}

TEST(Stride, TracksNegativeStride)
{
    TestFabric f;
    prefetch::StridePrefetcher pf(f.priv(0), prefetch::StrideConfig{});
    Addr base = 0x100000;
    for (int i = 0; i < 6; ++i)
        pf.observe(info(base - static_cast<Addr>(i) * 64, 9));
    f.drain();
    EXPECT_GT(pf.issued.value(), 0u);
}

TEST(Stride, PerPcTables)
{
    TestFabric f;
    prefetch::StridePrefetcher pf(f.priv(0), prefetch::StrideConfig{});
    // Interleave two PCs with different strides; both should train.
    for (int i = 0; i < 8; ++i) {
        pf.observe(info(0x10000 + static_cast<Addr>(i) * 64, 1));
        pf.observe(info(0x80000 + static_cast<Addr>(i) * 256, 2));
    }
    f.drain();
    EXPECT_GT(pf.issued.value(), 8u);
}

TEST(Stride, SubLineStridesRunAheadAtLineGranularity)
{
    TestFabric f;
    prefetch::StrideConfig cfg;
    cfg.degree = 8;
    prefetch::StridePrefetcher pf(f.priv(0), cfg);
    // 4B stride: the run-ahead distance must still be `degree` LINES,
    // not degree*4 bytes (a fraction of one line).
    for (int i = 0; i < 32; ++i)
        pf.observe(info(0x20000 + static_cast<Addr>(i) * 4, 5));
    f.drain();
    // Each trained access issues up to `degree` distinct-line targets.
    EXPECT_GT(pf.issued.value(), 32u * 2);
    EXPECT_LE(pf.issued.value(), 32u * 8);
    // The L1 received real line prefetches well beyond the demand foot.
    EXPECT_GT(f.priv(0).stats().prefetchesIssued.value(), 8u);
}

TEST(Bingo, LearnsFootprintAndReplaysIt)
{
    TestFabric f;
    prefetch::BingoConfig cfg;
    cfg.activeRegions = 2; // force quick generation turnover
    prefetch::BingoPrefetcher pf(f.priv(0), cfg);

    // Region A: touch lines {0, 3, 5} repeatedly with trigger pc 7.
    auto touch_region = [&](Addr region) {
        pf.observe(info(region + 0 * 64, 7));
        pf.observe(info(region + 3 * 64, 8));
        pf.observe(info(region + 5 * 64, 9));
    };
    // Several regions to train the short event (pc+offset), and force
    // retirement by exceeding activeRegions.
    for (int r = 0; r < 8; ++r)
        touch_region(0x100000 + static_cast<Addr>(r) * 2048);
    f.drain();
    // Later regions trigger a replay of the learned footprint.
    EXPECT_GT(pf.issued.value(), 0u);
    EXPECT_GT(pf.shortHits.value() + pf.longHits.value(), 0u);
}

TEST(Bingo, NoPredictionNoPrefetch)
{
    TestFabric f;
    prefetch::BingoPrefetcher pf(f.priv(0), prefetch::BingoConfig{});
    pf.observe(info(0x40000, 3));
    f.drain();
    EXPECT_EQ(pf.issued.value(), 0u);
}

TEST(Bulk, GroupsConsecutiveL2Prefetches)
{
    // Same prefetch pattern with and without bulk grouping: bulk must
    // inject fewer request packets for the same number of prefetches.
    auto run_once = [](bool bulk) {
        TestFabric::Options opt;
        opt.interleave = 1024; // bulk needs >64B interleaving
        TestFabric f(opt);
        f.priv(0).setBulkPrefetch(bulk);
        prefetch::StrideConfig cfg;
        cfg.degree = 16;
        cfg.fillLevel = 2;
        prefetch::StridePrefetcher pf(f.priv(0), cfg);
        Addr base = f.as().translate(f.as().alloc(1 << 20));
        for (int i = 0; i < 8; ++i)
            pf.observe(info(base + static_cast<Addr>(i) * 64, 3));
        f.drain();
        return std::pair<uint64_t, uint64_t>(
            f.mesh().traffic().packets[0],
            f.priv(0).stats().prefetchesIssued.value());
    };
    auto [pkts_plain, pf_plain] = run_once(false);
    auto [pkts_bulk, pf_bulk] = run_once(true);
    EXPECT_EQ(pf_plain, pf_bulk);
    EXPECT_LT(pkts_bulk, pkts_plain);
}

TEST(Prefetch, UsefulPrefetchCountsOnDemandHit)
{
    TestFabric f;
    prefetch::StrideConfig cfg;
    cfg.degree = 4;
    prefetch::StridePrefetcher pf(f.priv(0), cfg);
    f.priv(0).setPrefetchers(&pf, nullptr);

    Addr v = f.as().alloc(1 << 16);
    int done = 0;
    for (int i = 0; i < 40; ++i) {
        f.demand(0, v + static_cast<Addr>(i) * 64, false, &done);
        f.drain();
    }
    EXPECT_EQ(done, 40);
    EXPECT_GT(f.priv(0).stats().prefetchesUseful.value(), 0u);
}
