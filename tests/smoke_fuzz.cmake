# Fuzz-regression smoke: replay the fixed seed corpus through the
# differential config matrix ({io,ooo} x {stride-prefetch, no-float,
# float, float+confluence}), asserting (a) every config agrees with
# the functional reference (exit 0), (b) the outcome log is
# byte-identical across invocations (the fuzzer is deterministic),
# and (c) an injected stale-GetU protocol bug is caught with the
# distinct verify exit code 67.
#
# Invoked by ctest as:
#   cmake -DFUZZ=<exe> -DCORPUS=<seeds.txt> -DOUT_DIR=<dir>
#         -P smoke_fuzz.cmake

if(NOT FUZZ OR NOT CORPUS OR NOT OUT_DIR)
    message(FATAL_ERROR "FUZZ, CORPUS and OUT_DIR must be set")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run 1 2)
    execute_process(
        COMMAND "${FUZZ}" "--seed-file=${CORPUS}"
                "--log=${OUT_DIR}/run${run}.log"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fuzz corpus replay ${run} failed rc=${rc}: "
                            "${out}\n${err}")
    endif()
endforeach()

# Determinism contract: byte identity of the outcome logs.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/run1.log" "${OUT_DIR}/run2.log"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "fuzz outcome logs differ between identical "
                        "invocations: the fuzzer is nondeterministic")
endif()

# Every corpus point must be present and agree with the reference.
file(STRINGS "${OUT_DIR}/run1.log" lines)
list(LENGTH lines n_lines)
if(n_lines LESS 20)
    message(FATAL_ERROR "fuzz log has only ${n_lines} lines")
endif()
foreach(line ${lines})
    if(NOT line MATCHES "status=ok")
        message(FATAL_ERROR "fuzz log line without status=ok: ${line}")
    endif()
endforeach()

# Negative: the stale-GetU injection must be caught with exit 67.
# Seed 6 generates a cross-tile handoff phase that exposes it.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SF_VERIFY_BUG=stale-getu
            "${FUZZ}" --seeds=6:7
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 67)
    message(FATAL_ERROR "expected verify exit 67 under stale-getu, "
                        "got rc=${rc}: ${err}")
endif()
if(NOT err MATCHES "verify divergence")
    message(FATAL_ERROR "exit 67 without a divergence diagnostic: ${err}")
endif()
if(NOT err MATCHES "golden:")
    message(FATAL_ERROR "divergence diagnostic missing the golden/"
                        "observed byte dump: ${err}")
endif()

message(STATUS "fuzz regression corpus passed (${n_lines} points, "
               "deterministic, injection caught)")
