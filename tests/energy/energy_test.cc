/** @file Unit tests for the energy / area model. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace sf::energy;

namespace {

EnergyEvents
baseEvents()
{
    EnergyEvents e;
    e.intOps = 1000;
    e.fpOps = 500;
    e.memOps = 600;
    e.l1Accesses = 800;
    e.l2Accesses = 300;
    e.l3Accesses = 100;
    e.dramLines = 50;
    e.flitHops = 2000;
    e.cycles = 10000;
    e.numTiles = 16;
    e.coreLabel = "OOO4";
    return e;
}

} // namespace

TEST(Energy, TotalIsSumOfComponents)
{
    auto b = computeEnergy(baseEvents());
    EXPECT_NEAR(b.total(),
                b.core + b.caches + b.noc + b.dram + b.streamEngines +
                    b.staticLeakage,
                1e-9);
    EXPECT_GT(b.total(), 0.0);
}

TEST(Energy, MoreTrafficMoreNocEnergy)
{
    auto e1 = baseEvents();
    auto e2 = baseEvents();
    e2.flitHops *= 2;
    EXPECT_GT(computeEnergy(e2).noc, computeEnergy(e1).noc);
    EXPECT_EQ(computeEnergy(e2).core, computeEnergy(e1).core);
}

TEST(Energy, DramDominatesPerEvent)
{
    EnergyParams p;
    EXPECT_GT(p.dramLine, p.l3Access);
    EXPECT_GT(p.l3Access, p.l2Access);
    EXPECT_GT(p.l2Access, p.l1Access);
}

TEST(Energy, CoreClassOrdering)
{
    auto io = baseEvents();
    io.coreLabel = "IO4";
    auto o4 = baseEvents();
    o4.coreLabel = "OOO4";
    auto o8 = baseEvents();
    o8.coreLabel = "OOO8";
    // Same work costs more on wider OOO cores (dynamic + static).
    EXPECT_LT(computeEnergy(io).total(), computeEnergy(o4).total());
    EXPECT_LT(computeEnergy(o4).total(), computeEnergy(o8).total());
}

TEST(Energy, StaticScalesWithTimeAndTiles)
{
    auto e1 = baseEvents();
    auto e2 = baseEvents();
    e2.cycles *= 3;
    EXPECT_NEAR(computeEnergy(e2).staticLeakage,
                3 * computeEnergy(e1).staticLeakage, 1e-6);
    auto e3 = baseEvents();
    e3.numTiles *= 4;
    EXPECT_NEAR(computeEnergy(e3).staticLeakage,
                4 * computeEnergy(e1).staticLeakage, 1e-6);
}

TEST(Energy, StreamHardwareAddsStaticPower)
{
    auto without = baseEvents();
    auto with = baseEvents();
    with.streamHardware = true;
    EXPECT_GT(computeEnergy(with).staticLeakage,
              computeEnergy(without).staticLeakage);
}

TEST(Area, MatchesPaperSection7A)
{
    // §VII-A: SE_L3 config storage 48kB = 0.11mm^2, TLB 0.04mm^2,
    // ~4.5% of an L3 bank; SE_L2 adds 0.09 + 0.05 = 0.14mm^2 on a
    // 1.85mm^2 L2 (~9% with the tag extension).
    EXPECT_NEAR(AreaModel::seL3ConfigArea(), 0.11, 0.01);
    double l3_overhead =
        (AreaModel::seL3ConfigArea() + AreaModel::seL3TlbArea()) /
        AreaModel::l3BankArea();
    EXPECT_NEAR(l3_overhead, 0.045, 0.005);
    double l2_overhead = (AreaModel::seL2BufferArea() +
                          AreaModel::seL2ConfigArea() + 0.02) /
                         AreaModel::l2Area();
    EXPECT_NEAR(l2_overhead, 0.09, 0.02);
}
