/**
 * @file
 * Core model tests: in-order vs out-of-order scheduling, dependences,
 * LSQ reservation, store buffer, and barriers, using synthetic op
 * sources over the bare memory fabric.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/test_fabric.hh"
#include "cpu/core.hh"
#include "isa/op_source.hh"

using namespace sf;
using namespace sf::test;

namespace {

/** Op source serving a pre-built vector of ops. */
class FixedSource : public isa::OpEmitter
{
  public:
    std::vector<isa::Op> ops;
    bool served = false;

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        if (served)
            return 0;
        served = true;
        out.insert(out.end(), ops.begin(), ops.end());
        return ops.size();
    }

    using isa::OpEmitter::emitBarrier;
    using isa::OpEmitter::emitCompute;
    using isa::OpEmitter::emitLoad;
    using isa::OpEmitter::emitStore;
};

struct CoreHarness
{
    explicit CoreHarness(const cpu::CoreConfig &cfg,
                         TestFabric::Options fopt = TestFabric::Options{})
        : fabric(fopt),
          tlb(64, 8, 2048, 16, 8, 80),
          source(std::make_unique<FixedSource>())
    {
        core = std::make_unique<cpu::Core>(
            "core0", fabric.eq(), 0, cfg, fabric.priv(0), tlb,
            fabric.as(), nullptr, source.get());
    }

    Tick
    run()
    {
        core->start();
        fabric.drain();
        EXPECT_TRUE(core->done());
        return core->stats().doneTick;
    }

    TestFabric fabric;
    mem::TlbHierarchy tlb;
    std::unique_ptr<FixedSource> source;
    std::unique_ptr<cpu::Core> core;
};

} // namespace

TEST(Core, ExecutesComputeChain)
{
    CoreHarness h(cpu::CoreConfig::ooo4());
    std::vector<isa::Op> &ops = h.source->ops;
    uint64_t prev = 0;
    for (int i = 0; i < 100; ++i)
        prev = h.source->emitCompute(ops, isa::OpKind::IntAlu, prev);
    Tick t = h.run();
    EXPECT_EQ(h.core->stats().committedOps.value(), 100u);
    // A fully serial 1-cycle chain takes at least 100 cycles.
    EXPECT_GE(t, 100u);
}

TEST(Core, IndependentOpsUseFullWidth)
{
    CoreHarness h(cpu::CoreConfig::ooo4());
    std::vector<isa::Op> &ops = h.source->ops;
    for (int i = 0; i < 400; ++i)
        h.source->emitCompute(ops, isa::OpKind::IntAlu);
    Tick serial_bound = 400;
    Tick t = h.run();
    // 4-wide: should take roughly 100 cycles + pipeline overheads,
    // far below serial execution.
    EXPECT_LT(t, serial_bound / 2);
}

TEST(Core, DivLatencyAndStructuralHazard)
{
    CoreHarness h(cpu::CoreConfig::ooo4());
    std::vector<isa::Op> &ops = h.source->ops;
    // 8 independent divides on 2 non-pipelined dividers: >= 4 waves of
    // 12 cycles.
    for (int i = 0; i < 8; ++i)
        h.source->emitCompute(ops, isa::OpKind::IntDiv);
    Tick t = h.run();
    EXPECT_GE(t, 4u * 12);
}

TEST(Core, OooOverlapsIndependentLoadMisses)
{
    cpu::CoreConfig ooo = cpu::CoreConfig::ooo4();
    CoreHarness h(ooo);
    Addr buf = h.fabric.as().alloc(1 << 20);
    std::vector<isa::Op> &ops = h.source->ops;
    // 16 independent loads to distinct lines.
    for (int i = 0; i < 16; ++i)
        h.source->emitLoad(ops, buf + static_cast<Addr>(i) * 4096, 4,
                           100 + i);
    Tick t_ooo = h.run();

    // Serial version: each load depends on the previous one.
    CoreHarness hs(ooo);
    Addr buf2 = hs.fabric.as().alloc(1 << 20);
    std::vector<isa::Op> &ops2 = hs.source->ops;
    uint64_t prev = 0;
    for (int i = 0; i < 16; ++i) {
        prev = hs.source->emitLoad(ops2,
                                   buf2 + static_cast<Addr>(i) * 4096, 4,
                                   100 + i, prev);
    }
    Tick t_serial = hs.run();
    EXPECT_LT(t_ooo * 3, t_serial);
}

TEST(Core, InOrderStallsOnUseNotOnLoad)
{
    cpu::CoreConfig io = cpu::CoreConfig::io4();
    // Load then many independent ALU ops then the use: the in-order
    // core should overlap the ALU work with the miss.
    CoreHarness h(io);
    Addr buf = h.fabric.as().alloc(4096);
    std::vector<isa::Op> &ops = h.source->ops;
    uint64_t ld = h.source->emitLoad(ops, buf, 4, 1);
    for (int i = 0; i < 60; ++i)
        h.source->emitCompute(ops, isa::OpKind::IntAlu);
    h.source->emitCompute(ops, isa::OpKind::IntAlu, ld);
    Tick t_overlap = h.run();

    // Use immediately after the load: the stall is exposed.
    CoreHarness h2(io);
    Addr buf2 = h2.fabric.as().alloc(4096);
    std::vector<isa::Op> &ops2 = h2.source->ops;
    uint64_t ld2 = h2.source->emitLoad(ops2, buf2, 4, 1);
    h2.source->emitCompute(ops2, isa::OpKind::IntAlu, ld2);
    for (int i = 0; i < 60; ++i)
        h2.source->emitCompute(ops2, isa::OpKind::IntAlu);
    Tick t_exposed = h2.run();

    // Both pay the miss once, but the overlap version hides the ALU
    // work inside it; they should be within a few cycles of each
    // other, and crucially the overlap version must not pay twice.
    EXPECT_LE(t_overlap, t_exposed + 8);
}

TEST(Core, InOrderSlowerThanOooOnMixedCode)
{
    auto build = [](FixedSource &src, TestFabric &f) {
        Addr buf = f.as().alloc(1 << 20);
        std::vector<isa::Op> &ops = src.ops;
        uint64_t prev = 0;
        for (int i = 0; i < 64; ++i) {
            uint64_t ld = src.emitLoad(
                ops, buf + static_cast<Addr>(i * 17 % 64) * 4096, 4, 7);
            prev = src.emitCompute(ops, isa::OpKind::FpAlu, ld, prev);
        }
    };
    CoreHarness io(cpu::CoreConfig::io4());
    build(*io.source, io.fabric);
    Tick t_io = io.run();

    CoreHarness ooo(cpu::CoreConfig::ooo8());
    build(*ooo.source, ooo.fabric);
    Tick t_ooo = ooo.run();

    EXPECT_LT(t_ooo, t_io);
}

TEST(Core, StoresDrainThroughStoreBuffer)
{
    CoreHarness h(cpu::CoreConfig::ooo4());
    Addr buf = h.fabric.as().alloc(64 * 1024);
    std::vector<isa::Op> &ops = h.source->ops;
    for (int i = 0; i < 100; ++i)
        h.source->emitStore(ops, buf + static_cast<Addr>(i) * 64, 4, 9);
    h.run();
    EXPECT_EQ(h.core->stats().committedStores.value(), 100u);
    // All stores actually reached the cache.
    EXPECT_GT(h.fabric.priv(0).stats().l2Misses.value(), 0u);
}

TEST(Core, OlderLoadCannotBeStarvedByYoungerOnes)
{
    // Regression test: LQ entries are reserved in program order, so a
    // dependent head load must not be starved by a flood of younger
    // independent loads (the b+tree deadlock).
    CoreHarness h(cpu::CoreConfig::ooo8());
    Addr buf = h.fabric.as().alloc(1 << 22);
    std::vector<isa::Op> &ops = h.source->ops;
    uint64_t prev = 0;
    for (int q = 0; q < 40; ++q) {
        // A serial pointer chase...
        for (int l = 0; l < 4; ++l) {
            prev = h.source->emitLoad(
                ops, buf + static_cast<Addr>((q * 4 + l) * 131) % (1 << 22),
                4, 11, prev);
        }
        // ...followed by many independent loads.
        for (int l = 0; l < 8; ++l) {
            h.source->emitLoad(
                ops, buf + static_cast<Addr>((q * 8 + l) * 4096) % (1 << 22),
                4, 12);
        }
    }
    h.run();
    EXPECT_TRUE(h.core->done());
}

TEST(Core, BarrierSynchronizesTwoCores)
{
    TestFabric f;
    mem::TlbHierarchy tlb0(64, 8, 2048, 16, 8, 80);
    mem::TlbHierarchy tlb1(64, 8, 2048, 16, 8, 80);
    cpu::BarrierController barrier(f.eq(), 2);

    auto s0 = std::make_unique<FixedSource>();
    auto s1 = std::make_unique<FixedSource>();
    // Core 0: short work then barrier. Core 1: long work then barrier.
    s0->emitCompute(s0->ops, isa::OpKind::IntAlu);
    s0->emitBarrier(s0->ops);
    uint64_t prev = 0;
    for (int i = 0; i < 500; ++i)
        prev = s1->emitCompute(s1->ops, isa::OpKind::IntAlu, prev);
    s1->emitBarrier(s1->ops);

    cpu::Core c0("c0", f.eq(), 0, cpu::CoreConfig::ooo4(), f.priv(0),
                 tlb0, f.as(), &barrier, s0.get());
    cpu::Core c1("c1", f.eq(), 1, cpu::CoreConfig::ooo4(), f.priv(1),
                 tlb1, f.as(), &barrier, s1.get());
    c0.start();
    c1.start();
    f.drain();
    ASSERT_TRUE(c0.done());
    ASSERT_TRUE(c1.done());
    // The fast core waits for the slow one: done ticks nearly equal.
    Tick d0 = c0.stats().doneTick;
    Tick d1 = c1.stats().doneTick;
    EXPECT_LT(d0 > d1 ? d0 - d1 : d1 - d0, 50u);
    EXPECT_GE(d0, 125u); // must have waited for ~500 serial ALUs
}

TEST(Core, WideVectorAccesssSplitAcrossLines)
{
    CoreHarness h(cpu::CoreConfig::ooo4());
    Addr buf = h.fabric.as().alloc(1 << 16);
    std::vector<isa::Op> &ops = h.source->ops;
    // 64B loads at +32 offsets straddle line boundaries.
    for (int i = 0; i < 32; ++i) {
        h.source->emitLoad(ops, buf + 32 + static_cast<Addr>(i) * 64,
                           64, 5);
    }
    h.run();
    EXPECT_TRUE(h.core->done());
    EXPECT_EQ(h.core->stats().committedLoads.value(), 32u);
}
