/**
 * @file
 * Additional core-model timing tests: issue-width ceilings, divider
 * structural hazards, SIMD memory splitting, SB pressure, and the
 * IO4-vs-OOO latency-hiding relations Fig. 13/19 rest on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/test_fabric.hh"
#include "cpu/core.hh"
#include "isa/op_source.hh"

using namespace sf;
using namespace sf::test;

namespace {

class FixedSource : public isa::OpEmitter
{
  public:
    std::vector<isa::Op> ops;
    bool served = false;

    size_t
    refill(std::vector<isa::Op> &out) override
    {
        if (served)
            return 0;
        served = true;
        out.insert(out.end(), ops.begin(), ops.end());
        return ops.size();
    }

    using isa::OpEmitter::emitCompute;
    using isa::OpEmitter::emitLoad;
    using isa::OpEmitter::emitStore;
};

struct CoreHarness
{
    explicit CoreHarness(const cpu::CoreConfig &cfg)
        : tlb(64, 8, 2048, 16, 8, 80),
          source(std::make_unique<FixedSource>())
    {
        core = std::make_unique<cpu::Core>(
            "core0", fabric.eq(), 0, cfg, fabric.priv(0), tlb,
            fabric.as(), nullptr, source.get());
    }

    Tick
    run()
    {
        core->start();
        fabric.drain();
        EXPECT_TRUE(core->done());
        return core->stats().doneTick;
    }

    TestFabric fabric;
    mem::TlbHierarchy tlb;
    std::unique_ptr<FixedSource> source;
    std::unique_ptr<cpu::Core> core;
};

} // namespace

class WidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WidthSweep, ThroughputTracksIssueWidth)
{
    int width = GetParam();
    cpu::CoreConfig cfg = cpu::CoreConfig::ooo4();
    cfg.width = width;
    cfg.numIntAlu = width;
    cfg.iqSize = 8 * width;
    CoreHarness h(cfg);
    for (int i = 0; i < 1600; ++i)
        h.source->emitCompute(h.source->ops, isa::OpKind::IntAlu);
    Tick t = h.run();
    double ipc = 1600.0 / double(t);
    EXPECT_GT(ipc, width * 0.7);
    EXPECT_LE(ipc, width + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep, ::testing::Values(1, 2, 4, 8));

TEST(CoreTiming, FpDivIsNonPipelined)
{
    CoreHarness h(cpu::CoreConfig::ooo4()); // 2 FP dividers
    for (int i = 0; i < 16; ++i)
        h.source->emitCompute(h.source->ops, isa::OpKind::FpDiv);
    Tick t = h.run();
    // 16 divides / 2 units, 12 cycles each, non-pipelined: >= 96.
    EXPECT_GE(t, 96u);
}

TEST(CoreTiming, MulIsPipelined)
{
    CoreHarness h(cpu::CoreConfig::ooo4()); // 2 mult units, 3-cycle
    for (int i = 0; i < 64; ++i)
        h.source->emitCompute(h.source->ops, isa::OpKind::IntMult);
    Tick t = h.run();
    // Pipelined: ~2 per cycle, far below 64 * 3 serial cycles.
    EXPECT_LT(t, 80u);
}

TEST(CoreTiming, StoreBurstThrottledByStoreBuffer)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::io4(); // SB = 10
    CoreHarness h(cfg);
    Addr buf = h.fabric.as().alloc(1 << 20);
    // 64 stores to distinct lines: each L2 miss takes ~100+ cycles and
    // the SB drains one at a time.
    for (int i = 0; i < 64; ++i) {
        h.source->emitStore(h.source->ops,
                            buf + static_cast<Addr>(i) * 4096, 4, 3);
    }
    Tick t = h.run();
    EXPECT_GT(t, 200u); // far from 64/4-wide = 16 cycles
    EXPECT_GT(h.core->stats().sbFullStalls.value(), 0u);
}

TEST(CoreTiming, L1HitLoadsRetireAtFullWidth)
{
    CoreHarness h(cpu::CoreConfig::ooo8());
    Addr buf = h.fabric.as().alloc(4096);
    // One cold miss, then thousands of hits: the steady state must
    // approach the 4 memory ports per cycle.
    for (int i = 0; i < 4000; ++i)
        h.source->emitLoad(h.source->ops, buf, 4, 21);
    Tick t = h.run();
    double ipc = 4000.0 / double(t);
    EXPECT_GT(ipc, 2.5);
    EXPECT_LE(ipc, 4.01);
}

TEST(CoreTiming, IoCoreExposesSerialMissLatency)
{
    auto build = [](FixedSource &src, TestFabric &f, int n) {
        Addr buf = f.as().alloc(1 << 22);
        uint64_t prev = 0;
        for (int i = 0; i < n; ++i) {
            prev = src.emitLoad(src.ops,
                                buf + static_cast<Addr>(i) * 4096, 4, 7,
                                prev);
            src.emitCompute(src.ops, isa::OpKind::IntAlu, prev);
        }
    };
    CoreHarness io(cpu::CoreConfig::io4());
    build(*io.source, io.fabric, 32);
    Tick t = io.run();
    // 32 serial misses, each >= ~100 cycles end to end.
    EXPECT_GT(t, 32u * 80);
}

TEST(CoreTiming, MemPortsLimitParallelHits)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::ooo4();
    cfg.memPorts = 1;
    CoreHarness h(cfg);
    Addr buf = h.fabric.as().alloc(4096);
    for (int i = 0; i < 200; ++i)
        h.source->emitLoad(h.source->ops, buf, 4, 9);
    Tick t1 = h.run();

    cpu::CoreConfig cfg2 = cpu::CoreConfig::ooo4();
    cfg2.memPorts = 4;
    CoreHarness h2(cfg2);
    Addr buf2 = h2.fabric.as().alloc(4096);
    for (int i = 0; i < 200; ++i)
        h2.source->emitLoad(h2.source->ops, buf2, 4, 9);
    Tick t4 = h2.run();
    // The single-port core pays ~1 extra cycle per load in steady
    // state; the exact ratio is diluted by the shared cold miss.
    EXPECT_GT(t1, t4 * 5 / 4);
}
