# Perf + determinism regression gate on the parallel sweep runner
# (the nightly / `perf`-label CI job).
#
# Runs the canonical gate grid serially and with -j 4, then asserts:
#   1. the -j 1 and -j 4 deterministic reports are byte-identical
#      (order-independent merge);
#   2. the deterministic report is byte-identical to the checked-in
#      baseline (simulated behavior did not silently change — a
#      behavioral change must refresh bench/baselines/ in the same
#      commit, which makes it reviewable);
#   3. sweep wall-clock did not regress more than TOLERANCE_PCT
#      against the baseline's recorded wall-clock (skippable via
#      -DSTRICT_WALL=OFF when baseline and runner hardware differ);
#   4. optionally, -j 4 achieves MIN_SPEEDUP_X100/100x over serial.
#
# Invoked as:
#   cmake -DSWEEP=<exe> -DBASELINE_DIR=<dir> -DOUT_DIR=<dir>
#         [-DTOLERANCE_PCT=15] [-DSTRICT_WALL=ON]
#         [-DMIN_SPEEDUP_X100=0] -P sweep_gate.cmake
#
# Refreshing the baseline after an intentional behavior change:
#   sweep <canonical grid below> -j 4 --out=<tmp>
#   cp <tmp>/BENCH_sweep.det.json <tmp>/BENCH_sweep.json bench/baselines/

if(NOT SWEEP OR NOT BASELINE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "SWEEP, BASELINE_DIR and OUT_DIR must be set")
endif()
if(NOT DEFINED TOLERANCE_PCT)
    set(TOLERANCE_PCT 15)
endif()
if(NOT DEFINED STRICT_WALL)
    set(STRICT_WALL ON)
endif()
if(NOT DEFINED MIN_SPEEDUP_X100)
    set(MIN_SPEEDUP_X100 0)
endif()

# The canonical gate grid. Must match the grid the checked-in baseline
# was produced with: 2x2 mesh, smoke scale, 32 points.
set(grid
    --cores=2x2 --scale=0.02 --workloads=mv,bfs,pathfinder,hotspot
    --cpus=io4,ooo4 --machines=Base,Stride,SS,SF)

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(jobs 1 4)
    execute_process(
        COMMAND "${SWEEP}" ${grid} -j ${jobs}
                "--out=${OUT_DIR}/j${jobs}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep -j ${jobs} failed (rc=${rc}): "
                            "${out}\n${err}")
    endif()
endforeach()

# 1. Order independence.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/j1/BENCH_sweep.det.json"
            "${OUT_DIR}/j4/BENCH_sweep.det.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "determinism gate: -j 1 and -j 4 reports "
                        "differ — the merge is order-dependent")
endif()

# 2. Stability against the checked-in baseline.
set(baseline_det "${BASELINE_DIR}/BENCH_sweep.det.json")
if(NOT EXISTS "${baseline_det}")
    message(FATAL_ERROR "no checked-in baseline at ${baseline_det}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/j4/BENCH_sweep.det.json" "${baseline_det}"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "determinism gate: sweep stats diverge from "
        "${baseline_det}. If the behavior change is intentional, "
        "refresh bench/baselines/ in the same commit (see header).")
endif()
message(STATUS "determinism gate passed: byte-identical to baseline")

# Fixed-point milliseconds from a decimal-seconds string (CMake's
# math() is integer-only; the 1###-1000 trick survives leading zeros).
function(seconds_to_millis val out)
    string(REGEX MATCH "^([0-9]+)(\\.([0-9]*))?$" m "${val}")
    if(NOT m)
        message(FATAL_ERROR "not a duration: '${val}'")
    endif()
    set(frac "${CMAKE_MATCH_3}000")
    string(SUBSTRING "${frac}" 0 3 frac)
    math(EXPR ms "${CMAKE_MATCH_1} * 1000 + (1${frac} - 1000)")
    set(${out} ${ms} PARENT_SCOPE)
endfunction()

file(READ "${OUT_DIR}/j1/BENCH_sweep.json" serial_json)
file(READ "${OUT_DIR}/j4/BENCH_sweep.json" par_json)
string(JSON serial_wall GET "${serial_json}" host wallSeconds)
string(JSON par_wall GET "${par_json}" host wallSeconds)
seconds_to_millis("${serial_wall}" serial_ms)
seconds_to_millis("${par_wall}" par_ms)
if(par_ms GREATER 0)
    math(EXPR speedup_x100 "${serial_ms} * 100 / ${par_ms}")
else()
    set(speedup_x100 0)
endif()
message(STATUS "wall-clock: serial ${serial_wall}s, -j4 ${par_wall}s "
               "(speedup x100 = ${speedup_x100})")

# 3. Wall-clock regression against the baseline.
set(baseline_full "${BASELINE_DIR}/BENCH_sweep.json")
if(EXISTS "${baseline_full}")
    file(READ "${baseline_full}" base_json)
    string(JSON base_wall GET "${base_json}" host wallSeconds)
    seconds_to_millis("${base_wall}" base_ms)
    math(EXPR limit_ms "${base_ms} + ${base_ms} * ${TOLERANCE_PCT} / 100")
    if(par_ms GREATER limit_ms)
        if(STRICT_WALL)
            message(FATAL_ERROR "perf gate: -j4 wall ${par_wall}s "
                "exceeds baseline ${base_wall}s by more than "
                "${TOLERANCE_PCT}% (limit ${limit_ms}ms)")
        else()
            message(WARNING "perf advisory: -j4 wall ${par_wall}s vs "
                "baseline ${base_wall}s (> ${TOLERANCE_PCT}%)")
        endif()
    else()
        message(STATUS "perf gate passed: ${par_ms}ms <= "
                       "limit ${limit_ms}ms")
    endif()
else()
    message(WARNING "no wall-clock baseline at ${baseline_full}; "
                    "perf check skipped")
endif()

# 4. Parallel speedup floor (opt-in).
if(MIN_SPEEDUP_X100 GREATER 0 AND speedup_x100 LESS MIN_SPEEDUP_X100)
    message(FATAL_ERROR "perf gate: -j4 speedup x100 = ${speedup_x100} "
                        "below required ${MIN_SPEEDUP_X100}")
endif()

message(STATUS "sweep gate passed")
