# Crash-safe checkpoint/restore tier (DESIGN.md §4j): across all 12
# workloads x {Stride, SS, SF-Ind, SF},
#   1. a sweep that periodically snapshots must produce a merged
#      report byte-identical to a plain sweep (the boundary hook is
#      purely observational), and
#   2. killing every point right after its first snapshot (the
#      SF_SWEEP_TEST_KILL_AFTER_CKPT hook) must leave retries that
#      restore from the snapshot and still converge to the identical
#      report, and
#   3. SIGKILLing the whole sweep mid-run and re-running with --resume
#      must validate the surviving per-point results by CRC and emit
#      the identical merged report.
# Any byte of divergence is a snapshot-capture or replay bug, never an
# acceptable tolerance.
#
# Invoked by ctest as:
#   cmake -DSWEEP=<exe> -DOUT_DIR=<dir> -P smoke_checkpoint.cmake

if(NOT SWEEP OR NOT OUT_DIR)
    message(FATAL_ERROR "SWEEP and OUT_DIR must be set")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

set(grid
    --cores=2x2 --scale=0.01
    --cpus=io4 --machines=Stride,SS,SF-Ind,SF)

# --- 1. Reference sweep vs checkpointing sweep ----------------------

execute_process(
    COMMAND "${SWEEP}" ${grid} -j 2 "--out=${OUT_DIR}/ref"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference sweep failed (rc=${rc}): "
                        "${out}\n${err}")
endif()

execute_process(
    COMMAND "${SWEEP}" ${grid} -j 2 --checkpoint-every=10000
            "--out=${OUT_DIR}/ckpt"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpointing sweep failed (rc=${rc}): "
                        "${out}\n${err}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/ref/BENCH_sweep.det.json"
            "${OUT_DIR}/ckpt/BENCH_sweep.det.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "checkpointing perturbed the sweep report: "
                        "the snapshot hook must be observation-only")
endif()

file(GLOB snaps "${OUT_DIR}/ckpt/points/*.sfsnap")
list(LENGTH snaps n_snaps)
if(n_snaps LESS 24)
    message(FATAL_ERROR "expected >=24 per-point snapshots, found "
                        "${n_snaps}: the checkpoint interval never "
                        "fired for most points")
endif()

# Every per-point stats.json must match too, not just the merge.
file(GLOB points RELATIVE "${OUT_DIR}/ref"
     "${OUT_DIR}/ref/points/*.stats.json")
list(LENGTH points n_points)
if(n_points LESS 48)
    message(FATAL_ERROR "expected >=48 sweep points (12 workloads x 4 "
                        "machines), found ${n_points}")
endif()
foreach(f ${points})
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${OUT_DIR}/ref/${f}" "${OUT_DIR}/ckpt/${f}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "${f} differs between the plain and the "
                            "checkpointing sweep")
    endif()
endforeach()

message(STATUS "checkpoint smoke 1/3: ${n_points}-point checkpointing "
               "sweep byte-identical (${n_snaps} snapshots)")

# --- 2. Kill every point after its first snapshot -------------------
# Attempt 1 of every point SIGKILLs itself the instant its first
# snapshot lands; the retry must restore from that snapshot and the
# merged report must still byte-match the reference.

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SF_SWEEP_TEST_KILL_AFTER_CKPT=*
            "${SWEEP}" ${grid} -j 2 --checkpoint-every=10000
            "--out=${OUT_DIR}/kill"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "kill-after-checkpoint sweep failed (rc=${rc}): "
                        "${out}\n${err}")
endif()
if(NOT out MATCHES "restarting from")
    message(FATAL_ERROR "no point restored from its snapshot; the "
                        "kill-after-checkpoint hook never engaged:\n"
                        "${out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/ref/BENCH_sweep.det.json"
            "${OUT_DIR}/kill/BENCH_sweep.det.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "restored points diverged from uninterrupted "
                        "runs (kill-after-checkpoint report differs)")
endif()

message(STATUS "checkpoint smoke 2/3: kill-after-checkpoint retries "
               "restored byte-identically")

# --- 3. SIGKILL the whole sweep, then --resume -----------------------
# The parent dies after 5 completed points; the resumed sweep must
# CRC-validate the survivors, re-run the rest (restoring where a
# snapshot exists), and emit the identical merged report.

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SF_SWEEP_TEST_PARENT_KILL_AFTER=5
            "${SWEEP}" ${grid} -j 2 --checkpoint-every=10000
            "--out=${OUT_DIR}/resume"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "sweep survived SF_SWEEP_TEST_PARENT_KILL_AFTER;"
                        " the crash hook never engaged")
endif()
if(EXISTS "${OUT_DIR}/resume/BENCH_sweep.det.json")
    message(FATAL_ERROR "killed sweep still wrote a merged report")
endif()

# Corrupt one surviving result: --resume must detect the CRC mismatch
# and re-run that point instead of trusting it.
file(GLOB oks "${OUT_DIR}/resume/points/*.ok")
list(LENGTH oks n_oks)
if(n_oks LESS 5)
    message(FATAL_ERROR "expected >=5 completed points before the "
                        "parent kill, found ${n_oks}")
endif()
list(GET oks 0 first_ok)
string(REPLACE ".ok" ".stats.json" first_stats "${first_ok}")
file(APPEND "${first_stats}" "x")

execute_process(
    COMMAND "${SWEEP}" ${grid} -j 2 --checkpoint-every=10000 --resume
            "--out=${OUT_DIR}/resume"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed sweep failed (rc=${rc}): "
                        "${out}\n${err}")
endif()
if(NOT out MATCHES "resume skip")
    message(FATAL_ERROR "resume revalidated nothing; expected surviving "
                        "points to be skipped:\n${out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/ref/BENCH_sweep.det.json"
            "${OUT_DIR}/resume/BENCH_sweep.det.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "resumed sweep report differs from the "
                        "uninterrupted reference")
endif()

message(STATUS "checkpoint smoke 3/3: kill -9 + --resume merged report "
               "byte-identical (corrupted survivor re-ran)")
