# Equivalence tier for the tile-parallel engine (DESIGN.md §4i): a
# --threads=4 run must be BYTE-identical to --threads=1 — same
# stats.json, same profile.json, same merged sweep report — across all
# 12 workloads and the stream-machine variants. This is the
# determinism contract the PDES window scheme promises; any divergence
# is an engine bug, never an acceptable tolerance.
#
# Invoked by ctest as:
#   cmake -DSWEEP=<exe> -DQUICKSTART=<exe> -DOUT_DIR=<dir>
#         -P smoke_threads.cmake

if(NOT SWEEP OR NOT QUICKSTART OR NOT OUT_DIR)
    message(FATAL_ERROR "SWEEP, QUICKSTART and OUT_DIR must be set")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# --- 1. Sweep grid: 12 workloads x {Stride, SS, SF-Ind, SF} ---------
# One io4 cpu at small scale keeps the 96-sim grid fast; the machine
# set covers plain prefetching, stream specialization, and both
# floating variants (with and without confluence).

set(grid
    --cores=2x2 --scale=0.01
    --cpus=io4 --machines=Stride,SS,SF-Ind,SF)

foreach(threads 1 4)
    execute_process(
        COMMAND "${SWEEP}" ${grid} "--threads=${threads}" -j 1
                "--out=${OUT_DIR}/t${threads}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep --threads=${threads} failed "
                            "(rc=${rc}): ${out}\n${err}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/t1/BENCH_sweep.det.json"
            "${OUT_DIR}/t4/BENCH_sweep.det.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "BENCH_sweep.det.json differs between "
                        "--threads=1 and --threads=4: the parallel "
                        "engine is not shard-count-invariant")
endif()

# Every per-point stats.json must match too, not just the merge.
file(GLOB points RELATIVE "${OUT_DIR}/t1"
     "${OUT_DIR}/t1/points/*.stats.json")
list(LENGTH points n_points)
if(n_points LESS 48)
    message(FATAL_ERROR "expected >=48 sweep points (12 workloads x 4 "
                        "machines), found ${n_points}")
endif()
foreach(f ${points})
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${OUT_DIR}/t1/${f}" "${OUT_DIR}/t4/${f}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "${f} differs between --threads=1 and "
                            "--threads=4")
    endif()
endforeach()

message(STATUS "threads smoke: ${n_points}-point sweep byte-identical")

# --- 2. Quickstart with the profiler ---------------------------------
# The latency profiler's cross-tile records are the hardest artifact
# to keep shard-count-invariant (they are deferred and merged at the
# window barrier); profile.json must still byte-compare.

foreach(threads 1 4)
    execute_process(
        COMMAND "${QUICKSTART}" pathfinder 0.02 --profile
                "--stats-json=${OUT_DIR}/q${threads}"
                "--threads=${threads}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "quickstart --threads=${threads} failed "
                            "(rc=${rc}): ${out}\n${err}")
    endif()
endforeach()

file(GLOB qfiles RELATIVE "${OUT_DIR}/q1" "${OUT_DIR}/q1/*.json")
list(LENGTH qfiles n_q)
if(n_q LESS 4)
    message(FATAL_ERROR "expected >=4 quickstart artifacts, got ${n_q}")
endif()
foreach(f ${qfiles})
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${OUT_DIR}/q1/${f}" "${OUT_DIR}/q4/${f}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "quickstart artifact ${f} differs between "
                            "--threads=1 and --threads=4")
    endif()
endforeach()

message(STATUS "threads smoke passed: sweep + quickstart artifacts "
               "byte-identical across worker counts")
