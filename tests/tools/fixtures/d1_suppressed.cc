// sflint fixture: D1 suppressed — annotated hash-order iteration.
#include <unordered_map>

struct FxD1Suppressed
{
    std::unordered_map<int, int> fxStats;

    int
    total() const
    {
        int acc = 0;
        // sflint: ordered-ok(commutative sum; order cannot leak)
        for (const auto &kv : fxStats)
            acc += kv.second;
        return acc;
    }
};
