// sflint fixture: E1 positive — raw `new` of an event object.
struct FxRetireEvent
{
    int pad = 0;
};

inline FxRetireEvent *
fxMake()
{
    return new FxRetireEvent;
}
