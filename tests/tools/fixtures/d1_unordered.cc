// sflint fixture: D1 positive — iterating a hash-ordered container.
#include <unordered_map>

struct FxD1Unordered
{
    std::unordered_map<int, int> fxTable;

    int
    sum() const
    {
        int acc = 0;
        for (const auto &kv : fxTable)
            acc += kv.second;
        return acc;
    }
};
