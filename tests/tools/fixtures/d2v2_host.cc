// sflint fixture: D2 v2 negative — host-side reporting code reads
// the wall clock freely; nothing here is reachable from a timed root
// or scheduled as an event handler, so D2 stays silent.
#include <ctime>

inline long
fxWallNow()
{
    return time(nullptr);
}

inline long
fxReportSeconds(long start)
{
    return fxWallNow() - start;
}
