// sflint fixture: C1 negative suppression — an allow() with no
// justification text must not silence the unguarded access.
#include <mutex>

struct FxMeter
{
    int
    fxDrain()
    {
        // sflint: allow(C1)
        return _pending;
    }

    std::mutex _m;
    int _pending SF_GUARDED_BY(_m) = 0;
};
