// sflint fixture: D2 v2 positive — entropy inside a scheduler call's
// argument list (a lambda event handler). The enclosing function is
// not itself timed-reachable; the argument-range check flags it.
#include <cstdlib>

struct FxQ
{
    template <typename F> void scheduleIn(long delay, F fn);
};

inline void
fxArmJitter(FxQ &q)
{
    q.scheduleIn(5, [] { return rand(); });
}
