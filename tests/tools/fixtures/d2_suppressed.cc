// sflint fixture: D2 suppressed — justified environment read.
#include <cstdlib>

inline const char *
fxConfig()
{
    // sflint: allow(D2, fixture: startup-only config read)
    return std::getenv("FX_CONFIG");
}
