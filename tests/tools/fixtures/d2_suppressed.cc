// sflint fixture: D2 suppressed — justified environment read on the
// timed path (fxConfig is scheduled as an event handler, so the
// handler-seed half of the reachability analysis marks it timed).
#include <cstdlib>

inline const char *
fxConfig()
{
    // sflint: allow(D2, fixture: startup-only config read)
    return std::getenv("FX_CONFIG");
}

struct FxQueue
{
    template <typename F> void schedule(long when, F fn);
};

inline void
fxArm(FxQueue &q)
{
    q.schedule(10, [] { fxConfig(); });
}
