// sflint fixture: D2 positive — libc PRNG on the timed path
// (fxRoll is reachable from the timed root TiledSystem::run).
#include <cstdlib>

inline int
fxRoll()
{
    return rand();
}

struct TiledSystem
{
    void run();
};

void
TiledSystem::run()
{
    fxRoll();
}
