// sflint fixture: D2 positive — libc PRNG call outside the allowlist.
#include <cstdlib>

inline int
fxRoll()
{
    return rand();
}
