// sflint fixture: T1 positive — tick arithmetic narrowed to int.
#include <cstdint>

inline int
fxElapsed(uint64_t startTick, uint64_t endTick)
{
    return static_cast<int>(endTick - startTick);
}

inline int
fxLatency(uint64_t opCycles)
{
    int rounded = static_cast<int>(opCycles) / 2;
    return rounded;
}
