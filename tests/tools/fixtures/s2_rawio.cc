// sflint fixture: S2 — raw byte-image copies of whole structs; the
// padding-free primitive idioms below must stay silent.
#include <cstdio>
#include <cstring>
#include <cstdint>

struct FxHeader
{
    uint32_t magic;
    uint64_t length; // 4 padding bytes before this on LP64
};

inline void
fxCopyHeader(FxHeader &dst, const FxHeader &src)
{
    std::memcpy(&dst, &src, sizeof(FxHeader)); // finding: padding
}

inline void
fxWriteHeader(const FxHeader &h, std::FILE *fp)
{
    std::fwrite(&h, sizeof(h), 1, fp); // finding: padding
}

// None of these are findings:
inline uint64_t
fxDoubleBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(uint64_t)); // primitive bit pattern
    return bits;
}

inline void
fxWriteBuf(const uint8_t *buf, size_t n, std::FILE *fp)
{
    std::fwrite(buf, 1, n, fp); // no &obj, no struct sizeof
}
