// sflint fixture: A1 — a suppression naming a rule that does not
// exist is a hard finding, not a silent no-op.
#include <cstdint>

inline uint64_t
fxScale(uint64_t n)
{
    // sflint: allow(D9, fixture: meant D1 but typo'd the id)
    return n * 2;
}
