// sflint fixture: P1 suppressed — justified default arm in an
// otherwise exhaustive switch.

// sflint: exhaustive
enum class FxAckType
{
    Yes,
    No,
};

inline int
fxAck(FxAckType t)
{
    switch (t) {
      case FxAckType::Yes:
        return 1;
      case FxAckType::No:
        return 2;
      // sflint: allow(P1, fixture: belt-and-braces arm kept on purpose)
      default:
        return 0;
    }
}
