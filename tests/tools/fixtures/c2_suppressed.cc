// sflint fixture: C2 suppressed — justified pre-worker access.
struct FxWarm
{
    void
    fxPrefill() SF_BARRIER_ONLY
    {
        // sflint: allow(C2, fixture: runs once before workers start)
        _slots = 8;
    }

    int _slots SF_SHARD_LOCAL = 0;
};
