// sflint fixture: C2 — both shard-affinity directions: barrier code
// touching shard-owned state, and barrier-only code reachable from a
// shard execution context.
struct FxDomains
{
    unsigned long
    fxNext() SF_SHARD_LOCAL
    {
        return _seq++; // silent: shard-local code, shard-local state
    }

    void
    fxMerge() SF_BARRIER_ONLY
    {
        _seq = 0; // C2: shard-local member written from barrier code
    }

    void fxDrain() SF_BARRIER_ONLY;

    void
    fxSlice() SF_SHARD_LOCAL
    {
        fxDrain(); // C2: barrier-only callee reachable from shard code
    }

    unsigned long _seq SF_SHARD_LOCAL = 0;
};
