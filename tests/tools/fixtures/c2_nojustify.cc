// sflint fixture: C2 negative suppression — an allow() with no
// justification text must not silence the affinity violation.
struct FxCold
{
    void
    fxTrim() SF_BARRIER_ONLY
    {
        // sflint: allow(C2)
        _live = 0;
    }

    int _live SF_SHARD_LOCAL = 0;
};
