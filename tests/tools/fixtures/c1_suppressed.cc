// sflint fixture: C1 suppressed — justified lock-free access.
#include <mutex>

struct FxGauge
{
    int
    fxRead() const
    {
        // sflint: allow(C1, fixture: stats path runs with workers stopped)
        return _level;
    }

    std::mutex _m;
    int _level SF_GUARDED_BY(_m) = 0;
};
