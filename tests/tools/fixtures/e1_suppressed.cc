// sflint fixture: E1 suppressed — justified off-arena event.
struct FxDrainEvent
{
    int pad = 0;
};

inline FxDrainEvent *
fxMakeOk()
{
    // sflint: allow(E1, fixture: test scaffolding outside the sim loop)
    return new FxDrainEvent;
}
