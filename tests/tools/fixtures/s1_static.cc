// sflint fixture: S1 — mutable static state at namespace and
// function scope; the exempt shapes below must stay silent.
#include <atomic>
#include <mutex>
#include <vector>

static int fxGlobalCounter = 0; // finding: namespace-scope mutable

inline int
fxMemoized(int v)
{
    static std::vector<int> fxCache; // finding: function-local mutable
    fxCache.push_back(v);
    return static_cast<int>(fxCache.size());
}

// None of these are findings:
static const int fxLimit = 8;
static constexpr double fxRatio = 0.5;
static thread_local int fxPerThread = 0;
static std::atomic<int> fxHits{0};
static std::mutex fxMu;

static int
fxHelper(int a)
{
    return a + fxLimit + fxPerThread + fxHits.load() + fxGlobalCounter;
}

struct FxFactory
{
    static FxFactory make();
    int payload = 0;
};

int
fxUse()
{
    std::scoped_lock lk(fxMu);
    return fxHelper(FxFactory::make().payload);
}
