// sflint fixture: D2 v2 negative suppression — an allow() with no
// justification text must not silence a timed-path finding.
#include <cstdlib>

struct EventQueue
{
    void run();
};

void
EventQueue::run()
{
    // sflint: allow(D2)
    srand(42);
}
