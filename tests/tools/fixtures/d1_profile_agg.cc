// sflint fixture: D1 positive — a profile-style aggregation map
// (per-(tile, stream) latency histograms) held in a hash-ordered
// container and iterated while rendering a report. The real profiler
// keys its aggregates with std::map precisely so profile.json is
// byte-stable; this fixture pins the rule that guards that choice.
#include <cstdint>
#include <unordered_map>

struct FxLatHist
{
    uint64_t count = 0;
    uint64_t sum = 0;
};

struct FxAggKey
{
    int tile;
    int stream;
    bool operator==(const FxAggKey &o) const
    {
        return tile == o.tile && stream == o.stream;
    }
};

struct FxAggKeyHash
{
    size_t
    operator()(const FxAggKey &k) const
    {
        return size_t(k.tile) * 131 + size_t(k.stream);
    }
};

struct FxD1ProfileAgg
{
    std::unordered_map<FxAggKey, FxLatHist, FxAggKeyHash> fxAggregates;

    uint64_t
    dumpReport() const
    {
        uint64_t emitted = 0;
        for (const auto &kv : fxAggregates)
            emitted += kv.second.count;
        return emitted;
    }
};
