// sflint fixture: C1 — lock-discipline positives plus the silent
// shapes (direct lock, SF_REQUIRES body, discovered lock helper).
#include <mutex>

struct FxCounter
{
    int
    fxBump()
    {
        std::lock_guard<std::mutex> l(_m);
        return ++_hits; // silent: _m held via lock_guard
    }

    int
    fxPeek() const
    {
        return _hits; // C1: _m not held
    }

    void
    fxReset() SF_REQUIRES(_m)
    {
        _hits = 0; // silent: SF_REQUIRES implies the caller holds _m
    }

    void
    fxZero()
    {
        fxReset(); // C1: callee requires _m, not held here
    }

    std::unique_lock<std::mutex>
    fxLock()
    {
        std::unique_lock<std::mutex> l(_m);
        return l;
    }

    int
    fxSum()
    {
        auto l = fxLock();
        return _hits; // silent: the discovered helper holds _m
    }

    std::mutex _m;
    int _hits SF_GUARDED_BY(_m) = 0;
};
