// sflint fixture: no findings — ordered container, no banned calls.
#include <map>

struct FxClean
{
    std::map<int, int> fxOrdered;

    int
    sum() const
    {
        int acc = 0;
        for (const auto &kv : fxOrdered)
            acc += kv.second;
        return acc;
    }
};
