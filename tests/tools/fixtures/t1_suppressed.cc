// sflint fixture: T1 suppressed — justified narrowing.
#include <cstdint>

inline int
fxElapsedOk(uint64_t startTick, uint64_t endTick)
{
    // sflint: allow(T1, fixture: delta bounded by config below 2^31)
    return static_cast<int>(endTick - startTick);
}
