// sflint fixture: S1 suppressed — justified process-wide registry.
#include <vector>

inline std::vector<int> &
fxRegistry()
{
    // sflint: allow(S1, fixture: main-thread-only registry)
    static std::vector<int> fxEntries;
    return fxEntries;
}
