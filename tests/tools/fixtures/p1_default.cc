// sflint fixture: P1 positive — a default arm and a missing
// enumerator in a switch over a monitored enum.

// sflint: exhaustive
enum class FxMsgType
{
    Ping,
    Pong,
    Halt,
};

inline int
fxDispatch(FxMsgType t)
{
    switch (t) {
      case FxMsgType::Ping:
        return 1;
      case FxMsgType::Pong:
        return 2;
      default:
        return 0;
    }
}
