// sflint fixture: S2 suppressed — justified whole-struct copy of a
// type verified to have no padding.
#include <cstring>
#include <cstdint>

struct FxPacked
{
    uint64_t a;
    uint64_t b;
};

inline void
fxClonePacked(FxPacked &dst, const FxPacked &src)
{
    // sflint: allow(S2, fixture: static_asserted padding-free POD)
    std::memcpy(&dst, &src, sizeof(FxPacked));
}
