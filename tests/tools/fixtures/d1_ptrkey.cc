// sflint fixture: D1 positive — ordered map keyed by a pointer, whose
// iteration order depends on allocation addresses.
#include <map>

struct FxNode;

struct FxD1PtrKey
{
    std::map<FxNode *, int> fxByNode;

    int
    count() const
    {
        int n = 0;
        for (const auto &kv : fxByNode)
            n += kv.second;
        return n;
    }
};
