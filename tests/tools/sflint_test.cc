/**
 * @file
 * sflint unit tests: every rule class detects its seeded fixture
 * violation, suppressions work, the baseline ratchet only shrinks,
 * and JSON/SARIF output is byte-stable.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sflint.hh"

namespace fs = std::filesystem;
using namespace sflint;

namespace {

Config
fixtureConfig()
{
    Config cfg;
    cfg.root = SFLINT_FIXTURE_ROOT;
    cfg.inputs = {"fixtures"};
    return cfg;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const fs::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << p;
    out << text;
}

/** Non-suppressed findings for @p rule in @p file. */
std::vector<Finding>
newFindings(const AnalysisResult &res, const std::string &rule,
            const std::string &file)
{
    std::vector<Finding> out;
    for (const Finding &fd : res.findings) {
        if (!fd.suppressed && fd.rule == rule && fd.file == file)
            out.push_back(fd);
    }
    return out;
}

} // namespace

TEST(SflintRules, DetectsSeededViolations)
{
    AnalysisResult res = analyze(fixtureConfig());

    EXPECT_EQ(newFindings(res, "D1", "fixtures/d1_unordered.cc").size(),
              1u);
    auto ptrkey = newFindings(res, "D1", "fixtures/d1_ptrkey.cc");
    ASSERT_EQ(ptrkey.size(), 1u);
    EXPECT_NE(ptrkey[0].message.find("pointer-keyed"),
              std::string::npos);
    // Profile-report aggregation maps must stay ordered so
    // profile.json is byte-stable (DESIGN.md §4h).
    auto agg = newFindings(res, "D1", "fixtures/d1_profile_agg.cc");
    ASSERT_EQ(agg.size(), 1u);
    EXPECT_NE(agg[0].message.find("unordered"), std::string::npos);

    EXPECT_EQ(newFindings(res, "D2", "fixtures/d2_banned.cc").size(),
              1u);

    // p1_default.cc seeds both P1 shapes: a default arm and a missing
    // enumerator.
    auto p1 = newFindings(res, "P1", "fixtures/p1_default.cc");
    ASSERT_EQ(p1.size(), 2u);
    EXPECT_NE(p1[0].message.find("missing: Halt"), std::string::npos);
    EXPECT_NE(p1[1].message.find("default arm"), std::string::npos);

    EXPECT_EQ(newFindings(res, "T1", "fixtures/t1_narrow.cc").size(),
              3u);
    EXPECT_EQ(newFindings(res, "E1", "fixtures/e1_raw_new.cc").size(),
              1u);

    // s1_static.cc seeds one namespace-scope and one function-local
    // mutable static; its const/constexpr/thread_local/atomic/mutex/
    // function shapes must all stay silent.
    auto s1 = newFindings(res, "S1", "fixtures/s1_static.cc");
    ASSERT_EQ(s1.size(), 2u);
    EXPECT_EQ(s1[0].context, "fxGlobalCounter");
    EXPECT_EQ(s1[1].context, "fxCache");

    // s2_rawio.cc seeds a whole-struct memcpy and a whole-struct
    // fwrite; its primitive bit-pattern and byte-buffer shapes must
    // stay silent.
    auto s2 = newFindings(res, "S2", "fixtures/s2_rawio.cc");
    ASSERT_EQ(s2.size(), 2u);
    EXPECT_EQ(s2[0].context, "memcpy");
    EXPECT_EQ(s2[1].context, "fwrite");
    EXPECT_NE(s2[0].message.find("padding"), std::string::npos);
}

TEST(SflintRules, SuppressionsAndCleanFile)
{
    AnalysisResult res = analyze(fixtureConfig());

    int suppressedSeen = 0;
    for (const Finding &fd : res.findings) {
        SCOPED_TRACE(fd.file + ":" + std::to_string(fd.line));
        if (fd.file.find("_suppressed") != std::string::npos) {
            EXPECT_TRUE(fd.suppressed);
            ++suppressedSeen;
        }
        EXPECT_NE(fd.file, "fixtures/clean.cc");
    }
    // One suppressed case per rule class.
    EXPECT_EQ(suppressedSeen, 7);
}

TEST(SflintBaseline, RoundTripAndRatchet)
{
    AnalysisResult res = analyze(fixtureConfig());
    Baseline b = baselineFromFindings(res);
    // Suppressed findings never enter the baseline.
    EXPECT_EQ(b.entries.size(), 14u);

    fs::path tmp =
        fs::path(::testing::TempDir()) / "sflint_baseline.json";
    spit(tmp, renderBaseline(b));
    Baseline reread = loadBaseline(tmp.string());
    EXPECT_EQ(reread.entries, b.entries);

    // A full baseline marks every new finding as grandfathered and
    // reports nothing stale.
    AnalysisResult covered = analyze(fixtureConfig());
    EXPECT_TRUE(applyBaseline(covered, reread).empty());
    for (const Finding &fd : covered.findings) {
        if (!fd.suppressed)
            EXPECT_TRUE(fd.baselined) << fd.file << ":" << fd.line;
    }

    // The ratchet only shrinks: an entry whose finding is gone comes
    // back as stale, and a finding missing from the baseline stays
    // new.
    Baseline drifted = b;
    drifted.entries.insert({"D2", "fixtures/gone.cc", "rand#0"});
    BaselineEntry dropped = *drifted.entries.begin();
    drifted.entries.erase(drifted.entries.begin());

    AnalysisResult partial = analyze(fixtureConfig());
    std::vector<BaselineEntry> stale = applyBaseline(partial, drifted);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].file, "fixtures/gone.cc");
    int stillNew = 0;
    for (const Finding &fd : partial.findings) {
        if (!fd.suppressed && !fd.baselined) {
            ++stillNew;
            EXPECT_EQ(fd.file, dropped.file);
            EXPECT_EQ(fd.rule, dropped.rule);
            EXPECT_EQ(fd.key, dropped.key);
        }
    }
    EXPECT_EQ(stillNew, 1);
}

TEST(SflintOutput, ByteStableAndMatchesGolden)
{
    AnalysisResult a = analyze(fixtureConfig());
    AnalysisResult b = analyze(fixtureConfig());

    EXPECT_EQ(renderJson(a), renderJson(b));
    EXPECT_EQ(renderSarif(a), renderSarif(b));
    EXPECT_EQ(renderText(a, true), renderText(b, true));

    fs::path root(SFLINT_FIXTURE_ROOT);
    EXPECT_EQ(renderJson(a), slurp(root / "fixtures_golden.json"));
    EXPECT_EQ(renderSarif(a), slurp(root / "fixtures_golden.sarif"));
}

TEST(SflintFix, InsertedAnnotationSuppresses)
{
    fs::path tmp = fs::path(::testing::TempDir()) / "sflint_fixcase";
    fs::create_directories(tmp / "fixcase");
    fs::copy_file(fs::path(SFLINT_FIXTURE_ROOT) / "fixtures" /
                      "d2_banned.cc",
                  tmp / "fixcase" / "d2_banned.cc",
                  fs::copy_options::overwrite_existing);

    Config cfg;
    cfg.root = tmp.string();
    cfg.inputs = {"fixcase"};

    AnalysisResult before = analyze(cfg);
    ASSERT_EQ(before.findings.size(), 1u);
    EXPECT_FALSE(before.findings[0].suppressed);

    EXPECT_EQ(applyFixes(cfg, before), 1);
    std::string fixedText = slurp(tmp / "fixcase" / "d2_banned.cc");
    EXPECT_NE(fixedText.find("sflint: allow(D2"), std::string::npos);

    AnalysisResult after = analyze(cfg);
    ASSERT_EQ(after.findings.size(), 1u);
    EXPECT_TRUE(after.findings[0].suppressed);
}
