/**
 * @file
 * sflint unit tests: every rule class detects its seeded fixture
 * violation, suppressions work (and unjustified ones do not), the
 * baseline ratchet only shrinks, JSON/SARIF output is byte-stable,
 * --fix is idempotent, and the concurrency contracts C1/C2 catch
 * seeded bugs in copies of the real annotated tree sources.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sflint.hh"

namespace fs = std::filesystem;
using namespace sflint;

namespace {

Config
fixtureConfig()
{
    Config cfg;
    cfg.root = SFLINT_FIXTURE_ROOT;
    cfg.inputs = {"fixtures"};
    return cfg;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const fs::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << p;
    out << text;
}

/** Non-suppressed findings for @p rule in @p file. */
std::vector<Finding>
newFindings(const AnalysisResult &res, const std::string &rule,
            const std::string &file)
{
    std::vector<Finding> out;
    for (const Finding &fd : res.findings) {
        if (!fd.suppressed && fd.rule == rule && fd.file == file)
            out.push_back(fd);
    }
    return out;
}

} // namespace

TEST(SflintRules, DetectsSeededViolations)
{
    AnalysisResult res = analyze(fixtureConfig());

    EXPECT_EQ(newFindings(res, "D1", "fixtures/d1_unordered.cc").size(),
              1u);
    auto ptrkey = newFindings(res, "D1", "fixtures/d1_ptrkey.cc");
    ASSERT_EQ(ptrkey.size(), 1u);
    EXPECT_NE(ptrkey[0].message.find("pointer-keyed"),
              std::string::npos);
    // Profile-report aggregation maps must stay ordered so
    // profile.json is byte-stable (DESIGN.md §4h).
    auto agg = newFindings(res, "D1", "fixtures/d1_profile_agg.cc");
    ASSERT_EQ(agg.size(), 1u);
    EXPECT_NE(agg[0].message.find("unordered"), std::string::npos);

    EXPECT_EQ(newFindings(res, "D2", "fixtures/d2_banned.cc").size(),
              1u);

    // p1_default.cc seeds both P1 shapes: a default arm and a missing
    // enumerator.
    auto p1 = newFindings(res, "P1", "fixtures/p1_default.cc");
    ASSERT_EQ(p1.size(), 2u);
    EXPECT_NE(p1[0].message.find("missing: Halt"), std::string::npos);
    EXPECT_NE(p1[1].message.find("default arm"), std::string::npos);

    EXPECT_EQ(newFindings(res, "T1", "fixtures/t1_narrow.cc").size(),
              3u);
    EXPECT_EQ(newFindings(res, "E1", "fixtures/e1_raw_new.cc").size(),
              1u);

    // s1_static.cc seeds one namespace-scope and one function-local
    // mutable static; its const/constexpr/thread_local/atomic/mutex/
    // function shapes must all stay silent.
    auto s1 = newFindings(res, "S1", "fixtures/s1_static.cc");
    ASSERT_EQ(s1.size(), 2u);
    EXPECT_EQ(s1[0].context, "fxGlobalCounter");
    EXPECT_EQ(s1[1].context, "fxCache");

    // s2_rawio.cc seeds a whole-struct memcpy and a whole-struct
    // fwrite; its primitive bit-pattern and byte-buffer shapes must
    // stay silent.
    auto s2 = newFindings(res, "S2", "fixtures/s2_rawio.cc");
    ASSERT_EQ(s2.size(), 2u);
    EXPECT_EQ(s2[0].context, "memcpy");
    EXPECT_EQ(s2[1].context, "fwrite");
    EXPECT_NE(s2[0].message.find("padding"), std::string::npos);

    // c1_unlocked.cc seeds an unguarded SF_GUARDED_BY access and an
    // SF_REQUIRES call without the lock; its lock_guard, SF_REQUIRES
    // body and lock-helper shapes must all stay silent.
    auto c1 = newFindings(res, "C1", "fixtures/c1_unlocked.cc");
    ASSERT_EQ(c1.size(), 2u);
    EXPECT_EQ(c1[0].context, "_hits");
    EXPECT_NE(c1[0].message.find("SF_GUARDED_BY(_m)"),
              std::string::npos);
    EXPECT_EQ(c1[1].context, "fxReset");
    EXPECT_NE(c1[1].message.find("SF_REQUIRES"), std::string::npos);

    // c2_cross.cc seeds both shard-affinity directions.
    auto c2 = newFindings(res, "C2", "fixtures/c2_cross.cc");
    ASSERT_EQ(c2.size(), 2u);
    EXPECT_EQ(c2[0].context, "_seq");
    EXPECT_NE(c2[0].message.find("SF_BARRIER_ONLY"), std::string::npos);
    EXPECT_EQ(c2[1].context, "fxDrain");
    EXPECT_NE(c2[1].message.find("reachable from SF_SHARD_LOCAL"),
              std::string::npos);

    // a1_unknown.cc suppresses a rule id that does not exist.
    auto a1 = newFindings(res, "A1", "fixtures/a1_unknown.cc");
    ASSERT_EQ(a1.size(), 1u);
    EXPECT_EQ(a1[0].context, "D9");
    EXPECT_NE(a1[0].message.find("unknown rule 'D9'"),
              std::string::npos);
}

TEST(SflintRules, D2TimedPathReachability)
{
    AnalysisResult res = analyze(fixtureConfig());

    // Host-side reporting code reads the wall clock freely: nothing
    // in d2v2_host.cc is reachable from a timed root, so D2 is
    // silent there (the old path-allowlist would have flagged it).
    for (const Finding &fd : res.findings)
        EXPECT_NE(fd.file, "fixtures/d2v2_host.cc")
            << fd.rule << " " << fd.message;

    // The same primitive inside a scheduler call's argument list is
    // an event handler and therefore on the timed path.
    auto sched = newFindings(res, "D2", "fixtures/d2v2_sched_arg.cc");
    ASSERT_EQ(sched.size(), 1u);
    EXPECT_EQ(sched[0].context, "rand");
    EXPECT_NE(sched[0].message.find("timed simulation path"),
              std::string::npos);

    // And reachability from a named timed root marks callees timed.
    EXPECT_EQ(newFindings(res, "D2", "fixtures/d2_banned.cc").size(),
              1u);
}

TEST(SflintRules, UnjustifiedSuppressionsDoNotSilence)
{
    AnalysisResult res = analyze(fixtureConfig());

    // An `allow(RULE)` with no justification text leaves the finding
    // new and tags it so --fix/reviewers see what is missing.
    for (const char *file :
         {"fixtures/c1_nojustify.cc", "fixtures/c2_nojustify.cc",
          "fixtures/d2v2_nojustify.cc"}) {
        SCOPED_TRACE(file);
        int fresh = 0;
        for (const Finding &fd : res.findings) {
            if (fd.file != file)
                continue;
            EXPECT_FALSE(fd.suppressed);
            EXPECT_NE(fd.message.find("missing a justification"),
                      std::string::npos);
            ++fresh;
        }
        EXPECT_EQ(fresh, 1);
    }
}

TEST(SflintRules, SuppressionsAndCleanFile)
{
    AnalysisResult res = analyze(fixtureConfig());

    int suppressedSeen = 0;
    for (const Finding &fd : res.findings) {
        SCOPED_TRACE(fd.file + ":" + std::to_string(fd.line));
        if (fd.file.find("_suppressed") != std::string::npos) {
            EXPECT_TRUE(fd.suppressed);
            ++suppressedSeen;
        }
        EXPECT_NE(fd.file, "fixtures/clean.cc");
    }
    // One suppressed case per rule class (D1, D2, E1, P1, S1, S2, T1,
    // C1, C2).
    EXPECT_EQ(suppressedSeen, 9);
}

TEST(SflintBaseline, RoundTripAndRatchet)
{
    AnalysisResult res = analyze(fixtureConfig());
    Baseline b = baselineFromFindings(res);
    // Suppressed findings never enter the baseline.
    EXPECT_EQ(b.entries.size(), 23u);

    fs::path tmp =
        fs::path(::testing::TempDir()) / "sflint_baseline.json";
    spit(tmp, renderBaseline(b));
    Baseline reread = loadBaseline(tmp.string());
    EXPECT_EQ(reread.entries, b.entries);

    // A full baseline marks every new finding as grandfathered and
    // reports nothing stale.
    AnalysisResult covered = analyze(fixtureConfig());
    EXPECT_TRUE(applyBaseline(covered, reread).empty());
    for (const Finding &fd : covered.findings) {
        if (!fd.suppressed)
            EXPECT_TRUE(fd.baselined) << fd.file << ":" << fd.line;
    }

    // The ratchet only shrinks: an entry whose finding is gone comes
    // back as stale, and a finding missing from the baseline stays
    // new.
    Baseline drifted = b;
    drifted.entries.insert({"D2", "fixtures/gone.cc", "rand#0"});
    BaselineEntry dropped = *drifted.entries.begin();
    drifted.entries.erase(drifted.entries.begin());

    AnalysisResult partial = analyze(fixtureConfig());
    std::vector<BaselineEntry> stale = applyBaseline(partial, drifted);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].file, "fixtures/gone.cc");
    int stillNew = 0;
    for (const Finding &fd : partial.findings) {
        if (!fd.suppressed && !fd.baselined) {
            ++stillNew;
            EXPECT_EQ(fd.file, dropped.file);
            EXPECT_EQ(fd.rule, dropped.rule);
            EXPECT_EQ(fd.key, dropped.key);
        }
    }
    EXPECT_EQ(stillNew, 1);
}

TEST(SflintOutput, ByteStableAndMatchesGolden)
{
    AnalysisResult a = analyze(fixtureConfig());
    AnalysisResult b = analyze(fixtureConfig());

    EXPECT_EQ(renderJson(a), renderJson(b));
    EXPECT_EQ(renderSarif(a), renderSarif(b));
    EXPECT_EQ(renderText(a, true), renderText(b, true));

    fs::path root(SFLINT_FIXTURE_ROOT);
    EXPECT_EQ(renderJson(a), slurp(root / "fixtures_golden.json"));
    EXPECT_EQ(renderSarif(a), slurp(root / "fixtures_golden.sarif"));
}

TEST(SflintConcurrency, CatchesSeededLockBugInPhysMem)
{
    fs::path tmp = fs::path(::testing::TempDir()) / "sflint_c1_tree";
    fs::create_directories(tmp / "seed");
    std::string text =
        slurp(fs::path(SFLINT_SOURCE_ROOT) / "src/mem/phys_mem.hh");

    Config cfg;
    cfg.root = tmp.string();
    cfg.inputs = {"seed"};

    // The annotated file as shipped is contract-clean.
    spit(tmp / "seed" / "phys_mem.hh", text);
    for (const Finding &fd : analyze(cfg).findings)
        EXPECT_TRUE(fd.suppressed) << fd.message;

    // Deleting the writeLock() acquisition in materialize() is
    // exactly the bug C1 exists to catch. The search string pins the
    // 8-space indent so only materialize()'s copy matches.
    const std::string lock =
        "        auto l = writeLock();\n        auto &storage";
    size_t at = text.find(lock);
    ASSERT_NE(at, std::string::npos);
    std::string broken = text;
    broken.erase(at, lock.find('\n') + 1);
    spit(tmp / "seed" / "phys_mem.hh", broken);

    AnalysisResult res = analyze(cfg);
    auto c1 = newFindings(res, "C1", "seed/phys_mem.hh");
    ASSERT_EQ(c1.size(), 1u);
    EXPECT_EQ(c1[0].context, "_pages");
    EXPECT_NE(c1[0].message.find("SF_GUARDED_BY(_mu)"),
              std::string::npos);
}

TEST(SflintConcurrency, CatchesSeededAffinityBugInShard)
{
    fs::path tmp = fs::path(::testing::TempDir()) / "sflint_c2_tree";
    fs::create_directories(tmp / "seed");
    fs::path root(SFLINT_SOURCE_ROOT);
    std::string hh = slurp(root / "src/sim/shard.hh");
    std::string cc = slurp(root / "src/sim/shard.cc");

    Config cfg;
    cfg.root = tmp.string();
    cfg.inputs = {"seed"};

    // The annotated pair as shipped is contract-clean.
    spit(tmp / "seed" / "shard.hh", hh);
    spit(tmp / "seed" / "shard.cc", cc);
    for (const Finding &fd : analyze(cfg).findings)
        EXPECT_TRUE(fd.suppressed) << fd.file << ": " << fd.message;

    // The barrier merge touching a shard-owned counter is exactly
    // the worker-count-dependent race C2 exists to catch. The
    // SF_BARRIER_ONLY annotation lives on the .hh declaration; the
    // cross-TU merge must carry it to the .cc definition.
    const std::string anchor =
        "TileDomains::windowBarrier(Tick windowEnd)\n{\n";
    size_t at = cc.find(anchor);
    ASSERT_NE(at, std::string::npos);
    std::string broken = cc;
    broken.insert(at + anchor.size(), "    _keyCnt[0] = 0;\n");
    spit(tmp / "seed" / "shard.cc", broken);

    AnalysisResult res = analyze(cfg);
    auto c2 = newFindings(res, "C2", "seed/shard.cc");
    ASSERT_EQ(c2.size(), 1u);
    EXPECT_EQ(c2[0].context, "_keyCnt");
    EXPECT_NE(c2[0].message.find("SF_SHARD_LOCAL"), std::string::npos);
}

TEST(SflintFix, IdempotentAcrossRerunsIncludingSharedLines)
{
    // One line carrying findings from two different rules forces
    // --fix to write two `sflint: allow(...)` groups into a single
    // comment; the re-run must parse every group (regression test for
    // the one-directive-per-comment lexer bug) and a second --fix
    // must change nothing.
    fs::path tmp = fs::path(::testing::TempDir()) / "sflint_fixidem";
    fs::create_directories(tmp / "seed");
    spit(tmp / "seed" / "mixed.cc",
         "struct EventQueue\n"
         "{\n"
         "    void run();\n"
         "};\n"
         "\n"
         "void\n"
         "EventQueue::run()\n"
         "{\n"
         "    int t = (int)curTick + rand();\n"
         "}\n");

    Config cfg;
    cfg.root = tmp.string();
    cfg.inputs = {"seed"};

    AnalysisResult before = analyze(cfg);
    int fresh = 0;
    for (const Finding &fd : before.findings)
        fresh += fd.suppressed ? 0 : 1;
    ASSERT_GE(fresh, 2); // T1 and D2 share the line

    EXPECT_EQ(applyFixes(cfg, before), 1);
    std::string once = slurp(tmp / "seed" / "mixed.cc");
    EXPECT_NE(once.find("allow(D2, FIXME: justify)"),
              std::string::npos);
    EXPECT_NE(once.find("allow(T1, FIXME: justify)"),
              std::string::npos);

    AnalysisResult after = analyze(cfg);
    for (const Finding &fd : after.findings)
        EXPECT_TRUE(fd.suppressed) << fd.rule << " " << fd.message;

    // Second pass: nothing new to fix, bytes untouched.
    EXPECT_EQ(applyFixes(cfg, after), 0);
    EXPECT_EQ(slurp(tmp / "seed" / "mixed.cc"), once);
}

TEST(SflintFix, InsertedAnnotationSuppresses)
{
    fs::path tmp = fs::path(::testing::TempDir()) / "sflint_fixcase";
    fs::create_directories(tmp / "fixcase");
    fs::copy_file(fs::path(SFLINT_FIXTURE_ROOT) / "fixtures" /
                      "d2_banned.cc",
                  tmp / "fixcase" / "d2_banned.cc",
                  fs::copy_options::overwrite_existing);

    Config cfg;
    cfg.root = tmp.string();
    cfg.inputs = {"fixcase"};

    AnalysisResult before = analyze(cfg);
    ASSERT_EQ(before.findings.size(), 1u);
    EXPECT_FALSE(before.findings[0].suppressed);

    EXPECT_EQ(applyFixes(cfg, before), 1);
    std::string fixedText = slurp(tmp / "fixcase" / "d2_banned.cc");
    EXPECT_NE(fixedText.find("sflint: allow(D2"), std::string::npos);

    AnalysisResult after = analyze(cfg);
    ASSERT_EQ(after.findings.size(), 1u);
    EXPECT_TRUE(after.findings[0].suppressed);
}
