# Smoke test for the observability layer: run the quickstart example
# with StreamFloat tracing and JSON stat export enabled, then assert
# that every advertised artifact actually appeared.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<exe> -DOUT_DIR=<dir> -P smoke_observability.cmake

if(NOT QUICKSTART OR NOT OUT_DIR)
    message(FATAL_ERROR "QUICKSTART and OUT_DIR must be set")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SF_DEBUG_FLAGS=StreamFloat
            "${QUICKSTART}" pathfinder 0.02
            "--stats-json=${OUT_DIR}"
            "--trace=${OUT_DIR}/streams.trace.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
    message(FATAL_ERROR "quickstart failed (rc=${rc}): ${err}")
endif()

# Debug tracing: tick-stamped, flag-tagged float/sink lines on stderr.
if(NOT err MATCHES "\\[StreamFloat\\]")
    message(FATAL_ERROR "no [StreamFloat] trace lines on stderr")
endif()
if(NOT err MATCHES "floated sid=")
    message(FATAL_ERROR "no float decision lines in the trace output")
endif()

# JSON artifacts: one stats.json per machine plus the Chrome trace.
foreach(f
        "${OUT_DIR}/L1Bingo-L2Stride_pathfinder.stats.json"
        "${OUT_DIR}/SF_pathfinder.stats.json"
        "${OUT_DIR}/streams.trace.json")
    if(NOT EXISTS "${f}")
        message(FATAL_ERROR "missing artifact: ${f}")
    endif()
    file(SIZE "${f}" sz)
    if(sz EQUAL 0)
        message(FATAL_ERROR "empty artifact: ${f}")
    endif()
endforeach()

file(READ "${OUT_DIR}/SF_pathfinder.stats.json" stats)
if(NOT stats MATCHES "\"schema\": \"sf-stats\"")
    message(FATAL_ERROR "stats.json missing schema stamp")
endif()
if(NOT stats MATCHES "\"series\"")
    message(FATAL_ERROR "stats.json missing interval series section")
endif()

file(READ "${OUT_DIR}/streams.trace.json" trace)
if(NOT trace MATCHES "traceEvents")
    message(FATAL_ERROR "trace.json is not a Chrome trace-event file")
endif()

message(STATUS "observability smoke test passed")
