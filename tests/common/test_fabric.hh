/**
 * @file
 * Shared test harness: a miniature tiled memory system (mesh + private
 * caches + L3 banks + memory controllers, optional stream engines)
 * with no cores, so protocol- and engine-level tests can drive
 * accesses directly.
 */

#ifndef SF_TESTS_COMMON_TEST_FABRIC_HH
#define SF_TESTS_COMMON_TEST_FABRIC_HH

#include <memory>
#include <vector>

#include "flt/se_l2.hh"
#include "flt/se_l3.hh"
#include "mem/l3_bank.hh"
#include "mem/mem_ctrl.hh"
#include "mem/phys_mem.hh"
#include "mem/priv_cache.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "stream/se_core.hh"

namespace sf {
namespace test {

/** A bare memory fabric for directed tests. */
class TestFabric
{
  public:
    struct Options
    {
        int nx = 2;
        int ny = 2;
        uint32_t interleave = 64;
        bool withStreamEngines = false;
        mem::PrivCacheConfig priv;
        mem::L3BankConfig l3;
        stream::SECoreConfig seCore;
        flt::SEL2Config sel2;
        flt::SEL3Config sel3;
    };

    TestFabric() : TestFabric(Options{}) {}

    explicit TestFabric(const Options &opt)
        : _opt(opt), _as(0, _physMem)
    {
        noc::MeshConfig mc;
        mc.nx = opt.nx;
        mc.ny = opt.ny;
        _mesh = std::make_unique<noc::Mesh>(_eq, mc);
        _nuca = std::make_unique<mem::NucaMap>(opt.nx, opt.ny,
                                               opt.interleave);
        int n = opt.nx * opt.ny;
        for (TileId t = 0; t < n; ++t) {
            std::string tn = "t" + std::to_string(t);
            _tlbs.push_back(std::make_unique<mem::TlbHierarchy>(
                64, 8, 2048, 16, 8, 80));
            _priv.push_back(std::make_unique<mem::PrivCache>(
                tn + ".priv", _eq, t, opt.priv, *_mesh, *_nuca));
            _l3.push_back(std::make_unique<mem::L3Bank>(
                tn + ".l3", _eq, t, opt.l3, *_mesh, *_nuca));
            _memCtrls.push_back(nullptr);
            _seCores.push_back(nullptr);
            _seL2.push_back(nullptr);
            _seL3.push_back(nullptr);

            if (opt.withStreamEngines) {
                stream::SECoreConfig sc = opt.seCore;
                sc.enableFloating = true;
                _seCores[t] = std::make_unique<stream::SECore>(
                    tn + ".se", _eq, t, sc, *_priv[t], *_tlbs[t], _as);
                _seL2[t] = std::make_unique<flt::SEL2>(
                    tn + ".sel2", _eq, t, opt.sel2, *_mesh, *_nuca,
                    *_priv[t], *_tlbs[t], _as, *_seCores[t]);
                _seCores[t]->setFloatController(_seL2[t].get());
                _seL3[t] = std::make_unique<flt::SEL3>(
                    tn + ".sel3", _eq, t, opt.sel3, *_mesh, *_nuca,
                    *_l3[t],
                    [this](int) { return &_as; });
            }

            const auto &ctrls = _nuca->memCtrls();
            if (std::find(ctrls.begin(), ctrls.end(), t) !=
                ctrls.end()) {
                _memCtrls[t] = std::make_unique<mem::MemCtrl>(
                    tn + ".mc", _eq, t, mem::DramConfig(), *_mesh);
            }
            _mesh->bindSink(t, [this, t](const noc::MsgPtr &m) {
                dispatch(t, m);
            });
        }
    }

    /** Run until the event queue drains (or @p limit). */
    Tick
    drain(Tick limit = 10'000'000)
    {
        return _eq.run(limit);
    }

    /** Issue a demand access and return when it completes (drains). */
    void
    demand(TileId tile, Addr vaddr, bool is_write, int *completions,
           uint16_t size = 4)
    {
        mem::Access a;
        a.kind = mem::AccessKind::Demand;
        a.vaddr = vaddr;
        Cycles lat = 0;
        a.paddr = _tlbs[tile]->translate(_as, vaddr, lat);
        a.size = size;
        a.isWrite = is_write;
        a.onDone = [completions]() { ++*completions; };
        _priv[tile]->access(std::move(a));
    }

    EventQueue &eq() { return _eq; }
    noc::Mesh &mesh() { return *_mesh; }
    mem::AddressSpace &as() { return _as; }
    mem::NucaMap &nuca() { return *_nuca; }
    mem::PrivCache &priv(TileId t) { return *_priv[t]; }
    mem::L3Bank &l3(TileId t) { return *_l3[t]; }
    stream::SECore &seCore(TileId t) { return *_seCores[t]; }
    flt::SEL2 &seL2(TileId t) { return *_seL2[t]; }
    flt::SEL3 &seL3(TileId t) { return *_seL3[t]; }

  private:
    void
    dispatch(TileId tile, const noc::MsgPtr &msg)
    {
        if (auto mm = std::dynamic_pointer_cast<mem::MemMsg>(msg)) {
            using mem::MemMsgType;
            switch (mm->type) {
              case MemMsgType::GetS:
              case MemMsgType::GetM:
              case MemMsgType::GetU:
              case MemMsgType::PutS:
              case MemMsgType::PutM:
              case MemMsgType::InvAck:
              case MemMsgType::FwdAck:
              case MemMsgType::FwdMiss:
              case MemMsgType::MemData:
                _l3[tile]->recvMsg(mm);
                return;
              case MemMsgType::MemRead:
              case MemMsgType::MemWrite:
                _memCtrls[tile]->recvMsg(mm);
                return;
              default:
                _priv[tile]->recvMsg(mm);
                return;
            }
        }
        if (auto c = std::dynamic_pointer_cast<flt::StreamFloatMsg>(msg)) {
            _seL3[tile]->recvConfig(c);
            return;
        }
        if (auto c = std::dynamic_pointer_cast<flt::StreamCreditMsg>(msg)) {
            _seL3[tile]->recvCredit(c);
            return;
        }
        if (auto c = std::dynamic_pointer_cast<flt::StreamEndMsg>(msg)) {
            _seL3[tile]->recvEnd(c);
            return;
        }
        if (auto c = std::dynamic_pointer_cast<flt::StreamAckMsg>(msg)) {
            if (_seL2[tile])
                _seL2[tile]->recvFloatAck(c);
            return;
        }
    }

    Options _opt;
    EventQueue _eq;
    mem::PhysMem _physMem;
    mem::AddressSpace _as;
    std::unique_ptr<noc::Mesh> _mesh;
    std::unique_ptr<mem::NucaMap> _nuca;
    std::vector<std::unique_ptr<mem::TlbHierarchy>> _tlbs;
    std::vector<std::unique_ptr<mem::PrivCache>> _priv;
    std::vector<std::unique_ptr<mem::L3Bank>> _l3;
    std::vector<std::unique_ptr<mem::MemCtrl>> _memCtrls;
    std::vector<std::unique_ptr<stream::SECore>> _seCores;
    std::vector<std::unique_ptr<flt::SEL2>> _seL2;
    std::vector<std::unique_ptr<flt::SEL3>> _seL3;
};

} // namespace test
} // namespace sf

#endif // SF_TESTS_COMMON_TEST_FABRIC_HH
