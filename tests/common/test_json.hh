/**
 * @file
 * Minimal recursive-descent JSON parser for test assertions: just
 * enough to round-trip the simulator's own stat / trace dumps. Not a
 * general-purpose parser; throws std::runtime_error on malformed input.
 */

#ifndef SF_TESTS_COMMON_TEST_JSON_HH
#define SF_TESTS_COMMON_TEST_JSON_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace test_json {

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    const Value &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return object.count(key) > 0;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : _s(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (_pos != _s.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos]))) {
            ++_pos;
        }
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _s.size())
            throw std::runtime_error("unexpected end of input");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            throw std::runtime_error(std::string("expected '") + c +
                                     "' got '" + _s[_pos] + "'");
        }
        ++_pos;
    }

    Value
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return parseLiteral("true", makeBool(true));
          case 'f': return parseLiteral("false", makeBool(false));
          case 'n': return parseLiteral("null", Value{});
          default: return parseNumber();
        }
    }

    static Value
    makeBool(bool b)
    {
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = b;
        return v;
    }

    Value
    parseLiteral(const char *word, Value v)
    {
        skipWs();
        size_t n = std::string(word).size();
        if (_s.compare(_pos, n, word) != 0)
            throw std::runtime_error("bad literal");
        _pos += n;
        return v;
    }

    Value
    parseString()
    {
        expect('"');
        Value v;
        v.kind = Value::Kind::String;
        while (_pos < _s.size() && _s[_pos] != '"') {
            char c = _s[_pos++];
            if (c == '\\') {
                if (_pos >= _s.size())
                    throw std::runtime_error("bad escape");
                char e = _s[_pos++];
                switch (e) {
                  case 'n': v.str += '\n'; break;
                  case 'r': v.str += '\r'; break;
                  case 't': v.str += '\t'; break;
                  case 'u':
                    // Tests only need ASCII; decode the low byte.
                    if (_pos + 4 > _s.size())
                        throw std::runtime_error("bad \\u escape");
                    v.str += static_cast<char>(
                        std::strtoul(_s.substr(_pos, 4).c_str(), nullptr,
                                     16));
                    _pos += 4;
                    break;
                  default: v.str += e; break;
                }
            } else {
                v.str += c;
            }
        }
        if (_pos >= _s.size())
            throw std::runtime_error("unterminated string");
        ++_pos; // closing quote
        return v;
    }

    Value
    parseNumber()
    {
        skipWs();
        size_t start = _pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '-' || _s[_pos] == '+' || _s[_pos] == '.' ||
                _s[_pos] == 'e' || _s[_pos] == 'E')) {
            ++_pos;
        }
        if (start == _pos)
            throw std::runtime_error("bad number");
        Value v;
        v.kind = Value::Kind::Number;
        v.number = std::atof(_s.substr(start, _pos - start).c_str());
        return v;
    }

    Value
    parseArray()
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            ++_pos;
            if (c == ']')
                return v;
            if (c != ',')
                throw std::runtime_error("expected ',' in array");
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            Value key = parseString();
            expect(':');
            v.object.emplace(key.str, parseValue());
            char c = peek();
            ++_pos;
            if (c == '}')
                return v;
            if (c != ',')
                throw std::runtime_error("expected ',' in object");
        }
    }

    const std::string &_s;
    size_t _pos = 0;
};

inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace test_json

#endif // SF_TESTS_COMMON_TEST_JSON_HH
