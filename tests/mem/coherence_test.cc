/**
 * @file
 * Directed MESI + GetU protocol tests on the bare test fabric.
 *
 * These drive demand accesses into private caches and assert on the
 * observable protocol behaviour: hit/miss counters, directory
 * forwarding, invalidations, writebacks, and the uncached-read
 * extension of Fig. 12.
 */

#include <gtest/gtest.h>

#include "common/test_fabric.hh"

using namespace sf;
using namespace sf::test;

namespace {

Addr
someLine(TestFabric &f)
{
    return f.as().alloc(4096);
}

} // namespace

TEST(Coherence, ColdReadMissesToMemory)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done);
    f.drain();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(f.priv(0).stats().l1Misses.value(), 1u);
    EXPECT_EQ(f.priv(0).stats().l2Misses.value(), 1u);
    uint64_t l3_misses = 0;
    for (int t = 0; t < 4; ++t)
        l3_misses += f.l3(t).stats().misses.value();
    EXPECT_EQ(l3_misses, 1u);
}

TEST(Coherence, SecondReadHitsInL1)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done);
    f.drain();
    f.demand(0, v, false, &done);
    f.drain();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(f.priv(0).stats().l1Hits.value(), 1u);
}

TEST(Coherence, ReadAfterRemoteReadForwardsOrServesShared)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done);
    f.drain();
    f.demand(1, v, false, &done);
    f.drain();
    EXPECT_EQ(done, 2);
    // Core 0 got E; core 1's GetS must have been forwarded to core 0.
    uint64_t fwds = 0;
    for (int t = 0; t < 4; ++t)
        fwds += f.l3(t).stats().fwdRequests.value();
    EXPECT_EQ(fwds, 1u);
}

TEST(Coherence, WriteAfterReadersInvalidates)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    // Three sharers.
    f.demand(0, v, false, &done);
    f.drain();
    f.demand(1, v, false, &done);
    f.drain();
    f.demand(2, v, false, &done);
    f.drain();
    // Core 3 writes: everyone else must drop the line.
    f.demand(3, v, true, &done);
    f.drain();
    EXPECT_EQ(done, 4);

    // Re-reads from the old sharers miss again (they were invalidated)
    // and get forwarded to the new owner.
    uint64_t misses_before = f.priv(0).stats().l2Misses.value();
    f.demand(0, v, false, &done);
    f.drain();
    EXPECT_EQ(f.priv(0).stats().l2Misses.value(), misses_before + 1);
}

TEST(Coherence, SilentEtoMUpgradeNeedsNoSecondTransaction)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done); // E grant
    f.drain();
    uint64_t l3_reqs_before = 0;
    for (int t = 0; t < 4; ++t)
        l3_reqs_before += f.l3(t).stats().requestsByClass[0].value();
    f.demand(0, v, true, &done); // silent E->M
    f.drain();
    uint64_t l3_reqs_after = 0;
    for (int t = 0; t < 4; ++t)
        l3_reqs_after += f.l3(t).stats().requestsByClass[0].value();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(l3_reqs_after, l3_reqs_before);
}

TEST(Coherence, UpgradeFromSharedGoesThroughDirectory)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done);
    f.drain();
    f.demand(1, v, false, &done); // both now share
    f.drain();
    f.demand(0, v, true, &done); // upgrade
    f.drain();
    EXPECT_EQ(done, 3);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    TestFabric::Options opt;
    // Tiny L2 so writes overflow quickly: 2kB, 2-way.
    opt.priv.l1Size = 1024;
    opt.priv.l1Ways = 2;
    opt.priv.l2Size = 2048;
    opt.priv.l2Ways = 2;
    TestFabric f(opt);
    Addr v = f.as().alloc(64 * 1024);
    int done = 0;
    for (int i = 0; i < 256; ++i)
        f.demand(0, v + static_cast<Addr>(i) * 64, true, &done);
    f.drain();
    EXPECT_EQ(done, 256);
    EXPECT_GT(f.priv(0).stats().writebacks.value(), 0u);
}

TEST(Coherence, CleanEvictionSendsPutSControlTraffic)
{
    TestFabric::Options opt;
    opt.priv.l1Size = 1024;
    opt.priv.l1Ways = 2;
    opt.priv.l2Size = 2048;
    opt.priv.l2Ways = 2;
    TestFabric f(opt);
    Addr v = f.as().alloc(64 * 1024);
    int done = 0;
    for (int i = 0; i < 256; ++i)
        f.demand(0, v + static_cast<Addr>(i) * 64, false, &done);
    f.drain();
    EXPECT_EQ(done, 256);
    EXPECT_GT(f.priv(0).stats().l2Evictions.value(), 0u);
    // Streaming reads with no reuse: evictions are clean and unreused
    // (the Fig. 2a telemetry).
    EXPECT_EQ(f.priv(0).stats().l2EvictionsUnreused.value(),
              f.priv(0).stats().l2Evictions.value());
}

TEST(Coherence, ReuseClearsUnreusedTelemetry)
{
    TestFabric::Options opt;
    opt.priv.l1Size = 512;
    opt.priv.l1Ways = 2;
    opt.priv.l2Size = 2048;
    opt.priv.l2Ways = 2;
    TestFabric f(opt);
    Addr v = f.as().alloc(64 * 1024);
    int done = 0;
    // Touch lines twice with an L1-evicting gap so the second touch
    // hits in the L2 (that is what "reuse" means at the L2).
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 16; ++i)
            f.demand(0, v + static_cast<Addr>(i) * 64, false, &done);
        f.drain();
    }
    // Now thrash them out.
    for (int i = 100; i < 160; ++i)
        f.demand(0, v + static_cast<Addr>(i) * 64, false, &done);
    f.drain();
    const auto &st = f.priv(0).stats();
    EXPECT_LT(st.l2EvictionsUnreused.value(), st.l2Evictions.value());
}

TEST(Coherence, RecallFreesOwnedSaturatedSet)
{
    TestFabric::Options opt;
    // L3 banks with a single set so owner saturation is immediate.
    opt.l3.sizeBytes = 2 * 64; // 1 set x 2 ways... per bank
    opt.l3.ways = 2;
    opt.priv.l1Size = 1024;
    opt.priv.l1Ways = 2;
    opt.priv.l2Size = 4096;
    opt.priv.l2Ways = 4;
    TestFabric f(opt);
    Addr v = f.as().alloc(256 * 1024);
    int done = 0;
    int issued = 0;
    for (int i = 0; i < 64; ++i) {
        f.demand(static_cast<TileId>(i % 4), v + static_cast<Addr>(i) * 64,
                 false, &done);
        ++issued;
        f.drain();
    }
    EXPECT_EQ(done, issued);
    uint64_t recalls = 0;
    for (int t = 0; t < 4; ++t)
        recalls += f.l3(t).stats().recalls.value();
    EXPECT_GT(recalls, 0u);
}

TEST(Coherence, GetUDoesNotDisturbDirectory)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, false, &done); // warm the L3 via a normal read
    f.drain();
    // Evict nothing; issue a GetU directly at the home bank.
    Addr pa = f.as().translate(v);
    TileId home = f.nuca().bankOf(pa);
    mem::StreamReadReq req;
    req.lineAddr = lineAlign(pa);
    req.stream = {1, 0};
    req.dests = {1};
    bool got = false;
    req.onLocalData = [&]() { got = true; };
    f.l3(home).streamRead(std::move(req));
    f.drain();
    EXPECT_TRUE(got);
    // The uncached read must not have registered tile 1 as a sharer:
    // when tile 0 writes, no invalidation for tile 1 is needed, so the
    // write is a silent upgrade (E owner) with no new fwd requests.
    uint64_t fwd_before = 0;
    for (int t = 0; t < 4; ++t)
        fwd_before += f.l3(t).stats().fwdRequests.value();
    f.demand(0, v, true, &done);
    f.drain();
    uint64_t fwd_after = 0;
    for (int t = 0; t < 4; ++t)
        fwd_after += f.l3(t).stats().fwdRequests.value();
    EXPECT_EQ(fwd_after, fwd_before);
}

TEST(Coherence, GetUForwardedByOwnerWithoutStateChange)
{
    TestFabric f;
    Addr v = someLine(f);
    int done = 0;
    f.demand(0, v, true, &done); // tile 0 owns the line M
    f.drain();
    Addr pa = f.as().translate(v);
    TileId home = f.nuca().bankOf(pa);
    mem::StreamReadReq req;
    req.lineAddr = lineAlign(pa);
    req.stream = {1, 0};
    req.dests = {1};
    f.l3(home).streamRead(std::move(req));
    f.drain();
    // Fig. 12(c): the owner forwarded; a subsequent write by the owner
    // still needs no directory transaction (state unchanged).
    f.demand(0, v, true, &done);
    f.drain();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(f.priv(0).stats().l1Hits.value() +
                  f.priv(0).stats().l2Hits.value(),
              1u);
}

TEST(Coherence, SublineGetUTransfersFewerBytes)
{
    TestFabric f;
    Addr v = someLine(f);
    Addr pa = f.as().translate(v);
    TileId home = f.nuca().bankOf(pa);

    auto data_flits_now = [&]() {
        return f.mesh().traffic().flitsInjected[1];
    };
    int done = 0;
    f.demand(0, v, false, &done);
    f.drain();

    uint64_t before = data_flits_now();
    mem::StreamReadReq req;
    req.lineAddr = lineAlign(pa);
    req.dataBytes = 8; // indirect subline transfer
    req.stream = {2, 0};
    req.dests = {2};
    f.l3(home).streamRead(std::move(req));
    f.drain();
    uint64_t subline_flits = data_flits_now() - before;

    before = data_flits_now();
    mem::StreamReadReq full;
    full.lineAddr = lineAlign(pa);
    full.dataBytes = 64;
    full.stream = {2, 1};
    full.dests = {2};
    f.l3(home).streamRead(std::move(full));
    f.drain();
    uint64_t full_flits = data_flits_now() - before;

    EXPECT_LT(subline_flits, full_flits);
}

TEST(Coherence, ConcurrentMixedTrafficCompletes)
{
    TestFabric f;
    Addr v = f.as().alloc(512 * 1024);
    int done = 0;
    int issued = 0;
    // A burst of reads and writes from all four tiles with overlap.
    for (int i = 0; i < 400; ++i) {
        TileId t = static_cast<TileId>(i % 4);
        Addr a = v + static_cast<Addr>((i * 7) % 128) * 64;
        f.demand(t, a, (i % 3) == 0, &done);
        ++issued;
    }
    f.drain();
    EXPECT_EQ(done, issued);
}

TEST(Coherence, L1MshrGateNeverStrandsWaiters)
{
    // Regression for the waiter-pump bug: flood one tile with far more
    // demand misses than L1 MSHRs, interleaved with accesses that hit
    // after their line arrives; every access must complete.
    TestFabric f;
    Addr v = f.as().alloc(1 << 22);
    int done = 0;
    int issued = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 40; ++i) {
            // A mix: new lines (miss) and recent lines (hit-after-fill)
            Addr a = v + static_cast<Addr>((round * 20 + i % 30)) * 64;
            f.demand(0, a, (i % 5) == 0, &done);
            ++issued;
        }
    }
    f.drain();
    EXPECT_EQ(done, issued);
}

TEST(Coherence, L3BankUsesItsWholeCapacity)
{
    // Regression for the NUCA set-indexing bug: stream far more
    // distinct lines than one bank's worth through a single tile; the
    // recall machinery should stay quiet because L3 sets absorb the
    // slice.
    TestFabric f;
    Addr v = f.as().alloc(1 << 22);
    int done = 0;
    for (int i = 0; i < 20000; ++i) {
        f.demand(0, v + static_cast<Addr>(i) * 64, false, &done);
        if (i % 24 == 0)
            f.drain();
    }
    f.drain();
    EXPECT_EQ(done, 20000);
    uint64_t recalls = 0;
    for (int t = 0; t < 4; ++t)
        recalls += f.l3(t).stats().recalls.value();
    EXPECT_LT(recalls, 50u);
}
