/** @file Unit tests for the set-associative cache array. */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace sf;
using namespace sf::mem;

TEST(CacheArray, Geometry)
{
    CacheArray a(32 * 1024, 8, ReplPolicy::LRU);
    EXPECT_EQ(a.numWays(), 8u);
    EXPECT_EQ(a.numSets(), 64u);
}

TEST(CacheArray, MissThenFillThenHit)
{
    CacheArray a(4096, 4, ReplPolicy::LRU);
    EXPECT_EQ(a.probe(0x1000), nullptr);
    Eviction ev;
    CacheLine &l = a.fill(0x1000, ev);
    EXPECT_FALSE(ev.valid);
    l.state = LineState::Shared;
    ASSERT_NE(a.probe(0x1000), nullptr);
    EXPECT_EQ(a.probe(0x1000)->tag, 0x1000u);
    // Any address in the line hits.
    EXPECT_NE(a.probe(0x103f), nullptr);
    EXPECT_EQ(a.probe(0x1040), nullptr);
}

TEST(CacheArray, FillEvictsWhenSetFull)
{
    CacheArray a(1024, 2, ReplPolicy::LRU); // 8 sets x 2 ways
    uint64_t set_stride = 8 * 64;           // same set every 512B
    Eviction ev;
    a.fill(0 * set_stride, ev).state = LineState::Shared;
    a.fill(1 * set_stride, ev).state = LineState::Shared;
    EXPECT_FALSE(ev.valid);
    a.fill(2 * set_stride, ev).state = LineState::Shared;
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line.tag, 0u); // LRU victim
    EXPECT_EQ(a.probe(0), nullptr);
}

TEST(CacheArray, AccessUpdatesLru)
{
    CacheArray a(1024, 2, ReplPolicy::LRU);
    uint64_t s = 8 * 64;
    Eviction ev;
    a.fill(0 * s, ev).state = LineState::Shared;
    a.fill(1 * s, ev).state = LineState::Shared;
    a.access(0); // 0 MRU
    a.fill(2 * s, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line.tag, s);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray a(1024, 2, ReplPolicy::LRU);
    Eviction ev;
    a.fill(0, ev).state = LineState::Modified;
    EXPECT_TRUE(a.invalidate(0));
    EXPECT_FALSE(a.invalidate(0));
    EXPECT_EQ(a.probe(0), nullptr);
    a.fill(0, ev);
    EXPECT_FALSE(ev.valid);
}

TEST(CacheArray, FillIfRespectsPredicate)
{
    CacheArray a(512, 2, ReplPolicy::LRU); // 4 sets
    uint64_t s = 4 * 64;
    Eviction ev;
    a.fill(0 * s, ev).state = LineState::Shared;
    a.fill(1 * s, ev).state = LineState::Shared;
    a.probe(0 * s)->owner = 3; // "owned": not evictable
    a.probe(1 * s)->owner = 5;

    CacheLine *l = a.fillIf(2 * s, ev, [](const CacheLine &c) {
        return c.owner == invalidTile;
    });
    EXPECT_EQ(l, nullptr);

    a.probe(1 * s)->owner = invalidTile;
    l = a.fillIf(2 * s, ev, [](const CacheLine &c) {
        return c.owner == invalidTile;
    });
    ASSERT_NE(l, nullptr);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line.tag, s);
}

TEST(CacheArray, MetadataSurvivesUntilEviction)
{
    CacheArray a(512, 2, ReplPolicy::LRU);
    Eviction ev;
    CacheLine &l = a.fill(0x40, ev);
    l.state = LineState::Exclusive;
    l.fillStream = 7;
    l.streamEligible = true;
    l.prefetched = true;
    CacheLine *p = a.probe(0x40);
    EXPECT_EQ(p->fillStream, 7);
    EXPECT_TRUE(p->streamEligible);
    EXPECT_TRUE(p->prefetched);
}

TEST(CacheArray, ForEachValidVisitsExactlyValidLines)
{
    CacheArray a(2048, 4, ReplPolicy::LRU);
    Eviction ev;
    for (int i = 0; i < 5; ++i)
        a.fill(static_cast<Addr>(i) * 64, ev).state = LineState::Shared;
    int count = 0;
    a.forEachValid([&](CacheLine &) { ++count; });
    EXPECT_EQ(count, 5);
}

TEST(CacheArray, NonPowerOfTwoSetsRejected)
{
    EXPECT_THROW(CacheArray(3 * 64 * 2, 2, ReplPolicy::LRU),
                 PanicError);
}

TEST(CacheArray, CustomIndexFunctionSpreadsBankSlice)
{
    // Regression: a NUCA bank receives only addresses with
    // (line % numBanks) == bank. Without index compaction those map to
    // 1/numBanks of the sets; with it, they cover all sets.
    constexpr int banks = 16;
    CacheArray a(64 * 1024, 4, ReplPolicy::LRU); // 256 sets
    uint64_t interleave = 64;
    a.setIndexFunction([interleave](Addr pa) {
        uint64_t chunk = pa / interleave / banks;
        return chunk * (interleave / lineBytes) +
               (pa % interleave) / lineBytes;
    });
    // Fill with this bank's slice (every 16th line): no evictions
    // until the full capacity is used.
    Eviction ev;
    uint64_t evictions = 0;
    for (uint64_t i = 0; i < 1024; ++i) {
        Addr pa = i * uint64_t(banks) * lineBytes; // bank 0's lines
        a.fill(pa, ev).state = LineState::Shared;
        evictions += ev.valid;
    }
    EXPECT_EQ(evictions, 0u); // 1024 lines fit exactly (256 sets x 4)
    a.fill(1024 * uint64_t(banks) * lineBytes, ev);
    EXPECT_TRUE(ev.valid);
}

TEST(CacheArray, DefaultIndexConcentratesBankSlice)
{
    // The counterpart: with the default index, the same slice thrashes
    // a handful of sets long before capacity.
    constexpr int banks = 16;
    CacheArray a(64 * 1024, 4, ReplPolicy::LRU);
    Eviction ev;
    uint64_t evictions = 0;
    for (uint64_t i = 0; i < 1024; ++i) {
        Addr pa = i * uint64_t(banks) * lineBytes;
        a.fill(pa, ev).state = LineState::Shared;
        evictions += ev.valid;
    }
    EXPECT_GT(evictions, 900u);
}
