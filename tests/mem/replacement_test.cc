/** @file Unit tests for replacement policies (LRU, Bimodal RRIP). */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

using namespace sf;
using namespace sf::mem;

TEST(Lru, EvictsLeastRecentlyTouched)
{
    LruReplacement lru(1, 4);
    for (uint32_t w = 0; w < 4; ++w)
        lru.insert(0, w);
    lru.touch(0, 0); // 0 is MRU, 1 is LRU
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruReplacement lru(2, 2);
    lru.insert(0, 0);
    lru.insert(0, 1);
    lru.insert(1, 1);
    lru.insert(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(Brrip, HitPromotionProtectsLine)
{
    BrripReplacement rrip(1, 4, 0.0);
    for (uint32_t w = 0; w < 4; ++w)
        rrip.insert(0, w);
    rrip.touch(0, 2); // promote way 2 to RRPV 0
    // Victim search should avoid way 2 until everything ages.
    uint32_t v = rrip.victim(0);
    EXPECT_NE(v, 2u);
}

TEST(Brrip, VictimAlwaysFound)
{
    BrripReplacement rrip(4, 8);
    for (size_t s = 0; s < 4; ++s) {
        for (uint32_t w = 0; w < 8; ++w) {
            rrip.insert(s, w);
            rrip.touch(s, w);
        }
        uint32_t v = rrip.victim(s);
        EXPECT_LT(v, 8u);
    }
}

/**
 * Thrash-resistance property: with a reused working set of W lines
 * plus a long scan through a set of associativity W+k, BRRIP keeps
 * more of the reused set resident than LRU does (the paper's Table III
 * baseline exists exactly to blunt streaming thrash).
 */
TEST(Brrip, ScanResistanceBeatsLru)
{
    constexpr uint32_t ways = 8;
    auto run = [&](Replacement &repl) {
        // Simulated set: tags[way]
        std::vector<int> tags(ways, -1);
        auto access = [&](int tag) -> bool {
            for (uint32_t w = 0; w < ways; ++w) {
                if (tags[w] == tag) {
                    repl.touch(0, w);
                    return true;
                }
            }
            uint32_t v = repl.victim(0);
            tags[v] = tag;
            repl.insert(0, v);
            return false;
        };
        int hits = 0;
        // Interleave: reuse 4 hot lines, scan 1000 cold ones.
        for (int round = 0; round < 200; ++round) {
            for (int hot = 0; hot < 4; ++hot)
                hits += access(hot);
            for (int cold = 0; cold < 5; ++cold)
                access(100 + round * 5 + cold);
        }
        return hits;
    };

    LruReplacement lru(1, ways);
    BrripReplacement rrip(1, ways, 0.03);
    int lru_hits = run(lru);
    int rrip_hits = run(rrip);
    EXPECT_GT(rrip_hits, lru_hits);
}

TEST(MakeReplacement, Factory)
{
    auto l = makeReplacement(ReplPolicy::LRU, 4, 4);
    auto b = makeReplacement(ReplPolicy::BRRIP, 4, 4);
    EXPECT_NE(dynamic_cast<LruReplacement *>(l.get()), nullptr);
    EXPECT_NE(dynamic_cast<BrripReplacement *>(b.get()), nullptr);
}
