/** @file Unit tests for static-NUCA interleaving. */

#include <gtest/gtest.h>

#include <set>

#include "mem/nuca.hh"

using namespace sf;
using namespace sf::mem;

TEST(Nuca, RoundRobinAcrossBanks)
{
    NucaMap m(4, 4, 64);
    for (Addr a = 0; a < 64 * 32; a += 64)
        EXPECT_EQ(m.bankOf(a), static_cast<TileId>((a / 64) % 16));
}

TEST(Nuca, InterleaveGranularityGroupsLines)
{
    NucaMap m(4, 4, 1024);
    TileId b = m.bankOf(0);
    for (Addr a = 0; a < 1024; a += 64)
        EXPECT_EQ(m.bankOf(a), b);
    EXPECT_NE(m.bankOf(1024), b);
}

TEST(Nuca, BankBoundary)
{
    NucaMap m(4, 4, 1024);
    EXPECT_EQ(m.bankBoundary(0), 1024u);
    EXPECT_EQ(m.bankBoundary(1023), 1024u);
    EXPECT_EQ(m.bankBoundary(1024), 2048u);
}

TEST(Nuca, MemCtrlsAtCorners)
{
    NucaMap m(8, 8, 64);
    const auto &c = m.memCtrls();
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c[0], 0);
    EXPECT_EQ(c[1], 7);
    EXPECT_EQ(c[2], 56);
    EXPECT_EQ(c[3], 63);
}

TEST(Nuca, MemCtrlMappingCoversAllControllers)
{
    NucaMap m(4, 4, 64);
    std::set<TileId> used;
    for (Addr page = 0; page < 16; ++page)
        used.insert(m.memCtrlOf(page << 12));
    EXPECT_EQ(used.size(), 4u);
}

TEST(Nuca, RejectsBadInterleave)
{
    EXPECT_THROW(NucaMap(2, 2, 32), PanicError);   // < line size
    EXPECT_THROW(NucaMap(2, 2, 100), PanicError);  // not a power of 2
}

class NucaInterleaveSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(NucaInterleaveSweep, AllBanksUsedUniformly)
{
    uint32_t gran = GetParam();
    NucaMap m(4, 4, gran);
    std::vector<int> counts(16, 0);
    for (Addr a = 0; a < uint64_t(gran) * 16 * 8; a += gran)
        ++counts[static_cast<size_t>(m.bankOf(a))];
    for (int c : counts)
        EXPECT_EQ(c, 8);
}

INSTANTIATE_TEST_SUITE_P(Granularities, NucaInterleaveSweep,
                         ::testing::Values(64u, 256u, 1024u, 4096u));
