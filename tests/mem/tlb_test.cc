/** @file Unit tests for the TLB model. */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

using namespace sf;
using namespace sf::mem;

TEST(Tlb, MissThenHit)
{
    Tlb tlb(64, 8);
    EXPECT_FALSE(tlb.lookup(0x1000));
    tlb.insert(0x1000);
    EXPECT_TRUE(tlb.lookup(0x1000));
    EXPECT_TRUE(tlb.lookup(0x1fff)); // same page
    EXPECT_FALSE(tlb.lookup(0x2000)); // next page
    EXPECT_EQ(tlb.hits.value(), 2u);
    EXPECT_EQ(tlb.misses.value(), 2u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    // Direct construct a tiny TLB: 2 sets x 2 ways.
    Tlb tlb(4, 2);
    // Pages 0, 2, 4 all map to set 0 (even page numbers).
    tlb.insert(0 * pageBytes);
    tlb.insert(2 * pageBytes);
    EXPECT_TRUE(tlb.lookup(0 * pageBytes)); // 0 becomes MRU
    tlb.insert(4 * pageBytes);              // evicts page 2
    EXPECT_TRUE(tlb.lookup(0 * pageBytes));
    EXPECT_FALSE(tlb.lookup(2 * pageBytes));
    EXPECT_TRUE(tlb.lookup(4 * pageBytes));
}

TEST(Tlb, InsertIsIdempotent)
{
    Tlb tlb(4, 2);
    tlb.insert(0x5000);
    tlb.insert(0x5000);
    tlb.insert(0x5000);
    EXPECT_TRUE(tlb.lookup(0x5000));
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb tlb(64, 8);
    tlb.insert(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x1000));
}

TEST(TlbHierarchy, LatencyDependsOnLevel)
{
    PhysMem pm;
    AddressSpace as(0, pm);
    Addr v = as.alloc(4 * pageBytes);
    TlbHierarchy h(64, 8, 2048, 16, 8, 80);

    Cycles lat = ~0ull;
    h.translate(as, v, lat);
    EXPECT_EQ(lat, 88u); // L2 miss: 8 + 80 walk

    h.translate(as, v, lat);
    EXPECT_EQ(lat, 0u); // L1 hit
}

TEST(TlbHierarchy, L2BacksUpL1)
{
    PhysMem pm;
    AddressSpace as(0, pm);
    TlbHierarchy h(4, 2, 64, 8, 8, 80);
    // Touch many pages so the tiny L1 evicts but the L2 holds them.
    Addr v = as.alloc(32 * pageBytes);
    Cycles lat = 0;
    for (int i = 0; i < 32; ++i)
        h.translate(as, v + static_cast<Addr>(i) * pageBytes, lat);
    // Re-touch the first page: L1 evicted it, the L2 still has it.
    h.translate(as, v, lat);
    EXPECT_EQ(lat, 8u);
}

TEST(TlbHierarchy, TranslationMatchesAddressSpace)
{
    PhysMem pm;
    AddressSpace as(0, pm);
    TlbHierarchy h(64, 8, 2048, 16, 8, 80);
    Addr v = as.alloc(pageBytes);
    Cycles lat = 0;
    EXPECT_EQ(h.translate(as, v + 123, lat), as.translate(v + 123));
}
