/** @file Unit tests for the functional backing store and paging. */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "mem/phys_mem.hh"

using namespace sf;
using namespace sf::mem;

TEST(PhysMem, FreshMemoryReadsZero)
{
    PhysMem m;
    EXPECT_EQ(m.readT<uint64_t>(0x123456), 0u);
    EXPECT_EQ(m.numAllocatedPages(), 0u);
}

TEST(PhysMem, WriteThenRead)
{
    PhysMem m;
    m.writeT<uint32_t>(0x1000, 0xdeadbeef);
    EXPECT_EQ(m.readT<uint32_t>(0x1000), 0xdeadbeefu);
    EXPECT_EQ(m.readT<uint16_t>(0x1000), 0xbeefu);
}

TEST(PhysMem, CrossPageAccess)
{
    PhysMem m;
    Addr a = pageBytes - 4;
    m.writeT<uint64_t>(a, 0x1122334455667788ull);
    EXPECT_EQ(m.readT<uint64_t>(a), 0x1122334455667788ull);
    EXPECT_EQ(m.numAllocatedPages(), 2u);
}

TEST(PhysMem, ReadUintSizes)
{
    PhysMem m;
    m.writeT<uint64_t>(64, 0x0102030405060708ull);
    EXPECT_EQ(m.readUint(64, 1), 0x08u);
    EXPECT_EQ(m.readUint(64, 2), 0x0708u);
    EXPECT_EQ(m.readUint(64, 4), 0x05060708u);
    EXPECT_EQ(m.readUint(64, 8), 0x0102030405060708ull);
}

TEST(PhysMem, ReadIntSignExtends)
{
    PhysMem m;
    m.writeT<int32_t>(128, -5);
    EXPECT_EQ(m.readInt(128, 4), -5);
    m.writeT<int64_t>(256, -123456789012345ll);
    EXPECT_EQ(m.readInt(256, 8), -123456789012345ll);
}

TEST(PhysMem, MaterializeAllocatesZeroFilledPage)
{
    PhysMem m;
    m.materialize(0x2000 + 12);
    EXPECT_EQ(m.numAllocatedPages(), 1u);
    EXPECT_EQ(m.readT<uint64_t>(0x2000), 0u);
    // Idempotent and preserves existing contents.
    m.writeT<uint32_t>(0x2000, 7u);
    m.materialize(0x2000);
    EXPECT_EQ(m.readT<uint32_t>(0x2000), 7u);
    EXPECT_EQ(m.numAllocatedPages(), 1u);
}

TEST(PhysMem, ConcurrentModeIsFunctionallyIdentical)
{
    PhysMem m;
    m.setConcurrent(true);
    m.writeT<uint32_t>(0x1000, 1u);
    EXPECT_EQ(m.readT<uint32_t>(0x1000), 1u);
    // Fresh pages still zero-fill on read without allocating.
    EXPECT_EQ(m.readT<uint64_t>(0x9000), 0u);
    EXPECT_EQ(m.numAllocatedPages(), 1u);
    m.materialize(0x9000);
    EXPECT_EQ(m.numAllocatedPages(), 2u);
}

TEST(AddressSpace, MapPageMaterializesEagerly)
{
    PhysMem m;
    AddressSpace as(0, m);
    as.alloc(4 * pageBytes);
    EXPECT_EQ(m.numAllocatedPages(), 4u);
}

TEST(AddressSpace, FirstTouchFrameIsTouchOrderIndependent)
{
    // The frame is a pure hash of the virtual page, so the physical
    // placement of a lazily touched page cannot depend on which shard
    // thread translated it first (DESIGN.md §4i).
    PhysMem m1, m2;
    AddressSpace a(0, m1), b(0, m2);
    Addr va1 = 0x10000000, va2 = 0x10300000, va3 = 0x13370000;
    Addr f1 = a.translate(va1), f2 = a.translate(va2),
         f3 = a.translate(va3);
    EXPECT_EQ(b.translate(va3), f3);
    EXPECT_EQ(b.translate(va1), f1);
    EXPECT_EQ(b.translate(va2), f2);
}

TEST(AddressSpace, ConcurrentFirstTouchIsSafe)
{
    PhysMem m;
    AddressSpace as(0, m);
    as.setConcurrent(true);
    Addr base = 0x10000000;
    constexpr int nThreads = 4, pagesPerThread = 64;
    std::vector<std::thread> threads;
    for (int t = 0; t < nThreads; ++t) {
        threads.emplace_back([&as, base, t]() {
            for (int p = 0; p < pagesPerThread; ++p) {
                // Disjoint pages plus a contended shared page per
                // iteration: both must map and read back safely.
                Addr mine = base + Addr(t * pagesPerThread + p) * pageBytes;
                as.writeT<uint32_t>(mine, uint32_t(t * 1000 + p));
                as.readT<uint64_t>(base + Addr(p) * 0x40000);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < nThreads; ++t) {
        for (int p = 0; p < pagesPerThread; ++p) {
            Addr mine = base + Addr(t * pagesPerThread + p) * pageBytes;
            EXPECT_EQ(as.readT<uint32_t>(mine), uint32_t(t * 1000 + p));
        }
    }
}

TEST(AddressSpace, AllocReturnsPageAlignedDistinctRegions)
{
    PhysMem m;
    AddressSpace as(0, m);
    Addr a = as.alloc(100);
    Addr b = as.alloc(100);
    EXPECT_EQ(a % pageBytes, 0u);
    EXPECT_EQ(b % pageBytes, 0u);
    EXPECT_NE(a, b);
    // Guard page between allocations.
    EXPECT_GE(b, a + 2 * pageBytes);
}

TEST(AddressSpace, TranslationIsStable)
{
    PhysMem m;
    AddressSpace as(0, m);
    Addr v = as.alloc(4096);
    Addr p1 = as.translate(v + 100);
    Addr p2 = as.translate(v + 100);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(as.translate(v + 101), p1 + 1);
}

TEST(AddressSpace, DistinctPagesGetDistinctFrames)
{
    PhysMem m;
    AddressSpace as(0, m);
    Addr v = as.alloc(64 * pageBytes);
    std::set<Addr> frames;
    for (int i = 0; i < 64; ++i)
        frames.insert(pageAlign(as.translate(v + i * pageBytes)));
    EXPECT_EQ(frames.size(), 64u);
}

TEST(AddressSpace, FramesAreScrambledNotContiguous)
{
    PhysMem m;
    AddressSpace as(0, m);
    Addr v = as.alloc(16 * pageBytes);
    int contiguous = 0;
    Addr prev = as.translate(v);
    for (int i = 1; i < 16; ++i) {
        Addr cur = as.translate(v + i * pageBytes);
        if (cur == prev + pageBytes)
            ++contiguous;
        prev = cur;
    }
    EXPECT_LT(contiguous, 4);
}

TEST(AddressSpace, TranslateExistingReturnsInvalidWhenUnmapped)
{
    PhysMem m;
    AddressSpace as(0, m);
    EXPECT_EQ(as.translateExisting(0xdead0000), invalidAddr);
    Addr v = as.alloc(128);
    EXPECT_NE(as.translateExisting(v), invalidAddr);
}

TEST(AddressSpace, TypedAccessRoundTrips)
{
    PhysMem m;
    AddressSpace as(0, m);
    Addr v = as.alloc(4096);
    as.writeT<float>(v + 16, 3.5f);
    EXPECT_FLOAT_EQ(as.readT<float>(v + 16), 3.5f);
}

TEST(AddressSpace, DifferentAsidsDontCollide)
{
    PhysMem m;
    AddressSpace a(0, m), b(1, m);
    Addr va = a.alloc(4096);
    Addr vb = b.alloc(4096);
    a.writeT<uint32_t>(va, 111);
    b.writeT<uint32_t>(vb, 222);
    EXPECT_EQ(a.readT<uint32_t>(va), 111u);
    EXPECT_EQ(b.readT<uint32_t>(vb), 222u);
    EXPECT_NE(a.translate(va), b.translate(vb));
}

TEST(AddressSpace, DeterministicAcrossRuns)
{
    auto layout = []() {
        PhysMem m;
        AddressSpace as(0, m);
        std::vector<Addr> ps;
        Addr v = as.alloc(8 * pageBytes);
        for (int i = 0; i < 8; ++i)
            ps.push_back(as.translate(v + i * pageBytes));
        return ps;
    };
    EXPECT_EQ(layout(), layout());
}
