# Fault-injection smoke suite: run the quickstart under each fault
# class (dropped float requests, dropped credit grants, duplicated
# end/ack messages, forced SE_L3 overflow) and assert that every run
# completes with committed work identical to the fault-free baseline —
# the graceful-degradation machinery must fully absorb the faults.
# Then disable the retry machinery with every float request dropped
# and assert the forward-progress watchdog turns the hang into a
# distinct nonzero exit (64) with a diagnostic snapshot, not a wedge.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<exe> -DOUT_DIR=<dir> -P smoke_faults.cmake

if(NOT QUICKSTART OR NOT OUT_DIR)
    message(FATAL_ERROR "QUICKSTART and OUT_DIR must be set")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# Extract "committedOps": N from a stats.json file.
function(committed_ops json_file out_var)
    file(READ "${json_file}" stats)
    if(NOT stats MATCHES "\"committedOps\": ([0-9]+)")
        message(FATAL_ERROR "no committedOps in ${json_file}")
    endif()
    set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# Run quickstart with a fault spec; assert clean exit; return the SF
# machine's committedOps.
function(run_faulted tag spec out_var)
    set(dir "${OUT_DIR}/${tag}")
    file(MAKE_DIRECTORY "${dir}")
    if(spec STREQUAL "none")
        set(fault_args "")
    else()
        set(fault_args "--faults=${spec}")
    endif()
    execute_process(
        COMMAND "${QUICKSTART}" pathfinder 0.02
                "--stats-json=${dir}" ${fault_args}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "faulted run '${tag}' (${spec}) failed rc=${rc}: ${err}")
    endif()
    committed_ops("${dir}/SF_pathfinder.stats.json" ops)
    set(${out_var} "${ops}" PARENT_SCOPE)
endfunction()

run_faulted(baseline none BASE_OPS)
if(BASE_OPS EQUAL 0)
    message(FATAL_ERROR "baseline run committed no work")
endif()

# Each fault class in turn; results must match the fault-free run.
run_faulted(dropfloat "seed:3,dropfloat:0.5" OPS_DROPFLOAT)
run_faulted(dropcredit "seed:5,dropcredit:0.3" OPS_DROPCREDIT)
run_faulted(dup "seed:7,dupend:0.5,dupack:0.5" OPS_DUP)
run_faulted(overflow "overflow:1" OPS_OVERFLOW)
run_faulted(delay "seed:11,delay:0.2,delaycycles:400" OPS_DELAY)

foreach(pair
        "dropfloat:${OPS_DROPFLOAT}"
        "dropcredit:${OPS_DROPCREDIT}"
        "dup:${OPS_DUP}"
        "overflow:${OPS_OVERFLOW}"
        "delay:${OPS_DELAY}")
    string(REPLACE ":" ";" parts "${pair}")
    list(GET parts 0 tag)
    list(GET parts 1 ops)
    if(NOT ops EQUAL BASE_OPS)
        message(FATAL_ERROR
                "fault class '${tag}' changed committed work: "
                "${ops} vs baseline ${BASE_OPS}")
    endif()
endforeach()

# With retries disabled and every float request dropped, the run must
# NOT hang and must NOT succeed: the watchdog converts the wedge into
# exit code 64 with a diagnostic dump on stderr.
execute_process(
    COMMAND "${QUICKSTART}" pathfinder 0.02
            "--faults=dropfloat:1,noretry" "--watchdog-cycles=100000"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 240)
if(rc EQUAL 0)
    message(FATAL_ERROR "noretry wedge run unexpectedly succeeded")
endif()
if(NOT rc EQUAL 64)
    message(FATAL_ERROR "expected watchdog exit 64, got rc=${rc}: ${err}")
endif()
if(NOT err MATCHES "no forward progress")
    message(FATAL_ERROR "watchdog trip without its message: ${err}")
endif()
if(NOT err MATCHES "watchdog: interval=")
    message(FATAL_ERROR "watchdog trip without a diagnostic dump")
endif()
if(NOT err MATCHES "fault-injector|dropped")
    message(FATAL_ERROR "diagnostic dump missing fault injector state")
endif()

message(STATUS "fault-injection smoke suite passed "
               "(baseline committedOps=${BASE_OPS})")
