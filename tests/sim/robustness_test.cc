/**
 * @file
 * Unit tests for the protocol-hardening layer: the forward-progress
 * watchdog, the invariant checker, deterministic fault injection, and
 * the fatal()/diagnostic-hook plumbing they report through.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/checker.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/watchdog.hh"

using namespace sf;

namespace {

/** Keep the queue busy with no-op events so only probes decide fate. */
void
scheduleTicks(EventQueue &eq, Tick until, Cycles step = 10)
{
    for (Tick t = step; t <= until; t += step)
        eq.schedule(t, [] {});
}

} // namespace

TEST(Watchdog, NoTripWhileProgressing)
{
    EventQueue eq;
    uint64_t counter = 0;
    // Activity that advances the probe every 10 cycles.
    for (Tick t = 10; t <= 1000; t += 10)
        eq.schedule(t, [&counter] { ++counter; });

    Watchdog wd(eq, 100);
    wd.addProbe("counter", [&counter] { return counter; });
    wd.start();
    EXPECT_NO_THROW(eq.run(1000));
    wd.stop();
    EXPECT_EQ(counter, 100u);
}

TEST(Watchdog, TripsWhenNoProbeAdvances)
{
    EventQueue eq;
    scheduleTicks(eq, 2000);

    Watchdog wd(eq, 50);
    wd.addProbe("stuck", [] { return uint64_t(42); });
    wd.start();
    try {
        eq.run(2000);
        FAIL() << "watchdog did not trip";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), ExitCode::WatchdogTimeout);
        EXPECT_EQ(e.exitStatus(), 64);
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
    }
    // The trip happens after one full stalled interval.
    EXPECT_LE(eq.curTick(), 150u);
}

TEST(Watchdog, TripsOnceProgressStops)
{
    EventQueue eq;
    uint64_t counter = 0;
    // Progress for the first 500 cycles, then silence.
    for (Tick t = 10; t <= 500; t += 10)
        eq.schedule(t, [&counter] { ++counter; });
    scheduleTicks(eq, 3000);

    Watchdog wd(eq, 100);
    wd.addProbe("counter", [&counter] { return counter; });
    wd.start();
    try {
        eq.run(3000);
        FAIL() << "watchdog did not trip";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), ExitCode::WatchdogTimeout);
    }
    // Progress stopped at 500; the trip needs one stalled interval.
    EXPECT_GE(eq.curTick(), 600u);
    EXPECT_LE(eq.curTick(), 800u);
}

TEST(Watchdog, StopCancelsPendingCheck)
{
    EventQueue eq;
    scheduleTicks(eq, 1000);
    Watchdog wd(eq, 50);
    wd.addProbe("stuck", [] { return uint64_t(0); });
    wd.start();
    wd.stop();
    EXPECT_NO_THROW(eq.run(1000));
    EXPECT_FALSE(wd.running());
}

TEST(FaultConfig, ParseFullSpec)
{
    FaultConfig fc = FaultConfig::parse(
        "seed:7,dropfloat:0.25,dropcredit:0.5,dupend:0.125,dupack:1,"
        "delay:0.1,delaycycles:300,overflow:2,noretry");
    EXPECT_EQ(fc.seed, 7u);
    EXPECT_DOUBLE_EQ(fc.drop[int(FaultClass::FloatRequest)], 0.25);
    EXPECT_DOUBLE_EQ(fc.drop[int(FaultClass::CreditGrant)], 0.5);
    EXPECT_DOUBLE_EQ(fc.dup[int(FaultClass::StreamEnd)], 0.125);
    EXPECT_DOUBLE_EQ(fc.dup[int(FaultClass::StreamAck)], 1.0);
    EXPECT_DOUBLE_EQ(fc.delayProb, 0.1);
    EXPECT_EQ(fc.delayCycles, 300u);
    EXPECT_EQ(fc.overflowEntries, 2);
    EXPECT_TRUE(fc.noRetry);
    EXPECT_TRUE(fc.enabled());
    EXPECT_TRUE(fc.messageFaults());
    EXPECT_FALSE(fc.describe().empty());
}

TEST(FaultConfig, NoneAndDefaultsAreDisabled)
{
    EXPECT_FALSE(FaultConfig().enabled());
    EXPECT_FALSE(FaultConfig::parse("none").enabled());
    EXPECT_FALSE(FaultConfig::parse("").enabled());
    // Structural faults are not message faults.
    FaultConfig fc = FaultConfig::parse("overflow");
    EXPECT_TRUE(fc.enabled());
    EXPECT_FALSE(fc.messageFaults());
    EXPECT_EQ(fc.overflowEntries, 1);
}

TEST(FaultConfig, UnknownTokenIsFatal)
{
    EXPECT_THROW(FaultConfig::parse("dropeverything:1"), FatalError);
    EXPECT_THROW(FaultConfig::parse("dropfloat"), FatalError);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig fc = FaultConfig::parse(
        "seed:11,dropfloat:0.3,dupcredit:0.2,delay:0.1");
    FaultInjector a(fc), b(fc);
    std::vector<FaultAction> sa, sb;
    for (int i = 0; i < 2000; ++i) {
        auto cls = static_cast<FaultClass>(i % numFaultClasses);
        sa.push_back(a.decide(cls));
        sb.push_back(b.decide(cls));
    }
    EXPECT_EQ(sa, sb);
    EXPECT_GT(a.totalInjected(), 0u);
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
}

TEST(FaultInjector, DifferentSeedDifferentSchedule)
{
    FaultConfig f1 = FaultConfig::parse("seed:1,dropfloat:0.5");
    FaultConfig f2 = FaultConfig::parse("seed:2,dropfloat:0.5");
    FaultInjector a(f1), b(f2);
    bool differ = false;
    for (int i = 0; i < 512 && !differ; ++i) {
        differ = a.decide(FaultClass::FloatRequest) !=
                 b.decide(FaultClass::FloatRequest);
    }
    EXPECT_TRUE(differ);
}

TEST(Checker, LevelGatesChecks)
{
    EventQueue eq;
    Checker ck(eq, CheckLevel::Basic);
    int basic_runs = 0, full_runs = 0;
    ck.addCheck("basic", CheckLevel::Basic,
                [&](std::vector<std::string> &) { ++basic_runs; });
    ck.addCheck("full", CheckLevel::Full,
                [&](std::vector<std::string> &) { ++full_runs; });
    ck.runAll("test");
    EXPECT_EQ(basic_runs, 1);
    EXPECT_EQ(full_runs, 0);

    Checker ck2(eq, CheckLevel::Off);
    ck2.addCheck("basic", CheckLevel::Basic,
                 [&](std::vector<std::string> &) { ++basic_runs; });
    ck2.runAll("test");
    EXPECT_EQ(basic_runs, 1); // Off level runs nothing
}

TEST(Checker, ViolationIsFatalWithDistinctCode)
{
    EventQueue eq;
    Checker ck(eq, CheckLevel::Full);
    ck.addCheck("bad", CheckLevel::Basic,
                [](std::vector<std::string> &v) {
                    v.push_back("the sky is falling");
                });
    try {
        ck.runAll("unit");
        FAIL() << "violation did not throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), ExitCode::InvariantViolation);
        EXPECT_EQ(e.exitStatus(), 65);
        EXPECT_NE(std::string(e.what()).find("bad: the sky is falling"),
                  std::string::npos);
    }
    // Drain sweeps report under their own exit code.
    try {
        ck.runAll("drain", ExitCode::DrainFailure);
        FAIL() << "violation did not throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.exitStatus(), 66);
    }
}

TEST(Checker, PeriodicSweepCatchesViolation)
{
    EventQueue eq;
    scheduleTicks(eq, 5000, 100);
    Checker ck(eq, CheckLevel::Basic, 1000);
    bool violate = false;
    ck.addCheck("armed", CheckLevel::Basic,
                [&](std::vector<std::string> &v) {
                    if (violate)
                        v.push_back("tripped");
                });
    eq.schedule(2500, [&violate] { violate = true; });
    ck.start();
    EXPECT_THROW(eq.run(5000), FatalError);
    EXPECT_GE(eq.curTick(), 3000u);
    ck.stop();
    EXPECT_GE(ck.checksRun(), 2u);
}

TEST(Checker, CleanRunDrainsQuietly)
{
    EventQueue eq;
    scheduleTicks(eq, 3000, 100);
    Checker ck(eq, CheckLevel::Full, 500);
    ck.addCheck("fine", CheckLevel::Basic,
                [](std::vector<std::string> &) {});
    ck.start();
    EXPECT_NO_THROW(eq.run(3000));
    ck.stop();
    EXPECT_NO_THROW(ck.runAll("drain", ExitCode::DrainFailure));
}

TEST(Diagnostics, HooksReplayOnFatal)
{
    int id = addDiagnosticHook("unit-test", [](std::FILE *f) {
        std::fprintf(f, "unit-test-diagnostic-marker\n");
    });

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    emitDiagnostics(tmp);
    std::rewind(tmp);
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
    buf[n] = '\0';
    EXPECT_NE(std::string(buf).find("unit-test-diagnostic-marker"),
              std::string::npos);
    std::fclose(tmp);

    removeDiagnosticHook(id);
    std::FILE *tmp2 = std::tmpfile();
    ASSERT_NE(tmp2, nullptr);
    emitDiagnostics(tmp2);
    std::rewind(tmp2);
    n = std::fread(buf, 1, sizeof(buf) - 1, tmp2);
    buf[n] = '\0';
    EXPECT_EQ(std::string(buf).find("unit-test-diagnostic-marker"),
              std::string::npos);
    std::fclose(tmp2);
}

TEST(Diagnostics, ThrowingHookDoesNotMaskError)
{
    int id = addDiagnosticHook("explosive", [](std::FILE *) {
        throw std::runtime_error("hook exploded");
    });
    try {
        fatalCode(ExitCode::InvariantViolation, "original error");
        FAIL() << "fatalCode did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("original error"),
                  std::string::npos);
        EXPECT_EQ(e.exitStatus(), 65);
    }
    removeDiagnosticHook(id);
}

TEST(ExitCodes, DefaultFatalIsConfigError)
{
    try {
        fatal("plain bad config");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), ExitCode::ConfigError);
        EXPECT_EQ(e.exitStatus(), 1);
    }
}

TEST(CheckLevelParsing, StringsAndEnv)
{
    EXPECT_EQ(checkLevelFromString("off"), CheckLevel::Off);
    EXPECT_EQ(checkLevelFromString("none"), CheckLevel::Off);
    EXPECT_EQ(checkLevelFromString("basic"), CheckLevel::Basic);
    EXPECT_EQ(checkLevelFromString("1"), CheckLevel::Basic);
    EXPECT_EQ(checkLevelFromString("full"), CheckLevel::Full);
    EXPECT_EQ(checkLevelFromString("strict"), CheckLevel::Full);
    EXPECT_THROW(checkLevelFromString("bogus"), FatalError);
    EXPECT_STREQ(checkLevelName(CheckLevel::Full), "full");

    ::setenv("SF_CHECK", "full", 1);
    EXPECT_EQ(checkLevelFromEnv(CheckLevel::Off), CheckLevel::Full);
    ::unsetenv("SF_CHECK");
    EXPECT_EQ(checkLevelFromEnv(CheckLevel::Basic), CheckLevel::Basic);
}
