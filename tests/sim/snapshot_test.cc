/**
 * @file
 * sf-snap-v1 unit tests (DESIGN.md §4j): field-wise encoder/decoder
 * round trips, the on-disk render/parse/atomic-write cycle, every
 * corruption class failing with exit 68 and a section-naming
 * diagnostic, and an in-process checkpoint-stop/restore run whose
 * final stats.json is byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "system/tiled_system.hh"
#include "workload/workload.hh"

namespace fs = std::filesystem;
using namespace sf;
using namespace sf::snap;

namespace {

/** EXPECT that @p fn throws a FatalError with exit 68 whose message
 *  contains @p needle. */
template <typename Fn>
void
expectSnapshotError(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected FatalError mentioning '" << needle << "'";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.exitStatus(), 68);
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

Snapshot
sampleSnapshot()
{
    Snapshot s;
    Encoder a;
    a.u32(0xdeadbeef);
    a.str("alpha");
    s.add("FIRST", a.take());
    Encoder b;
    b.u64(42);
    b.f64(2.5);
    s.add("SECOND", b.take());
    return s;
}

} // namespace

TEST(SnapshotCodec, EncoderDecoderRoundTrip)
{
    Encoder e;
    e.u8(0x12);
    e.u16(0x3456);
    e.u32(0x789abcde);
    e.u64(0x0123456789abcdefULL);
    e.i32(-7);
    e.i64(-1234567890123LL);
    e.f64(-0.1);
    e.b(true);
    e.b(false);
    e.str("hello");
    const uint8_t raw[3] = {9, 8, 7};
    e.raw(raw, sizeof(raw));

    std::vector<uint8_t> buf = e.take();
    Decoder d(buf, "TEST");
    EXPECT_EQ(d.u8(), 0x12);
    EXPECT_EQ(d.u16(), 0x3456);
    EXPECT_EQ(d.u32(), 0x789abcdeu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.i32(), -7);
    EXPECT_EQ(d.i64(), -1234567890123LL);
    EXPECT_EQ(d.f64(), -0.1);
    EXPECT_TRUE(d.b());
    EXPECT_FALSE(d.b());
    EXPECT_EQ(d.str(), "hello");
    uint8_t back[3] = {};
    d.raw(back, sizeof(back));
    EXPECT_EQ(back[0], 9);
    EXPECT_EQ(back[2], 7);
    EXPECT_EQ(d.remaining(), 0u);
    d.done();
}

TEST(SnapshotCodec, LittleEndianLayout)
{
    Encoder e;
    e.u32(0x04030201);
    ASSERT_EQ(e.bytes().size(), 4u);
    EXPECT_EQ(e.bytes()[0], 0x01);
    EXPECT_EQ(e.bytes()[3], 0x04);
}

TEST(SnapshotCodec, DecoderUnderflowNamesSection)
{
    Encoder e;
    e.u16(7);
    std::vector<uint8_t> buf = e.take();
    Decoder d(buf, "CACHES");
    expectSnapshotError([&] { d.u64(); }, "CACHES");
}

TEST(SnapshotCodec, TrailingBytesNameSection)
{
    Encoder e;
    e.u32(1);
    std::vector<uint8_t> buf = e.take();
    Decoder d(buf, "STREAMS");
    d.u16();
    expectSnapshotError([&] { d.done(); }, "STREAMS");
}

TEST(SnapshotFile, RenderParseRoundTrip)
{
    Snapshot s = sampleSnapshot();
    std::vector<uint8_t> img = renderSnapshot(s);
    Snapshot back = parseSnapshot(img, "mem");
    ASSERT_EQ(back.sections.size(), 2u);
    EXPECT_EQ(back.sections[0].name, "FIRST");
    EXPECT_EQ(back.sections[0].payload, s.sections[0].payload);
    EXPECT_EQ(back.sections[1].name, "SECOND");
    EXPECT_EQ(back.sections[1].payload, s.sections[1].payload);
    EXPECT_EQ(back.find("MISSING"), nullptr);
    expectSnapshotError([&] { back.require("MISSING"); }, "MISSING");
}

TEST(SnapshotFile, AtomicWriteReadBack)
{
    fs::path dir = fs::path(::testing::TempDir()) / "snap_atomic";
    fs::create_directories(dir);
    std::string path = (dir / "t.sfsnap").string();
    Snapshot s = sampleSnapshot();
    writeSnapshotAtomic(s, path);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp file left behind";
    Snapshot back = readSnapshot(path);
    ASSERT_EQ(back.sections.size(), 2u);
    EXPECT_EQ(back.sections[1].payload, s.sections[1].payload);
}

TEST(SnapshotFile, BitFlipNamesBadSection)
{
    std::vector<uint8_t> img = renderSnapshot(sampleSnapshot());
    // Flip one byte of SECOND's payload (locate its first byte: the
    // u64 value 42 encoded little-endian).
    bool flipped = false;
    for (size_t i = 0; i + 7 < img.size(); ++i) {
        if (img[i] == 42 && img[i + 1] == 0 && img[i + 2] == 0 &&
            img[i + 3] == 0 && img[i + 4] == 0) {
            img[i] ^= 0xff;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);
    expectSnapshotError([&] { parseSnapshot(img, "mem"); },
                        "section 'SECOND' checksum mismatch");
}

TEST(SnapshotFile, TruncationFails)
{
    std::vector<uint8_t> img = renderSnapshot(sampleSnapshot());
    img.resize(img.size() - 9);
    expectSnapshotError([&] { parseSnapshot(img, "mem"); }, "truncat");
}

TEST(SnapshotFile, VersionMismatchFails)
{
    std::vector<uint8_t> img = renderSnapshot(sampleSnapshot());
    img[8] = 9; // little-endian u32 version directly after the magic
    expectSnapshotError([&] { parseSnapshot(img, "mem"); },
                        "unsupported snapshot version 9");
}

TEST(SnapshotFile, BadMagicFails)
{
    std::vector<uint8_t> img = renderSnapshot(sampleSnapshot());
    img[0] = 'X';
    expectSnapshotError([&] { parseSnapshot(img, "mem"); },
                        "not an sf-snap file");
}

TEST(SnapshotFile, MissingFileFails)
{
    expectSnapshotError([] { readSnapshot("/nonexistent/x.sfsnap"); },
                        "x.sfsnap");
}

// ---------------------------------------------------------- end to end

namespace {

sys::SystemConfig
smallConfig()
{
    sys::SystemConfig cfg = sys::SystemConfig::make(
        sys::Machine::SF, cpu::CoreConfig::ooo4(), 2, 2);
    cfg.samplingInterval = 10'000;
    cfg.workloadTag = "pathfinder";
    return cfg;
}

std::string
runToStats(sys::SystemConfig cfg, sys::SimResults *out = nullptr)
{
    sys::TiledSystem system(cfg);
    workload::WorkloadParams wp;
    wp.numThreads = cfg.numTiles();
    wp.scale = 0.02;
    wp.useStreams = true;
    auto wl = workload::makeWorkload("pathfinder", wp);
    wl->init(system.addressSpace());
    sys::SimResults r = system.run(wl->makeAllThreads());
    if (out)
        *out = r;
    if (r.stoppedAtCheckpoint)
        return {};
    std::ostringstream os;
    system.dumpStatsJson(os, r);
    return os.str();
}

} // namespace

TEST(SnapshotSystem, CheckpointStopThenRestoreIsByteIdentical)
{
    fs::path dir = fs::path(::testing::TempDir()) / "snap_e2e";
    fs::create_directories(dir);
    std::string snap = (dir / "pf.sfsnap").string();

    std::string uninterrupted = runToStats(smallConfig());
    ASSERT_FALSE(uninterrupted.empty());

    // Run 2: stop right after the first snapshot (partial run).
    sys::SystemConfig ckpt = smallConfig();
    ckpt.checkpointPath = snap;
    ckpt.checkpointEvery = 10'000;
    ckpt.checkpointStop = true;
    sys::SimResults stopped;
    EXPECT_TRUE(runToStats(ckpt, &stopped).empty());
    EXPECT_TRUE(stopped.stoppedAtCheckpoint);
    ASSERT_TRUE(fs::exists(snap));

    // Run 3: restore (replay to the anchor, byte-verify every
    // section, continue); final stats must byte-match run 1.
    sys::SystemConfig rest = smallConfig();
    rest.restorePath = snap;
    std::string restored = runToStats(rest);
    EXPECT_EQ(restored, uninterrupted);
}

TEST(SnapshotSystem, ConfigMismatchOnRestoreFails)
{
    fs::path dir = fs::path(::testing::TempDir()) / "snap_meta";
    fs::create_directories(dir);
    std::string snap = (dir / "pf.sfsnap").string();

    sys::SystemConfig ckpt = smallConfig();
    ckpt.checkpointPath = snap;
    ckpt.checkpointEvery = 10'000;
    ckpt.checkpointStop = true;
    runToStats(ckpt);
    ASSERT_TRUE(fs::exists(snap));

    // Same snapshot, different sampling config: restore must refuse
    // with a field-naming META diagnostic instead of replaying into a
    // divergent run.
    sys::SystemConfig rest = smallConfig();
    rest.restorePath = snap;
    rest.samplingInterval = 0;
    expectSnapshotError([&] { runToStats(rest); },
                        "META mismatch: field 'samplingInterval'");
}
