/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace sf;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); },
                EventPriority::ClockTick);
    eq.schedule(5, [&]() { order.push_back(0); },
                EventPriority::Delivery);
    eq.schedule(5, [&]() { order.push_back(1); },
                EventPriority::Delivery);
    eq.schedule(5, [&]() { order.push_back(3); }, EventPriority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(5, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&]() { ran = true; });
    eq.deschedule(id);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleOneOfManyAtSameTick)
{
    EventQueue eq;
    int sum = 0;
    eq.schedule(10, [&]() { sum += 1; });
    auto id = eq.schedule(10, [&]() { sum += 10; });
    eq.schedule(10, [&]() { sum += 100; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(sum, 101);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() { ++count; });
    eq.schedule(20, [&]() { ++count; });
    eq.schedule(30, [&]() { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&]() { ++count; });
    eq.schedule(2, [&]() { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 50)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 50);
    EXPECT_EQ(eq.curTick(), 49u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), PanicError);
}

TEST(EventQueue, NumExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), []() {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

// --- two-level kernel: calendar wheel / far-heap interaction ---

/** Delays straddling the wheel horizon still execute in time order. */
TEST(EventQueue, WheelFarBoundaryKeepsTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> order;
    auto note = [&]() { order.push_back(eq.curTick()); };
    // Around the horizon: last wheel bucket, first far tick, and both
    // neighbours, scheduled out of order.
    const Tick h = EventQueue::wheelBuckets;
    for (Tick t : {h + 1, h - 1, h, h + 7, Tick(1), h - 2})
        eq.schedule(t, note);
    eq.run();
    EXPECT_EQ(order,
              (std::vector<Tick>{1, h - 2, h - 1, h, h + 1, h + 7}));
}

/**
 * The same tick can be queued in the wheel AND the far heap at once
 * (a far-scheduled event whose tick later re-enters the wheel window):
 * both must drain at that tick in (priority, insertion) order.
 */
TEST(EventQueue, SameTickInWheelAndFarHeap)
{
    EventQueue eq;
    const Tick target = EventQueue::wheelBuckets + 2000;
    std::vector<int> order;
    // Beyond the horizon at schedule time: goes to the far heap.
    eq.schedule(target, [&]() { order.push_back(0); });
    // By tick 5000 the target is inside the wheel window, so this
    // second event for the same tick lands in a wheel bucket.
    eq.schedule(5000, [&]() {
        eq.schedule(target, [&]() { order.push_back(1); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.curTick(), target);
}

/** Far-future events many wheel revolutions out stay ordered. */
TEST(EventQueue, FarEventsAcrossManyWheelTurns)
{
    EventQueue eq;
    std::vector<Tick> order;
    auto note = [&]() { order.push_back(eq.curTick()); };
    const Tick h = EventQueue::wheelBuckets;
    std::vector<Tick> when = {7 * h + 3, 2 * h, 5 * h + 1, h / 2};
    for (Tick t : when)
        eq.schedule(t, note);
    eq.run();
    std::sort(when.begin(), when.end());
    EXPECT_EQ(order, when);
}

// --- slab arena ---

/**
 * A million schedule/execute cycles must recycle nodes instead of
 * growing the arena: with a handful of events in flight the arena
 * never needs more than its first slab.
 */
TEST(EventQueue, ArenaReusesNodesOverMillionEvents)
{
    EventQueue eq;
    uint64_t remaining = 1'000'000;
    std::function<void()> tick = [&]() {
        if (--remaining > 0)
            eq.scheduleIn(1, tick);
    };
    eq.schedule(1, tick);
    eq.run();
    EXPECT_EQ(remaining, 0u);
    EXPECT_EQ(eq.numExecuted(), 1'000'000u);
    EXPECT_LE(eq.arenaCapacity(), 512u);
    EXPECT_EQ(eq.arenaInUse(), 0u);
}

/** Deschedule/reschedule churn recycles nodes through the free list. */
TEST(EventQueue, ArenaReusesCancelledNodes)
{
    EventQueue eq;
    for (int round = 0; round < 100'000; ++round) {
        auto id = eq.schedule(Tick(round + 10), []() {});
        eq.deschedule(id);
    }
    EXPECT_TRUE(eq.empty());
    EXPECT_LE(eq.arenaCapacity(), 1024u);
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 0u);
}

// --- tombstone compaction ---

TEST(EventQueue, TombstonesCompactPastThreshold)
{
    EventQueue eq;
    const size_t n = EventQueue::tombstoneCompactionThreshold + 100;
    std::vector<EventQueue::EventId> ids;
    int ran = 0;
    for (size_t i = 0; i < n; ++i)
        ids.push_back(
            eq.schedule(Tick(1000 + i), [&]() { ++ran; }));
    // A survivor among the tombstones, plus one beyond the horizon so
    // the compaction walks the far heap too.
    eq.schedule(1500, [&]() { ++ran; });
    eq.schedule(Tick(EventQueue::wheelBuckets + 5000), [&]() { ++ran; });
    for (auto id : ids)
        eq.deschedule(id);
    // Crossing the threshold compacted once: the first 1024 dead
    // nodes are physically gone; the 100 descheduled afterwards are
    // lazy tombstones still queued.
    EXPECT_EQ(eq.compactions(), 1u);
    EXPECT_EQ(eq.tombstones(),
              n - EventQueue::tombstoneCompactionThreshold);
    EXPECT_EQ(eq.numPending(), 2u);
    EXPECT_EQ(eq.arenaInUse(),
              2u + n - EventQueue::tombstoneCompactionThreshold);
    eq.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.arenaInUse(), 0u);
}

TEST(EventQueue, CancelledEventsDiscardedBeyondRunLimit)
{
    EventQueue eq;
    auto id = eq.schedule(100, []() {});
    eq.deschedule(id);
    eq.run(50);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.arenaInUse(), 0u);
    EXPECT_EQ(eq.curTick(), 0u);
}

// --- recurring events ---

TEST(RecurringEvent, FiresEveryPeriodUntilStopped)
{
    EventQueue eq;
    RecurringEvent rec(eq);
    std::vector<Tick> fired;
    rec.start(10, [&]() {
        fired.push_back(eq.curTick());
        if (fired.size() == 4)
            rec.stop();
    });
    EXPECT_TRUE(rec.running());
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
    EXPECT_FALSE(rec.running());
    EXPECT_TRUE(eq.empty());
}

TEST(RecurringEvent, FirstDelayOverridesFirstPeriod)
{
    EventQueue eq;
    RecurringEvent rec(eq);
    std::vector<Tick> fired;
    rec.start(100, [&]() {
        fired.push_back(eq.curTick());
        if (fired.size() == 2)
            rec.stop();
    }, EventPriority::Default, /*firstDelay=*/3);
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{3, 103}));
}

/** stop() while queued cancels in place and empties the queue. */
TEST(RecurringEvent, StopWhileQueuedCancelsCleanly)
{
    EventQueue eq;
    RecurringEvent rec(eq);
    int fired = 0;
    rec.start(10, [&]() { ++fired; });
    EXPECT_EQ(eq.numPending(), 1u);
    rec.stop();
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(RecurringEvent, RestartAfterStop)
{
    EventQueue eq;
    RecurringEvent rec(eq);
    std::vector<Tick> fired;
    rec.start(5, [&]() {
        fired.push_back(eq.curTick());
        rec.stop();
    });
    eq.run();
    rec.start(7, [&]() {
        fired.push_back(eq.curTick());
        rec.stop();
    });
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{5, 12}));
}

/** Same-tick ordering applies to recurring firings too. */
TEST(RecurringEvent, HonorsPriorityAgainstOneShots)
{
    EventQueue eq;
    RecurringEvent rec(eq);
    std::vector<int> order;
    rec.start(10, [&]() {
        order.push_back(1);
        rec.stop();
    }, EventPriority::ClockTick);
    eq.schedule(10, [&]() { order.push_back(0); },
                EventPriority::Delivery);
    eq.schedule(10, [&]() { order.push_back(2); }, EventPriority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

/** A destructor while queued must not leave a pending count behind. */
TEST(RecurringEvent, DestructorCancelsQueuedFiring)
{
    EventQueue eq;
    int fired = 0;
    {
        RecurringEvent rec(eq);
        rec.start(10, [&]() { ++fired; });
    }
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
}

/** Determinism: two identical schedules produce identical traces. */
TEST(EventQueue, DeterministicAcrossInstances)
{
    auto trace = []() {
        EventQueue eq;
        std::vector<Tick> t;
        for (int i = 0; i < 100; ++i) {
            eq.schedule(static_cast<Tick>((i * 37) % 50),
                        [&t, &eq]() { t.push_back(eq.curTick()); });
        }
        eq.run();
        return t;
    };
    EXPECT_EQ(trace(), trace());
}
