/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace sf;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); },
                EventPriority::ClockTick);
    eq.schedule(5, [&]() { order.push_back(0); },
                EventPriority::Delivery);
    eq.schedule(5, [&]() { order.push_back(1); },
                EventPriority::Delivery);
    eq.schedule(5, [&]() { order.push_back(3); }, EventPriority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(5, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&]() { ran = true; });
    eq.deschedule(id);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleOneOfManyAtSameTick)
{
    EventQueue eq;
    int sum = 0;
    eq.schedule(10, [&]() { sum += 1; });
    auto id = eq.schedule(10, [&]() { sum += 10; });
    eq.schedule(10, [&]() { sum += 100; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(sum, 101);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() { ++count; });
    eq.schedule(20, [&]() { ++count; });
    eq.schedule(30, [&]() { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&]() { ++count; });
    eq.schedule(2, [&]() { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 50)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 50);
    EXPECT_EQ(eq.curTick(), 49u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), PanicError);
}

TEST(EventQueue, NumExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), []() {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

/** Determinism: two identical schedules produce identical traces. */
TEST(EventQueue, DeterministicAcrossInstances)
{
    auto trace = []() {
        EventQueue eq;
        std::vector<Tick> t;
        for (int i = 0; i < 100; ++i) {
            eq.schedule(static_cast<Tick>((i * 37) % 50),
                        [&t, &eq]() { t.push_back(eq.curTick()); });
        }
        eq.run();
        return t;
    };
    EXPECT_EQ(trace(), trace());
}
