/**
 * @file
 * Unit tests for the --stats-json/--trace output-path validation
 * (sim/output_path.hh): good paths are created/opened, bad paths fail
 * fast with a FatalError that names the offending flag instead of a
 * silent zero-byte file minutes into a run.
 *
 * Note: tests run as whatever user CI provides (often root, which
 * ignores permission bits), so the negative cases use structural
 * problems — a file where a directory should be, a missing parent —
 * rather than chmod.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sim/logging.hh"
#include "sim/output_path.hh"

namespace fs = std::filesystem;
using namespace sf;

namespace {

/** Fresh scratch directory per test, removed on teardown. */
class OutputPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _root = fs::temp_directory_path() /
                ("sf_output_path_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(_root);
        fs::create_directories(_root);
    }

    void TearDown() override { fs::remove_all(_root); }

    std::string path(const std::string &rel) const
    {
        return (_root / rel).string();
    }

    fs::path _root;
};

/** The FatalError message must name the flag the user passed. */
template <typename Fn>
void
expectFatalNaming(const char *flag, Fn fn)
{
    try {
        fn();
        FAIL() << "expected FatalError naming " << flag;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
            << e.what();
    }
}

} // namespace

TEST_F(OutputPathTest, EnsureOutputDirCreatesNestedDirs)
{
    std::string dir = path("a/b/c");
    ensureOutputDir(dir, "--stats-json");
    EXPECT_TRUE(fs::is_directory(dir));
    // Idempotent on an existing directory.
    ensureOutputDir(dir, "--stats-json");
    // The writability probe must not leave droppings behind.
    EXPECT_TRUE(fs::is_empty(dir));
}

TEST_F(OutputPathTest, EnsureOutputDirRejectsEmptyPath)
{
    expectFatalNaming("--stats-json",
                      [] { ensureOutputDir("", "--stats-json"); });
}

TEST_F(OutputPathTest, EnsureOutputDirRejectsExistingFile)
{
    std::string p = path("occupied");
    std::ofstream(p) << "not a directory\n";
    expectFatalNaming("--stats-json",
                      [&] { ensureOutputDir(p, "--stats-json"); });
}

TEST_F(OutputPathTest, EnsureOutputDirRejectsFileOnParentPath)
{
    // A file blocking an intermediate component: create_directories
    // itself fails, and the message must still carry the flag.
    std::string p = path("occupied");
    std::ofstream(p) << "x\n";
    expectFatalNaming("--profile", [&] {
        ensureOutputDir(p + "/sub", "--profile");
    });
}

TEST_F(OutputPathTest, OpenOutputFileWritesIntoExistingDir)
{
    std::string p = path("out.json");
    {
        std::ofstream os = openOutputFile(p, "--stats-json");
        ASSERT_TRUE(os.good());
        os << "{}\n";
    }
    EXPECT_TRUE(fs::is_regular_file(p));
}

TEST_F(OutputPathTest, OpenOutputFileRejectsMissingParent)
{
    expectFatalNaming("--trace", [&] {
        openOutputFile(path("no/such/dir/trace.json"), "--trace");
    });
}

TEST_F(OutputPathTest, OpenOutputFileRejectsFileAsParent)
{
    std::string p = path("occupied");
    std::ofstream(p) << "x\n";
    expectFatalNaming("--trace", [&] {
        openOutputFile(p + "/trace.json", "--trace");
    });
}

TEST_F(OutputPathTest, OpenOutputFileRejectsEmptyPath)
{
    expectFatalNaming("--trace", [] { openOutputFile("", "--trace"); });
}

TEST_F(OutputPathTest, OpenOutputFileRejectsDirectoryTarget)
{
    // Opening a directory itself for writing must fail cleanly.
    std::string d = path("d");
    fs::create_directories(d);
    expectFatalNaming("--stats-json",
                      [&] { openOutputFile(d, "--stats-json"); });
}

TEST_F(OutputPathTest, MessagesIncludeTheOffendingPath)
{
    std::string p = path("occupied");
    std::ofstream(p) << "x\n";
    try {
        ensureOutputDir(p, "--stats-json");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(p), std::string::npos)
            << e.what();
    }
}
