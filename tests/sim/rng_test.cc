/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace sf;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, RangeInclusiveCoversEndpoints)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.rangeInclusive(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

class RngRangeTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngRangeTest, RangeStaysInBounds)
{
    uint64_t bound = GetParam();
    Rng r(bound * 977 + 1);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(r.range(bound), bound);
}

TEST_P(RngRangeTest, RangeHitsMostBuckets)
{
    uint64_t bound = GetParam();
    if (bound > 64)
        GTEST_SKIP() << "bucket check for small bounds only";
    Rng r(bound + 123);
    std::vector<int> hits(bound, 0);
    for (uint64_t i = 0; i < bound * 200; ++i)
        ++hits[r.range(bound)];
    int empty = 0;
    for (int h : hits)
        empty += h == 0;
    EXPECT_EQ(empty, 0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1000,
                                           1u << 20, 1ull << 40));
